// Package repro's benchmark suite: one benchmark per reproduction
// experiment (DESIGN.md §2) plus engine and substrate microbenchmarks.
// Run with:
//
//	go test -bench=. -benchmem
//
// The Benchmark<ID> entries execute the same workloads as
// `ccbench -exp <ID>` at reduced sizes and report the simulation cost;
// the experiment *claims* are asserted by `go test ./internal/...` and
// by ccbench itself.
package repro

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hypergraph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// --- Experiment benchmarks (one per paper artifact) --------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		res := e.RunFn(experiments.Config{Seed: int64(i + 1), Quick: true})
		if !res.Ok() {
			b.Fatalf("%s failed: %v", id, res.Failures[0])
		}
	}
}

func BenchmarkEXP_F1_Figure1(b *testing.B)             { benchExperiment(b, "F1") }
func BenchmarkEXP_F2_Impossibility(b *testing.B)       { benchExperiment(b, "F2") }
func BenchmarkEXP_F3_ExampleComputation(b *testing.B)  { benchExperiment(b, "F3") }
func BenchmarkEXP_F4_Locks(b *testing.B)               { benchExperiment(b, "F4") }
func BenchmarkEXP_T2_CC1SnapStab(b *testing.B)         { benchExperiment(b, "T2") }
func BenchmarkEXP_T3_CC2Fairness(b *testing.B)         { benchExperiment(b, "T3") }
func BenchmarkEXP_T45_FairConcurrencyCC2(b *testing.B) { benchExperiment(b, "T45") }
func BenchmarkEXP_T6_WaitingTime(b *testing.B)         { benchExperiment(b, "T6") }
func BenchmarkEXP_T78_FairConcurrencyCC3(b *testing.B) { benchExperiment(b, "T78") }
func BenchmarkEXP_SNAP_FaultBursts(b *testing.B)       { benchExperiment(b, "SNAP") }
func BenchmarkEXP_TOKEN_Convergence(b *testing.B)      { benchExperiment(b, "TOKEN") }
func BenchmarkEXP_CONC_Comparison(b *testing.B)        { benchExperiment(b, "CONC") }

// --- Algorithm step-throughput microbenchmarks -------------------------------

func benchSteps(b *testing.B, variant core.Variant, h *hypergraph.H, randomInit bool) {
	b.Helper()
	// Shared with ccbench -bench-json so BENCH_step.json measures the
	// exact configuration these published numbers use.
	r := experiments.NewStepRunner(variant, h, randomInit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Run(1) == 0 {
			b.Fatal("unexpected quiescence")
		}
	}
	b.ReportMetric(float64(r.TotalConvenes())/float64(b.N), "convenes/step")
}

func BenchmarkStepCC1_Ring8(b *testing.B) {
	benchSteps(b, core.CC1, hypergraph.CommitteeRing(8), false)
}
func BenchmarkStepCC1_Ring32(b *testing.B) {
	benchSteps(b, core.CC1, hypergraph.CommitteeRing(32), false)
}
func BenchmarkStepCC2_Ring8(b *testing.B) {
	benchSteps(b, core.CC2, hypergraph.CommitteeRing(8), false)
}
func BenchmarkStepCC2_Ring32(b *testing.B) {
	benchSteps(b, core.CC2, hypergraph.CommitteeRing(32), false)
}
func BenchmarkStepCC3_Ring8(b *testing.B) {
	benchSteps(b, core.CC3, hypergraph.CommitteeRing(8), false)
}
func BenchmarkStepCC2_Figure3(b *testing.B) { benchSteps(b, core.CC2, hypergraph.Figure3(), false) }
func BenchmarkStepCC1_Grid4x4(b *testing.B) { benchSteps(b, core.CC1, hypergraph.Grid(4, 4), false) }
func BenchmarkStepCC2_RandomInit(b *testing.B) {
	benchSteps(b, core.CC2, hypergraph.CommitteeRing(8), true)
}

func BenchmarkStepDining_Ring8(b *testing.B) {
	a := baseline.New(baseline.Dining, hypergraph.CommitteeRing(8), 2)
	r := baseline.NewRunner(a, &sim.WeaklyFair{MaxAge: 6}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Run(1) == 0 {
			b.Fatal("unexpected quiescence")
		}
	}
}

func BenchmarkStepTokenRing_Ring8(b *testing.B) {
	a := baseline.New(baseline.TokenRing, hypergraph.CommitteeRing(8), 2)
	r := baseline.NewRunner(a, &sim.WeaklyFair{MaxAge: 6}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Run(1) == 0 {
			b.Fatal("unexpected quiescence")
		}
	}
}

func BenchmarkOracle_Ring32(b *testing.B) {
	h := hypergraph.CommitteeRing(32)
	for i := 0; i < b.N; i++ {
		baseline.Oracle(h, 2, 100, int64(i))
	}
}

// --- Substrate microbenchmarks ------------------------------------------------

func BenchmarkTokenConvergence_Ring12(b *testing.B) {
	h := hypergraph.CommitteeRing(12)
	for i := 0; i < b.N; i++ {
		res := metrics.TokenConvergence(h, 1, 50000, int64(i))
		if res.Converged != 1 {
			b.Fatal("TC did not converge")
		}
	}
}

func BenchmarkMinMaximalMatching_Ring12(b *testing.B) {
	h := hypergraph.CommitteeRing(12)
	for i := 0; i < b.N; i++ {
		if s, _ := h.MinMaximalMatching(); s == 0 {
			b.Fatal("no matching")
		}
	}
}

func BenchmarkMinAMM_Figure1(b *testing.B) {
	h := hypergraph.Figure1()
	for i := 0; i < b.N; i++ {
		h.MinAMM()
	}
}

func BenchmarkMaximalMatchingEnumeration_Grid3x3(b *testing.B) {
	h := hypergraph.Grid(3, 3)
	for i := 0; i < b.N; i++ {
		count := 0
		h.EnumerateMaximalMatchings(nil, func(m []int) bool {
			count++
			return true
		})
		if count == 0 {
			b.Fatal("no maximal matchings")
		}
	}
}

func BenchmarkDegreeOfFairConcurrency_Ring8(b *testing.B) {
	h := hypergraph.CommitteeRing(8)
	for i := 0; i < b.N; i++ {
		m := metrics.DegreeOfFairConcurrency(core.CC2, h, 1, 60000, int64(i), false)
		if m.Quiesced != 1 {
			b.Fatal("did not quiesce")
		}
	}
}

func BenchmarkWaitingTime_Ring12(b *testing.B) {
	h := hypergraph.CommitteeRing(12)
	for i := 0; i < b.N; i++ {
		w := metrics.WaitingTime(core.CC2, h, 2, 20000, int64(i))
		if w.Convenes == 0 {
			b.Fatal("no meetings")
		}
	}
}

func BenchmarkEXP_ABL_Ablations(b *testing.B) { benchExperiment(b, "ABL") }
