// Command ccbench runs the reproduction experiments (DESIGN.md §2) and
// prints their tables as markdown. The full suite regenerates every
// figure and analytic result of the paper:
//
//	ccbench -exp all            # everything (minutes)
//	ccbench -exp T45 -seed 7    # one experiment
//	ccbench -list               # list experiment IDs
//	ccbench -exp all -quick     # reduced sizes (smoke run)
//
// The process exits non-zero if any checked paper claim fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment ID or 'all'")
		seed  = flag.Int64("seed", 1, "base random seed")
		quick = flag.Bool("quick", false, "reduced sizes")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.What)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	failed := 0
	for _, id := range ids {
		res, err := experiments.Run(strings.TrimSpace(id), cfg, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if !res.Ok() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) had failing claims\n", failed)
		os.Exit(1)
	}
}
