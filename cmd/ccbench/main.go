// Command ccbench runs the reproduction experiments (DESIGN.md §2) and
// prints their tables as markdown. The full suite regenerates every
// figure and analytic result of the paper:
//
//	ccbench -exp all            # everything (parallel across the pool)
//	ccbench -exp T45 -seed 7    # one experiment
//	ccbench -list               # list experiment IDs
//	ccbench -exp all -quick     # reduced sizes (smoke run)
//	ccbench -parallel=false     # serial reference run
//	ccbench -j 4                # explicit worker-pool width
//	ccbench -bench-json BENCH_step.json           # microbenchmark only → JSON
//	ccbench -bench-json B.json -exp T2            # benchmark + experiments
//
// Experiments fan their independent (topology, daemon, seed) cells across
// a worker pool sized by GOMAXPROCS; -bench-json times the engine step
// hot path and writes machine-readable numbers so the perf trajectory is
// tracked across PRs (experiments also run only if -exp is given
// explicitly alongside it).
//
// The process exits non-zero if any checked paper claim fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/par"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment ID or 'all'")
		seed         = flag.Int64("seed", 1, "base random seed")
		quick        = flag.Bool("quick", false, "reduced sizes")
		list         = flag.Bool("list", false, "list experiments and exit")
		parallel     = flag.Bool("parallel", true, "fan experiments and their cells across the worker pool")
		workers      = cliutil.Workers(flag.CommandLine, "j", 0, "worker-pool width (0 = GOMAXPROCS)")
		cacheDir     = flag.String("cache", "", "verdict-store directory: serve the MC experiment's exhaustive cells from cache and persist fresh ones (shared with cccheck -cache and ccserve)")
		storeEngine  = flag.String("store-engine", "dir", "store backend for -cache: dir or log")
		benchJSON    = flag.String("bench-json", "", "run the engine-step microbenchmark and write JSON to this path")
		exploreJSON  = flag.String("explore-json", "", "run the explorer throughput benchmark (binary engine vs PR 2 string-codec oracle) and write JSON to this path")
		exploreCheck = flag.String("explore-check", "", "compare a fresh explorer benchmark against this committed BENCH_explore.json; exit 1 on a >2x speedup regression")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.What)
		}
		return
	}

	nworkers, err := workers.Value()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch {
	case !*parallel:
		par.Workers = 1
	case nworkers > 0:
		par.Workers = nworkers
	}

	if *benchJSON != "" {
		if err := writeStepBench(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("wrote engine-step benchmark to %s\n", *benchJSON)
	}
	if *exploreJSON != "" || *exploreCheck != "" {
		if err := runExploreBench(*exploreJSON, *exploreCheck); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *benchJSON != "" || *exploreJSON != "" || *exploreCheck != "" {
		// Bench-only unless the user explicitly asked for experiments too.
		expSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				expSet = true
			}
		})
		if !expSet || *exp == "" {
			return
		}
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, CacheDir: *cacheDir, StoreEngine: *storeEngine}
	results, err := experiments.RunAll(ids, cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	failed := 0
	for _, res := range results {
		if !res.Ok() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) had failing claims\n", failed)
		os.Exit(1)
	}
}

// stepBench is one machine-readable engine-step measurement.
type stepBench struct {
	Name        string  `json:"name"`
	NsPerStep   float64 `json:"ns_per_step"`
	AllocsPerOp float64 `json:"allocs_per_step"`
	BytesPerOp  float64 `json:"bytes_per_step"`
	Steps       int     `json:"steps_timed"`
}

type stepBenchFile struct {
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []stepBench `json:"benchmarks"`
}

// writeStepBench times the engine step hot path on the shared workload
// table (experiments.StepBenchWorkloads, the same configuration the
// BenchmarkStep* suite measures) and writes BENCH_step.json.
func writeStepBench(path string) error {
	out := stepBenchFile{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, w := range experiments.StepBenchWorkloads() {
		r := experiments.NewStepRunner(w.Variant, w.NewH(), false)
		// b.Fatal has no test framework to report to inside a standalone
		// testing.Benchmark, so track failure out-of-band: a quiescing
		// workload must error out rather than emit bogus near-zero numbers.
		quiesced := false
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N && !quiesced; i++ {
				if r.Run(1) == 0 {
					quiesced = true
				}
			}
		})
		if quiesced || br.N == 0 {
			return fmt.Errorf("ccbench: workload %s quiesced during the step benchmark", w.Name)
		}
		out.Benchmarks = append(out.Benchmarks, stepBench{
			Name:        w.Name,
			NsPerStep:   float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: float64(br.MemAllocs) / float64(br.N),
			BytesPerOp:  float64(br.MemBytes) / float64(br.N),
			Steps:       br.N,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// exploreBenchFile is the BENCH_explore.json schema: the explorer's
// throughput trajectory (binary sharded engine vs the preserved PR 2
// string-codec oracle, measured back to back on the same machine).
type exploreBenchFile struct {
	GoVersion  string                     `json:"go_version"`
	GOMAXPROCS int                        `json:"gomaxprocs"`
	Workers    int                        `json:"workers"`
	Workloads  []experiments.ExploreBench `json:"workloads"`
}

// runExploreBench measures, optionally writes jsonPath, and optionally
// enforces no >2x speedup regression against checkPath. The check
// compares speedup ratios, not absolute states/sec: engine and oracle
// run on the same machine, so their ratio transfers across hardware.
func runExploreBench(jsonPath, checkPath string) error {
	workloads, err := experiments.RunExploreBench()
	if err != nil {
		return err
	}
	for _, w := range workloads {
		fmt.Printf("explore bench %-34s %9d states  engine %9.0f st/s %5.1f B/st  oracle %9.0f st/s %5.1f B/st  speedup %.2fx  bytes %.2fx\n",
			w.Workload, w.States, w.EngineStatesPerSec, w.EngineBytesPerState,
			w.BaselineStatesPerSec, w.BaselineBytesPerState, w.Speedup, w.BytesRatio)
	}
	if jsonPath != "" {
		out := exploreBenchFile{
			GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workers: par.Workers, Workloads: workloads,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote explorer benchmark to %s\n", jsonPath)
	}
	if checkPath != "" {
		data, err := os.ReadFile(checkPath)
		if err != nil {
			return err
		}
		var committed exploreBenchFile
		if err := json.Unmarshal(data, &committed); err != nil {
			return fmt.Errorf("%s: %v", checkPath, err)
		}
		fresh := make(map[string]experiments.ExploreBench, len(workloads))
		for _, w := range workloads {
			fresh[w.Workload] = w
		}
		for _, want := range committed.Workloads {
			got, ok := fresh[want.Workload]
			if !ok {
				return fmt.Errorf("explore bench: committed workload %q no longer measured", want.Workload)
			}
			if got.Speedup < want.Speedup/2 {
				return fmt.Errorf("explore bench %s: speedup regressed >2x: %.2fx now vs %.2fx committed",
					want.Workload, got.Speedup, want.Speedup)
			}
			// Spill cells measure the out-of-core tax against the same
			// engine in-memory, a ratio pinned near 1.0 — the relative
			// /2 rule alone would let it rot to half speed unnoticed, so
			// they also carry an absolute floor.
			if strings.Contains(want.Workload, "/spill-") && got.Speedup < 0.8 {
				return fmt.Errorf("explore bench %s: spill-mode throughput ratio %.2fx below the 0.80x floor",
					want.Workload, got.Speedup)
			}
		}
		fmt.Printf("explore bench: no >2x speedup regression vs %s\n", checkPath)
	}
	return nil
}
