package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

func TestCCBenchList(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, time.Minute, "-list")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, id := range []string{"T2", "T3", "T45", "SNAP", "F3", "ABL"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %s missing from -list:\n%s", id, out)
		}
	}
}

func TestCCBenchSingleExperimentQuick(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 3*time.Minute, "-exp", "F3", "-quick")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "All checked claims hold.") {
		t.Fatalf("F3 did not confirm its claims:\n%s", out)
	}
}

func TestCCBenchUnknownExperiment(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, time.Minute, "-exp", "NOPE")
	if code != 2 {
		t.Fatalf("exit %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown experiment") {
		t.Fatalf("missing error message:\n%s", out)
	}
}

func TestCCBenchBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark timing loop")
	}
	bin := cmdtest.Build(t, ".")
	path := filepath.Join(t.TempDir(), "BENCH_step.json")
	out, code := cmdtest.Run(t, bin, 5*time.Minute, "-bench-json", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		GoVersion  string `json:"go_version"`
		Benchmarks []struct {
			Name      string  `json:"name"`
			NsPerStep float64 `json:"ns_per_step"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if parsed.GoVersion == "" || len(parsed.Benchmarks) == 0 {
		t.Fatalf("empty benchmark file: %s", data)
	}
	for _, b := range parsed.Benchmarks {
		if b.NsPerStep <= 0 {
			t.Fatalf("non-positive timing for %s", b.Name)
		}
	}
}
