package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

func TestCCBenchList(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, time.Minute, "-list")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, id := range []string{"T2", "T3", "T45", "SNAP", "F3", "ABL"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %s missing from -list:\n%s", id, out)
		}
	}
}

func TestCCBenchSingleExperimentQuick(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 3*time.Minute, "-exp", "F3", "-quick")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "All checked claims hold.") {
		t.Fatalf("F3 did not confirm its claims:\n%s", out)
	}
}

func TestCCBenchUnknownExperiment(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, time.Minute, "-exp", "NOPE")
	if code != 2 {
		t.Fatalf("exit %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown experiment") {
		t.Fatalf("missing error message:\n%s", out)
	}
}

// TestCCBenchMCCache: -cache routes the MC experiment's exhaustive
// cells through the shared verdict store — the second run serves every
// cell from cache (and must reach the same conclusions).
func TestCCBenchMCCache(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	dir := t.TempDir()
	out1, code := cmdtest.Run(t, bin, 5*time.Minute, "-exp", "MC", "-quick", "-cache", dir)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out1)
	}
	if !strings.Contains(out1, "All checked claims hold.") {
		t.Fatalf("MC did not confirm its claims:\n%s", out1)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no verdicts persisted in %s (%v)", dir, err)
	}
	out2, code := cmdtest.Run(t, bin, 2*time.Minute, "-exp", "MC", "-quick", "-cache", dir)
	if code != 0 {
		t.Fatalf("cached rerun: exit %d:\n%s", code, out2)
	}
	if out1 != out2 {
		t.Fatalf("cached MC output differs:\n%s\nvs\n%s", out1, out2)
	}
}

func TestCCBenchBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark timing loop")
	}
	bin := cmdtest.Build(t, ".")
	path := filepath.Join(t.TempDir(), "BENCH_step.json")
	out, code := cmdtest.Run(t, bin, 5*time.Minute, "-bench-json", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		GoVersion  string `json:"go_version"`
		Benchmarks []struct {
			Name      string  `json:"name"`
			NsPerStep float64 `json:"ns_per_step"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if parsed.GoVersion == "" || len(parsed.Benchmarks) == 0 {
		t.Fatalf("empty benchmark file: %s", data)
	}
	for _, b := range parsed.Benchmarks {
		if b.NsPerStep <= 0 {
			t.Fatalf("non-positive timing for %s", b.Name)
		}
	}
}
