package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

// killArgs is a workload big enough (~700k states) that the process
// can be reliably interrupted mid-exploration, with a checkpoint
// cadence fine enough that a snapshot lands within the first fraction
// of the run.
func killArgs(cache string) []string {
	return []string{
		"-alg", "token-ring", "-topo", "ring:7", "-daemon", "central",
		"-max-states", "700000", "-checkpoint-every", "50000",
		"-cache", cache, "-j", "2",
	}
}

// startAndSignal launches the run, waits for a checkpoint file to
// appear under the cache, then delivers sig. It reports whether the
// signal was delivered before the process finished on its own (a very
// fast machine can win the race; callers degrade to verdict-equality
// assertions then).
func startAndSignal(t *testing.T, bin, cache string, sig syscall.Signal) (exitCode int, signaled bool) {
	t.Helper()
	cmd := exec.Command(bin, killArgs(cache)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	// Wait for a snapshot written by *this* process (a resumed run
	// starts with its predecessor's checkpoint already on disk).
	started := time.Now()
	ckptDir := filepath.Join(cache, "checkpoints")
	deadline := time.After(2 * time.Minute)
	fresh := func() bool {
		entries, _ := filepath.Glob(filepath.Join(ckptDir, "*", "*.ckpt"))
		for _, e := range entries {
			if fi, err := os.Stat(e); err == nil && fi.ModTime().After(started) {
				return true
			}
		}
		return false
	}
	for {
		if fresh() {
			break
		}
		select {
		case err := <-done:
			// Finished before any snapshot was observed.
			if err != nil {
				t.Fatalf("run finished early with error: %v", err)
			}
			return 0, false
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("no checkpoint appeared within 2 minutes")
		case <-time.After(20 * time.Millisecond):
		}
	}
	cmd.Process.Signal(sig)
	err := <-done
	if err == nil {
		return 0, true // completed despite the signal (raced past it)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), true
	}
	t.Fatalf("wait: %v", err)
	return 0, false
}

// TestCheckpointSurvivesKill is the CLI acceptance path for the
// checkpoint layer: a run interrupted by SIGTERM (graceful, exit 3)
// and then by SIGKILL (nothing graceful about it) must, on the next
// identical invocation, resume from the last snapshot and produce a
// stored verdict byte-identical to an uninterrupted run's.
func TestCheckpointSurvivesKill(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	work := t.TempDir()
	refCache := filepath.Join(work, "ref")
	killCache := filepath.Join(work, "killed")

	// The uninterrupted reference.
	refOut, code := cmdtest.Run(t, bin, 5*time.Minute, killArgs(refCache)...)
	if code != 0 {
		t.Fatalf("reference run exit %d:\n%s", code, refOut)
	}

	// Phase 1: SIGTERM → exit 3, checkpoint on disk.
	code, signaled := startAndSignal(t, bin, killCache, syscall.SIGTERM)
	sawInterrupt := false
	if signaled && code != 0 {
		if code != 3 {
			t.Fatalf("SIGTERM'd run exited %d, want 3", code)
		}
		sawInterrupt = true
		if entries, _ := filepath.Glob(filepath.Join(killCache, "checkpoints", "*", "*.ckpt")); len(entries) == 0 {
			t.Fatal("exit 3 but no checkpoint on disk")
		}
	}

	// Phase 2: resume and SIGKILL mid-run — the crash the snapshot
	// format is designed around.
	if sawInterrupt {
		if code, signaled = startAndSignal(t, bin, killCache, syscall.SIGKILL); signaled && code != -1 && code != 0 {
			t.Fatalf("SIGKILL'd run exited %d", code)
		}
	}

	// Phase 3: run to completion and compare against the reference.
	out, code := cmdtest.Run(t, bin, 5*time.Minute, killArgs(killCache)...)
	if code != 0 {
		t.Fatalf("final run exit %d:\n%s", code, out)
	}
	if sawInterrupt && !strings.Contains(out, "[resumed from") {
		t.Fatalf("final run did not resume from the checkpoint:\n%s", out)
	}
	refEntry := verdictFile(t, refCache)
	killEntry := verdictFile(t, killCache)
	if string(refEntry) != string(killEntry) {
		t.Fatalf("verdict after kill/resume differs from uninterrupted run:\n%s\nvs\n%s", killEntry, refEntry)
	}
	// The completed job must have cleaned its snapshot up.
	if entries, _ := filepath.Glob(filepath.Join(killCache, "checkpoints", "*", "*.ckpt")); len(entries) != 0 {
		t.Fatalf("checkpoint not deleted after completion: %v", entries)
	}
	if !sawInterrupt {
		t.Log("machine outran both signals; only verdict equality was asserted")
	}
}

func verdictFile(t *testing.T, cache string) []byte {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(cache, "*", "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one verdict entry under %s, got %v (%v)", cache, entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckpointEveryNeedsCache: asking for checkpoints without a
// store to keep them in is a usage error, not a silent no-op.
func TestCheckpointEveryNeedsCache(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, time.Minute,
		"-alg", "cc2", "-topo", "ring:3", "-checkpoint-every", "1000")
	if code != 2 {
		t.Fatalf("exit %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "-checkpoint-every needs -cache") {
		t.Fatalf("missing usage message:\n%s", out)
	}
}

// TestMemBudgetGrammar: byte-size suffixes parse; garbage is a usage
// error.
func TestMemBudgetGrammar(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "cc2", "-topo", "ring:3", "-init", "cc", "-daemon", "central", "-mem-budget", "64K")
	if code != 0 {
		t.Fatalf("exit %d with -mem-budget 64K:\n%s", code, out)
	}
	if !strings.Contains(out, "verified exhaustively") {
		t.Fatalf("spilled run did not verify:\n%s", out)
	}
	out, code = cmdtest.Run(t, bin, time.Minute,
		"-alg", "cc2", "-topo", "ring:3", "-mem-budget", "lots")
	if code != 2 {
		t.Fatalf("exit %d for -mem-budget lots, want 2:\n%s", code, out)
	}
}
