// Command cccheck verifies the committee-coordination specification
// instead of sampling it: in exhaustive mode it enumerates the full
// reachable configuration space of an algorithm on a small topology —
// from every initial configuration of the chosen fault family, branching
// over every daemon choice — and checks Exclusion, Synchronization,
// Essential Discussion, closure of Correct(p), convergence bounds and
// deadlock-freedom on every state and transition (the §2.5
// snap-stabilization contract as a proof-by-enumeration). In random mode
// it is a scenario harness: randomized topologies × random initial
// configurations × real daemons, monitored by the runtime spec checkers.
// In campaign mode the flags become comma lists and the cartesian grid
// fans across the worker pool. In query mode nothing is explored: the
// command reads an existing -cache warehouse and answers
// list/filter/summary/diff questions over the stored verdicts, with
// JSON bytes identical to the corresponding ccserve endpoints.
//
//	cccheck -alg cc2 -topo ring:3                         # exhaustive, all daemon modes
//	cccheck -alg cc2 -topo ring:4 -init cc -daemon central  # the scaled instance (78k states, <1s)
//	cccheck -alg cc2 -topo ring:3 -cache ./verdicts       # reuse/persist verdicts (shared with ccserve)
//	cccheck -alg cc1 -topo star:4 -init random -random-inits 128
//	cccheck -alg cc2 -topo ring:3 -mutate leave-early     # must be caught (exit 1 + trace)
//	cccheck -mode random -runs 64 -steps 4000             # randomized scenario harness
//	cccheck -alg dining -topo ring:3                      # baselines: legit init only
//	cccheck -alg token-ring -topo ring:5 -symmetry        # quotient modulo ring rotation
//	cccheck -mode campaign -alg cc1,cc2,cc3 -topo ring:3,star:4 \
//	        -daemon central,synchronous -init legit,cc -cache ./verdicts -j 8
//	cccheck -mode query -cache ./verdicts -filter alg=cc2,verdict=violated
//	cccheck -mode query -cache ./verdicts -summary <campaign-id>
//	cccheck -mode query -cache ./verdicts -diff <id-a>,<id-b>
//
// A campaign streams per-cell progress, persists every completed cell
// before moving on, and prints one aggregate report whose bytes are
// identical at any -j; an interrupted campaign (Ctrl-C) resumes from
// the cache on the next run. A run that hits a bound
// (-max-states/-max-depth/-max-branch) reports "bounded", never
// "verified". -symmetry requires a model with a verified automorphism
// group (the token-ring baseline on rings; the CC algorithms on
// disjoint:K,S) and is exact: same verdict, states quotiented into
// rotation orbits.
//
// Two knobs decouple an exploration from this machine and this
// process (see docs/architecture.md):
//
//   - -mem-budget 256M bounds the explorer's in-memory footprint; past
//     it the open queue and the cold visited arena spill to temp files
//     and the verdict is byte-identical to the in-memory run.
//   - with -cache, a run checkpoints a resumable snapshot under the
//     job's content key every -checkpoint-every expanded states and on
//     SIGINT/SIGTERM (exit 3); re-running the same command resumes
//     from the snapshot — surviving even kill -9, which loses at most
//     one checkpoint interval — and finishes with verdict bytes
//     identical to an uninterrupted run.
//
// The -cache warehouse has two engines, selected by -store-engine: dir
// (one file per verdict, the default) and log (append-only checksummed
// segments with background compaction). Both serve byte-identical
// entries and share the same directory layout for campaign manifests,
// checkpoints and quarantine; pick one per directory and stay with it.
// Every CLI in this module accepts -j as the worker-count spelling
// (ccserve also keeps -job-workers; giving both different values is a
// usage error).
//
// The query grammar: -filter takes comma-separated key=value pairs over
// alg, topo, daemon, init, mutation and verdict (verified | bounded |
// violated); -summary aggregates one campaign's pass rates; -diff
// compares two campaigns cell by cell. See docs/api.md for the full
// grammar and the matching HTTP endpoints.
//
// Unknown flag-grammar values — a misspelled daemon, an out-of-range
// topology size like ring:0, a trailing comma in a campaign list — are
// usage errors (exit 2 with a message), never silent defaults.
//
// -chaos SPEC (e.g. "seed=7,write=0.05,torn=0.02,flip=0.01") routes
// every durable I/O path — store writes, checkpoints, spill files —
// through a deterministic fault injector (see docs/robustness.md);
// verdicts stay byte-identical to a fault-free run or the process
// exits loudly with a classified I/O error, never a wrong answer.
//
// Exit status:
//
//	0  every check passed
//	1  a violation was found (counterexample traces are printed)
//	2  usage error (bad flag grammar, invalid spec)
//	3  interrupted mid-exploration (checkpoint saved if -cache was given)
//	4  classified I/O failure (transient/permanent/corrupt) that
//	   survived the retry budget: the message names the path, errno and
//	   class; the cache and checkpoints are consistent — fix the disk
//	   and re-run
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	var (
		algName    = flag.String("alg", "cc2", "algorithm: cc1 | cc2 | cc3 | dining | token-ring (campaign mode: comma list)")
		topo       = flag.String("topo", "", "topology spec (see internal/hypergraph.Parse); default ring:3 in exhaustive/campaign mode, random scenarios in random mode (campaign mode: comma list)")
		mode       = flag.String("mode", "exhaustive", "exhaustive | random | campaign")
		daemons    = flag.String("daemon", "", "comma list; exhaustive/campaign: central|synchronous|all (default all three); random: weakly-fair|central|synchronous|random")
		initMode   = flag.String("init", "", "initial-configuration family: legit | cc | cc-full | random (default cc-full for CC, legit for the baselines; campaign mode: comma list)")
		randInits  = flag.Int("random-inits", 256, "initial configurations for -init random")
		maxStates  = flag.Int("max-states", 2_000_000, "distinct-configuration bound (0 or negative = unlimited)")
		maxDepth   = flag.Int("max-depth", 0, "BFS depth bound (0 = unlimited)")
		maxBranch  = flag.Int("max-branch", 1<<16, "per-configuration branch bound")
		noConverge = flag.Bool("no-converge", false, "skip the one-round convergence check (synchronous mode only)")
		noDeadlock = flag.Bool("no-deadlock", false, "do not treat terminal configurations as violations")
		noClosure  = flag.Bool("no-closure", false, "skip the Correct(p)-closure check")
		symmetry   = flag.Bool("symmetry", false, "explore modulo the model's rotation/block automorphism group (exact; only for models that declare one)")
		mutate     = flag.String("mutate", "", "deliberately break a guard: "+strings.Join(explore.Mutations(), " | ")+" (campaign mode: comma list, 'none' = unmutated)")
		cacheDir   = flag.String("cache", "", "content-addressed verdict store directory: serve cached verdicts, persist fresh ones (shared with ccserve and ccbench -cache)")
		storeEng   = flag.String("store-engine", "dir", "store backend for -cache: dir (one file per verdict) or log (append-only segments with compaction); Get bytes are identical either way")
		filterStr  = flag.String("filter", "", "query mode: filter grammar, e.g. 'alg=cc2,topo=ring:3,verdict=violated' (empty = every stored verdict)")
		summaryID  = flag.String("summary", "", "query mode: aggregate this campaign id's pass rate instead of listing verdicts")
		diffSpec   = flag.String("diff", "", "query mode: 'A,B' — diff two campaign ids cell by cell instead of listing verdicts")
		memBudget  = flag.String("mem-budget", "", "in-memory budget for the explorer's frontier + visited arena (e.g. 256M, 2G; empty = unlimited): past it the exploration spills to temp files with an identical verdict")
		ckptEvery  = flag.Int("checkpoint-every", 1_000_000, "with -cache: persist a resumable exploration snapshot under the job's content key every N expanded states and on SIGINT/SIGTERM, so an interrupted run resumes instead of restarting (0 = on interruption only, negative = disabled)")
		spillDir   = flag.String("spill-dir", "", "directory for out-of-core spill scratch (empty = the system temp dir)")
		chaosSpec  = flag.String("chaos", "", "fault-injection spec for all durable I/O, e.g. 'seed=7,write=0.05,torn=0.02,flip=0.01' (keys: seed|write|read|torn|sync|rename|flip|perm|fail-write-at|fail-read-at|fail-rename-at); verdicts stay byte-identical or the run fails loudly with a classified error (exit 4)")
		campJSON   = flag.String("campaign-json", "", "campaign mode: read the grid from this JSON campaign.Spec file instead of the flags")
		seed       = flag.Int64("seed", 1, "random seed")
		runs       = flag.Int("runs", 32, "random mode: scenarios to run")
		steps      = flag.Int("steps", 4000, "random mode: steps per scenario")
		maxN       = flag.Int("max-n", 14, "random mode: professor bound for random scenarios")
		traces     = flag.Int("traces", 3, "max violations to collect and print per run")
		workers    = cliutil.Workers(flag.CommandLine, "j", 0, "worker-pool width (0 = GOMAXPROCS)")
		scalar     = flag.Bool("scalar", false, "force the scalar (non-batch) expansion path; the verdict is byte-identical by contract — this flag exists for differential drills and perf comparison")
		peersSpec  = flag.String("peers", "", "exhaustive mode: distribute each job across this comma-separated list of ccserve peer base URLs (one visited-set shard per peer; the peers must share one -cache directory); the verdict is byte-identical to a single-node run by the cluster differential battery's contract")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %v", flag.Args())
	}
	if w, err := workers.Value(); err != nil {
		fatalf("%v", err)
	} else if w > 0 {
		par.Workers = w
	}
	if *maxStates == 0 {
		// The flag has always meant "0 = unlimited"; JobSpec encodes
		// unlimited as a negative bound (its JSON zero value means
		// "default"), so translate here.
		*maxStates = -1
	}

	switch *mode {
	case "exhaustive", "campaign":
		if *topo == "" {
			*topo = "ring:3"
		}
	case "random", "query":
	default:
		fatalf("unknown mode %q (exhaustive | random | campaign | query)", *mode)
	}
	if *campJSON != "" && *mode != "campaign" {
		fatalf("-campaign-json applies to -mode campaign only (current mode: %s)", *mode)
	}

	scalars := store.JobSpec{
		RandomInits: *randInits, Seed: *seed,
		MaxStates: *maxStates, MaxDepth: *maxDepth, MaxBranch: *maxBranch,
		MaxViolations: *traces, Symmetry: *symmetry,
		NoDeadlock: *noDeadlock, NoClosure: *noClosure, NoConverge: *noConverge,
	}
	budget, err := campaign.ParseBytes("mem-budget", *memBudget)
	if err != nil {
		fatalf("%v", err)
	}
	if *ckptEvery > 0 && *cacheDir == "" {
		// Differentiate "user asked for checkpoints" from the default.
		set := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "checkpoint-every" {
				set = true
			}
		})
		if set {
			fatalf("-checkpoint-every needs -cache DIR: snapshots live under the job's content key in the verdict store")
		}
	}
	var fsys chaos.FS
	if *chaosSpec != "" {
		faults, err := chaos.ParseFaults(*chaosSpec)
		if err != nil {
			fatalf("%v", err)
		}
		fsys = chaos.NewFaultFS(nil, faults)
	}
	var peers []string
	if *peersSpec != "" {
		if *mode != "exhaustive" {
			fatalf("-peers applies to -mode exhaustive only (current mode: %s)", *mode)
		}
		for _, p := range strings.Split(*peersSpec, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, strings.TrimRight(p, "/"))
			}
		}
		if len(peers) == 0 {
			fatalf("-peers lists no usable URLs")
		}
	}
	exec := execConfig{
		cacheDir: *cacheDir, engine: *storeEng, memBudget: budget, checkpointEvery: *ckptEvery,
		spillDir: *spillDir, fs: fsys, scalar: *scalar, peers: peers,
	}

	switch *mode {
	case "exhaustive":
		switch *algName {
		case "cc1", "cc2", "cc3", "dining", "token-ring":
		default:
			fatalf("unknown algorithm %q (cc1 | cc2 | cc3 | dining | token-ring)", *algName)
		}
		runExhaustive(*algName, *topo, *daemons, *initMode, *mutate, scalars, exec)
	case "campaign":
		runCampaign(*algName, *topo, *daemons, *initMode, *mutate, scalars, exec, *campJSON)
	case "random":
		switch *algName {
		case "cc1", "cc2", "cc3", "dining", "token-ring":
		default:
			fatalf("unknown algorithm %q (cc1 | cc2 | cc3 | dining | token-ring)", *algName)
		}
		runRandom(*algName, *topo, *daemons, *runs, *steps, *maxN, *seed, *mutate)
	case "query":
		runQuery(exec, *filterStr, *summaryID, *diffSpec)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cccheck: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "cccheck: run 'cccheck -h' for usage")
	os.Exit(2)
}

// exitIO terminates with exit code 4 when err carries a classified I/O
// failure (path + errno + class on stderr), falling back to a usage
// error otherwise. Verdict streams on stdout stay clean either way.
func exitIO(err error) {
	if chaos.Classify(err) != chaos.Unknown {
		fmt.Fprintf(os.Stderr, "cccheck: %s\n", chaos.Describe(err))
		os.Exit(4)
	}
	fatalf("%v", err)
}

// openStore opens the verdict store (nil without -cache) and performs
// the startup hygiene pass: half-written store temp files, orphaned
// checkpoints and spill scratch left by a killed process are swept and
// their counts reported. stderr only — stdout carries verdicts and
// must stay byte-stable.
func (e execConfig) openStore() store.Interface {
	if e.cacheDir == "" {
		return nil // untyped nil: campaign.Run and the nil checks below rely on it
	}
	st, err := store.OpenEngine(e.engine, e.cacheDir, e.fs)
	if err != nil {
		exitIO(err)
	}
	if n := st.GCTemp(); n > 0 {
		fmt.Fprintf(os.Stderr, "cccheck: removed %d orphaned store temp file(s)\n", n)
	}
	if n := st.GCCheckpoints(); n > 0 {
		fmt.Fprintf(os.Stderr, "cccheck: removed %d orphaned checkpoint file(s)\n", n)
	}
	if n := explore.GCSpill(e.spillDir); n > 0 {
		fmt.Fprintf(os.Stderr, "cccheck: removed %d orphaned spill scratch entr(ies)\n", n)
	}
	st.SetLog(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cccheck: "+format+"\n", args...)
	})
	return st
}

// --- Exhaustive mode ----------------------------------------------------------

// execConfig carries the result-irrelevant execution knobs (cache,
// out-of-core budget, checkpoint cadence) from the flags to the modes.
type execConfig struct {
	cacheDir        string
	engine          string // -store-engine: dir | log
	memBudget       int64
	checkpointEvery int
	spillDir        string
	fs              chaos.FS // -chaos fault injector (nil = host filesystem)
	scalar          bool     // -scalar: force the non-batch expansion path
	peers           []string // -peers: distribute jobs across these ccserve peers
}

// runExhaustive checks one (alg, topo, init) instance under each of the
// requested daemon branching modes. Every (instance, mode) cell is a
// content-addressed job executed through the same runner as campaigns
// and ccserve, so with -cache their verdicts are interchangeable — and
// with checkpointing, a SIGTERM'd (or SIGKILL'd) run resumes from its
// last snapshot on the next identical invocation, exit code 3.
func runExhaustive(algName, topoSpec, daemons, initName, mutation string, scalars store.JobSpec, exec execConfig) {
	st := exec.openStore()
	daemonList, err := campaign.ParseList("daemon", daemons)
	if err != nil {
		fatalf("%v", err)
	}
	if len(daemonList) == 0 {
		daemonList = campaign.Daemons()
	}
	specs := make([]store.JobSpec, len(daemonList))
	for i, d := range daemonList {
		s := scalars
		s.Alg, s.Topo, s.Daemon, s.Init, s.Mutation = algName, topoSpec, d, initName, mutation
		specs[i] = s.Canonical()
		if err := campaign.Validate(specs[i]); err != nil {
			fatalf("%v", err)
		}
	}
	h, err := hypergraph.Parse(specs[0].Topo, rand.New(rand.NewSource(specs[0].Seed)))
	if err != nil {
		fatalf("%v", err) // unreachable: Validate parsed it
	}
	fmt.Printf("topology: %s\n", h)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	failed := false
	bounded := false
	for _, s := range specs {
		var res *explore.Result
		cached := false
		if st != nil {
			res, _, cached = st.Get(s)
		}
		var stats explore.RunStats
		if res == nil {
			eo := campaign.ExecOptions{
				Workers: par.Workers, Stats: &stats,
				MemBudget: exec.memBudget, SpillDir: exec.spillDir,
				FS: exec.fs, Scalar: exec.scalar,
			}
			if st != nil && exec.checkpointEvery >= 0 && len(exec.peers) == 0 {
				eo.Checkpoints = st
				eo.CheckpointEvery = exec.checkpointEvery
			}
			if len(exec.peers) > 0 {
				// Distributed: the peers shard the visited set; recovery
				// runs on per-shard barrier snapshots in the shared store
				// instead of the single-node checkpoint.
				res, err = campaign.ExecuteCluster(ctx, s, exec.peers, eo)
			} else {
				res, err = campaign.ExecuteOpts(ctx, s, eo)
			}
			if errors.Is(err, campaign.ErrInterrupted) {
				if eo.Checkpoints != nil {
					fmt.Printf("interrupted at %d states — checkpoint saved; re-run the same command to resume\n", res.States)
				} else {
					fmt.Printf("interrupted at %d states\n", res.States)
				}
				os.Exit(3)
			}
			if err != nil {
				exitIO(err)
			}
			if st != nil {
				if _, err := st.Put(s, res); err != nil {
					exitIO(err)
				}
			}
		}
		tag := ""
		if cached {
			tag = "  [cache hit]"
		}
		if stats.ResumedStates > 0 {
			tag += fmt.Sprintf("  [resumed from %d states]", stats.ResumedStates)
		}
		fmt.Println(res.Summary() + tag)
		if res.MaxIncorrectDepth >= 0 {
			fmt.Printf("  deepest non-AllCorrect configuration: depth %d\n", res.MaxIncorrectDepth)
		}
		for _, v := range res.Violations {
			fmt.Print(explore.RenderTrace(v))
		}
		if !res.Ok() {
			failed = true
		}
		if res.Truncated {
			bounded = true
		}
	}
	switch {
	case failed:
		fmt.Println("RESULT: VIOLATIONS FOUND")
		os.Exit(1)
	case bounded:
		// A truncated run is evidence, not proof: say "bounded", never
		// "verified".
		fmt.Println("RESULT: all checks passed within bounds (bounded — NOT a verification)")
	default:
		fmt.Println("RESULT: all checks passed — verified exhaustively")
	}
}

// --- Campaign mode ------------------------------------------------------------

func runCampaign(algs, topos, daemons, inits, mutations string, scalars store.JobSpec, exec execConfig, jsonPath string) {
	var cspec campaign.Spec
	if jsonPath != "" {
		// The spec file carries the whole grid; explicitly-set grid or
		// scalar flags would be silently ignored — reject the mix.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "alg", "topo", "daemon", "init", "mutate", "random-inits", "seed",
				"max-states", "max-depth", "max-branch", "traces", "symmetry",
				"no-deadlock", "no-closure", "no-converge":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fatalf("-campaign-json takes the whole grid from the file; drop %s", strings.Join(conflicting, " "))
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := unmarshalStrict(data, &cspec); err != nil {
			fatalf("%s: %v", jsonPath, err)
		}
	} else {
		var err error
		cspec, err = campaign.ParseSpec(algs, topos, daemons, inits, mutations)
		if err != nil {
			fatalf("%v", err)
		}
		cspec.SetScalars(scalars)
	}
	cells, err := cspec.Expand()
	if err != nil {
		fatalf("%v", err)
	}
	st := exec.openStore()
	fmt.Printf("campaign: %d cells", len(cells))
	if st != nil {
		fmt.Printf(" (cache %s)", st.Dir())
	}
	fmt.Println()
	if st != nil {
		// Persist the manifest up front so the query plane (-mode query,
		// ccserve summary/diff) can address this campaign by id even if
		// the run is interrupted. Same id ccserve computes at submit.
		keys := make([]string, len(cells))
		for i, c := range cells {
			keys[i] = c.Canonical().Key()
		}
		id := store.CampaignID(keys)
		if err := st.PutCampaign(id, keys); err != nil {
			exitIO(err)
		}
		fmt.Printf("campaign id: %s\n", id)
	}

	// Ctrl-C / SIGTERM stops scheduling new cells; completed ones are
	// already persisted, so the next identical run resumes from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ropts := campaign.RunOptions{
		Workers:   par.Workers,
		MemBudget: exec.memBudget,
		SpillDir:  exec.spillDir,
		FS:        exec.fs,
		Scalar:    exec.scalar,
		Progress: func(ev campaign.Event) {
			resumed := ""
			if ev.Resumed > 0 {
				resumed = fmt.Sprintf(", resumed from %d states", ev.Resumed)
			}
			retried := ""
			if ev.Attempts > 1 {
				retried = fmt.Sprintf(" (attempt %d)", ev.Attempts)
			}
			switch ev.Status {
			case campaign.StatusSkipped:
				fmt.Printf("  [%d/%d] %-44s  skipped (interrupted)\n", ev.Index+1, ev.Total, ev.Spec)
			case campaign.StatusFailed:
				fmt.Printf("  [%d/%d] %-44s  FAILED%s\n", ev.Index+1, ev.Total, ev.Spec, retried)
			case campaign.StatusHit:
				fmt.Printf("  [%d/%d] %-44s  %s (cache hit)\n", ev.Index+1, ev.Total, ev.Spec, ev.Verdict)
			default:
				fmt.Printf("  [%d/%d] %-44s  %s (%d states, %v%s)%s\n", ev.Index+1, ev.Total, ev.Spec, ev.Verdict, ev.States, ev.Elapsed.Round(time.Millisecond), resumed, retried)
			}
		},
	}
	if st != nil && exec.checkpointEvery >= 0 {
		// In-flight cell snapshots: an interrupted cell resumes
		// mid-exploration on the next run, not just cell-granular
		// (0 = snapshot on interruption only, same as exhaustive mode).
		ropts.Checkpoint = true
		ropts.CheckpointEvery = exec.checkpointEvery
	}
	rep := campaign.Run(ctx, st, cells, ropts)
	fmt.Println()
	rep.Render(os.Stdout)
	if !rep.Complete() {
		fmt.Println("campaign interrupted — re-run the same command to resume from the cache")
	}
	if !rep.Ok() {
		// A refuted spec (exit 1) outranks an I/O casualty (exit 4):
		// violations are the answer the user asked for, failed cells are
		// an environment problem. Exit 4 only when every failure is a
		// classified I/O error and nothing was violated.
		if rep.Violated == 0 && rep.Failed > 0 {
			ioOnly := true
			for _, c := range rep.Results {
				if c.Status == campaign.StatusFailed && c.ErrorClass == "" {
					ioOnly = false
					break
				}
			}
			if ioOnly {
				for _, c := range rep.Results {
					if c.Status == campaign.StatusFailed {
						fmt.Fprintf(os.Stderr, "cccheck: cell %s failed (%s): %s\n", c.Spec, c.ErrorClass, c.Error)
					}
				}
				os.Exit(4)
			}
		}
		os.Exit(1)
	}
}

// --- Query mode ---------------------------------------------------------------

// runQuery is the offline face of the query plane: the same
// list/summary/diff answers ccserve's /v1/verdicts and /v1/campaigns
// endpoints give, computed directly from the cache directory and
// printed as one JSON document on stdout (byte-identical to the HTTP
// body, whichever engine holds the warehouse).
func runQuery(exec execConfig, filter, summary, diffSpec string) {
	if exec.cacheDir == "" {
		fatalf("-mode query needs -cache DIR")
	}
	if summary != "" && diffSpec != "" {
		fatalf("-summary and -diff are mutually exclusive")
	}
	st := exec.openStore()
	defer st.Close()

	var doc any
	switch {
	case summary != "":
		s, err := store.CampaignSummary(st, summary)
		if err != nil {
			fatalf("%v", err)
		}
		doc = s
	case diffSpec != "":
		a, b, ok := strings.Cut(diffSpec, ",")
		a, b = strings.TrimSpace(a), strings.TrimSpace(b)
		if !ok || a == "" || b == "" {
			fatalf("-diff wants two campaign ids: A,B")
		}
		d, err := store.DiffCampaigns(st, a, b)
		if err != nil {
			fatalf("%v", err)
		}
		doc = d
	default:
		f, err := store.ParseFilter(filter)
		if err != nil {
			fatalf("%v", err)
		}
		rows, err := store.List(st, f)
		if err != nil {
			exitIO(err)
		}
		doc = map[string]any{"count": len(rows), "verdicts": rows}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		exitIO(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// --- Random scenario harness --------------------------------------------------

type scenarioOutcome struct {
	topo       string
	states     int // steps actually executed
	convenes   int
	violations []spec.Violation
}

func runRandom(algName, topoSpec, daemons string, runs, steps, maxN int, seed int64, mutation string) {
	if algName == "dining" || algName == "token-ring" {
		fatalf("random mode supports the CC algorithms (baselines are not stabilizing)")
	}
	if mutation != "" {
		fatalf("-mutate is exhaustive-mode only")
	}
	variant := map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}[algName]
	daemonName := daemons
	if daemonName == "" {
		daemonName = "weakly-fair"
	}
	mkDaemon := func() sim.Daemon {
		switch daemonName {
		case "weakly-fair":
			return &sim.WeaklyFair{MaxAge: 6}
		case "central":
			return &sim.Central{}
		case "synchronous":
			return sim.Synchronous{}
		case "random":
			return sim.RandomSubset{P: 0.5}
		}
		fatalf("unknown random-mode daemon %q (weakly-fair | central | synchronous | random)", daemonName)
		return nil
	}
	mkDaemon() // validate before fanning out
	if topoSpec != "" {
		// Validate the spec before the fan-out; each cell re-parses with
		// its own rng so random families still vary per scenario.
		if _, err := hypergraph.Parse(topoSpec, rand.New(rand.NewSource(seed))); err != nil {
			fatalf("%v", err)
		}
	}

	outcomes := par.Map(runs, func(i int) scenarioOutcome {
		cellSeed := seed + int64(i)
		rng := rand.New(rand.NewSource(cellSeed))
		var h *hypergraph.H
		if topoSpec == "" {
			h = hypergraph.RandomScenario(rng, maxN)
		} else {
			var err error
			h, err = hypergraph.Parse(topoSpec, rng)
			if err != nil {
				panic(err) // spec validated above; unreachable
			}
		}
		alg := core.New(variant, h, nil)
		env := core.NewAlwaysClient(h.N(), 2)
		r := core.NewRunner(alg, mkDaemon(), env, cellSeed, true /* random init: snap-stabilization */)
		chk := r.Checker(0)
		r.Run(steps)
		return scenarioOutcome{
			topo:       h.String(),
			states:     r.Engine.Steps(),
			convenes:   r.TotalConvenes(),
			violations: chk.Violations,
		}
	})

	totalViol := 0
	for i, o := range outcomes {
		status := "ok"
		if len(o.violations) > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", len(o.violations))
		}
		fmt.Printf("scenario %3d  seed=%-6d %-60s steps=%-6d convenes=%-5d %s\n",
			i, seed+int64(i), o.topo, o.states, o.convenes, status)
		for j, v := range o.violations {
			if j == 3 {
				fmt.Printf("    ... and %d more\n", len(o.violations)-3)
				break
			}
			fmt.Printf("    %s\n", v)
		}
		totalViol += len(o.violations)
	}
	fmt.Printf("\n%s × %d random scenarios (%s daemon, %d steps each, random init): %d violations\n",
		algName, runs, daemonName, steps, totalViol)
	if totalViol > 0 {
		os.Exit(1)
	}
}
