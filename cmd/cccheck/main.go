// Command cccheck verifies the committee-coordination specification
// instead of sampling it: in exhaustive mode it enumerates the full
// reachable configuration space of an algorithm on a small topology —
// from every initial configuration of the chosen fault family, branching
// over every daemon choice — and checks Exclusion, Synchronization,
// Essential Discussion, closure of Correct(p), convergence bounds and
// deadlock-freedom on every state and transition (the §2.5
// snap-stabilization contract as a proof-by-enumeration). In random mode
// it is a scenario harness: randomized topologies × random initial
// configurations × real daemons, monitored by the runtime spec checkers.
//
//	cccheck -alg cc2 -topo ring:3                         # exhaustive, all daemon modes
//	cccheck -alg cc2 -topo ring:4 -init cc -daemon central  # the scaled instance (78k states, <1s)
//	cccheck -alg cc2 -topo triples:3 -init cc -daemon central
//	cccheck -alg cc1 -topo star:4 -init random -random-inits 128
//	cccheck -alg cc2 -topo ring:3 -mutate leave-early     # must be caught (exit 1 + trace)
//	cccheck -mode random -runs 64 -steps 4000             # randomized scenario harness
//	cccheck -alg dining -topo ring:3                      # baselines: legit init only
//	cccheck -alg token-ring -topo ring:5 -symmetry        # quotient modulo ring rotation
//
// A run that hits a bound (-max-states/-max-depth/-max-branch) reports
// "bounded", never "verified". -symmetry requires a model with a
// verified automorphism group (the token-ring baseline on rings; the
// CC algorithms on disjoint:K,S) and is exact: same verdict, states
// quotiented into rotation orbits.
//
// Exit status: 0 if every check passed, 1 if any violation was found
// (counterexample traces are printed), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	var (
		algName    = flag.String("alg", "cc2", "cc1 | cc2 | cc3 | dining | token-ring")
		topo       = flag.String("topo", "", "topology spec (see internal/hypergraph.Parse); default ring:3 in exhaustive mode, random scenarios in random mode")
		mode       = flag.String("mode", "exhaustive", "exhaustive | random")
		daemons    = flag.String("daemon", "", "comma list; exhaustive: central|synchronous|all (default all three); random: weakly-fair|central|synchronous|random")
		initMode   = flag.String("init", "cc-full", "initial-configuration family: legit | cc | cc-full | random")
		randInits  = flag.Int("random-inits", 256, "initial configurations for -init random")
		maxStates  = flag.Int("max-states", 2_000_000, "distinct-configuration bound (0 = unlimited)")
		maxDepth   = flag.Int("max-depth", 0, "BFS depth bound (0 = unlimited)")
		maxBranch  = flag.Int("max-branch", 1<<16, "per-configuration branch bound")
		noConverge = flag.Bool("no-converge", false, "skip the one-round convergence check (synchronous mode only)")
		noDeadlock = flag.Bool("no-deadlock", false, "do not treat terminal configurations as violations")
		noClosure  = flag.Bool("no-closure", false, "skip the Correct(p)-closure check")
		symmetry   = flag.Bool("symmetry", false, "explore modulo the model's rotation/block automorphism group (exact; only for models that declare one)")
		mutate     = flag.String("mutate", "", "deliberately break a guard: "+strings.Join(explore.Mutations(), " | "))
		seed       = flag.Int64("seed", 1, "random seed")
		runs       = flag.Int("runs", 32, "random mode: scenarios to run")
		steps      = flag.Int("steps", 4000, "random mode: steps per scenario")
		maxN       = flag.Int("max-n", 14, "random mode: professor bound for random scenarios")
		traces     = flag.Int("traces", 3, "max violations to collect and print per run")
		workers    = flag.Int("j", 0, "worker-pool width (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *workers > 0 {
		par.Workers = *workers
	}

	switch *algName {
	case "cc1", "cc2", "cc3", "dining", "token-ring":
	default:
		fatalf("unknown algorithm %q", *algName)
	}

	switch *mode {
	case "exhaustive":
		if *topo == "" {
			*topo = "ring:3"
		}
		runExhaustive(*algName, *topo, *daemons, *initMode, *randInits, *maxStates, *maxDepth,
			*maxBranch, !*noConverge, !*noDeadlock, !*noClosure, *symmetry, *mutate, *seed, *traces)
	case "random":
		runRandom(*algName, *topo, *daemons, *runs, *steps, *maxN, *seed, *mutate)
	default:
		fatalf("unknown mode %q (exhaustive | random)", *mode)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cccheck: "+format+"\n", args...)
	os.Exit(2)
}

// --- Exhaustive mode ----------------------------------------------------------

func parseSelectionModes(s string) []sim.SelectionMode {
	if s == "" {
		return []sim.SelectionMode{sim.SelectCentral, sim.SelectSynchronous, sim.SelectAllSubsets}
	}
	var out []sim.SelectionMode
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "central":
			out = append(out, sim.SelectCentral)
		case "synchronous", "sync":
			out = append(out, sim.SelectSynchronous)
		case "all", "all-subsets":
			out = append(out, sim.SelectAllSubsets)
		default:
			fatalf("unknown exhaustive daemon mode %q (central | synchronous | all)", f)
		}
	}
	return out
}

func runExhaustive(algName, topoSpec, daemons, initName string, randInits, maxStates, maxDepth,
	maxBranch int, checkConverge, checkDeadlock, checkClosure, symmetry bool, mutation string, seed int64, traces int) {
	h, err := hypergraph.Parse(topoSpec, rand.New(rand.NewSource(seed)))
	if err != nil {
		fatalf("%v", err)
	}
	modes := parseSelectionModes(daemons)

	fmt.Printf("topology: %s\n", h)
	failed := false
	bounded := false
	for _, m := range modes {
		opts := explore.Options{
			Mode:          m,
			MaxStates:     maxStates,
			MaxDepth:      maxDepth,
			MaxBranch:     maxBranch,
			MaxViolations: traces,
			CheckDeadlock: checkDeadlock,
			Symmetry:      symmetry,
		}
		var res *explore.Result
		switch algName {
		case "cc1", "cc2", "cc3":
			variant := map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}[algName]
			im, err := explore.ParseInitMode(initName)
			if err != nil {
				fatalf("%v", err)
			}
			factory, err := explore.CC(variant, h, explore.CCOptions{
				Init: im, RandomCount: randInits, Seed: seed, Mutation: mutation,
			})
			if err != nil {
				fatalf("%v", err)
			}
			requireSyms(symmetry, factory().Syms == nil,
				"the CC algorithms read the identifier order (maxByID tie-breaks, min-id leader election), so nontrivial rotations are not automorphisms of CC ∘ TC on connected topologies; -symmetry is exact for CC only on block-symmetric disjoint:K,S topologies with a non-random init family")
			opts.CheckClosure = checkClosure
			if m == sim.SelectSynchronous {
				opts.CheckConvergence = checkConverge
			}
			res = explore.Explore(factory, opts)
		default: // baselines: not stabilizing, legit init only
			if mutation != "" {
				fatalf("-mutate applies to the CC algorithms only")
			}
			kind := baseline.Dining
			if algName == "token-ring" {
				kind = baseline.TokenRing
			}
			factory, err := explore.Baseline(kind, h, 1)
			if err != nil {
				fatalf("%v", err)
			}
			requireSyms(symmetry, factory().Syms == nil,
				"-symmetry needs a declared automorphism group: the token-ring baseline declares ring rotations; dining does not (its fork orientation and request tie-break read the committee index order)")
			res = explore.Explore(factory, opts)
		}
		fmt.Println(res.Summary())
		if res.MaxIncorrectDepth >= 0 {
			fmt.Printf("  deepest non-AllCorrect configuration: depth %d\n", res.MaxIncorrectDepth)
		}
		for _, v := range res.Violations {
			fmt.Print(explore.RenderTrace(v))
		}
		if !res.Ok() {
			failed = true
		}
		if res.Truncated {
			bounded = true
		}
	}
	switch {
	case failed:
		fmt.Println("RESULT: VIOLATIONS FOUND")
		os.Exit(1)
	case bounded:
		// A truncated run is evidence, not proof: say "bounded", never
		// "verified".
		fmt.Println("RESULT: all checks passed within bounds (bounded — NOT a verification)")
	default:
		fmt.Println("RESULT: all checks passed — verified exhaustively")
	}
}

// requireSyms rejects -symmetry for models without a verified
// automorphism group, explaining why the group is empty.
func requireSyms(symmetry, empty bool, why string) {
	if symmetry && empty {
		fatalf("this model declares no automorphisms: %s", why)
	}
}

// --- Random scenario harness --------------------------------------------------

type scenarioOutcome struct {
	topo       string
	states     int // steps actually executed
	convenes   int
	violations []spec.Violation
}

func runRandom(algName, topoSpec, daemons string, runs, steps, maxN int, seed int64, mutation string) {
	if algName == "dining" || algName == "token-ring" {
		fatalf("random mode supports the CC algorithms (baselines are not stabilizing)")
	}
	if mutation != "" {
		fatalf("-mutate is exhaustive-mode only")
	}
	variant := map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}[algName]
	daemonName := daemons
	if daemonName == "" {
		daemonName = "weakly-fair"
	}
	mkDaemon := func() sim.Daemon {
		switch daemonName {
		case "weakly-fair":
			return &sim.WeaklyFair{MaxAge: 6}
		case "central":
			return &sim.Central{}
		case "synchronous":
			return sim.Synchronous{}
		case "random":
			return sim.RandomSubset{P: 0.5}
		}
		fatalf("unknown random-mode daemon %q (weakly-fair | central | synchronous | random)", daemonName)
		return nil
	}
	mkDaemon() // validate before fanning out
	if topoSpec != "" {
		// Validate the spec before the fan-out; each cell re-parses with
		// its own rng so random families still vary per scenario.
		if _, err := hypergraph.Parse(topoSpec, rand.New(rand.NewSource(seed))); err != nil {
			fatalf("%v", err)
		}
	}

	outcomes := par.Map(runs, func(i int) scenarioOutcome {
		cellSeed := seed + int64(i)
		rng := rand.New(rand.NewSource(cellSeed))
		var h *hypergraph.H
		if topoSpec == "" {
			h = hypergraph.RandomScenario(rng, maxN)
		} else {
			var err error
			h, err = hypergraph.Parse(topoSpec, rng)
			if err != nil {
				panic(err) // spec validated above; unreachable
			}
		}
		alg := core.New(variant, h, nil)
		env := core.NewAlwaysClient(h.N(), 2)
		r := core.NewRunner(alg, mkDaemon(), env, cellSeed, true /* random init: snap-stabilization */)
		chk := r.Checker(0)
		r.Run(steps)
		return scenarioOutcome{
			topo:       h.String(),
			states:     r.Engine.Steps(),
			convenes:   r.TotalConvenes(),
			violations: chk.Violations,
		}
	})

	totalViol := 0
	for i, o := range outcomes {
		status := "ok"
		if len(o.violations) > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", len(o.violations))
		}
		fmt.Printf("scenario %3d  seed=%-6d %-60s steps=%-6d convenes=%-5d %s\n",
			i, seed+int64(i), o.topo, o.states, o.convenes, status)
		for j, v := range o.violations {
			if j == 3 {
				fmt.Printf("    ... and %d more\n", len(o.violations)-3)
				break
			}
			fmt.Printf("    %s\n", v)
		}
		totalViol += len(o.violations)
	}
	fmt.Printf("\n%s × %d random scenarios (%s daemon, %d steps each, random init): %d violations\n",
		algName, runs, daemonName, steps, totalViol)
	if totalViol > 0 {
		os.Exit(1)
	}
}
