package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

// TestCCCheckExhaustiveClean is the CLI-level acceptance run: CC2 on a
// 3-committee ring, the full CC-layer fault space, all three daemon
// branching modes — zero violations, exit 0.
func TestCCCheckExhaustiveClean(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 5*time.Minute,
		"-alg", "cc2", "-topo", "ring:3", "-init", "cc-full")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"46656 inits",
		"/central:",
		"/synchronous:",
		"/all-subsets:",
		"0 violations",
		"RESULT: all checks passed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "TRUNCATED") {
		t.Fatalf("acceptance run truncated:\n%s", out)
	}
}

// TestCCCheckMutationCaught: a deliberately broken guard must be caught
// and exit non-zero with a counterexample trace.
func TestCCCheckMutationCaught(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "cc2", "-topo", "ring:3", "-init", "legit", "-daemon", "central",
		"-mutate", "leave-early", "-traces", "1")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	for _, want := range []string{"essential-discussion", "init:", "exec", "RESULT: VIOLATIONS FOUND"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCCCheckSymmetry: the token-ring baseline on a ring explores
// modulo rotation; the reduced run must reach the same verdict as the
// unreduced one with fewer states (the differential battery proves the
// counts orbit-consistent; here the CLI surface is exercised).
func TestCCCheckSymmetry(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "token-ring", "-topo", "ring:4", "-daemon", "central", "-symmetry")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "(mod symmetry)") {
		t.Fatalf("symmetry did not engage:\n%s", out)
	}
}

// TestCCCheckBoundedNeverSaysVerified: a truncated run reports
// "bounded" and must not claim a verification.
func TestCCCheckBoundedNeverSaysVerified(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "cc2", "-topo", "ring:3", "-init", "cc", "-daemon", "central", "-max-states", "500")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "bounded") {
		t.Fatalf("truncated run does not say bounded:\n%s", out)
	}
	if strings.Contains(out, "verified") {
		t.Fatalf("truncated run claims verification:\n%s", out)
	}
}

func TestCCCheckRandomHarness(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 3*time.Minute,
		"-mode", "random", "-alg", "cc2", "-runs", "6", "-steps", "800")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "6 random scenarios") || !strings.Contains(out, "0 violations") {
		t.Fatalf("unexpected harness output:\n%s", out)
	}
}

func TestCCCheckFlagErrors(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-alg", "nope"}, "unknown algorithm"},
		{[]string{"-mode", "nope"}, "unknown mode"},
		{[]string{"-init", "nope"}, "unknown init mode"},
		{[]string{"-daemon", "nope"}, "unknown exhaustive daemon mode"},
		{[]string{"-mutate", "nope"}, "unknown mutation"},
		{[]string{"-mode", "random", "-alg", "dining"}, "random mode supports the CC algorithms"},
		{[]string{"-alg", "dining", "-mutate", "leave-early"}, "-mutate applies to the CC algorithms"},
		{[]string{"-alg", "cc2", "-topo", "ring:3", "-symmetry"}, "declares no automorphisms"},
		{[]string{"-alg", "dining", "-topo", "ring:3", "-symmetry"}, "declares no automorphisms"},
	} {
		out, code := cmdtest.Run(t, bin, time.Minute, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2:\n%s", tc.args, code, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%v: missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}
