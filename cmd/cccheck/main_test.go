package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

// TestCCCheckExhaustiveClean is the CLI-level acceptance run: CC2 on a
// 3-committee ring, the full CC-layer fault space, all three daemon
// branching modes — zero violations, exit 0.
func TestCCCheckExhaustiveClean(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 5*time.Minute,
		"-alg", "cc2", "-topo", "ring:3", "-init", "cc-full")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"46656 inits",
		"/central:",
		"/synchronous:",
		"/all-subsets:",
		"0 violations",
		"RESULT: all checks passed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "TRUNCATED") {
		t.Fatalf("acceptance run truncated:\n%s", out)
	}
}

// TestCCCheckMutationCaught: a deliberately broken guard must be caught
// and exit non-zero with a counterexample trace.
func TestCCCheckMutationCaught(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "cc2", "-topo", "ring:3", "-init", "legit", "-daemon", "central",
		"-mutate", "leave-early", "-traces", "1")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	for _, want := range []string{"essential-discussion", "init:", "exec", "RESULT: VIOLATIONS FOUND"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCCCheckSymmetry: the token-ring baseline on a ring explores
// modulo rotation; the reduced run must reach the same verdict as the
// unreduced one with fewer states (the differential battery proves the
// counts orbit-consistent; here the CLI surface is exercised).
func TestCCCheckSymmetry(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "token-ring", "-topo", "ring:4", "-daemon", "central", "-symmetry")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "(mod symmetry)") {
		t.Fatalf("symmetry did not engage:\n%s", out)
	}
}

// TestCCCheckBoundedNeverSaysVerified: a truncated run reports
// "bounded" and must not claim a verification.
func TestCCCheckBoundedNeverSaysVerified(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "cc2", "-topo", "ring:3", "-init", "cc", "-daemon", "central", "-max-states", "500")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "bounded") {
		t.Fatalf("truncated run does not say bounded:\n%s", out)
	}
	if strings.Contains(out, "verified") {
		t.Fatalf("truncated run claims verification:\n%s", out)
	}
}

func TestCCCheckRandomHarness(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 3*time.Minute,
		"-mode", "random", "-alg", "cc2", "-runs", "6", "-steps", "800")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "6 random scenarios") || !strings.Contains(out, "0 violations") {
		t.Fatalf("unexpected harness output:\n%s", out)
	}
}

func TestCCCheckFlagErrors(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-alg", "nope"}, "unknown algorithm"},
		{[]string{"-mode", "nope"}, "unknown mode"},
		{[]string{"-init", "nope"}, "unknown init mode"},
		{[]string{"-daemon", "nope"}, "unknown daemon mode"},
		{[]string{"-daemon", "centrall"}, "unknown daemon mode"},
		{[]string{"-mutate", "nope"}, "unknown mutation"},
		{[]string{"-mode", "random", "-alg", "dining"}, "random mode supports the CC algorithms"},
		{[]string{"-alg", "dining", "-mutate", "leave-early"}, "-mutate applies to the CC algorithms"},
		{[]string{"-alg", "cc2", "-topo", "ring:3", "-symmetry"}, "declares no automorphisms"},
		{[]string{"-alg", "dining", "-topo", "ring:3", "-symmetry"}, "declares no automorphisms"},
		// Flag-grammar values that used to crash or could silently
		// default must be clean usage errors.
		{[]string{"-topo", "ring:"}, "bad int"},
		{[]string{"-topo", "ring:0"}, "needs n >= 3"},
		{[]string{"-topo", "disjoint:0,1"}, "invalid topology"},
		{[]string{"-topo", "blob:4"}, "unknown topology"},
		{[]string{"-alg", "dining", "-init", "cc"}, "only -init legit"},
		{[]string{"positional"}, "unexpected arguments"},
		{[]string{"-daemon", "central,"}, "empty element"},
		{[]string{"-mode", "campaign", "-alg", "cc1,,cc2"}, "empty element"},
		{[]string{"-mode", "campaign", "-alg", "cc1,cc9"}, "unknown algorithm"},
		{[]string{"-mode", "campaign", "-daemon", "centrall"}, "unknown daemon mode"},
		{[]string{"-mode", "campaign", "-topo", "ring:3,ring:"}, "bad int"},
		{[]string{"-campaign-json", "/nonexistent/spec.json", "-mode", "campaign"}, "no such file"},
		{[]string{"-mode", "campaign", "-campaign-json", "x.json", "-alg", "cc1"}, "drop -alg"},
		{[]string{"-mode", "campaign", "-campaign-json", "x.json", "-max-states", "5"}, "drop -max-states"},
		{[]string{"-campaign-json", "x.json"}, "-mode campaign only"},
	} {
		out, code := cmdtest.Run(t, bin, time.Minute, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2:\n%s", tc.args, code, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%v: missing %q:\n%s", tc.args, tc.want, out)
		}
		if !strings.Contains(out, "usage") {
			t.Fatalf("%v: no usage pointer:\n%s", tc.args, out)
		}
	}
}

// TestCCCheckCacheRoundTrip: -cache persists the verdict; the second
// run serves it (marked) with the same summary line.
func TestCCCheckCacheRoundTrip(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	dir := t.TempDir()
	args := []string{"-alg", "cc2", "-topo", "ring:3", "-init", "legit", "-daemon", "central", "-cache", dir}
	out1, code := cmdtest.Run(t, bin, 2*time.Minute, args...)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out1)
	}
	if strings.Contains(out1, "[cache hit]") {
		t.Fatalf("first run claims a cache hit:\n%s", out1)
	}
	out2, code := cmdtest.Run(t, bin, 2*time.Minute, args...)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out2)
	}
	if !strings.Contains(out2, "[cache hit]") {
		t.Fatalf("second run not served from the cache:\n%s", out2)
	}
	if strings.ReplaceAll(out2, "  [cache hit]", "") != out1 {
		t.Fatalf("cached output differs beyond the marker:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
}

// TestCCCheckCampaignMode: the comma-list grammar fans a grid, streams
// per-cell progress, and a repeated run is 100%% cache hits.
func TestCCCheckCampaignMode(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	dir := t.TempDir()
	args := []string{"-mode", "campaign", "-alg", "cc1,cc2", "-topo", "ring:3",
		"-daemon", "central,sync", "-init", "legit", "-cache", dir, "-j", "4"}
	out, code := cmdtest.Run(t, bin, 3*time.Minute, args...)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"campaign: 4 cells", "[4/4]", "4 verified", "(0 cache hits, 4 explored)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	out2, code := cmdtest.Run(t, bin, 2*time.Minute, args...)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out2)
	}
	if !strings.Contains(out2, "(4 cache hits, 0 explored)") {
		t.Fatalf("repeat run not fully cached:\n%s", out2)
	}
}

// TestCCCheckCampaignJSON: the grid round-trips through a JSON spec
// file, and a violated cell exits 1.
func TestCCCheckCampaignJSON(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	spec := `{"algs":["cc2"],"topos":["ring:3"],"daemons":["central"],"inits":["legit"],"mutations":["none","leave-early"]}`
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := cmdtest.Run(t, bin, 3*time.Minute, "-mode", "campaign", "-campaign-json", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (mutated cell must violate):\n%s", code, out)
	}
	for _, want := range []string{"campaign: 2 cells", "1 verified", "1 violated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// A malformed spec file is a usage error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"algs": ["cc2"], "nope": 1}`), 0o644)
	out, code = cmdtest.Run(t, bin, time.Minute, "-mode", "campaign", "-campaign-json", bad)
	if code != 2 || !strings.Contains(out, "unknown field") {
		t.Fatalf("bad spec file: exit %d:\n%s", code, out)
	}
}
