// Command ccload drives mixed load — job submissions, SSE watches and
// status queries — against a ccserve fleet and writes a JSON report
// (the BENCH_serve.json schema): throughput, a client-side latency
// histogram aligned with the server's ccserve_http_request_seconds
// buckets, shed and error counts, and the push plane's acceptance
// invariant: terminal watch events delivered vs dropped.
//
//	ccload -targets http://a:8344,http://b:8344,http://c:8344 \
//	       -clients 10000 -duration 30s -out BENCH_serve.json
//
// Every client goroutine aims each operation at a uniformly random
// target, so a gossiping fleet is exercised cross-peer: watches and
// queries routinely land on a peer that never ran the job and are
// satisfied only once the verdict gossips over.
//
// The submission mix is -distinct specs (small ring verifications with
// staggered -max-states, so each has its own content key); repeats are
// intentional — they exercise in-flight dedup and store hits, which is
// what a saturated fleet mostly serves.
//
// A watch scores a dropped terminal only after the full client
// contract fails: the stream ended without a terminal event and
// resuming with the Last-Event-ID watermark (bounded retries) still
// never produced one. Slow-consumer eviction alone is not a drop.
//
// Exit status: 0 on a clean run, 1 when any terminal event was
// dropped or any non-shed error occurred (the CI gate), 2 on usage
// errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/loadgen"
	"repro/internal/store"
)

func main() {
	var (
		targets  = flag.String("targets", "", "comma-separated ccserve base URLs (required)")
		clients  = cliutil.Workers(flag.CommandLine, "clients", 256, "concurrent load clients")
		duration = flag.Duration("duration", 10*time.Second, "wall-clock run length")
		distinct = flag.Int("distinct", 8, "distinct job specs in the submission mix (each its own content key)")
		maxSt    = flag.Int("max-states", 5_000, "state bound of the smallest spec in the mix (staggered upward per spec)")
		wSubmit  = flag.Int("submit-weight", 1, "relative weight of submit operations")
		wWatch   = flag.Int("watch-weight", 2, "relative weight of watch operations")
		wQuery   = flag.Int("query-weight", 1, "relative weight of status-query operations")
		seed     = flag.Int64("seed", 1, "operation-schedule seed (client i uses seed+i)")
		out      = flag.String("out", "", "write the JSON report here (empty = stdout)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %v", flag.Args())
	}
	nClients, err := clients.Value()
	if err != nil {
		fatalf("%v", err)
	}
	if *targets == "" {
		fatalf("-targets is required (comma-separated ccserve base URLs)")
	}
	var urls []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			urls = append(urls, t)
		}
	}
	if len(urls) == 0 {
		fatalf("-targets is required (comma-separated ccserve base URLs)")
	}
	if nClients < 1 {
		fatalf("-clients must be >= 1, got %d", nClients)
	}
	if *distinct < 1 {
		fatalf("-distinct must be >= 1, got %d", *distinct)
	}

	// The mix: small ring verifications over both algorithms and two
	// branching modes, staggered state bounds so every spec is a
	// distinct store key.
	algs := []string{"cc1", "cc2"}
	daemons := []string{"central", "synchronous"}
	specs := make([]store.JobSpec, *distinct)
	for i := range specs {
		specs[i] = store.JobSpec{
			Alg: algs[i%len(algs)], Topo: "ring:3",
			Daemon: daemons[(i/len(algs))%len(daemons)], Init: "legit",
			MaxStates: *maxSt + i,
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "ccload: %d clients against %d target(s) for %v\n", nClients, len(urls), *duration)
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Targets: urls, Clients: nClients, Duration: *duration, Specs: specs,
		SubmitWeight: *wSubmit, WatchWeight: *wWatch, QueryWeight: *wQuery,
		Seed: *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr,
		"ccload: %d ops (%.0f/s), %d submits (%d cached), %d watches, %d queries, %d shed, %d errors, terminals %d delivered / %d dropped, p50 %.1fms p99 %.1fms\n",
		rep.Ops, rep.OpsPerSec, rep.Submits, rep.CacheHits, rep.Watches, rep.Queries,
		rep.Shed, rep.Errors, rep.Terminals, rep.DroppedTerminals,
		rep.Latency.P50ms, rep.Latency.P99ms)
	if rep.DroppedTerminals > 0 || rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "ccload: FAIL: %d dropped terminal(s), %d error(s)\n", rep.DroppedTerminals, rep.Errors)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ccload: "+format+"\n", args...)
	os.Exit(2)
}
