// Command ccserve exposes the exhaustive checker as an HTTP service
// backed by the content-addressed verdict store: submit a job spec,
// poll its verdict, and let identical submissions — from any client,
// or from cccheck/ccbench runs sharing the same -cache directory —
// dedupe against in-flight work and completed entries instead of
// recomputing.
//
//	ccserve -addr :8344 -cache ./verdicts
//
//	curl -s localhost:8344/healthz
//	curl -s -X POST localhost:8344/v1/jobs -d '{"alg":"cc2","topo":"ring:3","daemon":"central","init":"cc-full"}'
//	curl -s localhost:8344/v1/jobs/<id>
//	curl -s localhost:8344/v1/jobs/<id>/result
//	curl -sN localhost:8344/v1/jobs/<id>/watch
//	curl -s -X POST localhost:8344/v1/campaigns -d '{"algs":["cc1","cc2"],"topos":["ring:3"],"inits":["cc"]}'
//	curl -s localhost:8344/v1/campaigns/<id>
//	curl -sN localhost:8344/v1/campaigns/<id>/watch
//	curl -s 'localhost:8344/v1/verdicts?filter=alg%3Dcc2,verdict%3Dviolated'
//	curl -s localhost:8344/v1/campaigns/<id>/summary
//	curl -s 'localhost:8344/v1/campaigns/diff?a=<id>&b=<id>'
//	curl -s localhost:8344/v1/store/stats
//	curl -s -X POST localhost:8344/v1/store/compact
//	curl -s localhost:8344/metrics
//
// The query plane (GET /v1/verdicts, /v1/campaigns/{id}/summary,
// /v1/campaigns/diff) answers list/filter/summary/diff questions over
// the verdict store; its JSON bodies are byte-identical to cccheck
// -mode query over the same directory. The management plane
// (/v1/store/stats, POST /v1/store/compact) inspects and compacts the
// store; compaction never changes a served verdict byte. The full HTTP
// surface, the error envelope {"error","class","retry_after"} every
// non-2xx response carries, and the filter grammar are specified in
// docs/api.md.
//
// The watch endpoints stream text/event-stream: progress events while
// a job runs, exactly one terminal verdict/failed event (per-cell and
// done events for campaigns), with Last-Event-ID (or ?after=N) resume.
// With -gossip-peers each node announces newly committed verdict keys
// to its peers and fetches the ones it lacks over /v1/gossip/*, so a
// job completed on any node is a store hit fleet-wide; ingested
// entries are checksum-reverified and corrupt ones quarantined.
//
// -store-engine selects the verdict-store backend for -cache: dir (one
// file per verdict, the default) or log (append-only checksummed
// segments with background compaction). Both serve byte-identical
// entries.
//
// Concurrency: at most -jobs explorations run at once, each with
// -job-workers explorer goroutines (default: jobs × workers ≈
// GOMAXPROCS; -j is accepted as an alias, and conflicting values for
// the two spellings are a usage error), so any number of concurrent
// clients shares a bounded pool. Specs whose state bound exceeds -max-states-cap are rejected
// with 400.
//
// Degradation (see docs/robustness.md): submissions past -max-queue or
// -max-inflight are shed with 429 + Retry-After; each job runs under
// the -job-timeout wall clock; repeated verdict-store write failures
// trip a circuit breaker into compute-only mode (verdicts stay correct,
// persistence resumes when the store recovers). GET /healthz is
// liveness only; GET /readyz is readiness (503 while draining).
//
// Exit status: 0 on clean shutdown (SIGINT/SIGTERM), 2 on usage or
// startup errors, 4 when the verdict store cannot be opened for a
// classified I/O reason (the message names the path, errno and class).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/cliutil"
	"repro/internal/explore"
	"repro/internal/gossip"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address")
		cacheDir   = flag.String("cache", "", "verdict-store directory (required; shared with cccheck/ccbench -cache)")
		jobs       = flag.Int("jobs", 2, "explorations running concurrently")
		jobWorkers = cliutil.Workers(flag.CommandLine, "job-workers", 0, "explorer goroutines per job (0 = GOMAXPROCS/jobs)")
		storeEng   = flag.String("store-engine", "dir", "store backend for -cache: dir (one file per verdict) or log (append-only segments with compaction); Get bytes are identical either way")
		maxStates  = flag.Int("max-states-cap", 6_000_000, "reject jobs whose state bound exceeds this (negative = uncapped)")
		retain     = flag.Int("retain-jobs", 1024, "finished jobs kept in memory; older ones re-hydrate from the store on demand (negative = unlimited)")
		maxQueue   = flag.Int("max-queue", 256, "jobs waiting for a worker slot before submissions get 503 (negative = unlimited)")
		ckptEvery  = flag.Int("checkpoint-every", 1_000_000, "running jobs persist a resumable snapshot under their content key every N expanded states and on shutdown; resubmitting after a restart resumes them (negative = disabled)")
		memBudget  = flag.String("mem-budget", "", "per-job in-memory explorer budget (e.g. 256M, 2G; empty = unlimited): past it the exploration spills to temp files with an identical verdict")
		spillDir   = flag.String("spill-dir", "", "directory for out-of-core spill scratch (empty = the system temp dir)")
		jobTimeout = flag.Duration("job-timeout", time.Hour, "per-job wall-clock budget: a job past it fails (checkpoint saved; resubmit to resume); 0 = no timeout")
		maxInFl    = flag.Int("max-inflight", 512, "concurrently-handled API requests before shedding with 429 + Retry-After (negative = unlimited; /healthz, /readyz, /metrics are exempt)")
		peersFlag  = flag.String("peers", "", "comma-separated base URLs of this checker cluster's peers, this server among them (e.g. http://a:8344,http://b:8344); recorded in /v1/cluster/status — a cccheck -peers coordinator distributes jobs across them, one visited-set shard per peer, and all peers must share one -cache directory so shard snapshots can migrate on node loss")
		gossipSelf = flag.String("gossip-self", "", "this node's advertised base URL for verdict gossip (required with -gossip-peers; e.g. http://a:8344)")
		gossipPeer = flag.String("gossip-peers", "", "comma-separated base URLs of peers to gossip committed verdicts with (own -cache per peer, unlike -peers): a job completed anywhere becomes a store hit fleet-wide; every ingested entry is checksum-verified and corrupt ones are quarantined, never served")
		gossipInt  = flag.Duration("gossip-interval", 5*time.Second, "anti-entropy cadence: how often to pull each gossip peer's commit log and retry failed fetches")
		quiet      = flag.Bool("quiet", false, "suppress per-job log lines")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %v", flag.Args())
	}
	// Flag grammar first: a conflicting -job-workers/-j pair is a usage
	// error even when other required flags are also missing.
	workers, err := jobWorkers.Value()
	if err != nil {
		fatalf("%v", err)
	}
	if *cacheDir == "" {
		fatalf("-cache DIR is required (the verdict store shared with cccheck/ccbench)")
	}
	if *jobs < 1 {
		fatalf("-jobs must be >= 1, got %d", *jobs)
	}
	budget, err := campaign.ParseBytes("mem-budget", *memBudget)
	if err != nil {
		fatalf("%v", err)
	}
	st, err := store.OpenEngine(*storeEng, *cacheDir, nil)
	if err != nil {
		if chaos.Classify(err) != chaos.Unknown {
			fmt.Fprintf(os.Stderr, "ccserve: %s\n", chaos.Describe(err))
			os.Exit(4)
		}
		fatalf("%v", err)
	}
	// Startup hygiene: a killed predecessor may have left half-written
	// store temp files, checkpoints it never got to delete, and spill
	// scratch from in-flight explorations.
	if n := st.GCTemp(); n > 0 {
		log.Printf("ccserve: removed %d orphaned store temp file(s)", n)
	}
	if n := st.GCCheckpoints(); n > 0 {
		log.Printf("ccserve: removed %d orphaned checkpoint file(s)", n)
	}
	if n := explore.GCSpill(*spillDir); n > 0 {
		log.Printf("ccserve: removed %d orphaned spill scratch entr(ies)", n)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	st.SetLog(logf) // quarantine/retry lines share the job log stream
	var peers []string
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, strings.TrimRight(p, "/"))
			}
		}
	}
	// The gossip node must exist before the server (serve mounts its
	// endpoints and announces committed keys to it), but its OnIngest
	// hook needs the server — hence the pointer indirection.
	var gnode *gossip.Node
	var srvPtr atomic.Pointer[serve.Server]
	if *gossipPeer != "" {
		if *gossipSelf == "" {
			fatalf("-gossip-peers requires -gossip-self (this node's advertised base URL)")
		}
		self := strings.TrimRight(*gossipSelf, "/")
		var neighbors []string
		for _, p := range strings.Split(*gossipPeer, ",") {
			if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" && p != self {
				neighbors = append(neighbors, p)
			}
		}
		gnode = gossip.New(gossip.Config{
			Self: self, Neighbors: neighbors, Store: st, Interval: *gossipInt,
			OnIngest: func(key string) {
				if sv := srvPtr.Load(); sv != nil {
					sv.GossipIngested(key)
				}
			},
			Log: logf,
		})
	}
	srv, err := serve.New(serve.Config{
		Store: st, Jobs: *jobs, JobWorkers: workers,
		MaxStatesCap: *maxStates, RetainJobs: *retain, MaxQueue: *maxQueue,
		CheckpointEvery: *ckptEvery, MemBudget: budget, SpillDir: *spillDir,
		JobTimeout: *jobTimeout, MaxInFlight: *maxInFl, Peers: peers,
		Gossip: gnode, Log: logf,
	})
	if err != nil {
		fatalf("%v", err)
	}
	srvPtr.Store(srv)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	// The resolved address matters with -addr :0 (tests, scripts).
	log.Printf("ccserve: listening on %s (cache %s, %d job slots)", ln.Addr(), *cacheDir, *jobs)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("%v", err)
		}
	case <-ctx.Done():
		log.Printf("ccserve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fatalf("shutdown: %v", err)
		}
		// Cancel running explorations and wait for their checkpoints to
		// land, so a restart resumes them instead of redoing the work.
		if !srv.Drain(10 * time.Second) {
			log.Printf("ccserve: drain timed out; some jobs may restart from an older checkpoint")
		}
	}
	if gnode != nil {
		gnode.Close()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ccserve: "+format+"\n", args...)
	os.Exit(2)
}
