package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

func TestCCServeFlagErrors(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{nil, "-cache DIR is required"},
		{[]string{"-cache", t.TempDir(), "-jobs", "0"}, "-jobs must be >= 1"},
		{[]string{"-cache", t.TempDir(), "positional"}, "unexpected arguments"},
	} {
		out, code := cmdtest.Run(t, bin, time.Minute, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2:\n%s", tc.args, code, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%v: missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}

// TestCCServeBootSmoke drives the real binary the way the CI smoke
// does: boot on an ephemeral port, probe /healthz, submit the same job
// twice, assert the second submission is a cache hit with a
// byte-identical verdict body, then shut down cleanly on SIGTERM.
func TestCCServeBootSmoke(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-cache", t.TempDir(), "-jobs", "1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first log line announces the resolved address.
	var addr string
	sc := bufio.NewScanner(stderr)
	re := regexp.MustCompile(`listening on (\S+)`)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatal("server never announced its address")
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"ok": true`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	spec := `{"alg":"cc2","topo":"ring:3","daemon":"central","init":"legit"}`
	post := func() (int, string) {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}
	_, first := post()
	id := regexp.MustCompile(`"id": "([0-9a-f]+)"`).FindStringSubmatch(first)
	if id == nil {
		t.Fatalf("no job id in %s", first)
	}
	result := func() (int, []byte) {
		resp, err := http.Get(base + "/v1/jobs/" + id[1] + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}
	var res1 []byte
	deadline := time.Now().Add(time.Minute)
	for {
		code, raw := result()
		if code == 200 {
			res1 = raw
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %d %s", code, raw)
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, second := post()
	if code != 200 || !strings.Contains(second, `"cached": true`) {
		t.Fatalf("second submission not a cache hit: %d %s", code, second)
	}
	_, res2 := result()
	if !bytes.Equal(res1, res2) {
		t.Fatal("verdict bodies differ between submissions")
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server did not exit cleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}
