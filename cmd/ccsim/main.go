// Command ccsim runs one committee-coordination algorithm on one
// topology and reports what happened: meetings convened, fairness and
// concurrency statistics, and any specification violations caught by the
// runtime monitors.
//
//	ccsim -alg cc2 -topo ring:10 -steps 20000
//	ccsim -alg cc1 -topo fig1 -random-init          # snap-stabilization run
//	ccsim -alg dining -topo triples:4               # related-work baseline
//	ccsim -topo custom:'{0,1};{1,2,3};{3,4}' -alg cc3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	var (
		algName    = flag.String("alg", "cc2", "cc1 | cc2 | cc3 | dining | token-ring")
		topo       = flag.String("topo", "fig1", "topology spec (see internal/hypergraph.Parse)")
		steps      = flag.Int("steps", 10000, "max steps")
		seed       = flag.Int64("seed", 1, "random seed")
		disc       = flag.Int("disc", 2, "voluntary discussion length")
		randomInit = flag.Bool("random-init", false, "start from an arbitrary configuration (CC only)")
		daemonName = flag.String("daemon", "weakly-fair", "weakly-fair | synchronous | central | random")
	)
	flag.Parse()

	h, err := hypergraph.Parse(*topo, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var d sim.Daemon
	switch *daemonName {
	case "weakly-fair":
		d = &sim.WeaklyFair{MaxAge: 6}
	case "synchronous":
		d = sim.Synchronous{}
	case "central":
		d = &sim.Central{}
	case "random":
		d = sim.RandomSubset{P: 0.5}
	default:
		fmt.Fprintf(os.Stderr, "unknown daemon %q\n", *daemonName)
		os.Exit(2)
	}

	fmt.Printf("topology: %s\n", h)
	fmt.Printf("minMM=%d  MaxMin=%d  MaxHEdge=%d  Theorem5Bound=%d  Theorem8Bound=%d\n",
		firstOf(h.MinMaximalMatching()), h.MaxMin(), h.MaxHEdge(), h.Theorem5Bound(), h.Theorem8Bound())

	switch *algName {
	case "cc1", "cc2", "cc3":
		variant := map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}[*algName]
		alg := core.New(variant, h, nil)
		env := core.NewAlwaysClient(h.N(), *disc)
		r := core.NewRunner(alg, d, env, *seed, *randomInit)
		chk := r.Checker(0)
		r.Run(*steps)
		fmt.Printf("\n%s after %d steps (%d rounds):\n", variant, r.Engine.Steps(), r.Engine.Rounds())
		fmt.Printf("  total convenes:    %d\n", r.TotalConvenes())
		fmt.Printf("  per committee:     %v\n", r.Convenes)
		fmt.Printf("  per professor:     %v\n", r.ProfMeetings)
		fmt.Printf("  max wait (rounds): %v\n", r.MaxWaitRounds)
		fmt.Printf("  mean concurrency:  %.2f (peak %d)\n", r.MeanConcurrency(), r.PeakConcurrency)
		fmt.Printf("  meetings now:      %v\n", alg.Meetings(r.Config()))
		report(chk.Violations)
	case "dining", "token-ring":
		kind := baseline.Dining
		if *algName == "token-ring" {
			kind = baseline.TokenRing
		}
		a := baseline.New(kind, h, *disc)
		r := baseline.NewRunner(a, d, *seed)
		chk := spec.NewChecker(a.Probe(), 0)
		chk.Check(0, r.Engine.Config())
		r.Engine.Observe(func(step int, cfg []baseline.BState, _ []sim.Exec) {
			chk.Check(step, cfg)
		})
		r.Run(*steps)
		fmt.Printf("\n%s after %d steps (%d rounds):\n", kind, r.Engine.Steps(), r.Engine.Rounds())
		fmt.Printf("  total convenes:   %d\n", r.TotalConvenes())
		fmt.Printf("  per committee:    %v\n", r.Convenes)
		fmt.Printf("  per professor:    %v\n", r.ProfMeetings)
		fmt.Printf("  mean concurrency: %.2f (peak %d)\n", r.MeanConcurrency(), r.PeakConcurrency)
		report(chk.Violations)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
}

func report(violations []spec.Violation) {
	if len(violations) == 0 {
		fmt.Println("  violations:        none")
		return
	}
	fmt.Printf("  VIOLATIONS (%d):\n", len(violations))
	for i, v := range violations {
		if i == 10 {
			fmt.Printf("    ... and %d more\n", len(violations)-10)
			break
		}
		fmt.Printf("    %s\n", v)
	}
	os.Exit(1)
}

func firstOf(a int, _ []int) int { return a }
