// Command ccsim runs one committee-coordination algorithm on one
// topology and reports what happened: meetings convened, fairness and
// concurrency statistics, and any specification violations caught by the
// runtime monitors.
//
//	ccsim -alg cc2 -topo ring:10 -steps 20000
//	ccsim -alg cc1 -topo fig1 -random-init          # snap-stabilization run
//	ccsim -alg dining -topo triples:4               # related-work baseline
//	ccsim -topo custom:'{0,1};{1,2,3};{3,4}' -alg cc3
//	ccsim -alg cc2 -topo ring:16 -runs 32           # 32 seeds across the pool
//
// With -runs N > 1 the command fans N independent replicas (seeds
// seed..seed+N-1) across the experiment worker pool and prints an
// aggregate table instead of a single-run report.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/baseline"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	var (
		algName    = flag.String("alg", "cc2", "cc1 | cc2 | cc3 | dining | token-ring")
		topo       = flag.String("topo", "fig1", "topology spec (see internal/hypergraph.Parse)")
		steps      = flag.Int("steps", 10000, "max steps")
		seed       = flag.Int64("seed", 1, "random seed")
		disc       = flag.Int("disc", 2, "voluntary discussion length")
		randomInit = flag.Bool("random-init", false, "start from an arbitrary configuration (CC only)")
		daemonName = flag.String("daemon", "weakly-fair", "weakly-fair | synchronous | central | random")
		runs       = flag.Int("runs", 1, "independent replicas fanned across the worker pool")
		workers    = cliutil.Workers(flag.CommandLine, "j", 0, "worker-pool width (0 = GOMAXPROCS)")
	)
	flag.Parse()

	h, err := hypergraph.Parse(*topo, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mkDaemon := func() sim.Daemon {
		switch *daemonName {
		case "weakly-fair":
			return &sim.WeaklyFair{MaxAge: 6}
		case "synchronous":
			return sim.Synchronous{}
		case "central":
			return &sim.Central{}
		case "random":
			return sim.RandomSubset{P: 0.5}
		}
		fmt.Fprintf(os.Stderr, "unknown daemon %q\n", *daemonName)
		os.Exit(2)
		return nil
	}
	mkDaemon() // validate the name before any run starts
	switch *algName {
	case "cc1", "cc2", "cc3", "dining", "token-ring":
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	if w, _ := workers.Value(); w > 0 {
		par.Workers = w
	}

	fmt.Printf("topology: %s\n", h)
	fmt.Printf("minMM=%d  MaxMin=%d  MaxHEdge=%d  Theorem5Bound=%d  Theorem8Bound=%d\n",
		firstOf(h.MinMaximalMatching()), h.MaxMin(), h.MaxHEdge(), h.Theorem5Bound(), h.Theorem8Bound())

	if *runs > 1 {
		runReplicas(*algName, h, mkDaemon, *steps, *seed, *disc, *randomInit, *runs)
		return
	}

	switch *algName {
	case "cc1", "cc2", "cc3":
		r, chk := oneCCRun(*algName, h, mkDaemon(), *steps, *seed, *disc, *randomInit)
		fmt.Printf("\n%s after %d steps (%d rounds):\n", r.Alg.Variant, r.Engine.Steps(), r.Engine.Rounds())
		fmt.Printf("  total convenes:    %d\n", r.TotalConvenes())
		fmt.Printf("  per committee:     %v\n", r.Convenes)
		fmt.Printf("  per professor:     %v\n", r.ProfMeetings)
		fmt.Printf("  max wait (rounds): %v\n", r.MaxWaitRounds)
		fmt.Printf("  mean concurrency:  %.2f (peak %d)\n", r.MeanConcurrency(), r.PeakConcurrency)
		fmt.Printf("  meetings now:      %v\n", r.Alg.Meetings(r.Config()))
		report(chk.Violations)
	case "dining", "token-ring":
		r, viols := oneBaselineRun(*algName, h, mkDaemon(), *steps, *seed, *disc)
		fmt.Printf("\n%s after %d steps (%d rounds):\n", r.Alg.Kind, r.Engine.Steps(), r.Engine.Rounds())
		fmt.Printf("  total convenes:   %d\n", r.TotalConvenes())
		fmt.Printf("  per committee:    %v\n", r.Convenes)
		fmt.Printf("  per professor:    %v\n", r.ProfMeetings)
		fmt.Printf("  mean concurrency: %.2f (peak %d)\n", r.MeanConcurrency(), r.PeakConcurrency)
		report(viols)
	}
}

func oneCCRun(algName string, h *hypergraph.H, d sim.Daemon, steps int, seed int64, disc int, randomInit bool) (*core.Runner, *spec.Checker[core.State]) {
	variant := map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}[algName]
	alg := core.New(variant, h, nil)
	env := core.NewAlwaysClient(h.N(), disc)
	r := core.NewRunner(alg, d, env, seed, randomInit)
	chk := r.Checker(0)
	r.Run(steps)
	return r, chk
}

func oneBaselineRun(algName string, h *hypergraph.H, d sim.Daemon, steps int, seed int64, disc int) (*baseline.Runner, []spec.Violation) {
	kind := baseline.Dining
	if algName == "token-ring" {
		kind = baseline.TokenRing
	}
	a := baseline.New(kind, h, disc)
	r := baseline.NewRunner(a, d, seed)
	chk := spec.NewChecker(a.Probe(), 0)
	chk.Check(0, r.Engine.Config())
	r.Engine.Observe(func(step int, cfg []baseline.BState, _ []sim.Exec) {
		chk.Check(step, cfg)
	})
	r.Run(steps)
	return r, chk.Violations
}

// replica is the aggregate-relevant outcome of one replica.
type replica struct {
	convenes   int
	meanConc   float64
	peakConc   int
	minProf    int
	rounds     int
	violations int
}

// runReplicas fans independent (seed) cells of the same configuration
// across the shared worker pool and prints aggregate statistics.
func runReplicas(algName string, h *hypergraph.H, mkDaemon func() sim.Daemon, steps int, seed int64, disc int, randomInit bool, runs int) {
	cells := par.Map(runs, func(i int) replica {
		s := seed + int64(i)
		switch algName {
		case "cc1", "cc2", "cc3":
			r, chk := oneCCRun(algName, h, mkDaemon(), steps, s, disc, randomInit)
			return replica{
				convenes: r.TotalConvenes(), meanConc: r.MeanConcurrency(),
				peakConc: r.PeakConcurrency, minProf: r.MinProfMeetings(),
				rounds: r.Engine.Rounds(), violations: len(chk.Violations),
			}
		case "dining", "token-ring":
			r, viols := oneBaselineRun(algName, h, mkDaemon(), steps, s, disc)
			return replica{
				convenes: r.TotalConvenes(), meanConc: r.MeanConcurrency(),
				peakConc: r.PeakConcurrency, minProf: r.MinProfMeetings(),
				rounds: r.Engine.Rounds(), violations: len(viols),
			}
		}
		panic("unreachable: -alg validated in main") // validated before the fan-out
	})

	convs := make([]int, runs)
	totalViol, peak := 0, 0
	var sumConv, sumConc float64
	minProf := -1
	for i, c := range cells {
		convs[i] = c.convenes
		sumConv += float64(c.convenes)
		sumConc += c.meanConc
		totalViol += c.violations
		if c.peakConc > peak {
			peak = c.peakConc
		}
		if minProf == -1 || c.minProf < minProf {
			minProf = c.minProf
		}
	}
	sort.Ints(convs)
	fmt.Printf("\n%s × %d replicas (seeds %d..%d, %d steps each, %d workers):\n",
		algName, runs, seed, seed+int64(runs)-1, steps, par.Workers)
	fmt.Printf("  convenes:          mean %.1f  min %d  median %d  max %d\n",
		sumConv/float64(runs), convs[0], convs[runs/2], convs[runs-1])
	fmt.Printf("  mean concurrency:  %.2f (peak %d)\n", sumConc/float64(runs), peak)
	fmt.Printf("  min meetings/prof: %d\n", minProf)
	if totalViol > 0 {
		fmt.Printf("  VIOLATIONS: %d across replicas\n", totalViol)
		os.Exit(1)
	}
	fmt.Printf("  violations:        none\n")
}

func firstOf(a int, _ []int) int { return a }

func report(violations []spec.Violation) {
	if len(violations) == 0 {
		fmt.Println("  violations:        none")
		return
	}
	fmt.Printf("  VIOLATIONS (%d):\n", len(violations))
	for i, v := range violations {
		if i == 10 {
			fmt.Printf("    ... and %d more\n", len(violations)-10)
			break
		}
		fmt.Printf("    %s\n", v)
	}
	os.Exit(1)
}
