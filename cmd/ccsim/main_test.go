package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

func TestCCSimGoldenRun(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "cc2", "-topo", "ring:6", "-steps", "2000", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"topology: H(n=6, m=6)",
		"CC2 after",
		"total convenes:",
		"mean concurrency:",
		"violations:        none",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCCSimRandomInitSnapStabilization(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "cc1", "-topo", "fig1", "-steps", "2000", "-random-init")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "violations:        none") {
		t.Fatalf("random-init run reported violations:\n%s", out)
	}
}

func TestCCSimBaseline(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "dining", "-topo", "triples:3", "-steps", "1500")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "dining after") {
		t.Fatalf("missing baseline report:\n%s", out)
	}
}

func TestCCSimReplicas(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-alg", "cc2", "-topo", "ring:5", "-steps", "800", "-runs", "4", "-j", "2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"cc2 × 4 replicas", "convenes:", "violations:        none"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCCSimFlagErrors(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-alg", "nope"}, "unknown algorithm"},
		{[]string{"-daemon", "nope"}, "unknown daemon"},
		{[]string{"-topo", "nope:3"}, "unknown topology"},
	} {
		out, code := cmdtest.Run(t, bin, time.Minute, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2:\n%s", tc.args, code, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%v: missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}
