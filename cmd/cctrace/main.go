// Command cctrace renders a Figure-3-style frame animation of a CC run:
// each sampled configuration shows every professor's status, edge
// pointer, token flags and the committees currently meeting, like the
// paper's example computation.
//
//	cctrace -topo fig3 -alg cc1 -frames 12
//	cctrace -topo ring:6 -alg cc2 -every 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/sim"
)

func main() {
	var (
		algName  = flag.String("alg", "cc1", "cc1 | cc2 | cc3")
		topo     = flag.String("topo", "fig3", "topology spec")
		frames   = flag.Int("frames", 10, "frames to print")
		every    = flag.Int("every", 0, "print every k-th step (0 = on meeting events)")
		steps    = flag.Int("steps", 20000, "max steps")
		seed     = flag.Int64("seed", 1, "random seed")
		idleMask = flag.String("idle", "", "comma-separated professor ids (paper ids) that never request (CC1 only)")
		workers  = cliutil.Workers(flag.CommandLine, "j", 0, "worker-pool width (0 = GOMAXPROCS; a trace renders sequentially, but every CLI in this module takes -j)")
	)
	flag.Parse()
	if w, _ := workers.Value(); w > 0 {
		par.Workers = w
	}

	h, err := hypergraph.Parse(*topo, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	variant, ok := map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	alg := core.New(variant, h, nil)
	var env core.Env = core.NewAlwaysClient(h.N(), 2)
	if *idleMask != "" {
		if variant != core.CC1 {
			fmt.Fprintln(os.Stderr, "-idle only applies to cc1 (CC2/CC3 assume always-requesting professors)")
			os.Exit(2)
		}
		masked := &idleEnv{Env: env, allowed: make([]bool, h.N())}
		for p := range masked.allowed {
			masked.allowed[p] = true
		}
		for _, f := range strings.Split(*idleMask, ",") {
			var id int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &id); err != nil {
				fmt.Fprintf(os.Stderr, "bad -idle entry %q\n", f)
				os.Exit(2)
			}
			if v := h.VertexByID(id); v >= 0 {
				masked.allowed[v] = false
			}
		}
		env = masked
	}
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, *seed, false)

	printed := 0
	frame := func(step int, label string) {
		printed++
		fmt.Printf("--- frame %d (step %d%s) ---\n", printed, step, label)
		cfg := r.Config()
		for p := 0; p < h.N(); p++ {
			ptr := "⊥"
			if cfg[p].P != core.NoEdge {
				members := make([]int, len(h.Edge(cfg[p].P)))
				for j, v := range h.Edge(cfg[p].P) {
					members[j] = h.ID(v)
				}
				ptr = fmt.Sprint(members)
			}
			marks := ""
			if cfg[p].T {
				marks += " [T]"
			}
			if alg.Token(cfg, p) {
				marks += " (token)"
			}
			if cfg[p].L {
				marks += " [L]"
			}
			fmt.Printf("  prof %-2d  %-8s P=%-12s%s\n", h.ID(p), cfg[p].S, ptr, marks)
		}
		meets := alg.Meetings(cfg)
		if len(meets) == 0 {
			fmt.Println("  meetings: none")
		} else {
			parts := make([]string, len(meets))
			for i, e := range meets {
				ids := make([]int, len(h.Edge(e)))
				for j, v := range h.Edge(e) {
					ids[j] = h.ID(v)
				}
				parts[i] = fmt.Sprint(ids)
			}
			fmt.Printf("  meetings: %s\n", strings.Join(parts, " "))
		}
		fmt.Println()
	}

	frame(0, ", initial")
	if *every > 0 {
		for printed < *frames {
			if r.Run(*every) == 0 {
				break
			}
			frame(r.Engine.Steps(), "")
		}
		return
	}
	r.OnConvene(func(step, e int) {
		if printed < *frames {
			frame(step, ", convene")
		}
	})
	r.OnTerminate(func(step, e int) {
		if printed < *frames {
			frame(step, ", terminate")
		}
	})
	for printed < *frames && r.Engine.Steps() < *steps {
		if r.Run(1) == 0 {
			break
		}
	}
}

type idleEnv struct {
	Env     core.Env
	allowed []bool
}

func (m *idleEnv) RequestIn(p int) bool           { return m.allowed[p] && m.Env.RequestIn(p) }
func (m *idleEnv) RequestOut(p int) bool          { return m.Env.RequestOut(p) }
func (m *idleEnv) Update(cfg []core.State, s int) { m.Env.Update(cfg, s) }
