package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

func TestCCTraceGoldenFrames(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-topo", "fig3", "-alg", "cc1", "-frames", "3", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"--- frame 1 (step 0, initial) ---",
		"prof 1",
		"prof 10",
		"--- frame 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCCTraceEveryKSteps(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-topo", "ring:6", "-alg", "cc2", "-frames", "4", "-every", "5")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "--- frame 4 (step 15) ---") {
		t.Fatalf("fixed-stride frames missing:\n%s", out)
	}
}

func TestCCTraceIdleMask(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	out, code := cmdtest.Run(t, bin, 2*time.Minute,
		"-topo", "fig3", "-alg", "cc1", "-frames", "2", "-idle", "4")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "--- frame 2") {
		t.Fatalf("masked run produced no frames:\n%s", out)
	}
}

func TestCCTraceFlagErrors(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-alg", "nope"}, "unknown algorithm"},
		{[]string{"-topo", "nope"}, "unknown topology"},
		{[]string{"-alg", "cc2", "-idle", "3"}, "-idle only applies to cc1"},
		{[]string{"-alg", "cc1", "-idle", "x"}, "bad -idle entry"},
	} {
		out, code := cmdtest.Run(t, bin, time.Minute, tc.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2:\n%s", tc.args, code, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%v: missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}
