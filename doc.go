// Package repro is a Go reproduction of Snap-Stabilizing Committee
// Coordination (Bonakdarpour, Devismes, Petit; IPDPS 2011) grown into
// a production-style verification system.
//
// The root package holds only the cross-cutting test suites (the
// benchmark battery, the examples smoke tests, and the documentation
// lint that keeps every package documented and every docs/ link
// alive). The system itself lives in internal/* — start at
// docs/architecture.md for the layer map, or internal/explore for the
// exhaustive checker the whole thing is built around.
package repro
