package repro

// The documentation lint, run as part of tier-1: every package carries
// a package-level doc comment, and every relative link in the markdown
// docs resolves to a real file. CI runs these in the lint job too, so
// a doc regression fails fast.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goPackageDirs returns every directory in the module that contains
// non-test Go files.
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	dirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && name != "." || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(dirs))
	for d := range dirs {
		out = append(out, d)
	}
	return out
}

// TestEveryPackageDocumented: each package (the 15 internal ones, the
// 5 commands, the examples, and this root) must have a package-level
// doc comment on at least one file — godoc is part of the interface.
func TestEveryPackageDocumented(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range goPackageDirs(t) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		checked := 0
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			checked++
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Fatalf("%s: %v", filepath.Join(dir, e.Name()), err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if checked > 0 && !documented {
			t.Errorf("package in %s has no package-level doc comment on any file", dir)
		}
	}
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinksResolve: every relative link in README.md and docs/*.md
// points at a file that exists (fragments stripped; external URLs and
// the GitHub-convention badge paths skipped).
func TestDocsLinksResolve(t *testing.T) {
	var mdFiles []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		mdFiles = append(mdFiles, m...)
	}
	if len(mdFiles) < 6 {
		t.Fatalf("only found %d markdown files (%v) — glob broken?", len(mdFiles), mdFiles)
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure fragment: same-file anchor
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if rel, err := filepath.Rel(".", resolved); err != nil || strings.HasPrefix(rel, "..") {
				continue // leaves the repo (the ../../actions badge convention)
			}
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}
