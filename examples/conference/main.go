// Conference: program-committee scheduling with maximal concurrency.
//
// A conference has area chairs and reviewers; each paper needs a
// discussion meeting between its assigned reviewers (a committee).
// Papers sharing a reviewer conflict and cannot be discussed
// simultaneously. CC1 ∘ TC schedules as many discussions in parallel as
// the assignment allows (Maximal Concurrency, Theorem 2), without any
// central session chair, and keeps working even if the shared state is
// corrupted mid-conference.
//
//	go run ./examples/conference
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

func main() {
	reviewers := []string{
		"ada", "bob", "carol", "dan", "erin", "frank", "grace", "heidi",
	}
	// Paper -> assigned reviewers (committee). Overlaps create conflicts.
	papers := map[string]hypergraph.Edge{
		"P1: snap-stabilization":  {0, 1, 2}, // ada, bob, carol
		"P2: token circulation":   {2, 3},    // carol, dan
		"P3: dining philosophers": {3, 4, 5}, // dan, erin, frank
		"P4: hypergraph matching": {5, 6},    // frank, grace
		"P5: weak fairness":       {6, 7},    // grace, heidi
		"P6: maximal concurrency": {0, 7},    // ada, heidi
	}
	names := make([]string, 0, len(papers))
	edges := make([]hypergraph.Edge, 0, len(papers))
	for name, e := range papers {
		names = append(names, name)
		edges = append(edges, e)
	}
	h := hypergraph.MustNew(len(reviewers), edges)

	alg := core.New(core.CC1, h, nil)
	discussed := make(map[int]int)
	alg.OnEssential = func(p, e int) {
		// Phase 1 of the 2-phase discussion: every participant
		// contributes its review before anyone may leave.
		discussed[e]++
	}
	env := core.NewClient(h.N(), 0.7, 2, 5, 7) // reviewers drift in and out
	runner := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 7, false)
	chk := runner.Checker(0)

	shown := 0
	runner.OnConvene(func(step, e int) {
		if shown < 10 {
			shown++
			members := ""
			for _, v := range h.Edge(e) {
				members += " " + reviewers[v]
			}
			fmt.Printf("step %4d: %-26s discussion starts (%s )\n", step, names[e], members)
		}
	})
	runner.Run(20000)

	fmt.Printf("\nschedule summary after %d steps:\n", runner.Engine.Steps())
	for e, name := range names {
		fmt.Printf("  %-26s %3d sessions, %3d review contributions\n",
			name, runner.Convenes[e], discussed[e])
	}
	fmt.Printf("  parallel sessions: mean %.2f, peak %d (exclusion violations: %d)\n",
		runner.MeanConcurrency(), runner.PeakConcurrency, len(chk.Violations))
	if !chk.Ok() {
		fmt.Println("  UNEXPECTED:", chk.Violations[0])
	}
}
