// Faultdemo: snap-stabilization in action (paper §2.5).
//
// We run CC2 ∘ TC, then repeatedly blast transient faults — full state
// corruption of random processes, duplicated tokens, scrambled meeting
// pointers — and watch the system keep every post-fault meeting correct
// with zero recovery delay: the runtime monitors (Exclusion,
// Synchronization, Essential Discussion) stay silent, and meetings keep
// convening. A self- but not snap-stabilizing algorithm could convene
// bogus meetings while recovering; a non-stabilizing one (the dining
// baseline) typically wedges or violates the spec.
//
//	go run ./examples/faultdemo
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

func main() {
	h := hypergraph.Figure1()
	fmt.Println("topology:", h)

	alg := core.New(core.CC2, h, nil)
	env := core.NewAlwaysClient(h.N(), 2)
	runner := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 3, false)
	injector := fault.New(alg, 99)

	runner.Run(1000)
	fmt.Printf("warm-up: %d meetings in 1000 steps\n\n", runner.TotalConvenes())

	kinds := []struct {
		name string
		hit  func() []int
	}{
		{"full-state corruption of 3 processes", func() []int { return injector.CorruptRandom(runner, 3) }},
		{"token-layer corruption of every process", func() []int { return injector.CorruptTokens(runner, h.N()) }},
		{"pointer/status corruption of 4 processes", func() []int { return injector.CorruptPointers(runner, 4) }},
	}
	for round, k := range kinds {
		hit := k.hit()
		monitor := runner.Checker(0) // judges only post-fault meetings
		before := runner.TotalConvenes()
		runner.Run(3000)
		convened := runner.TotalConvenes() - before
		fmt.Printf("fault burst %d: %s (processes %v)\n", round+1, k.name, hit)
		fmt.Printf("  post-fault meetings convened: %d\n", convened)
		fmt.Printf("  post-fault violations:        %d\n", len(monitor.Violations))
		holders := alg.TC.Holders(tcLayer(runner.Config()))
		fmt.Printf("  tokens in the system now:     %d (at %v)\n\n", len(holders), holders)
		if len(monitor.Violations) > 0 {
			fmt.Println("  UNEXPECTED:", monitor.Violations[0])
		}
	}

	fmt.Println("snap-stabilization: every meeting convened after the last fault")
	fmt.Println("satisfied Exclusion, Synchronization and the 2-Phase Discussion.")
}

func tcLayer(cfg []core.State) []tokenState {
	out := make([]tokenState, len(cfg))
	for i := range cfg {
		out[i] = cfg[i].TC
	}
	return out
}

type tokenState = core.TokenState
