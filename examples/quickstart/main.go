// Quickstart: five professors on a committee ring run the fair
// snap-stabilizing algorithm CC2 ∘ TC; we watch meetings convene and
// verify that every professor keeps participating.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

func main() {
	// Committees {0,1}, {1,2}, {2,3}, {3,4}, {4,0}.
	h := hypergraph.CommitteeRing(5)
	fmt.Println("topology:", h)

	// CC2: professors wait for meetings infinitely often (the always
	// client), discuss for 2 steps, and are guaranteed fairness.
	alg := core.New(core.CC2, h, nil)
	env := core.NewAlwaysClient(h.N(), 2)
	runner := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 42, false)

	runner.OnConvene(func(step, e int) {
		if runner.TotalConvenes() <= 8 {
			fmt.Printf("step %4d: committee %v convenes\n", step, h.Edge(e))
		}
	})
	runner.Run(5000)

	fmt.Printf("\nafter %d steps (%d rounds):\n", runner.Engine.Steps(), runner.Engine.Rounds())
	fmt.Println("  meetings per committee: ", runner.Convenes)
	fmt.Println("  meetings per professor: ", runner.ProfMeetings)
	fmt.Printf("  every professor met at least %d times (professor fairness)\n", runner.MinProfMeetings())
	fmt.Printf("  mean concurrent meetings: %.2f\n", runner.MeanConcurrency())
}
