// Rendezvous: multiparty interaction scheduling for component-based
// models (the paper's §1 motivation: distributed implementation of BIP /
// CSP / Ada-style n-ary rendezvous).
//
// Components (processes) synchronize through named interactions
// (committees): an interaction executes only when all its participants
// are ready (Synchronization), conflicting interactions never overlap
// (Exclusion = distributed mutual exclusion on shared components), every
// participant performs its data transfer before anyone proceeds
// (Essential Discussion), and — with CC3 — every *interaction* executes
// infinitely often (Committee Fairness, §5.4), which is the scheduler
// property component-based code generators need.
//
//	go run ./examples/rendezvous
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

type interaction struct {
	name    string
	parties hypergraph.Edge
}

func main() {
	components := []string{"sensor0", "sensor1", "filter", "fusion", "logger", "actuator"}
	interactions := []interaction{
		{"sample0", hypergraph.Edge{0, 2}},  // sensor0 -> filter
		{"sample1", hypergraph.Edge{1, 2}},  // sensor1 -> filter
		{"fuse", hypergraph.Edge{2, 3}},     // filter -> fusion
		{"log", hypergraph.Edge{3, 4}},      // fusion -> logger
		{"act", hypergraph.Edge{3, 5}},      // fusion -> actuator
		{"audit", hypergraph.Edge{0, 1, 4}}, // sensors + logger checkpoint
	}
	edges := make([]hypergraph.Edge, len(interactions))
	for i, it := range interactions {
		edges[i] = it.parties
	}
	h := hypergraph.MustNew(len(components), edges)

	// CC3: every interaction is scheduled infinitely often.
	alg := core.New(core.CC3, h, nil)
	transfers := make([]int, len(interactions))
	alg.OnEssential = func(p, e int) {
		// The interaction body: each participant's data transfer happens
		// inside the essential discussion, under mutual exclusion.
		transfers[e]++
	}
	env := core.NewAlwaysClient(h.N(), 1)
	runner := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 11, false)
	chk := runner.Checker(0)

	shown := 0
	runner.OnConvene(func(step, e int) {
		if shown < 12 {
			shown++
			fmt.Printf("step %4d: interaction %-8s fires with", step, interactions[e].name)
			for _, v := range h.Edge(e) {
				fmt.Printf(" %s", components[v])
			}
			fmt.Println()
		}
	})
	runner.Run(30000)

	fmt.Printf("\nscheduler summary after %d steps:\n", runner.Engine.Steps())
	for e, it := range interactions {
		fmt.Printf("  %-8s fired %4d times, %4d participant transfers\n",
			it.name, runner.Convenes[e], transfers[e])
	}
	fmt.Printf("  least-scheduled interaction fired %d times (committee fairness)\n",
		runner.MinCommitteeConvenes())
	fmt.Printf("  specification violations: %d\n", len(chk.Violations))
}
