package repro

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRun builds and runs every examples/* main with a timeout,
// so the documented entry points cannot silently rot: each must compile,
// terminate on its own, and exit zero.
func TestExamplesRun(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("no go toolchain in PATH")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) < 4 {
		t.Fatalf("expected at least the 4 shipped examples, found %v", dirs)
	}
	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) {
			t.Parallel() // examples are independent processes
			bin := filepath.Join(t.TempDir(), dir+".bin")
			build := exec.Command("go", "build", "-o", bin, "./examples/"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
			defer cancel()
			cmd := exec.CommandContext(ctx, bin)
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example did not terminate within 90s\noutput:\n%s", out)
			}
			if err != nil {
				t.Fatalf("example exited with error: %v\noutput:\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
