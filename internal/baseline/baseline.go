// Package baseline implements the non-stabilizing committee-coordination
// algorithms from the paper's related work (§6), used as comparison
// points by the concurrency experiments:
//
//   - Dining: the Chandy–Misra reduction [2] — each committee is a
//     hygienic dining philosopher on the committee conflict graph; a
//     committee meets while its philosopher eats;
//   - TokenRing: a Bagrodia-style single token circulating over the
//     committees in index order [3]; only the token holder may convene
//     its committee;
//   - Oracle: a centralized greedy scheduler with global knowledge — an
//     upper bound on achievable concurrency (not a distributed
//     algorithm).
//
// The distributed baselines run in the same guarded-action engine as
// CC1/CC2/CC3, over n professor processes plus m committee-agent
// processes. Two deliberate infidelities, documented here and in
// DESIGN.md: (1) committee agents read each other's variables even when
// the corresponding professors are not adjacent (the original algorithms
// are message-passing; manager-to-manager channels are modelled as
// shared variables); (2) the baselines are *not* self-stabilizing — they
// must start from their legitimate initial configuration, which is
// precisely the contrast the EXP-SNAP experiment draws against the
// snap-stabilizing algorithms.
package baseline

import (
	"fmt"
	"math/rand"

	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Professor statuses. A professor that has joined a convening committee
// (Club set) but not yet performed its essential discussion is still
// PWaiting — mirroring the CC algorithms, where the "waiting" status
// covers both searching and attending, so that the Synchronization
// monitor sees every member waiting at the convene instant (Lemma 2).
const (
	PIdle uint8 = iota
	PWaiting
	PDone
)

// Committee phases.
const (
	CThinking uint8 = iota
	CHungry
	CGather // meeting convened; members joining (E1)
	CSession
)

// BState is the union state of one process: professors use the P-fields,
// committee agents the C-fields.
type BState struct {
	// Professor.
	S    uint8
	Club int // committee currently joined, or -1
	Age  int // steps spent in done (voluntary-discussion clock)

	// Committee agent.
	Phase   uint8
	Fork    []bool // per conflict neighbor: I hold the shared fork
	Dirty   []bool // per conflict neighbor: that fork is dirty
	Asked   []bool // per conflict neighbor: I requested that fork
	HasTok  bool   // token ring
	Handing bool   // token ring: handover in progress
}

// Clone returns a deep copy. The three per-conflict-neighbor vectors
// share one backing array so cloning a committee agent costs a single
// allocation (professors clone for free).
func (s BState) Clone() BState {
	c := s
	k := len(s.Fork)
	if k == 0 {
		return c
	}
	buf := make([]bool, 3*k)
	c.Fork = buf[0*k : 1*k : 1*k]
	c.Dirty = buf[1*k : 2*k : 2*k]
	c.Asked = buf[2*k : 3*k : 3*k]
	copy(c.Fork, s.Fork)
	copy(c.Dirty, s.Dirty)
	copy(c.Asked, s.Asked)
	return c
}

// Kind selects the baseline algorithm.
type Kind uint8

const (
	// Dining is the Chandy–Misra hygienic-dining reduction.
	Dining Kind = iota + 1
	// TokenRing is the single circulating token over committees.
	TokenRing
)

func (k Kind) String() string {
	switch k {
	case Dining:
		return "dining"
	case TokenRing:
		return "token-ring"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Alg is a baseline instance over a hypergraph.
type Alg struct {
	Kind Kind
	H    *hypergraph.H
	// Disc is the number of done-status steps a professor spends before
	// it may leave (the voluntary-discussion length).
	Disc int

	// NoLocality omits the sim.Locality declaration from Program (the
	// cross-check tests run the full-rescan path side by side with the
	// incremental one).
	NoLocality bool

	conflicts [][]int       // committee conflict graph (by edge index)
	cpos      []map[int]int // cpos[c][d] = index of d in conflicts[c]
}

// New builds a baseline algorithm.
func New(kind Kind, h *hypergraph.H, disc int) *Alg {
	a := &Alg{Kind: kind, H: h, Disc: disc, conflicts: h.ConflictGraph()}
	a.cpos = make([]map[int]int, h.M())
	for c := range a.conflicts {
		a.cpos[c] = make(map[int]int, len(a.conflicts[c]))
		for i, d := range a.conflicts[c] {
			a.cpos[c][d] = i
		}
	}
	return a
}

// Node numbering: professors 0..n-1, committee agents n..n+m-1.

// NumProcs returns the process count of the composed program.
func (a *Alg) NumProcs() int { return a.H.N() + a.H.M() }

// commNode maps a committee index to its agent's process id.
func (a *Alg) commNode(e int) int { return a.H.N() + e }

// isComm reports whether process id is a committee agent, returning the
// committee index.
func (a *Alg) isComm(p int) (int, bool) {
	if p >= a.H.N() {
		return p - a.H.N(), true
	}
	return 0, false
}

// Meets reports whether committee e meets: every member has joined it
// (the same abstract definition the CC algorithms use — all members
// attending, in waiting-or-done status — so monitors compare like for
// like).
func (a *Alg) Meets(cfg []BState, e int) bool {
	for _, q := range a.H.Edge(e) {
		if cfg[q].Club != e || (cfg[q].S != PWaiting && cfg[q].S != PDone) {
			return false
		}
	}
	return true
}

// Meetings lists the committees meeting in cfg.
func (a *Alg) Meetings(cfg []BState) []int {
	var out []int
	for e := 0; e < a.H.M(); e++ {
		if a.Meets(cfg, e) {
			out = append(out, e)
		}
	}
	return out
}

// Probe adapts the baseline to the spec monitors.
func (a *Alg) Probe() spec.Probe[BState] {
	return spec.Probe[BState]{
		H:       a.H,
		Meets:   func(cfg []BState, e int) bool { return a.Meets(cfg, e) },
		Waiting: func(cfg []BState, p int) bool { return cfg[p].S == PWaiting },
		Done:    func(cfg []BState, p int) bool { return cfg[p].S == PDone },
	}
}

// --- Professor-side actions (shared by both distributed baselines) ----------

// gatherTarget returns the unique incident committee in Gather phase
// that p has not yet joined, or -1. (Uniqueness: two incident committees
// conflict, and the committee layer never convenes conflicting
// committees together. Session-phase committees are deliberately not
// joinable: their meeting already runs — rejoining a dissolving meeting
// would fake a convene event with a stale done member.)
func (a *Alg) gatherTarget(cfg []BState, p int) int {
	for _, e := range a.H.EdgesOf(p) {
		if cfg[a.commNode(e)].Phase == CGather && cfg[p].Club != e {
			return e
		}
	}
	return -1
}

// allJoined reports whether every member of e has joined it.
func (a *Alg) allJoined(cfg []BState, e int) bool {
	for _, q := range a.H.Edge(e) {
		if cfg[q].Club != e {
			return false
		}
	}
	return true
}

// allDoneOrGone reports whether every member still pointing at e is done.
func (a *Alg) allDoneOrGone(cfg []BState, e int) bool {
	for _, q := range a.H.Edge(e) {
		if cfg[q].Club == e && cfg[q].S != PDone {
			return false
		}
	}
	return true
}

func (a *Alg) profActions() []sim.Action[BState] {
	isProf := func(p int) bool { return p < a.H.N() }
	return []sim.Action[BState]{
		{
			Name: "PReq", // idle professor starts waiting
			Guard: func(cfg []BState, p int) bool {
				return isProf(p) && cfg[p].S == PIdle
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.S = PWaiting
			},
		},
		{
			Name: "PJoin", // a convening incident committee gathers its members
			Guard: func(cfg []BState, p int) bool {
				return isProf(p) && cfg[p].S == PWaiting && cfg[p].Club == -1 &&
					a.gatherTarget(cfg, p) != -1
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.Club = a.gatherTarget(cfg, p)
				next.Age = 0 // still PWaiting: the meeting has not convened yet
			},
		},
		{
			Name: "PEssential", // all members joined: perform essential discussion
			Guard: func(cfg []BState, p int) bool {
				return isProf(p) && cfg[p].S == PWaiting && cfg[p].Club != -1 &&
					a.allJoined(cfg, cfg[p].Club)
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.S = PDone
			},
		},
		{
			Name: "PAge", // voluntary-discussion clock
			Guard: func(cfg []BState, p int) bool {
				return isProf(p) && cfg[p].S == PDone && cfg[p].Age < a.Disc
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.Age++
			},
		},
		{
			Name: "PLeave", // 2-phase: leave only when every participant is done
			Guard: func(cfg []BState, p int) bool {
				// Not during Gather: leaving before the committee noticed
				// the meeting convened would wedge its phase machine. Any
				// later phase (Session, or already dissolved) is fine.
				return isProf(p) && cfg[p].S == PDone && cfg[p].Age >= a.Disc &&
					cfg[p].Club != -1 && a.allDoneOrGone(cfg, cfg[p].Club) &&
					cfg[a.commNode(cfg[p].Club)].Phase != CGather
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.S = PIdle
				next.Club = -1
				next.Age = 0
			},
		},
	}
}

// allMembersFree reports whether every member of e is waiting and
// unattached (the committee may convene).
func (a *Alg) allMembersFree(cfg []BState, e int) bool {
	for _, q := range a.H.Edge(e) {
		if cfg[q].S != PWaiting || cfg[q].Club != -1 {
			return false
		}
	}
	return true
}

// someMemberLeft reports whether the meeting of e has started dissolving.
func (a *Alg) someMemberLeft(cfg []BState, e int) bool {
	for _, q := range a.H.Edge(e) {
		if cfg[q].Club != e {
			return true
		}
	}
	return false
}

// conflictBusy reports whether a conflicting committee is currently in
// Gather or Session phase.
func (a *Alg) conflictBusy(cfg []BState, e int) bool {
	for _, d := range a.conflicts[e] {
		ph := cfg[a.commNode(d)].Phase
		if ph == CGather || ph == CSession {
			return true
		}
	}
	return false
}

// commonCommitteeActions returns the phase bookkeeping shared by the
// distributed baselines: Gather → Session once everyone joined, back to
// Thinking once the meeting dissolves.
func (a *Alg) commonCommitteeActions(onDissolve func(next *BState)) []sim.Action[BState] {
	return []sim.Action[BState]{
		{
			Name: "CSession",
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				return ok && cfg[p].Phase == CGather && a.allJoined(cfg, e)
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.Phase = CSession
			},
		},
		{
			Name: "CDissolve",
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				return ok && cfg[p].Phase == CSession && a.someMemberLeft(cfg, e)
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.Phase = CThinking
				if onDissolve != nil {
					onDissolve(next)
				}
			},
		},
	}
}
