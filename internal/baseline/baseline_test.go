package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/spec"
)

func run(kind baseline.Kind, h *hypergraph.H, steps int, seed int64) (*baseline.Runner, *spec.Checker[baseline.BState]) {
	a := baseline.New(kind, h, 2)
	r := baseline.NewRunner(a, &sim.WeaklyFair{MaxAge: 6}, seed)
	chk := spec.NewChecker(a.Probe(), 0)
	chk.Check(0, r.Engine.Config())
	r.Engine.Observe(func(step int, cfg []baseline.BState, _ []sim.Exec) {
		chk.Check(step, cfg)
	})
	r.Run(steps)
	return r, chk
}

func TestDiningConvenesAndIsSafe(t *testing.T) {
	for _, h := range []*hypergraph.H{
		hypergraph.Figure1(),
		hypergraph.CommitteeRing(6),
		hypergraph.ChainOfTriples(3),
	} {
		r, chk := run(baseline.Dining, h, 8000, 3)
		if r.TotalConvenes() < 5 {
			t.Fatalf("dining on %v convened only %d meetings", h, r.TotalConvenes())
		}
		if !chk.Ok() {
			t.Fatalf("dining on %v: %v", h, chk.Violations[0])
		}
	}
}

func TestDiningNoStarvation(t *testing.T) {
	// Hygienic dining: every professor keeps participating.
	h := hypergraph.CommitteeRing(6)
	r, _ := run(baseline.Dining, h, 30000, 5)
	if r.MinProfMeetings() < 3 {
		t.Fatalf("some professor starved: %v", r.ProfMeetings)
	}
}

func TestTokenRingConvenesAndIsSafe(t *testing.T) {
	for _, h := range []*hypergraph.H{
		hypergraph.Figure1(),
		hypergraph.CommitteeRing(6),
	} {
		r, chk := run(baseline.TokenRing, h, 12000, 7)
		if r.TotalConvenes() < 5 {
			t.Fatalf("token ring on %v convened only %d meetings", h, r.TotalConvenes())
		}
		if !chk.Ok() {
			t.Fatalf("token ring on %v: %v", h, chk.Violations[0])
		}
	}
}

func TestTokenRingSerializesConcurrency(t *testing.T) {
	// On disjoint committees the oracle and dining reach full
	// concurrency; the single token keeps the ring baseline visibly
	// below dining — the §3.1 motivation for maximal concurrency. (Use a
	// conflict-free topology so the gap is purely the token's fault.)
	h := hypergraph.DisjointCommittees(4, 2)
	ring := baseline.Profile(baseline.TokenRing, h, 2, 20000, 9)
	dine := baseline.Profile(baseline.Dining, h, 2, 20000, 9)
	if ring.Convenes == 0 || dine.Convenes == 0 {
		t.Fatalf("no meetings: ring=%d dining=%d", ring.Convenes, dine.Convenes)
	}
	if ring.MeanConcurrency >= dine.MeanConcurrency {
		t.Fatalf("token ring should serialize: ring=%.3f dining=%.3f",
			ring.MeanConcurrency, dine.MeanConcurrency)
	}
}

func TestOracleUpperBound(t *testing.T) {
	h := hypergraph.DisjointCommittees(5, 2)
	res := baseline.Oracle(h, 2, 1000, 1)
	// Disjoint committees: the oracle saturates at all 5 meetings.
	if res.PeakConcurrency != 5 {
		t.Fatalf("oracle peak = %d, want 5", res.PeakConcurrency)
	}
	if res.MeanConcurrency < 4.0 {
		t.Fatalf("oracle mean concurrency = %f, want near 5", res.MeanConcurrency)
	}
	if res.Convenes == 0 {
		t.Fatal("oracle convened nothing")
	}
}

func TestOracleRespectsExclusion(t *testing.T) {
	// On a star every committee conflicts: oracle concurrency is at most 1.
	h := hypergraph.Star(6)
	res := baseline.Oracle(h, 1, 500, 2)
	if res.PeakConcurrency > 1 {
		t.Fatalf("oracle violated exclusion on a star: peak=%d", res.PeakConcurrency)
	}
}

func TestBStateClone(t *testing.T) {
	s := baseline.BState{Fork: []bool{true}, Dirty: []bool{false}, Asked: []bool{true}}
	c := s.Clone()
	c.Fork[0] = false
	if !s.Fork[0] {
		t.Fatal("Clone must deep-copy fork arrays")
	}
}

func TestKindString(t *testing.T) {
	if baseline.Dining.String() != "dining" || baseline.TokenRing.String() != "token-ring" {
		t.Fatal("Kind.String broken")
	}
}
