package baseline

import (
	"math/rand"

	"repro/internal/sim"
)

// The Chandy–Misra reduction [2]: each committee is a philosopher on the
// conflict graph; neighbors share a fork; a hungry philosopher collects
// all its forks and eats = the committee meeting convenes. Hygiene
// (clean/dirty forks with the "yield dirty forks on request" rule) gives
// freedom from starvation; the initial placement — every fork dirty, at
// the lower-indexed committee — makes the precedence graph acyclic.

// diningActions returns the committee-agent actions of the dining
// baseline (professors use profActions).
func (a *Alg) diningActions() []sim.Action[BState] {
	forksComplete := func(cfg []BState, e int) bool {
		st := &cfg[a.commNode(e)]
		for i := range a.conflicts[e] {
			if !st.Fork[i] {
				return false
			}
		}
		return true
	}
	actions := []sim.Action[BState]{
		{
			Name: "CHungry", // all members waiting: get hungry
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				return ok && cfg[p].Phase == CThinking && a.allMembersFree(cfg, e)
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.Phase = CHungry
			},
		},
		{
			Name: "CCalmDown", // members grabbed elsewhere: back to thinking
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				return ok && cfg[p].Phase == CHungry && !a.allMembersFree(cfg, e)
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.Phase = CThinking
				// Hygiene invariant: a thinking philosopher holds only
				// dirty forks (clean forks are never granted, so keeping
				// one while thinking would deadlock the neighbor).
				for i := range next.Dirty {
					if next.Fork[i] {
						next.Dirty[i] = true
					}
				}
			},
		},
		{
			Name: "CAsk", // request every missing fork
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				if !ok || cfg[p].Phase != CHungry {
					return false
				}
				for i := range a.conflicts[e] {
					if !cfg[p].Fork[i] && !cfg[p].Asked[i] {
						return true
					}
				}
				return false
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				e, _ := a.isComm(p)
				for i := range a.conflicts[e] {
					if !cfg[p].Fork[i] {
						next.Asked[i] = true
					}
				}
			},
		},
		{
			Name: "CGrant", // hygiene: yield dirty forks to requesters (unless eating)
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				if !ok || cfg[p].Phase == CGather || cfg[p].Phase == CSession {
					return false
				}
				for i, d := range a.conflicts[e] {
					if cfg[p].Fork[i] && cfg[p].Dirty[i] && cfg[a.commNode(d)].Asked[a.cpos[d][e]] {
						return true
					}
				}
				return false
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				e, _ := a.isComm(p)
				for i, d := range a.conflicts[e] {
					if cfg[p].Fork[i] && cfg[p].Dirty[i] && cfg[a.commNode(d)].Asked[a.cpos[d][e]] {
						next.Fork[i] = false
						next.Dirty[i] = false
					}
				}
			},
		},
		{
			Name: "CTake", // pick up a granted fork (lower index wins races)
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				if !ok {
					return false
				}
				for i, d := range a.conflicts[e] {
					if a.canTake(cfg, e, i, d) {
						return true
					}
				}
				return false
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				e, _ := a.isComm(p)
				for i, d := range a.conflicts[e] {
					if a.canTake(cfg, e, i, d) {
						next.Fork[i] = true
						next.Dirty[i] = false // forks are cleaned when handed over
						next.Asked[i] = false
					}
				}
			},
		},
		{
			Name: "CEat", // all forks + all members free: the meeting convenes
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				return ok && cfg[p].Phase == CHungry && forksComplete(cfg, e) &&
					a.allMembersFree(cfg, e) && !a.conflictBusy(cfg, e)
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.Phase = CGather
				for i := range next.Dirty {
					if next.Fork[i] {
						next.Dirty[i] = true // eating soils the forks
					}
				}
			},
		},
	}
	return append(actions, a.commonCommitteeActions(nil)...)
}

// canTake: the fork shared with d is in flight (neither side holds it),
// e requested it, and the race tiebreak favors e (lower index, or the
// other side did not also request).
func (a *Alg) canTake(cfg []BState, e, i, d int) bool {
	st := &cfg[a.commNode(e)]
	if st.Fork[i] || !st.Asked[i] {
		return false
	}
	other := &cfg[a.commNode(d)]
	j := a.cpos[d][e]
	if other.Fork[j] {
		return false
	}
	return e < d || !other.Asked[j]
}

// diningInit returns the legitimate initial state: professors idle;
// every fork dirty at the lower-indexed committee (acyclic precedence).
func (a *Alg) diningInit(p int) BState {
	s := BState{Club: -1}
	if e, ok := a.isComm(p); ok {
		k := len(a.conflicts[e])
		s.Fork = make([]bool, k)
		s.Dirty = make([]bool, k)
		s.Asked = make([]bool, k)
		for i, d := range a.conflicts[e] {
			if e < d {
				s.Fork[i] = true
				s.Dirty[i] = true
			}
		}
	}
	return s
}
