package baseline_test

import (
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// The baseline programs declare their guard locality too (professors ↔
// committee agents ↔ conflicting/ring-adjacent agents); the incremental
// engine must replay the full-rescan path exactly.
func TestBaselineIncrementalEquivalence(t *testing.T) {
	for _, kind := range []baseline.Kind{baseline.Dining, baseline.TokenRing} {
		for _, h := range []*hypergraph.H{hypergraph.CommitteeRing(8), hypergraph.Figure1()} {
			for seed := int64(1); seed <= 5; seed++ {
				var tFull, tIncr [][]sim.Exec
				mk := func(noLoc bool, trace *[][]sim.Exec) *baseline.Runner {
					a := baseline.New(kind, h, 2)
					a.NoLocality = noLoc
					r := baseline.NewRunner(a, &sim.WeaklyFair{MaxAge: 5}, seed)
					r.Engine.Observe(func(step int, cfg []baseline.BState, execs []sim.Exec) {
						*trace = append(*trace, append([]sim.Exec(nil), execs...))
					})
					return r
				}
				full := mk(true, &tFull)
				incr := mk(false, &tIncr)
				full.Run(500)
				incr.Run(500)
				if !reflect.DeepEqual(tFull, tIncr) {
					t.Fatalf("%v/%s/seed%d: traces diverge", kind, h, seed)
				}
				if !reflect.DeepEqual(full.Engine.Config(), incr.Engine.Config()) {
					t.Fatalf("%v/%s/seed%d: final configurations diverge", kind, h, seed)
				}
				if full.TotalConvenes() != incr.TotalConvenes() {
					t.Fatalf("%v/%s/seed%d: convene counts diverge", kind, h, seed)
				}
			}
		}
	}
}
