package baseline

import (
	"math/rand"

	"repro/internal/hypergraph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Program assembles the baseline guarded-action program (professors +
// committee agents).
func (a *Alg) Program() *sim.Program[BState] {
	actions := a.profActions()
	switch a.Kind {
	case Dining:
		actions = append(actions, a.diningActions()...)
	case TokenRing:
		actions = append(actions, a.tokenRingActions()...)
	default:
		panic("baseline: unknown kind")
	}
	var init func(p int) BState
	if a.Kind == Dining {
		init = a.diningInit
	} else {
		init = a.tokenRingInit
	}
	prog := &sim.Program[BState]{
		NumProcs: a.NumProcs(),
		Actions:  actions,
		Init:     func(p int, _ *rand.Rand) BState { return init(p) },
	}
	if !a.NoLocality {
		loc := a.locality()
		prog.Locality = func(p int) []int { return loc[p] }
	}
	return prog
}

// locality precomputes the guard read sets of the composed baseline
// program. Professors read their G_H neighbors (members of incident
// committees) and the agents of their incident committees; committee
// agents read their members, the agents of conflicting committees, and —
// for the token ring — the ring predecessor/successor agents involved in
// the handover handshake.
func (a *Alg) locality() [][]int {
	n, m := a.H.N(), a.H.M()
	loc := make([][]int, a.NumProcs())
	for p := 0; p < n; p++ {
		l := make([]int, 0, len(a.H.Neighbors(p))+len(a.H.EdgesOf(p)))
		l = append(l, a.H.Neighbors(p)...)
		for _, e := range a.H.EdgesOf(p) {
			l = append(l, a.commNode(e))
		}
		loc[p] = l
	}
	for e := 0; e < m; e++ {
		l := make([]int, 0, len(a.H.Edge(e))+len(a.conflicts[e])+2)
		l = append(l, a.H.Edge(e)...)
		for _, d := range a.conflicts[e] {
			l = append(l, a.commNode(d))
		}
		if a.Kind == TokenRing {
			l = append(l, a.commNode(a.ringPrev(e)), a.commNode(a.ringNext(e)))
		}
		loc[a.commNode(e)] = l
	}
	return loc
}

// Runner couples a baseline Alg with an engine and the same event
// statistics the core Runner tracks, so the comparison tables are
// apples to apples.
type Runner struct {
	Alg    *Alg
	Engine *sim.Engine[BState]

	Convenes        []int
	ProfMeetings    []int
	SumConcurrency  int64
	PeakConcurrency int
	stepsSampled    int64
	prevMeets       []bool
}

// NewRunner builds a baseline runner from the legitimate initial
// configuration (the baselines are not self-stabilizing).
func NewRunner(a *Alg, d sim.Daemon, seed int64) *Runner {
	eng := sim.NewEngine(a.Program(), d, seed)
	r := &Runner{
		Alg:          a,
		Engine:       eng,
		Convenes:     make([]int, a.H.M()),
		ProfMeetings: make([]int, a.H.N()),
		prevMeets:    make([]bool, a.H.M()),
	}
	eng.Observe(func(step int, cfg []BState, _ []sim.Exec) {
		concurrent := 0
		for e := 0; e < a.H.M(); e++ {
			meets := a.Meets(cfg, e)
			if meets {
				concurrent++
				if !r.prevMeets[e] {
					r.Convenes[e]++
					for _, q := range a.H.Edge(e) {
						r.ProfMeetings[q]++
					}
				}
			}
			r.prevMeets[e] = meets
		}
		if concurrent > r.PeakConcurrency {
			r.PeakConcurrency = concurrent
		}
		r.SumConcurrency += int64(concurrent)
		r.stepsSampled++
	})
	return r
}

// Run executes at most maxSteps steps.
func (r *Runner) Run(maxSteps int) int { return r.Engine.Run(maxSteps) }

// TotalConvenes returns the total convene count.
func (r *Runner) TotalConvenes() int {
	t := 0
	for _, c := range r.Convenes {
		t += c
	}
	return t
}

// MeanConcurrency returns the average number of simultaneous meetings.
func (r *Runner) MeanConcurrency() float64 {
	if r.stepsSampled == 0 {
		return 0
	}
	return float64(r.SumConcurrency) / float64(r.stepsSampled)
}

// MinProfMeetings returns the fairness witness.
func (r *Runner) MinProfMeetings() int {
	min := -1
	for p, c := range r.ProfMeetings {
		if len(r.Alg.H.EdgesOf(p)) == 0 {
			continue
		}
		if min == -1 || c < min {
			min = c
		}
	}
	if min == -1 {
		return 0
	}
	return min
}

// Profile runs the baseline and produces the comparison profile in the
// same shape as metrics.MeasureThroughput.
func Profile(kind Kind, h *hypergraph.H, disc, steps int, seed int64) metrics.Throughput {
	a := New(kind, h, disc)
	r := NewRunner(a, &sim.WeaklyFair{MaxAge: 6}, seed)
	r.Run(steps)
	res := metrics.Throughput{
		Steps:           r.Engine.Steps(),
		Rounds:          r.Engine.Rounds(),
		Convenes:        r.TotalConvenes(),
		MeanConcurrency: r.MeanConcurrency(),
		PeakConcurrency: r.PeakConcurrency,
		MinProfMeetings: r.MinProfMeetings(),
	}
	min := -1
	for _, c := range r.Convenes {
		if min == -1 || c < min {
			min = c
		}
	}
	if min > 0 {
		res.MinCommMeetings = min
	}
	if res.Rounds > 0 {
		res.ConvenesPer100R = 100 * float64(res.Convenes) / float64(res.Rounds)
	}
	if mx, _ := h.MaxMatching(); mx > 0 {
		res.MaxMatchingScale = res.MeanConcurrency / float64(mx)
	}
	return res
}

// Oracle is the centralized greedy scheduler: global knowledge, zero
// coordination cost. Each round it convenes every committee whose
// members are all free (greedy, in index order), and meetings last
// exactly disc rounds. It upper-bounds the concurrency any distributed
// algorithm can reach and is reported alongside the baselines.
func Oracle(h *hypergraph.H, disc, rounds int, seed int64) metrics.Throughput {
	rng := rand.New(rand.NewSource(seed))
	n, m := h.N(), h.M()
	busyUntil := make([]int, n) // professor busy until round t
	meetingEnd := make([]int, m)
	res := metrics.Throughput{Rounds: rounds, Steps: rounds}
	var sum int64
	order := rng.Perm(m)
	for t := 0; t < rounds; t++ {
		concurrent := 0
		for _, e := range order {
			if meetingEnd[e] > t {
				concurrent++
				continue
			}
			free := true
			for _, q := range h.Edge(e) {
				if busyUntil[q] > t {
					free = false
					break
				}
			}
			if free {
				meetingEnd[e] = t + disc + 1
				for _, q := range h.Edge(e) {
					busyUntil[q] = t + disc + 1
				}
				res.Convenes++
				concurrent++
			}
		}
		if concurrent > res.PeakConcurrency {
			res.PeakConcurrency = concurrent
		}
		sum += int64(concurrent)
	}
	if rounds > 0 {
		res.MeanConcurrency = float64(sum) / float64(rounds)
		res.ConvenesPer100R = 100 * float64(res.Convenes) / float64(rounds)
	}
	if mx, _ := h.MaxMatching(); mx > 0 {
		res.MaxMatchingScale = res.MeanConcurrency / float64(mx)
	}
	return res
}
