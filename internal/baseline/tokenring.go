package baseline

import (
	"math/rand"

	"repro/internal/sim"
)

// The Bagrodia-style circulating-token baseline [3]: a single token
// visits the committees in index order; only the token holder may
// convene its committee, which serializes convene decisions and yields
// the lowest concurrency of the distributed algorithms (exactly the
// weakness §3.1 attributes to the token mechanism among conflicting
// committees — here applied to all committees for the worst case).
//
// The token handover uses a two-step handshake (Handing flag) so that a
// committee only relinquishes the token after its successor took it.

// ringNext returns the committee after e in ring order.
func (a *Alg) ringNext(e int) int { return (e + 1) % a.H.M() }

func (a *Alg) ringPrev(e int) int { return (e + a.H.M() - 1) % a.H.M() }

func (a *Alg) tokenRingActions() []sim.Action[BState] {
	canConvene := func(cfg []BState, e int) bool {
		return a.allMembersFree(cfg, e) && !a.conflictBusy(cfg, e)
	}
	actions := []sim.Action[BState]{
		{
			Name: "CConvene", // token holder convenes if possible
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				return ok && cfg[p].Phase == CThinking && cfg[p].HasTok && !cfg[p].Handing &&
					canConvene(cfg, e)
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.Phase = CGather
			},
		},
		{
			Name: "CPassStart", // cannot (or need not) convene: start handover
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				if !ok || !cfg[p].HasTok || cfg[p].Handing {
					return false
				}
				switch cfg[p].Phase {
				case CThinking:
					return !canConvene(cfg, e)
				case CSession:
					return true // meeting is running; move on
				}
				return false
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.Handing = true
			},
		},
		{
			Name: "CTakeTok", // successor picks the token up
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				if !ok || cfg[p].HasTok {
					return false
				}
				pred := a.commNode(a.ringPrev(e))
				return cfg[pred].HasTok && cfg[pred].Handing
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.HasTok = true
			},
		},
		{
			Name: "CPassEnd", // successor holds it: drop ours
			Guard: func(cfg []BState, p int) bool {
				e, ok := a.isComm(p)
				if !ok || !cfg[p].HasTok || !cfg[p].Handing {
					return false
				}
				return cfg[a.commNode(a.ringNext(e))].HasTok
			},
			Body: func(cfg []BState, p int, next *BState, _ *rand.Rand) {
				next.HasTok = false
				next.Handing = false
			},
		},
	}
	return append(actions, a.commonCommitteeActions(nil)...)
}

// tokenRingInit: professors idle; the token starts at committee 0.
func (a *Alg) tokenRingInit(p int) BState {
	s := BState{Club: -1}
	if e, ok := a.isComm(p); ok && e == 0 {
		s.HasTok = true
	}
	return s
}
