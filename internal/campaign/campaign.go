package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/explore"
	"repro/internal/par"
	"repro/internal/store"
)

// Spec is a declarative campaign: the cartesian grid of the list
// fields, sharing the scalar bounds. It round-trips through JSON
// (cccheck -campaign-json, POST /v1/campaigns) and is also built from
// the comma-list flag grammar (ParseList).
type Spec struct {
	// Algs and Topos are required; empty lists are an error.
	Algs  []string `json:"algs"`
	Topos []string `json:"topos"`
	// Daemons defaults to all three branching modes.
	Daemons []string `json:"daemons,omitempty"`
	// Inits defaults to the per-algorithm default family (cc-full for
	// CC, legit for the baselines).
	Inits []string `json:"inits,omitempty"`
	// Mutations defaults to none; the value "none" names the unmutated
	// cell, so grids can mix it with seeded mutations.
	Mutations []string `json:"mutations,omitempty"`

	RandomInits   int   `json:"random_inits,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	MaxStates     int   `json:"max_states,omitempty"`
	MaxDepth      int   `json:"max_depth,omitempty"`
	MaxBranch     int   `json:"max_branch,omitempty"`
	MaxViolations int   `json:"max_violations,omitempty"`
	Symmetry      bool  `json:"symmetry,omitempty"`
	NoDeadlock    bool  `json:"no_deadlock,omitempty"`
	NoClosure     bool  `json:"no_closure,omitempty"`
	NoConverge    bool  `json:"no_converge,omitempty"`
}

// SetScalars copies every scalar bound and toggle from a JobSpec into
// the grid — the single place that knows the scalar field
// correspondence, so CLIs building a Spec from flags cannot silently
// drop one.
func (s *Spec) SetScalars(j store.JobSpec) {
	s.RandomInits = j.RandomInits
	s.Seed = j.Seed
	s.MaxStates = j.MaxStates
	s.MaxDepth = j.MaxDepth
	s.MaxBranch = j.MaxBranch
	s.MaxViolations = j.MaxViolations
	s.Symmetry = j.Symmetry
	s.NoDeadlock = j.NoDeadlock
	s.NoClosure = j.NoClosure
	s.NoConverge = j.NoConverge
}

// ParseList splits a comma-list flag value strictly: every element
// must be non-empty after trimming, so typos like "cc1,,cc2" or a
// trailing "cc1," are usage errors instead of silently collapsing.
// An empty input yields an empty list (the field's default applies).
func ParseList(flagName, s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("campaign: empty element in -%s list %q", flagName, s)
		}
		out = append(out, p)
	}
	return out, nil
}

// ParseBytes parses a human byte-size flag value: a plain integer is
// bytes; K/M/G suffixes (optionally with B, case-insensitive) scale by
// powers of 1024. Empty means 0 (no budget).
func ParseBytes(flagName, s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	mult := int64(1)
	u := strings.ToUpper(t)
	u = strings.TrimSuffix(u, "B")
	switch {
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, u[:len(u)-1]
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, u[:len(u)-1]
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, u[:len(u)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n < 0 || n > math.MaxInt64/mult {
		// The overflow check matters: a wrapped-negative budget would
		// silently read as "unlimited" — the opposite of the intent.
		return 0, fmt.Errorf("campaign: bad -%s value %q (want e.g. 268435456, 256M, 2G)", flagName, s)
	}
	return n * mult, nil
}

// ParseSpec builds the grid from the comma-list flag grammar
// (e.g. -alg cc1,cc2 -topo ring:3,star:4 -daemon central,sync). Every
// list is parsed strictly; value validation happens in Expand.
func ParseSpec(algs, topos, daemons, inits, mutations string) (Spec, error) {
	var s Spec
	var err error
	if s.Algs, err = ParseList("alg", algs); err != nil {
		return s, err
	}
	if s.Topos, err = ParseList("topo", topos); err != nil {
		return s, err
	}
	if s.Daemons, err = ParseList("daemon", daemons); err != nil {
		return s, err
	}
	if s.Inits, err = ParseList("init", inits); err != nil {
		return s, err
	}
	if s.Mutations, err = ParseList("mutate", mutations); err != nil {
		return s, err
	}
	return s, nil
}

// Expand materializes the grid into canonical, validated job specs in
// deterministic order (alg-major, then topo, daemon, init, mutation),
// deduplicated by content key (aliases can make distinct grid cells
// identical jobs). Any invalid cell fails the whole expansion — a
// campaign with a typo runs nothing rather than silently running a
// subset.
func (s Spec) Expand() ([]store.JobSpec, error) {
	if len(s.Algs) == 0 {
		return nil, fmt.Errorf("campaign: no algorithms given (want a comma list of %s)", strings.Join(Algs(), " | "))
	}
	if len(s.Topos) == 0 {
		return nil, fmt.Errorf("campaign: no topologies given (e.g. ring:3,star:4)")
	}
	daemons := s.Daemons
	if len(daemons) == 0 {
		daemons = Daemons()
	}
	inits := s.Inits
	if len(inits) == 0 {
		inits = []string{""}
	}
	mutations := s.Mutations
	if len(mutations) == 0 {
		mutations = []string{""}
	}
	var cells []store.JobSpec
	seen := map[string]bool{}
	for _, alg := range s.Algs {
		for _, topo := range s.Topos {
			for _, daemon := range daemons {
				for _, init := range inits {
					for _, mut := range mutations {
						spec := store.JobSpec{
							Alg: alg, Topo: topo, Daemon: daemon, Init: init, Mutation: mut,
							RandomInits: s.RandomInits, Seed: s.Seed,
							MaxStates: s.MaxStates, MaxDepth: s.MaxDepth, MaxBranch: s.MaxBranch,
							MaxViolations: s.MaxViolations, Symmetry: s.Symmetry,
							NoDeadlock: s.NoDeadlock, NoClosure: s.NoClosure, NoConverge: s.NoConverge,
						}.Canonical()
						if err := Validate(spec); err != nil {
							return nil, fmt.Errorf("%v (cell %s)", err, spec)
						}
						key := spec.Key()
						if seen[key] {
							continue
						}
						seen[key] = true
						cells = append(cells, spec)
					}
				}
			}
		}
	}
	return cells, nil
}

// Cell statuses, as reported in events and the aggregate report.
const (
	StatusHit     = "hit"     // verdict served from the store
	StatusDone    = "done"    // explored this run (and persisted)
	StatusSkipped = "skipped" // not run: the campaign was interrupted
	StatusFailed  = "failed"  // the job errored (spec raced a cache wipe, I/O failure)
)

// Event is one per-cell progress notification, streamed as cells
// finish. Ordering across cells follows completion (hence varies with
// the pool width); everything in the final Report is deterministic.
type Event struct {
	Index   int // cell index in expansion order
	Total   int
	Spec    store.JobSpec
	Key     string
	Status  string
	Verdict string
	States  int
	// Resumed is the state count restored from a checkpoint before
	// this cell continued (0 = started fresh). Progress-only: the
	// Report is byte-identical whether a cell resumed or not.
	Resumed int
	// Attempts is how many times the cell ran (1 = no retries needed;
	// see RunOptions.Retries). Progress-only, like Resumed.
	Attempts int
	Elapsed  time.Duration
}

// CellResult is one cell of the aggregate report.
type CellResult struct {
	Spec    store.JobSpec `json:"spec"`
	Key     string        `json:"key"`
	Status  string        `json:"status"`
	Verdict string        `json:"verdict,omitempty"`
	Error   string        `json:"error,omitempty"`
	// ErrorClass tags a failed cell with chaos.Classify's verdict on
	// its error (transient | permanent | corrupt | unknown), so report
	// consumers and the CLI exit path can tell an I/O casualty from a
	// spec problem without parsing the message.
	ErrorClass  string `json:"error_class,omitempty"`
	Inits       int    `json:"inits,omitempty"`
	States      int    `json:"states,omitempty"`
	Transitions int64  `json:"transitions,omitempty"`
	Deadlocks   int    `json:"deadlocks,omitempty"`
	Violations  int    `json:"violations,omitempty"`
}

// Report is the deterministic aggregate of one campaign run: cells in
// expansion order, no timing, so the bytes are identical at any pool
// width and any cache state reached by the same set of completed cells.
type Report struct {
	Cells     int `json:"cells"`
	CacheHits int `json:"cache_hits"`
	Explored  int `json:"explored"`
	Verified  int `json:"verified"`
	Bounded   int `json:"bounded"`
	Violated  int `json:"violated"`
	Skipped   int `json:"skipped"`
	Failed    int `json:"failed"`

	Results []CellResult `json:"results"`
}

// JSON renders the report deterministically.
func (r *Report) JSON() []byte {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("campaign: report marshal cannot fail: %v", err))
	}
	return append(data, '\n')
}

// Ok reports whether no cell violated or failed (skipped cells are
// not failures: the campaign was interrupted, not refuted).
func (r *Report) Ok() bool { return r.Violated == 0 && r.Failed == 0 }

// Complete reports whether every cell ran (nothing skipped).
func (r *Report) Complete() bool { return r.Skipped == 0 }

// Render writes the human-readable aggregate.
func (r *Report) Render(w io.Writer) {
	for _, c := range r.Results {
		switch c.Status {
		case StatusSkipped:
			fmt.Fprintf(w, "%-44s  skipped (interrupted)\n", c.Spec)
		case StatusFailed:
			fmt.Fprintf(w, "%-44s  FAILED: %s\n", c.Spec, c.Error)
		default:
			cached := ""
			if c.Status == StatusHit {
				cached = "  [cache]"
			}
			fmt.Fprintf(w, "%-44s  %-8s  %8d states  %10d transitions  %d violations%s\n",
				c.Spec, c.Verdict, c.States, c.Transitions, c.Violations, cached)
		}
	}
	fmt.Fprintf(w, "campaign: %d cells — %d verified, %d bounded, %d violated, %d failed, %d skipped (%d cache hits, %d explored)\n",
		r.Cells, r.Verified, r.Bounded, r.Violated, r.Failed, r.Skipped, r.CacheHits, r.Explored)
}

// RunOptions parameterize a campaign run.
type RunOptions struct {
	// Workers is the cell-pool width (0 = par.Workers): how many cells
	// explore concurrently.
	Workers int
	// JobWorkers is the explorer width per cell (0 = 1; cells already
	// fan across the pool).
	JobWorkers int
	// Checkpoint enables in-flight cell checkpointing (snapshots to
	// the campaign's store), so an interrupted cell resumes
	// mid-exploration on the next run instead of restarting. Requires
	// a store. CheckpointEvery sets the periodic cadence in expanded
	// states; 0 snapshots on cancellation only.
	Checkpoint      bool
	CheckpointEvery int
	// MemBudget bounds each cell's in-memory explorer footprint
	// (bytes; 0 = fully in-memory), spilling to SpillDir past it.
	MemBudget int64
	SpillDir  string
	// Scalar forces every cell down the scalar expansion path
	// (see ExecOptions.Scalar).
	Scalar bool
	// Retries is the per-cell retry budget for recoverable failures
	// (transient I/O, quarantined corruption): a failing cell is
	// re-executed up to this many extra times, with exponential
	// backoff, before it is marked failed — the campaign never aborts
	// on one bad cell. 0 means the default (2); negative disables
	// retries.
	Retries int
	// RetryBackoff is the delay before the first cell retry, doubling
	// per attempt (0 = 50ms).
	RetryBackoff time.Duration
	// FS routes each cell's spill I/O through a chaos.FS (nil = the
	// host filesystem); see ExecOptions.FS.
	FS chaos.FS
	// Progress, if non-nil, receives one event per finished cell.
	// Calls are serialized.
	Progress func(Event)
}

// Run executes the cells (from Expand) against the store: cache hits
// are served without recomputation, misses are explored and persisted
// before the cell completes, and a cancelled context marks the
// remaining cells skipped — re-running the same campaign later resumes
// from the store. st may be nil (no caching, everything explores).
// The returned report is byte-identical at any opts.Workers for a
// given starting cache state.
func Run(ctx context.Context, st store.Interface, cells []store.JobSpec, opts RunOptions) *Report {
	rep := &Report{Cells: len(cells), Results: make([]CellResult, len(cells))}
	retries := opts.Retries
	switch {
	case retries == 0:
		retries = 2
	case retries < 0:
		retries = 0
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var progMu sync.Mutex
	emit := func(ev Event) {
		if opts.Progress == nil {
			return
		}
		progMu.Lock()
		defer progMu.Unlock()
		opts.Progress(ev)
	}

	par.ForEachWorker(len(cells), opts.Workers, func(w, i int) {
		spec := cells[i].Canonical()
		cell := CellResult{Spec: spec, Key: spec.Key()}
		start := time.Now()
		var stats explore.RunStats
		attempts := 0
		switch {
		case ctx.Err() != nil:
			cell.Status = StatusSkipped
		default:
			var res *explore.Result
			if st != nil {
				if hit, _, ok := st.Get(spec); ok {
					res = hit
					cell.Status = StatusHit
				}
			}
			if res == nil {
				eo := ExecOptions{
					Workers: opts.JobWorkers, Stats: &stats,
					MemBudget: opts.MemBudget, SpillDir: opts.SpillDir,
					FS: opts.FS, Scalar: opts.Scalar,
				}
				if st != nil && opts.Checkpoint {
					eo.Checkpoints = st
					eo.CheckpointEvery = opts.CheckpointEvery
				}
				var err error
				delay := backoff
				for {
					attempts++
					res, err = ExecuteOpts(ctx, spec, eo)
					if err == nil && st != nil {
						_, err = st.Put(spec, res)
					}
					// Retry only recoverable failures (transient I/O,
					// quarantined corruption) within the cell's budget; a
					// fresh attempt re-reads the store, rebuilds all spill
					// scratch and converges to the same verdict.
					// Cancellation is not a failure and never retried.
					if err == nil || errors.Is(err, ErrInterrupted) || attempts > retries || !chaos.Recoverable(err) {
						break
					}
					select {
					case <-ctx.Done():
						err = fmt.Errorf("campaign: %w during retry backoff (%v)", ErrInterrupted, context.Cause(ctx))
					case <-time.After(delay):
						delay *= 2
						res = nil
						continue
					}
					break
				}
				switch {
				case errors.Is(err, ErrInterrupted):
					// Mid-cell cancellation: the snapshot (if enabled) is
					// saved; the cell reads as skipped, exactly like a cell
					// never scheduled, and the next run resumes it.
					cell.Status = StatusSkipped
					res = nil
				case err != nil:
					cell.Status = StatusFailed
					cell.Error = err.Error()
					if attempts > 1 {
						cell.Error = fmt.Sprintf("%v (after %d attempts)", err, attempts)
					}
					if cls := chaos.Classify(err); cls != chaos.Unknown {
						cell.ErrorClass = cls.String()
					}
				default:
					cell.Status = StatusDone
				}
			}
			if res != nil && cell.Status != StatusFailed {
				cell.Verdict = res.Verdict()
				cell.Inits = res.Inits
				cell.States = res.States
				cell.Transitions = res.Transitions
				cell.Deadlocks = res.Deadlocks
				cell.Violations = len(res.Violations)
			}
		}
		rep.Results[i] = cell
		emit(Event{
			Index: i, Total: len(cells), Spec: spec, Key: cell.Key,
			Status: cell.Status, Verdict: cell.Verdict, States: cell.States,
			Resumed: stats.ResumedStates, Attempts: attempts, Elapsed: time.Since(start),
		})
	})

	for i := range rep.Results {
		switch rep.Results[i].Status {
		case StatusHit:
			rep.CacheHits++
		case StatusDone:
			rep.Explored++
		case StatusSkipped:
			rep.Skipped++
		case StatusFailed:
			rep.Failed++
		}
		switch rep.Results[i].Verdict {
		case "verified":
			rep.Verified++
		case "bounded":
			rep.Bounded++
		case "violated":
			rep.Violated++
		}
	}
	return rep
}
