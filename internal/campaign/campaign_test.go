package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/store"
)

func openStore(t *testing.T) store.Interface {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestParseListStrict: comma-list grammar rejects empty elements
// instead of silently collapsing them.
func TestParseListStrict(t *testing.T) {
	for _, bad := range []string{"a,,b", "a,", ",a", " , ", ","} {
		if _, err := campaign.ParseList("alg", bad); err == nil {
			t.Errorf("ParseList(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "empty element") {
			t.Errorf("ParseList(%q): unhelpful error %v", bad, err)
		}
	}
	got, err := campaign.ParseList("alg", " cc1 , cc2 ")
	if err != nil || len(got) != 2 || got[0] != "cc1" || got[1] != "cc2" {
		t.Fatalf("ParseList trimming: %v %v", got, err)
	}
	if got, err := campaign.ParseList("alg", "  "); err != nil || got != nil {
		t.Fatalf("blank list: %v %v", got, err)
	}
}

// TestValidateRejections: every unknown or inconsistent flag-grammar
// value is an error naming the offending value — the table behind the
// cccheck/ccserve usage errors.
func TestValidateRejections(t *testing.T) {
	base := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit"}
	for _, tc := range []struct {
		name string
		mod  func(s *store.JobSpec)
		want string
	}{
		{"unknown alg", func(s *store.JobSpec) { s.Alg = "cc9" }, "unknown algorithm"},
		{"empty alg", func(s *store.JobSpec) { s.Alg = "" }, "missing algorithm"},
		{"misspelled daemon", func(s *store.JobSpec) { s.Daemon = "centrall" }, "unknown daemon mode"},
		{"unknown init", func(s *store.JobSpec) { s.Init = "bogus" }, "unknown init mode"},
		{"empty topo arg", func(s *store.JobSpec) { s.Topo = "ring:" }, "bad int"},
		{"out-of-range topo", func(s *store.JobSpec) { s.Topo = "ring:0" }, "needs n >= 3"},
		{"negative topo", func(s *store.JobSpec) { s.Topo = "disjoint:0,1" }, "invalid topology"},
		{"unknown topo", func(s *store.JobSpec) { s.Topo = "blob:3" }, "unknown topology"},
		{"unknown mutation", func(s *store.JobSpec) { s.Mutation = "bogus" }, "unknown mutation"},
		{"baseline non-legit init", func(s *store.JobSpec) { s.Alg = "dining"; s.Init = "cc" }, "only -init legit"},
		{"baseline mutation", func(s *store.JobSpec) { s.Alg = "token-ring"; s.Init = "legit"; s.Mutation = "leave-early" }, "CC algorithms only"},
		{"cc symmetry on a ring", func(s *store.JobSpec) { s.Symmetry = true }, "declares no automorphisms"},
		{"dining symmetry", func(s *store.JobSpec) { s.Alg = "dining"; s.Symmetry = true }, "declares no automorphisms"},
	} {
		spec := base
		tc.mod(&spec)
		err := campaign.Validate(spec)
		if err == nil {
			t.Errorf("%s: accepted %+v", tc.name, spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// And the accepted shapes stay accepted.
	for _, ok := range []store.JobSpec{
		base,
		{Alg: "cc1", Topo: "star:4", Daemon: "sync", Init: "cc"},
		{Alg: "token-ring", Topo: "ring:4", Daemon: "central", Symmetry: true},
		{Alg: "cc2", Topo: "disjoint:2,2", Daemon: "central", Init: "cc", Symmetry: true},
		{Alg: "cc2", Topo: "ring:3", Daemon: "all", Init: "random", Seed: 3},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit", Mutation: "leave-early"},
	} {
		if err := campaign.Validate(ok); err != nil {
			t.Errorf("rejected valid spec %+v: %v", ok, err)
		}
	}
}

// TestExpand: deterministic order, alias dedup, and whole-grid
// rejection on one bad cell.
func TestExpand(t *testing.T) {
	spec, err := campaign.ParseSpec("cc1,cc2", "ring:3", "central,sync,synchronous", "legit", "")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// sync and synchronous collapse: 2 algs × 2 daemons.
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4: %v", len(cells), cells)
	}
	want := []string{
		"cc1/ring:3/central/legit", "cc1/ring:3/synchronous/legit",
		"cc2/ring:3/central/legit", "cc2/ring:3/synchronous/legit",
	}
	for i, c := range cells {
		if c.String() != want[i] {
			t.Errorf("cell %d = %s, want %s", i, c, want[i])
		}
	}

	bad := campaign.Spec{Algs: []string{"cc1", "cc9"}, Topos: []string{"ring:3"}}
	if _, err := bad.Expand(); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("bad grid: %v", err)
	}
	if _, err := (campaign.Spec{Topos: []string{"ring:3"}}).Expand(); err == nil {
		t.Fatal("grid without algorithms accepted")
	}
	if _, err := (campaign.Spec{Algs: []string{"cc1"}}).Expand(); err == nil {
		t.Fatal("grid without topologies accepted")
	}
}

// TestExecuteMatchesDirectExplore: the shared runner maps a JobSpec
// onto exactly the options cccheck used to build by hand — proven by
// JSON equality of the results.
func TestExecuteMatchesDirectExplore(t *testing.T) {
	spec := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "synchronous", Init: "cc"}
	got, err := campaign.Execute(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hypergraph.Parse("ring:3", nil)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := explore.CC(core.CC2, h, explore.CCOptions{Init: explore.InitCC})
	if err != nil {
		t.Fatal(err)
	}
	want := explore.Explore(factory, explore.Options{
		Mode:          sim.SelectSynchronous,
		MaxStates:     store.DefaultMaxStates,
		MaxBranch:     1 << 16,
		MaxViolations: 3,
		CheckDeadlock: true, CheckClosure: true, CheckConvergence: true,
		Workers: 2,
	})
	// Execute zeroes the footprint measurement: verdict bytes must be
	// identical across resumed/fresh and spilled/in-memory runs.
	want.StateBytes = 0
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("Execute diverges from direct explore:\n%s\nvs\n%s", gj, wj)
	}
}

// TestRunByteIdenticalAcrossWorkers: a fresh campaign's aggregate
// report has identical bytes at any pool width (with and without a
// store).
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	spec, err := campaign.ParseSpec("cc1,cc2", "ring:3", "central,synchronous", "legit", "")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var reports [][]byte
	for _, w := range []int{1, 8} {
		rep := campaign.Run(context.Background(), openStore(t), cells, campaign.RunOptions{Workers: w})
		reports = append(reports, rep.JSON())
	}
	noStore := campaign.Run(context.Background(), nil, cells, campaign.RunOptions{Workers: 3})
	reports = append(reports, noStore.JSON())
	for i := 1; i < len(reports); i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Fatalf("report %d differs:\n%s\nvs\n%s", i, reports[0], reports[i])
		}
	}
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestResumeAfterKillDeterminism is the resumability acceptance test:
// a campaign killed partway leaves only complete cache entries behind;
// resuming it serially and at -j 8 from the same snapshot produces
// byte-identical aggregate reports; and a third run reports 100% cache
// hits, again byte-identically at any width.
func TestResumeAfterKillDeterminism(t *testing.T) {
	spec, err := campaign.ParseSpec("cc1,cc2", "ring:3", "central,synchronous", "legit,cc", "")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("grid size %d, want 8", len(cells))
	}

	// "Kill" the campaign after the second completed cell: cancel the
	// context, which skips every cell not yet started. Cells already in
	// flight still complete and persist — exactly what a SIGTERM-ed
	// cccheck does.
	st := openStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	rep1 := campaign.Run(ctx, st, cells, campaign.RunOptions{
		Workers: 2,
		Progress: func(ev campaign.Event) {
			if ev.Status == campaign.StatusDone && done.Add(1) == 2 {
				cancel()
			}
		},
	})
	if rep1.Complete() {
		t.Fatal("interrupted run claims completion")
	}
	if rep1.Skipped == 0 || rep1.Explored == 0 {
		t.Fatalf("unexpected interrupted shape: %+v", rep1)
	}
	if st.Len() != rep1.Explored {
		t.Fatalf("store holds %d entries, %d explored", st.Len(), rep1.Explored)
	}

	// Resume from identical snapshots of the partial cache, serially
	// and at -j 8: the aggregates must match byte for byte.
	snapA, snapB := copyDir(t, st.Dir()), copyDir(t, st.Dir())
	stA, _ := store.Open(snapA)
	stB, _ := store.Open(snapB)
	repSerial := campaign.Run(context.Background(), stA, cells, campaign.RunOptions{Workers: 1})
	repPar := campaign.Run(context.Background(), stB, cells, campaign.RunOptions{Workers: 8})
	if !bytes.Equal(repSerial.JSON(), repPar.JSON()) {
		t.Fatalf("resumed aggregates differ between -j 1 and -j 8:\n%s\nvs\n%s", repSerial.JSON(), repPar.JSON())
	}
	if repSerial.CacheHits != rep1.Explored {
		t.Fatalf("resume hit %d cells, want the %d persisted before the kill", repSerial.CacheHits, rep1.Explored)
	}
	if !repSerial.Complete() || !repSerial.Ok() || repSerial.Verified != len(cells) {
		t.Fatalf("resumed campaign not clean: %+v", repSerial)
	}

	// A repeated run is 100% cache hits, byte-identical at any width.
	rep3a := campaign.Run(context.Background(), stA, cells, campaign.RunOptions{Workers: 1})
	rep3b := campaign.Run(context.Background(), stA, cells, campaign.RunOptions{Workers: 8})
	if rep3a.CacheHits != len(cells) {
		t.Fatalf("repeat run: %d hits, want %d", rep3a.CacheHits, len(cells))
	}
	if !bytes.Equal(rep3a.JSON(), rep3b.JSON()) {
		t.Fatal("repeat aggregates differ across widths")
	}
}

// TestRunViolatedCell: a mutated cell is reported violated and fails
// the campaign without failing its clean neighbors.
func TestRunViolatedCell(t *testing.T) {
	spec := campaign.Spec{
		Algs: []string{"cc2"}, Topos: []string{"ring:3"},
		Daemons: []string{"central"}, Inits: []string{"legit"},
		Mutations: []string{"none", "leave-early"},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	rep := campaign.Run(context.Background(), nil, cells, campaign.RunOptions{})
	if rep.Ok() {
		t.Fatal("campaign with a mutated cell reports Ok")
	}
	if rep.Verified != 1 || rep.Violated != 1 {
		t.Fatalf("unexpected aggregate: %+v", rep)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "violated") || !strings.Contains(buf.String(), "1 violated") {
		t.Fatalf("render missing verdicts:\n%s", buf.String())
	}
}
