package campaign_test

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/store"
)

// chaosGrid is the battery's cell set: small enough to explore in
// milliseconds, wide enough that faults land across many independent
// store round-trips.
func chaosGrid(t *testing.T) []store.JobSpec {
	t.Helper()
	spec, err := campaign.ParseSpec("cc1,cc2", "ring:3", "central,synchronous", "legit,cc", "")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("grid size %d, want 8", len(cells))
	}
	return cells
}

// refCell is what a fault-free run persists for one cell: the ground
// truth every chaos run is compared against.
type refCell struct {
	verdict string
	states  int
	raw     []byte
}

// buildRef runs the cells against a clean store and collects each
// cell's verdict and exact persisted bytes.
func buildRef(t *testing.T, cells []store.JobSpec) map[string]refCell {
	t.Helper()
	st := openStore(t)
	rep := campaign.Run(context.Background(), st, cells, campaign.RunOptions{Workers: 4})
	if !rep.Ok() || !rep.Complete() {
		t.Fatalf("reference campaign not clean: %s", rep.JSON())
	}
	ref := make(map[string]refCell, len(cells))
	for _, c := range rep.Results {
		_, raw, ok := st.Get(c.Spec)
		if !ok {
			t.Fatalf("reference entry missing for %s", c.Spec)
		}
		ref[c.Key] = refCell{verdict: c.Verdict, states: c.States, raw: raw}
	}
	return ref
}

// TestChaosBatteryEscalating is the robustness acceptance test: the
// same campaign under escalating fault rates must, per cell, either
// produce the reference verdict or fail loudly with a classified
// error — never a wrong verdict, never a hang — and once the disk
// heals, a rerun over the surviving store converges to byte-identical
// persisted entries.
func TestChaosBatteryEscalating(t *testing.T) {
	cells := chaosGrid(t)
	ref := buildRef(t, cells)
	for _, tc := range []struct {
		name   string
		faults chaos.Faults
	}{
		{"rate-0.02", chaos.Faults{Seed: 2,
			WriteErr: 0.02, ReadErr: 0.02, TornWrite: 0.02, SyncErr: 0.02, BitFlip: 0.02}},
		{"rate-0.08", chaos.Faults{Seed: 8,
			WriteErr: 0.08, ReadErr: 0.08, TornWrite: 0.08, SyncErr: 0.08, BitFlip: 0.08, RenameErr: 0.04}},
		{"rate-0.20", chaos.Faults{Seed: 20,
			WriteErr: 0.2, ReadErr: 0.2, TornWrite: 0.2, SyncErr: 0.2, BitFlip: 0.1, RenameErr: 0.1, Permanent: 0.1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The store opens on a healthy disk; the faults start once
			// the campaign does (an open that fails is a different,
			// already-covered failure: cccheck exits 4).
			ffs := chaos.NewFaultFS(nil, chaos.Faults{})
			st, err := store.OpenFS(t.TempDir(), ffs)
			if err != nil {
				t.Fatal(err)
			}
			st.SetLog(func(string, ...any) {})
			ffs.SetFaults(tc.faults)

			// Per-test deadline: a hung campaign shows up as skipped
			// cells, which the battery treats as failure.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			rep := campaign.Run(ctx, st, cells, campaign.RunOptions{
				Workers: 4, FS: ffs, RetryBackoff: time.Millisecond,
			})
			if rep.Skipped != 0 {
				t.Fatalf("campaign hung under faults (deadline hit):\n%s", rep.JSON())
			}
			var injected int64
			for _, n := range ffs.Stats() {
				injected += n
			}
			if injected == 0 {
				t.Fatal("no faults injected — the battery exercised nothing")
			}
			for _, c := range rep.Results {
				switch c.Status {
				case campaign.StatusFailed:
					if c.ErrorClass == "" {
						t.Errorf("%s: failed without a classified error: %s", c.Spec, c.Error)
					}
				default:
					r := ref[c.Key]
					if c.Verdict != r.verdict || c.States != r.states {
						t.Errorf("%s: wrong verdict under faults: %s/%d states, want %s/%d",
							c.Spec, c.Verdict, c.States, r.verdict, r.states)
					}
				}
			}

			// Heal the disk and rerun over whatever the chaos run left
			// behind (complete entries, silently corrupted entries, or
			// nothing): the campaign self-stabilizes to a clean report
			// and byte-identical persisted entries.
			ffs.SetFaults(chaos.Faults{})
			rep2 := campaign.Run(context.Background(), st, cells, campaign.RunOptions{Workers: 4})
			if !rep2.Ok() || !rep2.Complete() {
				t.Fatalf("healed rerun not clean:\n%s", rep2.JSON())
			}
			for _, c := range rep2.Results {
				r := ref[c.Key]
				if c.Verdict != r.verdict {
					t.Errorf("%s: healed verdict %s, want %s", c.Spec, c.Verdict, r.verdict)
				}
				_, raw, ok := st.Get(c.Spec)
				if !ok {
					t.Errorf("%s: no entry after the healed rerun", c.Spec)
				} else if !bytes.Equal(raw, r.raw) {
					t.Errorf("%s: healed entry not byte-identical to the fault-free run", c.Spec)
				}
			}
		})
	}
}

// TestChaosENOSPCMidCampaignRecovers: a disk-full error in the middle
// of a campaign's store writes is retried away — the campaign
// completes clean with every entry byte-identical to a fault-free run.
func TestChaosENOSPCMidCampaignRecovers(t *testing.T) {
	cells := chaosGrid(t)
	ref := buildRef(t, cells)
	ffs := chaos.NewFaultFS(nil, chaos.Faults{})
	st, err := store.OpenFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	st.SetLog(func(string, ...any) {})
	// One-shot ENOSPC on the 6th write-side op: with a serial pool that
	// lands inside an early cell's Put, mid-campaign.
	ffs.SetFaults(chaos.Faults{FailWriteAt: 6})
	rep := campaign.Run(context.Background(), st, cells, campaign.RunOptions{
		Workers: 1, RetryBackoff: time.Millisecond,
	})
	if ffs.Stats()["write"] != 1 {
		t.Fatalf("injected %d write faults, want exactly 1", ffs.Stats()["write"])
	}
	if !rep.Ok() || !rep.Complete() {
		t.Fatalf("campaign did not recover from a transient ENOSPC:\n%s", rep.JSON())
	}
	for _, c := range rep.Results {
		r := ref[c.Key]
		if c.Verdict != r.verdict {
			t.Errorf("%s: verdict %s, want %s", c.Spec, c.Verdict, r.verdict)
		}
		if _, raw, ok := st.Get(c.Spec); !ok || !bytes.Equal(raw, r.raw) {
			t.Errorf("%s: entry not byte-identical after the retried write", c.Spec)
		}
	}
}

// TestChaosCorruptEntryRecompute: corruption at rest is absorbed by
// the read path — the damaged entry reads as a miss, is quarantined,
// and the cell recomputes and re-persists the exact reference bytes
// while its neighbors still hit the cache.
func TestChaosCorruptEntryRecompute(t *testing.T) {
	cells := chaosGrid(t)
	st := openStore(t)
	st.SetLog(func(string, ...any) {})
	rep1 := campaign.Run(context.Background(), st, cells, campaign.RunOptions{Workers: 4})
	if !rep1.Ok() || !rep1.Complete() {
		t.Fatalf("setup campaign not clean:\n%s", rep1.JSON())
	}
	victim := rep1.Results[3]
	_, refRaw, ok := st.Get(victim.Spec)
	if !ok {
		t.Fatal("victim entry missing")
	}
	path := filepath.Join(st.Dir(), victim.Key[:2], victim.Key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep2 := campaign.Run(context.Background(), st, cells, campaign.RunOptions{Workers: 4})
	if !rep2.Ok() || !rep2.Complete() {
		t.Fatalf("rerun over a corrupt entry not clean:\n%s", rep2.JSON())
	}
	if rep2.CacheHits != len(cells)-1 || rep2.Explored != 1 {
		t.Fatalf("rerun: %d hits + %d explored, want %d + 1", rep2.CacheHits, rep2.Explored, len(cells)-1)
	}
	if st.Quarantined() == 0 {
		t.Fatal("corrupt entry was not quarantined")
	}
	if rep2.Results[3].Status != campaign.StatusDone || rep2.Results[3].Verdict != victim.Verdict {
		t.Fatalf("victim cell after corruption: %+v", rep2.Results[3])
	}
	if _, raw, ok := st.Get(victim.Spec); !ok || !bytes.Equal(raw, refRaw) {
		t.Fatal("recomputed entry not byte-identical to the original")
	}
}

// TestChaosCorruptCheckpointFreshRun: a damaged snapshot under a job's
// content key is quarantined at restore time and the job converges
// from scratch to the reference verdict — a bad checkpoint can slow a
// run down but never change or wedge it.
func TestChaosCorruptCheckpointFreshRun(t *testing.T) {
	spec := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "cc"}
	cells := []store.JobSpec{spec}
	ref := buildRef(t, cells)

	st := openStore(t)
	st.SetLog(func(string, ...any) {})
	ck := st.Checkpoint(spec.Canonical().Key())
	if err := ck.Save(func(w io.Writer) error {
		_, err := w.Write([]byte("not a checkpoint: the explorer must reject and quarantine this"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	rep := campaign.Run(context.Background(), st, cells, campaign.RunOptions{
		Workers: 1, Checkpoint: true,
	})
	if !rep.Ok() || !rep.Complete() {
		t.Fatalf("run over a corrupt checkpoint not clean:\n%s", rep.JSON())
	}
	r := ref[spec.Canonical().Key()]
	if rep.Results[0].Status != campaign.StatusDone || rep.Results[0].Verdict != r.verdict {
		t.Fatalf("cell did not recompute the reference verdict: %+v", rep.Results[0])
	}
	entries, err := os.ReadDir(filepath.Join(st.Dir(), store.QuarantineDir))
	if err != nil || len(entries) == 0 {
		t.Fatalf("corrupt checkpoint not quarantined: %v (%d files)", err, len(entries))
	}
	if _, raw, ok := st.Get(spec); !ok || !bytes.Equal(raw, r.raw) {
		t.Fatal("fresh run's entry not byte-identical to the reference")
	}
}
