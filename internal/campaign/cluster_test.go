package campaign_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/campaign"
	"repro/internal/serve"
	"repro/internal/store"
)

// TestExecuteClusterMatchesSingleNode drives the campaign-level
// cluster entry point against two real ccserve peers sharing a store
// and pins the distributed verdict byte-identical to ExecuteOpts on
// the same spec. The deep grid lives in internal/cluster's
// differential battery and internal/serve's end-to-end test; this one
// covers the coordinator-side plumbing (spec marshalling, transport
// dial, result normalization) from campaign's own package.
func TestExecuteClusterMatchesSingleNode(t *testing.T) {
	dir := t.TempDir()
	peers := make([]string, 2)
	for i := range peers {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s, err := serve.New(serve.Config{Store: st, Jobs: 1, JobWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		peers[i] = ts.URL
	}

	spec := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit"}
	want, err := campaign.ExecuteOpts(context.Background(), spec, campaign.ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := campaign.ExecuteCluster(context.Background(), spec, peers, campaign.ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("cluster verdict differs from single-node:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	// An unreachable peer list fails the dial loudly instead of
	// degrading to a partial cluster.
	if _, err := campaign.ExecuteCluster(context.Background(), spec,
		[]string{peers[0], "http://127.0.0.1:1"}, campaign.ExecOptions{Workers: 1}); err == nil {
		t.Fatal("dial against an unreachable peer succeeded")
	}
}
