package campaign_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/store"
)

// The cross-engine acceptance drill: a campaign on the log engine —
// with compactions forced mid-campaign while the disk injects faults —
// must converge to persisted bytes identical to a fault-free campaign
// on the dir engine. The dir store is the differential oracle; the
// log store's append/supersede/compact machinery must be invisible in
// the bytes.

// TestLogEngineCampaignMatchesDirReference: a clean campaign run into
// each engine persists byte-identical entries, before and after an
// explicit compaction.
func TestLogEngineCampaignMatchesDirReference(t *testing.T) {
	cells := chaosGrid(t)
	ref := buildRef(t, cells) // fault-free dir-engine ground truth

	lg, err := store.OpenLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	lg.AutoCompact = false
	rep := campaign.Run(context.Background(), lg, cells, campaign.RunOptions{Workers: 4})
	if !rep.Ok() || !rep.Complete() {
		t.Fatalf("log-engine campaign not clean:\n%s", rep.JSON())
	}
	compareAgainstRef := func(phase string) {
		t.Helper()
		for _, c := range rep.Results {
			_, raw, ok := lg.Get(c.Spec)
			if !ok {
				t.Fatalf("%s: %s missing from the log store", phase, c.Spec)
			}
			if !bytes.Equal(raw, ref[c.Key].raw) {
				t.Fatalf("%s: %s bytes differ from the dir-engine reference", phase, c.Spec)
			}
		}
	}
	compareAgainstRef("pre-compaction")
	if _, err := lg.Compact(); err != nil {
		t.Fatal(err)
	}
	compareAgainstRef("post-compaction")
}

// TestLogEngineMidCampaignCompactionChaos: the same campaign on the
// log engine under injected faults, with compactions forced while
// cells are still running. Per cell: the reference verdict or a
// classified failure, never a wrong answer. After healing, a rerun
// over the survivors converges to bytes identical to the fault-free
// dir-engine reference — compaction included.
func TestLogEngineMidCampaignCompactionChaos(t *testing.T) {
	cells := chaosGrid(t)
	ref := buildRef(t, cells)

	ffs := chaos.NewFaultFS(nil, chaos.Faults{})
	lg, err := store.OpenLogFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	lg.SetLog(func(string, ...any) {})
	ffs.SetFaults(chaos.Faults{Seed: 11,
		WriteErr: 0.05, ReadErr: 0.05, TornWrite: 0.05, SyncErr: 0.05, BitFlip: 0.03})

	// Force compactions while the campaign runs: the write lock
	// serializes them against Puts, and every surviving record is
	// re-validated as it is copied.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	compacted := make(chan struct{})
	go func() {
		defer close(compacted)
		for i := 0; i < 20; i++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
			lg.Compact() // errors fine under faults; the store must stay correct
		}
	}()

	rep := campaign.Run(ctx, lg, cells, campaign.RunOptions{
		Workers: 4, FS: ffs, RetryBackoff: time.Millisecond,
	})
	cancel()
	<-compacted
	if rep.Skipped != 0 {
		t.Fatalf("campaign hung under faults:\n%s", rep.JSON())
	}
	for _, c := range rep.Results {
		switch c.Status {
		case campaign.StatusFailed:
			if c.ErrorClass == "" {
				t.Errorf("%s: failed without a classified error: %s", c.Spec, c.Error)
			}
		default:
			r := ref[c.Key]
			if c.Verdict != r.verdict || c.States != r.states {
				t.Errorf("%s: wrong verdict under faults+compaction: %s/%d, want %s/%d",
					c.Spec, c.Verdict, c.States, r.verdict, r.states)
			}
		}
	}

	// Heal, rerun, compact once more: byte-identical to the dir oracle.
	ffs.SetFaults(chaos.Faults{})
	rep2 := campaign.Run(context.Background(), lg, cells, campaign.RunOptions{Workers: 4})
	if !rep2.Ok() || !rep2.Complete() {
		t.Fatalf("healed rerun not clean:\n%s", rep2.JSON())
	}
	if _, err := lg.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, c := range rep2.Results {
		_, raw, ok := lg.Get(c.Spec)
		if !ok {
			t.Errorf("%s: no entry after heal+compact", c.Spec)
		} else if !bytes.Equal(raw, ref[c.Key].raw) {
			t.Errorf("%s: healed+compacted entry not byte-identical to the dir-engine reference", c.Spec)
		}
	}
}
