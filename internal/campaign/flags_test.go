package campaign_test

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/store"
)

func TestParseBytes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"", 0},
		{"0", 0},
		{"4096", 4096},
		{"1K", 1 << 10},
		{"256M", 256 << 20},
		{"2G", 2 << 30},
		{"2g", 2 << 30},
		{"512MB", 512 << 20},
		{"  1kb ", 1 << 10},
	} {
		got, err := campaign.ParseBytes("mem-budget", tc.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"x", "-1", "1.5G", "99999999999G", "M", "KB"} {
		if _, err := campaign.ParseBytes("mem-budget", bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}

func TestParseSpecStrict(t *testing.T) {
	s, err := campaign.ParseSpec("cc1,cc2", "ring:3", "central,synchronous", "legit", "none,leave-early")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Algs) != 2 || len(s.Daemons) != 2 || len(s.Mutations) != 2 {
		t.Fatalf("unexpected grid: %+v", s)
	}
	// One bad list anywhere fails the whole parse, whichever flag it is.
	for _, tc := range [][5]string{
		{"cc1,,cc2", "ring:3", "", "", ""},
		{"cc1", "ring:3,", "", "", ""},
		{"cc1", "ring:3", " , ", "", ""},
		{"cc1", "ring:3", "", ",legit", ""},
		{"cc1", "ring:3", "", "", "none,"},
	} {
		if _, err := campaign.ParseSpec(tc[0], tc[1], tc[2], tc[3], tc[4]); err == nil {
			t.Errorf("ParseSpec(%q,%q,%q,%q,%q) accepted", tc[0], tc[1], tc[2], tc[3], tc[4])
		}
	}
}

// TestSetScalarsRoundTrip: every scalar bound and toggle a CLI can set
// on a single job must survive the copy into a campaign grid — the
// grid cells inherit exactly the bounds the operator asked for.
func TestSetScalarsRoundTrip(t *testing.T) {
	j := store.JobSpec{
		RandomInits: 7, Seed: 42, MaxStates: 1000, MaxDepth: 9,
		MaxBranch: 3, MaxViolations: 2, Symmetry: true,
		NoDeadlock: true, NoClosure: true, NoConverge: true,
	}
	var s campaign.Spec
	s.SetScalars(j)
	if s.RandomInits != 7 || s.Seed != 42 || s.MaxStates != 1000 || s.MaxDepth != 9 ||
		s.MaxBranch != 3 || s.MaxViolations != 2 || !s.Symmetry ||
		!s.NoDeadlock || !s.NoClosure || !s.NoConverge {
		t.Fatalf("scalar copy dropped a field: %+v", s)
	}
}
