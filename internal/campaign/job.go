// Package campaign turns the exhaustive checker into a batch system:
// a declarative grid (algorithms × topologies × daemon branchings ×
// init families × mutations) expands into content-addressed job specs,
// a scheduler fans them across the worker pool, skips jobs whose
// verdict is already in the store, and emits one deterministic
// aggregate report regardless of the pool width. Because every
// completed cell is persisted before the next is scheduled, a killed
// campaign resumes from where it stopped: re-running it re-executes
// only the missing cells.
//
// This file is the shared single-job runner: the one place that maps a
// store.JobSpec onto an explore.Model and explore.Options. cccheck,
// ccbench and ccserve all execute jobs through it, which is what makes
// their cached verdicts interchangeable.
package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/store"
)

// Algs lists the supported algorithm names.
func Algs() []string { return []string{"cc1", "cc2", "cc3", "dining", "token-ring"} }

// Daemons lists the canonical daemon-branching names (the aliases
// "sync" and "all" canonicalize onto the last two).
func Daemons() []string { return []string{"central", "synchronous", "all-subsets"} }

// Inits lists the init-family names.
func Inits() []string { return []string{"legit", "cc", "cc-full", "random"} }

var ccVariants = map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}

func selectionMode(daemon string) (sim.SelectionMode, bool) {
	switch daemon {
	case "central":
		return sim.SelectCentral, true
	case "synchronous":
		return sim.SelectSynchronous, true
	case "all-subsets":
		return sim.SelectAllSubsets, true
	}
	return 0, false
}

// Validate rejects a job spec that cannot execute, with an error
// message naming the offending value and the accepted ones — the CLIs
// turn it into a usage error (exit 2) and ccserve into a 400. It
// validates the canonicalized spec, so alias spellings pass.
func Validate(spec store.JobSpec) error {
	_, err := prepare(spec.Canonical())
	return err
}

// prepare runs every check Validate promises and returns the built
// model factory, so Execute validates and constructs in one pass
// instead of building the model once per check.
func prepare(c store.JobSpec) (*checkedFactory, error) {
	_, isCC := ccVariants[c.Alg]
	switch c.Alg {
	case "cc1", "cc2", "cc3", "dining", "token-ring":
	case "":
		return nil, fmt.Errorf("campaign: missing algorithm (want %s)", strings.Join(Algs(), " | "))
	default:
		return nil, fmt.Errorf("campaign: unknown algorithm %q (want %s)", c.Alg, strings.Join(Algs(), " | "))
	}
	if _, ok := selectionMode(c.Daemon); !ok {
		return nil, fmt.Errorf("campaign: unknown daemon mode %q (want central | synchronous | all-subsets)", c.Daemon)
	}
	if _, err := explore.ParseInitMode(c.Init); err != nil {
		return nil, fmt.Errorf("campaign: unknown init mode %q (want %s)", c.Init, strings.Join(Inits(), " | "))
	}
	if c.Topo == "" {
		return nil, fmt.Errorf("campaign: missing topology spec")
	}
	h, err := hypergraph.Parse(c.Topo, rand.New(rand.NewSource(c.Seed)))
	if err != nil {
		return nil, fmt.Errorf("campaign: %v", err)
	}
	if !isCC {
		if c.Init != "legit" {
			return nil, fmt.Errorf("campaign: the %s baseline is not self-stabilizing: only -init legit is supported, not %q", c.Alg, c.Init)
		}
		if c.Mutation != "" {
			return nil, fmt.Errorf("campaign: -mutate applies to the CC algorithms only, not %s", c.Alg)
		}
	}
	// Building the factory performs the remaining checks (codec size
	// bounds, mutation names) and exposes the automorphism group for
	// the -symmetry precondition.
	factory, err := newFactoryChecked(c, h)
	if err != nil {
		return nil, err
	}
	if c.Symmetry && !factory.hasSyms {
		return nil, fmt.Errorf("campaign: this model declares no automorphisms: %s", factory.whySymEmpty)
	}
	return factory, nil
}

// checkedFactory is what Validate/Execute need to know about a built
// model factory without committing to a state type.
type checkedFactory struct {
	hasSyms     bool
	whySymEmpty string
	run         func(ctx context.Context, opts explore.Options) (*explore.Result, error)
	runCluster  func(ctx context.Context, opts explore.Options, tr cluster.Transport) (*explore.Result, error)
	newPeer     func(opts explore.Options, cfg explore.PeerConfig) (explore.PeerEngine, error)
}

func newFactoryChecked(c store.JobSpec, h *hypergraph.H) (*checkedFactory, error) {
	if v, ok := ccVariants[c.Alg]; ok {
		im, err := explore.ParseInitMode(c.Init)
		if err != nil {
			return nil, fmt.Errorf("campaign: %v", err)
		}
		factory, err := explore.CC(v, h, explore.CCOptions{
			Init: im, RandomCount: c.RandomInits, Seed: c.Seed, Mutation: c.Mutation,
		})
		if err != nil {
			return nil, fmt.Errorf("campaign: %v", err)
		}
		return &checkedFactory{
			hasSyms: factory().Syms != nil,
			whySymEmpty: "the CC algorithms read the identifier order (maxByID tie-breaks, min-id leader election), " +
				"so nontrivial rotations are not automorphisms of CC ∘ TC on connected topologies; -symmetry is exact " +
				"for CC only on block-symmetric disjoint:K,S topologies with a non-random init family",
			run: func(ctx context.Context, opts explore.Options) (*explore.Result, error) {
				return explore.ExploreCtx(ctx, factory, opts)
			},
			runCluster: func(ctx context.Context, opts explore.Options, tr cluster.Transport) (*explore.Result, error) {
				return cluster.Run(ctx, factory, opts, tr)
			},
			newPeer: func(opts explore.Options, cfg explore.PeerConfig) (explore.PeerEngine, error) {
				return explore.NewPeer(factory, opts, cfg)
			},
		}, nil
	}
	kind := baseline.Dining
	if c.Alg == "token-ring" {
		kind = baseline.TokenRing
	}
	factory, err := explore.Baseline(kind, h, 1)
	if err != nil {
		return nil, fmt.Errorf("campaign: %v", err)
	}
	return &checkedFactory{
		hasSyms: factory().Syms != nil,
		whySymEmpty: "-symmetry needs a declared automorphism group: the token-ring baseline declares ring rotations; " +
			"dining does not (its fork orientation and request tie-break read the committee index order)",
		run: func(ctx context.Context, opts explore.Options) (*explore.Result, error) {
			return explore.ExploreCtx(ctx, factory, opts)
		},
		runCluster: func(ctx context.Context, opts explore.Options, tr cluster.Transport) (*explore.Result, error) {
			return cluster.Run(ctx, factory, opts, tr)
		},
		newPeer: func(opts explore.Options, cfg explore.PeerConfig) (explore.PeerEngine, error) {
			return explore.NewPeer(factory, opts, cfg)
		},
	}, nil
}

// ExecOptions parameterize one job execution beyond the spec. Every
// field is result-irrelevant: the verdict bytes are a pure function of
// the canonical spec at any worker count, memory budget or checkpoint
// cadence, which is what makes the cache (and resuming) sound.
type ExecOptions struct {
	// Workers is the explorer pool width for this job (0 = 1: campaign
	// and server schedulers parallelize across jobs, so each job
	// defaults to one worker; pass par.Workers for a lone interactive
	// run).
	Workers int
	// Checkpoints, if non-nil, enables checkpoint/restore through this
	// store: the job resumes from an existing snapshot under its
	// content key, persists one every CheckpointEvery expanded states
	// and on context cancellation, and deletes it on completion.
	Checkpoints store.Interface
	// CheckpointEvery is the expanded-state snapshot cadence
	// (0 = snapshot only on cancellation).
	CheckpointEvery int
	// MemBudget bounds the explorer's in-memory frontier + arena
	// footprint (bytes; 0 = fully in-memory); overflow spills to
	// SpillDir ("" = the system temp dir).
	MemBudget int64
	SpillDir  string
	// Stats, if non-nil, receives resume/spill bookkeeping (not part
	// of the result).
	Stats *explore.RunStats
	// FS routes the explorer's spill-file I/O through a chaos.FS
	// (nil = the host filesystem); the store's own FS is set at
	// store.OpenFS time. Result-irrelevant like everything else here:
	// injected faults either retry away, fail the job with a
	// classified error, or quarantine an artifact — never change the
	// verdict bytes.
	FS chaos.FS
	// Scalar forces the scalar expansion path even when the model
	// declares a batch kernel (explore.Options.DisableBatch).
	// Result-irrelevant by the batch pipeline's byte-identity
	// contract; differential drills use it to pit the two paths
	// against each other on cached cells.
	Scalar bool
	// Progress, if non-nil, receives the explorer's chunk-boundary
	// counter snapshots (see explore.Options.Progress) — the feed the
	// serving tier publishes to /v1/jobs/{id}/watch subscribers.
	// Result-irrelevant like everything else here.
	Progress func(explore.Progress)
}

// ErrInterrupted reports that a job was cancelled mid-exploration; if
// checkpointing was enabled, a snapshot was saved and re-executing the
// same spec resumes it.
var ErrInterrupted = explore.ErrInterrupted

// jobOptions maps a canonical spec plus execution options onto the
// explorer's option set — the one translation every execution path
// (single-node, cluster coordinator, cluster peer) must share, or
// their verdicts could legally diverge.
func jobOptions(c store.JobSpec, o ExecOptions) explore.Options {
	mode, _ := selectionMode(c.Daemon)
	maxStates := c.MaxStates
	if maxStates < 0 {
		maxStates = 0 // canonical -1 = unlimited
	}
	opts := explore.Options{
		Mode:            mode,
		MaxStates:       maxStates,
		MaxDepth:        c.MaxDepth,
		MaxBranch:       c.MaxBranch,
		MaxViolations:   c.MaxViolations,
		CheckDeadlock:   !c.NoDeadlock,
		Symmetry:        c.Symmetry,
		Workers:         o.Workers,
		MemBudget:       o.MemBudget,
		SpillDir:        o.SpillDir,
		FS:              o.FS,
		CheckpointEvery: o.CheckpointEvery,
		Stats:           o.Stats,
		DisableBatch:    o.Scalar,
		Progress:        o.Progress,
	}
	if o.Workers <= 0 {
		opts.Workers = 1
	}
	if _, ok := ccVariants[c.Alg]; ok {
		opts.CheckClosure = !c.NoClosure
		if mode == sim.SelectSynchronous {
			opts.CheckConvergence = !c.NoConverge
		}
	}
	return opts
}

// NewPeerEngine builds the peer half of a distributed exploration for
// one job spec: the model factory and option translation are exactly
// ExecuteOpts', so a cluster of these engines is checking the same
// problem a single node would. ccserve's /v1/cluster tier calls this
// when a coordinator opens a job on it.
func NewPeerEngine(spec store.JobSpec, o ExecOptions, cfg explore.PeerConfig) (explore.PeerEngine, error) {
	c := spec.Canonical()
	factory, err := prepare(c)
	if err != nil {
		return nil, err
	}
	return factory.newPeer(jobOptions(c, o), cfg)
}

// ExecuteCluster runs one job distributed across a set of ccserve
// peers (base URLs) and returns a result byte-identical to ExecuteOpts
// on a single node — that identity is pinned by the cluster
// differential battery. The spec is forwarded to every peer verbatim;
// each peer owns one contiguous shard of the state-hash space, and
// shard snapshots land in the peers' (shared) verdict store so a lost
// peer's work migrates instead of restarting.
func ExecuteCluster(ctx context.Context, spec store.JobSpec, peers []string, o ExecOptions) (*explore.Result, error) {
	c := spec.Canonical()
	factory, err := prepare(c)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("campaign: marshal spec: %w", err)
	}
	tr, err := cluster.DialHTTP(ctx, cluster.HTTPConfig{
		Peers: peers, Job: c.Key(), Spec: raw, Workers: o.Workers,
	})
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	res, err := factory.runCluster(ctx, jobOptions(c, o), tr)
	if err != nil {
		return res, err
	}
	res.StateBytes = 0
	return res, nil
}

// Execute runs one job to completion and returns its result (see
// ExecuteOpts; this is the no-frills form the CLIs used before
// checkpointing existed and the tests still exercise).
func Execute(spec store.JobSpec, workers int) (*explore.Result, error) {
	return ExecuteOpts(context.Background(), spec, ExecOptions{Workers: workers})
}

// ExecuteOpts runs one job under a context, with optional
// checkpoint/restore and an out-of-core memory budget. On cancellation
// it returns an error wrapping ErrInterrupted (snapshot saved when
// o.Checkpoints is set). On success the result's StateBytes is zeroed:
// it measures this process's retained footprint — different between
// resumed/fresh and spilled/in-memory runs of the same job — and the
// persisted verdict must be byte-identical across all of them.
func ExecuteOpts(ctx context.Context, spec store.JobSpec, o ExecOptions) (*explore.Result, error) {
	c := spec.Canonical()
	factory, err := prepare(c)
	if err != nil {
		return nil, err
	}
	opts := jobOptions(c, o)
	var ckpt *store.Checkpoint
	if o.Checkpoints != nil {
		ckpt = o.Checkpoints.Checkpoint(c.Key())
		opts.Checkpoint = ckpt
	}
	res, err := factory.run(ctx, opts)
	if err != nil {
		return res, err
	}
	res.StateBytes = 0
	if ckpt != nil {
		// The verdict supersedes the snapshot; a failed delete is
		// GCCheckpoints' problem, not the job's.
		ckpt.Delete()
	}
	return res, nil
}
