// Package campaign turns the exhaustive checker into a batch system:
// a declarative grid (algorithms × topologies × daemon branchings ×
// init families × mutations) expands into content-addressed job specs,
// a scheduler fans them across the worker pool, skips jobs whose
// verdict is already in the store, and emits one deterministic
// aggregate report regardless of the pool width. Because every
// completed cell is persisted before the next is scheduled, a killed
// campaign resumes from where it stopped: re-running it re-executes
// only the missing cells.
//
// This file is the shared single-job runner: the one place that maps a
// store.JobSpec onto an explore.Model and explore.Options. cccheck,
// ccbench and ccserve all execute jobs through it, which is what makes
// their cached verdicts interchangeable.
package campaign

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/store"
)

// Algs lists the supported algorithm names.
func Algs() []string { return []string{"cc1", "cc2", "cc3", "dining", "token-ring"} }

// Daemons lists the canonical daemon-branching names (the aliases
// "sync" and "all" canonicalize onto the last two).
func Daemons() []string { return []string{"central", "synchronous", "all-subsets"} }

// Inits lists the init-family names.
func Inits() []string { return []string{"legit", "cc", "cc-full", "random"} }

var ccVariants = map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}

func selectionMode(daemon string) (sim.SelectionMode, bool) {
	switch daemon {
	case "central":
		return sim.SelectCentral, true
	case "synchronous":
		return sim.SelectSynchronous, true
	case "all-subsets":
		return sim.SelectAllSubsets, true
	}
	return 0, false
}

// Validate rejects a job spec that cannot execute, with an error
// message naming the offending value and the accepted ones — the CLIs
// turn it into a usage error (exit 2) and ccserve into a 400. It
// validates the canonicalized spec, so alias spellings pass.
func Validate(spec store.JobSpec) error {
	_, err := prepare(spec.Canonical())
	return err
}

// prepare runs every check Validate promises and returns the built
// model factory, so Execute validates and constructs in one pass
// instead of building the model once per check.
func prepare(c store.JobSpec) (*checkedFactory, error) {
	_, isCC := ccVariants[c.Alg]
	switch c.Alg {
	case "cc1", "cc2", "cc3", "dining", "token-ring":
	case "":
		return nil, fmt.Errorf("campaign: missing algorithm (want %s)", strings.Join(Algs(), " | "))
	default:
		return nil, fmt.Errorf("campaign: unknown algorithm %q (want %s)", c.Alg, strings.Join(Algs(), " | "))
	}
	if _, ok := selectionMode(c.Daemon); !ok {
		return nil, fmt.Errorf("campaign: unknown daemon mode %q (want central | synchronous | all-subsets)", c.Daemon)
	}
	if _, err := explore.ParseInitMode(c.Init); err != nil {
		return nil, fmt.Errorf("campaign: unknown init mode %q (want %s)", c.Init, strings.Join(Inits(), " | "))
	}
	if c.Topo == "" {
		return nil, fmt.Errorf("campaign: missing topology spec")
	}
	h, err := hypergraph.Parse(c.Topo, rand.New(rand.NewSource(c.Seed)))
	if err != nil {
		return nil, fmt.Errorf("campaign: %v", err)
	}
	if !isCC {
		if c.Init != "legit" {
			return nil, fmt.Errorf("campaign: the %s baseline is not self-stabilizing: only -init legit is supported, not %q", c.Alg, c.Init)
		}
		if c.Mutation != "" {
			return nil, fmt.Errorf("campaign: -mutate applies to the CC algorithms only, not %s", c.Alg)
		}
	}
	// Building the factory performs the remaining checks (codec size
	// bounds, mutation names) and exposes the automorphism group for
	// the -symmetry precondition.
	factory, err := newFactoryChecked(c, h)
	if err != nil {
		return nil, err
	}
	if c.Symmetry && !factory.hasSyms {
		return nil, fmt.Errorf("campaign: this model declares no automorphisms: %s", factory.whySymEmpty)
	}
	return factory, nil
}

// checkedFactory is what Validate/Execute need to know about a built
// model factory without committing to a state type.
type checkedFactory struct {
	hasSyms     bool
	whySymEmpty string
	run         func(opts explore.Options) *explore.Result
}

func newFactoryChecked(c store.JobSpec, h *hypergraph.H) (*checkedFactory, error) {
	if v, ok := ccVariants[c.Alg]; ok {
		im, err := explore.ParseInitMode(c.Init)
		if err != nil {
			return nil, fmt.Errorf("campaign: %v", err)
		}
		factory, err := explore.CC(v, h, explore.CCOptions{
			Init: im, RandomCount: c.RandomInits, Seed: c.Seed, Mutation: c.Mutation,
		})
		if err != nil {
			return nil, fmt.Errorf("campaign: %v", err)
		}
		return &checkedFactory{
			hasSyms: factory().Syms != nil,
			whySymEmpty: "the CC algorithms read the identifier order (maxByID tie-breaks, min-id leader election), " +
				"so nontrivial rotations are not automorphisms of CC ∘ TC on connected topologies; -symmetry is exact " +
				"for CC only on block-symmetric disjoint:K,S topologies with a non-random init family",
			run: func(opts explore.Options) *explore.Result { return explore.Explore(factory, opts) },
		}, nil
	}
	kind := baseline.Dining
	if c.Alg == "token-ring" {
		kind = baseline.TokenRing
	}
	factory, err := explore.Baseline(kind, h, 1)
	if err != nil {
		return nil, fmt.Errorf("campaign: %v", err)
	}
	return &checkedFactory{
		hasSyms: factory().Syms != nil,
		whySymEmpty: "-symmetry needs a declared automorphism group: the token-ring baseline declares ring rotations; " +
			"dining does not (its fork orientation and request tie-break read the committee index order)",
		run: func(opts explore.Options) *explore.Result { return explore.Explore(factory, opts) },
	}, nil
}

// Execute runs one job to completion and returns its result. workers
// is the explorer pool width for this job (0 = 1: campaign and server
// schedulers parallelize across jobs, so each job defaults to one
// worker; pass par.Workers for a lone interactive run). The result is
// a pure function of the canonical spec — explore's reports are
// byte-identical at any worker count — which is what makes the cache
// sound.
func Execute(spec store.JobSpec, workers int) (*explore.Result, error) {
	c := spec.Canonical()
	factory, err := prepare(c)
	if err != nil {
		return nil, err
	}
	mode, _ := selectionMode(c.Daemon)
	maxStates := c.MaxStates
	if maxStates < 0 {
		maxStates = 0 // canonical -1 = unlimited
	}
	opts := explore.Options{
		Mode:          mode,
		MaxStates:     maxStates,
		MaxDepth:      c.MaxDepth,
		MaxBranch:     c.MaxBranch,
		MaxViolations: c.MaxViolations,
		CheckDeadlock: !c.NoDeadlock,
		Symmetry:      c.Symmetry,
		Workers:       workers,
	}
	if workers <= 0 {
		opts.Workers = 1
	}
	if _, ok := ccVariants[c.Alg]; ok {
		opts.CheckClosure = !c.NoClosure
		if mode == sim.SelectSynchronous {
			opts.CheckConvergence = !c.NoConverge
		}
	}
	return factory.run(opts), nil
}
