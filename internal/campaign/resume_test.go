package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/explore"
	"repro/internal/store"
)

// bigSpec is a cell large enough to be interrupted mid-exploration
// with a fine checkpoint cadence.
func bigSpec() store.JobSpec {
	return store.JobSpec{
		Alg: "token-ring", Topo: "ring:6", Daemon: "central", MaxStates: 60_000,
	}.Canonical()
}

// interruptAfterCheckpoint cancels ctx as soon as a checkpoint file
// for spec appears in the store.
func interruptAfterCheckpoint(t *testing.T, st store.Interface, spec store.JobSpec, cancel context.CancelFunc) chan struct{} {
	t.Helper()
	stop := make(chan struct{})
	glob := filepath.Join(st.Dir(), "checkpoints", spec.Key()[:2], spec.Key()+".ckpt")
	go func() {
		for i := 0; i < 30_000; i++ {
			if _, err := os.Stat(glob); err == nil {
				cancel()
				return
			}
			select {
			case <-stop:
				return
			default:
			}
			time.Sleep(time.Millisecond)
		}
	}()
	return stop
}

// TestExecuteOptsMidJobResume: an ExecuteOpts cancelled mid-exploration
// leaves a snapshot; the next identical call resumes it (stats prove
// it) and returns a result byte-identical to an uninterrupted run's.
func TestExecuteOptsMidJobResume(t *testing.T) {
	spec := bigSpec()
	clean, err := campaign.Execute(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(clean)

	st := openStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watch := interruptAfterCheckpoint(t, st, spec, cancel)
	eo := campaign.ExecOptions{Workers: 2, Checkpoints: st, CheckpointEvery: 2000}
	_, err = campaign.ExecuteOpts(ctx, spec, eo)
	close(watch)
	if !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}

	var stats explore.RunStats
	eo.Stats = &stats
	res, err := campaign.ExecuteOpts(context.Background(), spec, eo)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumedStates == 0 {
		t.Fatal("second run did not resume from the snapshot")
	}
	gotJSON, _ := json.Marshal(res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("resumed result diverges:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
	// Completion deletes the snapshot.
	if _, err := os.Stat(filepath.Join(st.Dir(), "checkpoints", spec.Key()[:2], spec.Key()+".ckpt")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not deleted after completion: %v", err)
	}
}

// TestRunMidCellResume: a campaign interrupted mid-cell marks the cell
// skipped (snapshot saved); re-running the campaign resumes the cell
// from the snapshot (Event.Resumed proves it) and the final report is
// byte-identical to one computed without any interruption — serial and
// at -j 8.
func TestRunMidCellResume(t *testing.T) {
	cells := []store.JobSpec{bigSpec()}

	// Uninterrupted reference (its own store).
	refStore := openStore(t)
	ref := campaign.Run(context.Background(), refStore, cells, campaign.RunOptions{Workers: 1, JobWorkers: 2})
	want := ref.JSON()

	for _, workers := range []int{1, 8} {
		st := openStore(t)
		ctx, cancel := context.WithCancel(context.Background())
		watch := interruptAfterCheckpoint(t, st, cells[0], cancel)
		opts := campaign.RunOptions{Workers: workers, JobWorkers: 2, Checkpoint: true, CheckpointEvery: 2000}
		rep := campaign.Run(ctx, st, cells, opts)
		close(watch)
		cancel()
		if rep.Skipped != 1 {
			t.Fatalf("workers=%d: interrupted cell not skipped: %+v", workers, rep.Results[0])
		}

		resumed := 0
		opts.Progress = func(ev campaign.Event) { resumed = ev.Resumed }
		rep = campaign.Run(context.Background(), st, cells, opts)
		if got := rep.JSON(); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: resumed campaign report diverges:\n%s\nvs\n%s", workers, got, want)
		}
		if resumed == 0 {
			t.Fatalf("workers=%d: cell restarted instead of resuming", workers)
		}
	}
}
