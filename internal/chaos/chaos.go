// Package chaos is the fault-injection and fault-tolerance layer under
// every durable path of the verifier: a filesystem abstraction (FS)
// with a passthrough implementation (OS) and a deterministic,
// seed-driven fault injector (FaultFS) that simulates the transient
// failures a production store meets — ENOSPC, EIO, torn and short
// writes, fsync failure, rename failure, and bit-flip corruption at
// rest — at configurable probabilities and call-count trigger points.
//
// The package also owns the shared fault-handling vocabulary built on
// top of the injector:
//
//   - Classify sorts an I/O error into transient (worth retrying:
//     ENOSPC, EINTR, EIO, ...), permanent (retrying cannot help:
//     EACCES, EROFS, ...) or corrupt (a checksum or format check
//     failed on bytes read back);
//   - Retry runs an operation under a bounded exponential-backoff
//     policy, retrying only transient classifications;
//   - Describe renders an error with its path, errno and class for
//     the CLIs' dedicated I/O exit path.
//
// The point is the system-level analogue of the paper's stabilization
// guarantee: whatever transient faults the environment injects, the
// verifier must converge back to correct verdicts — byte-identical to
// a fault-free run — or fail loudly with a classified error; never a
// wrong verdict, never a hang. internal/store, internal/explore,
// internal/campaign and internal/serve all take their file I/O through
// the FS interface, so the chaos battery can run the whole stack under
// escalating fault rates (see docs/robustness.md).
package chaos

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the verifier's durable paths use. OS is
// the passthrough implementation; FaultFS injects faults in front of
// any inner FS. Directory listing/walking is deliberately absent:
// read-only metadata scans (store GC, Len) stay on the host filesystem.
type FS interface {
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to the named file, creating or truncating it.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp
	// pattern semantics), open for reading and writing.
	CreateTemp(dir, pattern string) (File, error)
	// MkdirAll creates the directory path with any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// MkdirTemp creates a new temporary directory in dir.
	MkdirTemp(dir, pattern string) (string, error)
	// Rename atomically renames oldpath to newpath (same directory in
	// every caller here, so it is the commit point of atomic writes).
	Rename(oldpath, newpath string) error
	// Remove deletes a file. Cleanup paths treat failures as
	// best-effort; FaultFS does not inject into Remove/RemoveAll.
	Remove(name string) error
	// RemoveAll deletes a tree.
	RemoveAll(path string) error
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
}

// File is the open-file surface the spill and atomic-write paths need:
// sequential and positional reads/writes, fsync, close. *os.File
// implements it.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer
	Name() string
	Sync() error
}

// OS is the passthrough FS: every method delegates to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) MkdirTemp(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) Stat(name string) (fs.FileInfo, error) {
	return os.Stat(name)
}
