package chaos

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("seed=7,write=0.05,read=0.1,torn=0.02,sync=0.3,rename=0.01,flip=0.001,perm=0.2,fail-write-at=3,fail-read-at=2,fail-rename-at=1")
	if err != nil {
		t.Fatal(err)
	}
	want := Faults{
		Seed: 7, WriteErr: 0.05, ReadErr: 0.1, TornWrite: 0.02, SyncErr: 0.3,
		RenameErr: 0.01, BitFlip: 0.001, Permanent: 0.2,
		FailWriteAt: 3, FailReadAt: 2, FailRenameAt: 1,
	}
	if f != want {
		t.Fatalf("ParseFaults = %+v, want %+v", f, want)
	}
	if f, err := ParseFaults(""); err != nil || f != (Faults{}) {
		t.Fatalf("empty spec: %+v, %v", f, err)
	}
	for _, bad := range []string{"write", "write=2", "write=-1", "bogus=1", "seed=-1", "fail-write-at=x"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) = nil error, want error", bad)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, Unknown},
		{errors.New("plain"), Unknown},
		{syscall.ENOSPC, Transient},
		{syscall.EIO, Transient},
		{syscall.EINTR, Transient},
		{syscall.EACCES, Permanent},
		{syscall.ENOENT, Permanent},
		{syscall.EROFS, Permanent},
		{&fs.PathError{Op: "write", Path: "/x", Err: syscall.ENOSPC}, Transient},
		{fmt.Errorf("wrapped: %w", &fs.PathError{Op: "open", Path: "/y", Err: syscall.EACCES}), Permanent},
		{&CorruptError{Path: "/z", Detail: "checksum"}, Corrupt},
		{fmt.Errorf("wrap: %w", &CorruptError{Path: "/z", Detail: "d"}), Corrupt},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if !Recoverable(syscall.ENOSPC) || !Recoverable(&CorruptError{Path: "p"}) {
		t.Error("transient and corrupt must be recoverable")
	}
	if Recoverable(syscall.EACCES) || Recoverable(errors.New("x")) {
		t.Error("permanent/unknown must not be recoverable")
	}
}

func TestDescribe(t *testing.T) {
	d := Describe(&fs.PathError{Op: "write", Path: "/v/.put-1", Err: syscall.ENOSPC})
	for _, want := range []string{"path=/v/.put-1", "errno=ENOSPC", "transient"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe = %q, missing %q", d, want)
		}
	}
	d = Describe(&CorruptError{Path: "/c/seg", Detail: "bad checksum"})
	if !strings.Contains(d, "path=/c/seg") || !strings.Contains(d, "corrupt") {
		t.Errorf("Describe corrupt = %q", d)
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	n := 0
	err := Retry(context.Background(), Policy{Attempts: 4, Base: time.Microsecond, Max: time.Millisecond}, func() error {
		n++
		if n < 3 {
			return syscall.ENOSPC
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("err=%v n=%d, want nil/3", err, n)
	}
}

func TestRetryPermanentImmediate(t *testing.T) {
	n := 0
	err := Retry(context.Background(), DefaultPolicy, func() error {
		n++
		return syscall.EACCES
	})
	if !errors.Is(err, syscall.EACCES) || n != 1 {
		t.Fatalf("err=%v n=%d, want EACCES/1", err, n)
	}
}

func TestRetryExhausted(t *testing.T) {
	n := 0
	err := Retry(context.Background(), Policy{Attempts: 3, Base: time.Microsecond}, func() error {
		n++
		return syscall.EIO
	})
	if !errors.Is(err, syscall.EIO) || n != 3 {
		t.Fatalf("err=%v n=%d, want EIO/3", err, n)
	}
}

func TestRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, Policy{Attempts: 5, Base: time.Hour}, func() error { return syscall.ENOSPC })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

func TestFaultFSDeterminism(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		ffs := NewFaultFS(OS, Faults{Seed: 42, WriteErr: 0.3, ReadErr: 0.3, TornWrite: 0.2, BitFlip: 0.2})
		errTag := func(err error) string {
			var en syscall.Errno
			errors.As(err, &en)
			return en.Error()
		}
		var events []string
		for i := 0; i < 50; i++ {
			p := filepath.Join(dir, fmt.Sprintf("f%d", i))
			if err := ffs.WriteFile(p, []byte("payload-payload-payload"), 0o644); err != nil {
				events = append(events, "w:"+errTag(err))
				continue
			}
			b, err := ffs.ReadFile(p)
			if err != nil {
				events = append(events, "r:"+errTag(err))
				continue
			}
			events = append(events, "ok:"+string(b))
		}
		return events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestFaultFSFailWriteAt(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Faults{FailWriteAt: 2})
	if err := ffs.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	err := ffs.WriteFile(filepath.Join(dir, "b"), []byte("x"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2: %v, want ENOSPC", err)
	}
	if err := ffs.WriteFile(filepath.Join(dir, "c"), []byte("x"), 0o644); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if got := ffs.Stats()["write"]; got != 1 {
		t.Fatalf("injected writes = %d, want 1", got)
	}
}

func TestFaultFSTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Faults{Seed: 1, TornWrite: 1})
	p := filepath.Join(dir, "torn")
	data := []byte("0123456789abcdef")
	err := ffs.WriteFile(p, data, 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn write err = %v, want ENOSPC", err)
	}
	got, rerr := os.ReadFile(p)
	if rerr != nil {
		t.Fatalf("read back: %v", rerr)
	}
	if len(got) == 0 || len(got) >= len(data) {
		t.Fatalf("torn write landed %d bytes, want strict non-empty prefix of %d", len(got), len(data))
	}
	if string(got) != string(data[:len(got)]) {
		t.Fatalf("torn prefix mismatch: %q", got)
	}
}

func TestFaultFSBitFlipSilent(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Faults{Seed: 1, BitFlip: 1})
	p := filepath.Join(dir, "flip")
	data := []byte("0123456789abcdef")
	if err := ffs.WriteFile(p, data, 0o644); err != nil {
		t.Fatalf("flip write must report success, got %v", err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("flipped write length %d, want %d", len(got), len(data))
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
			if x := got[i] ^ data[i]; x&(x-1) != 0 {
				t.Fatalf("byte %d differs by more than one bit: %02x vs %02x", i, got[i], data[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bytes, want exactly 1", diff)
	}
}

func TestFaultFSSyncErr(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Faults{Seed: 1, SyncErr: 1})
	f, err := ffs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync err = %v, want EIO", err)
	}
}

func TestFaultFSRenameFail(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS, Faults{FailRenameAt: 1})
	dst := filepath.Join(dir, "dst")
	if err := ffs.Rename(src, dst); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename err = %v, want EIO", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("failed rename must leave source intact: %v", err)
	}
	if _, err := os.Stat(dst); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("failed rename must not create destination: %v", err)
	}
	if err := ffs.Rename(src, dst); err != nil {
		t.Fatalf("second rename: %v", err)
	}
}

func TestFaultFSSetFaultsHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Faults{Seed: 1, WriteErr: 1})
	p := filepath.Join(dir, "f")
	if err := ffs.WriteFile(p, []byte("x"), 0o644); err == nil {
		t.Fatal("want injected write error")
	}
	ffs.SetFaults(Faults{})
	if err := ffs.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatalf("healed write: %v", err)
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "sub", "f")
	if err := OS.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := OS.WriteFile(p, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(p)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile: %q, %v", b, err)
	}
	f, err := OS.CreateTemp(dir, "tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("t")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	name := f.Name()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(name, p+"2"); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(p + "2"); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(p + "2"); err != nil {
		t.Fatal(err)
	}
}
