package chaos

import (
	"errors"
	"fmt"
	"io/fs"
	"syscall"
)

// Class sorts I/O failures by what the caller should do about them.
type Class int

const (
	// Unknown: not an I/O error this package can classify (validation
	// failures, logic errors). Never retried, never exit-code 4.
	Unknown Class = iota
	// Transient: retrying — after backoff, or on a fresh attempt — can
	// succeed (ENOSPC, EINTR, EIO, EAGAIN, ...).
	Transient
	// Permanent: retrying cannot help (EACCES, EROFS, ENOENT, ...).
	Permanent
	// Corrupt: bytes read back failed a checksum or structural check.
	// The artifact is quarantined; recomputing it can succeed, so the
	// class is recoverable at the job level like Transient.
	Corrupt
)

func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// CorruptError reports an artifact whose bytes failed an integrity
// check (checksum mismatch, torn structure). Classify maps it to
// Corrupt.
type CorruptError struct {
	Path   string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("chaos: corrupt artifact %s: %s", e.Path, e.Detail)
}

// transientErrnos are worth retrying: the condition can clear (space
// freed, descriptor released, flaky medium re-read).
var transientErrnos = map[syscall.Errno]bool{
	syscall.ENOSPC: true, syscall.EDQUOT: true, syscall.EINTR: true,
	syscall.EAGAIN: true, syscall.EBUSY: true, syscall.ETIMEDOUT: true,
	syscall.EMFILE: true, syscall.ENFILE: true, syscall.ENOMEM: true,
	syscall.ESTALE: true, syscall.EIO: true,
}

// permanentErrnos cannot clear by waiting: the path, permissions or
// filesystem itself is wrong.
var permanentErrnos = map[syscall.Errno]bool{
	syscall.EACCES: true, syscall.EPERM: true, syscall.EROFS: true,
	syscall.ENOENT: true, syscall.ENOTDIR: true, syscall.EISDIR: true,
	syscall.EINVAL: true, syscall.ENAMETOOLONG: true, syscall.ENODEV: true,
	syscall.ENXIO: true, syscall.EBADF: true, syscall.EEXIST: true,
}

// Classify maps an error onto its failure class. It unwraps through
// fs.PathError and wrapped chains; anything without a recognizable
// errno or CorruptError is Unknown.
func Classify(err error) Class {
	if err == nil {
		return Unknown
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		return Corrupt
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		switch {
		case transientErrnos[errno]:
			return Transient
		case permanentErrnos[errno]:
			return Permanent
		}
		// An errno outside both tables is still a real I/O failure;
		// treat it conservatively as permanent (no retry storm).
		return Permanent
	}
	return Unknown
}

// IsTransient reports whether the error is worth an in-place retry.
func IsTransient(err error) bool { return Classify(err) == Transient }

// Recoverable reports whether a fresh attempt of the whole operation
// (a campaign cell, a job) can succeed: transient conditions clear and
// corrupt artifacts are quarantined and rebuilt.
func Recoverable(err error) bool {
	c := Classify(err)
	return c == Transient || c == Corrupt
}

// errnoNames renders the classified errnos symbolically for Describe.
var errnoNames = map[syscall.Errno]string{
	syscall.ENOSPC: "ENOSPC", syscall.EDQUOT: "EDQUOT", syscall.EINTR: "EINTR",
	syscall.EAGAIN: "EAGAIN", syscall.EBUSY: "EBUSY", syscall.ETIMEDOUT: "ETIMEDOUT",
	syscall.EMFILE: "EMFILE", syscall.ENFILE: "ENFILE", syscall.ENOMEM: "ENOMEM",
	syscall.ESTALE: "ESTALE", syscall.EIO: "EIO",
	syscall.EACCES: "EACCES", syscall.EPERM: "EPERM", syscall.EROFS: "EROFS",
	syscall.ENOENT: "ENOENT", syscall.ENOTDIR: "ENOTDIR", syscall.EISDIR: "EISDIR",
	syscall.EINVAL: "EINVAL", syscall.ENAMETOOLONG: "ENAMETOOLONG",
	syscall.ENODEV: "ENODEV", syscall.ENXIO: "ENXIO", syscall.EBADF: "EBADF",
	syscall.EEXIST: "EEXIST",
}

// Describe renders an error for the CLIs' dedicated I/O failure exit
// path: the error text plus the failing path, the errno and the class,
// e.g. "write /v/.put-1: no space left on device (path=/v/.put-1,
// errno=ENOSPC, transient)".
func Describe(err error) string {
	if err == nil {
		return "<nil>"
	}
	class := Classify(err)
	path := ""
	var pe *fs.PathError
	if errors.As(err, &pe) {
		path = pe.Path
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		path = ce.Path
	}
	errno := ""
	var en syscall.Errno
	if errors.As(err, &en) {
		if n, ok := errnoNames[en]; ok {
			errno = n
		} else {
			errno = fmt.Sprintf("errno(%d)", int(en))
		}
	}
	detail := ""
	switch {
	case path != "" && errno != "":
		detail = fmt.Sprintf(" (path=%s, errno=%s, %s)", path, errno, class)
	case path != "":
		detail = fmt.Sprintf(" (path=%s, %s)", path, class)
	default:
		detail = fmt.Sprintf(" (%s)", class)
	}
	return err.Error() + detail
}
