package chaos

import (
	"fmt"
	"io/fs"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Faults parameterizes a FaultFS. Probabilities are per-operation in
// [0, 1]; trigger points are 1-based operation counts that inject
// exactly once (deterministically, regardless of the probabilities),
// which is what the targeted chaos scenarios use ("the 3rd write
// fails"). The zero value injects nothing.
type Faults struct {
	// Seed drives the injector's private RNG: the same seed over the
	// same operation sequence injects the same faults.
	Seed int64

	// WriteErr is the probability that a write-side operation
	// (WriteFile, CreateTemp, MkdirAll, MkdirTemp, File.Write/WriteAt)
	// fails with ENOSPC before touching the disk.
	WriteErr float64
	// ReadErr is the probability that a read-side operation (ReadFile,
	// Open, File.Read/ReadAt) fails with EIO.
	ReadErr float64
	// TornWrite is the probability that a WriteFile or File.Write lands
	// only a strict prefix of its data on disk and then fails with
	// ENOSPC — the torn-write model atomic temp+rename must defeat.
	TornWrite float64
	// SyncErr is the probability that File.Sync fails with EIO after
	// the data was accepted into the cache — the fsync-loss model: the
	// caller must treat the write as not durable.
	SyncErr float64
	// RenameErr is the probability that Rename fails with EIO, leaving
	// both names in their prior state.
	RenameErr float64
	// BitFlip is the probability that a written buffer reaches the disk
	// with exactly one bit flipped — silent corruption at rest, the
	// fault that checksums and quarantine exist for. The write itself
	// reports success.
	BitFlip float64
	// Permanent is the fraction of injected errors surfaced as EACCES
	// (permanent: retrying cannot help) instead of the transient errno
	// above. 0 = all injected errors are transient.
	Permanent float64

	// FailWriteAt / FailReadAt / FailRenameAt inject one transient
	// error on exactly the Nth (1-based) operation of that kind,
	// independent of the probabilities. 0 = disabled.
	FailWriteAt  int64
	FailReadAt   int64
	FailRenameAt int64
}

// ParseFaults parses the comma-list spec the CLIs expose
// (e.g. "seed=7,write=0.05,torn=0.02,flip=0.01,perm=0.2,fail-write-at=3").
// Keys: seed, write, read, torn, sync, rename, flip, perm,
// fail-write-at, fail-read-at, fail-rename-at.
func ParseFaults(spec string) (Faults, error) {
	var f Faults
	if strings.TrimSpace(spec) == "" {
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return f, fmt.Errorf("chaos: bad fault spec element %q (want key=value)", part)
		}
		switch k {
		case "seed", "fail-write-at", "fail-read-at", "fail-rename-at":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return f, fmt.Errorf("chaos: bad %s value %q", k, v)
			}
			switch k {
			case "seed":
				f.Seed = n
			case "fail-write-at":
				f.FailWriteAt = n
			case "fail-read-at":
				f.FailReadAt = n
			case "fail-rename-at":
				f.FailRenameAt = n
			}
		case "write", "read", "torn", "sync", "rename", "flip", "perm":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return f, fmt.Errorf("chaos: bad %s probability %q (want 0..1)", k, v)
			}
			switch k {
			case "write":
				f.WriteErr = p
			case "read":
				f.ReadErr = p
			case "torn":
				f.TornWrite = p
			case "sync":
				f.SyncErr = p
			case "rename":
				f.RenameErr = p
			case "flip":
				f.BitFlip = p
			case "perm":
				f.Permanent = p
			}
		default:
			return f, fmt.Errorf("chaos: unknown fault key %q (seed|write|read|torn|sync|rename|flip|perm|fail-*-at)", k)
		}
	}
	return f, nil
}

// FaultFS injects faults in front of an inner FS. All decisions come
// from one seeded RNG behind a mutex, so a serial workload replays the
// identical fault sequence for the same seed; concurrent workloads are
// reproducible up to operation interleaving. Remove, RemoveAll and
// Stat pass through un-faulted (cleanup and metadata probes are
// best-effort everywhere they are used).
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	faults Faults
	rng    *rand.Rand

	writes, reads, renames, syncs int64
	injected                      map[string]int64
}

// NewFaultFS wraps inner (nil = OS) with the given fault profile.
func NewFaultFS(inner FS, f Faults) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{
		inner:    inner,
		faults:   f,
		rng:      rand.New(rand.NewSource(f.Seed)),
		injected: map[string]int64{},
	}
}

// SetFaults swaps the fault profile (the RNG keeps its stream) — the
// "disk healed" half of recovery tests and ops drills.
func (f *FaultFS) SetFaults(nf Faults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nf
}

// Stats returns a copy of the per-kind injection counts (keys: write,
// read, torn, sync, rename, flip).
func (f *FaultFS) Stats() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// errno picks the transient errno or, with probability Permanent, the
// permanent one. Callers hold f.mu.
func (f *FaultFS) errno(transient syscall.Errno) syscall.Errno {
	if f.faults.Permanent > 0 && f.rng.Float64() < f.faults.Permanent {
		return syscall.EACCES
	}
	return transient
}

func pathErr(op, path string, errno syscall.Errno) error {
	return &fs.PathError{Op: op, Path: path, Err: errno}
}

// writeFault decides whether a write-side op fails outright.
func (f *FaultFS) writeFault(op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.faults.FailWriteAt > 0 && f.writes == f.faults.FailWriteAt {
		f.injected["write"]++
		return pathErr(op, path, syscall.ENOSPC)
	}
	if f.faults.WriteErr > 0 && f.rng.Float64() < f.faults.WriteErr {
		f.injected["write"]++
		return pathErr(op, path, f.errno(syscall.ENOSPC))
	}
	return nil
}

// readFault decides whether a read-side op fails.
func (f *FaultFS) readFault(op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	if f.faults.FailReadAt > 0 && f.reads == f.faults.FailReadAt {
		f.injected["read"]++
		return pathErr(op, path, syscall.EIO)
	}
	if f.faults.ReadErr > 0 && f.rng.Float64() < f.faults.ReadErr {
		f.injected["read"]++
		return pathErr(op, path, f.errno(syscall.EIO))
	}
	return nil
}

// mangle applies the torn-write and bit-flip lotteries to a buffer
// about to be written. It returns the bytes to hand to the inner FS
// and, for a torn write, the error to report after the prefix landed.
func (f *FaultFS) mangle(op, path string, data []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.faults.TornWrite > 0 && len(data) > 1 && f.rng.Float64() < f.faults.TornWrite {
		f.injected["torn"]++
		n := 1 + f.rng.Intn(len(data)-1) // strict prefix, never empty, never whole
		return data[:n], pathErr(op, path, syscall.ENOSPC)
	}
	if f.faults.BitFlip > 0 && len(data) > 0 && f.rng.Float64() < f.faults.BitFlip {
		f.injected["flip"]++
		c := make([]byte, len(data))
		copy(c, data)
		i := f.rng.Intn(len(c))
		c[i] ^= 1 << uint(f.rng.Intn(8))
		return c, nil
	}
	return data, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.readFault("read", name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if err := f.writeFault("write", name); err != nil {
		return err
	}
	out, tornErr := f.mangle("write", name, data)
	if err := f.inner.WriteFile(name, out, perm); err != nil {
		return err
	}
	return tornErr
}

func (f *FaultFS) Open(name string) (File, error) {
	if err := f.readFault("open", name); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.writeFault("create", dir); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.writeFault("mkdir", path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) MkdirTemp(dir, pattern string) (string, error) {
	if err := f.writeFault("mkdir", dir); err != nil {
		return "", err
	}
	return f.inner.MkdirTemp(dir, pattern)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	inject := f.faults.FailRenameAt > 0 && f.renames == f.faults.FailRenameAt
	if !inject && f.faults.RenameErr > 0 && f.rng.Float64() < f.faults.RenameErr {
		inject = true
	}
	var errno syscall.Errno
	if inject {
		f.injected["rename"]++
		errno = f.errno(syscall.EIO)
	}
	f.mu.Unlock()
	if inject {
		return pathErr("rename", oldpath, errno)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error    { return f.inner.Remove(name) }
func (f *FaultFS) RemoveAll(path string) error { return f.inner.RemoveAll(path) }
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	return f.inner.Stat(name)
}

// faultFile injects into the per-file operations of an open handle.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Name() string { return f.inner.Name() }
func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.readFault("read", f.inner.Name()); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.readFault("read", f.inner.Name()); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.writeFault("write", f.inner.Name()); err != nil {
		return 0, err
	}
	out, tornErr := f.fs.mangle("write", f.inner.Name(), p)
	n, err := f.inner.Write(out)
	if err != nil {
		return n, err
	}
	if tornErr != nil {
		return n, tornErr
	}
	// Report full acceptance even when a flipped copy was written: the
	// corruption is silent by design.
	return len(p), nil
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.fs.writeFault("write", f.inner.Name()); err != nil {
		return 0, err
	}
	out, tornErr := f.fs.mangle("write", f.inner.Name(), p)
	n, err := f.inner.WriteAt(out, off)
	if err != nil {
		return n, err
	}
	if tornErr != nil {
		return n, tornErr
	}
	return len(p), nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.syncs++
	inject := f.fs.faults.SyncErr > 0 && f.fs.rng.Float64() < f.fs.faults.SyncErr
	if inject {
		f.fs.injected["sync"]++
	}
	f.fs.mu.Unlock()
	if inject {
		return pathErr("sync", f.inner.Name(), syscall.EIO)
	}
	return f.inner.Sync()
}
