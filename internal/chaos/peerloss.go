package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// PeerLoss is the cluster-tier fault: one checker peer dies mid-layer
// at a given BFS depth. The local cluster transport injects it by
// failing the peer's expansion RPC after a bounded number of its
// outgoing frontier frames have already been delivered — the realistic
// half-sent shape of a process kill — and refusing every later call to
// the peer, so the coordinator must roll the survivors back to the
// layer barrier and migrate the lost shards from their snapshots. Like
// every other injected fault, the outcome contract is: byte-identical
// verdict or a classified error, never a wrong result, never a hang.
type PeerLoss struct {
	// Peer is the index of the peer to kill.
	Peer int
	// Depth is the BFS layer during whose expansion the peer dies.
	Depth int
	// FramesBeforeDeath bounds how many outgoing frontier frames the
	// dying peer still delivers during the fatal layer before its sends
	// start failing (partial-delivery realism; 0 = none get out).
	FramesBeforeDeath int
}

// ParsePeerLoss parses a comma list of "peer@depth" or
// "peer@depth+frames" elements (e.g. "1@3,2@5+2"): peer 1 dies during
// layer 3 delivering no frames; peer 2 dies during layer 5 after
// delivering 2 frames.
func ParsePeerLoss(spec string) ([]PeerLoss, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []PeerLoss
	for _, part := range strings.Split(spec, ",") {
		elem := strings.TrimSpace(part)
		peerS, rest, ok := strings.Cut(elem, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: bad peer-loss element %q (want peer@depth or peer@depth+frames)", elem)
		}
		depthS, framesS, hasFrames := strings.Cut(rest, "+")
		peer, err := strconv.Atoi(peerS)
		if err != nil || peer < 0 {
			return nil, fmt.Errorf("chaos: bad peer index in %q", elem)
		}
		depth, err := strconv.Atoi(depthS)
		if err != nil || depth < 0 {
			return nil, fmt.Errorf("chaos: bad depth in %q", elem)
		}
		frames := 0
		if hasFrames {
			frames, err = strconv.Atoi(framesS)
			if err != nil || frames < 0 {
				return nil, fmt.Errorf("chaos: bad frame budget in %q", elem)
			}
		}
		out = append(out, PeerLoss{Peer: peer, Depth: depth, FramesBeforeDeath: frames})
	}
	return out, nil
}
