package chaos

import (
	"context"
	"time"
)

// Policy bounds an exponential-backoff retry loop.
type Policy struct {
	// Attempts is the total number of tries (first attempt included).
	// Zero or negative means a single attempt, i.e. no retries.
	Attempts int
	// Base is the delay before the first retry; it doubles per retry.
	Base time.Duration
	// Max caps the per-retry delay.
	Max time.Duration
}

// DefaultPolicy is the store-level retry budget: four attempts with
// 2ms/4ms/8ms backoff. Cheap enough to hide a blip, bounded enough
// that a dead disk surfaces in well under a second.
var DefaultPolicy = Policy{Attempts: 4, Base: 2 * time.Millisecond, Max: 100 * time.Millisecond}

// Retry runs op under p, retrying only errors classified Transient.
// Permanent, Corrupt and Unknown errors return immediately; context
// cancellation during backoff returns ctx.Err(). The last error is
// returned when the budget is exhausted.
func Retry(ctx context.Context, p Policy, op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	delay := p.Base
	if delay <= 0 {
		delay = time.Millisecond
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			delay *= 2
			if p.Max > 0 && delay > p.Max {
				delay = p.Max
			}
		}
		err = op()
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}
