// Package cliutil holds the flag grammar shared by every command in
// this module. Its one concern today is the worker-count spelling: all
// CLIs accept -j (the spelling cccheck/ccbench/ccsim always had), and
// a command with a longer canonical name (ccserve -job-workers) keeps
// it with -j as an alias. Setting both spellings to different values
// is a usage error, never a silent last-one-wins; setting both to the
// same value is accepted.
package cliutil

import (
	"flag"
	"fmt"
)

// WorkerFlag is a worker-count flag registered under a canonical
// spelling plus the shared -j alias. Resolve it after flag parsing.
type WorkerFlag struct {
	fs        *flag.FlagSet
	canonical string
	long      int
	short     int
}

// Workers registers the worker-count flag on fs under canonical and,
// when canonical is not already "j", under the -j alias too. def is
// the shared default; usage documents the canonical spelling.
func Workers(fs *flag.FlagSet, canonical string, def int, usage string) *WorkerFlag {
	w := &WorkerFlag{fs: fs, canonical: canonical, long: def, short: def}
	fs.IntVar(&w.long, canonical, def, usage)
	if canonical != "j" {
		fs.IntVar(&w.short, "j", def, "alias for -"+canonical)
	}
	return w
}

// Value resolves the parsed flag: whichever spelling was set wins, and
// setting both to different values is an error (equal duplicates are
// fine — scripts concatenating flag fragments do that legitimately).
// Call after fs.Parse.
func (w *WorkerFlag) Value() (int, error) {
	if w.canonical == "j" {
		return w.long, nil
	}
	var setLong, setShort bool
	w.fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case w.canonical:
			setLong = true
		case "j":
			setShort = true
		}
	})
	if setLong && setShort && w.long != w.short {
		return 0, fmt.Errorf("conflicting -%s=%d and -j=%d (they are the same knob; set one, or both to the same value)",
			w.canonical, w.long, w.short)
	}
	if setShort {
		return w.short, nil
	}
	return w.long, nil
}
