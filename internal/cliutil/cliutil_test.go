package cliutil_test

import (
	"flag"
	"io"
	"strings"
	"testing"

	"repro/internal/cliutil"
)

func TestWorkersResolution(t *testing.T) {
	for _, tc := range []struct {
		name      string
		canonical string
		args      []string
		want      int
		wantErr   string
	}{
		{"default", "job-workers", nil, 7, ""},
		{"canonical only", "job-workers", []string{"-job-workers", "3"}, 3, ""},
		{"alias only", "job-workers", []string{"-j", "5"}, 5, ""},
		{"both equal", "job-workers", []string{"-job-workers", "4", "-j", "4"}, 4, ""},
		{"both conflicting", "job-workers", []string{"-job-workers", "2", "-j", "3"}, 0, "conflicting"},
		{"canonical is j", "j", []string{"-j", "9"}, 9, ""},
		{"canonical is j default", "j", nil, 7, ""},
		// The flag package's own last-one-wins applies to repeats of a
		// single spelling; the conflict check is about the two names.
		{"alias repeated", "job-workers", []string{"-j", "2", "-j", "6"}, 6, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			w := cliutil.Workers(fs, tc.canonical, 7, "workers")
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			got, err := w.Value()
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Value() = %d, %v; want error containing %q", got, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Value() = %d, want %d", got, tc.want)
			}
		})
	}
}

// A canonical of "j" must not register the alias twice (flag panics on
// duplicate registration); Workers guards that.
func TestWorkersNoDuplicateRegistration(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cliutil.Workers(fs, "j", 0, "workers")
	if fs.Lookup("j") == nil {
		t.Fatal("-j not registered")
	}
}
