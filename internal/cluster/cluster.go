// Package cluster distributes one bounded exhaustive exploration
// across N checker peers and proves it changed nothing: the visited
// set is partitioned into contiguous state-hash ranges (one shard per
// initial peer, explore.ShardOf), each peer expands its slice of every
// BFS layer and ships successors it does not own to the owning peer as
// binary frontier frames, and the coordinator in this package drives
// the layer barriers — merging the per-shard pending metadata into the
// exact single-node promotion order, assigning dense global ids, and
// folding the per-peer layer reports into a Result that is
// byte-identical to explore.ExploreCtx at any peer count (the cluster
// differential battery in this package pins that, traces included).
//
// Fault tolerance reuses the checkpoint machinery at shard
// granularity: after every layer commit each hosted shard is
// snapshotted to a shared SnapshotStore, and when a peer is lost
// mid-layer the survivors roll their pending state back to the barrier
// (the arena only mutates at commit, so rollback is cheap), a
// deterministic adopter restores each lost shard from its snapshot,
// the routing table is rebroadcast, and the layer is retried — the
// distributed analogue of the single-node kill -9 resume, with the
// same byte-identity contract.
//
// The package supplies two transports: Local wires in-process engines
// directly (with chaos.PeerLoss injection for the battery), and HTTP
// drives real ccserve peers over /v1/cluster/* (see internal/serve).
package cluster

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"

	"repro/internal/explore"
	"repro/internal/sim"
)

// Transport is the coordinator's view of the peer set. Peer indices
// are dense [0, Peers()); a transport error from Expand marks the peer
// dead for the rest of the run (the recovery path), while errors from
// the serial barrier calls fail the job — they leave no half-expanded
// layer to roll back and retrying them is the campaign's business.
type Transport interface {
	Peers() int
	Seed(p int) error
	Expand(p int, depth int, firstGid int32, atCap bool) (*explore.LayerReport, error)
	FinishLayer(p int) (bool, error)
	PendMeta(p, shard int) ([]explore.PendMeta, error)
	Commit(p, shard, keep int, gids []int32, housekeep bool) error
	Keys(p, shard int, gids []int32) ([][]uint64, error)
	// Snapshot persists shard (hosted by peer p) to the shared
	// snapshot store; Adopt rebuilds it on peer p from that store.
	Snapshot(p, shard int) error
	Adopt(p, shard int) error
	Rollback(p int) error
	SetRoute(p int, route []int) error
	Close()
}

// SnapshotStore persists shard snapshots between layer barriers — the
// unit of work migration. Save must be atomic (a crash mid-save leaves
// the previous snapshot intact); Load returns the latest saved stream.
type SnapshotStore interface {
	Save(shard int, write func(w io.Writer) error) error
	Load(shard int) (io.ReadCloser, error)
}

// MemSnapshots is the in-process SnapshotStore the battery uses.
type MemSnapshots struct {
	mu    sync.Mutex
	blobs map[int][]byte
}

// NewMemSnapshots returns an empty in-memory snapshot store.
func NewMemSnapshots() *MemSnapshots {
	return &MemSnapshots{blobs: make(map[int][]byte)}
}

type memBlobWriter struct{ buf []byte }

func (w *memBlobWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Save implements SnapshotStore.
func (m *MemSnapshots) Save(shard int, write func(w io.Writer) error) error {
	var w memBlobWriter
	if err := write(&w); err != nil {
		return err
	}
	m.mu.Lock()
	m.blobs[shard] = w.buf
	m.mu.Unlock()
	return nil
}

// Load implements SnapshotStore.
func (m *MemSnapshots) Load(shard int) (io.ReadCloser, error) {
	m.mu.Lock()
	blob, ok := m.blobs[shard]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: no snapshot for shard %d", shard)
	}
	return io.NopCloser(newByteReader(blob)), nil
}

type byteReader struct {
	b []byte
	i int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// maxLayerRetries bounds how many times one layer is retried after
// transient send failures or peer loss before the job fails; each
// retry either heals (sends succeed) or shrinks the peer set (a dead
// peer's shards migrate), so the bound is only a backstop.
const maxLayerRetries = 4

// pendTagged is one pending entry during the coordinator's global merge.
type pendTagged struct {
	shard int
	meta  explore.PendMeta
}

// Run executes one exploration across the transport's peers and
// returns a Result byte-identical to explore.ExploreCtx(newModel,
// opts) — verdict, counts, counterexample traces — except StateBytes,
// which is zero (it measures one process's footprint; a cluster has
// none). newModel and opts must match what the peers were built with.
//
// The coordinator holds only O(states) trace metadata (parent gid,
// selection, owning shard per state) plus one layer of pending
// metadata during a merge; the state encodings themselves live only on
// the peers.
func Run[S sim.Cloneable[S]](ctx context.Context, newModel func() *explore.Model[S], opts explore.Options, tr Transport) (*explore.Result, error) {
	opts = opts.Defaulted()
	m0 := newModel()
	n := tr.Peers()
	if n < 1 {
		return nil, errors.New("cluster: no peers")
	}
	nShards := n
	route := make([]int, nShards)
	hostCount := make([]int, n)
	for s := range route {
		route[s] = s
		hostCount[s]++
	}
	alive := make([]bool, n)
	for p := range alive {
		alive[p] = true
	}
	res := &explore.Result{
		Model: m0.Name, Mode: opts.Mode, MaxIncorrectDepth: -1,
		Symmetry: opts.Symmetry && len(m0.Syms) > 0,
	}

	// Coordinator-side trace state, indexed by gid: mirror of the
	// single-node parentOf/selOf plus the owning shard (keys are
	// fetched from the owner when a trace is built).
	var parentOf []int32
	var selOf []string
	var shardOf []uint16
	totalStates := 0

	// mergeCommit is the serial phase-B analogue: gather each shard's
	// pos-sorted pending metadata, merge into the global discovery
	// order, enforce the state bound, assign gids, and commit each
	// shard's kept prefix back. Returns the number of states promoted.
	mergeCommit := func(housekeep bool) (int, error) {
		var all []pendTagged
		for s := 0; s < nShards; s++ {
			meta, err := tr.PendMeta(route[s], s)
			if err != nil {
				return 0, fmt.Errorf("cluster: pending metadata for shard %d: %w", s, err)
			}
			for _, m := range meta {
				all = append(all, pendTagged{shard: s, meta: m})
			}
		}
		// pos values are globally unique — each (item, branch) probes
		// one key at one owner — so this sort is a strict total order:
		// exactly the single-node Drain order.
		slices.SortFunc(all, func(a, b pendTagged) int { return cmp.Compare(a.meta.Pos, b.meta.Pos) })
		keep := len(all)
		if opts.MaxStates > 0 {
			if room := opts.MaxStates - totalStates; keep > room {
				keep = max(room, 0)
				res.Truncated = true
			}
		}
		gids := make([][]int32, nShards)
		for i := 0; i < keep; i++ {
			t := all[i]
			gid := int32(totalStates + i)
			parentOf = append(parentOf, t.meta.Parent)
			selOf = append(selOf, string(t.meta.Sel))
			shardOf = append(shardOf, uint16(t.shard))
			gids[t.shard] = append(gids[t.shard], gid)
		}
		for s := 0; s < nShards; s++ {
			if err := tr.Commit(route[s], s, len(gids[s]), gids[s], housekeep); err != nil {
				return 0, fmt.Errorf("cluster: commit shard %d: %w", s, err)
			}
		}
		totalStates += keep
		return keep, nil
	}

	snapshotAll := func() error {
		for s := 0; s < nShards; s++ {
			if err := tr.Snapshot(route[s], s); err != nil {
				return fmt.Errorf("cluster: snapshot shard %d: %w", s, err)
			}
		}
		return nil
	}

	// buildTrace mirrors the single-node trace builder with the keys
	// fetched from the owning shards in one batch per shard.
	buildTrace := func(gid int32, wv explore.LayerViol) ([]explore.TraceStep, error) {
		var path []int32
		for x := gid; x >= 0; x = parentOf[x] {
			path = append(path, x)
		}
		byShard := make(map[int][]int32)
		for _, x := range path {
			s := int(shardOf[x])
			byShard[s] = append(byShard[s], x)
		}
		keyOf := make(map[int32][]uint64, len(path))
		for s, gs := range byShard {
			slices.Sort(gs)
			keys, err := tr.Keys(route[s], s, gs)
			if err != nil {
				return nil, fmt.Errorf("cluster: trace keys from shard %d: %w", s, err)
			}
			for i, g := range gs {
				keyOf[g] = keys[i]
			}
		}
		out := make([]explore.TraceStep, 0, len(path)+1)
		for i := len(path) - 1; i >= 0; i-- {
			x := path[i]
			key := keyOf[x]
			out = append(out, explore.TraceStep{Sel: explore.DecodeSel(selOf[x]), Config: m0.RenderKey(key), Key: key})
		}
		if wv.Key != nil {
			out = append(out, explore.TraceStep{Sel: wv.Sel, Config: m0.RenderKey(wv.Key), Key: wv.Key})
		}
		return out, nil
	}

	// --- seed ------------------------------------------------------------------
	for p := 0; p < n; p++ {
		if err := tr.Seed(p); err != nil {
			return res, fmt.Errorf("cluster: seed peer %d: %w", p, err)
		}
	}
	inits, err := mergeCommit(false)
	if err != nil {
		return res, err
	}
	res.Inits = inits
	res.States = totalStates
	if err := snapshotAll(); err != nil {
		return res, err
	}

	// --- layer loop ------------------------------------------------------------
	depth := 0
	frontLen := inits
	retries := 0
	for frontLen > 0 && len(res.Violations) < opts.MaxViolations {
		if cerr := ctx.Err(); cerr != nil {
			return res, fmt.Errorf("cluster: %w at %d states (%v)", explore.ErrInterrupted, totalStates, cerr)
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			res.Truncated = true
			break
		}
		atCap := opts.MaxStates > 0 && totalStates >= opts.MaxStates
		firstGid := int32(totalStates - frontLen)

		reports := make([]*explore.LayerReport, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			if !alive[p] {
				continue
			}
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				reports[p], errs[p] = tr.Expand(p, depth, firstGid, atCap)
			}(p)
		}
		wg.Wait()

		var dead []int
		sendFails := 0
		for p := 0; p < n; p++ {
			if !alive[p] {
				continue
			}
			if errs[p] != nil {
				dead = append(dead, p)
			} else if reports[p] != nil {
				sendFails += reports[p].SendFailures
			}
		}
		if len(dead) > 0 || sendFails > 0 {
			retries++
			if retries > maxLayerRetries {
				return res, fmt.Errorf("cluster: layer %d failed %d times (last peer errors: %v)", depth, retries, errs)
			}
			// Roll every survivor back to the barrier; the failed
			// layer's reports and half-delivered frames are discarded
			// wholesale, so the retry re-derives them deterministically.
			for p := 0; p < n; p++ {
				if !alive[p] || slices.Contains(dead, p) {
					continue
				}
				if err := tr.Rollback(p); err != nil {
					return res, fmt.Errorf("cluster: rollback peer %d: %w", p, err)
				}
			}
			for _, p := range dead {
				alive[p] = false
				hostCount[p] = 0
			}
			anyAlive := false
			for p := 0; p < n; p++ {
				anyAlive = anyAlive || alive[p]
			}
			if !anyAlive {
				return res, fmt.Errorf("cluster: all peers lost at layer %d", depth)
			}
			// Migrate each orphaned shard to the deterministic adopter:
			// the alive peer hosting the fewest shards, lowest index on
			// ties — keeps the load balanced without coordination state.
			for s := 0; s < nShards; s++ {
				if alive[route[s]] {
					continue
				}
				adopter := -1
				for p := 0; p < n; p++ {
					if alive[p] && (adopter < 0 || hostCount[p] < hostCount[adopter]) {
						adopter = p
					}
				}
				if err := tr.Adopt(adopter, s); err != nil {
					return res, fmt.Errorf("cluster: peer %d adopting shard %d: %w", adopter, s, err)
				}
				route[s] = adopter
				hostCount[adopter]++
			}
			for p := 0; p < n; p++ {
				if alive[p] {
					if err := tr.SetRoute(p, route); err != nil {
						return res, fmt.Errorf("cluster: route update to peer %d: %w", p, err)
					}
				}
			}
			continue // retry the layer from the barrier
		}
		retries = 0

		// Fold the per-peer aggregates; FinishLayer runs only after
		// every peer returned, so late-arriving at-cap membership
		// frames are all accounted for.
		var acc explore.LayerReport
		for p := 0; p < n; p++ {
			if !alive[p] {
				continue
			}
			capT, err := tr.FinishLayer(p)
			if err != nil {
				return res, fmt.Errorf("cluster: finish layer on peer %d: %w", p, err)
			}
			acc.Truncated = acc.Truncated || capT
			r := reports[p]
			acc.Deadlocks += r.Deadlocks
			acc.Transitions += r.Transitions
			acc.Truncated = acc.Truncated || r.Truncated
			acc.Incorrect = acc.Incorrect || r.Incorrect
			if r.MaxEnabled > acc.MaxEnabled {
				acc.MaxEnabled = r.MaxEnabled
			}
			acc.Viols = append(acc.Viols, r.Viols...)
		}

		kept, err := mergeCommit(true)
		if err != nil {
			return res, err
		}

		res.Deadlocks += acc.Deadlocks
		res.Transitions += acc.Transitions
		if acc.Truncated {
			res.Truncated = true
		}
		if acc.Incorrect && depth > res.MaxIncorrectDepth {
			res.MaxIncorrectDepth = depth
		}
		if acc.MaxEnabled > res.MaxEnabled {
			res.MaxEnabled = acc.MaxEnabled
		}
		if len(acc.Viols) > 0 {
			// Stable by global item: one item is expanded by one worker
			// on one peer, which appends its violations in detection
			// order — the single-node report order.
			slices.SortStableFunc(acc.Viols, func(a, b explore.LayerViol) int { return cmp.Compare(a.Item, b.Item) })
			for _, v := range acc.Viols {
				if len(res.Violations) >= opts.MaxViolations {
					break
				}
				d := depth
				if v.Key != nil {
					d++
				}
				trace, err := buildTrace(firstGid+int32(v.Item), v)
				if err != nil {
					return res, err
				}
				res.Violations = append(res.Violations, explore.Violation{
					Kind: v.Kind, Msg: v.Msg, Depth: d, Trace: trace,
				})
			}
		}
		res.States = totalStates
		depth++
		res.Depth = depth
		frontLen = kept
		if err := snapshotAll(); err != nil {
			return res, err
		}
	}
	if len(res.Violations) >= opts.MaxViolations {
		res.Truncated = true
	}
	res.StateBytes = 0
	return res, nil
}
