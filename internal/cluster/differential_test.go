package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// The cluster differential battery: cluster.Run over a Local transport
// must reproduce the single-node engine byte-for-byte — marshalled
// reports including counterexample traces — at every peer count, on
// every algorithm × topology × daemon-branching cell, and after
// injected mid-layer peer loss with shard adoption. This is the proof
// that partitioning the visited set and shipping frontiers over the
// wire changed the deployment shape of the checker and nothing else.
//
// CI runs the ring:3 shard of this battery under -race
// (TestClusterDifferentialBattery/.*ring:3.* — see
// .github/workflows/ci.yml).

// mustCC builds a CC model factory or fails the test.
func mustCC(t *testing.T, v core.Variant, h *hypergraph.H, opts explore.CCOptions) func() *explore.Model[core.State] {
	t.Helper()
	factory, err := explore.CC(v, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	return factory
}

// oracleJSON runs the single-node engine and marshals its report with
// StateBytes zeroed (a cluster has no single-process footprint, so the
// field is excluded from the byte-identity contract on both sides).
func oracleJSON[S sim.Cloneable[S]](t *testing.T, factory func() *explore.Model[S], opts explore.Options) []byte {
	t.Helper()
	res := explore.Explore(factory, opts)
	res.StateBytes = 0
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runCluster assembles npeers in-process peer engines (one shard each,
// deliberately tiny frame batches so every cell exercises multi-frame
// traffic), runs the coordinator over a Local transport with the given
// loss plan, and returns the marshalled report.
func runCluster[S sim.Cloneable[S]](t *testing.T, factory func() *explore.Model[S], opts explore.Options, npeers int, loss []chaos.PeerLoss) []byte {
	t.Helper()
	engines := make([]explore.PeerEngine, npeers)
	for p := 0; p < npeers; p++ {
		e, err := explore.NewPeer(factory, opts, explore.PeerConfig{
			NShards: npeers, Hosted: []int{p}, Self: p, FlushRecords: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[p] = e
	}
	tr := cluster.NewLocal(cluster.LocalConfig{
		Engines:   engines,
		Snapshots: cluster.NewMemSnapshots(),
		Loss:      loss,
	})
	defer tr.Close()
	res, err := cluster.Run(context.Background(), factory, opts, tr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// assertClusterGrid pins cluster output to the single-node oracle at
// each requested peer count.
func assertClusterGrid[S sim.Cloneable[S]](t *testing.T, factory func() *explore.Model[S], opts explore.Options, counts []int) {
	t.Helper()
	ref := oracleJSON(t, factory, opts)
	for _, n := range counts {
		t.Run(fmt.Sprintf("peers:%d", n), func(t *testing.T) {
			got := runCluster(t, factory, opts, n, nil)
			if !bytes.Equal(got, ref) {
				t.Fatalf("cluster report at %d peers differs from single-node:\n%s\nvs\n%s", n, got, ref)
			}
		})
	}
}

func TestClusterDifferentialBattery(t *testing.T) {
	variants := map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}
	topos := map[string]func() *hypergraph.H{
		"ring:3":    func() *hypergraph.H { return hypergraph.CommitteeRing(3) },
		"star:4":    func() *hypergraph.H { return hypergraph.Star(4) },
		"triples:3": func() *hypergraph.H { return hypergraph.ChainOfTriples(3) },
	}
	modes := map[string]sim.SelectionMode{
		"central":     sim.SelectCentral,
		"synchronous": sim.SelectSynchronous,
		"all-subsets": sim.SelectAllSubsets,
	}

	// CC cells: every variant × topology × mode at peer counts 1/2/3/5.
	// cc2 on ring:3 (central, synchronous) runs the full cc-full state
	// space at 3 peers — the heavy exhaustive cells, skipped in -short;
	// every other cell runs with a state budget, which makes the bounded
	// cells a differential test of the distributed truncation path
	// (layer-global at-cap, capcheck membership frames) as well.
	for algName, variant := range variants {
		for topoName, mkH := range topos {
			for modeName, mode := range modes {
				init := explore.InitCCFull
				maxStates := 12_000
				workers := 1
				counts := []int{1, 2, 3, 5}
				heavy := false
				switch topoName {
				case "star:4":
					init = explore.InitCC
					maxStates = 8_000
				case "triples:3":
					init = explore.InitCC
					maxStates = 8_000
				case "ring:3":
					workers = 2 // the -race shard runs these cells
					if algName == "cc2" && modeName != "all-subsets" {
						maxStates = 0
						heavy = true
						counts = []int{3}
					}
				}
				t.Run(algName+"/"+topoName+"/"+modeName, func(t *testing.T) {
					if heavy && testing.Short() {
						t.Skip("heavy exhaustive cell: skipped in -short")
					}
					factory := mustCC(t, variant, mkH(), explore.CCOptions{Init: init})
					opts := explore.Options{
						Mode: mode, MaxStates: maxStates, Workers: workers,
						CheckDeadlock: true, CheckClosure: true,
					}
					if mode == sim.SelectSynchronous {
						opts.CheckConvergence = true
					}
					assertClusterGrid(t, factory, opts, counts)
				})
			}
		}
	}

	// Baseline cells: the dining reduction's pinned central-schedule
	// deadlock trace and the token-ring cells must survive distribution.
	for _, kind := range []baseline.Kind{baseline.Dining, baseline.TokenRing} {
		for modeName, mode := range modes {
			t.Run(kind.String()+"/ring:3/"+modeName, func(t *testing.T) {
				if testing.Short() && modeName == "all-subsets" {
					t.Skip("heavy cell: skipped in -short")
				}
				factory, err := explore.Baseline(kind, hypergraph.CommitteeRing(3), 1)
				if err != nil {
					t.Fatal(err)
				}
				opts := explore.Options{
					Mode: mode, MaxStates: 20_000, MaxViolations: 2, CheckDeadlock: true,
				}
				assertClusterGrid(t, factory, opts, []int{1, 3})
			})
		}
	}
}

// TestClusterMutations: seeded guard mutations must yield the same
// violations with the same counterexample traces from the cluster —
// the coordinator-side trace builder (parent walk + batched key
// fetches from the owning shards) is differentially tested, not just
// the clean path.
func TestClusterMutations(t *testing.T) {
	for _, tc := range []struct {
		name     string
		mutation string
		init     explore.InitMode
		mode     sim.SelectionMode
		converge bool
	}{
		{"leave-early/central", explore.MutationLeaveEarly, explore.InitLegit, sim.SelectCentral, false},
		{"skip-stab/synchronous", explore.MutationSkipStab, explore.InitCCFull, sim.SelectSynchronous, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), explore.CCOptions{Init: tc.init, Mutation: tc.mutation})
			opts := explore.Options{
				Mode: tc.mode, CheckDeadlock: true, CheckConvergence: tc.converge,
				MaxViolations: 3, Workers: 2,
			}
			assertClusterGrid(t, factory, opts, []int{1, 2, 3})
		})
	}
}

// TestClusterPeerLossAdoption is the fault-tolerance half of the
// battery: peers are killed mid-layer (after delivering a bounded
// number of frontier frames — the half-sent shape of a real process
// kill), their shards are adopted from barrier snapshots by the
// survivors, the layer is retried, and the final report must still be
// byte-identical to single-node.
func TestClusterPeerLossAdoption(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), explore.CCOptions{Init: explore.InitCCFull})
	opts := explore.Options{
		Mode: sim.SelectCentral, MaxStates: 12_000, Workers: 2,
		CheckDeadlock: true, CheckClosure: true,
	}
	ref := oracleJSON(t, factory, opts)
	for _, tc := range []struct {
		name  string
		peers int
		loss  []chaos.PeerLoss
	}{
		{"kill1@1+2frames/3peers", 3, []chaos.PeerLoss{{Peer: 1, Depth: 1, FramesBeforeDeath: 2}}},
		{"kill1@1,kill2@2/3peers", 3, []chaos.PeerLoss{
			{Peer: 1, Depth: 1, FramesBeforeDeath: 0},
			{Peer: 2, Depth: 2, FramesBeforeDeath: 3},
		}},
		{"kill0@2+1frame/2peers", 2, []chaos.PeerLoss{{Peer: 0, Depth: 2, FramesBeforeDeath: 1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runCluster(t, factory, opts, tc.peers, tc.loss)
			if !bytes.Equal(got, ref) {
				t.Fatalf("post-adoption cluster report differs from single-node:\n%s\nvs\n%s", got, ref)
			}
		})
	}

	// Violations through adoption: the kill lands while a mutated run
	// is producing counterexamples, so the retried layer's traces are
	// rebuilt across migrated shards.
	t.Run("kill-during-violations", func(t *testing.T) {
		mf := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), explore.CCOptions{Init: explore.InitLegit, Mutation: explore.MutationLeaveEarly})
		mo := explore.Options{
			Mode: sim.SelectCentral, CheckDeadlock: true, MaxViolations: 3, Workers: 2,
		}
		mref := oracleJSON(t, mf, mo)
		got := runCluster(t, mf, mo, 3, []chaos.PeerLoss{{Peer: 2, Depth: 1, FramesBeforeDeath: 1}})
		if !bytes.Equal(got, mref) {
			t.Fatalf("mutated post-adoption report differs from single-node:\n%s\nvs\n%s", got, mref)
		}
	})
}

// TestClusterAllPeersLost: losing every peer must surface a classified
// error, never a wrong verdict.
func TestClusterAllPeersLost(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), explore.CCOptions{Init: explore.InitCC})
	opts := explore.Options{Mode: sim.SelectCentral, MaxStates: 4_000, CheckDeadlock: true}
	engines := make([]explore.PeerEngine, 2)
	for p := range engines {
		e, err := explore.NewPeer(factory, opts, explore.PeerConfig{NShards: 2, Hosted: []int{p}, Self: p, FlushRecords: 16})
		if err != nil {
			t.Fatal(err)
		}
		engines[p] = e
	}
	tr := cluster.NewLocal(cluster.LocalConfig{
		Engines:   engines,
		Snapshots: cluster.NewMemSnapshots(),
		Loss: []chaos.PeerLoss{
			{Peer: 0, Depth: 1}, {Peer: 1, Depth: 1},
		},
	})
	defer tr.Close()
	if _, err := cluster.Run(context.Background(), factory, opts, tr); err == nil {
		t.Fatal("expected an error after losing every peer, got a verdict")
	}
}
