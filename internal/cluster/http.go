package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/explore"
)

// RPCRequest is the control-plane wire envelope for the cluster tier:
// one op-discriminated JSON shape shared by the coordinator (this
// package's HTTP transport) and the peer side (internal/serve). The
// data plane — frontier frames — stays binary and travels separately
// (POST /v1/cluster/frontier).
type RPCRequest struct {
	// Op selects the call: open, seed, expand, finish, pendmeta,
	// commit, keys, snapshot, rollback, route, close.
	Op string `json:"op"`
	// Job scopes every call: the content key of the job spec.
	Job string `json:"job"`

	// open
	Spec    json.RawMessage `json:"spec,omitempty"`
	NShards int             `json:"nshards,omitempty"`
	Self    int             `json:"self"`
	Workers int             `json:"workers,omitempty"`
	Peers   []string        `json:"peers,omitempty"`

	// expand
	Depth    int   `json:"depth,omitempty"`
	FirstGid int32 `json:"first_gid,omitempty"`
	AtCap    bool  `json:"at_cap,omitempty"`

	// pendmeta / commit / keys / snapshot
	Shard     int     `json:"shard"`
	Keep      int     `json:"keep,omitempty"`
	Gids      []int32 `json:"gids,omitempty"`
	Housekeep bool    `json:"housekeep,omitempty"`

	// route
	Route []int `json:"route,omitempty"`
}

// RPCResponse carries whichever payload the op produces; HTTP-level
// failures and peer-side errors both surface as non-200 statuses with
// the server's usual error envelope.
type RPCResponse struct {
	Report *explore.LayerReport `json:"report,omitempty"`
	Cap    bool                 `json:"cap,omitempty"`
	Meta   []explore.PendMeta   `json:"meta,omitempty"`
	Keys   [][]uint64           `json:"keys,omitempty"`
}

// AdoptRequest is the body of POST /v1/cluster/adopt: the peer loads
// the shard's snapshot from its own store (all peers share one cache
// directory) and installs it.
type AdoptRequest struct {
	Job   string `json:"job"`
	Shard int    `json:"shard"`
}

// SnapshotKey is the store key under which a peer persists the shard
// snapshot for a job — derived from the job's content key, so
// concurrent cluster jobs never collide and a finished job's snapshot
// is identifiable for GC.
func SnapshotKey(job string, shard int) string {
	return fmt.Sprintf("%s-shard%d", job, shard)
}

// HTTPConfig parameterizes DialHTTP.
type HTTPConfig struct {
	// Peers are the ccserve base URLs, one per peer, index = peer id =
	// initial shard id.
	Peers []string
	// Job is the job's content key, scoping engines, frames and
	// snapshots on the peers.
	Job string
	// Spec is the canonical job spec, forwarded verbatim for each peer
	// to validate and build its engine from.
	Spec json.RawMessage
	// Workers is the per-peer explorer pool width (0 = the peer's own
	// default).
	Workers int
	// Client overrides the HTTP client (nil = a default with a 10
	// minute timeout — expansion RPCs block for a whole layer).
	Client *http.Client
}

// HTTP is the coordinator-side Transport over real ccserve peers.
type HTTP struct {
	cfg    HTTPConfig
	client *http.Client
}

// DialHTTP opens the job on every peer (validating the spec and
// building an engine there) and returns the connected transport. A
// peer that fails to open fails the dial; already-opened peers are
// closed best-effort.
func DialHTTP(ctx context.Context, cfg HTTPConfig) (*HTTP, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peer URLs")
	}
	h := &HTTP{cfg: cfg, client: cfg.Client}
	if h.client == nil {
		h.client = &http.Client{Timeout: 10 * time.Minute}
	}
	for p := range cfg.Peers {
		req := RPCRequest{
			Op: "open", Job: cfg.Job, Spec: cfg.Spec,
			NShards: len(cfg.Peers), Self: p, Workers: cfg.Workers,
			Peers: cfg.Peers,
		}
		if _, err := h.rpc(ctx, p, req); err != nil {
			h.Close()
			return nil, fmt.Errorf("cluster: open on peer %d (%s): %w", p, cfg.Peers[p], err)
		}
	}
	return h, nil
}

func (h *HTTP) rpc(ctx context.Context, p int, req RPCRequest) (*RPCResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.cfg.Peers[p]+"/v1/cluster/rpc", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("peer %d: %s %s: %s", p, req.Op, resp.Status, bytes.TrimSpace(msg))
	}
	var out RPCResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("peer %d: decode %s response: %w", p, req.Op, err)
	}
	return &out, nil
}

// Peers implements Transport.
func (h *HTTP) Peers() int { return len(h.cfg.Peers) }

// Seed implements Transport.
func (h *HTTP) Seed(p int) error {
	_, err := h.rpc(context.Background(), p, RPCRequest{Op: "seed", Job: h.cfg.Job})
	return err
}

// Expand implements Transport.
func (h *HTTP) Expand(p int, depth int, firstGid int32, atCap bool) (*explore.LayerReport, error) {
	out, err := h.rpc(context.Background(), p, RPCRequest{
		Op: "expand", Job: h.cfg.Job, Depth: depth, FirstGid: firstGid, AtCap: atCap,
	})
	if err != nil {
		return nil, err
	}
	if out.Report == nil {
		return nil, fmt.Errorf("peer %d: expand returned no report", p)
	}
	return out.Report, nil
}

// FinishLayer implements Transport.
func (h *HTTP) FinishLayer(p int) (bool, error) {
	out, err := h.rpc(context.Background(), p, RPCRequest{Op: "finish", Job: h.cfg.Job})
	if err != nil {
		return false, err
	}
	return out.Cap, nil
}

// PendMeta implements Transport.
func (h *HTTP) PendMeta(p, shard int) ([]explore.PendMeta, error) {
	out, err := h.rpc(context.Background(), p, RPCRequest{Op: "pendmeta", Job: h.cfg.Job, Shard: shard})
	if err != nil {
		return nil, err
	}
	return out.Meta, nil
}

// Commit implements Transport.
func (h *HTTP) Commit(p, shard, keep int, gids []int32, housekeep bool) error {
	_, err := h.rpc(context.Background(), p, RPCRequest{
		Op: "commit", Job: h.cfg.Job, Shard: shard, Keep: keep, Gids: gids, Housekeep: housekeep,
	})
	return err
}

// Keys implements Transport.
func (h *HTTP) Keys(p, shard int, gids []int32) ([][]uint64, error) {
	out, err := h.rpc(context.Background(), p, RPCRequest{Op: "keys", Job: h.cfg.Job, Shard: shard, Gids: gids})
	if err != nil {
		return nil, err
	}
	return out.Keys, nil
}

// Snapshot implements Transport: the peer persists the shard into its
// own (shared) store under SnapshotKey.
func (h *HTTP) Snapshot(p, shard int) error {
	_, err := h.rpc(context.Background(), p, RPCRequest{Op: "snapshot", Job: h.cfg.Job, Shard: shard})
	return err
}

// Adopt implements Transport: the peer restores the shard from the
// shared store.
func (h *HTTP) Adopt(p, shard int) error {
	body, err := json.Marshal(AdoptRequest{Job: h.cfg.Job, Shard: shard})
	if err != nil {
		return err
	}
	resp, err := h.client.Post(h.cfg.Peers[p]+"/v1/cluster/adopt", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("peer %d: adopt %s: %s", p, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// Rollback implements Transport.
func (h *HTTP) Rollback(p int) error {
	_, err := h.rpc(context.Background(), p, RPCRequest{Op: "rollback", Job: h.cfg.Job})
	return err
}

// SetRoute implements Transport.
func (h *HTTP) SetRoute(p int, route []int) error {
	_, err := h.rpc(context.Background(), p, RPCRequest{Op: "route", Job: h.cfg.Job, Route: route})
	return err
}

// Close implements Transport: best-effort close on every peer (dead
// peers are expected to refuse).
func (h *HTTP) Close() {
	for p := range h.cfg.Peers {
		h.rpc(context.Background(), p, RPCRequest{Op: "close", Job: h.cfg.Job})
	}
}

// FrontierURL is where a peer posts an outgoing binary frame for the
// given job on the destination peer.
func FrontierURL(base, job string) string {
	return base + "/v1/cluster/frontier?job=" + url.QueryEscape(job)
}
