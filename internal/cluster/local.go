package cluster

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/chaos"
	"repro/internal/explore"
)

// Local wires in-process peer engines directly: frames are delivered
// as synchronous Ingest calls, shard snapshots go through the
// configured SnapshotStore, and a chaos.PeerLoss plan injects
// mid-layer peer death — the dying peer delivers a bounded number of
// frames (partial delivery, like a real process kill), its expansion
// RPC fails, and every later call to it is refused. The cluster
// differential battery runs on this transport.
type Local struct {
	engines []explore.PeerEngine
	snaps   SnapshotStore
	loss    []chaos.PeerLoss

	mu     sync.Mutex
	dead   map[int]bool
	budget map[int]int // frames a dying peer may still deliver
	dying  map[int]bool
}

// LocalConfig assembles a Local transport.
type LocalConfig struct {
	// Engines holds one engine per peer, index = peer id.
	Engines []explore.PeerEngine
	// Snapshots is the shared shard-snapshot store; nil disables
	// snapshots (and with them, recovery from peer loss).
	Snapshots SnapshotStore
	// Loss is the peer-death injection plan.
	Loss []chaos.PeerLoss
}

// NewLocal builds the transport and installs each engine's frame
// sender.
func NewLocal(cfg LocalConfig) *Local {
	l := &Local{
		engines: cfg.Engines,
		snaps:   cfg.Snapshots,
		loss:    cfg.Loss,
		dead:    make(map[int]bool),
		budget:  make(map[int]int),
		dying:   make(map[int]bool),
	}
	for i, e := range cfg.Engines {
		src := i
		e.SetSender(func(dst int, frame []byte) error { return l.deliver(src, dst, frame) })
	}
	return l
}

func (l *Local) deliver(src, dst int, frame []byte) error {
	l.mu.Lock()
	if l.dying[src] {
		if l.budget[src] <= 0 {
			l.mu.Unlock()
			return fmt.Errorf("cluster: peer %d is down", src)
		}
		l.budget[src]--
	}
	if l.dead[dst] || l.dying[dst] && l.budget[dst] <= 0 {
		l.mu.Unlock()
		return fmt.Errorf("cluster: peer %d is down", dst)
	}
	l.mu.Unlock()
	return l.engines[dst].Ingest(frame)
}

func (l *Local) isDead(p int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead[p]
}

func (l *Local) check(p int) error {
	if l.isDead(p) {
		return fmt.Errorf("cluster: peer %d is down", p)
	}
	return nil
}

// Peers implements Transport.
func (l *Local) Peers() int { return len(l.engines) }

// Seed implements Transport.
func (l *Local) Seed(p int) error {
	if err := l.check(p); err != nil {
		return err
	}
	return l.engines[p].Seed()
}

// Expand implements Transport, injecting the loss plan: a peer
// scheduled to die at this depth runs its expansion (so its early
// frames really reach the survivors), then reports failure and stays
// dead.
func (l *Local) Expand(p int, depth int, firstGid int32, atCap bool) (*explore.LayerReport, error) {
	if err := l.check(p); err != nil {
		return nil, err
	}
	for _, pl := range l.loss {
		if pl.Peer == p && pl.Depth == depth {
			l.mu.Lock()
			if !l.dead[p] && !l.dying[p] {
				l.dying[p] = true
				l.budget[p] = pl.FramesBeforeDeath
			}
			l.mu.Unlock()
		}
	}
	rep, err := l.engines[p].Expand(depth, firstGid, atCap)
	l.mu.Lock()
	wasDying := l.dying[p]
	if wasDying {
		l.dead[p] = true
		delete(l.dying, p)
	}
	l.mu.Unlock()
	if wasDying {
		return nil, fmt.Errorf("cluster: peer %d lost mid-layer (injected)", p)
	}
	return rep, err
}

// FinishLayer implements Transport.
func (l *Local) FinishLayer(p int) (bool, error) {
	if err := l.check(p); err != nil {
		return false, err
	}
	return l.engines[p].FinishLayer(), nil
}

// PendMeta implements Transport.
func (l *Local) PendMeta(p, shard int) ([]explore.PendMeta, error) {
	if err := l.check(p); err != nil {
		return nil, err
	}
	return l.engines[p].PendMeta(shard)
}

// Commit implements Transport.
func (l *Local) Commit(p, shard, keep int, gids []int32, housekeep bool) error {
	if err := l.check(p); err != nil {
		return err
	}
	return l.engines[p].Commit(shard, keep, gids, housekeep)
}

// Keys implements Transport.
func (l *Local) Keys(p, shard int, gids []int32) ([][]uint64, error) {
	if err := l.check(p); err != nil {
		return nil, err
	}
	return l.engines[p].Keys(shard, gids)
}

// Snapshot implements Transport.
func (l *Local) Snapshot(p, shard int) error {
	if err := l.check(p); err != nil {
		return err
	}
	if l.snaps == nil {
		return nil
	}
	return l.snaps.Save(shard, func(w io.Writer) error { return l.engines[p].SnapshotShard(shard, w) })
}

// Adopt implements Transport.
func (l *Local) Adopt(p, shard int) error {
	if err := l.check(p); err != nil {
		return err
	}
	if l.snaps == nil {
		return fmt.Errorf("cluster: no snapshot store configured, cannot adopt shard %d", shard)
	}
	r, err := l.snaps.Load(shard)
	if err != nil {
		return err
	}
	defer r.Close()
	return l.engines[p].AdoptShard(shard, r)
}

// Rollback implements Transport.
func (l *Local) Rollback(p int) error {
	if err := l.check(p); err != nil {
		return err
	}
	return l.engines[p].Rollback()
}

// SetRoute implements Transport.
func (l *Local) SetRoute(p int, route []int) error {
	if err := l.check(p); err != nil {
		return err
	}
	return l.engines[p].SetRoute(route)
}

// Close implements Transport.
func (l *Local) Close() {
	for _, e := range l.engines {
		e.Close()
	}
}
