// Package cmdtest builds and runs this module's commands for CLI smoke
// tests: each cmd/* package's tests compile their own main package once
// per test process and assert on output and exit codes of real
// invocations — flag parsing, golden output fragments, error paths.
package cmdtest

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var (
	mu     sync.Mutex
	binDir string
	built  = map[string]string{} // package dir → binary path
)

// Build compiles the main package in dir (usually "." — the calling
// test's package directory) and returns the binary path, caching per
// process. Tests are skipped when no go toolchain is available.
func Build(t *testing.T, dir string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go toolchain in PATH")
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if bin, ok := built[abs]; ok {
		return bin
	}
	if binDir == "" {
		binDir, err = os.MkdirTemp("", "cmdtest-*")
		if err != nil {
			t.Fatal(err)
		}
	}
	bin := filepath.Join(binDir, filepath.Base(abs)+".bin")
	cmd := exec.Command(goBin, "build", "-o", bin, ".")
	cmd.Dir = abs
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", abs, err, out)
	}
	built[abs] = bin
	return bin
}

// Run executes the binary with args under a timeout and returns its
// combined output and exit code. A timeout fails the test.
func Run(t *testing.T, bin string, timeout time.Duration, args ...string) (string, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, args...)
	out, err := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("%s %v timed out after %v\noutput:\n%s", filepath.Base(bin), args, timeout, out)
	}
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("%s %v failed to run: %v", filepath.Base(bin), args, err)
	return "", -1
}
