package cmdtest_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

// The -j contract, table-tested across every CLI in the module: each
// binary accepts -j as the worker-count spelling, ccserve additionally
// keeps its historical -job-workers name, and giving both spellings
// different values is a usage error rather than a silent coin flip.
func TestWorkerFlagAliases(t *testing.T) {
	for _, tc := range []struct {
		cmd      string
		args     []string
		wantExit int
		wantOut  string // substring of combined output
	}{
		// -j parses on every CLI: each invocation reaches the command's
		// own validation (or succeeds), never "flag provided but not
		// defined".
		{"ccbench", []string{"-j", "2", "-list"}, 0, "MC"},
		{"cccheck", []string{"-j", "2", "-mode", "query"}, 2, "-mode query needs -cache"},
		{"ccload", []string{"-j", "2"}, 2, "-targets is required"},
		{"ccserve", []string{"-j", "2"}, 2, "-cache DIR is required"},
		{"ccsim", []string{"-j", "2", "-topo", "bogus"}, 2, "bogus"},
		{"cctrace", []string{"-j", "2", "-topo", "bogus"}, 2, "bogus"},

		// ccserve: conflicting spellings are a usage error; agreeing
		// duplicates are accepted and parsing proceeds.
		{"ccserve", []string{"-job-workers", "2", "-j", "3"}, 2, "conflicting"},
		{"ccserve", []string{"-job-workers", "2", "-j", "2"}, 2, "-cache DIR is required"},
		{"ccserve", []string{"-job-workers", "4"}, 2, "-cache DIR is required"},

		// ccload: -clients is its canonical worker-count spelling.
		{"ccload", []string{"-clients", "8", "-j", "9"}, 2, "conflicting"},
		{"ccload", []string{"-clients", "8", "-j", "8"}, 2, "-targets is required"},

		// An unknown worker spelling still fails loudly everywhere.
		{"cccheck", []string{"-jobs-wide", "2"}, 2, "flag provided but not defined"},
	} {
		name := tc.cmd + " " + strings.Join(tc.args, " ")
		t.Run(name, func(t *testing.T) {
			bin := cmdtest.Build(t, "../../cmd/"+tc.cmd)
			out, code := cmdtest.Run(t, bin, time.Minute, tc.args...)
			if code != tc.wantExit {
				t.Fatalf("exit %d, want %d\noutput:\n%s", code, tc.wantExit, out)
			}
			if !strings.Contains(out, tc.wantOut) {
				t.Fatalf("output missing %q:\n%s", tc.wantOut, out)
			}
		})
	}
}
