package core

import (
	"math/rand"

	"repro/internal/sim"
)

// This file transcribes Algorithm 1 (CC1) of the paper. All macro and
// predicate names match the paper's; comments quote the definitions.

// freeEdges1 — FreeEdges_p = {ε ∈ E_p | ∀q ∈ ε : S_q = looking}.
// The returned slice is Alg-owned scratch, valid until the next
// freeEdges1/freeEdges2 call (nested re-derivations for the same (cfg, p)
// rewrite identical contents, so the aliasing inside one guard is safe).
func (a *Alg) freeEdges1(cfg []State, p int) []int {
	out := a.scEdges[:0]
	for _, e := range a.H.EdgesOf(p) {
		if a.allMembers(cfg, e, func(q int) bool { return cfg[q].S == Looking }) {
			out = append(out, e)
		}
	}
	a.scEdges = out
	return out
}

// cands1 — FreeNodes_p = {q | ∃ε ∈ FreeEdges_p : q ∈ ε};
// TFreeNodes_p = {q ∈ FreeNodes_p | T_q};
// Cands_p = TFreeNodes_p if non-empty, else FreeNodes_p.
func (a *Alg) cands1(cfg []State, p int) []int {
	free := a.freeEdges1(cfg, p)
	if a.scSeen == nil {
		a.scSeen = make([]bool, a.H.N())
	}
	freeNodes := a.scNodes[:0]
	for _, e := range free {
		for _, q := range a.H.Edge(e) {
			if !a.scSeen[q] {
				a.scSeen[q] = true
				freeNodes = append(freeNodes, q)
			}
		}
	}
	for _, q := range freeNodes {
		a.scSeen[q] = false
	}
	a.scNodes = freeNodes
	tnodes := a.scTN[:0]
	for _, q := range freeNodes {
		if cfg[q].T {
			tnodes = append(tnodes, q)
		}
	}
	a.scTN = tnodes
	if len(tnodes) > 0 {
		return tnodes
	}
	return freeNodes
}

// localMax1 — LocalMax(p) ≡ p = max(Cands_p) (by identifier).
func (a *Alg) localMax1(cfg []State, p int) bool {
	cands := a.cands1(cfg, p)
	if len(cands) == 0 {
		return false
	}
	return a.maxByID(cands) == p
}

// maxToFreeEdge1 — MaxToFreeEdge(p) ≡ (FreeEdges_p ≠ ∅) ∧ LocalMax(p) ∧
// ¬Ready(p) ∧ (P_p ∉ FreeEdges_p).
func (a *Alg) maxToFreeEdge1(cfg []State, p int) bool {
	free := a.freeEdges1(cfg, p)
	if len(free) == 0 || !a.localMax1(cfg, p) || a.Ready(cfg, p) {
		return false
	}
	return !containsEdge(free, cfg[p].P)
}

// joinLocalMax1 — JoinLocalMax(p) ≡ (FreeEdges_p ≠ ∅) ∧ ¬LocalMax(p) ∧
// ¬Ready(p) ∧ (∃ε ∈ FreeEdges_p : (P_max(Cands_p) = ε ∧ P_p ≠ ε)).
func (a *Alg) joinLocalMax1(cfg []State, p int) bool {
	free := a.freeEdges1(cfg, p)
	if len(free) == 0 || a.localMax1(cfg, p) || a.Ready(cfg, p) {
		return false
	}
	mc := a.maxByID(a.cands1(cfg, p))
	target := cfg[mc].P
	return containsEdge(free, target) && cfg[p].P != target
}

// leaveMeeting1 — LeaveMeeting(p) ≡ ∃ε ∈ E_p :
// ((P_p = ε) ∧ (∀q ∈ ε : ((P_q = ε) ⇒ (S_q = done)))).
func (a *Alg) leaveMeeting1(cfg []State, p int) bool {
	e := cfg[p].P
	if e == NoEdge || !containsEdge(a.H.EdgesOf(p), e) {
		return false
	}
	return a.allMembers(cfg, e, func(q int) bool {
		return cfg[q].P != e || cfg[q].S == Done
	})
}

// useless1 — Useless(p) ≡ Token(p) ∧ [(S_p = idle) ∨
// (S_p = looking ∧ FreeEdges_p = ∅)].
func (a *Alg) useless1(cfg []State, p int) bool {
	if !a.Token(cfg, p) {
		return false
	}
	if cfg[p].S == Idle {
		return true
	}
	return cfg[p].S == Looking && len(a.freeEdges1(cfg, p)) == 0
}

// Correct1 — Correct(p) ≡ [(S_p = idle) ⇒ (P_p = ⊥)] ∧
// [(S_p = waiting) ⇒ Ready(p) ∨ Meeting(p)] ∧
// [(S_p = done) ⇒ Meeting(p) ∨ LeaveMeeting(p)].
func (a *Alg) Correct1(cfg []State, p int) bool {
	switch cfg[p].S {
	case Idle:
		return cfg[p].P == NoEdge
	case Waiting:
		return a.Ready(cfg, p) || a.Meeting(cfg, p)
	case Done:
		return a.Meeting(cfg, p) || a.leaveMeeting1(cfg, p)
	}
	return true
}

// cc1Actions returns Algorithm 1's action list in the paper's code order
// (Step1 first, Stab2 last; the engine gives priority to later entries).
func (a *Alg) cc1Actions() []sim.Action[State] {
	return []sim.Action[State]{
		{
			Name: "Step1", // RequestIn(p) ∧ S_p = idle → S_p := looking; P_p := ⊥
			Guard: func(cfg []State, p int) bool {
				return a.Env.RequestIn(p) && cfg[p].S == Idle
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.S = Looking
				next.P = NoEdge
			},
		},
		{
			Name:  "Step21", // MaxToFreeEdge(p) → P_p := ε ∈ FreeEdges_p
			Guard: func(cfg []State, p int) bool { return a.maxToFreeEdge1(cfg, p) },
			Body: func(cfg []State, p int, next *State, rng *rand.Rand) {
				free := a.freeEdges1(cfg, p)
				next.P = free[0]
				if a.Choose != nil {
					next.P = a.Choose(p, free, rng)
				}
			},
		},
		{
			Name:  "Step22", // JoinLocalMax(p) → P_p := P_max(Cands_p)
			Guard: func(cfg []State, p int) bool { return a.joinLocalMax1(cfg, p) },
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				mc := a.maxByID(a.cands1(cfg, p))
				next.P = cfg[mc].P
			},
		},
		{
			Name:  "Token1", // Token(p) ≠ T_p → T_p := Token(p)
			Guard: func(cfg []State, p int) bool { return a.Token(cfg, p) != cfg[p].T },
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.T = a.Token(cfg, p)
			},
		},
		{
			Name:  "Token2", // Useless(p) → ReleaseToken_p; T_p := false
			Guard: func(cfg []State, p int) bool { return a.useless1(cfg, p) },
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				a.releaseToken(cfg, p, next)
				next.T = false
			},
		},
		{
			Name: "Step31", // Ready(p) ∧ S_p = looking → S_p := waiting
			Guard: func(cfg []State, p int) bool {
				return a.Ready(cfg, p) && cfg[p].S == Looking
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.S = Waiting
			},
		},
		{
			Name: "Step32", // Meeting(p) ∧ S_p = waiting → 〈Essential〉; S_p := done
			Guard: func(cfg []State, p int) bool {
				return a.Meeting(cfg, p) && cfg[p].S == Waiting
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				if a.OnEssential != nil {
					a.OnEssential(p, cfg[p].P)
				}
				next.S = Done
			},
		},
		{
			Name: "Step4", // LeaveMeeting(p) ∧ RequestOut(p) → leave
			Guard: func(cfg []State, p int) bool {
				return a.leaveMeeting1(cfg, p) && a.Env.RequestOut(p)
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.S = Idle
				next.P = NoEdge
				if a.Token(cfg, p) {
					a.releaseToken(cfg, p, next)
				}
				next.T = false
			},
		},
		{
			Name: "Stab1", // ¬Correct(p) ∧ S_p = idle → P_p := ⊥
			Guard: func(cfg []State, p int) bool {
				return !a.Correct1(cfg, p) && cfg[p].S == Idle
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.P = NoEdge
			},
		},
		{
			Name: "Stab2", // ¬Correct(p) ∧ S_p ≠ idle → S_p := looking; P_p := ⊥
			Guard: func(cfg []State, p int) bool {
				return !a.Correct1(cfg, p) && cfg[p].S != Idle
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.S = Looking
				next.P = NoEdge
			},
		},
	}
}

func containsEdge(edges []int, e int) bool {
	for _, x := range edges {
		if x == e {
			return true
		}
	}
	return false
}
