package core

import (
	"math/rand"

	"repro/internal/sim"
)

// This file transcribes Algorithm 2 (CC2) and its §5.4 variant (CC3).
// CC2 assumes professors wait for meetings infinitely often, so the idle
// status and RequestIn disappear; a token is released only when its
// holder leaves a meeting, which yields Professor Fairness (Theorem 3)
// at the cost of Maximal Concurrency (Theorem 1). The lock bit L_p
// propagates "some committee around you was chosen by a token holder"
// so that unrelated committees keep convening (Figure 4).

// freeEdges2 — FreeEdges_p = {ε ∈ E_p | ∀q ∈ ε :
// (S_q = looking ∧ ¬L_q ∧ ¬T_q)}. Returns Alg-owned scratch (see
// freeEdges1 for the aliasing discipline).
func (a *Alg) freeEdges2(cfg []State, p int) []int {
	out := a.scEdges[:0]
	for _, e := range a.H.EdgesOf(p) {
		if a.allMembers(cfg, e, func(q int) bool {
			return cfg[q].S == Looking && !cfg[q].L && !cfg[q].T
		}) {
			out = append(out, e)
		}
	}
	a.scEdges = out
	return out
}

// freeNodes2 — FreeNodes_p = {q | ∃ε ∈ FreeEdges_p : q ∈ ε}.
func (a *Alg) freeNodes2(cfg []State, p int) []int {
	if a.scSeen == nil {
		a.scSeen = make([]bool, a.H.N())
	}
	out := a.scNodes[:0]
	for _, e := range a.freeEdges2(cfg, p) {
		for _, q := range a.H.Edge(e) {
			if !a.scSeen[q] {
				a.scSeen[q] = true
				out = append(out, q)
			}
		}
	}
	for _, q := range out {
		a.scSeen[q] = false
	}
	a.scNodes = out
	return out
}

// tPointingEdges — TPointingEdges_p = {ε ∈ E_p | ∃q ∈ ε :
// (P_q = ε ∧ T_q ∧ S_q = looking)}.
func (a *Alg) tPointingEdges(cfg []State, p int) []int {
	out := a.scTP[:0]
	for _, e := range a.H.EdgesOf(p) {
		for _, q := range a.H.Edge(e) {
			if cfg[q].P == e && cfg[q].T && cfg[q].S == Looking {
				out = append(out, e)
				break
			}
		}
	}
	a.scTP = out
	return out
}

// locked — Locked(p) ≡ TPointingEdges_p ≠ ∅.
func (a *Alg) locked(cfg []State, p int) bool {
	return len(a.tPointingEdges(cfg, p)) > 0
}

// leaveMeeting2 — LeaveMeeting(p) ≡ ∃ε ∈ E_p : (P_p = ε ∧ S_p = done ∧
// (∀q ∈ ε : (P_q = ε ⇒ S_q ≠ waiting))).
func (a *Alg) leaveMeeting2(cfg []State, p int) bool {
	e := cfg[p].P
	if e == NoEdge || cfg[p].S != Done || !containsEdge(a.H.EdgesOf(p), e) {
		return false
	}
	return a.allMembers(cfg, e, func(q int) bool {
		return cfg[q].P != e || cfg[q].S != Waiting
	})
}

// localMax2 — LocalMax(p) ≡ p = max(FreeNodes_p).
func (a *Alg) localMax2(cfg []State, p int) bool {
	fn := a.freeNodes2(cfg, p)
	if len(fn) == 0 {
		return false
	}
	return a.maxByID(fn) == p
}

// maxToFreeEdge2 — MaxToFreeEdge(p) ≡ ¬Token(p) ∧ ¬Locked(p) ∧
// FreeEdges_p ≠ ∅ ∧ LocalMax(p) ∧ ¬Ready(p) ∧ P_p ∉ FreeEdges_p.
func (a *Alg) maxToFreeEdge2(cfg []State, p int) bool {
	if a.Token(cfg, p) || a.locked(cfg, p) {
		return false
	}
	free := a.freeEdges2(cfg, p)
	if len(free) == 0 || !a.localMax2(cfg, p) || a.Ready(cfg, p) {
		return false
	}
	return !containsEdge(free, cfg[p].P)
}

// joinLocalMax2 — JoinLocalMax(p) ≡ ¬Token(p) ∧ ¬Locked(p) ∧
// FreeEdges_p ≠ ∅ ∧ ¬LocalMax(p) ∧ ¬Ready(p) ∧
// ∃ε ∈ FreeEdges_p : (P_max(FreeNodes_p) = ε ∧ P_p ≠ ε).
func (a *Alg) joinLocalMax2(cfg []State, p int) bool {
	if a.Token(cfg, p) || a.locked(cfg, p) {
		return false
	}
	free := a.freeEdges2(cfg, p)
	if len(free) == 0 || a.localMax2(cfg, p) || a.Ready(cfg, p) {
		return false
	}
	mx := a.maxByID(a.freeNodes2(cfg, p))
	target := cfg[mx].P
	return containsEdge(free, target) && cfg[p].P != target
}

// tokenTarget returns the committee the token holder p must stick to:
// for CC2 a smallest incident committee (MinEdges_p, chosen by the
// pluggable strategy); for CC3 the round-robin cursor's committee
// (§5.4: "every time a process acquires the token, it sequentially
// selects a new incident committee").
func (a *Alg) tokenTarget(cfg []State, p int, rng *rand.Rand) int {
	ep := a.H.EdgesOf(p)
	if len(ep) == 0 {
		return NoEdge
	}
	if a.Variant == CC3 {
		return ep[normCursor(cfg[p].R, len(ep))]
	}
	cands := a.H.MinEdges(p)
	if a.NoMinSize {
		cands = ep
	}
	if a.Choose != nil && rng != nil {
		return a.Choose(p, cands, rng)
	}
	return cands[0]
}

// tokenWants reports whether the token holder's pointer disagrees with
// its target set: CC2's P_p ∉ MinEdges_p, CC3's P_p ≠ E_p[R_p].
func (a *Alg) tokenWants(cfg []State, p int) bool {
	ep := a.H.EdgesOf(p)
	if len(ep) == 0 {
		return false
	}
	if a.Variant == CC3 {
		return cfg[p].P != ep[normCursor(cfg[p].R, len(ep))]
	}
	if a.NoMinSize {
		return !containsEdge(ep, cfg[p].P)
	}
	return !containsEdge(a.H.MinEdges(p), cfg[p].P)
}

// tokenHolderToEdge — TokenHolderToEdge(p) ≡ Token(p) ∧ (S_p = looking) ∧
// ¬Ready(p) ∧ (P_p ∉ MinEdges_p) (CC3: P_p ≠ E_p[R_p]).
func (a *Alg) tokenHolderToEdge(cfg []State, p int) bool {
	return a.Token(cfg, p) && cfg[p].S == Looking && !a.Ready(cfg, p) && a.tokenWants(cfg, p)
}

// joinTokenHolder — JoinTokenHolder(p) ≡ ¬Token(p) ∧ (S_p = looking) ∧
// ¬Ready(p) ∧ Locked(p) ∧ (P_p ∉ TPointingEdges_p).
func (a *Alg) joinTokenHolder(cfg []State, p int) bool {
	if a.Token(cfg, p) || cfg[p].S != Looking || a.Ready(cfg, p) {
		return false
	}
	tp := a.tPointingEdges(cfg, p)
	return len(tp) > 0 && !containsEdge(tp, cfg[p].P)
}

// joinTokenTarget picks the committee for Step12's body. The paper's
// formula reads P_max(TPointingNodes_p); per DESIGN.md we implement its
// evident intent — among TPointingEdges_p, the edge pointed at by the
// looking token-holder with the greatest identifier — which coincides
// with the formula whenever the token is unique.
func (a *Alg) joinTokenTarget(cfg []State, p int) int {
	best, bestID := NoEdge, -1
	for _, e := range a.tPointingEdges(cfg, p) {
		for _, q := range a.H.Edge(e) {
			if cfg[q].P == e && cfg[q].T && cfg[q].S == Looking && a.H.ID(q) > bestID {
				best, bestID = e, a.H.ID(q)
			}
		}
	}
	return best
}

// Correct2 — Correct(p) ≡ [(S_p = waiting) ⇒ Ready(p) ∨ Meeting(p)] ∧
// [(S_p = done) ⇒ Meeting(p) ∨ LeaveMeeting(p)].
func (a *Alg) Correct2(cfg []State, p int) bool {
	switch cfg[p].S {
	case Waiting:
		return a.Ready(cfg, p) || a.Meeting(cfg, p)
	case Done:
		return a.Meeting(cfg, p) || a.leaveMeeting2(cfg, p)
	case Idle:
		return false // idle does not exist in CC2/CC3; treat as corrupt
	}
	return true
}

// cc2Actions returns Algorithm 2's action list in the paper's code order
// (Lock first, Stab last). The CC3 variant differs only in the token
// holder's target selection and in advancing the round-robin cursor.
func (a *Alg) cc2Actions() []sim.Action[State] {
	return []sim.Action[State]{
		{
			Name:  "Lock", // Locked(p) ≠ L_p → L_p := Locked(p)
			Guard: func(cfg []State, p int) bool { return a.locked(cfg, p) != cfg[p].L },
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.L = a.locked(cfg, p)
			},
		},
		{
			Name:  "Step11", // TokenHolderToEdge(p) → P_p := ε ∈ MinEdges_p
			Guard: func(cfg []State, p int) bool { return a.tokenHolderToEdge(cfg, p) },
			Body: func(cfg []State, p int, next *State, rng *rand.Rand) {
				next.P = a.tokenTarget(cfg, p, rng)
			},
		},
		{
			Name:  "Step12", // JoinTokenHolder(p) → P_p := token holder's edge
			Guard: func(cfg []State, p int) bool { return a.joinTokenHolder(cfg, p) },
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				if e := a.joinTokenTarget(cfg, p); e != NoEdge {
					next.P = e
				}
			},
		},
		{
			Name:  "Step13", // MaxToFreeEdge(p) → P_p := ε ∈ FreeEdges_p
			Guard: func(cfg []State, p int) bool { return a.maxToFreeEdge2(cfg, p) },
			Body: func(cfg []State, p int, next *State, rng *rand.Rand) {
				free := a.freeEdges2(cfg, p)
				next.P = free[0]
				if a.Choose != nil {
					next.P = a.Choose(p, free, rng)
				}
			},
		},
		{
			Name:  "Step14", // JoinLocalMax(p) → P_p := P_max(FreeNodes_p)
			Guard: func(cfg []State, p int) bool { return a.joinLocalMax2(cfg, p) },
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				mx := a.maxByID(a.freeNodes2(cfg, p))
				next.P = cfg[mx].P
			},
		},
		{
			Name:  "Token", // Token(p) ≠ T_p → T_p := Token(p)
			Guard: func(cfg []State, p int) bool { return a.Token(cfg, p) != cfg[p].T },
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				tok := a.Token(cfg, p)
				next.T = tok
				if tok && !cfg[p].T && a.Variant == CC3 {
					// CC3: a fresh acquisition advances the round-robin
					// committee cursor so every incident committee is
					// selected infinitely often (§5.4).
					if m := len(a.H.EdgesOf(p)); m > 0 {
						next.R = (normCursor(cfg[p].R, m) + 1) % m
					}
				}
			},
		},
		{
			Name: "Step2", // Ready(p) ∧ S_p = looking → S_p := waiting
			Guard: func(cfg []State, p int) bool {
				return a.Ready(cfg, p) && cfg[p].S == Looking
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.S = Waiting
			},
		},
		{
			Name: "Step3", // Meeting(p) ∧ S_p = waiting → 〈Essential〉; S_p := done
			Guard: func(cfg []State, p int) bool {
				return a.Meeting(cfg, p) && cfg[p].S == Waiting
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				if a.OnEssential != nil {
					a.OnEssential(p, cfg[p].P)
				}
				next.S = Done
			},
		},
		{
			Name: "Step4", // LeaveMeeting(p) ∧ RequestOut(p) → leave; release token
			Guard: func(cfg []State, p int) bool {
				return a.leaveMeeting2(cfg, p) && a.Env.RequestOut(p)
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.S = Looking
				next.P = NoEdge
				next.T = false
				if a.Token(cfg, p) {
					a.releaseToken(cfg, p, next)
				}
			},
		},
		{
			Name:  "Stab", // ¬Correct(p) → S_p := looking; P_p := ⊥
			Guard: func(cfg []State, p int) bool { return !a.Correct2(cfg, p) },
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				next.S = Looking
				next.P = NoEdge
			},
		},
	}
}

// normCursor maps an arbitrary (possibly corrupted) cursor into [0, m).
func normCursor(r, m int) int {
	if m <= 0 {
		return 0
	}
	r %= m
	if r < 0 {
		r += m
	}
	return r
}
