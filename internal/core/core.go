package core
