package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/spec"
)

// newRunner builds a Runner with the standard always-requesting client.
func newRunner(v core.Variant, h *hypergraph.H, seed int64, randomInit bool) *core.Runner {
	alg := core.New(v, h, nil)
	env := core.NewAlwaysClient(h.N(), 2)
	return core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed, randomInit)
}

func TestCC1ConvenesMeetingsFromLegitInit(t *testing.T) {
	r := newRunner(core.CC1, hypergraph.Figure1(), 1, false)
	chk := r.Checker(0)
	r.Run(4000)
	if r.TotalConvenes() < 10 {
		t.Fatalf("CC1 convened only %d meetings in 4000 steps", r.TotalConvenes())
	}
	if !chk.Ok() {
		t.Fatalf("violations: %v", chk.Violations)
	}
}

func TestCC1SnapStabilizationSafetyFromRandomConfigs(t *testing.T) {
	// Theorem 2 safety: from arbitrary configurations, every meeting
	// convened during the run satisfies Exclusion, Synchronization and
	// Essential Discussion.
	topologies := []*hypergraph.H{
		hypergraph.Figure1(),
		hypergraph.Figure3(),
		hypergraph.CommitteeRing(7),
		hypergraph.ChainOfTriples(3),
	}
	for _, h := range topologies {
		for seed := int64(0); seed < 6; seed++ {
			r := newRunner(core.CC1, h, seed, true)
			chk := r.Checker(0)
			r.Run(1500)
			if !chk.Ok() {
				t.Fatalf("CC1 on %v seed %d: %v", h, seed, chk.Violations[0])
			}
		}
	}
}

func TestCC2SnapStabilizationSafetyFromRandomConfigs(t *testing.T) {
	topologies := []*hypergraph.H{
		hypergraph.Figure1(),
		hypergraph.Figure4(),
		hypergraph.CommitteeRing(6),
		hypergraph.ChainOfTriples(3),
	}
	for _, variant := range []core.Variant{core.CC2, core.CC3} {
		for _, h := range topologies {
			for seed := int64(0); seed < 6; seed++ {
				r := newRunner(variant, h, seed, true)
				chk := r.Checker(0)
				r.Run(1500)
				if !chk.Ok() {
					t.Fatalf("%v on %v seed %d: %v", variant, h, seed, chk.Violations[0])
				}
			}
		}
	}
}

func TestCorrectClosureLemma3(t *testing.T) {
	// Lemma 3 / Lemma 8: once Correct(p) holds, it holds forever.
	for _, variant := range []core.Variant{core.CC1, core.CC2, core.CC3} {
		h := hypergraph.Figure1()
		alg := core.New(variant, h, nil)
		env := core.NewAlwaysClient(h.N(), 2)
		r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 77, true)
		wasCorrect := make([]bool, h.N())
		for p := 0; p < h.N(); p++ {
			wasCorrect[p] = alg.Correct(r.Config(), p)
		}
		for i := 0; i < 600; i++ {
			if r.Step() == nil {
				break
			}
			for p := 0; p < h.N(); p++ {
				now := alg.Correct(r.Config(), p)
				if wasCorrect[p] && !now {
					t.Fatalf("%v: Correct(%d) held and was lost at step %d", variant, p, i+1)
				}
				wasCorrect[p] = now
			}
		}
	}
}

func TestAllCorrectWithinOneRoundCorollary3(t *testing.T) {
	// Corollaries 3 and 5: after at most one round every process
	// satisfies Correct forever.
	for _, variant := range []core.Variant{core.CC1, core.CC2} {
		for seed := int64(0); seed < 8; seed++ {
			h := hypergraph.Figure1()
			alg := core.New(variant, h, nil)
			env := core.NewAlwaysClient(h.N(), 2)
			r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed, true)
			for r.Engine.Rounds() < 1 {
				if r.Step() == nil {
					break
				}
			}
			if !alg.AllCorrect(r.Config()) {
				for p := 0; p < h.N(); p++ {
					if !alg.Correct(r.Config(), p) {
						t.Fatalf("%v seed %d: process %d not Correct after one round (S=%v P=%d)",
							variant, seed, p, r.Config()[p].S, r.Config()[p].P)
					}
				}
			}
		}
	}
}

func TestCC1ProgressFromRandomConfigs(t *testing.T) {
	// Lemma 6: with always-requesting professors, meetings keep convening
	// (progress) from arbitrary initial configurations.
	for seed := int64(0); seed < 5; seed++ {
		r := newRunner(core.CC1, hypergraph.Figure1(), seed, true)
		convened := false
		r.OnConvene(func(step, e int) { convened = true })
		r.Run(4000)
		if !convened {
			t.Fatalf("seed %d: no meeting convened in 4000 steps", seed)
		}
	}
}

func TestCC2ProfessorFairness(t *testing.T) {
	// Theorem 3: every professor participates infinitely often. Bounded
	// witness: in a long run every professor participates many times.
	for _, h := range []*hypergraph.H{
		hypergraph.Figure1(),
		hypergraph.CommitteeRing(6),
		hypergraph.ChainOfTriples(3),
	} {
		r := newRunner(core.CC2, h, 3, true)
		r.Run(30000)
		if min := r.MinProfMeetings(); min < 5 {
			t.Fatalf("CC2 on %v: some professor met only %d times (counts %v)",
				h, min, r.ProfMeetings)
		}
	}
}

func TestCC3CommitteeFairness(t *testing.T) {
	// Theorem 7: with the §5.4 modification every committee convenes
	// infinitely often.
	for _, h := range []*hypergraph.H{
		hypergraph.Figure1(),
		hypergraph.CommitteeRing(6),
	} {
		r := newRunner(core.CC3, h, 5, true)
		r.Run(60000)
		if min := r.MinCommitteeConvenes(); min < 3 {
			t.Fatalf("CC3 on %v: some committee convened only %d times (counts %v)",
				h, min, r.Convenes)
		}
	}
}

func TestCC2NotCommitteeFairOnFigure1(t *testing.T) {
	// CC2 token holders always pick a minimum-size committee, so the
	// 4-member committee {1,2,3,4} of Figure 1 is never selected by the
	// token holder; it may convene opportunistically but markedly less
	// often than the binary committees. (This is why §5.4 introduces
	// CC3.) We assert the qualitative gap between CC2 and CC3.
	h := hypergraph.Figure1()
	r2 := newRunner(core.CC2, h, 9, false)
	r2.Run(40000)
	r3 := newRunner(core.CC3, h, 9, false)
	r3.Run(40000)
	big := 1 // edge index of {1,2,3,4}
	if r3.Convenes[big] == 0 {
		t.Fatalf("CC3 never convened the 4-member committee: %v", r3.Convenes)
	}
	if r2.Convenes[big] > r3.Convenes[big] {
		t.Fatalf("expected CC3 to favor the large committee: CC2=%d CC3=%d",
			r2.Convenes[big], r3.Convenes[big])
	}
}

func TestCC1MaximalConcurrencyDefinition2(t *testing.T) {
	// Definition 2 scenario on the path {0,1},{1,2},{2,3},{3,4},{4,5}:
	// whatever meetings freeze forever, the committees whose members are
	// all waiting (the set Π of Definition 2) must eventually convene.
	// Committees {0,1} and {4,5} are disjoint from the middle {2,3}, so
	// once {2,3} meets forever both outer committees are in Π.
	h := hypergraph.CommitteePath(6)
	alg := core.New(core.CC1, h, nil)
	env := core.NewInfiniteMeetings(alg, nil)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 2, false)
	chk := r.Checker(0)
	ok := r.RunUntil(20000, func(cfg []State2) bool {
		return alg.EdgeMeets(cfg, 0) && alg.EdgeMeets(cfg, 4)
	})
	if !ok {
		t.Fatalf("outer committees did not both convene: meetings=%v", alg.Meetings(r.Config()))
	}
	if !chk.Ok() {
		t.Fatalf("violations: %v", chk.Violations)
	}
}

// State2 aliases core.State for predicate closures in this package.
type State2 = core.State

func TestCC1MaximalConcurrencyWithFrozenMiddle(t *testing.T) {
	// Stronger Definition 2 check: first let the middle committee {2,3}
	// meet and freeze; then ensure the disjoint outer ones convene
	// afterwards, while the middle meeting persists.
	h := hypergraph.CommitteePath(6)
	alg := core.New(core.CC1, h, nil)
	env := core.NewInfiniteMeetings(alg, nil)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 4, false)
	if !r.RunUntil(20000, func(cfg []State2) bool { return alg.EdgeMeets(cfg, 2) }) {
		// The middle might never be chosen first; fall back to outer-first
		// which is the same scenario with P1/P2 swapped.
		t.Skip("middle committee never met first under this seed")
	}
	ok := r.RunUntil(20000, func(cfg []State2) bool {
		return alg.EdgeMeets(cfg, 0) && alg.EdgeMeets(cfg, 4) && alg.EdgeMeets(cfg, 2)
	})
	if !ok {
		t.Fatalf("maximal concurrency violated: meetings=%v", alg.Meetings(r.Config()))
	}
}

func TestCC2QuiescenceUnderInfiniteMeetings(t *testing.T) {
	// Definition 5 setting: infinite meetings drive CC2 to a quiescent
	// (terminal) state whose meetings form a matching of size >= the
	// Theorem 5 bound.
	h := hypergraph.CommitteeRing(8)
	bound := h.Theorem5Bound()
	for seed := int64(0); seed < 6; seed++ {
		alg := core.New(core.CC2, h, nil)
		env := core.NewInfiniteMeetings(alg, nil)
		r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed, true)
		r.Run(60000)
		if !r.Engine.Terminal() {
			t.Fatalf("seed %d: CC2 did not quiesce under infinite meetings", seed)
		}
		meetings := alg.Meetings(r.Config())
		if len(meetings) < bound {
			t.Fatalf("seed %d: quiescent meetings %v below Theorem 5 bound %d", seed, meetings, bound)
		}
		if !h.IsMatching(meetings) {
			t.Fatalf("seed %d: quiescent meetings %v not a matching", seed, meetings)
		}
	}
}

func TestEnvClientLatching(t *testing.T) {
	c := core.NewAlwaysClient(2, 3)
	cfg := []core.State{{S: core.Done}, {S: core.Looking}}
	for i := 0; i < 3; i++ {
		c.Update(cfg, i)
		if c.RequestOut(0) {
			t.Fatalf("RequestOut fired after only %d done-steps, quota 3", i+1)
		}
	}
	c.Update(cfg, 3)
	if !c.RequestOut(0) {
		t.Fatal("RequestOut should fire after quota exceeded")
	}
	// Latched while done.
	c.Update(cfg, 4)
	if !c.RequestOut(0) {
		t.Fatal("RequestOut must latch while done")
	}
	// Reset on leaving.
	cfg[0].S = core.Idle
	c.Update(cfg, 5)
	if c.RequestOut(0) {
		t.Fatal("RequestOut must reset when idle")
	}
	if !c.RequestIn(0) {
		t.Fatal("always client must request in")
	}
}

func TestEnvProbabilisticRequestIn(t *testing.T) {
	c := core.NewClient(1, 0.5, 1, 1, 42)
	cfg := []core.State{{S: core.Idle}}
	fired := false
	for i := 0; i < 100 && !fired; i++ {
		c.Update(cfg, i)
		fired = c.RequestIn(0)
	}
	if !fired {
		t.Fatal("probabilistic client should eventually request in")
	}
	// Latch until no longer idle.
	c.Update(cfg, 101)
	if !c.RequestIn(0) {
		t.Fatal("RequestIn must latch while idle")
	}
}

func TestRunnerEventAccounting(t *testing.T) {
	r := newRunner(core.CC1, hypergraph.CommitteePath(4), 8, false)
	var convs, terms int
	r.OnConvene(func(step, e int) { convs++ })
	r.OnTerminate(func(step, e int) { terms++ })
	r.Run(3000)
	if convs != r.TotalConvenes() {
		t.Fatalf("callback convene count %d != stat %d", convs, r.TotalConvenes())
	}
	if terms > convs || convs-terms > r.Alg.H.M() {
		t.Fatalf("implausible convene/terminate counts: %d/%d", convs, terms)
	}
	if r.PeakConcurrency < 1 {
		t.Fatal("no concurrency observed")
	}
	if r.MeanConcurrency() <= 0 {
		t.Fatal("mean concurrency should be positive")
	}
}

func TestExclusionInvariantProperty(t *testing.T) {
	// Lemma 1: exclusion holds in every reachable configuration — even
	// the arbitrary initial ones, by the pointer construction.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(4)
		h := hypergraph.RandomMixed(n, n-1+rng.Intn(4), 3, rng)
		variant := []core.Variant{core.CC1, core.CC2, core.CC3}[rng.Intn(3)]
		r := newRunner(variant, h, seed, true)
		chk := r.Checker(0)
		r.Run(400)
		return len(chk.ByKind(spec.KindExclusion)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStateCloneDeep(t *testing.T) {
	s := core.State{S: core.Waiting, P: 2, T: true}
	s.TC.Lid = 5
	c := s.Clone()
	c.TC.Lid = 9
	c.P = 7
	if s.TC.Lid != 5 || s.P != 2 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[core.Status]string{
		core.Idle: "idle", core.Looking: "looking", core.Waiting: "waiting", core.Done: "done",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if core.Variant(9).String() == "" || core.CC1.String() != "CC1" {
		t.Fatal("Variant.String broken")
	}
}
