package core

import "math/bits"

// FieldDomains describes the value domain of every field of process p's
// composed CC ∘ TC state, as cardinalities (plus the status offset).
// Like EnumStates, this lives next to the algorithms so that a change
// to a variable or its domain updates the exhaustive checker's binary
// state codec in the same place. The explorer derives fixed per-field
// bit budgets from these cardinalities; any encoded value outside its
// domain is a codec bug and panics there.
//
// Domain catalogue (deg is |N(p)| in G_H, edeg is |E_p|, n is |V|):
//
//	S       statuses the variant admits (CC1: idle..done; CC2/CC3: looking..done)
//	P       E_p ∪ {⊥}
//	T, L    booleans
//	R       [0, max(1, edeg)) — CC3 keeps the cursor normalized mod |E_p|
//	TC.Lid  one of the n identifiers
//	TC.Dist [0, n] (bestLE bounds believed distances below n; faults may
//	        leave n itself, see token.RandomState)
//	TC.Parent, TC.Des  N(p) ∪ {-1}
//	TC.Vis  [0, deg]
//	TC.A, TC.C  booleans; TC.H ∈ {Hold, Sent}
type FieldDomains struct {
	StatusLo Status // smallest admissible status value
	Status   int    // number of admissible statuses
	Pointer  int    // |E_p| + 1 (⊥ first)
	Cursor   int    // max(1, |E_p|)
	Lid      int    // n
	Dist     int    // n + 1
	Parent   int    // deg + 1 (-1 first)
	Vis      int    // deg + 1
	Des      int    // deg + 1 (-1 first)
}

// Domains returns the per-field domains of process p's composed state.
func (a *Alg) Domains(p int) FieldDomains {
	n := a.H.N()
	deg := len(a.H.Neighbors(p))
	edeg := len(a.H.EdgesOf(p))
	d := FieldDomains{
		StatusLo: Looking,
		Status:   3,
		Pointer:  edeg + 1,
		Cursor:   max(1, edeg),
		Lid:      n,
		Dist:     n + 1,
		Parent:   deg + 1,
		Vis:      deg + 1,
		Des:      deg + 1,
	}
	if a.Variant == CC1 {
		d.StatusLo, d.Status = Idle, 4
	}
	return d
}

// BitWidth returns the number of bits needed to address card distinct
// values. A singleton domain needs zero bits: the codec then stores
// nothing and decoding restores the single admissible value.
func BitWidth(card int) int {
	if card <= 1 {
		return 0
	}
	return bits.Len(uint(card - 1))
}
