package core

// EnumStates enumerates the CC-layer state domain of process p over the
// stabilized token layer: every status the variant admits, every
// pointer in E_p ∪ {⊥}, and — with full — both values of the
// token-mirror bit T_p and (for CC2/CC3, which read it) the lock bit
// L_p. The round-robin cursor R stays 0: CC3 normalizes it modulo
// |E_p|, so distinct raw values collapse to the same behaviour.
//
// This is the "transient faults hit the committee layer" configuration
// family the exhaustive checker (internal/explore) seeds; keeping the
// domain definition here means a change to the variant's variables or
// their domains updates the verifier's initial space in the same place.
func (a *Alg) EnumStates(p int, full bool) []State {
	base := a.LegitState(p)
	statuses := []Status{Looking, Waiting, Done}
	if a.Variant == CC1 {
		statuses = append([]Status{Idle}, statuses...)
	}
	pointers := append([]int{NoEdge}, a.H.EdgesOf(p)...)
	bools := []bool{false}
	if full {
		bools = []bool{false, true}
	}
	locks := bools
	if a.Variant == CC1 {
		locks = []bool{false} // L_p is not read by CC1
	}
	out := make([]State, 0, len(statuses)*len(pointers)*len(bools)*len(locks))
	for _, s := range statuses {
		for _, ptr := range pointers {
			for _, t := range bools {
				for _, l := range locks {
					st := base
					st.S, st.P, st.T, st.L = s, ptr, t, l
					out = append(out, st)
				}
			}
		}
	}
	return out
}
