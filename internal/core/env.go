package core

import (
	"math/rand"
)

// Env supplies the paper's input predicates RequestIn(p) and
// RequestOut(p) (§4.1). The predicates must be stable within a step; the
// Runner calls Update after every engine step (and once initially) so an
// Env may evolve its answers between steps based on the configuration.
//
// Required semantics (§4.2):
//   - RequestIn(p) holds when professor p requests to participate;
//   - once p is in a meeting (or stuck in a terminated one),
//     RequestOut(p) eventually holds, and once true it remains true
//     until p leaves.
type Env interface {
	RequestIn(p int) bool
	RequestOut(p int) bool
	Update(cfg []State, step int)
}

// EnvTracker is an optional Env refinement for the incremental engine:
// Changed reports the processes whose RequestIn/RequestOut answers may
// have flipped during the last Update call (the slice is valid until the
// next Update). The algorithms read Env predicates of p only from p's own
// guards, so the Runner marks exactly those processes dirty. Envs that
// cannot track changes simply omit the interface and the Runner falls
// back to invalidating the whole enabled-set cache after each update —
// always correct, just slower.
type EnvTracker interface {
	Env
	Changed() []int
}

// Client is the standard professor behaviour: each professor requests a
// meeting with probability ProbIn per step while idle (1 = the
// always-requesting assumption of §5), and requests out after spending a
// per-meeting voluntary-discussion time drawn from [MinDisc, MaxDisc]
// steps in the done status.
type Client struct {
	N       int
	ProbIn  float64
	MinDisc int // >= 0 extra done-steps before RequestOut
	MaxDisc int // >= MinDisc

	rng     *rand.Rand
	in      []bool
	out     []bool
	doneAge []int
	quota   []int // current meeting's drawn discussion duration
	changed []int // processes whose predicates flipped in the last Update
}

// NewClient builds a Client. Seed controls the private randomness
// (discussion durations, request arrivals), independent of the engine's.
func NewClient(n int, probIn float64, minDisc, maxDisc int, seed int64) *Client {
	if maxDisc < minDisc {
		maxDisc = minDisc
	}
	c := &Client{
		N: n, ProbIn: probIn, MinDisc: minDisc, MaxDisc: maxDisc,
		rng:     rand.New(rand.NewSource(seed)),
		in:      make([]bool, n),
		out:     make([]bool, n),
		doneAge: make([]int, n),
		quota:   make([]int, n),
	}
	for p := 0; p < n; p++ {
		c.quota[p] = c.draw()
		c.in[p] = probIn >= 1
	}
	return c
}

// NewAlwaysClient is the §5 environment: professors wait for meetings
// infinitely often and discuss for exactly disc steps.
func NewAlwaysClient(n, disc int) *Client {
	return NewClient(n, 1, disc, disc, 1)
}

func (c *Client) draw() int {
	if c.MaxDisc == c.MinDisc {
		return c.MinDisc
	}
	return c.MinDisc + c.rng.Intn(c.MaxDisc-c.MinDisc+1)
}

// RequestIn implements Env.
func (c *Client) RequestIn(p int) bool { return c.in[p] }

// RequestOut implements Env.
func (c *Client) RequestOut(p int) bool { return c.out[p] }

// Update implements Env.
func (c *Client) Update(cfg []State, _ int) {
	c.changed = c.changed[:0]
	for p := 0; p < c.N; p++ {
		oldIn, oldOut := c.in[p], c.out[p]
		if cfg[p].S == Done {
			c.doneAge[p]++
			if c.doneAge[p] > c.quota[p] {
				c.out[p] = true // latched while in the done status
			}
		} else {
			if c.doneAge[p] > 0 { // left a meeting: draw the next duration
				c.quota[p] = c.draw()
			}
			c.doneAge[p] = 0
			c.out[p] = false
		}
		if cfg[p].S == Idle {
			if !c.in[p] && c.rng.Float64() < c.ProbIn {
				c.in[p] = true
			}
		} else {
			c.in[p] = c.ProbIn >= 1 // re-arm immediately for always-requesting
		}
		if c.in[p] != oldIn || c.out[p] != oldOut {
			c.changed = append(c.changed, p)
		}
	}
}

// Changed implements EnvTracker.
func (c *Client) Changed() []int { return c.changed }

// InfiniteMeetings is the adversarial environment used to *define*
// Maximal Concurrency (Definition 2) and the Degree of Fair Concurrency
// (Definition 5): once a meeting convenes it never ends — RequestOut(p)
// holds only when p is stuck done in an already-terminated meeting
// (§4.2's formalization). Professors in Only (or all, if Only is nil)
// request meetings.
type InfiniteMeetings struct {
	Alg  *Alg
	Only []int // professors allowed to request in; nil = all

	in      []bool
	out     []bool
	changed []int
}

// NewInfiniteMeetings builds the environment for alg.
func NewInfiniteMeetings(alg *Alg, only []int) *InfiniteMeetings {
	n := alg.H.N()
	e := &InfiniteMeetings{Alg: alg, Only: only, in: make([]bool, n), out: make([]bool, n)}
	for p := 0; p < n; p++ {
		e.in[p] = only == nil
	}
	for _, p := range only {
		e.in[p] = true
	}
	return e
}

// RequestIn implements Env.
func (e *InfiniteMeetings) RequestIn(p int) bool { return e.in[p] }

// RequestOut implements Env.
func (e *InfiniteMeetings) RequestOut(p int) bool { return e.out[p] }

// Update implements Env.
func (e *InfiniteMeetings) Update(cfg []State, _ int) {
	e.changed = e.changed[:0]
	for p := range e.out {
		// §4.2: if S_p = done but ¬Meeting(p), the meeting is already
		// terminated, so RequestOut(p) eventually holds; if p is involved
		// in a (live) meeting, it never ends.
		out := cfg[p].S == Done && !e.Alg.Meeting(cfg, p)
		if out != e.out[p] {
			e.out[p] = out
			e.changed = append(e.changed, p)
		}
	}
}

// Changed implements EnvTracker.
func (e *InfiniteMeetings) Changed() []int { return e.changed }

// Scripted is a fully scripted environment for trace replays (Figure 3):
// the test driver sets In/Out directly between steps.
type Scripted struct {
	In  []bool
	Out []bool
}

// NewScripted builds an all-false scripted environment for n professors.
func NewScripted(n int) *Scripted {
	return &Scripted{In: make([]bool, n), Out: make([]bool, n)}
}

// RequestIn implements Env.
func (s *Scripted) RequestIn(p int) bool { return s.In[p] }

// RequestOut implements Env.
func (s *Scripted) RequestOut(p int) bool { return s.Out[p] }

// Update implements Env (no-op; the driver mutates In/Out directly).
func (s *Scripted) Update([]State, int) {}
