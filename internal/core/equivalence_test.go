package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// The incremental enabled-set engine must be observationally identical
// to the full-rescan path: same Exec trace step for step, same
// configurations, same round accounting — across every daemon, every
// algorithm variant, random initial configurations and many seeds. This
// is the soundness witness for the Locality declaration in
// (*Alg).Program and for the EnvTracker-based cache invalidation.

func equivDaemons() []struct {
	name string
	mk   func() sim.Daemon
} {
	return []struct {
		name string
		mk   func() sim.Daemon
	}{
		{"synchronous", func() sim.Daemon { return sim.Synchronous{} }},
		{"central-rr", func() sim.Daemon { return &sim.Central{} }},
		{"central-random", func() sim.Daemon { return sim.CentralRandom{} }},
		{"random-subset", func() sim.Daemon { return sim.RandomSubset{P: 0.4} }},
		{"weakly-fair", func() sim.Daemon { return &sim.WeaklyFair{MaxAge: 5} }},
	}
}

// tracedRunner builds a Runner over its own Alg/Env instances (so the
// pair share nothing) and records every step's executions.
func tracedRunner(variant core.Variant, h *hypergraph.H, d sim.Daemon, seed int64, noLocality bool, trace *[][]sim.Exec) *core.Runner {
	alg := core.New(variant, h, nil)
	alg.NoLocality = noLocality
	env := core.NewClient(h.N(), 1, 1, 3, seed+1000)
	r := core.NewRunner(alg, d, env, seed, true)
	r.Engine.Observe(func(step int, cfg []core.State, execs []sim.Exec) {
		*trace = append(*trace, append([]sim.Exec(nil), execs...))
	})
	return r
}

func TestIncrementalTraceEquivalence(t *testing.T) {
	h := hypergraph.Figure1()
	steps := 300
	for _, variant := range []core.Variant{core.CC1, core.CC2, core.CC3} {
		for _, d := range equivDaemons() {
			for seed := int64(1); seed <= 10; seed++ {
				name := fmt.Sprintf("%v/%s/seed%d", variant, d.name, seed)
				var tFull, tIncr [][]sim.Exec
				full := tracedRunner(variant, h, d.mk(), seed, true, &tFull)
				incr := tracedRunner(variant, h, d.mk(), seed, false, &tIncr)
				full.Run(steps)
				incr.Run(steps)
				if !reflect.DeepEqual(tFull, tIncr) {
					for i := range tFull {
						if i >= len(tIncr) || !reflect.DeepEqual(tFull[i], tIncr[i]) {
							t.Fatalf("%s: traces diverge at step %d: full=%v incr=%v", name, i+1, at(tFull, i), at(tIncr, i))
						}
					}
					t.Fatalf("%s: incremental trace has %d extra steps", name, len(tIncr)-len(tFull))
				}
				if !reflect.DeepEqual(full.Config(), incr.Config()) {
					t.Fatalf("%s: final configurations diverge", name)
				}
				if full.Engine.Rounds() != incr.Engine.Rounds() {
					t.Fatalf("%s: rounds diverge: full=%d incr=%d", name, full.Engine.Rounds(), incr.Engine.Rounds())
				}
				if full.TotalConvenes() != incr.TotalConvenes() {
					t.Fatalf("%s: convene counts diverge", name)
				}
			}
		}
	}
}

func at(tr [][]sim.Exec, i int) any {
	if i < len(tr) {
		return tr[i]
	}
	return "<missing>"
}

// TestIncrementalEquivalenceAcrossTopologies widens the topology set at a
// reduced seed count (the weakly fair daemon is the default throughout
// the experiments, so it gets the coverage).
func TestIncrementalEquivalenceAcrossTopologies(t *testing.T) {
	for _, h := range []*hypergraph.H{
		hypergraph.CommitteeRing(8),
		hypergraph.CommitteePath(7),
		hypergraph.Figure3(),
		hypergraph.Star(6),
	} {
		for _, variant := range []core.Variant{core.CC1, core.CC2} {
			for seed := int64(1); seed <= 3; seed++ {
				var tFull, tIncr [][]sim.Exec
				full := tracedRunner(variant, h, &sim.WeaklyFair{MaxAge: 5}, seed, true, &tFull)
				incr := tracedRunner(variant, h, &sim.WeaklyFair{MaxAge: 5}, seed, false, &tIncr)
				full.Run(400)
				incr.Run(400)
				if !reflect.DeepEqual(tFull, tIncr) {
					t.Fatalf("%v/%s/seed%d: traces diverge", variant, h, seed)
				}
				if !reflect.DeepEqual(full.Config(), incr.Config()) {
					t.Fatalf("%v/%s/seed%d: final configurations diverge", variant, h, seed)
				}
			}
		}
	}
}

// TestIncrementalEquivalenceUnderFaults injects identical mid-run
// corruption into both engines (MutateProc forces the incremental path
// onto its full-rescan fallback) and requires the suffixes to match.
func TestIncrementalEquivalenceUnderFaults(t *testing.T) {
	h := hypergraph.Figure1()
	for seed := int64(1); seed <= 5; seed++ {
		var tFull, tIncr [][]sim.Exec
		full := tracedRunner(core.CC2, h, &sim.WeaklyFair{MaxAge: 5}, seed, true, &tFull)
		incr := tracedRunner(core.CC2, h, &sim.WeaklyFair{MaxAge: 5}, seed, false, &tIncr)
		corrupt := func(r *core.Runner) {
			// Deterministic corruption: same states injected on each side.
			r.Engine.MutateProc(2, func(s *core.State) {
				s.S, s.P, s.T, s.L = core.Waiting, 1, true, true
				s.TC.A, s.TC.H = true, 0
			})
			r.Engine.MutateProc(4, func(s *core.State) {
				s.S, s.P = core.Done, 0
				s.TC.Lid, s.TC.Dist = -7, 2
			})
		}
		for phase := 0; phase < 3; phase++ {
			full.Run(150)
			incr.Run(150)
			corrupt(full)
			corrupt(incr)
		}
		full.Run(150)
		incr.Run(150)
		if !reflect.DeepEqual(tFull, tIncr) {
			t.Fatalf("seed %d: traces diverge under fault injection", seed)
		}
		if !reflect.DeepEqual(full.Config(), incr.Config()) {
			t.Fatalf("seed %d: final configurations diverge under fault injection", seed)
		}
	}
}
