package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// Run the fair snap-stabilizing algorithm CC2 ∘ TC on a small committee
// ring and observe professor fairness. Deterministic given the seed.
func Example() {
	h := hypergraph.CommitteeRing(4) // committees {0,1},{1,2},{2,3},{3,0}
	alg := core.New(core.CC2, h, nil)
	env := core.NewAlwaysClient(h.N(), 1)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 7, false)
	r.Run(3000)
	fmt.Println("every professor met:", r.MinProfMeetings() > 0)
	fmt.Println("exclusion held:", h.IsMatching(alg.Meetings(r.Config())))
	// Output:
	// every professor met: true
	// exclusion held: true
}

// Starting from an arbitrary (corrupted) configuration — the
// snap-stabilization setting — the runtime monitors accept every meeting
// convened during the run.
func Example_snapStabilization() {
	h := hypergraph.Figure1()
	alg := core.New(core.CC1, h, nil)
	env := core.NewAlwaysClient(h.N(), 2)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 13, true /* random init */)
	monitor := r.Checker(0)
	r.Run(2000)
	fmt.Println("meetings convened:", r.TotalConvenes() > 0)
	fmt.Println("violations:", len(monitor.Violations))
	// Output:
	// meetings convened: true
	// violations: 0
}
