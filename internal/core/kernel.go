package core

import (
	"fmt"
	"math/rand"

	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/token"
)

// This file is the batch/SoA guard kernel for CC ∘ TC: a
// sim.BatchKernel that evaluates every guard of a configuration in one
// columnar pass instead of walking the action list's guard closures per
// process. The committee-layer predicates (Ready, Meeting, EdgeMeets,
// FreeEdges, LeaveMeeting, TPointingEdges) all quantify over the members
// of incident committees, so the scalar path re-derives the same member
// scans once per guard per process; the kernel instead gathers the S/P/
// T/L fields into struct-of-arrays columns and computes every per-edge
// predicate in a single member pass per edge, shared by all processes
// and all guards. The action *bodies* are not reimplemented: Apply runs
// the Program's own scalar bodies, so the kernel can only diverge from
// the scalar engine in guard selection — exactly what the FuzzBatchGuards
// target and the three-way differential battery pin down.
//
// Beyond sim.BatchKernel, the kernel implements the explorer's extended
// checker interface (see internal/explore): cached EdgeMeets/Correct
// vectors for the parent configuration, and merged-view PostMeets/
// PostCorrect/SpecNeutral for successor configurations, which read the
// recorded post-state S/P columns for selected processes and the parent
// columns for the rest — the batch counterpart of re-evaluating the spec
// predicates on a materialized successor.

// Kernel is the columnar guard evaluator for one Alg. Like the Alg's own
// predicate scratch it is single-goroutine state: one Kernel per worker.
type Kernel struct {
	alg  *Alg
	prog *sim.Program[State]
	rng  *rand.Rand
	h    *hypergraph.H
	n, m int

	// Action indices resolved by name at construction (the chooser
	// hardcodes the priority walk, so the program must be the unmutated
	// Alg.Program output — validated in NewKernel).
	cc1                                               bool
	aLock, aStep11, aStep12, aStep13, aStep14, aToken int
	aStep2, aStep3, aStep4, aStab                     int
	aStep1, aStep21, aStep22, aToken1, aToken2        int
	aStep31, aStep32, aStab1, aStab2                  int
	aTCLE, aTCNorm, aTCChainFix, aTCJoin, aTCResume   int

	// Static topology tables: isEdgeOf[p*m+e] ⟺ e ∈ E_p, and (CC2 with
	// min-size selection) isMin[p*m+e] ⟺ e ∈ MinEdges_p.
	isEdgeOf []bool
	isMin    []bool

	// Parent-configuration columns, gathered by Eval.
	colS []Status
	colP []int32
	colT []bool
	colL []bool

	// Per-edge predicates of the parent configuration, one member pass
	// per edge:
	//   meets[e]  — EdgeMeets: ∀q∈e: P_q=e ∧ S_q∈{waiting,done}
	//   readyE[e] — Ready witness: ∀q∈e: P_q=e ∧ S_q∈{looking,waiting}
	//   freeE[e]  — FreeEdges membership (CC1: ∀q: S_q=looking;
	//               CC2/CC3: ∀q: S_q=looking ∧ ¬L_q ∧ ¬T_q)
	//   exitE[e]  — LeaveMeeting member clause (CC1: ∀q: P_q≠e ∨ S_q=done;
	//               CC2/CC3: ∀q: P_q≠e ∨ S_q≠waiting)
	//   tPtE[e]   — TPointingEdges membership (CC2/CC3):
	//               ∃q∈e: P_q=e ∧ T_q ∧ S_q=looking
	meets, readyE, freeE, exitE, tPtE []bool

	// Per-process derived predicates (ORs over E_p plus the token bit
	// and the Correct value), and the chosen action per process.
	ready, meeting, lockedP, hasFree, tok, correct []bool
	acts                                           []int

	// Successor S/P columns recorded by Apply, and the selection mask
	// the merged Post* reads resolve against.
	postS   []Status
	postP   []int32
	selMask uint64
}

// NewKernel builds the columnar kernel for alg and its (unmutated)
// program. It panics if the action list does not match Alg.Program's
// layout — a mutated or foreign program must use the generic
// sim.NewProgramKernel instead, or the hardcoded guards would silently
// disagree with the program's.
func NewKernel(alg *Alg, prog *sim.Program[State]) *Kernel {
	h := alg.H
	n, m := h.N(), h.M()
	if n > 64 {
		panic(fmt.Sprintf("core: NewKernel over %d processes (max 64)", n))
	}
	k := &Kernel{
		alg: alg, prog: prog, rng: rand.New(rand.NewSource(1)),
		h: h, n: n, m: m, cc1: alg.Variant == CC1,
		isEdgeOf: make([]bool, n*m),
		colS:     make([]Status, n),
		colP:     make([]int32, n),
		colT:     make([]bool, n),
		colL:     make([]bool, n),
		meets:    make([]bool, m),
		readyE:   make([]bool, m),
		freeE:    make([]bool, m),
		exitE:    make([]bool, m),
		tPtE:     make([]bool, m),
		ready:    make([]bool, n),
		meeting:  make([]bool, n),
		lockedP:  make([]bool, n),
		hasFree:  make([]bool, n),
		tok:      make([]bool, n),
		correct:  make([]bool, n),
		acts:     make([]int, n),
		postS:    make([]Status, n),
		postP:    make([]int32, n),
	}
	for p := 0; p < n; p++ {
		for _, e := range h.EdgesOf(p) {
			k.isEdgeOf[p*m+e] = true
		}
	}
	if !k.cc1 && alg.Variant == CC2 && !alg.NoMinSize {
		k.isMin = make([]bool, n*m)
		for p := 0; p < n; p++ {
			for _, e := range h.MinEdges(p) {
				k.isMin[p*m+e] = true
			}
		}
	}
	idx := func(name string) int {
		for i, a := range prog.Actions {
			if a.Name == name {
				return i
			}
		}
		panic(fmt.Sprintf("core: NewKernel: program has no %q action (mutated or foreign program; use sim.NewProgramKernel)", name))
	}
	want := 15
	if len(prog.Actions) != want {
		panic(fmt.Sprintf("core: NewKernel: program has %d actions, want %d (mutated or foreign program; use sim.NewProgramKernel)", len(prog.Actions), want))
	}
	k.aTCResume, k.aTCJoin, k.aTCChainFix = idx("TC-Resume"), idx("TC-Join"), idx("TC-ChainFix")
	k.aTCNorm, k.aTCLE = idx("TC-Norm"), idx("TC-LE")
	if k.cc1 {
		k.aStep1, k.aStep21, k.aStep22 = idx("Step1"), idx("Step21"), idx("Step22")
		k.aToken1, k.aToken2 = idx("Token1"), idx("Token2")
		k.aStep31, k.aStep32, k.aStep4 = idx("Step31"), idx("Step32"), idx("Step4")
		k.aStab1, k.aStab2 = idx("Stab1"), idx("Stab2")
	} else {
		k.aLock, k.aStep11, k.aStep12 = idx("Lock"), idx("Step11"), idx("Step12")
		k.aStep13, k.aStep14, k.aToken = idx("Step13"), idx("Step14"), idx("Token")
		k.aStep2, k.aStep3, k.aStep4 = idx("Step2"), idx("Step3"), idx("Step4")
		k.aStab = idx("Stab")
	}
	return k
}

// inEp reports e ∈ E_p for an arbitrary (possibly corrupt) edge value.
func (k *Kernel) inEp(p int, e int32) bool {
	return e >= 0 && int(e) < k.m && k.isEdgeOf[p*k.m+int(e)]
}

// Eval gathers the configuration into columns, computes every per-edge
// and per-process predicate, and resolves each process's highest-
// priority enabled action (sim.BatchKernel).
func (k *Kernel) Eval(cfg []State) uint64 {
	h := k.h
	for p := 0; p < k.n; p++ {
		s := &cfg[p]
		k.colS[p] = s.S
		k.colP[p] = int32(s.P)
		k.colT[p] = s.T
		k.colL[p] = s.L
		k.tok[p] = s.TC.A && s.TC.H == token.Hold // token.Module.HasToken
	}
	// One member pass per edge computes all per-edge predicates.
	for e := 0; e < k.m; e++ {
		ee := int32(e)
		mt, rd, fr, ex := true, true, true, true
		tp := false
		for _, q := range h.Edge(e) {
			s, ptr := k.colS[q], k.colP[q]
			at := ptr == ee
			if !at || (s != Waiting && s != Done) {
				mt = false
			}
			if !at || (s != Looking && s != Waiting) {
				rd = false
			}
			if k.cc1 {
				if s != Looking {
					fr = false
				}
				if at && s != Done {
					ex = false
				}
			} else {
				if s != Looking || k.colL[q] || k.colT[q] {
					fr = false
				}
				if at && s == Waiting {
					ex = false
				}
				if at && k.colT[q] && s == Looking {
					tp = true
				}
			}
		}
		k.meets[e], k.readyE[e], k.freeE[e], k.exitE[e], k.tPtE[e] = mt, rd, fr, ex, tp
	}
	// Per-process ORs over E_p, then Correct from the cached edge bits.
	var enabled uint64
	for p := 0; p < k.n; p++ {
		rd, mt, fr, lk := false, false, false, false
		for _, e := range h.EdgesOf(p) {
			rd = rd || k.readyE[e]
			mt = mt || k.meets[e]
			fr = fr || k.freeE[e]
			lk = lk || k.tPtE[e]
		}
		k.ready[p], k.meeting[p], k.hasFree[p], k.lockedP[p] = rd, mt, fr, lk
		k.correct[p] = k.correctCached(p)
	}
	for p := 0; p < k.n; p++ {
		var a int
		if k.cc1 {
			a = k.choose1(cfg, p)
		} else {
			a = k.choose2(cfg, p)
		}
		k.acts[p] = a
		if a >= 0 {
			enabled |= uint64(1) << p
		}
	}
	return enabled
}

// correctCached evaluates Correct(p) for the parent configuration from
// the per-edge bitsets (Correct1/Correct2 read only S and P, which the
// edge pass has already folded into meets/readyE/exitE).
func (k *Kernel) correctCached(p int) bool {
	ptr := k.colP[p]
	switch k.colS[p] {
	case Idle:
		if k.cc1 {
			return ptr == NoEdge
		}
		return false // idle does not exist in CC2/CC3; treat as corrupt
	case Waiting:
		return k.ready[p] || k.meeting[p]
	case Done:
		// LeaveMeeting: P_p ∈ E_p and every member has left or finished
		// (exitE holds the variant's member clause).
		return k.meeting[p] || (k.inEp(p, ptr) && k.exitE[ptr])
	}
	return true
}

// choose2 resolves CC2/CC3's highest-priority enabled action for p,
// walking the same priority order as sim's enabledAction over
// Alg.Program: Stab > TC-LE > TC-Norm > TC-ChainFix > TC-Join >
// TC-Resume > Step4 > Step3 > Step2 > Token > Step14 > Step13 > Step12 >
// Step11 > Lock. Returns -1 if p is disabled.
func (k *Kernel) choose2(cfg []State, p int) int {
	a := k.alg
	if !k.correct[p] {
		return k.aStab
	}
	v := a.tcView(cfg)
	tc := a.TC
	switch {
	case tc.LeaderEnabled(v, p):
		return k.aTCLE
	case tc.NormEnabled(v, p):
		return k.aTCNorm
	case tc.ChainFixEnabled(v, p):
		return k.aTCChainFix
	case tc.JoinEnabled(v, p):
		return k.aTCJoin
	case tc.ResumeEnabled(v, p):
		return k.aTCResume
	}
	s, ptr := k.colS[p], k.colP[p]
	// Step4 — LeaveMeeting(p) ∧ RequestOut(p).
	if s == Done && k.inEp(p, ptr) && k.exitE[ptr] && a.Env.RequestOut(p) {
		return k.aStep4
	}
	if k.meeting[p] && s == Waiting {
		return k.aStep3
	}
	if k.ready[p] && s == Looking {
		return k.aStep2
	}
	if k.tok[p] != k.colT[p] {
		return k.aToken
	}
	// Step14/Step13 share ¬Token ∧ ¬Locked ∧ FreeEdges≠∅ ∧ ¬Ready and
	// split on LocalMax (mutually exclusive, so evaluating the matching
	// one first is priority-faithful).
	if !k.tok[p] && !k.lockedP[p] && k.hasFree[p] && !k.ready[p] {
		mx := k.maxFreeNode2(p)
		if mx == p {
			// Step13 — MaxToFreeEdge: P_p ∉ FreeEdges_p.
			if !(k.inEp(p, ptr) && k.freeE[ptr]) {
				return k.aStep13
			}
		} else {
			// Step14 — JoinLocalMax: the local max's pointer is one of
			// p's free edges and differs from P_p.
			if t := k.colP[mx]; k.inEp(p, t) && k.freeE[t] && ptr != t {
				return k.aStep14
			}
		}
	}
	// Step12 — JoinTokenHolder: ¬Token ∧ looking ∧ ¬Ready ∧ Locked ∧
	// P_p ∉ TPointingEdges_p.
	if !k.tok[p] && s == Looking && !k.ready[p] && k.lockedP[p] && !(k.inEp(p, ptr) && k.tPtE[ptr]) {
		return k.aStep12
	}
	// Step11 — TokenHolderToEdge: Token ∧ looking ∧ ¬Ready ∧ tokenWants.
	if k.tok[p] && s == Looking && !k.ready[p] && k.tokenWants(cfg, p) {
		return k.aStep11
	}
	if k.lockedP[p] != k.colL[p] {
		return k.aLock
	}
	return -1
}

// choose1 resolves CC1's highest-priority enabled action for p: Stab2 >
// Stab1 > TC-LE > TC-Norm > TC-ChainFix > TC-Join > TC-Resume > Step4 >
// Step32 > Step31 > Token2 > Token1 > Step22 > Step21 > Step1.
func (k *Kernel) choose1(cfg []State, p int) int {
	a := k.alg
	s, ptr := k.colS[p], k.colP[p]
	if !k.correct[p] {
		// Stab2 (S≠idle) and Stab1 (S=idle) partition ¬Correct.
		if s != Idle {
			return k.aStab2
		}
		return k.aStab1
	}
	v := a.tcView(cfg)
	tc := a.TC
	switch {
	case tc.LeaderEnabled(v, p):
		return k.aTCLE
	case tc.NormEnabled(v, p):
		return k.aTCNorm
	case tc.ChainFixEnabled(v, p):
		return k.aTCChainFix
	case tc.JoinEnabled(v, p):
		return k.aTCJoin
	case tc.ResumeEnabled(v, p):
		return k.aTCResume
	}
	// Step4 — LeaveMeeting(p) ∧ RequestOut(p). CC1's LeaveMeeting has no
	// status requirement on p itself.
	if k.inEp(p, ptr) && k.exitE[ptr] && a.Env.RequestOut(p) {
		return k.aStep4
	}
	if k.meeting[p] && s == Waiting {
		return k.aStep32
	}
	if k.ready[p] && s == Looking {
		return k.aStep31
	}
	// Token2 — Useless(p): Token ∧ (idle ∨ (looking ∧ FreeEdges=∅)).
	if k.tok[p] && (s == Idle || (s == Looking && !k.hasFree[p])) {
		return k.aToken2
	}
	if k.tok[p] != k.colT[p] {
		return k.aToken1
	}
	// Step22/Step21 share FreeEdges≠∅ ∧ ¬Ready and split on LocalMax
	// over Cands_p (token-marked free nodes if any, else all free nodes).
	if k.hasFree[p] && !k.ready[p] {
		mc := k.maxCand1(p)
		if mc == p {
			// Step21 — MaxToFreeEdge: P_p ∉ FreeEdges_p.
			if !(k.inEp(p, ptr) && k.freeE[ptr]) {
				return k.aStep21
			}
		} else {
			// Step22 — JoinLocalMax.
			if t := k.colP[mc]; k.inEp(p, t) && k.freeE[t] && ptr != t {
				return k.aStep22
			}
		}
	}
	if a.Env.RequestIn(p) && s == Idle {
		return k.aStep1
	}
	return -1
}

// maxFreeNode2 returns the max-identifier member over p's free edges
// (CC2/CC3's max(FreeNodes_p); caller guarantees hasFree[p]). Strict >
// with first-wins ties matches Alg.maxByID over the dedup'd first-seen
// node order.
func (k *Kernel) maxFreeNode2(p int) int {
	h := k.h
	best, bestID := -1, -1
	for _, e := range h.EdgesOf(p) {
		if !k.freeE[e] {
			continue
		}
		for _, q := range h.Edge(e) {
			if id := h.ID(q); id > bestID {
				best, bestID = q, id
			}
		}
	}
	return best
}

// maxCand1 returns max(Cands_p) for CC1: the max-identifier token-
// marked free node if any free node has T set, else the max-identifier
// free node (caller guarantees hasFree[p]).
func (k *Kernel) maxCand1(p int) int {
	h := k.h
	best, bestID := -1, -1
	bestT, bestTID := -1, -1
	for _, e := range h.EdgesOf(p) {
		if !k.freeE[e] {
			continue
		}
		for _, q := range h.Edge(e) {
			id := h.ID(q)
			if id > bestID {
				best, bestID = q, id
			}
			if k.colT[q] && id > bestTID {
				bestT, bestTID = q, id
			}
		}
	}
	if bestT >= 0 {
		return bestT
	}
	return best
}

// tokenWants mirrors Alg.tokenWants from the columns: CC3 compares the
// pointer against the round-robin cursor's committee, CC2 against
// MinEdges_p (or E_p under NoMinSize).
func (k *Kernel) tokenWants(cfg []State, p int) bool {
	ep := k.h.EdgesOf(p)
	if len(ep) == 0 {
		return false
	}
	ptr := k.colP[p]
	if k.alg.Variant == CC3 {
		return int(ptr) != ep[normCursor(cfg[p].R, len(ep))]
	}
	if k.isMin == nil { // NoMinSize: P_p ∉ E_p
		return !k.inEp(p, ptr)
	}
	return !(ptr >= 0 && int(ptr) < k.m && k.isMin[p*k.m+int(ptr)])
}

// Action returns the chosen action for p after the last Eval
// (sim.BatchKernel).
func (k *Kernel) Action(p int) int { return k.acts[p] }

// Apply runs the chosen action's scalar body and records the successor
// S/P fields in the post columns for the merged Post* reads
// (sim.BatchKernel plus the explorer's checker contract).
func (k *Kernel) Apply(cfg []State, p int, next *State) {
	k.prog.Actions[k.acts[p]].Body(cfg, p, next, k.rng)
	k.postS[p] = next.S
	k.postP[p] = int32(next.P)
}

// --- Explorer checker interface ----------------------------------------------

// EdgeMeets reports whether committee e meets in the configuration of
// the last Eval (the cached spec.Probe.Meets vector).
func (k *Kernel) EdgeMeets(e int) bool { return k.meets[e] }

// Correct reports Correct(p) in the configuration of the last Eval.
func (k *Kernel) Correct(p int) bool { return k.correct[p] }

// SetSelection installs the selection mask the merged Post* reads
// resolve against: selected processes read their recorded post state,
// the rest the parent columns.
func (k *Kernel) SetSelection(mask uint64) { k.selMask = mask }

// SpecNeutral reports that p's applied action left S_p and P_p
// unchanged. The spec predicates the explorer re-evaluates per
// transition (EdgeMeets, Correct) read only S and P, so such a process
// cannot change any of their values — the Lock/Token mirror flips and
// every TC action are neutral, which on stabilized-token workloads is
// the majority of transitions.
func (k *Kernel) SpecNeutral(p int) bool {
	return k.postS[p] == k.colS[p] && k.postP[p] == k.colP[p]
}

// mSP reads process q's S/P under the current selection mask.
func (k *Kernel) mSP(q int) (Status, int32) {
	if k.selMask>>uint(q)&1 != 0 {
		return k.postS[q], k.postP[q]
	}
	return k.colS[q], k.colP[q]
}

// PostMeets evaluates EdgeMeets(e) in the successor selected by
// SetSelection.
func (k *Kernel) PostMeets(e int) bool {
	ee := int32(e)
	for _, q := range k.h.Edge(e) {
		s, ptr := k.mSP(q)
		if ptr != ee || (s != Waiting && s != Done) {
			return false
		}
	}
	return true
}

// PostCorrect evaluates Correct(q) in the successor selected by
// SetSelection.
func (k *Kernel) PostCorrect(q int) bool {
	s, ptr := k.mSP(q)
	switch s {
	case Idle:
		if k.cc1 {
			return ptr == NoEdge
		}
		return false
	case Waiting:
		return k.readyPost(q) || k.meetingPost(q)
	case Done:
		return k.meetingPost(q) || k.leavePost(q, ptr)
	}
	return true
}

func (k *Kernel) readyPost(q int) bool {
	for _, e := range k.h.EdgesOf(q) {
		ee := int32(e)
		all := true
		for _, x := range k.h.Edge(e) {
			s, ptr := k.mSP(x)
			if ptr != ee || (s != Looking && s != Waiting) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func (k *Kernel) meetingPost(q int) bool {
	for _, e := range k.h.EdgesOf(q) {
		if k.PostMeets(e) {
			return true
		}
	}
	return false
}

func (k *Kernel) leavePost(q int, ptr int32) bool {
	if !k.inEp(q, ptr) {
		return false
	}
	for _, x := range k.h.Edge(int(ptr)) {
		s, p2 := k.mSP(x)
		if k.cc1 {
			if p2 == ptr && s != Done {
				return false
			}
		} else {
			if p2 == ptr && s == Waiting {
				return false
			}
		}
	}
	return true
}
