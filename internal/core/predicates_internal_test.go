package core

// White-box unit tests for the macro and predicate formulas of
// Algorithms 1 and 2, checked against hand-built configurations of the
// paper's own examples. These pin the exact formula semantics the
// engine-level tests rely on.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/hypergraph"
)

// mkAlg builds an Alg without environment (predicates don't consult it).
func mkAlg(v Variant, h *hypergraph.H) *Alg { return New(v, h, nil) }

// blank returns an all-Looking configuration with no pointers.
func blank(n int) []State {
	cfg := make([]State, n)
	for i := range cfg {
		cfg[i] = State{S: Looking, P: NoEdge}
	}
	return cfg
}

func TestFreeEdges1(t *testing.T) {
	h := hypergraph.Figure1() // e0={0,1} e1={0,1,2,3} e2={1,3,4} e3={2,5} e4={3,5}
	a := mkAlg(CC1, h)
	cfg := blank(6)
	// Everyone looking: every edge is free.
	for p := 0; p < 6; p++ {
		if got := a.freeEdges1(cfg, p); !reflect.DeepEqual(got, h.EdgesOf(p)) {
			t.Fatalf("freeEdges1(%d) = %v, want %v", p, got, h.EdgesOf(p))
		}
	}
	// Professor 3 goes waiting: every edge containing 3 stops being free.
	cfg[3].S = Waiting
	want := map[int][]int{
		0: {0}, // e1 contains 3
		1: {0}, // e1, e2 contain 3
		2: {3}, // e1 contains 3
		3: nil, // all of 3's edges contain 3
		4: nil, // e2 contains 3
		5: {3}, // e4 contains 3
	}
	for p, w := range want {
		got := a.freeEdges1(cfg, p)
		if len(got) == 0 && len(w) == 0 {
			continue // scratch-backed result: empty vs nil is the same answer
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("freeEdges1(%d) after 3 waits = %v, want %v", p, got, w)
		}
	}
}

func TestCands1TokenPreference(t *testing.T) {
	h := hypergraph.Figure1()
	a := mkAlg(CC1, h)
	cfg := blank(6)
	// No token mirror set: Cands = FreeNodes of 0's free edges
	// (e0={0,1}, e1={0,1,2,3} — e2={1,3,4} is not incident to 0).
	if cands := a.cands1(cfg, 0); !reflect.DeepEqual(sortedCopy(cands), []int{0, 1, 2, 3}) {
		t.Fatalf("cands1(0) = %v, want {0,1,2,3}", cands)
	}
	// Without tokens, the identifier max of 0's candidate set is vertex 3
	// (id 4); vertex 0 itself is not a local max. Vertex 5 (id 6) is the
	// max of its own neighborhood {2,3,5}.
	if a.maxByID(a.cands1(cfg, 0)) != 3 || a.localMax1(cfg, 0) {
		t.Fatal("identifier max of Cands_0 must be vertex 3")
	}
	if !a.localMax1(cfg, 5) {
		t.Fatal("vertex 5 is the max of its own neighborhood")
	}
	// Token mirror at vertex 2: TFreeNodes = {2} takes precedence in every
	// neighborhood that can see it.
	cfg[2].T = true
	if got := a.cands1(cfg, 0); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("cands1 with T_2 = %v, want [2]", got)
	}
	if a.localMax1(cfg, 3) {
		t.Fatal("vertex 3 must defer to the free token holder in its neighborhood")
	}
	if !a.localMax1(cfg, 2) {
		t.Fatal("token holder must be the local max")
	}
	// Vertex 4's neighborhood (free edge e2={1,3,4}) cannot see vertex 2's
	// token: its Cands stay {1,3,4} and 4 is its own local max.
	if !a.localMax1(cfg, 4) {
		t.Fatal("token preference is per-neighborhood")
	}
}

func TestReadyMeetingLeaveMeeting1(t *testing.T) {
	h := hypergraph.Figure2() // e0={0,1} e1={0,2,4} e2={2,3}
	a := mkAlg(CC1, h)
	cfg := blank(5)

	// Ready: both members point e0, looking.
	cfg[0].P, cfg[1].P = 0, 0
	for _, p := range []int{0, 1} {
		if !a.Ready(cfg, p) {
			t.Fatalf("Ready(%d) should hold", p)
		}
	}
	if a.Meeting(cfg, 0) {
		t.Fatal("no meeting while members are looking")
	}

	// Meeting: members waiting.
	cfg[0].S, cfg[1].S = Waiting, Waiting
	if !a.Meeting(cfg, 0) || !a.EdgeMeets(cfg, 0) {
		t.Fatal("meeting should hold with members waiting+pointing")
	}
	// Ready still holds (looking-or-waiting).
	if !a.Ready(cfg, 0) {
		t.Fatal("Ready holds for waiting members too")
	}
	// LeaveMeeting requires everyone pointing to be done.
	if a.leaveMeeting1(cfg, 0) {
		t.Fatal("cannot leave before essential discussion")
	}
	cfg[0].S, cfg[1].S = Done, Done
	if !a.leaveMeeting1(cfg, 0) || !a.leaveMeeting1(cfg, 1) {
		t.Fatal("LeaveMeeting should hold with all pointing members done")
	}
	// One member departs: the other may still leave (P_q = ε ⇒ done).
	cfg[1].S, cfg[1].P = Idle, NoEdge
	if !a.leaveMeeting1(cfg, 0) {
		t.Fatal("LeaveMeeting holds after a member already left")
	}
	// But not with a pointer to an edge p is not in.
	cfg[0].P = 2 // e2 = {2,3}, vertex 0 not a member
	if a.leaveMeeting1(cfg, 0) {
		t.Fatal("LeaveMeeting must ignore non-incident pointers")
	}
}

func TestCorrect1Cases(t *testing.T) {
	h := hypergraph.Figure2()
	a := mkAlg(CC1, h)
	cfg := blank(5)

	// Looking is always correct, any pointer.
	cfg[0].P = 1
	if !a.Correct1(cfg, 0) {
		t.Fatal("looking must be correct")
	}
	// Idle with a pointer is incorrect.
	cfg[0].S, cfg[0].P = Idle, 1
	if a.Correct1(cfg, 0) {
		t.Fatal("idle with pointer must be incorrect")
	}
	cfg[0].P = NoEdge
	if !a.Correct1(cfg, 0) {
		t.Fatal("idle with ⊥ is correct")
	}
	// Waiting without Ready/Meeting is incorrect.
	cfg[0].S, cfg[0].P = Waiting, 0
	if a.Correct1(cfg, 0) {
		t.Fatal("waiting without support must be incorrect")
	}
	cfg[1].P = 0 // now Ready(0) holds
	if !a.Correct1(cfg, 0) {
		t.Fatal("waiting with Ready must be correct")
	}
	// Done with the partner gone entirely (P=⊥) is still correct — the
	// LeaveMeeting disjunct covers a terminated meeting.
	cfg[0].S, cfg[0].P = Done, 0
	cfg[1].S, cfg[1].P = Looking, NoEdge
	if !a.Correct1(cfg, 0) {
		t.Fatal("done in a terminated meeting satisfies LeaveMeeting")
	}
	// But done with a partner still pointing-and-looking is incorrect:
	// neither Meeting (partner not waiting/done) nor LeaveMeeting
	// (pointing partner not done).
	cfg[1].P = 0
	if a.Correct1(cfg, 0) {
		t.Fatal("done with a looking pointing partner must be incorrect")
	}
}

func TestUseless1(t *testing.T) {
	h := hypergraph.Figure2()
	a := mkAlg(CC1, h)
	cfg := blank(5)
	for p := range cfg {
		cfg[p].TC = a.TC.LegitState(p)
	}
	holder := a.TC.Holders(tcOf(cfg))[0]

	// Holder looking with free edges: not useless.
	if a.useless1(cfg, holder) {
		t.Fatal("holder with free edges is not useless")
	}
	// Holder idle: useless.
	cfg[holder].S = Idle
	cfg[holder].P = NoEdge
	if !a.useless1(cfg, holder) {
		t.Fatal("idle holder is useless")
	}
	// Holder looking but no free edges (everyone else busy): useless.
	cfg[holder].S = Looking
	for p := range cfg {
		if p != holder {
			cfg[p].S = Done
		}
	}
	if !a.useless1(cfg, holder) {
		t.Fatal("holder with no free edges is useless")
	}
	// Non-holders are never useless.
	for p := range cfg {
		if p != holder && a.useless1(cfg, p) {
			t.Fatalf("non-holder %d reported useless", p)
		}
	}
}

func TestCC2LockedAndTPointing(t *testing.T) {
	h := hypergraph.Figure4() // e0={0,1,4,7} e1={2,3,4} e2={5,6,8} e3={7,8}
	a := mkAlg(CC2, h)
	cfg := blank(9)
	// Token holder vertex 0 points e0 and mirrors T.
	cfg[0].P, cfg[0].T = 0, true
	// Members of e0 are locked; others are not.
	for _, p := range []int{0, 1, 4, 7} {
		if !a.locked(cfg, p) {
			t.Fatalf("member %d of the token committee must be locked", p)
		}
		if got := a.tPointingEdges(cfg, p); !reflect.DeepEqual(got, []int{0}) {
			t.Fatalf("tPointingEdges(%d) = %v", p, got)
		}
	}
	for _, p := range []int{2, 3, 5, 6, 8} {
		if a.locked(cfg, p) {
			t.Fatalf("non-member %d must not be locked", p)
		}
	}
	// Figure 4's point: once lock bits are published, {8,9} (e3) is not a
	// free edge for vertex 8, but {6,7,9} (e2) is.
	cfg[7].L = true // professor 8 publishes its lock
	free := a.freeEdges2(cfg, 8)
	if !reflect.DeepEqual(free, []int{2}) {
		t.Fatalf("freeEdges2(8) = %v, want [2] ({6,7,9})", free)
	}
	// The token holder itself never satisfies MaxToFreeEdge/JoinLocalMax.
	if a.maxToFreeEdge2(cfg, 0) || a.joinLocalMax2(cfg, 0) {
		t.Fatal("token-related guards must exclude the holder")
	}
}

func TestCC2JoinTokenTarget(t *testing.T) {
	h := hypergraph.Figure4()
	a := mkAlg(CC2, h)
	cfg := blank(9)
	cfg[0].P, cfg[0].T = 0, true // holder at vertex 0 points e0
	if e := a.joinTokenTarget(cfg, 1); e != 0 {
		t.Fatalf("joinTokenTarget(1) = %d, want e0", e)
	}
	// Two transient holders: the greater identifier wins. Vertex 7 (id 8)
	// claims e3.
	cfg[7].P, cfg[7].T = 3, true
	if e := a.joinTokenTarget(cfg, 8); e != 3 {
		t.Fatalf("joinTokenTarget(8) = %d, want e3 (holder id 8 > id 1)", e)
	}
	// Vertex 8 is in e2 and e3 but not e0; vertex 4 is in e0 and e1.
	if e := a.joinTokenTarget(cfg, 4); e != 0 {
		t.Fatalf("joinTokenTarget(4) = %d, want e0", e)
	}
	// A done holder does not attract joiners.
	cfg[7].S = Done
	if e := a.joinTokenTarget(cfg, 8); e != NoEdge {
		t.Fatalf("done holders must not attract: got %d", e)
	}
}

func TestCC2LeaveMeetingRequiresDoneSelf(t *testing.T) {
	h := hypergraph.Figure2()
	a := mkAlg(CC2, h)
	cfg := blank(5)
	cfg[0].P, cfg[1].P = 0, 0
	cfg[0].S, cfg[1].S = Done, Done
	if !a.leaveMeeting2(cfg, 0) {
		t.Fatal("LeaveMeeting2 should hold with all done")
	}
	// CC2's formula: members still waiting block the leave.
	cfg[1].S = Waiting
	if a.leaveMeeting2(cfg, 0) {
		t.Fatal("a waiting member blocks leaving")
	}
	// ... and the leaver itself must be done.
	cfg[0].S, cfg[1].S = Waiting, Done
	if a.leaveMeeting2(cfg, 0) {
		t.Fatal("only done professors may leave")
	}
}

func TestCC3CursorBehaviour(t *testing.T) {
	h := hypergraph.Figure1()
	a := mkAlg(CC3, h)
	cfg := blank(6)
	for p := range cfg {
		cfg[p].TC = a.TC.LegitState(p)
	}
	holder := a.TC.Holders(tcOf(cfg))[0] // vertex 0
	if holder != 0 {
		t.Fatalf("legit holder = %d, want 0", holder)
	}
	// Vertex 0's committees: e0={0,1}, e1={0,1,2,3}. The CC3 target is
	// E_p[R] regardless of committee size.
	cfg[0].R = 1
	if e := a.tokenTarget(cfg, 0, nil); e != 1 {
		t.Fatalf("CC3 target with R=1 is %d, want e1", e)
	}
	if !a.tokenWants(cfg, 0) {
		t.Fatal("holder should want to point at its cursor committee")
	}
	cfg[0].P = 1
	if a.tokenWants(cfg, 0) {
		t.Fatal("holder already points at the cursor committee")
	}
	// Corrupted cursors normalize.
	if normCursor(-7, 3) < 0 || normCursor(-7, 3) > 2 {
		t.Fatal("normCursor out of range")
	}
	if normCursor(5, 0) != 0 {
		t.Fatal("normCursor with no edges must be 0")
	}
	// CC2 on the same state targets the *smallest* committee (e0).
	a2 := mkAlg(CC2, h)
	cfg[0].P = NoEdge
	if e := a2.tokenTarget(cfg, 0, nil); e != 0 {
		t.Fatalf("CC2 target = %d, want min edge e0", e)
	}
}

func TestProgramActionOrder(t *testing.T) {
	// The composed program's priority structure: Stab last (highest), TC
	// block just below, CC actions in paper order below that.
	for _, v := range []Variant{CC1, CC2, CC3} {
		a := mkAlg(v, hypergraph.Figure1())
		a.Env = NewAlwaysClient(6, 1)
		prog := a.Program(false)
		names := make([]string, len(prog.Actions))
		for i, act := range prog.Actions {
			names[i] = act.Name
		}
		last := names[len(names)-1]
		if v == CC1 && last != "Stab2" {
			t.Fatalf("%v: last action = %s, want Stab2 (priority)", v, last)
		}
		if v != CC1 && last != "Stab" {
			t.Fatalf("%v: last action = %s, want Stab (priority)", v, last)
		}
		// TC-LE is directly below the Stab block.
		stabCount := 1
		if v == CC1 {
			stabCount = 2
		}
		if got := names[len(names)-stabCount-1]; got != "TC-LE" {
			t.Fatalf("%v: action below Stab = %s, want TC-LE", v, got)
		}
		if names[0] == "TC-Resume" {
			t.Fatalf("%v: TC actions must not be the lowest priority", v)
		}
	}
}

func TestRandomStateDomains(t *testing.T) {
	h := hypergraph.Figure1()
	for _, v := range []Variant{CC1, CC2, CC3} {
		a := mkAlg(v, h)
		rng := newRand(5)
		for i := 0; i < 200; i++ {
			for p := 0; p < h.N(); p++ {
				s := a.RandomState(p, rng)
				if v != CC1 && s.S == Idle {
					t.Fatalf("%v: random state produced idle", v)
				}
				if s.P != NoEdge && !containsEdge(h.EdgesOf(p), s.P) {
					t.Fatalf("pointer %d outside E_%d", s.P, p)
				}
				if m := len(h.EdgesOf(p)); m > 0 && (s.R < 0 || s.R >= m) {
					t.Fatalf("cursor %d outside [0,%d)", s.R, m)
				}
			}
		}
	}
}

func tcOf(cfg []State) []TokenState {
	out := make([]TokenState, len(cfg))
	for i := range cfg {
		out[i] = cfg[i].TC
	}
	return out
}

func sortedCopy(xs []int) []int {
	c := append([]int(nil), xs...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c
}
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
