package core

import (
	"repro/internal/sim"
	"repro/internal/spec"
)

// Probe adapts the algorithm to the spec monitors: the abstract
// predicates of §4.2 mapping the implementation statuses onto the
// original problem's professor states.
func (a *Alg) Probe() spec.Probe[State] {
	return spec.Probe[State]{
		H:     a.H,
		Meets: func(cfg []State, e int) bool { return a.EdgeMeets(cfg, e) },
		Waiting: func(cfg []State, p int) bool {
			return a.WaitingAbstract(cfg, p)
		},
		Done: func(cfg []State, p int) bool { return cfg[p].S == Done },
	}
}

// Checker builds a spec.Checker wired to a Runner: it validates the
// initial configuration and every subsequent step.
func (r *Runner) Checker(progressWindow int) *spec.Checker[State] {
	c := spec.NewChecker(r.Alg.Probe(), progressWindow)
	c.Check(0, r.Engine.Config())
	r.Engine.Observe(func(step int, cfg []State, _ []sim.Exec) {
		c.Check(step, cfg)
	})
	return c
}
