package core

import (
	"math/rand"

	"repro/internal/sim"
	"repro/internal/token"
)

// Correct dispatches to the variant's Correct(p) predicate (Lemmas 3/8:
// once Correct(p) holds it holds forever; Corollaries 3/5: it holds for
// every process after at most one round).
func (a *Alg) Correct(cfg []State, p int) bool {
	if a.Variant == CC1 {
		return a.Correct1(cfg, p)
	}
	return a.Correct2(cfg, p)
}

// AllCorrect reports whether every process satisfies Correct.
func (a *Alg) AllCorrect(cfg []State) bool {
	for p := range cfg {
		if !a.Correct(cfg, p) {
			return false
		}
	}
	return true
}

// tcActions returns TC's autonomous actions: leader election, the
// (Vis, Des) normalization, the chain corrections (which destroy
// spurious tokens without moving the real one — Property 1's "TC
// stabilizes independently of the activations of T"), and the Join/
// Resume halves of a token handover (which only complete passes already
// initiated by a CC-level ReleaseToken). They sit *above* the ordinary
// CC actions — so a process whose TC layer is inconsistent repairs it
// before conducting committee business, realizing the paper's fair
// composition (a process can have some CC action enabled forever, which
// would otherwise starve its TC actions) — but *below* Stab1/Stab2,
// which must remain "the priority actions" the paper's proofs rely on
// (Corollaries 3/5: Correct(p) within one round). TC actions are
// enabled only while the TC layer is inconsistent or a handover is in
// flight, so they cannot starve the CC layer either.
func (a *Alg) tcActions() []sim.Action[State] {
	type tcAct struct {
		name    string
		enabled func(token.View, int) bool
		body    func(token.View, int, *token.State)
	}
	acts := []tcAct{
		{"TC-Resume", a.TC.ResumeEnabled, a.TC.ResumeBody},
		{"TC-Join", a.TC.JoinEnabled, a.TC.JoinBody},
		{"TC-ChainFix", a.TC.ChainFixEnabled, a.TC.ChainFixBody},
		{"TC-Norm", a.TC.NormEnabled, a.TC.NormBody},
		{"TC-LE", a.TC.LeaderEnabled, a.TC.LeaderBody},
	}
	out := make([]sim.Action[State], len(acts))
	for i, act := range acts {
		act := act
		out[i] = sim.Action[State]{
			Name: act.name,
			Guard: func(cfg []State, p int) bool {
				return act.enabled(a.tcView(cfg), p)
			},
			Body: func(cfg []State, p int, next *State, _ *rand.Rand) {
				act.body(a.tcView(cfg), p, &next.TC)
			},
		}
	}
	return out
}

// Program assembles the composed CC ∘ TC guarded-action program. Action
// priority is positional (later = higher, §2.2): the CC actions appear
// in the paper's code order with Stab last (highest), and TC's actions
// sit below the whole CC list. randomInit selects arbitrary initial
// configurations (snap-stabilization experiments) versus the canonical
// fault-free one.
func (a *Alg) Program(randomInit bool) *sim.Program[State] {
	if a.Env == nil {
		panic("core: Alg.Env must be set before Program()")
	}
	var cc []sim.Action[State]
	nStab := 0
	if a.Variant == CC1 {
		cc = a.cc1Actions()
		nStab = 2 // Stab1, Stab2
	} else {
		cc = a.cc2Actions()
		nStab = 1 // Stab
	}
	split := len(cc) - nStab
	actions := make([]sim.Action[State], 0, len(cc)+5)
	actions = append(actions, cc[:split]...)
	actions = append(actions, a.tcActions()...)
	actions = append(actions, cc[split:]...)
	prog := &sim.Program[State]{
		NumProcs: a.H.N(),
		Actions:  actions,
		Init: func(p int, rng *rand.Rand) State {
			if randomInit {
				return a.RandomState(p, rng)
			}
			return a.LegitState(p)
		},
	}
	if !a.NoLocality {
		// Every CC predicate ranges over members of p's incident
		// committees, and every TC guard (leader election, chain fixes,
		// Join/Resume handovers) over p's G_H adjacency — token.New is fed
		// exactly h.Neighbors. Both sets coincide with the precomputed
		// closed neighborhood N_GH(p), so the incremental engine may
		// re-evaluate only the neighborhoods of last step's executors.
		h := a.H
		prog.Locality = func(p int) []int { return h.Neighbors(p) }
	}
	return prog
}
