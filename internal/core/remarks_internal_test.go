package core

// Reproduction of Remark 2 and Remark 4: the guards of the Step actions
// are mutually exclusive at each professor, in every reachable (and even
// arbitrary) configuration. The proofs use this to identify "the"
// enabled Step action of a process.

import (
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// cc1StepGuards evaluates the six guards of Remark 2 for process p.
func cc1StepGuards(a *Alg, cfg []State, p int) []bool {
	reqIn := a.Env.RequestIn(p)
	reqOut := a.Env.RequestOut(p)
	return []bool{
		reqIn && cfg[p].S == Idle,                // Step1
		a.maxToFreeEdge1(cfg, p),                 // Step21
		a.joinLocalMax1(cfg, p),                  // Step22
		a.Ready(cfg, p) && cfg[p].S == Looking,   // Step31
		a.Meeting(cfg, p) && cfg[p].S == Waiting, // Step32
		a.leaveMeeting1(cfg, p) && reqOut,        // Step4
	}
}

// cc2StepGuards evaluates the seven guards of Remark 4 for process p.
func cc2StepGuards(a *Alg, cfg []State, p int) []bool {
	reqOut := a.Env.RequestOut(p)
	return []bool{
		a.tokenHolderToEdge(cfg, p),              // Step11
		a.joinTokenHolder(cfg, p),                // Step12
		a.maxToFreeEdge2(cfg, p),                 // Step13
		a.joinLocalMax2(cfg, p),                  // Step14
		a.Ready(cfg, p) && cfg[p].S == Looking,   // Step2
		a.Meeting(cfg, p) && cfg[p].S == Waiting, // Step3
		a.leaveMeeting2(cfg, p) && reqOut,        // Step4
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func TestRemark2GuardsMutuallyExclusive(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		h := hypergraph.Figure1()
		alg := New(CC1, h, nil)
		env := NewAlwaysClient(h.N(), 2)
		r := NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed, true)
		for i := 0; i < 500; i++ {
			cfg := r.Config()
			for p := 0; p < h.N(); p++ {
				if n := countTrue(cc1StepGuards(alg, cfg, p)); n > 1 {
					t.Fatalf("seed %d step %d: %d Step guards enabled at process %d (Remark 2)",
						seed, i, n, p)
				}
			}
			if r.Run(1) == 0 {
				break
			}
		}
	}
}

func TestRemark4GuardsMutuallyExclusive(t *testing.T) {
	for _, variant := range []Variant{CC2, CC3} {
		for seed := int64(0); seed < 4; seed++ {
			h := hypergraph.Figure4()
			alg := New(variant, h, nil)
			env := NewAlwaysClient(h.N(), 2)
			r := NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed, true)
			for i := 0; i < 500; i++ {
				cfg := r.Config()
				for p := 0; p < h.N(); p++ {
					if n := countTrue(cc2StepGuards(alg, cfg, p)); n > 1 {
						t.Fatalf("%v seed %d step %d: %d Step guards enabled at process %d (Remark 4)",
							variant, seed, i, n, p)
					}
				}
				if r.Run(1) == 0 {
					break
				}
			}
		}
	}
}

// Remark 3: a waiting process that is not Correct stays waiting (at
// least) until it satisfies Correct — its only enabled CC action is a
// Stab action, which resets it to looking, and that is exactly the
// transition the remark allows ("it remains waiting until..."): the
// abstract waiting state covers both looking and waiting.
func TestRemark3WaitingStaysAbstractWaiting(t *testing.T) {
	h := hypergraph.Figure1()
	alg := New(CC1, h, nil)
	env := NewAlwaysClient(h.N(), 2)
	r := NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 11, true)
	for i := 0; i < 400; i++ {
		cfg := r.Config()
		type snap struct{ incorrectWaiting bool }
		before := make([]snap, h.N())
		for p := 0; p < h.N(); p++ {
			before[p].incorrectWaiting = alg.WaitingAbstract(cfg, p) && !alg.Correct(cfg, p)
		}
		if r.Run(1) == 0 {
			break
		}
		cfg = r.Config()
		for p := 0; p < h.N(); p++ {
			if before[p].incorrectWaiting && !alg.WaitingAbstract(cfg, p) {
				t.Fatalf("step %d: incorrect waiting process %d left the abstract waiting state (S=%v)",
					i, p, cfg[p].S)
			}
		}
	}
}
