package core

import (
	"repro/internal/sim"
)

// Runner wires an Alg, an Env and a sim.Engine together and tracks the
// meeting-level events (convene/terminate) and the statistics used by
// the paper's complexity measures: per-committee convene counts,
// per-professor participation counts and waiting times in rounds
// (Definition 6 / Theorem 6), and the number of concurrently held
// meetings (Definitions 2 and 5).
type Runner struct {
	Alg    *Alg
	Env    Env
	Engine *sim.Engine[State]

	// Statistics (cumulative over the run).
	Convenes        []int // per committee: number of convene events
	Terminates      []int // per committee: number of terminate events
	ProfMeetings    []int // per professor: meetings participated in
	MaxWaitRounds   []int // per professor: max rounds between participations
	lastMeetRound   []int
	SumConcurrency  int64 // sum over steps of |meetings| (for the mean)
	PeakConcurrency int
	stepsSampled    int64

	prevMeets []bool

	// envTrack is non-nil when the Env can attribute predicate flips to
	// specific processes, letting the incremental engine invalidate only
	// those cache entries instead of the whole enabled set.
	envTrack EnvTracker

	onConvene   []func(step, e int)
	onTerminate []func(step, e int)
}

// NewRunner builds a Runner. randomInit selects an arbitrary initial
// configuration (the snap-stabilization setting) versus the canonical
// fault-free one. The Env is installed into the Alg.
func NewRunner(alg *Alg, d sim.Daemon, env Env, seed int64, randomInit bool) *Runner {
	alg.Env = env
	prog := alg.Program(randomInit)
	eng := sim.NewEngine(prog, d, seed)
	r := &Runner{
		Alg:           alg,
		Env:           env,
		Engine:        eng,
		Convenes:      make([]int, alg.H.M()),
		Terminates:    make([]int, alg.H.M()),
		ProfMeetings:  make([]int, alg.H.N()),
		MaxWaitRounds: make([]int, alg.H.N()),
		lastMeetRound: make([]int, alg.H.N()),
		prevMeets:     make([]bool, alg.H.M()),
	}
	r.envTrack, _ = env.(EnvTracker)
	env.Update(eng.Config(), 0)
	r.noteEnvUpdate()
	r.snapshotMeets(eng.Config())
	eng.Observe(func(step int, cfg []State, _ []sim.Exec) {
		r.afterStep(step, cfg)
	})
	return r
}

// OnConvene registers a callback fired when a committee meeting convenes
// (it meets in the new configuration but did not in the previous one).
func (r *Runner) OnConvene(fn func(step, e int)) { r.onConvene = append(r.onConvene, fn) }

// OnTerminate registers a callback fired when a meeting terminates.
func (r *Runner) OnTerminate(fn func(step, e int)) { r.onTerminate = append(r.onTerminate, fn) }

func (r *Runner) snapshotMeets(cfg []State) {
	for e := 0; e < r.Alg.H.M(); e++ {
		r.prevMeets[e] = r.Alg.EdgeMeets(cfg, e)
	}
}

func (r *Runner) afterStep(step int, cfg []State) {
	round := r.Engine.Rounds()
	concurrent := 0
	for e := 0; e < r.Alg.H.M(); e++ {
		meets := r.Alg.EdgeMeets(cfg, e)
		if meets {
			concurrent++
		}
		switch {
		case meets && !r.prevMeets[e]:
			r.Convenes[e]++
			for _, p := range r.Alg.H.Edge(e) {
				r.ProfMeetings[p]++
				if gap := round - r.lastMeetRound[p]; gap > r.MaxWaitRounds[p] {
					r.MaxWaitRounds[p] = gap
				}
				r.lastMeetRound[p] = round
			}
			for _, fn := range r.onConvene {
				fn(step, e)
			}
		case !meets && r.prevMeets[e]:
			r.Terminates[e]++
			for _, fn := range r.onTerminate {
				fn(step, e)
			}
		}
		r.prevMeets[e] = meets
	}
	if concurrent > r.PeakConcurrency {
		r.PeakConcurrency = concurrent
	}
	r.SumConcurrency += int64(concurrent)
	r.stepsSampled++
	r.Env.Update(cfg, step)
	r.noteEnvUpdate()
}

// SyncEnv runs one Env.Update against the current configuration and
// folds it into the engine's enabled-set cache. Drivers that mutate or
// advance the environment outside the Runner's step loop (scripted
// experiment setups, replay harnesses) must use this instead of calling
// Env.Update directly, or the incremental engine's cache goes stale.
func (r *Runner) SyncEnv() {
	r.Env.Update(r.Engine.Config(), r.Engine.Steps())
	r.noteEnvUpdate()
}

// noteEnvUpdate folds an Env.Update into the engine's enabled-set cache:
// per-process invalidation when the Env tracks its flips, a full rescan
// otherwise.
func (r *Runner) noteEnvUpdate() {
	if r.envTrack != nil {
		for _, p := range r.envTrack.Changed() {
			r.Engine.MarkDirty(p)
		}
		return
	}
	r.Engine.MarkAllDirty()
}

// MeanConcurrency returns the average number of simultaneously meeting
// committees per step.
func (r *Runner) MeanConcurrency() float64 {
	if r.stepsSampled == 0 {
		return 0
	}
	return float64(r.SumConcurrency) / float64(r.stepsSampled)
}

// TotalConvenes returns the total number of convene events.
func (r *Runner) TotalConvenes() int {
	t := 0
	for _, c := range r.Convenes {
		t += c
	}
	return t
}

// IdleTicks bounds how many environment "ticks" the runner performs when
// no guarded action is enabled. In the paper's model the application's
// RequestIn/RequestOut inputs evolve with real time, independent of
// algorithm steps; the simulator realizes this by letting the environment
// advance (e.g., discussion timers expiring, request arrivals) while the
// algorithm is blocked on inputs. A configuration that stays terminal
// through IdleTicks environment updates is genuinely quiescent (which is
// exactly the Definition 5 situation under infinite meetings, where the
// environment never re-enables anything).
var IdleTicks = 128

// stepOrTick performs one engine step; if nothing is enabled it lets the
// environment advance until an action enables. It reports false only at
// true quiescence.
func (r *Runner) stepOrTick() bool {
	if r.Engine.Step() != nil {
		return true
	}
	for i := 0; i < IdleTicks; i++ {
		r.Env.Update(r.Engine.Config(), r.Engine.Steps())
		r.noteEnvUpdate()
		if !r.Engine.Terminal() {
			return r.Engine.Step() != nil
		}
	}
	return false
}

// Step executes one engine step (nil means no action was enabled; use
// Run/RunUntil for env-tick-aware execution).
func (r *Runner) Step() []sim.Exec { return r.Engine.Step() }

// Run executes at most maxSteps steps, letting the environment advance
// across input-blocked configurations. Returns the steps executed.
func (r *Runner) Run(maxSteps int) int {
	start := r.Engine.Steps()
	for r.Engine.Steps()-start < maxSteps {
		if !r.stepOrTick() {
			break
		}
	}
	return r.Engine.Steps() - start
}

// RunUntil executes steps (env-tick-aware) until pred holds, quiescence,
// or maxSteps. Reports whether pred held.
func (r *Runner) RunUntil(maxSteps int, pred func(cfg []State) bool) bool {
	start := r.Engine.Steps()
	for {
		if pred(r.Engine.Config()) {
			return true
		}
		if r.Engine.Steps()-start >= maxSteps {
			return false
		}
		if !r.stepOrTick() {
			return pred(r.Engine.Config())
		}
	}
}

// RunRounds executes whole rounds (env-tick-aware), stopping after the
// given number of additional rounds, quiescence, or maxSteps steps.
func (r *Runner) RunRounds(rounds, maxSteps int) int {
	startRound, startStep := r.Engine.Rounds(), r.Engine.Steps()
	for r.Engine.Rounds()-startRound < rounds && r.Engine.Steps()-startStep < maxSteps {
		if !r.stepOrTick() {
			break
		}
	}
	return r.Engine.Rounds() - startRound
}

// Config returns the current configuration.
func (r *Runner) Config() []State { return r.Engine.Config() }

// MinProfMeetings returns the minimum per-professor participation count —
// the fairness witness (> 0 for every window under Professor Fairness).
// Professors incident to no committee are skipped.
func (r *Runner) MinProfMeetings() int {
	min := -1
	for p, c := range r.ProfMeetings {
		if len(r.Alg.H.EdgesOf(p)) == 0 {
			continue
		}
		if min == -1 || c < min {
			min = c
		}
	}
	if min == -1 {
		return 0
	}
	return min
}

// MinCommitteeConvenes returns the minimum per-committee convene count —
// the Committee Fairness witness (Definition 4).
func (r *Runner) MinCommitteeConvenes() int {
	min := -1
	for _, c := range r.Convenes {
		if min == -1 || c < min {
			min = c
		}
	}
	if min == -1 {
		return 0
	}
	return min
}
