package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/spec"
)

// TestEnvTickUnblocksDiscussionTimers reproduces the simulation-model
// subtlety documented in DESIGN.md: when every enabled transition waits
// on RequestOut (application time), the runner must let the environment
// advance rather than declare quiescence.
func TestEnvTickUnblocksDiscussionTimers(t *testing.T) {
	h := hypergraph.CommitteePath(2) // single committee {0,1}
	alg := core.New(core.CC2, h, nil)
	env := core.NewAlwaysClient(h.N(), 40) // discussion far longer than any action chain
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 1, false)
	r.Run(4000)
	if r.TotalConvenes() < 5 {
		t.Fatalf("meetings stalled on discussion timers: %d convenes", r.TotalConvenes())
	}
	if r.Terminates[0] < 4 {
		t.Fatalf("meetings never terminated: %v", r.Terminates)
	}
}

func TestRunnerQuiescenceUnderInfiniteMeetings(t *testing.T) {
	// With the infinite-meeting environment the tick mechanism must NOT
	// spin forever: once saturated, Run returns and Terminal holds.
	h := hypergraph.CommitteePath(4)
	alg := core.New(core.CC2, h, nil)
	env := core.NewInfiniteMeetings(alg, nil)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 2, false)
	steps := r.Run(50000)
	if !r.Engine.Terminal() {
		t.Fatal("infinite meetings must quiesce CC2")
	}
	if steps >= 50000 {
		t.Fatal("Run must stop at quiescence, not exhaust the budget")
	}
	if len(alg.Meetings(r.Config())) == 0 {
		t.Fatal("quiescent state must hold at least one meeting")
	}
}

func TestRunnerRunUntilSeesPredicateAtQuiescence(t *testing.T) {
	h := hypergraph.CommitteePath(2)
	alg := core.New(core.CC2, h, nil)
	env := core.NewInfiniteMeetings(alg, nil)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 3, false)
	ok := r.RunUntil(10000, func(cfg []core.State) bool {
		return alg.EdgeMeets(cfg, 0)
	})
	if !ok {
		t.Fatal("the single committee must meet")
	}
	// An unsatisfiable predicate terminates with false at quiescence.
	if r.RunUntil(10000, func(cfg []core.State) bool { return false }) {
		t.Fatal("unsatisfiable predicate cannot hold")
	}
}

func TestRunnerWaitAccounting(t *testing.T) {
	h := hypergraph.CommitteeRing(5)
	r := newRunner(core.CC2, h, 4, false)
	r.Run(20000)
	for p := 0; p < h.N(); p++ {
		if r.ProfMeetings[p] > 0 && r.MaxWaitRounds[p] <= 0 {
			t.Fatalf("professor %d met %d times but has no wait recorded", p, r.ProfMeetings[p])
		}
	}
	// Convene/terminate counts stay consistent: a committee can be mid-
	// meeting at the end, so terminates ∈ [convenes - m, convenes].
	for e := 0; e < h.M(); e++ {
		d := r.Convenes[e] - r.Terminates[e]
		if d < 0 || d > 1 {
			t.Fatalf("committee %d: convenes %d vs terminates %d", e, r.Convenes[e], r.Terminates[e])
		}
	}
}

// TestLemma2ConveneConfiguration checks Lemma 2 on live runs: whenever a
// committee convenes, every member has S = waiting (not done) in the
// convene configuration.
func TestLemma2ConveneConfiguration(t *testing.T) {
	for _, variant := range []core.Variant{core.CC1, core.CC2, core.CC3} {
		h := hypergraph.Figure1()
		alg := core.New(variant, h, nil)
		env := core.NewAlwaysClient(h.N(), 2)
		r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 5, true)
		violations := 0
		r.OnConvene(func(step, e int) {
			for _, q := range h.Edge(e) {
				if r.Config()[q].S != core.Waiting {
					violations++
				}
			}
		})
		r.Run(4000)
		if violations > 0 {
			t.Fatalf("%v: %d Lemma 2 violations (member not waiting at convene)", variant, violations)
		}
		if r.TotalConvenes() == 0 {
			t.Fatalf("%v: nothing convened", variant)
		}
	}
}

// countingEnv wraps a Client and measures time in environment updates —
// the clock RequestOut actually runs on (the runner ticks the
// environment while the engine is input-blocked, so engine steps are the
// wrong unit).
type countingEnv struct {
	*core.Client
	updates int
	doneAt  map[int]int // env-update count at which p entered done
}

func (c *countingEnv) Update(cfg []core.State, step int) {
	c.updates++
	for p := range cfg {
		if cfg[p].S == core.Done {
			if _, ok := c.doneAt[p]; !ok {
				c.doneAt[p] = c.updates
			}
		} else {
			delete(c.doneAt, p)
		}
	}
	c.Client.Update(cfg, step)
}

// TestVoluntaryDiscussionRespectedByEnv checks Definition 1 phase 2 at
// the event level: a meeting never terminates before every member spent
// its configured discussion time (in environment time) in the done
// status.
func TestVoluntaryDiscussionRespectedByEnv(t *testing.T) {
	h := hypergraph.CommitteePath(2)
	alg := core.New(core.CC2, h, nil)
	const disc = 7
	env := &countingEnv{Client: core.NewAlwaysClient(h.N(), disc), doneAt: map[int]int{}}
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 6, false)
	tooFast := 0
	r.OnTerminate(func(step, e int) {
		// Definition 1, phase 2: the professor(s) who *voluntarily left*
		// (already looking again in the new configuration) must have
		// spent their discussion time; members still done were released
		// by the termination, which is allowed.
		for _, q := range h.Edge(e) {
			if r.Config()[q].S == core.Done {
				continue
			}
			if since, ok := env.doneAt[q]; !ok || env.updates-since < disc {
				tooFast++
			}
		}
	})
	r.Run(6000)
	if r.Terminates[0] < 3 {
		t.Fatalf("too few terminations to check: %d", r.Terminates[0])
	}
	if tooFast > 0 {
		t.Fatalf("%d members left before their voluntary discussion elapsed", tooFast)
	}
}

func TestCheckerIntegrationCatchesInjectedViolation(t *testing.T) {
	// Sanity for the monitor wiring: force an artificial exclusion
	// violation by mutating two conflicting committees into meetings and
	// verify the checker reports it.
	h := hypergraph.Figure2() // e0={0,1}, e1={0,2,4} conflict on 0
	alg := core.New(core.CC1, h, nil)
	env := core.NewAlwaysClient(h.N(), 2)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 7, false)
	chk := r.Checker(0)
	// Manufacture the impossible: professor 0 "attends" e0 while 2 and 4
	// point at e1 with 0; no single pointer can do this, so fake it by
	// making both committees meet via disjoint member sets... impossible
	// by construction (Lemma 1) — which is itself worth asserting:
	r.Run(2000)
	if !chk.Ok() {
		t.Fatalf("violations on a legit run: %v", chk.Violations)
	}
	// The exclusion check itself is exercised in spec's own tests; here
	// we assert the structural impossibility: no configuration ever had
	// two meetings sharing a professor.
	meets := alg.Meetings(r.Config())
	if !h.IsMatching(meets) {
		t.Fatalf("meetings %v not a matching", meets)
	}
}

func TestFairnessTrackerIntegration(t *testing.T) {
	h := hypergraph.CommitteeRing(5)
	alg := core.New(core.CC2, h, nil)
	env := core.NewAlwaysClient(h.N(), 1)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 8, false)
	ft := spec.NewFairnessTracker(h)
	r.OnConvene(func(step, e int) { ft.Convened(step, e) })
	r.Run(20000)
	ft.Finish(r.Engine.Steps())
	if ft.MaxGapProfessors() <= 0 {
		t.Fatal("no gaps measured")
	}
	// CC2 professor fairness: the max gap is a small fraction of the run.
	if g := ft.MaxGapProfessors(); g > r.Engine.Steps()/4 {
		t.Fatalf("professor gap %d too large for a fair algorithm over %d steps", g, r.Engine.Steps())
	}
}

func TestIdleTicksConfigurable(t *testing.T) {
	old := core.IdleTicks
	defer func() { core.IdleTicks = old }()
	core.IdleTicks = 1
	h := hypergraph.CommitteePath(2)
	alg := core.New(core.CC2, h, nil)
	env := core.NewAlwaysClient(h.N(), 50) // needs ~50 ticks to fire RequestOut
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 9, false)
	r.Run(2000)
	// With a 1-tick budget the run stalls in the first done period.
	if r.Terminates[0] != 0 {
		t.Fatalf("expected the tick budget to throttle terminations, got %d", r.Terminates[0])
	}
}
