// Package core implements the paper's committee-coordination algorithms:
//
//   - CC1 ∘ TC (§4, Algorithm 1): snap-stabilizing, satisfies Exclusion,
//     Synchronization, Progress, 2-Phase Discussion and Maximal
//     Concurrency (Theorem 2);
//   - CC2 ∘ TC (§5, Algorithm 2): snap-stabilizing, satisfies Exclusion,
//     Synchronization, 2-Phase Discussion and Professor Fairness under
//     the assumption that professors wait for meetings infinitely often
//     (Theorem 3);
//   - CC3 ∘ TC (§5.4): the CC2 variant where a token holder sequentially
//     selects a new incident committee on each acquisition, additionally
//     satisfying Committee Fairness (Theorem 7).
//
// Every process runs the identical local algorithm; the hypergraph and
// the process identifiers are the only per-process inputs. The token
// module TC (package token) supplies the Token(p) input predicate and
// the ReleaseToken(p) statement; its stabilizing actions are fairly
// composed with the CC actions in the same sim.Program, exactly as the
// paper's CC ∘ TC composition.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/hypergraph"
	"repro/internal/token"
)

// Status is the status variable S_p.
type Status uint8

const (
	// Idle: the professor has no interest in meeting (CC1 only; CC2/CC3
	// assume always-requesting professors, so idle does not occur there).
	Idle Status = iota
	// Looking: the professor requests a meeting and is searching for an
	// available committee. Looking and Waiting together form the
	// "waiting" state of the original problem statement (§2.3).
	Looking
	// Waiting: the professor agreed on a committee and waits for it to
	// convene.
	Waiting
	// Done: the professor performed its essential discussion and is in
	// the voluntary-discussion phase.
	Done
)

func (s Status) String() string {
	switch s {
	case Idle:
		return "idle"
	case Looking:
		return "looking"
	case Waiting:
		return "waiting"
	case Done:
		return "done"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// NoEdge is the ⊥ value of the edge pointer P_p.
const NoEdge = -1

// TokenState aliases the TC-layer state type for callers that inspect
// the composed state without importing the token package.
type TokenState = token.State

// State is the full per-process state of CC ∘ TC. Fields L and R are used
// only by CC2/CC3 but live in the shared type so that all three variants
// run in the same engine instantiation.
type State struct {
	S Status // status S_p
	P int    // edge pointer P_p ∈ E_p ∪ {NoEdge}
	T bool   // token mirror T_p
	L bool   // lock bit L_p (CC2/CC3)
	R int    // round-robin committee cursor (CC3)

	TC token.State // composed token-circulation state
}

// Clone returns a deep copy (sim.Cloneable).
func (s State) Clone() State {
	c := s
	c.TC = s.TC.Clone()
	return c
}

// Variant selects the algorithm.
type Variant uint8

const (
	CC1 Variant = iota + 1
	CC2
	CC3
)

func (v Variant) String() string {
	switch v {
	case CC1:
		return "CC1"
	case CC2:
		return "CC2"
	case CC3:
		return "CC3"
	}
	return fmt.Sprintf("variant(%d)", uint8(v))
}

// ChoiceFunc picks one of the candidate edges in an action body whose
// statement is nondeterministic in the paper ("P_p := ε such that
// ε ∈ FreeEdges_p"). options is non-empty and sorted ascending.
// Implementations must treat options as read-only: it may alias
// precomputed topology tables (hypergraph.H incidence/MinEdges, shared
// across engines and parallel experiment cells) or engine scratch.
type ChoiceFunc func(p int, options []int, rng *rand.Rand) int

// ChooseFirst picks the lowest-indexed candidate (deterministic default).
func ChooseFirst(_ int, options []int, _ *rand.Rand) int { return options[0] }

// ChooseRandom picks uniformly.
func ChooseRandom(_ int, options []int, rng *rand.Rand) int {
	return options[rng.Intn(len(options))]
}

// Alg binds a variant to a hypergraph, a token module, an environment and
// a choice strategy, and produces the composed sim.Program.
type Alg struct {
	Variant Variant
	H       *hypergraph.H
	TC      *token.Module
	Env     Env
	Choose  ChoiceFunc

	// OnEssential, if non-nil, is invoked from Step32/Step3 bodies when
	// process p performs its essential discussion in committee e — the
	// paper's 〈EssentialDiscussion〉 hook (Definition 1, Phase 1).
	OnEssential func(p, e int)

	// NoMinSize ablates CC2's design choice of restricting a token
	// holder's selection to a smallest incident committee — the paper
	// notes the restriction "is used only to slightly enhance the
	// concurrency" (§5.1). With NoMinSize the holder picks among all its
	// committees; the ABL experiment measures the resulting drop in the
	// degree of fair concurrency. Ignored by CC1 and CC3.
	NoMinSize bool

	// NoLocality omits the sim.Locality declaration from Program, forcing
	// the engine onto the full-rescan path. Every guard of CC ∘ TC reads
	// only the closed G_H neighborhood of its process, so the two paths
	// are observationally identical; the equivalence tests assert exactly
	// that by running both side by side.
	NoLocality bool

	// Predicate scratch, reused across guard evaluations so the engine
	// hot path stays allocation-free. Guards run on the engine's single
	// goroutine; an Alg must therefore not be shared by concurrently
	// running engines (the parallel experiment runner builds one Alg per
	// cell). The aliasing is safe because every nested use re-derives the
	// same deterministic contents for the same (cfg, p) arguments.
	scEdges []int
	scNodes []int
	scTN    []int
	scTP    []int
	scSeen  []bool

	viewBase *State     // identity of the cfg buffer viewFn reads
	viewFn   token.View // cached closure over that buffer
}

// New creates an Alg for the given variant over hypergraph h. The token
// module is derived from h's underlying communication network and
// identifiers. env may be nil for callers that construct a Runner (which
// installs one).
func New(variant Variant, h *hypergraph.H, env Env) *Alg {
	n := h.N()
	adj := make([][]int, n)
	ids := make([]int, n)
	for v := 0; v < n; v++ {
		adj[v] = h.Neighbors(v)
		ids[v] = h.ID(v)
	}
	return &Alg{
		Variant: variant,
		H:       h,
		TC:      token.New(adj, ids),
		Env:     env,
		Choose:  ChooseFirst,
	}
}

// tcView adapts a CC configuration to the token module's view. The
// closure is cached per configuration buffer: the engine mutates its
// configuration in place, so the buffer identity is stable across steps
// and the hot path allocates no closures.
func (a *Alg) tcView(cfg []State) token.View {
	if len(cfg) == 0 {
		return func(q int) *token.State { return nil }
	}
	if a.viewBase != &cfg[0] {
		c := cfg
		a.viewBase = &c[0]
		a.viewFn = func(q int) *token.State { return &c[q].TC }
	}
	return a.viewFn
}

// Token is the input predicate Token(p) from TC.
func (a *Alg) Token(cfg []State, p int) bool {
	return a.TC.HasToken(a.tcView(cfg), p)
}

// releaseToken is the input statement ReleaseToken_p.
func (a *Alg) releaseToken(cfg []State, p int, next *State) {
	a.TC.ReleaseToken(a.tcView(cfg), p, &next.TC)
}

// --- Shared predicates (identical formulas in Algorithms 1 and 2) -----------

// Ready(p) ≡ ∃ε∈E_p : ∀q∈ε : (P_q = ε ∧ S_q ∈ {looking, waiting}).
func (a *Alg) Ready(cfg []State, p int) bool {
	for _, e := range a.H.EdgesOf(p) {
		if a.allMembers(cfg, e, func(q int) bool {
			return cfg[q].P == e && (cfg[q].S == Looking || cfg[q].S == Waiting)
		}) {
			return true
		}
	}
	return false
}

// Meeting(p) ≡ ∃ε∈E_p : ∀q∈ε : (P_q = ε ∧ S_q ∈ {waiting, done}).
func (a *Alg) Meeting(cfg []State, p int) bool {
	for _, e := range a.H.EdgesOf(p) {
		if a.EdgeMeets(cfg, e) {
			return true
		}
	}
	return false
}

// EdgeMeets reports whether committee e currently meets (§4.2: every
// member points at e with status in {waiting, done}).
func (a *Alg) EdgeMeets(cfg []State, e int) bool {
	return a.allMembers(cfg, e, func(q int) bool {
		return cfg[q].P == e && (cfg[q].S == Waiting || cfg[q].S == Done)
	})
}

// Meetings returns the sorted indices of all committees meeting in cfg.
func (a *Alg) Meetings(cfg []State) []int {
	var out []int
	for e := 0; e < a.H.M(); e++ {
		if a.EdgeMeets(cfg, e) {
			out = append(out, e)
		}
	}
	return out
}

// WaitingAbstract reports whether p is in the original problem's
// "waiting" state (§4.2 maps it to S_p ∈ {looking, waiting}).
func (a *Alg) WaitingAbstract(cfg []State, p int) bool {
	return cfg[p].S == Looking || cfg[p].S == Waiting
}

// InMeeting reports whether p participates in a meeting.
func (a *Alg) InMeeting(cfg []State, p int) bool {
	return cfg[p].P != NoEdge && a.EdgeMeets(cfg, cfg[p].P)
}

func (a *Alg) allMembers(cfg []State, e int, pred func(q int) bool) bool {
	for _, q := range a.H.Edge(e) {
		if !pred(q) {
			return false
		}
	}
	return true
}

// maxByID returns the vertex with the greatest identifier in vs (which
// must be non-empty).
func (a *Alg) maxByID(vs []int) int {
	best := vs[0]
	for _, v := range vs[1:] {
		if a.H.ID(v) > a.H.ID(best) {
			best = v
		}
	}
	return best
}

// RandomState draws an arbitrary initial state for p: every variable
// uniformly from its domain (the adversary's corruption after transient
// faults; §2.5). Edge pointers respect their domain E_p ∪ {⊥}.
func (a *Alg) RandomState(p int, rng *rand.Rand) State {
	var s State
	switch a.Variant {
	case CC1:
		s.S = Status(rng.Intn(4)) // idle..done
	default:
		s.S = Status(1 + rng.Intn(3)) // looking..done (no idle in CC2/CC3)
	}
	ep := a.H.EdgesOf(p)
	if len(ep) > 0 && rng.Intn(3) > 0 {
		s.P = ep[rng.Intn(len(ep))]
	} else {
		s.P = NoEdge
	}
	s.T = rng.Intn(2) == 0
	s.L = rng.Intn(2) == 0
	if len(ep) > 0 {
		s.R = rng.Intn(len(ep))
	}
	s.TC = a.TC.RandomState(p, rng)
	return s
}

// LegitState returns a canonical fault-free initial state.
func (a *Alg) LegitState(p int) State {
	s := State{P: NoEdge, TC: a.TC.LegitState(p)}
	if a.Variant == CC1 {
		s.S = Idle
	} else {
		s.S = Looking
	}
	return s
}
