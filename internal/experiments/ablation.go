package experiments

import (
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
)

// EXP-ABL — ablations of the paper's explicit design choices:
//
//  1. CC2's token holders select a *smallest* incident committee; the
//     paper says the restriction "is used only to slightly enhance the
//     concurrency" (§5.1). We measure the degree of fair concurrency
//     with and without it on topologies mixing small and large
//     committees: without the restriction the holder may camp on a big
//     committee, blocking more professors and lowering the quiescent
//     meeting count.
//  2. The nondeterministic committee choice in Step21/Step13 ("P_p := ε
//     such that ε ∈ FreeEdges_p") — deterministic first-index versus
//     uniformly random — to confirm liveness does not hinge on the
//     choice strategy.
func init() {
	register(Experiment{
		ID:   "ABL",
		What: "Ablations: CC2 min-size committee rule; free-edge choice strategy",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "ABL"}
			samples, steps := 16, 80000
			if cfg.Quick {
				samples, steps = 8, 40000
			}

			// Mixed-size topologies where min-size has something to do:
			// a small committee and a large one share each token stop.
			mixed := []family{
				{"figure1", hypergraph.Figure1()},
				{"figure4", hypergraph.Figure4()},
				{"triples+pairs", hypergraph.MustNew(8, []hypergraph.Edge{
					{0, 1}, {1, 2, 3, 4}, {4, 5}, {5, 6, 7}, {0, 7},
				})},
			}
			t := &Table{
				Title: "Ablation 1: CC2 token target = MinEdges vs any incident committee",
				Note: "Degree of fair concurrency (min/mean quiescent meetings over random " +
					"starts). The paper predicts the min-size rule helps concurrency.",
				Header: []string{"topology", "min (MinEdges)", "mean (MinEdges)", "min (any)", "mean (any)"},
			}
			var sumWith, sumWithout float64
			type pair struct{ withMin, without metrics.Concurrency }
			pairs := par.Map(len(mixed), func(i int) pair {
				return pair{
					withMin: metrics.DegreeOfFairConcurrency(core.CC2, mixed[i].h, samples, steps, cfg.Seed, false),
					without: metrics.DegreeOfFairConcurrencyNoMinSize(core.CC2, mixed[i].h, samples, steps, cfg.Seed, false),
				}
			})
			for i, f := range mixed {
				withMin, without := pairs[i].withMin, pairs[i].without
				t.AddRow(f.name, withMin.Min, withMin.Mean, without.Min, without.Mean)
				if withMin.Quiesced == 0 || without.Quiesced == 0 {
					res.failf("%s: runs did not quiesce (min=%d/%d)", f.name, withMin.Quiesced, without.Quiesced)
				}
				sumWith += withMin.Mean
				sumWithout += without.Mean
				// Sanity: the ablated variant must still satisfy the
				// Theorem 5 bound (the proof never uses the min rule).
				if without.Quiesced > 0 && without.Min < f.h.Theorem5Bound() {
					res.failf("%s: ablated CC2 fell below the Theorem 5 bound", f.name)
				}
			}
			// The paper only claims a *slight* enhancement (§5.1); with a
			// finite sample the reproduction claim is one-sided with a
			// noise margin: across the mixed topologies the min-size rule
			// must not be worse, and usually shows a visible edge.
			if sumWithout > sumWith+0.10 {
				res.failf("min-size rule hurt aggregate concurrency (%.2f with vs %.2f without)", sumWith, sumWithout)
			}

			// Ablation 2: choice strategy.
			t2 := &Table{
				Title:  "Ablation 2: free-edge choice (Step21/Step13) — first-index vs random",
				Header: []string{"algorithm", "topology", "choice", "convenes/100 rounds", "min meetings/prof"},
			}
			tsteps := 30000
			if cfg.Quick {
				tsteps = 12000
			}
			type gridCell struct {
				variant core.Variant
				f       family
				name    string
				fn      core.ChoiceFunc
			}
			var grid []gridCell
			for _, variant := range []core.Variant{core.CC1, core.CC2} {
				for _, f := range []family{{"ring8", hypergraph.CommitteeRing(8)}, {"figure1", hypergraph.Figure1()}} {
					for _, choice := range []struct {
						name string
						fn   core.ChoiceFunc
					}{{"first", core.ChooseFirst}, {"random", core.ChooseRandom}} {
						grid = append(grid, gridCell{variant, f, choice.name, choice.fn})
					}
				}
			}
			type gridOut struct {
				per100   float64
				convenes int
				minProf  int
			}
			outs := par.Map(len(grid), func(i int) gridOut {
				g := grid[i]
				alg := core.New(g.variant, g.f.h, nil)
				alg.Choose = g.fn
				env := core.NewAlwaysClient(g.f.h.N(), 2)
				r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, cfg.Seed, false)
				r.Run(tsteps)
				per100 := 0.0
				if rr := r.Engine.Rounds(); rr > 0 {
					per100 = 100 * float64(r.TotalConvenes()) / float64(rr)
				}
				return gridOut{per100: per100, convenes: r.TotalConvenes(), minProf: r.MinProfMeetings()}
			})
			for i, g := range grid {
				o := outs[i]
				t2.AddRow(g.variant.String(), g.f.name, g.name, o.per100, o.minProf)
				if o.convenes == 0 {
					res.failf("%v/%s/%s: no meetings", g.variant, g.f.name, g.name)
				}
				if g.variant == core.CC2 && o.minProf == 0 {
					res.failf("%v/%s/%s: fairness lost under this choice strategy", g.variant, g.f.name, g.name)
				}
			}
			res.Tables = []*Table{t, t2}
			return res
		},
	})
}
