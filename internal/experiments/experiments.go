// Package experiments regenerates every figure and analytic result of
// the paper as a runnable experiment (see DESIGN.md §2 for the index).
// Each experiment produces one or more Tables; `cmd/ccbench` renders
// them, and EXPERIMENTS.md records a reference run. Because the paper is
// proof-driven (no empirical tables), the "paper vs measured" comparison
// is: does the measured behaviour satisfy the theorem / exhibit the
// figure's scenario?
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/par"
)

// Table is one result table of an experiment.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as GitHub-flavored markdown.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	fmt.Fprint(w, "|")
	for i, h := range t.Header {
		fmt.Fprintf(w, " %s |", pad(h, widths[i]))
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|")
	for i := range t.Header {
		fmt.Fprintf(w, "%s|", strings.Repeat("-", widths[i]+2))
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprint(w, "|")
		for i, c := range r {
			w2 := 0
			if i < len(widths) {
				w2 = widths[i]
			}
			if len(c) > w2 {
				w2 = len(c)
			}
			fmt.Fprintf(w, " %s |", pad(c, w2))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Config parameterizes an experiment run.
type Config struct {
	Seed  int64
	Quick bool // reduced sizes for tests and smoke runs
	// CacheDir, if non-empty, routes the exhaustive-exploration cells
	// (the MC experiment) through the content-addressed verdict store
	// shared with cccheck -cache and ccserve: cached cells are served
	// instead of re-explored, fresh ones are persisted.
	CacheDir string
	// StoreEngine picks the store backend for CacheDir: "dir" (default)
	// or "log" (see store.OpenEngine).
	StoreEngine string
}

// Result is the outcome of one experiment.
type Result struct {
	ID     string
	Tables []*Table
	// Failures lists assertion failures: paper claims the run violated.
	// Empty means the reproduction confirms the paper's claim.
	Failures []string
}

func (r *Result) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// Ok reports whether every claim checked by the experiment held.
func (r *Result) Ok() bool { return len(r.Failures) == 0 }

// Experiment is one registered reproduction experiment.
type Experiment struct {
	ID    string
	What  string // the paper artifact it regenerates
	RunFn func(cfg Config) *Result
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run renders an experiment's tables and failures to w.
func Run(id string, cfg Config, w io.Writer) (*Result, error) {
	e, ok := Get(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	res := e.RunFn(cfg)
	render(e, res, w)
	return res, nil
}

func render(e Experiment, res *Result, w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.What)
	for _, t := range res.Tables {
		t.Render(w)
	}
	if len(res.Failures) > 0 {
		fmt.Fprintln(w, "**FAILED CLAIMS:**")
		for _, f := range res.Failures {
			fmt.Fprintf(w, "- %s\n", f)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintln(w, "All checked claims hold.")
		fmt.Fprintln(w)
	}
}

// RunAll fans the named experiments across the worker pool (each one
// additionally fans its own cells) and renders reports to w in the
// input order, streaming each one as soon as it and its predecessors
// finish — a long suite shows progress instead of barriering on the
// slowest experiment. It fails fast on an unknown id, before any work
// runs.
func RunAll(ids []string, cfg Config, w io.Writer) ([]*Result, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := Get(id)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
		exps[i] = e
	}
	results := make([]*Result, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	go par.ForEach(len(exps), func(i int) {
		results[i] = exps[i].RunFn(cfg)
		close(done[i])
	})
	for i := range exps {
		<-done[i]
		render(exps[i], results[i], w)
	}
	return results, nil
}
