package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ABL", "CONC", "F1", "F2", "F3", "F4", "MC", "SNAP", "T2", "T3", "T45", "T6", "T78", "TOKEN"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.What == "" {
			t.Fatalf("%s has no description", e.ID)
		}
	}
	if _, ok := Get("F1"); !ok {
		t.Fatal("Get(F1) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get(nope) should fail")
	}
}

// Every experiment must pass all its claims in quick mode: these are the
// actual reproduction assertions.
func TestAllExperimentsClaimsHold(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res := e.RunFn(Config{Seed: 1, Quick: true})
			for _, f := range res.Failures {
				t.Errorf("claim failed: %s", f)
			}
			if len(res.Tables) == 0 {
				t.Error("experiment produced no tables")
			}
		})
	}
}

func TestRunRenders(t *testing.T) {
	var buf bytes.Buffer
	res, err := Run("F1", Config{Seed: 1, Quick: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("F1 failed: %v", res.Failures)
	}
	out := buf.String()
	for _, want := range []string{"## F1", "Hypergraph H", "Underlying network", "| {1,2}", "All checked claims hold."} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := Run("nope", Config{}, &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "x", Note: "n", Header: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("longer", "v")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"### x", "| a ", "| 2.50 |", "| longer |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
