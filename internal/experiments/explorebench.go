package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// The explorer throughput benchmark: the same bounded exhaustive
// workloads run through the binary-codec sharded engine
// (explore.Explore) and through the preserved PR 2 string-codec serial
// engine (explore.Reference), yielding states/sec and bytes/state for
// both plus their ratios. ccbench -explore-json writes the result as
// BENCH_explore.json — the perf trajectory pin for the explorer, next
// to BENCH_step.json for the step engine — and -explore-check compares
// a fresh measurement's speedups against a committed file, failing on a
// >2× regression (the ratio of ratios is what transfers across
// machines; absolute states/sec do not).

// ExploreBench is one workload measurement.
type ExploreBench struct {
	Workload    string `json:"workload"`
	Mode        string `json:"mode"`
	States      int    `json:"states"`
	Transitions int64  `json:"transitions"`
	Truncated   bool   `json:"truncated,omitempty"`

	EngineStatesPerSec    float64 `json:"engine_states_per_sec"`
	EngineBytesPerState   float64 `json:"engine_bytes_per_state"`
	BaselineStatesPerSec  float64 `json:"baseline_states_per_sec"`
	BaselineBytesPerState float64 `json:"baseline_bytes_per_state"`
	Speedup               float64 `json:"speedup"`
	BytesRatio            float64 `json:"bytes_ratio"`
}

type exploreWorkload struct {
	name    string
	factory func() (run func(ref bool) *explore.Result, err error)
}

// exploreBenchWorkloads spans the cost spectrum: check-heavy CC cells
// (central and all-subsets branching) and a deep dedup-bound token-ring
// cell where the visited-set and codec dominate.
func exploreBenchWorkloads() []exploreWorkload {
	ccCell := func(variant core.Variant, h *hypergraph.H, init explore.InitMode, mode sim.SelectionMode, maxStates int) func() (func(bool) *explore.Result, error) {
		return func() (func(bool) *explore.Result, error) {
			factory, err := explore.CC(variant, h, explore.CCOptions{Init: init})
			if err != nil {
				return nil, err
			}
			opts := explore.Options{
				Mode: mode, MaxStates: maxStates,
				CheckDeadlock: true, CheckClosure: true,
			}
			return func(ref bool) *explore.Result {
				if ref {
					return explore.Reference(factory, opts)
				}
				return explore.Explore(factory, opts)
			}, nil
		}
	}
	tokenCell := func(n, maxStates int) func() (func(bool) *explore.Result, error) {
		return func() (func(bool) *explore.Result, error) {
			factory, err := explore.Baseline(baseline.TokenRing, hypergraph.CommitteeRing(n), 1)
			if err != nil {
				return nil, err
			}
			opts := explore.Options{
				Mode: sim.SelectCentral, MaxStates: maxStates, CheckDeadlock: true,
			}
			return func(ref bool) *explore.Result {
				if ref {
					return explore.Reference(factory, opts)
				}
				return explore.Explore(factory, opts)
			}, nil
		}
	}
	// The spill cell measures the out-of-core tax, not an engine-vs-
	// oracle speedup: the "baseline" is the same engine fully
	// in-memory, the "engine" runs under a memory budget small enough
	// that both the frontier and the cold visited arena go to disk
	// (the differential check still asserts identical counts and
	// verdicts — the out-of-core path must change nothing but the
	// footprint). Expect a speedup near (slightly under) 1.0 and a
	// bytes ratio well under 1.0.
	spillCell := func(variant core.Variant, h *hypergraph.H, init explore.InitMode, mode sim.SelectionMode, maxStates int, budget int64) func() (func(bool) *explore.Result, error) {
		return func() (func(bool) *explore.Result, error) {
			factory, err := explore.CC(variant, h, explore.CCOptions{Init: init})
			if err != nil {
				return nil, err
			}
			opts := explore.Options{
				Mode: mode, MaxStates: maxStates,
				CheckDeadlock: true, CheckClosure: true,
			}
			return func(ref bool) *explore.Result {
				o := opts
				if !ref {
					o.MemBudget = budget
				}
				return explore.Explore(factory, o)
			}, nil
		}
	}
	return []exploreWorkload{
		{"cc2/ring:3/cc-full/central", ccCell(core.CC2, hypergraph.CommitteeRing(3), explore.InitCCFull, sim.SelectCentral, 6_000_000)},
		{"cc2/ring:3/cc-full/all-subsets", ccCell(core.CC2, hypergraph.CommitteeRing(3), explore.InitCCFull, sim.SelectAllSubsets, 6_000_000)},
		{"cc2/ring:4/cc/central", ccCell(core.CC2, hypergraph.CommitteeRing(4), explore.InitCC, sim.SelectCentral, 6_000_000)},
		// The two batch-pipeline showcase cells: overlapping-triples
		// topologies under all-subsets branching are where the columnar
		// kernel, mask enumeration and incremental spec checks compound
		// (deep selection fan-out, wide per-state check surface). Bounded
		// to 1M states so the oracle side stays tractable.
		{"cc1/triples:3/legit/all-subsets/1M", ccCell(core.CC1, hypergraph.ChainOfTriples(3), explore.InitLegit, sim.SelectAllSubsets, 1_000_000)},
		{"cc3/triples:3/legit/all-subsets/1M", ccCell(core.CC3, hypergraph.ChainOfTriples(3), explore.InitLegit, sim.SelectAllSubsets, 1_000_000)},
		{"token-ring/ring:7/central/1M", tokenCell(7, 1_000_000)},
		// Bounded cc-full keeps each spill run around two seconds, so the
		// ratio measures steady-state out-of-core throughput rather than
		// fixed spill setup.
		{"cc2/ring:4/cc-full/central/600k/spill-1MiB", spillCell(core.CC2, hypergraph.CommitteeRing(4), explore.InitCCFull, sim.SelectCentral, 600_000, 1<<20)},
	}
}

// RunExploreBench measures every workload through both engines,
// asserting identical state counts and verdicts (a mismatching bench
// is a bug report, not a measurement).
func RunExploreBench() ([]ExploreBench, error) {
	var out []ExploreBench
	for _, w := range exploreBenchWorkloads() {
		run, err := w.factory()
		if err != nil {
			return nil, fmt.Errorf("explore bench %s: %v", w.name, err)
		}
		t0 := time.Now()
		engine := run(false)
		dEngine := time.Since(t0)
		t0 = time.Now()
		base := run(true)
		dBase := time.Since(t0)
		if engine.States != base.States || engine.Transitions != base.Transitions ||
			engine.Ok() != base.Ok() || engine.Truncated != base.Truncated {
			return nil, fmt.Errorf("explore bench %s: engines diverged:\n  %s\n  %s", w.name, engine.Summary(), base.Summary())
		}
		eSps := float64(engine.States) / dEngine.Seconds()
		bSps := float64(base.States) / dBase.Seconds()
		eBps := float64(engine.StateBytes) / float64(engine.States)
		bBps := float64(base.StateBytes) / float64(base.States)
		out = append(out, ExploreBench{
			Workload: w.name, Mode: engine.Mode.String(),
			States: engine.States, Transitions: engine.Transitions, Truncated: engine.Truncated,
			EngineStatesPerSec: eSps, EngineBytesPerState: eBps,
			BaselineStatesPerSec: bSps, BaselineBytesPerState: bBps,
			Speedup: eSps / bSps, BytesRatio: eBps / bBps,
		})
	}
	return out, nil
}
