package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/sim"
)

// EXP-F1 — Figure 1: the example hypergraph and its underlying
// communication network.
func init() {
	register(Experiment{
		ID:   "F1",
		What: "Figure 1: hypergraph H and underlying network G_H",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "F1"}
			h := hypergraph.Figure1()
			t1 := &Table{
				Title:  "Hypergraph H (paper Figure 1(a))",
				Header: []string{"committee", "members (paper ids)"},
			}
			for i, e := range h.Edges() {
				ids := make([]int, len(e))
				for j, v := range e {
					ids[j] = h.ID(v)
				}
				t1.AddRow(i, fmt.Sprint(ids))
			}
			t2 := &Table{
				Title:  "Underlying network G_H (paper Figure 1(b))",
				Header: []string{"edge (paper ids)"},
			}
			// The paper lists EE = {1,2},{1,3},{1,4},{2,3},{2,4},{2,5},
			// {3,4},{3,6},{4,5},{4,6}.
			want := [][2]int{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {2, 5}, {3, 4}, {3, 6}, {4, 5}, {4, 6}}
			got := h.UnderlyingEdges()
			if len(got) != len(want) {
				res.failf("G_H has %d edges, paper lists %d", len(got), len(want))
			}
			for i, e := range got {
				pe := [2]int{h.ID(e[0]), h.ID(e[1])}
				t2.AddRow(fmt.Sprintf("{%d,%d}", pe[0], pe[1]))
				if i < len(want) && pe != want[i] {
					res.failf("G_H edge %d is {%d,%d}, paper lists {%d,%d}", i, pe[0], pe[1], want[i][0], want[i][1])
				}
			}
			res.Tables = []*Table{t1, t2}
			return res
		},
	})
}

// alternatingEnv drives the Theorem 1 starvation schedule on Figure 2,
// replaying the impossibility proof's computation A → B → C → B → ...:
// exactly one of the meetings {1,2} and {3,4} dissolves at a time, and
// only while the other is in session, so at every instant a member of
// committee {1,3,5} is busy and professor 5 starves under CC1. A small
// phase machine enforces the strict alternation; the §4.2 contract —
// RequestOut eventually holds for a professor stuck in a terminated
// meeting, and for any meeting not part of the alternation — is
// preserved, so a fair algorithm (CC2) escapes the schedule via its
// token priority and convenes {1,3,5}.
type alternatingEnv struct {
	alg      *core.Alg
	out      []bool
	phase    int // 0: wait for both; 1: dissolve {1,2}; 2: wait re-convene {1,2}; 3: dissolve {3,4}; 4: wait re-convene {3,4}
	phaseAge int
}

// phaseTimeout bounds how long the adversary may stall a phase: the
// problem statement requires all meetings to terminate in finite time,
// so the schedule can delay terminations but not hold meetings hostage.
// CC1 cycles phases far faster than this (its starvation needs no
// stalling); CC2's locks stall the re-convene phases, the timeout
// releases the hostage meeting, and the token priority convenes {1,3,5}.
const phaseTimeout = 100 // must stay below core.IdleTicks so a stalled phase unwedges before quiescence is declared

func (e *alternatingEnv) RequestIn(int) bool    { return true }
func (e *alternatingEnv) RequestOut(p int) bool { return e.out[p] }

func (e *alternatingEnv) Update(cfg []core.State, _ int) {
	// e0 = {0,1} (paper {1,2}), e2 = {2,3} (paper {3,4}).
	m0 := e.alg.EdgeMeets(cfg, 0)
	m2 := e.alg.EdgeMeets(cfg, 2)
	dissolved := func(edge int) bool {
		for _, q := range e.alg.H.Edge(edge) {
			if cfg[q].P == edge {
				return false
			}
		}
		return true
	}
	prev := e.phase
	switch e.phase {
	case 0:
		if m0 && m2 {
			e.phase = 1
		}
	case 1:
		if dissolved(0) {
			e.phase = 2
		}
	case 2:
		if m0 {
			e.phase = 3
		}
	case 3:
		if dissolved(2) {
			e.phase = 4
		}
	case 4:
		if m2 {
			e.phase = 1
		}
	}
	if e.phase != prev {
		e.phaseAge = 0
	} else {
		e.phaseAge++
	}
	stalled := e.phaseAge > phaseTimeout
	for p := range e.out {
		done := cfg[p].S == core.Done
		// §4.2 contract: a professor stuck in a terminated meeting, in
		// any meeting outside the alternation pair (e.g. {1,3,5} under
		// CC2), or in a meeting the schedule can no longer legally stall,
		// must eventually request out.
		base := done && (!e.alg.Meeting(cfg, p) || (cfg[p].P != 0 && cfg[p].P != 2) || stalled)
		switch {
		case p == 0 || p == 1:
			e.out[p] = base || (done && e.phase == 1)
		case p == 2 || p == 3:
			e.out[p] = base || (done && e.phase == 3)
		default:
			e.out[p] = done
		}
	}
}

// EXP-F2 — Figure 2 / Theorem 1: Maximal Concurrency and Professor
// Fairness are incompatible. CC1 (maximally concurrent) starves
// professor 5 under the proof's schedule; CC2 (fair) breaks the cycle.
func init() {
	register(Experiment{
		ID:   "F2",
		What: "Figure 2 / Theorem 1: impossibility of MaxConc + Fairness",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "F2"}
			steps := 30000
			if cfg.Quick {
				steps = 8000
			}
			t := &Table{
				Title: "Theorem 1 schedule on H = {{1,2},{1,3,5},{3,4}}",
				Note: "Meetings of {1,2} and {3,4} are made to overlap forever " +
					"(each terminates only while the other is in session). " +
					"Under CC1 professor 5 never meets; CC2's token priority " +
					"eventually blocks the cycle and convenes {1,3,5}.",
				Header: []string{"algorithm", "convenes {1,2}", "convenes {3,4}", "convenes {1,3,5}", "prof-5 meetings"},
			}
			variants := []core.Variant{core.CC1, core.CC2}
			type cell struct {
				conv0, conv2, conv1, prof5 int
			}
			cells := par.Map(len(variants), func(i int) cell {
				h := hypergraph.Figure2()
				alg := core.New(variants[i], h, nil)
				env := &alternatingEnv{alg: alg, out: make([]bool, h.N())}
				r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, cfg.Seed, false)
				// Start from the proof's configuration A: professors 1,2
				// already meet in {1,2}; everyone else is waiting. (The
				// impossibility proof constructs its computation from A —
				// if the run instead starts idle, committee {1,3,5} can
				// legitimately convene once before the overlap is
				// established.)
				for v := 0; v < h.N(); v++ {
					v := v
					r.Engine.MutateProc(v, func(dst *core.State) {
						if v == 0 || v == 1 {
							dst.S, dst.P = core.Waiting, 0
						} else {
							dst.S, dst.P = core.Looking, core.NoEdge
						}
					})
				}
				r.SyncEnv()
				r.Run(steps)
				return cell{conv0: r.Convenes[0], conv2: r.Convenes[2], conv1: r.Convenes[1], prof5: r.ProfMeetings[4]}
			})
			for i, variant := range variants {
				c := cells[i]
				t.AddRow(variant.String(), c.conv0, c.conv2, c.conv1, c.prof5)
				switch variant {
				case core.CC1:
					if c.prof5 != 0 {
						res.failf("CC1: professor 5 met %d times under the starvation schedule", c.prof5)
					}
					if c.conv0 < 3 || c.conv2 < 3 {
						res.failf("CC1: the alternating meetings did not keep convening (%d/%d)", c.conv0, c.conv2)
					}
				case core.CC2:
					if c.prof5 == 0 {
						res.failf("CC2: professor 5 starved despite fairness")
					}
				}
			}
			res.Tables = []*Table{t}
			return res
		},
	})
}

// EXP-F3 — Figure 3: the CC1 example computation on the 10-professor
// topology. The replay checks the figure's milestones rather than the
// exact 9 frames (our TC realizes Property 1 with its own concrete token
// walk): professors 1..3 and 5..10 request meetings; professor 4 stays
// disinterested; all named committees convene, and in particular the
// low-identifier committee {5,6} — which loses every identifier
// tie-break — convenes thanks to the token priority (the figure's
// punchline).
func init() {
	register(Experiment{
		ID:   "F3",
		What: "Figure 3: CC1 example computation (milestone replay)",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "F3"}
			h := hypergraph.Figure3()
			alg := core.New(core.CC1, h, nil)
			// Professor 4 (vertex 3) never requests, as in the figure.
			masked := &maskedEnv{
				Env:     core.NewClient(h.N(), 1, 1, 2, cfg.Seed+1),
				allowed: make([]bool, h.N()),
			}
			for p := 0; p < h.N(); p++ {
				masked.allowed[p] = p != 3
			}
			r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, masked, cfg.Seed, false)
			steps := 40000
			if cfg.Quick {
				steps = 12000
			}
			firstConvene := make(map[int]int)
			r.OnConvene(func(step, e int) {
				if _, seen := firstConvene[e]; !seen {
					firstConvene[e] = step
				}
			})
			r.Run(steps)
			t := &Table{
				Title: "Figure 3 milestones",
				Note: "Committee {5,6} has the lowest identifiers in its neighborhood " +
					"and convenes only by token priority; professor 4 stays idle.",
				Header: []string{"committee (paper ids)", "first convene step", "convenes"},
			}
			for e := 0; e < h.M(); e++ {
				ids := make([]int, len(h.Edge(e)))
				for j, v := range h.Edge(e) {
					ids[j] = h.ID(v)
				}
				first := "-"
				if s, ok := firstConvene[e]; ok {
					first = fmt.Sprint(s)
				}
				t.AddRow(fmt.Sprint(ids), first, r.Convenes[e])
			}
			// Milestones: every committee not involving professor 4
			// convenes at least once; professor 4 never participates.
			for e := 0; e < h.M(); e++ {
				if h.Edge(e).Contains(3) {
					if r.Convenes[e] != 0 {
						res.failf("committee %d involves idle professor 4 but convened", e)
					}
					continue
				}
				if r.Convenes[e] == 0 {
					res.failf("committee %v never convened", h.Edge(e))
				}
			}
			if r.ProfMeetings[3] != 0 {
				res.failf("professor 4 (idle) participated in %d meetings", r.ProfMeetings[3])
			}
			// The punchline: {5,6} (edge index 3: vertices {4,5}) convenes.
			if r.Convenes[3] == 0 {
				res.failf("low-identifier committee {5,6} starved despite the token priority")
			}
			res.Tables = []*Table{t}
			return res
		},
	})
}

// maskedEnv gates RequestIn per professor on top of another Env.
type maskedEnv struct {
	Env     core.Env
	allowed []bool
}

func (m *maskedEnv) RequestIn(p int) bool           { return m.allowed[p] && m.Env.RequestIn(p) }
func (m *maskedEnv) RequestOut(p int) bool          { return m.Env.RequestOut(p) }
func (m *maskedEnv) Update(cfg []core.State, s int) { m.Env.Update(cfg, s) }

// EXP-F4 — Figure 4: the lock mechanism of CC2. Professors 3,4,5 are in
// a meeting; the token holder (professor 1) points at {1,2,5,8}; members
// of that committee become locked; professor 9 must therefore choose
// {6,7,9} over {8,9}, improving concurrency.
func init() {
	register(Experiment{
		ID:   "F4",
		What: "Figure 4: CC2 locks route professor 9 to {6,7,9}",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "F4"}
			h := hypergraph.Figure4()
			alg := core.New(core.CC2, h, nil)
			env := core.NewInfiniteMeetings(alg, nil)
			r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, cfg.Seed, false)

			// Build the figure's configuration. Edge indices:
			// e0={1,2,5,8}, e1={3,4,5}, e2={6,7,9}, e3={8,9} (paper ids).
			cfgNow := r.Engine.Config()
			set := func(v int, s core.Status, p int, tok bool) {
				st := cfgNow[v]
				st.S, st.P, st.T = s, p, tok
				r.Engine.MutateProc(v, func(dst *core.State) { *dst = st })
			}
			// Professors 3,4,5 (vertices 2,3,4) meet in e1.
			set(2, core.Waiting, 1, false)
			set(3, core.Waiting, 1, false)
			set(4, core.Waiting, 1, false)
			// Token is at vertex 0 (professor 1, the root): point at e0.
			set(0, core.Looking, 0, true)
			// Everyone else looking, unattached.
			for _, v := range []int{1, 5, 6, 7, 8} {
				set(v, core.Looking, core.NoEdge, false)
			}
			r.SyncEnv()

			steps := 4000
			if cfg.Quick {
				steps = 2000
			}
			sawLock8, sawNine := false, false
			converged := r.RunUntil(steps, func(c []core.State) bool {
				if c[7].L { // professor 8 (vertex 7) is a member of e0: locked
					sawLock8 = true
				}
				if c[8].P == 2 { // professor 9 chose {6,7,9}
					sawNine = true
				}
				// Both the convened committee and the published lock bit:
				// professor 8 stays locked as long as the token points at
				// {1,2,5,8}, so the weakly fair daemon publishes L_8
				// eventually even if {6,7,9} convenes first.
				return alg.EdgeMeets(c, 2) && sawLock8
			})
			t := &Table{
				Title:  "Figure 4 outcome",
				Header: []string{"check", "result"},
			}
			t.AddRow("professor 8 locked (member of token committee)", sawLock8)
			t.AddRow("professor 9 pointed at {6,7,9} (not {8,9})", sawNine)
			t.AddRow("{6,7,9} convened while {3,4,5} still meets", converged)
			t.AddRow("meetings at end", fmt.Sprint(alg.Meetings(r.Config())))
			if !sawLock8 {
				res.failf("professor 8 never became locked")
			}
			if !sawNine {
				res.failf("professor 9 never selected {6,7,9}")
			}
			if !converged {
				res.failf("{6,7,9} did not convene")
			}
			// Exclusion sanity: e1 must still be meeting (infinite).
			if !alg.EdgeMeets(r.Config(), 1) {
				res.failf("the infinite meeting {3,4,5} dissolved")
			}
			res.Tables = []*Table{t}
			return res
		},
	})
}
