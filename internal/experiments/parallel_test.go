package experiments

import (
	"bytes"
	"testing"

	"repro/internal/par"
)

// withWorkers runs fn with the pool forced to the given width. The pool
// width is a process-global; tests using it must not run in parallel
// with each other.
func withWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	old := par.Workers
	par.Workers = w
	defer func() { par.Workers = old }()
	fn()
}

// TestParallelRunMatchesSerial is the determinism contract of the
// parallel experiment runner: the rendered report of a parallel run must
// be byte-identical to a serial run with the same seed.
func TestParallelRunMatchesSerial(t *testing.T) {
	ids := []string{"F1", "T2", "TOKEN"}
	cfg := Config{Seed: 3, Quick: true}
	var serial, parOut bytes.Buffer
	withWorkers(t, 1, func() {
		if _, err := RunAll(ids, cfg, &serial); err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(t, 6, func() {
		if _, err := RunAll(ids, cfg, &parOut); err != nil {
			t.Fatal(err)
		}
	})
	if serial.String() != parOut.String() {
		t.Fatal("parallel report differs from serial report for the same seed")
	}
	if _, err := RunAll([]string{"F1", "nope"}, cfg, &parOut); err == nil {
		t.Fatal("RunAll with an unknown id must error before running")
	}
}
