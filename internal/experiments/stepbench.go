package experiments

import (
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// StepWorkload is one engine-step benchmark workload. The table below is
// the single source of truth shared by the BenchmarkStep* suite
// (bench_test.go) and `ccbench -bench-json`, so the JSON perf snapshots
// stay comparable to the published `go test -bench` numbers.
type StepWorkload struct {
	Name    string
	Variant core.Variant
	NewH    func() *hypergraph.H
}

// StepBenchWorkloads returns the workloads measured by ccbench
// -bench-json (a representative subset of the BenchmarkStep* suite).
func StepBenchWorkloads() []StepWorkload {
	return []StepWorkload{
		{"StepCC1_Ring32", core.CC1, func() *hypergraph.H { return hypergraph.CommitteeRing(32) }},
		{"StepCC2_Ring32", core.CC2, func() *hypergraph.H { return hypergraph.CommitteeRing(32) }},
		{"StepCC2_Figure3", core.CC2, func() *hypergraph.H { return hypergraph.Figure3() }},
		{"StepCC3_Ring8", core.CC3, func() *hypergraph.H { return hypergraph.CommitteeRing(8) }},
	}
}

// NewStepRunner builds the reference runner configuration every
// engine-step benchmark uses: weakly fair daemon (MaxAge 6),
// always-requesting client with a 2-step discussion, seed 1.
func NewStepRunner(variant core.Variant, h *hypergraph.H, randomInit bool) *core.Runner {
	alg := core.New(variant, h, nil)
	env := core.NewAlwaysClient(h.N(), 2)
	return core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, 1, randomInit)
}
