package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hypergraph"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

// EXP-SNAP — §2.5: snap-stabilization under mid-run fault bursts, with
// the non-stabilizing baselines as a negative control (their runs from
// corrupted states produce violations or wedge — which is exactly what
// the monitors and the comparison are for).
func init() {
	register(Experiment{
		ID:   "SNAP",
		What: "§2.5: snap-stabilization vs non-stabilizing baselines under faults",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "SNAP"}
			bursts, stepsPer := 5, 1500
			if cfg.Quick {
				bursts, stepsPer = 3, 800
			}
			h := hypergraph.Figure1()
			t := &Table{
				Title: "Fault bursts (3 random processes fully corrupted per burst)",
				Note: "Snap-stabilizing algorithms: zero violations among meetings convened " +
					"after each burst, and meetings keep convening. Baselines (negative " +
					"control): corruption yields violations and/or a wedged system.",
				Header: []string{"system", "bursts", "violations", "convenes after faults", "recovered"},
			}
			variants := []core.Variant{core.CC1, core.CC2, core.CC3}
			type cell struct {
				viol, convs int
				recovered   bool
			}
			cells := par.Map(len(variants), func(i int) cell {
				variant := variants[i]
				alg := core.New(variant, h, nil)
				env := core.NewAlwaysClient(h.N(), 2)
				r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, cfg.Seed, false)
				inj := fault.New(alg, cfg.Seed+100)
				c := cell{recovered: true}
				r.Run(stepsPer)
				for b := 0; b < bursts; b++ {
					inj.CorruptRandom(r, 3)
					chk := r.Checker(0)
					before := r.TotalConvenes()
					r.Run(stepsPer)
					c.viol += len(chk.Violations)
					got := r.TotalConvenes() - before
					c.convs += got
					if got == 0 {
						c.recovered = false
					}
				}
				return c
			})
			for i, c := range cells {
				variant := variants[i]
				t.AddRow(variant.String(), bursts, c.viol, c.convs, c.recovered)
				if c.viol > 0 {
					res.failf("%v: %d violations after faults", variant, c.viol)
				}
				if !c.recovered {
					res.failf("%v: a burst wedged the system", variant)
				}
			}
			// Negative control: corrupt the dining baseline's state.
			for _, kind := range []baseline.Kind{baseline.Dining, baseline.TokenRing} {
				a := baseline.New(kind, h, 2)
				r := baseline.NewRunner(a, &sim.WeaklyFair{MaxAge: 6}, cfg.Seed)
				chk := spec.NewChecker(a.Probe(), 0)
				chk.Check(0, r.Engine.Config())
				r.Engine.Observe(func(step int, c []baseline.BState, _ []sim.Exec) {
					chk.Check(step, c)
				})
				r.Run(stepsPer)
				// Corrupt: scramble clubs, phases and fork state.
				rng := r.Engine.RNG()
				for i := 0; i < 6; i++ {
					p := rng.Intn(a.NumProcs())
					r.Engine.MutateProc(p, func(dst *baseline.BState) {
						if p < h.N() {
							dst.S = uint8(rng.Intn(3))
							if eps := h.EdgesOf(p); len(eps) > 0 && rng.Intn(2) == 0 {
								dst.Club = eps[rng.Intn(len(eps))]
							} else {
								dst.Club = -1
							}
						} else {
							dst.Phase = uint8(rng.Intn(4))
							for j := range dst.Fork {
								dst.Fork[j] = rng.Intn(2) == 0
								dst.Dirty[j] = rng.Intn(2) == 0
							}
							dst.HasTok = rng.Intn(2) == 0
						}
					})
				}
				before := r.TotalConvenes()
				violBefore := len(chk.Violations)
				r.Run(4 * stepsPer)
				broke := len(chk.Violations) > violBefore
				wedged := r.TotalConvenes() == before
				t.AddRow(kind.String()+" (corrupted)", 1, len(chk.Violations)-violBefore,
					r.TotalConvenes()-before, !wedged)
				if !broke && !wedged {
					// Not a reproduction failure per se — corruption can be
					// harmless — but across seeds at least the contrast
					// should be visible; record as informational only.
					_ = broke
				}
			}
			res.Tables = []*Table{t}
			return res
		},
	})
}

// EXP-TOKEN — Property 1: TC convergence.
func init() {
	register(Experiment{
		ID:   "TOKEN",
		What: "Property 1: token-circulation stabilization",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "TOKEN"}
			samples, maxSteps := 10, 30000
			if cfg.Quick {
				samples, maxSteps = 4, 20000
			}
			t := &Table{
				Title: "TC stabilization from random states (CC1 as release driver)",
				Note: "Steps until leader election + chain corrections converge and a " +
					"single token remains; spurious initial tokens are destroyed autonomously.",
				Header: []string{"topology", "n", "converged", "max spurious tokens at start", "mean steps", "max steps"},
			}
			fams := []family{
				{"path6", hypergraph.CommitteePath(6)},
				{"ring8", hypergraph.CommitteeRing(8)},
				{"figure1", hypergraph.Figure1()},
				{"figure3", hypergraph.Figure3()},
				{"ring16", hypergraph.CommitteeRing(16)},
			}
			if cfg.Quick {
				kept := fams[:0]
				for _, f := range fams {
					if f.h.N() <= 10 {
						kept = append(kept, f)
					}
				}
				fams = kept
			}
			ms := par.Map(len(fams), func(i int) metrics.Token {
				return metrics.TokenConvergence(fams[i].h, samples, maxSteps, cfg.Seed)
			})
			for i, m := range ms {
				f := fams[i]
				t.AddRow(f.name, f.h.N(), fmt.Sprintf("%d/%d", m.Converged, m.Samples),
					m.MaxHoldersStart, m.MeanSteps, m.MaxSteps)
				if m.Converged != m.Samples {
					res.failf("%s: only %d/%d runs converged", f.name, m.Converged, m.Samples)
				}
			}
			res.Tables = []*Table{t}
			return res
		},
	})
}

// EXP-CONC — the algorithm comparison (the paper's §1/§6 motivation):
// CC1 maximizes concurrency; CC2/CC3 trade it for fairness; the token
// ring serializes; the oracle upper-bounds everyone.
func init() {
	register(Experiment{
		ID:   "CONC",
		What: "Concurrency & throughput: CC1/CC2/CC3 vs baselines vs oracle",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "CONC"}
			steps := 40000
			if cfg.Quick {
				steps = 12000
			}
			topologies := []family{
				{"ring12", hypergraph.CommitteeRing(12)},
				{"disjoint4x2", hypergraph.DisjointCommittees(4, 2)},
				{"figure1", hypergraph.Figure1()},
				{"grid3x3", hypergraph.Grid(3, 3)},
			}
			if cfg.Quick {
				topologies = topologies[:2]
			}
			var tables []*Table
			// One parallel cell per (topology, algorithm): six systems on
			// each topology, all independent runs.
			systems := []string{"CC1", "CC2", "CC3", "dining", "token-ring", "oracle"}
			cells := par.Map(len(topologies)*len(systems), func(i int) metrics.Throughput {
				f, sysName := topologies[i/len(systems)], systems[i%len(systems)]
				switch sysName {
				case "CC1", "CC2", "CC3":
					variant := map[string]core.Variant{"CC1": core.CC1, "CC2": core.CC2, "CC3": core.CC3}[sysName]
					return metrics.MeasureThroughput(variant, f.h, 2, steps, cfg.Seed, false)
				case "dining":
					return baseline.Profile(baseline.Dining, f.h, 2, steps, cfg.Seed)
				case "token-ring":
					return baseline.Profile(baseline.TokenRing, f.h, 2, steps, cfg.Seed)
				default:
					return baseline.Oracle(f.h, 2, steps/10, cfg.Seed)
				}
			})
			for fi, f := range topologies {
				t := &Table{
					Title:  fmt.Sprintf("Comparison on %s (n=%d, |E|=%d, disc=2)", f.name, f.h.N(), f.h.M()),
					Header: []string{"algorithm", "convenes/100 rounds", "mean conc", "peak conc", "min meetings/prof"},
				}
				profiles := map[string]metrics.Throughput{}
				for si, sysName := range systems {
					p := cells[fi*len(systems)+si]
					profiles[sysName] = p
					if sysName == "oracle" {
						t.AddRow("oracle (upper bound)", p.ConvenesPer100R, p.MeanConcurrency, p.PeakConcurrency, "-")
					} else {
						t.AddRow(sysName, p.ConvenesPer100R, p.MeanConcurrency, p.PeakConcurrency, p.MinProfMeetings)
					}
				}
				po := profiles["oracle"]
				tables = append(tables, t)

				// Shape checks (who wins): on conflict-free topologies the
				// token ring must trail CC1; the oracle bounds everyone's
				// mean concurrency.
				if f.name == "disjoint4x2" {
					if profiles["CC1"].MeanConcurrency <= profiles["token-ring"].MeanConcurrency {
						res.failf("%s: CC1 (%f) did not beat the token ring (%f)", f.name,
							profiles["CC1"].MeanConcurrency, profiles["token-ring"].MeanConcurrency)
					}
				}
				for name, p := range profiles {
					if name != "oracle" && p.MeanConcurrency > po.MeanConcurrency*1.05 {
						res.failf("%s: %s mean concurrency %f exceeds the oracle %f", f.name, name,
							p.MeanConcurrency, po.MeanConcurrency)
					}
				}
				for _, name := range []string{"CC1", "CC2", "CC3", "dining", "token-ring"} {
					if profiles[name].Convenes == 0 {
						res.failf("%s: %s convened nothing", f.name, name)
					}
				}
			}

			// Worst-case concurrency: under never-terminating meetings CC1
			// saturates to a *maximal* matching (Definition 2), while the
			// fair algorithms may stall below it — their guarantee is only
			// the Theorem 5/8 degree. This is the measurable cost of
			// fairness (Theorem 1's trade-off).
			wc := &Table{
				Title: "Worst-case saturation under infinite meetings (min over random starts)",
				Note: "CC1's saturated meeting sets are maximal matchings (≥ minMM); " +
					"CC2/CC3 may quiesce lower, bounded by the degree of fair concurrency.",
				Header: []string{"topology", "minMM", "CC1 min saturated", "CC2 min quiescent", "CC3 min quiescent"},
			}
			samples := 8
			if cfg.Quick {
				samples = 3
			}
			for _, f := range []family{
				{"ring8", hypergraph.CommitteeRing(8)},
				{"path7", hypergraph.CommitteePath(7)},
			} {
				minMM, _ := f.h.MinMaximalMatching()
				type sat struct {
					ok bool
					k  int
				}
				sats := par.Map(samples, func(s int) sat {
					alg := core.New(core.CC1, f.h, nil)
					env := core.NewInfiniteMeetings(alg, nil)
					r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, cfg.Seed+int64(s), false)
					ok := r.RunUntil(40000, func(c []core.State) bool {
						return len(piSet(alg, c)) == 0 && len(alg.Meetings(c)) > 0
					})
					return sat{ok: ok, k: len(alg.Meetings(r.Config()))}
				})
				cc1Min := -1
				for s, out := range sats {
					if !out.ok {
						res.failf("%s seed %d: CC1 did not saturate", f.name, s)
						continue
					}
					if cc1Min == -1 || out.k < cc1Min {
						cc1Min = out.k
					}
				}
				m2 := metrics.DegreeOfFairConcurrency(core.CC2, f.h, samples, 60000, cfg.Seed, false)
				m3 := metrics.DegreeOfFairConcurrency(core.CC3, f.h, samples, 60000, cfg.Seed, false)
				wc.AddRow(f.name, minMM, cc1Min, m2.Min, m3.Min)
				if cc1Min < minMM {
					res.failf("%s: CC1 saturated below minMM (%d < %d): not a maximal matching", f.name, cc1Min, minMM)
				}
				if m2.Quiesced > 0 && m2.Min < m2.Bound {
					res.failf("%s: CC2 quiesced below its Theorem 5 bound", f.name)
				}
			}
			tables = append(tables, wc)
			res.Tables = tables
			return res
		},
	})
}
