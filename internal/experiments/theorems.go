package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
)

// family is a named topology used across the theorem experiments.
type family struct {
	name string
	h    *hypergraph.H
}

func smallFamilies() []family {
	return []family{
		{"figure1", hypergraph.Figure1()},
		{"figure4", hypergraph.Figure4()},
		{"ring8", hypergraph.CommitteeRing(8)},
		{"path7", hypergraph.CommitteePath(7)},
		{"triples3", hypergraph.ChainOfTriples(3)},
		{"star6", hypergraph.Star(6)},
	}
}

// EXP-T2 — Theorem 2: CC1 ∘ TC is snap-stabilizing, satisfies the
// 2-phase committee coordination spec and Maximal Concurrency.
func init() {
	register(Experiment{
		ID:   "T2",
		What: "Theorem 2: CC1 snap-stabilization + Maximal Concurrency",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "T2"}
			seeds := 10
			steps := 3000
			if cfg.Quick {
				seeds, steps = 4, 1200
			}
			t := &Table{
				Title: "CC1 from arbitrary configurations (safety + progress)",
				Note: "Each cell aggregates runs from uniformly random initial " +
					"configurations under the weakly fair daemon. Snap-stabilization: " +
					"zero violations for meetings convened during the runs.",
				Header: []string{"topology", "runs", "violations", "total convenes", "min convenes/run"},
			}
			for _, f := range smallFamilies() {
				type cell struct{ viol, convenes int }
				cells := par.Map(seeds, func(s int) cell {
					alg := core.New(core.CC1, f.h, nil)
					env := core.NewAlwaysClient(f.h.N(), 2)
					r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, cfg.Seed+int64(s), true)
					chk := r.Checker(0)
					r.Run(steps)
					return cell{viol: len(chk.Violations), convenes: r.TotalConvenes()}
				})
				viol, total, minc := 0, 0, -1
				for _, c := range cells {
					viol += c.viol
					total += c.convenes
					if minc == -1 || c.convenes < minc {
						minc = c.convenes
					}
				}
				t.AddRow(f.name, seeds, viol, total, minc)
				if viol > 0 {
					res.failf("%s: %d specification violations", f.name, viol)
				}
				if minc == 0 {
					res.failf("%s: some run convened no meeting (progress)", f.name)
				}
			}

			// Maximal Concurrency (Definition 2): under never-terminating
			// meetings with every professor requesting, CC1 must keep
			// convening until no committee has all members waiting — i.e.
			// Π becomes (and stays) empty, equivalently the frozen
			// meetings form a *maximal* matching of H. This is the
			// schedule-independent form of Definition 2.
			t2 := &Table{
				Title:  "Definition 2: infinite meetings saturate to a maximal matching",
				Note:   "Π = committees whose members are all waiting; maximal concurrency drives Π to ∅.",
				Header: []string{"topology", "seed", "Π emptied", "meetings form maximal matching", "#meetings"},
			}
			satFamilies := []family{
				{"path6", hypergraph.CommitteePath(6)},
				{"ring8", hypergraph.CommitteeRing(8)},
				{"figure1", hypergraph.Figure1()},
			}
			type satCell struct {
				emptied, maximal bool
				meetings         []int
			}
			satCells := par.Map(len(satFamilies)*seeds, func(i int) satCell {
				f, s := satFamilies[i/seeds], i%seeds
				alg := core.New(core.CC1, f.h, nil)
				env := core.NewInfiniteMeetings(alg, nil)
				r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, cfg.Seed+int64(s), false)
				emptied := r.RunUntil(40000, func(c []core.State) bool {
					return len(piSet(alg, c)) == 0 && len(alg.Meetings(c)) > 0
				})
				meetings := alg.Meetings(r.Config())
				return satCell{emptied: emptied, maximal: f.h.IsMaximalMatching(meetings, nil), meetings: meetings}
			})
			for i, c := range satCells {
				f, s := satFamilies[i/seeds], i%seeds
				t2.AddRow(f.name, s, c.emptied, c.maximal, len(c.meetings))
				if !c.emptied {
					res.failf("%s seed %d: Π never emptied (meetings %v)", f.name, s, c.meetings)
				}
				if c.emptied && !c.maximal {
					res.failf("%s seed %d: frozen meetings %v not a maximal matching", f.name, s, c.meetings)
				}
			}
			res.Tables = []*Table{t, t2}
			return res
		},
	})
}

// EXP-T3 — Theorem 3: CC2 ∘ TC is snap-stabilizing and professor-fair.
func init() {
	register(Experiment{
		ID:   "T3",
		What: "Theorem 3: CC2 snap-stabilization + Professor Fairness",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "T3"}
			steps := 40000
			if cfg.Quick {
				steps = 15000
			}
			t := &Table{
				Title: "CC2 fairness from arbitrary configurations",
				Note: "min/max meetings per professor over the run, and the largest " +
					"gap (in rounds) between successive participations.",
				Header: []string{"topology", "violations", "min meetings", "max meetings", "max wait (rounds)"},
			}
			fams := smallFamilies()
			type cell struct{ viol, min, max, wait int }
			cells := par.Map(len(fams), func(i int) cell {
				f := fams[i]
				alg := core.New(core.CC2, f.h, nil)
				env := core.NewAlwaysClient(f.h.N(), 2)
				r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, cfg.Seed, true)
				chk := r.Checker(0)
				r.Run(steps)
				c := cell{viol: len(chk.Violations), min: -1}
				for p := 0; p < f.h.N(); p++ {
					if len(f.h.EdgesOf(p)) == 0 {
						continue
					}
					m := r.ProfMeetings[p]
					if c.min == -1 || m < c.min {
						c.min = m
					}
					if m > c.max {
						c.max = m
					}
					if r.MaxWaitRounds[p] > c.wait {
						c.wait = r.MaxWaitRounds[p]
					}
				}
				return c
			})
			for i, c := range cells {
				f := fams[i]
				t.AddRow(f.name, c.viol, c.min, c.max, c.wait)
				if c.viol > 0 {
					res.failf("%s: %d violations", f.name, c.viol)
				}
				if c.min < 2 {
					res.failf("%s: a professor met only %d times (fairness)", f.name, c.min)
				}
			}
			res.Tables = []*Table{t}
			return res
		},
	})
}

// degreeTable builds the Theorems 4/5 (CC2) or 7/8 (CC3) table.
func degreeTable(variant core.Variant, cfg Config, res *Result) *Table {
	samples, steps := 12, 80000
	if cfg.Quick {
		samples, steps = 4, 40000
	}
	thName, exactName := "minMM-MaxMin+1", "min(MM∪AMM)"
	if variant == core.CC3 {
		thName, exactName = "minMM-MaxHEdge+1", "min(MM∪AMM')"
	}
	t := &Table{
		Title: fmt.Sprintf("Degree of fair concurrency of %s (quiescent meetings under infinite meetings)", variant),
		Note: "Observed = meetings held at quiescence from random arbitrary starts. " +
			"Theorems 4/7: observed ≥ exact combinatorial minimum; Theorems 5/8: exact ≥ analytic bound.",
		Header: []string{"topology", "n", "|E|", "minMM", thName, exactName, "observed min", "observed mean", "quiesced"},
	}
	fams := smallFamilies()
	ms := par.Map(len(fams), func(i int) metrics.Concurrency {
		return metrics.DegreeOfFairConcurrency(variant, fams[i].h, samples, steps, cfg.Seed, true)
	})
	for i, m := range ms {
		f := fams[i]
		t.AddRow(f.name, f.h.N(), f.h.M(), m.MinMM, m.Bound, m.ExactMin, m.Min, m.Mean, fmt.Sprintf("%d/%d", m.Quiesced, m.Samples))
		if m.Quiesced == 0 {
			res.failf("%s: no run quiesced", f.name)
			continue
		}
		if m.Min < m.ExactMin {
			res.failf("%s: observed degree %d below exact theorem minimum %d", f.name, m.Min, m.ExactMin)
		}
		if m.ExactMin < m.Bound {
			res.failf("%s: exact minimum %d below analytic bound %d", f.name, m.ExactMin, m.Bound)
		}
	}
	return t
}

// EXP-T45 — Theorems 4 and 5.
func init() {
	register(Experiment{
		ID:   "T45",
		What: "Theorems 4 & 5: degree of fair concurrency of CC2",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "T45"}
			res.Tables = []*Table{degreeTable(core.CC2, cfg, res)}
			return res
		},
	})
}

// EXP-T78 — Theorems 7 and 8 (CC3), plus the Committee Fairness witness.
func init() {
	register(Experiment{
		ID:   "T78",
		What: "Theorems 7 & 8: CC3 committee fairness and its degree",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "T78"}
			t := degreeTable(core.CC3, cfg, res)

			steps := 60000
			if cfg.Quick {
				steps = 25000
			}
			t2 := &Table{
				Title:  "Committee Fairness of CC3 (Definition 4)",
				Header: []string{"topology", "min convenes/committee", "max convenes/committee"},
			}
			for _, f := range []family{
				{"figure1", hypergraph.Figure1()},
				{"ring6", hypergraph.CommitteeRing(6)},
			} {
				alg := core.New(core.CC3, f.h, nil)
				env := core.NewAlwaysClient(f.h.N(), 2)
				r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, cfg.Seed, true)
				r.Run(steps)
				min, max := -1, 0
				for _, c := range r.Convenes {
					if min == -1 || c < min {
						min = c
					}
					if c > max {
						max = c
					}
				}
				t2.AddRow(f.name, min, max)
				if min < 1 {
					res.failf("%s: some committee never convened under CC3", f.name)
				}
			}
			res.Tables = []*Table{t, t2}
			return res
		},
	})
}

// EXP-T6 — Theorem 6: waiting time O(maxDisc · n) rounds.
func init() {
	register(Experiment{
		ID:   "T6",
		What: "Theorem 6: waiting time of CC2 is O(maxDisc × n) rounds",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "T6"}
			ns := []int{4, 8, 12, 16, 24}
			discs := []int{1, 4, 8}
			steps := 60000
			if cfg.Quick {
				ns = []int{4, 8, 12}
				discs = []int{1, 4}
				steps = 25000
			}
			t := &Table{
				Title: "Max waiting time on committee rings (rounds)",
				Note: "Theorem 6 predicts O(maxDisc × n); the normalized column " +
					"(maxWait / (maxDisc × n)) should stay bounded as n grows.",
				Header: []string{"n", "maxDisc", "max wait (rounds)", "mean wait", "normalized", "convenes"},
			}
			worst := 0.0
			ws := par.Map(len(ns)*len(discs), func(i int) metrics.Waiting {
				n, d := ns[i/len(discs)], discs[i%len(discs)]
				return metrics.WaitingTime(core.CC2, hypergraph.CommitteeRing(n), d, steps, cfg.Seed)
			})
			for i, w := range ws {
				n, d := ns[i/len(discs)], discs[i%len(discs)]
				t.AddRow(n, d, w.MaxRounds, w.MeanRounds, w.NormalizedN, w.Convenes)
				if w.Convenes == 0 {
					res.failf("n=%d disc=%d: no meetings", n, d)
				}
				if w.NormalizedN > worst {
					worst = w.NormalizedN
				}
			}
			// The constant is implementation-specific; the claim checked is
			// boundedness: no configuration should exceed a generous factor.
			if worst > 30 {
				res.failf("normalized waiting time %.1f suggests super-linear growth", worst)
			}
			res.Tables = []*Table{t}
			return res
		},
	})
}

// piSet returns Π (Definition 2): the committees whose members are all
// waiting (abstractly) and which do not meet.
func piSet(alg *core.Alg, cfg []core.State) []int {
	var out []int
	for e := 0; e < alg.H.M(); e++ {
		if alg.EdgeMeets(cfg, e) {
			continue
		}
		all := true
		for _, q := range alg.H.Edge(e) {
			if !alg.WaitingAbstract(cfg, q) {
				all = false
				break
			}
		}
		if all {
			out = append(out, e)
		}
	}
	return out
}
