package experiments

import (
	"repro/internal/campaign"
	"repro/internal/explore"
	"repro/internal/par"
	"repro/internal/store"
)

// MC — bounded exhaustive model checking of the paper's safety theorems.
// Where every other experiment samples computations, MC enumerates them:
// the full reachable configuration space of CC1/CC2/CC3 on small
// topologies from the entire CC-layer fault family, branching over every
// daemon choice. Checked on every state/transition: Exclusion,
// Synchronization, Essential Discussion (§2.3–2.4 via §2.5
// snap-stabilization), closure of Correct(p) (Lemmas 3/8), the
// one-round convergence bound (Corollaries 3/5, synchronous mode), and
// deadlock-freedom. The baselines are explored from their legitimate
// configuration for contrast — the dining reduction's schedule-dependent
// wedge on the 3-ring is reported but is not a failing claim (the
// related-work algorithms make no stabilization promise).
//
// Every cell is a content-addressed job spec executed through
// campaign.Execute — the same runner behind cccheck and ccserve — so
// with Config.CacheDir set, verdicts flow through the shared store in
// both directions.
func init() {
	register(Experiment{
		ID:   "MC",
		What: "exhaustive verification: §2.5 snap-stabilization safety on bounded instances",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "MC"}
			table := &Table{
				Title: "Exhaustive state-space checks",
				Note: "Every initial configuration of the listed fault family, every daemon choice of the " +
					"listed branching mode; a row verifies iff no state or transition violates the spec.",
				Header: []string{"algorithm", "topology", "init family", "daemon branching", "inits", "states", "transitions", "deadlocks", "violations"},
			}

			var st store.Interface
			if cfg.CacheDir != "" {
				var err error
				if st, err = store.OpenEngine(cfg.StoreEngine, cfg.CacheDir, nil); err != nil {
					res.failf("MC: cache: %v", err)
					return res
				}
				defer st.Close()
			}
			// runCell serves one content-addressed cell, through the
			// store when configured. Cells fan across the pool, so each
			// explores with one worker.
			runCell := func(spec store.JobSpec) (*explore.Result, error) {
				spec = spec.Canonical()
				if st != nil {
					if r, _, ok := st.Get(spec); ok {
						return r, nil
					}
				}
				r, err := campaign.Execute(spec, 1)
				if err != nil {
					return nil, err
				}
				if st != nil {
					if _, err := st.Put(spec, r); err != nil {
						return nil, err
					}
				}
				return r, nil
			}

			cell := func(alg, topo, init, daemon string) store.JobSpec {
				return store.JobSpec{
					Alg: alg, Topo: topo, Init: init, Daemon: daemon,
					Seed: cfg.Seed, MaxStates: 6_000_000, MaxViolations: 5,
				}
			}
			cells := []store.JobSpec{
				cell("cc1", "ring:3", "cc-full", "central"),
				cell("cc1", "ring:3", "cc-full", "synchronous"),
				cell("cc2", "ring:3", "cc-full", "central"),
				cell("cc2", "ring:3", "cc-full", "synchronous"),
				cell("cc2", "ring:3", "cc-full", "all-subsets"),
				cell("cc3", "ring:3", "cc-full", "central"),
				cell("cc2", "star:4", "cc", "all-subsets"),
			}
			if !cfg.Quick {
				cells = append(cells,
					cell("cc1", "ring:3", "cc-full", "all-subsets"),
					cell("cc3", "ring:3", "cc-full", "all-subsets"),
					// Central/all-subsets branching over the triples fault
					// space exceeds the state budget; the synchronous mode
					// completes and carries the convergence-bound check.
					cell("cc2", "triples:3", "cc", "synchronous"),
				)
			}

			type outcome struct {
				r   *explore.Result
				err error
			}
			results := par.Map(len(cells), func(i int) outcome {
				r, err := runCell(cells[i])
				return outcome{r, err}
			})
			for i, o := range results {
				c := cells[i].Canonical()
				if o.err != nil {
					res.failf("MC %s: %v", c, o.err)
					continue
				}
				r := o.r
				table.AddRow(c.Alg, c.Topo, c.Init, c.Daemon,
					r.Inits, r.States, r.Transitions, r.Deadlocks, len(r.Violations))
				switch {
				case !r.Ok(): // before Truncated: hitting the violations cap also truncates
					res.failf("MC %s/%s/%s: %s", c.Alg, c.Topo, c.Daemon, r.Violations[0])
				case r.Truncated:
					res.failf("MC %s/%s/%s: exploration truncated (%s) — raise the bound", c.Alg, c.Topo, c.Daemon, r.Summary())
				case r.Deadlocks > 0:
					res.failf("MC %s/%s/%s: %d deadlocks", c.Alg, c.Topo, c.Daemon, r.Deadlocks)
				}
			}
			res.Tables = append(res.Tables, table)

			// Baselines, for contrast (informational: no stabilization claim).
			bt := &Table{
				Title: "Baselines from the legitimate configuration (contrast, not a claim)",
				Note: "The dining reduction wedges under some central schedules on the 3-ring; " +
					"the snap-stabilizing algorithms above verify deadlock-free on the same topology.",
				Header: []string{"algorithm", "topology", "states", "transitions", "deadlocks", "spec violations"},
			}
			for _, alg := range []string{"dining", "token-ring"} {
				spec := store.JobSpec{
					Alg: alg, Topo: "ring:3", Init: "legit", Daemon: "central",
					MaxStates: 2_000_000, MaxViolations: 5, NoDeadlock: true,
				}
				r, err := runCell(spec)
				if err != nil {
					res.failf("MC baseline %s: %v", alg, err)
					continue
				}
				specViol := 0
				for _, v := range r.Violations {
					if v.Kind != explore.KindDeadlock {
						specViol++
					}
				}
				bt.AddRow(alg, "ring:3", r.States, r.Transitions, r.Deadlocks, specViol)
				if specViol > 0 {
					res.failf("MC baseline %s: spec violation from the legitimate configuration: %s",
						alg, r.Violations[0])
				}
			}
			res.Tables = append(res.Tables, bt)
			return res
		},
	})
}
