package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/sim"
)

// MC — bounded exhaustive model checking of the paper's safety theorems.
// Where every other experiment samples computations, MC enumerates them:
// the full reachable configuration space of CC1/CC2/CC3 on small
// topologies from the entire CC-layer fault family, branching over every
// daemon choice. Checked on every state/transition: Exclusion,
// Synchronization, Essential Discussion (§2.3–2.4 via §2.5
// snap-stabilization), closure of Correct(p) (Lemmas 3/8), the
// one-round convergence bound (Corollaries 3/5, synchronous mode), and
// deadlock-freedom. The baselines are explored from their legitimate
// configuration for contrast — the dining reduction's schedule-dependent
// wedge on the 3-ring is reported but is not a failing claim (the
// related-work algorithms make no stabilization promise).
func init() {
	register(Experiment{
		ID:   "MC",
		What: "exhaustive verification: §2.5 snap-stabilization safety on bounded instances",
		RunFn: func(cfg Config) *Result {
			res := &Result{ID: "MC"}
			table := &Table{
				Title: "Exhaustive state-space checks",
				Note: "Every initial configuration of the listed fault family, every daemon choice of the " +
					"listed branching mode; a row verifies iff no state or transition violates the spec.",
				Header: []string{"algorithm", "topology", "init family", "daemon branching", "inits", "states", "transitions", "deadlocks", "violations"},
			}

			type cell struct {
				alg     string
				variant core.Variant
				topo    string
				mkH     func() *hypergraph.H
				init    explore.InitMode
				mode    sim.SelectionMode
			}
			ring3 := func() *hypergraph.H { return hypergraph.CommitteeRing(3) }
			star4 := func() *hypergraph.H { return hypergraph.Star(4) }
			cells := []cell{
				{"CC1", core.CC1, "ring:3", ring3, explore.InitCCFull, sim.SelectCentral},
				{"CC1", core.CC1, "ring:3", ring3, explore.InitCCFull, sim.SelectSynchronous},
				{"CC2", core.CC2, "ring:3", ring3, explore.InitCCFull, sim.SelectCentral},
				{"CC2", core.CC2, "ring:3", ring3, explore.InitCCFull, sim.SelectSynchronous},
				{"CC2", core.CC2, "ring:3", ring3, explore.InitCCFull, sim.SelectAllSubsets},
				{"CC3", core.CC3, "ring:3", ring3, explore.InitCCFull, sim.SelectCentral},
				{"CC2", core.CC2, "star:4", star4, explore.InitCC, sim.SelectAllSubsets},
			}
			if !cfg.Quick {
				triples3 := func() *hypergraph.H { return hypergraph.ChainOfTriples(3) }
				cells = append(cells,
					cell{"CC1", core.CC1, "ring:3", ring3, explore.InitCCFull, sim.SelectAllSubsets},
					cell{"CC3", core.CC3, "ring:3", ring3, explore.InitCCFull, sim.SelectAllSubsets},
					// Central/all-subsets branching over the triples fault
					// space exceeds the state budget; the synchronous mode
					// completes and carries the convergence-bound check.
					cell{"CC2", core.CC2, "triples:3", triples3, explore.InitCC, sim.SelectSynchronous},
				)
			}

			results := par.Map(len(cells), func(i int) *explore.Result {
				c := cells[i]
				factory, err := explore.CC(c.variant, c.mkH(), explore.CCOptions{Init: c.init, Seed: cfg.Seed})
				if err != nil {
					panic(err) // static cell table; cannot fail
				}
				opts := explore.Options{
					Mode:          c.mode,
					MaxStates:     6_000_000,
					CheckDeadlock: true,
					CheckClosure:  true,
					Workers:       1, // cells already fan across the pool
				}
				if c.mode == sim.SelectSynchronous {
					opts.CheckConvergence = true
				}
				return explore.Explore(factory, opts)
			})
			for i, r := range results {
				c := cells[i]
				table.AddRow(c.alg, c.topo, c.init.String(), c.mode.String(),
					r.Inits, r.States, r.Transitions, r.Deadlocks, len(r.Violations))
				switch {
				case !r.Ok(): // before Truncated: hitting the violations cap also truncates
					res.failf("MC %s/%s/%s: %s", c.alg, c.topo, c.mode, r.Violations[0])
				case r.Truncated:
					res.failf("MC %s/%s/%s: exploration truncated (%s) — raise the bound", c.alg, c.topo, c.mode, r.Summary())
				case r.Deadlocks > 0:
					res.failf("MC %s/%s/%s: %d deadlocks", c.alg, c.topo, c.mode, r.Deadlocks)
				}
			}
			res.Tables = append(res.Tables, table)

			// Baselines, for contrast (informational: no stabilization claim).
			bt := &Table{
				Title: "Baselines from the legitimate configuration (contrast, not a claim)",
				Note: "The dining reduction wedges under some central schedules on the 3-ring; " +
					"the snap-stabilizing algorithms above verify deadlock-free on the same topology.",
				Header: []string{"algorithm", "topology", "states", "transitions", "deadlocks", "spec violations"},
			}
			for _, kind := range []baseline.Kind{baseline.Dining, baseline.TokenRing} {
				factory, err := explore.Baseline(kind, hypergraph.CommitteeRing(3), 1)
				if err != nil {
					panic(err)
				}
				r := explore.Explore(factory, explore.Options{
					Mode: sim.SelectCentral, MaxStates: 2_000_000, CheckDeadlock: false,
				})
				specViol := 0
				for _, v := range r.Violations {
					if v.Kind != explore.KindDeadlock {
						specViol++
					}
				}
				bt.AddRow(kind.String(), "ring:3", r.States, r.Transitions, r.Deadlocks, specViol)
				if specViol > 0 {
					res.failf("MC baseline %s: spec violation from the legitimate configuration: %s",
						kind, r.Violations[0])
				}
			}
			res.Tables = append(res.Tables, bt)
			return res
		},
	})
}
