package explore

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// TestBatchSteadyStateZeroAlloc pins the batch pipeline's allocation
// contract: once every successor of a state is already in the visited
// set (the steady state of a converging BFS — by far the common case,
// since each state is discovered once but re-derived once per inbound
// transition), expanding it must allocate nothing. Eval, bulk apply,
// key patching, the visited probe and the incremental spec checks all
// run on worker-owned scratch; the only allocating paths are fresh
// states (arena append) and violations (rare by design).
func TestBatchSteadyStateZeroAlloc(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCCFull})
	m := factory()
	opts := &Options{Mode: sim.SelectAllSubsets, CheckDeadlock: true, CheckClosure: true}
	ws := newWorkerState(m, opts)
	if ws.bkern == nil {
		t.Fatal("batch pipeline not engaged for the CC model")
	}
	vs := NewVisited(m.Codec.Words)
	vs.SetSerial(true)

	// Drive the full BFS through expandBatch itself, replicating the
	// engine's probe → drain → promote layer discipline.
	enc := make([]uint64, m.Codec.Words)
	seq := uint64(0)
	m.Inits(func(cfg []core.State) bool {
		m.Codec.Encode(enc, cfg)
		vs.Probe(enc, hashWords(enc), seq, -1, nil)
		seq++
		return true
	})
	promote := func() []int32 {
		fresh := vs.Drain()
		ids := make([]int32, 0, len(fresh))
		for _, f := range fresh {
			ids = append(ids, vs.Promote(f))
		}
		vs.Reset()
		return ids
	}
	agg := &layerAgg{}
	depth := 0
	var mid int32
	for layer := promote(); len(layer) > 0; layer = promote() {
		mid = layer[len(layer)/2]
		for item, id := range layer {
			ws.expandBatch(vs, agg, id, item, depth)
		}
		depth++
	}
	if len(agg.viols) != 0 {
		t.Fatalf("clean model produced %d violations", len(agg.viols))
	}
	if vs.States() == 0 || vs.Pending() != 0 {
		t.Fatalf("BFS did not converge: %d states, %d pending", vs.States(), vs.Pending())
	}

	// Steady state: every successor of mid is known. Zero allocations.
	if allocs := testing.AllocsPerRun(50, func() {
		ws.expandBatch(vs, agg, mid, 0, depth)
	}); allocs != 0 {
		t.Fatalf("steady-state batch expansion allocates %v times per state, want 0", allocs)
	}
}

// TestSpillThroughputRatio pins the out-of-core tax on the batch
// pipeline (cc2/ring:4/cc-full/central, bounded): with both the
// frontier and the cold visited arena forced to disk by a 1 MiB
// budget, states/sec must stay within 5% of the fully in-memory run.
// The cc-full fault space keeps each run around two seconds, so the
// fixed spill setup (scratch files, budget bookkeeping) is noise next
// to steady-state throughput. Timing-based, so it takes the best of
// three attempts before judging — a genuine regression (the spill
// path falling off the batch fast path, say) fails all three by a
// wide margin.
func TestSpillThroughputRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("timing ratio: skipped in -short")
	}
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(4), CCOptions{Init: InitCCFull})
	opts := Options{
		Mode: sim.SelectCentral, MaxStates: 600_000,
		CheckDeadlock: true, CheckClosure: true,
	}
	run := func(budget int64) (*Result, float64) {
		o := opts
		o.MemBudget = budget
		o.SpillDir = t.TempDir()
		t0 := time.Now()
		res := Explore(factory, o)
		return res, float64(res.States) / time.Since(t0).Seconds()
	}
	const want = 0.95
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		mem, memRate := run(0)
		spill, spillRate := run(1 << 20)
		if mem.States != spill.States || mem.Transitions != spill.Transitions ||
			mem.Verdict() != spill.Verdict() {
			t.Fatalf("spill run diverged: %s vs %s", spill.Summary(), mem.Summary())
		}
		if ratio := spillRate / memRate; ratio > best {
			best = ratio
		}
		if best >= want {
			return
		}
	}
	t.Fatalf("spill-mode throughput ratio %.3f, want >= %.2f", best, want)
}
