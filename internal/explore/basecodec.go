package explore

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hypergraph"
)

// Binary codec for the baseline configurations. Professors carry a
// status (3 values), a club pointer in E_p ∪ {⊥} and the voluntary-
// discussion clock in [0, Disc]; committee agents carry a phase (4
// values), the token bits and three bits per conflict neighbor. All
// other fields are singleton domains and occupy zero bits (encode
// asserts they hold their only admissible value).

type baseLayout struct {
	h        *hypergraph.H
	disc     int
	procs    []baseProcLayout
	procOff  []int
	procBits []int
	incr     bool // every block ≤ 64 bits: incremental encoding available
	words    int
}

type baseProcLayout struct {
	comm   bool
	edges  []int // professors: E_p
	wClub  int
	wAge   int
	nconfl int // committee agents: |conflicts(e)|
}

// newBaseLayout compiles the codec for one baseline kind: only dining
// carries per-conflict-neighbor fork vectors (the token ring's agents
// keep them nil, which encode asserts).
func newBaseLayout(h *hypergraph.H, disc int, forks bool) *baseLayout {
	l := &baseLayout{h: h, disc: disc, procs: make([]baseProcLayout, h.N()+h.M()), incr: true}
	conflicts := h.ConflictGraph()
	bits := 0
	l.procOff = make([]int, len(l.procs))
	l.procBits = make([]int, len(l.procs))
	for p := range l.procs {
		pl := &l.procs[p]
		pb := 0
		if p < h.N() {
			pl.edges = h.EdgesOf(p)
			pl.wClub = core.BitWidth(len(pl.edges) + 1)
			pl.wAge = core.BitWidth(disc + 1)
			pb = 2 + pl.wClub + pl.wAge
		} else {
			pl.comm = true
			if forks {
				pl.nconfl = len(conflicts[p-h.N()])
			}
			pb = 2 + 2 + 3*pl.nconfl
		}
		if pb > 64 {
			l.incr = false
		}
		l.procOff[p] = bits
		l.procBits[p] = pb
		bits += pb
	}
	l.words = (bits + 63) / 64
	if l.words == 0 {
		l.words = 1
	}
	return l
}

// encodeProc packs process p's field block (dining agents with more
// than 20 conflict neighbors exceed 64 bits; l.incr is then false and
// this must not be used).
func (l *baseLayout) encodeProc(cfg []baseline.BState, p int) uint64 {
	s := &cfg[p]
	pl := &l.procs[p]
	if !pl.comm {
		acc := fieldVal(int(s.S), 0, 3, "status", p)
		club := 0
		if s.Club != -1 {
			if club = localPos(pl.edges, s.Club) + 1; club == 0 {
				panic(fmt.Sprintf("explore: club %d of professor %d not in E_p", s.Club, p))
			}
		}
		acc |= uint64(club) << 2
		acc |= fieldVal(s.Age, 0, l.disc+1, "age", p) << (2 + pl.wClub)
		return acc
	}
	if s.Club != -1 || s.Age != 0 || s.S != 0 {
		panic(fmt.Sprintf("explore: committee agent %d holds professor state", p))
	}
	acc := fieldVal(int(s.Phase), 0, 4, "phase", p)
	acc |= boolBit(s.HasTok) << 2
	acc |= boolBit(s.Handing) << 3
	if len(s.Fork) != pl.nconfl {
		panic(fmt.Sprintf("explore: committee agent %d has %d fork slots, want %d", p, len(s.Fork), pl.nconfl))
	}
	b := 4
	for i := 0; i < pl.nconfl; i++ {
		acc |= (boolBit(s.Fork[i]) | boolBit(s.Dirty[i])<<1 | boolBit(s.Asked[i])<<2) << b
		b += 3
	}
	return acc
}

func (l *baseLayout) encode(dst []uint64, cfg []baseline.BState) {
	if l.incr {
		w := newBitWriter(dst)
		for p := range cfg {
			w.put(l.encodeProc(cfg, p), l.procBits[p])
		}
		w.flush()
		return
	}
	// Wide-block fallback (dining agents beyond 20 conflict neighbors).
	w := newBitWriter(dst)
	for p := range cfg {
		s := &cfg[p]
		pl := &l.procs[p]
		if !pl.comm {
			w.put(l.encodeProc(cfg, p), l.procBits[p])
			continue
		}
		if s.Club != -1 || s.Age != 0 || s.S != 0 {
			panic(fmt.Sprintf("explore: committee agent %d holds professor state", p))
		}
		w.put(fieldVal(int(s.Phase), 0, 4, "phase", p), 2)
		w.put(boolBit(s.HasTok), 1)
		w.put(boolBit(s.Handing), 1)
		if len(s.Fork) != pl.nconfl {
			panic(fmt.Sprintf("explore: committee agent %d has %d fork slots, want %d", p, len(s.Fork), pl.nconfl))
		}
		for i := 0; i < pl.nconfl; i++ {
			w.put(boolBit(s.Fork[i])|boolBit(s.Dirty[i])<<1|boolBit(s.Asked[i])<<2, 3)
		}
	}
	w.flush()
}

// decode unpacks src into cfg, reusing each committee agent's fork
// backing array when already sized (the explorer decodes into one
// buffer per worker, so the per-neighbor vectors allocate once).
func (l *baseLayout) decode(cfg []baseline.BState, src []uint64) {
	r := bitReader{src: src}
	for p := range cfg {
		s := &cfg[p]
		pl := &l.procs[p]
		if !pl.comm {
			s.S = uint8(r.get(2))
			if club := int(r.get(pl.wClub)); club == 0 {
				s.Club = -1
			} else {
				s.Club = pl.edges[club-1]
			}
			s.Age = int(r.get(pl.wAge))
			s.Phase, s.HasTok, s.Handing = 0, false, false
			s.Fork, s.Dirty, s.Asked = nil, nil, nil
			continue
		}
		s.S, s.Club, s.Age = 0, -1, 0
		s.Phase = uint8(r.get(2))
		s.HasTok = r.get(1) != 0
		s.Handing = r.get(1) != 0
		k := pl.nconfl
		if len(s.Fork) != k {
			buf := make([]bool, 3*k)
			s.Fork = buf[0*k : 1*k : 1*k]
			s.Dirty = buf[1*k : 2*k : 2*k]
			s.Asked = buf[2*k : 3*k : 3*k]
		}
		for i := 0; i < k; i++ {
			b := r.get(3)
			s.Fork[i] = b&1 != 0
			s.Dirty[i] = b&2 != 0
			s.Asked[i] = b&4 != 0
		}
	}
}

func baseCodec(l *baseLayout) Codec[baseline.BState] {
	c := Codec[baseline.BState]{
		Words:  l.words,
		Encode: l.encode,
		Decode: l.decode,
	}
	if l.incr {
		c.ProcOff, c.ProcBits, c.EncodeProc = l.procOff, l.procBits, l.encodeProc
	}
	return c
}
