package explore

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/hypergraph"
)

// Baseline adapts the related-work baselines (dining, token-ring) to the
// explorer. The baselines are *not* self-stabilizing, so only the
// legitimate initial configuration is seeded — which is precisely the
// interesting contrast: the CC algorithms verify from arbitrary initial
// configurations, the baselines only from their hand-prepared one.
// There is no Correct(p) predicate either, so the closure and
// convergence checks are unavailable; exclusion, synchronization,
// essential discussion and deadlock-freedom still apply.
func Baseline(kind baseline.Kind, h *hypergraph.H, disc int) (func() *Model[baseline.BState], error) {
	if h.N()+h.M() > 250 {
		return nil, fmt.Errorf("explore: topology too large for the state codec (n+m=%d; max 250)", h.N()+h.M())
	}
	name := fmt.Sprintf("%s/%s", kind, h)
	return func() *Model[baseline.BState] {
		a := baseline.New(kind, h, disc)
		prog := a.Program()
		n := prog.NumProcs
		return &Model[baseline.BState]{
			Name:  name,
			Prog:  prog,
			Probe: a.Probe(),
			Encode: func(dst []byte, cfg []baseline.BState) []byte {
				return encodeBase(dst, cfg)
			},
			Decode: func(key string) []baseline.BState { return decodeBase(key, n) },
			Inits: func(yield func(cfg []baseline.BState) bool) {
				cfg := make([]baseline.BState, n)
				for p := 0; p < n; p++ {
					cfg[p] = prog.Init(p, nil)
				}
				yield(cfg)
			},
			Render: func(cfg []baseline.BState) string { return renderBase(a, cfg) },
		}
	}, nil
}

// encodeBase encodes a baseline configuration: per process a status
// byte, Club and Age as offset int16s, a phase byte, a flag byte
// (HasTok, Handing), a fork-vector length byte, then one byte per
// conflict neighbor packing (Fork, Dirty, Asked). The length prefix
// makes the encoding self-describing, so Decode needs no topology.
func encodeBase(dst []byte, cfg []baseline.BState) []byte {
	for p := range cfg {
		s := &cfg[p]
		flags := byte(0)
		if s.HasTok {
			flags |= 1
		}
		if s.Handing {
			flags |= 2
		}
		dst = append(dst, s.S)
		dst = appendI16(dst, s.Club)
		dst = appendI16(dst, s.Age)
		dst = append(dst, s.Phase, flags, byte(len(s.Fork)))
		for i := range s.Fork {
			b := byte(0)
			if s.Fork[i] {
				b |= 1
			}
			if s.Dirty[i] {
				b |= 2
			}
			if s.Asked[i] {
				b |= 4
			}
			dst = append(dst, b)
		}
	}
	return dst
}

func decodeBase(key string, n int) []baseline.BState {
	cfg := make([]baseline.BState, n)
	o := 0
	for p := 0; p < n; p++ {
		s := &cfg[p]
		s.S = key[o]
		s.Club = getI16(key, o+1)
		s.Age = getI16(key, o+3)
		s.Phase = key[o+5]
		flags := key[o+6]
		s.HasTok = flags&1 != 0
		s.Handing = flags&2 != 0
		k := int(key[o+7])
		o += 8
		if k > 0 {
			buf := make([]bool, 3*k)
			s.Fork = buf[0*k : 1*k : 1*k]
			s.Dirty = buf[1*k : 2*k : 2*k]
			s.Asked = buf[2*k : 3*k : 3*k]
			for i := 0; i < k; i++ {
				b := key[o+i]
				s.Fork[i] = b&1 != 0
				s.Dirty[i] = b&2 != 0
				s.Asked[i] = b&4 != 0
			}
			o += k
		}
	}
	if o != len(key) {
		panic(fmt.Sprintf("explore: baseline key length %d decoded as %d", len(key), o))
	}
	return cfg
}

func renderBase(a *baseline.Alg, cfg []baseline.BState) string {
	var b strings.Builder
	n := a.H.N()
	status := []string{"id", "wa", "do"}
	phase := []string{"think", "hungry", "gather", "sess"}
	for p := 0; p < n; p++ {
		if p > 0 {
			b.WriteString("  ")
		}
		club := "⊥"
		if cfg[p].Club >= 0 {
			club = fmt.Sprint(cfg[p].Club)
		}
		fmt.Fprintf(&b, "p%d:%s→%s", p, status[cfg[p].S], club)
	}
	for e := 0; e < a.H.M(); e++ {
		c := &cfg[n+e]
		marks := ""
		if c.HasTok {
			marks += "*"
		}
		fmt.Fprintf(&b, "  c%d:%s%s", e, phase[c.Phase], marks)
	}
	if meets := a.Meetings(cfg); len(meets) > 0 {
		fmt.Fprintf(&b, "  meets=%v", meets)
	}
	return b.String()
}
