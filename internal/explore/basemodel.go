package explore

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// Baseline adapts the related-work baselines (dining, token-ring) to the
// explorer. The baselines are *not* self-stabilizing, so only the
// legitimate initial configuration is seeded — which is precisely the
// interesting contrast: the CC algorithms verify from arbitrary initial
// configurations, the baselines only from their hand-prepared one.
// There is no Correct(p) predicate either, so the closure and
// convergence checks are unavailable; exclusion, synchronization,
// essential discussion and deadlock-freedom still apply.
//
// The token-ring baseline on a committee ring additionally declares the
// rotation group: its guards are purely structural (no identifier
// order), so process rotation is a full automorphism and -symmetry
// explores it modulo rotation. Dining does not qualify — its initial
// fork orientation and request tie-break read the committee index order
// (see symmetry.go).
func Baseline(kind baseline.Kind, h *hypergraph.H, disc int) (func() *Model[baseline.BState], error) {
	if h.N()+h.M() > 250 {
		return nil, fmt.Errorf("explore: topology too large for the state codec (n+m=%d; max 250)", h.N()+h.M())
	}
	name := fmt.Sprintf("%s/%s", kind, h)
	layout := newBaseLayout(h, disc, kind == baseline.Dining)
	var syms []func(dst, src []baseline.BState)
	if kind == baseline.TokenRing {
		syms = tokenRingSyms(h)
	}
	return func() *Model[baseline.BState] {
		a := baseline.New(kind, h, disc)
		prog := a.Program()
		n := prog.NumProcs
		// Batch kernel: the generic scalar kernel — no columnar
		// speedups, but the same bulk apply-once/patch-per-selection
		// expansion structure, which keeps the baselines in the batch
		// differential battery. Requires the incremental codec (every
		// per-process block ≤ 64 bits) and an enabled set that fits a
		// word; kernels are per-worker scratch, so each gets a fresh
		// program.
		var kernel func() sim.BatchKernel[baseline.BState]
		if layout.incr && n <= 64 {
			kernel = func() sim.BatchKernel[baseline.BState] {
				return sim.NewProgramKernel(baseline.New(kind, h, disc).Program())
			}
		}
		return &Model[baseline.BState]{
			Name:  name,
			Prog:  prog,
			Probe: a.Probe(),
			Codec: baseCodec(layout),
			Ref: StringCodec[baseline.BState]{
				Encode: encodeBase,
				Decode: func(key string) []baseline.BState { return decodeBase(key, n) },
			},
			Inits: func(yield func(cfg []baseline.BState) bool) {
				cfg := make([]baseline.BState, n)
				for p := 0; p < n; p++ {
					cfg[p] = prog.Init(p, nil)
				}
				yield(cfg)
			},
			Render: func(cfg []baseline.BState) string { return renderBase(a, cfg) },
			Syms:   syms,
			Kernel: kernel,
		}
	}, nil
}

func renderBase(a *baseline.Alg, cfg []baseline.BState) string {
	var b strings.Builder
	n := a.H.N()
	status := []string{"id", "wa", "do"}
	phase := []string{"think", "hungry", "gather", "sess"}
	for p := 0; p < n; p++ {
		if p > 0 {
			b.WriteString("  ")
		}
		club := "⊥"
		if cfg[p].Club >= 0 {
			club = fmt.Sprint(cfg[p].Club)
		}
		fmt.Fprintf(&b, "p%d:%s→%s", p, status[cfg[p].S], club)
	}
	for e := 0; e < a.H.M(); e++ {
		c := &cfg[n+e]
		marks := ""
		if c.HasTok {
			marks += "*"
		}
		fmt.Fprintf(&b, "  c%d:%s%s", e, phase[c.Phase], marks)
	}
	if meets := a.Meetings(cfg); len(meets) > 0 {
		fmt.Fprintf(&b, "  meets=%v", meets)
	}
	return b.String()
}
