package explore

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
	"repro/internal/spec"
)

// This file is the batch/SoA expansion pipeline: the run-to-completion
// counterpart of workerState.expand. Where the scalar path walks every
// guard closure per process per state through sim.SuccessorsBuf, the
// batch path asks the model's sim.BatchKernel for the whole enabled set
// in one columnar Eval, applies each enabled process's body exactly once
// per expanded state, and then enumerates daemon selections as bitmasks
// (sim.MaskSuccessors), assembling each successor key by patching the
// pre-encoded per-process payloads into the parent encoding. The
// transition checks run against merged views — selected processes read
// their recorded post state, the rest the parent columns — so no
// successor configuration is ever materialized.
//
// The pipeline is behavior-preserving by construction and proven so by
// the three-way differential battery (batch vs scalar vs Reference):
// selection order, successor keys, discovery positions, truncation
// decisions and violation messages are all byte-identical to the scalar
// path at any worker count.

// batchEval is the expansion pipeline's view of a batch kernel: the
// sim.BatchKernel guard contract plus the cached spec-predicate reads
// the incremental transition checks need. core.Kernel implements it
// natively (columnar, with exact SpecNeutral skips); any other
// sim.BatchKernel is adapted by genericChecker.
type batchEval[S sim.Cloneable[S]] interface {
	sim.BatchKernel[S]
	// EdgeMeets reports spec.Probe.Meets(cfg, e) for the configuration
	// of the last Eval.
	EdgeMeets(e int) bool
	// Correct reports Model.Correct(cfg, p) for the configuration of
	// the last Eval.
	Correct(p int) bool
	// SetSelection installs the daemon selection the Post* reads
	// resolve against: selected processes read their post state (as
	// recorded by Apply), the rest the parent configuration.
	SetSelection(mask uint64)
	// SpecNeutral reports that p's applied action provably cannot
	// change any Meets or Correct value (false is always sound).
	SpecNeutral(p int) bool
	// PostMeets reports Probe.Meets of edge e in the successor selected
	// by SetSelection.
	PostMeets(e int) bool
	// PostCorrect reports Model.Correct of process q in the successor
	// selected by SetSelection.
	PostCorrect(q int) bool
}

// genericChecker adapts a plain sim.BatchKernel to batchEval by
// materializing a merged successor view and re-running the model's own
// spec predicates over it — correct for any model, with none of the
// columnar kernel's cached-predicate speedups.
type genericChecker[S sim.Cloneable[S]] struct {
	sim.BatchKernel[S]
	m        *Model[S]
	cfg      []S // parent configuration of the last Eval (caller-owned)
	view     []S // merged successor view per SetSelection
	post     []S // post state per applied process
	prevMask uint64
}

func newGenericChecker[S sim.Cloneable[S]](k sim.BatchKernel[S], m *Model[S]) *genericChecker[S] {
	n := m.Prog.NumProcs
	return &genericChecker[S]{
		BatchKernel: k,
		m:           m,
		view:        make([]S, n),
		post:        make([]S, n),
	}
}

func (g *genericChecker[S]) Eval(cfg []S) uint64 {
	g.cfg = cfg
	copy(g.view, cfg)
	g.prevMask = 0
	return g.BatchKernel.Eval(cfg)
}

func (g *genericChecker[S]) Apply(cfg []S, p int, next *S) {
	g.BatchKernel.Apply(cfg, p, next)
	g.post[p] = *next
}

func (g *genericChecker[S]) EdgeMeets(e int) bool { return g.m.Probe.Meets(g.cfg, e) }

func (g *genericChecker[S]) Correct(p int) bool {
	return g.m.Correct != nil && g.m.Correct(g.cfg, p)
}

func (g *genericChecker[S]) SetSelection(mask uint64) {
	for diff := mask ^ g.prevMask; diff != 0; diff &= diff - 1 {
		p := bits.TrailingZeros64(diff)
		if mask>>uint(p)&1 != 0 {
			g.view[p] = g.post[p]
		} else {
			g.view[p] = g.cfg[p]
		}
	}
	g.prevMask = mask
}

// SpecNeutral is conservatively false: a generic model's Meets/Correct
// may read any state field, so no applied action can be proven neutral.
func (g *genericChecker[S]) SpecNeutral(p int) bool { return false }

func (g *genericChecker[S]) PostMeets(e int) bool { return g.m.Probe.Meets(g.view, e) }

func (g *genericChecker[S]) PostCorrect(q int) bool { return g.m.Correct(g.view, q) }

// selFromMask expands a selection bitmask to the ascending process-index
// slice the scalar path's violation messages use.
func selFromMask(mask uint64) []int {
	sel := make([]int, 0, bits.OnesCount64(mask))
	for sm := mask; sm != 0; sm &= sm - 1 {
		sel = append(sel, bits.TrailingZeros64(sm))
	}
	return sel
}

// postMeetsMemo is bk.PostMeets(e) memoized per expanded state by the
// effective selection restricted to e's members. Probe.Meets reads
// member states only and neutral moves cannot change it, so that
// projection fully determines the result across the state's selections.
func (ws *workerState[S]) postMeetsMemo(bk batchEval[S], e int, eff uint64) bool {
	off := int32(-1)
	if ws.pmOff != nil {
		off = ws.pmOff[e]
	}
	if off < 0 {
		return bk.PostMeets(e)
	}
	idx := int(off)
	if lo := ws.pmLo[e]; lo >= 0 {
		idx += int((eff >> uint(lo)) & ws.pmW[e])
	} else {
		for i, q := range ws.model.Probe.H.Edge(e) {
			if eff>>uint(q)&1 != 0 {
				idx += 1 << uint(i)
			}
		}
	}
	if c := ws.pmCache[idx]; c != 0 {
		return c == 2
	}
	v := bk.PostMeets(e)
	if v {
		ws.pmCache[idx] = 2
	} else {
		ws.pmCache[idx] = 1
	}
	return v
}

// postCorrectMemo is bk.PostCorrect(p) memoized per expanded state by
// the effective selection restricted to p's Deps neighborhood — the
// exact locality contract the incremental closure check already relies
// on for dependency marking.
func (ws *workerState[S]) postCorrectMemo(bk batchEval[S], p int, eff uint64) bool {
	off := int32(-1)
	if ws.pcOff != nil {
		off = ws.pcOff[p]
	}
	if off < 0 {
		return bk.PostCorrect(p)
	}
	idx := int(off)
	if lo := ws.pcLo[p]; lo >= 0 {
		idx += int((eff >> uint(lo)) & ws.pcW[p])
	} else {
		for i, q := range ws.depList[p] {
			if eff>>uint(q)&1 != 0 {
				idx += 1 << uint(i)
			}
		}
	}
	if c := ws.pcCache[idx]; c != 0 {
		return c == 2
	}
	v := bk.PostCorrect(p)
	if v {
		ws.pcCache[idx] = 2
	} else {
		ws.pcCache[idx] = 1
	}
	return v
}

// batchViol records a violation against the expansion in flight.
func (ws *workerState[S]) batchViol(wv workerViol) {
	ws.curAgg.viols = append(ws.curAgg.viols, itemViol{item: ws.curItem, id: ws.curID, wv: wv})
}

// batchSel is the per-selection body of expandBatch: key patching, the
// visited probe, and the incremental transition checks. It is bound
// once at construction as ws.selCB — a closure literal inside
// expandBatch would escape into sim.MaskSuccessors and allocate per
// expansion — with the per-expansion context passed through the cur*
// fields.
func (ws *workerState[S]) batchSel(selMask uint64) bool {
	m := ws.model
	opts := ws.opts
	bk := ws.bkern
	vs := ws.curVS
	cfg := ws.cfg
	h := m.Probe.H
	neutral := ws.curNeutral
	correctPrev := ws.curCorrectPrev
	key := ws.enc
	if len(key) <= 4 { // avoid the memmove call on the common tiny keys
		for i := range key {
			key[i] = ws.baseEnc[i]
		}
	} else {
		copy(key, ws.baseEnc)
	}
	ws.selBuf = ws.selBuf[:0]
	for sm := selMask; sm != 0; sm &= sm - 1 {
		p := bits.TrailingZeros64(sm)
		patchWords(key, m.Codec.ProcOff[p], m.Codec.ProcBits[p], ws.payload[p])
		ws.selBuf = append(ws.selBuf, byte(p))
	}
	switch {
	case ws.curAtCap && ws.cl != nil:
		if ws.cl.capMiss(key, hashWords(key)) {
			ws.curAgg.truncated = true
		}
	case ws.curAtCap:
		if !vs.Contains(key, hashWords(key)) {
			ws.curAgg.truncated = true
		}
	case ws.cl != nil:
		pos := uint64(ws.curItem)<<32 | uint64(ws.curBranch)
		ws.cl.sink(key, hashWords(key), pos, ws.cl.parent, ws.selBuf)
	default:
		pos := uint64(ws.curItem)<<32 | uint64(ws.curBranch)
		vs.Probe(key, hashWords(key), pos, ws.curID, ws.selBuf)
	}
	ws.curBranch++

	// Incremental transition checks against the merged view: only
	// committees incident to a selected, spec-visible, non-neutral
	// process can change their meets status, so the event check
	// judges exactly the edges whose meets value flipped, in
	// ascending committee order so the violation stream matches
	// spec.EventViolationsMeets byte for byte. With mask-form
	// topology the candidate set is a word OR over the effective
	// selection and each edge's post-meets value is memoized by its
	// member-restricted selection (Probe.Meets reads member states
	// only, so that projection determines the result).
	bk.SetSelection(selMask)
	eff := selMask &^ neutral
	ws.changed = ws.changed[:0]
	if ws.edgeMaskOf != nil {
		var cand uint64
		for sm := eff; sm != 0; sm &= sm - 1 {
			cand |= ws.edgeMaskOf[bits.TrailingZeros64(sm)]
		}
		for cm := cand; cm != 0; cm &= cm - 1 { // ascending committee order
			e := bits.TrailingZeros64(cm)
			var pm bool
			if lo := ws.pmLo[e]; lo >= 0 { // inlined contiguous memo probe
				idx := int(ws.pmOff[e]) + int((eff>>uint(lo))&ws.pmW[e])
				if c := ws.pmCache[idx]; c != 0 {
					pm = c == 2
				} else {
					pm = bk.PostMeets(e)
					if pm {
						ws.pmCache[idx] = 2
					} else {
						ws.pmCache[idx] = 1
					}
				}
			} else {
				pm = ws.postMeetsMemo(bk, e, eff)
			}
			if pm != ws.was[e] {
				ws.changed = append(ws.changed, e)
			}
		}
	} else {
		ws.epoch++
		for sm := eff; sm != 0; sm &= sm - 1 {
			p := bits.TrailingZeros64(sm)
			if p >= h.N() {
				continue
			}
			for _, e := range h.EdgesOf(p) {
				if ws.edgeMark[e] != ws.epoch {
					ws.edgeMark[e] = ws.epoch
					if bk.PostMeets(e) != ws.was[e] {
						ws.changed = append(ws.changed, e)
					}
				}
			}
		}
		ch := ws.changed
		for i := 1; i < len(ch); i++ { // ascending committee order
			for j := i; j > 0 && ch[j] < ch[j-1]; j-- {
				ch[j], ch[j-1] = ch[j-1], ch[j]
			}
		}
	}
	var sel []int // lazily materialized, shared by this selection's violations
	for _, e := range ws.changed {
		edge := h.Edge(e)
		if !ws.was[e] { // convened
			for _, q := range edge {
				if !m.Probe.Waiting(cfg, q) {
					if sel == nil {
						sel = selFromMask(selMask)
					}
					ws.batchViol(workerViol{kind: spec.KindSync,
						msg: fmt.Sprintf("committee %s convened but professor %d was not waiting", edge, q),
						sel: sel, key: copyWords(key)})
				}
			}
		} else { // terminated
			for _, q := range edge {
				if !m.Probe.Done(cfg, q) {
					if sel == nil {
						sel = selFromMask(selMask)
					}
					ws.batchViol(workerViol{kind: spec.KindEssential,
						msg: fmt.Sprintf("committee %s terminated but professor %d had not finished its essential discussion", edge, q),
						sel: sel, key: copyWords(key)})
				}
			}
		}
	}
	if correctPrev != nil && (opts.CheckClosure || opts.CheckConvergence) {
		if ws.depMask != nil && !opts.CheckConvergence {
			// Closure-only fast path: a violation needs a process that
			// was Correct, depends on an effective selected process,
			// and is no longer Correct — judged over the dependency
			// mask union in ascending process order, with PostCorrect
			// memoized by its Deps-restricted selection.
			var dm uint64
			for sm := eff; sm != 0; sm &= sm - 1 {
				dm |= ws.depMask[bits.TrailingZeros64(sm)]
			}
			for pmm := dm; pmm != 0; pmm &= pmm - 1 {
				p := bits.TrailingZeros64(pmm)
				if !correctPrev[p] {
					continue
				}
				var ok bool
				if lo := ws.pcLo[p]; lo >= 0 { // inlined contiguous memo probe
					idx := int(ws.pcOff[p]) + int((eff>>uint(lo))&ws.pcW[p])
					if c := ws.pcCache[idx]; c != 0 {
						ok = c == 2
					} else {
						ok = bk.PostCorrect(p)
						if ok {
							ws.pcCache[idx] = 2
						} else {
							ws.pcCache[idx] = 1
						}
					}
				} else {
					ok = ws.postCorrectMemo(bk, p, eff)
				}
				if ok {
					continue
				}
				if sel == nil {
					sel = selFromMask(selMask)
				}
				ws.batchViol(workerViol{
					kind: KindClosure,
					msg:  fmt.Sprintf("process %d was Correct but is not after selection %v", p, sel),
					sel:  sel, key: copyWords(key),
				})
			}
		} else {
			// Convergence needs every process's post status (an
			// untouched incorrect process still violates), so walk
			// them all, recomputing only dependency-marked ones.
			var dm uint64
			haveDM := ws.depMask != nil
			if haveDM {
				for sm := eff; sm != 0; sm &= sm - 1 {
					dm |= ws.depMask[bits.TrailingZeros64(sm)]
				}
			} else if m.Deps != nil {
				ws.epoch++
				for sm := eff; sm != 0; sm &= sm - 1 {
					for _, q := range m.Deps(bits.TrailingZeros64(sm)) {
						ws.procMark[q] = ws.epoch
					}
				}
			}
			for p := range correctPrev {
				correctNow := correctPrev[p]
				if haveDM {
					if dm>>uint(p)&1 != 0 {
						correctNow = ws.postCorrectMemo(bk, p, eff)
					}
				} else if m.Deps == nil || ws.procMark[p] == ws.epoch {
					correctNow = bk.PostCorrect(p)
				}
				if opts.CheckClosure && correctPrev[p] && !correctNow {
					if sel == nil {
						sel = selFromMask(selMask)
					}
					ws.batchViol(workerViol{
						kind: KindClosure,
						msg:  fmt.Sprintf("process %d was Correct but is not after selection %v", p, sel),
						sel:  sel, key: copyWords(key),
					})
				}
				if opts.CheckConvergence && !correctNow {
					if sel == nil {
						sel = selFromMask(selMask)
					}
					ws.batchViol(workerViol{
						kind: KindConvergence,
						msg:  fmt.Sprintf("process %d is still incorrect after a full round (selection %v)", p, sel),
						sel:  sel, key: copyWords(key),
					})
				}
			}
		}
	}
	return true
}

// expandBatch is expand through the batch pipeline: one kernel Eval for
// the whole enabled set, one body application and one block encoding per
// enabled process, and per-selection work reduced to key patching, the
// visited probe, and incremental merged-view spec checks. Every
// observable — keys, discovery positions, truncation, violation
// messages — matches expand exactly.
func (ws *workerState[S]) expandBatch(vs *Visited, agg *layerAgg, id int32, item, depth int) {
	m := ws.model
	opts := ws.opts
	bk := ws.bkern
	ws.curVS, ws.curAgg, ws.curID, ws.curItem = vs, agg, id, item
	m.Codec.Decode(ws.cfg, vs.Key(id))
	cfg := ws.cfg

	enabledMask := bk.Eval(cfg)

	// State properties from the kernel's cached vectors (the batch
	// counterpart of spec.MeetsVector + the Correct loop).
	h := m.Probe.H
	mEdges := h.M()
	ws.was = ws.was[:mEdges]
	var wasMask uint64
	for e := 0; e < mEdges; e++ {
		we := bk.EdgeMeets(e)
		ws.was[e] = we
		if we && e < 64 {
			wasMask |= 1 << uint(e)
		}
	}
	// Exclusion fast path: a violation needs two conflicting meeting
	// committees, so with the precomputed conflict masks one word-AND per
	// meeting edge decides whether the exact (allocating, message-
	// formatting) scan can find anything.
	clash := ws.conflict == nil
	if !clash {
		for mm := wasMask; mm != 0; mm &= mm - 1 {
			if ws.conflict[bits.TrailingZeros64(mm)]&wasMask != 0 {
				clash = true
				break
			}
		}
	}
	if clash {
		for _, v := range spec.ExclusionViolationsMeets(m.Probe, ws.was, depth, nil) {
			ws.batchViol(workerViol{kind: v.Kind, msg: v.Msg})
		}
	}
	var correctPrev []bool
	if m.Correct != nil {
		correctPrev = ws.correct[:m.Prog.NumProcs]
		allCorrect := true
		for p := range correctPrev {
			correctPrev[p] = bk.Correct(p)
			allCorrect = allCorrect && correctPrev[p]
		}
		if !allCorrect {
			agg.incorrect = true
		}
	}

	// Bulk successor preparation: apply each enabled process's body once
	// and pre-encode its block payload. Deterministic bodies read only
	// the pre-step configuration, so process p's post state and payload
	// are identical in every selection containing p. Spec-neutrality is
	// likewise selection-independent (it compares p's post state against
	// the parent), so it is judged here once per state rather than per
	// selection.
	copy(ws.baseEnc, vs.Key(id))
	var neutral uint64
	for rest := enabledMask; rest != 0; rest &= rest - 1 {
		p := bits.TrailingZeros64(rest)
		ws.post[p] = cfg[p].Clone()
		bk.Apply(cfg, p, &ws.post[p])
		ws.payload[p] = m.Codec.EncodeProc(ws.post, p)
		if bk.SpecNeutral(p) {
			neutral |= 1 << uint(p)
		}
	}
	// Reset the per-expansion Post* memo tables (0 = unknown; range-clear
	// compiles to memclr).
	for i := range ws.pmCache {
		ws.pmCache[i] = 0
	}
	for i := range ws.pcCache {
		ws.pcCache[i] = 0
	}

	// See expand: at the state cap a read-only membership check replaces
	// the insertion probe, deterministically. A cluster peer takes the
	// coordinator's layer-global decision instead of the local count.
	ws.curAtCap = opts.MaxStates > 0 && vs.States() >= opts.MaxStates
	if ws.cl != nil {
		ws.curAtCap = ws.cl.atCap
	}
	ws.curBranch = 0
	ws.curNeutral = neutral
	ws.curCorrectPrev = correctPrev
	branches := sim.MaskSuccessors(enabledMask, opts.Mode, opts.MaxBranch, ws.selCB)
	agg.transitions += int64(branches)
	enabled := bits.OnesCount64(enabledMask)
	if enabled > agg.maxEnabled {
		agg.maxEnabled = enabled
	}
	if enabled == 0 {
		agg.deadlocks++
		if opts.CheckDeadlock {
			ws.batchViol(workerViol{kind: KindDeadlock, msg: "no process is enabled"})
		}
	}
	if opts.Mode == sim.SelectAllSubsets && enabled > 0 {
		if enabled > 62 {
			agg.truncated = true
		} else if want := (int64(1) << enabled) - 1; int64(branches) < want {
			agg.truncated = true
		}
	}
}
