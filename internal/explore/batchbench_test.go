package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// Benchmarks mirroring the BENCH_explore.json cell definitions
// (internal/experiments/explorebench.go), each measured through the
// batch pipeline and through the forced-scalar path — so
//
//	go test -bench 'BenchmarkCell' -benchtime 1x ./internal/explore/
//
// reproduces the before/after picture of the batch/SoA expansion on
// any machine (docs/benchmarks.md tabulates one such run).
func benchCell(b *testing.B, variant core.Variant, h *hypergraph.H, init InitMode, mode sim.SelectionMode, maxStates int) {
	factory, err := CC(variant, h, CCOptions{Init: init})
	if err != nil {
		b.Fatal(err)
	}
	for _, scalar := range []bool{false, true} {
		name := "batch"
		if scalar {
			name = "scalar"
		}
		b.Run(name, func(b *testing.B) {
			opts := Options{
				Mode: mode, MaxStates: maxStates,
				CheckDeadlock: true, CheckClosure: true,
				DisableBatch: scalar,
			}
			states := 0
			for i := 0; i < b.N; i++ {
				res := Explore(factory, opts)
				if res.States == 0 {
					b.Fatal("no states explored")
				}
				states = res.States
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})
	}
}

func BenchmarkCellCC2Ring3FullCentral(b *testing.B) {
	benchCell(b, core.CC2, hypergraph.CommitteeRing(3), InitCCFull, sim.SelectCentral, 6_000_000)
}

func BenchmarkCellCC2Ring3FullAllSubsets(b *testing.B) {
	benchCell(b, core.CC2, hypergraph.CommitteeRing(3), InitCCFull, sim.SelectAllSubsets, 6_000_000)
}

func BenchmarkCellCC2Ring4Central(b *testing.B) {
	benchCell(b, core.CC2, hypergraph.CommitteeRing(4), InitCC, sim.SelectCentral, 6_000_000)
}

func BenchmarkCellCC1Triples3AllSubsets(b *testing.B) {
	benchCell(b, core.CC1, hypergraph.ChainOfTriples(3), InitLegit, sim.SelectAllSubsets, 1_000_000)
}

func BenchmarkCellCC3Triples3AllSubsets(b *testing.B) {
	benchCell(b, core.CC3, hypergraph.ChainOfTriples(3), InitLegit, sim.SelectAllSubsets, 1_000_000)
}
