package explore

// The batch-pipeline interplay battery: the columnar expansion path
// against every engine feature that could knock it off the fast path
// — symmetry reduction (which must fall back to scalar, exactly),
// out-of-core spill with checkpoint/resume tortures landing mid-cell,
// and a disk that fails a slice of all operations. The invariant
// throughout is the PR's contract: report bytes identical to the
// scalar in-memory run, or a classified failure — never a wrong
// answer.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// TestBatchSymmetryFallback pins the eligibility rule: a model that
// declares automorphisms, explored with -symmetry, must NOT engage
// the batch kernel (canonicalization needs the decoded successor,
// which the batch path never materializes per selection), and the
// reduced run must stay byte-identical whether or not batch is
// nominally enabled. The full batch run is then held against the
// reduced run the usual way: same verdict, orbit-consistent totals.
func TestBatchSymmetryFallback(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.DisjointCommittees(2, 2), CCOptions{Init: InitCC})
	m := factory()
	if len(m.Syms) == 0 {
		t.Fatal("disjoint:2,2 declared no block symmetry; the fallback has nothing to test")
	}
	sym := Options{Mode: sim.SelectCentral, CheckDeadlock: true, CheckClosure: true, Symmetry: true}
	if ws := newWorkerState(m, &sym); ws.bkern != nil {
		t.Fatal("batch kernel engaged under symmetry reduction")
	}
	plain := sym
	plain.Symmetry = false
	if ws := newWorkerState(m, &plain); ws.bkern == nil {
		t.Fatal("batch kernel did not engage without symmetry; eligibility became too strict")
	}

	red := Explore(factory, sym)
	if !red.Symmetry {
		t.Fatal("symmetry did not engage")
	}
	symScalar := sym
	symScalar.DisableBatch = true
	if got, want := normJSON(t, Explore(factory, symScalar)), normJSON(t, red); !bytes.Equal(got, want) {
		t.Fatalf("reduced run changed under DisableBatch:\n%s\nvs\n%s", got, want)
	}
	full := Explore(factory, plain)
	if full.Verdict() != red.Verdict() || full.Ok() != red.Ok() {
		t.Fatalf("verdicts diverged:\n  full:    %s\n  reduced: %s", full.Summary(), red.Summary())
	}
	if red.States >= full.States || full.States > 2*red.States {
		t.Fatalf("orbit-inconsistent totals: reduced %d, full %d, group order 2", red.States, full.States)
	}
}

// TestBatchSpillCheckpointTorture kills the batch pipeline at random
// checkpoint boundaries while both the frontier and the visited arena
// are forced to disk, on the branchiest batch cell (all-subsets over
// the full CC-layer fault space) — so interruptions land between the
// chunks of a layer whose states each enumerate many selection masks.
// Resumed batch runs, the uninterrupted batch run and the scalar
// reference must produce byte-identical reports at 1 and 8 workers.
func TestBatchSpillCheckpointTorture(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCCFull})
	opts := Options{Mode: sim.SelectAllSubsets, CheckDeadlock: true, CheckClosure: true, CheckpointEvery: 4096}
	want := normJSON(t, Explore(factory, opts))

	scalar := opts
	scalar.DisableBatch = true
	if got := normJSON(t, Explore(factory, scalar)); !bytes.Equal(got, want) {
		t.Fatalf("scalar reference diverges from batch:\n%s\nvs\n%s", got, want)
	}

	// Prove the budget actually forces this cell out of core before
	// torturing it. (Inside the kill loop the stats describe only the
	// final, possibly very short, post-resume attempt.)
	{
		o := opts
		o.MemBudget = 1 << 14
		o.SpillDir = t.TempDir()
		var stats RunStats
		o.Stats = &stats
		if got := normJSON(t, Explore(factory, o)); !bytes.Equal(got, want) {
			t.Fatalf("uninterrupted spill run diverges:\n%s\nvs\n%s", got, want)
		}
		if stats.FrontierSpillSegments == 0 || stats.ArenaSpilledBytes == 0 {
			t.Fatal("spill paths did not engage under a 16 KiB budget")
		}
	}

	rng := rand.New(rand.NewSource(11))
	for _, workers := range []int{1, 8} {
		o := opts
		o.Workers = workers
		o.MemBudget = 1 << 14
		o.SpillDir = t.TempDir()
		ck := &memCheckpointer{}
		res, kills := resumeUntilDone(t, factory, o, ck, rng)
		if kills == 0 {
			t.Fatalf("workers=%d: torture run was never interrupted", workers)
		}
		if got := normJSON(t, res); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d (%d interruptions): resumed batch report diverges:\n%s\nvs\n%s",
				workers, kills, got, want)
		}
	}
}

// TestBatchChaosSpill runs the batch pipeline's spill paths on a disk
// that fails a slice of all operations (transient ENOSPC on writes,
// EIO on reads). The contract is the nightly chaos campaign's, scoped
// to one engine run: every faulty attempt must either finish with a
// report byte-identical to the fault-free in-memory run, or fail with
// an error chaos.Classify recognizes — never a wrong answer, never a
// panic. After the disk heals, the same options must converge to the
// exact reference bytes. Seeded, so every fault sequence replays.
func TestBatchChaosSpill(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCCFull})
	opts := Options{Mode: sim.SelectCentral, CheckDeadlock: true, CheckClosure: true}
	want := normJSON(t, Explore(factory, opts))

	injected, survived := int64(0), 0
	for seed := int64(1); seed <= 4; seed++ {
		ffs := chaos.NewFaultFS(nil, chaos.Faults{Seed: seed, WriteErr: 0.02, ReadErr: 0.02})
		o := opts
		o.MemBudget = 1 << 14
		o.SpillDir = t.TempDir()
		o.FS = ffs
		var stats RunStats
		o.Stats = &stats
		res, err := ExploreCtx(context.Background(), factory, o)
		for _, n := range ffs.Stats() {
			injected += n
		}
		if err != nil {
			if !chaos.Recoverable(err) {
				t.Fatalf("seed %d: unclassified failure: %v", seed, err)
			}
		} else {
			if got := normJSON(t, res); !bytes.Equal(got, want) {
				t.Fatalf("seed %d: chaos spill run diverges from the fault-free run:\n%s\nvs\n%s", seed, got, want)
			}
			if stats.FrontierSpillSegments == 0 || stats.ArenaSpilledBytes == 0 {
				t.Fatalf("seed %d: spill paths did not engage under the 16 KiB budget", seed)
			}
			survived++
		}

		// Disk healed: the same faulty FS (faults zeroed) must now
		// converge to the exact reference bytes.
		ffs.SetFaults(chaos.Faults{})
		o.SpillDir = t.TempDir()
		healed, err := ExploreCtx(context.Background(), factory, o)
		if err != nil {
			t.Fatalf("seed %d: healed run failed: %v", seed, err)
		}
		if got := normJSON(t, healed); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: healed run diverges:\n%s\nvs\n%s", seed, got, want)
		}
	}
	if injected == 0 {
		t.Fatal("no faults injected — the test exercised nothing")
	}
	if survived == 0 {
		t.Log("no faulty attempt survived to completion; retry absorption untested at these rates")
	}
}
