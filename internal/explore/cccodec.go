package explore

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/token"
)

// Binary codec for CC ∘ TC configurations. Every field is packed with
// the exact bit budget of its domain (core.Alg.Domains): statuses in 2
// bits, the edge pointer as a local index into E_p ∪ {⊥}, identifiers
// as their owner's vertex index, tree pointers as local neighbor
// indices. On a 4-ring this is 21 bits per process — 2 words for the
// whole configuration — where the PR 2 string codec spent 16 bytes per
// process plus a string header per state.

// ccLayout is the per-topology compile of the codec: immutable after
// construction, shared read-only by all worker model instances.
type ccLayout struct {
	h        *hypergraph.H
	procs    []ccProcLayout
	procOff  []int // bit offset of each process's field block
	procBits []int // block width (≤ 63 bits)
	words    int
	idVert   map[int]int // identifier → owning vertex (nil when ids[v] == v)
}

// vertexByID inverts the identifier assignment (hot path: one lookup
// per process per encoded state).
func (l *ccLayout) vertexByID(id int) int {
	if l.idVert == nil {
		if id >= 0 && id < l.h.N() {
			return id
		}
		return -1
	}
	v, ok := l.idVert[id]
	if !ok {
		return -1
	}
	return v
}

type ccProcLayout struct {
	dom core.FieldDomains
	// Bit widths derived from dom.
	wS, wP, wR, wLid, wDist, wParent, wVis, wDes int
	edges                                        []int // E_p, sorted (aliases hypergraph tables)
	nbrs                                         []int // N(p), sorted
}

func newCCLayout(alg *core.Alg) *ccLayout {
	h := alg.H
	l := &ccLayout{h: h, procs: make([]ccProcLayout, h.N())}
	for v := 0; v < h.N(); v++ {
		if h.ID(v) != v {
			l.idVert = make(map[int]int, h.N())
			for u := 0; u < h.N(); u++ {
				l.idVert[h.ID(u)] = u
			}
			break
		}
	}
	bits := 0
	l.procOff = make([]int, h.N())
	l.procBits = make([]int, h.N())
	for p := range l.procs {
		d := alg.Domains(p)
		pl := &l.procs[p]
		pl.dom = d
		pl.wS = core.BitWidth(d.Status)
		pl.wP = core.BitWidth(d.Pointer)
		pl.wR = core.BitWidth(d.Cursor)
		pl.wLid = core.BitWidth(d.Lid)
		pl.wDist = core.BitWidth(d.Dist)
		pl.wParent = core.BitWidth(d.Parent)
		pl.wVis = core.BitWidth(d.Vis)
		pl.wDes = core.BitWidth(d.Des)
		pl.edges = h.EdgesOf(p)
		pl.nbrs = h.Neighbors(p)
		// S, P, T, L, R + Lid, Dist, Parent, A, H, Vis, Des, C.
		pb := pl.wS + pl.wP + 2 + pl.wR +
			pl.wLid + pl.wDist + pl.wParent + 3 + pl.wVis + pl.wDes
		if pb > 64 {
			panic(fmt.Sprintf("explore: process %d needs %d bits (codec block limit 64)", p, pb))
		}
		l.procOff[p] = bits
		l.procBits[p] = pb
		bits += pb
	}
	l.words = (bits + 63) / 64
	if l.words == 0 {
		l.words = 1
	}
	return l
}

// BitsPerState reports the packed size (diagnostics and the README
// scaling table).
func (l *ccLayout) BitsPerState() int {
	bits := 0
	for p := range l.procs {
		bits += l.procBits[p]
	}
	return bits
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// encodeProc packs process p's field block into one 64-bit payload
// (worst case 63 bits at the 250-process cap — checked in newCCLayout).
func (l *ccLayout) encodeProc(cfg []core.State, p int) uint64 {
	s := &cfg[p]
	pl := &l.procs[p]
	acc := fieldVal(int(s.S), int(pl.dom.StatusLo), pl.dom.Status, "status", p)
	b := pl.wS
	ptr := 0
	if s.P != core.NoEdge {
		if ptr = localPos(pl.edges, s.P) + 1; ptr == 0 {
			panic(fmt.Sprintf("explore: pointer %d of process %d not in E_p", s.P, p))
		}
	}
	acc |= uint64(ptr) << b
	b += pl.wP
	acc |= boolBit(s.T) << b
	acc |= boolBit(s.L) << (b + 1)
	b += 2
	acc |= fieldVal(s.R, 0, pl.dom.Cursor, "cursor", p) << b
	b += pl.wR

	lid := l.vertexByID(s.TC.Lid)
	if lid < 0 {
		panic(fmt.Sprintf("explore: leader id %d of process %d is no vertex's identifier", s.TC.Lid, p))
	}
	acc |= uint64(lid) << b
	b += pl.wLid
	acc |= fieldVal(s.TC.Dist, 0, pl.dom.Dist, "distance", p) << b
	b += pl.wDist
	acc |= uint64(nbrIndex(pl.nbrs, s.TC.Parent, "parent", p)) << b
	b += pl.wParent
	acc |= boolBit(s.TC.A) << b
	acc |= fieldVal(int(s.TC.H), 0, 2, "hold flag", p) << (b + 1)
	b += 2
	acc |= fieldVal(s.TC.Vis, 0, pl.dom.Vis, "visit counter", p) << b
	b += pl.wVis
	acc |= uint64(nbrIndex(pl.nbrs, s.TC.Des, "designated child", p)) << b
	b += pl.wDes
	acc |= fieldVal(int(s.TC.C), 0, 2, "wave color", p) << b
	return acc
}

func (l *ccLayout) encode(dst []uint64, cfg []core.State) {
	w := newBitWriter(dst)
	for p := range cfg {
		w.put(l.encodeProc(cfg, p), l.procBits[p])
	}
	w.flush()
}

func nbrIndex(nbrs []int, v int, what string, p int) int {
	if v == -1 {
		return 0
	}
	if i := localPos(nbrs, v); i >= 0 {
		return i + 1
	}
	panic(fmt.Sprintf("explore: %s %d of process %d is not a neighbor", what, v, p))
}

func (l *ccLayout) decode(cfg []core.State, src []uint64) {
	r := bitReader{src: src}
	for p := range cfg {
		s := &cfg[p]
		pl := &l.procs[p]
		s.S = pl.dom.StatusLo + core.Status(r.get(pl.wS))
		if ptr := int(r.get(pl.wP)); ptr == 0 {
			s.P = core.NoEdge
		} else {
			s.P = pl.edges[ptr-1]
		}
		s.T = r.get(1) != 0
		s.L = r.get(1) != 0
		s.R = int(r.get(pl.wR))

		s.TC = token.State{
			Lid:    l.h.ID(int(r.get(pl.wLid))),
			Dist:   int(r.get(pl.wDist)),
			Parent: nbrValue(pl.nbrs, int(r.get(pl.wParent))),
		}
		s.TC.A = r.get(1) != 0
		s.TC.H = uint8(r.get(1))
		s.TC.Vis = int(r.get(pl.wVis))
		s.TC.Des = nbrValue(pl.nbrs, int(r.get(pl.wDes)))
		s.TC.C = uint8(r.get(1))
	}
}

func nbrValue(nbrs []int, idx int) int {
	if idx == 0 {
		return -1
	}
	return nbrs[idx-1]
}

// ccCodec builds the binary codec over the layout.
func ccCodec(l *ccLayout) Codec[core.State] {
	return Codec[core.State]{
		Words:      l.words,
		Encode:     l.encode,
		Decode:     l.decode,
		ProcOff:    l.procOff,
		ProcBits:   l.procBits,
		EncodeProc: l.encodeProc,
	}
}
