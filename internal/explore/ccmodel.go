package explore

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// This file adapts CC1/CC2/CC3 ∘ TC to the explorer: a canonical state
// codec, the initial-configuration families, a renderer for
// counterexample traces, and the seeded guard mutations used to prove
// the checker can catch real bugs.
//
// Environment: guards read Env.RequestIn/RequestOut, which must be
// frozen for exploration. The adapter uses the *eager* environment —
// both predicates constantly true — the choice that maximizes enabled
// actions: professors always want in, and always agree to leave. Every
// transition possible under any other stable environment whose
// predicates currently answer the same is covered; the spec properties
// checked here are safety properties of the algorithm, not of a
// particular client behaviour.
//
// Nondeterministic statement resolution ("P_p := ε ∈ FreeEdges_p") is
// pinned to core.ChooseFirst so Apply is a pure function of the
// configuration and the selection.

// InitMode selects the family of initial configurations.
type InitMode int

const (
	// InitLegit seeds the single canonical fault-free configuration —
	// exploration then proves closure of the legitimate space.
	InitLegit InitMode = iota
	// InitCC seeds every assignment of the CC-layer status and pointer
	// variables (S_p, P_p) over the stabilized token layer: the space of
	// configurations after transient faults hit the committee layer.
	InitCC
	// InitCCFull additionally ranges the T_p and L_p bits (L only for
	// CC2/CC3) — the full CC-layer fault space over a stabilized token
	// layer.
	InitCCFull
	// InitRandom seeds RandomCount configurations drawn uniformly from
	// the *entire* composed state space, token layer included — the §2.5
	// adversary's arbitrary corruption.
	InitRandom
)

func (m InitMode) String() string {
	switch m {
	case InitLegit:
		return "legit"
	case InitCC:
		return "cc"
	case InitCCFull:
		return "cc-full"
	case InitRandom:
		return "random"
	}
	return fmt.Sprintf("init(%d)", int(m))
}

// ParseInitMode parses the cccheck -init flag value.
func ParseInitMode(s string) (InitMode, error) {
	switch s {
	case "legit":
		return InitLegit, nil
	case "cc":
		return InitCC, nil
	case "cc-full":
		return InitCCFull, nil
	case "random":
		return InitRandom, nil
	}
	return 0, fmt.Errorf("explore: unknown init mode %q (legit | cc | cc-full | random)", s)
}

// CCOptions parameterize the CC model construction.
type CCOptions struct {
	Init        InitMode
	RandomCount int   // initial configurations for InitRandom (default 256)
	Seed        int64 // randomness for InitRandom
	// Mutation, if non-empty, deliberately breaks a guard (see MutateCC)
	// so the checker's counterexample machinery can be demonstrated.
	Mutation string
}

// CC returns a Model factory for the given variant over h. Each call of
// the factory builds an independent Alg (guards use per-Alg scratch, so
// one instance per worker); the binary codec layout is topology-only
// and shared read-only across workers.
func CC(variant core.Variant, h *hypergraph.H, opts CCOptions) (func() *Model[core.State], error) {
	if h.N() > 250 || h.M() > 250 {
		return nil, fmt.Errorf("explore: topology too large for the state codec (n=%d, m=%d; max 250)", h.N(), h.M())
	}
	// Validate the mutation name once, eagerly.
	if opts.Mutation != "" {
		alg, prog := newCCProg(variant, h)
		if err := MutateCC(alg, prog, opts.Mutation); err != nil {
			return nil, err
		}
	}
	if opts.RandomCount <= 0 {
		opts.RandomCount = 256
	}
	name := fmt.Sprintf("%s/%s", variant, h)
	if opts.Mutation != "" {
		name = fmt.Sprintf("%s+mutate:%s", variant, opts.Mutation)
	}
	layoutAlg, _ := newCCProg(variant, h)
	layout := newCCLayout(layoutAlg)
	// Block permutations of order-isomorphic single-committee components
	// are the only id-order-preserving (hence sound) CC automorphisms —
	// see symmetry.go. InitRandom can plant foreign leader ids, which
	// reintroduces cross-component id comparisons, so it is excluded.
	var syms []func(dst, src []core.State)
	if opts.Init != InitRandom {
		syms = ccBlockSyms(layoutAlg)
	}
	// Correct(p) reads only the closed G_H neighborhood of p (the same
	// locality every CC ∘ TC guard declares), so its dependency
	// neighborhood is p plus its co-members.
	deps := make([][]int, h.N())
	for p := range deps {
		nb := h.Neighbors(p)
		deps[p] = append(append(make([]int, 0, len(nb)+1), nb...), p)
	}
	return func() *Model[core.State] {
		alg, prog := newCCProg(variant, h)
		if opts.Mutation != "" {
			if err := MutateCC(alg, prog, opts.Mutation); err != nil {
				panic(err) // validated above
			}
		}
		return &Model[core.State]{
			Name:  name,
			Prog:  prog,
			Probe: alg.Probe(),
			Codec: ccCodec(layout),
			Ref: StringCodec[core.State]{
				Encode: encodeCC,
				Decode: func(key string) []core.State { return decodeCC(key, h.N()) },
			},
			Inits:   ccInits(alg, opts),
			Correct: alg.Correct,
			Render:  func(cfg []core.State) string { return renderCC(alg, cfg) },
			Syms:    syms,
			Deps:    func(p int) []int { return deps[p] },
			Kernel:  ccKernel(variant, h, opts),
		}
	}, nil
}

// ccKernel picks the batch kernel for the model: the columnar
// core.Kernel for the pristine program, the generic scalar kernel when
// a mutation rewrote guards (core.NewKernel hardcodes the transcribed
// guard semantics and must not silently shadow a deliberately broken
// program — its action-name validation would also reject skip-stab
// outright).
func ccKernel(variant core.Variant, h *hypergraph.H, opts CCOptions) func() sim.BatchKernel[core.State] {
	if h.N() > 64 {
		return nil
	}
	return func() sim.BatchKernel[core.State] {
		alg, prog := newCCProg(variant, h)
		if opts.Mutation != "" {
			if err := MutateCC(alg, prog, opts.Mutation); err != nil {
				panic(err) // validated by CC
			}
			return sim.NewProgramKernel(prog)
		}
		return core.NewKernel(alg, prog)
	}
}

// newCCProg builds an Alg with the frozen eager environment and
// deterministic choice resolution, plus its program.
func newCCProg(variant core.Variant, h *hypergraph.H) (*core.Alg, *sim.Program[core.State]) {
	env := core.NewScripted(h.N())
	for p := range env.In {
		env.In[p] = true
		env.Out[p] = true
	}
	alg := core.New(variant, h, env)
	alg.Choose = core.ChooseFirst
	return alg, alg.Program(false)
}

// --- Initial-configuration families ------------------------------------------

func ccInits(alg *core.Alg, opts CCOptions) func(yield func(cfg []core.State) bool) {
	h := alg.H
	n := h.N()
	switch opts.Init {
	case InitLegit:
		return func(yield func([]core.State) bool) {
			cfg := make([]core.State, n)
			for p := 0; p < n; p++ {
				cfg[p] = alg.LegitState(p)
			}
			yield(cfg)
		}
	case InitRandom:
		return func(yield func([]core.State) bool) {
			rng := rand.New(rand.NewSource(opts.Seed))
			cfg := make([]core.State, n)
			for i := 0; i < opts.RandomCount; i++ {
				for p := 0; p < n; p++ {
					cfg[p] = alg.RandomState(p, rng)
				}
				if !yield(cfg) {
					return
				}
			}
		}
	default: // InitCC, InitCCFull
		full := opts.Init == InitCCFull
		return func(yield func([]core.State) bool) {
			// Per-process domains over the stabilized token layer.
			domains := make([][]core.State, n)
			for p := 0; p < n; p++ {
				domains[p] = alg.EnumStates(p, full)
			}
			cfg := make([]core.State, n)
			idx := make([]int, n)
			for {
				for p := 0; p < n; p++ {
					cfg[p] = domains[p][idx[p]]
				}
				if !yield(cfg) {
					return
				}
				// Odometer.
				p := 0
				for ; p < n; p++ {
					idx[p]++
					if idx[p] < len(domains[p]) {
						break
					}
					idx[p] = 0
				}
				if p == n {
					return
				}
			}
		}
	}
}

// --- Rendering ----------------------------------------------------------------

// renderCC pretty-prints a configuration for counterexample traces.
func renderCC(alg *core.Alg, cfg []core.State) string {
	var b strings.Builder
	for p := range cfg {
		if p > 0 {
			b.WriteString("  ")
		}
		ptr := "⊥"
		if cfg[p].P != core.NoEdge {
			ptr = fmt.Sprint(cfg[p].P)
		}
		marks := ""
		if cfg[p].T {
			marks += "T"
		}
		if cfg[p].L {
			marks += "L"
		}
		if alg.Token(cfg, p) {
			marks += "*"
		}
		if marks != "" {
			marks = "[" + marks + "]"
		}
		fmt.Fprintf(&b, "p%d:%s→%s%s", p, shortStatus(cfg[p].S), ptr, marks)
	}
	if meets := alg.Meetings(cfg); len(meets) > 0 {
		fmt.Fprintf(&b, "  meets=%v", meets)
	}
	return b.String()
}

func shortStatus(s core.Status) string {
	switch s {
	case core.Idle:
		return "id"
	case core.Looking:
		return "lo"
	case core.Waiting:
		return "wa"
	case core.Done:
		return "do"
	}
	return "??"
}

// --- Seeded mutations ---------------------------------------------------------

// Mutations deliberately break one guard of the transcribed algorithm.
// They exist to demonstrate that the exhaustive checker detects real
// bugs with a counterexample trace — a checker that only ever says "ok"
// proves nothing about itself.
const (
	// MutationLeaveEarly weakens Step4's guard from LeaveMeeting(p) ∧
	// RequestOut(p) to S_p = done ∧ RequestOut(p): a professor leaves as
	// soon as its own essential discussion ends, violating Essential
	// Discussion (the meeting terminates while other members still wait).
	MutationLeaveEarly = "leave-early"
	// MutationSkipStab removes the stabilization actions (Stab / Stab1,
	// Stab2): from corrupted initial configurations incorrect processes
	// are never repaired, violating the convergence bound (and typically
	// deadlocking part of the system).
	MutationSkipStab = "skip-stab"
)

// Mutations lists the supported mutation names.
func Mutations() []string { return []string{MutationLeaveEarly, MutationSkipStab} }

// MutateCC applies the named mutation to prog in place.
func MutateCC(alg *core.Alg, prog *sim.Program[core.State], name string) error {
	switch name {
	case MutationLeaveEarly:
		for i := range prog.Actions {
			if prog.Actions[i].Name == "Step4" {
				prog.Actions[i].Guard = func(cfg []core.State, p int) bool {
					return cfg[p].S == core.Done && alg.Env.RequestOut(p)
				}
				return nil
			}
		}
		return fmt.Errorf("explore: mutation %q found no Step4 action", name)
	case MutationSkipStab:
		kept := prog.Actions[:0]
		removed := 0
		for _, a := range prog.Actions {
			if a.Name == "Stab" || a.Name == "Stab1" || a.Name == "Stab2" {
				removed++
				continue
			}
			kept = append(kept, a)
		}
		prog.Actions = kept
		if removed == 0 {
			return fmt.Errorf("explore: mutation %q found no stabilization actions", name)
		}
		return nil
	}
	return fmt.Errorf("explore: unknown mutation %q (supported: %s)", name, strings.Join(Mutations(), ", "))
}
