package explore

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// This file adapts CC1/CC2/CC3 ∘ TC to the explorer: a canonical state
// codec, the initial-configuration families, a renderer for
// counterexample traces, and the seeded guard mutations used to prove
// the checker can catch real bugs.
//
// Environment: guards read Env.RequestIn/RequestOut, which must be
// frozen for exploration. The adapter uses the *eager* environment —
// both predicates constantly true — the choice that maximizes enabled
// actions: professors always want in, and always agree to leave. Every
// transition possible under any other stable environment whose
// predicates currently answer the same is covered; the spec properties
// checked here are safety properties of the algorithm, not of a
// particular client behaviour.
//
// Nondeterministic statement resolution ("P_p := ε ∈ FreeEdges_p") is
// pinned to core.ChooseFirst so Apply is a pure function of the
// configuration and the selection.

// InitMode selects the family of initial configurations.
type InitMode int

const (
	// InitLegit seeds the single canonical fault-free configuration —
	// exploration then proves closure of the legitimate space.
	InitLegit InitMode = iota
	// InitCC seeds every assignment of the CC-layer status and pointer
	// variables (S_p, P_p) over the stabilized token layer: the space of
	// configurations after transient faults hit the committee layer.
	InitCC
	// InitCCFull additionally ranges the T_p and L_p bits (L only for
	// CC2/CC3) — the full CC-layer fault space over a stabilized token
	// layer.
	InitCCFull
	// InitRandom seeds RandomCount configurations drawn uniformly from
	// the *entire* composed state space, token layer included — the §2.5
	// adversary's arbitrary corruption.
	InitRandom
)

func (m InitMode) String() string {
	switch m {
	case InitLegit:
		return "legit"
	case InitCC:
		return "cc"
	case InitCCFull:
		return "cc-full"
	case InitRandom:
		return "random"
	}
	return fmt.Sprintf("init(%d)", int(m))
}

// ParseInitMode parses the cccheck -init flag value.
func ParseInitMode(s string) (InitMode, error) {
	switch s {
	case "legit":
		return InitLegit, nil
	case "cc":
		return InitCC, nil
	case "cc-full":
		return InitCCFull, nil
	case "random":
		return InitRandom, nil
	}
	return 0, fmt.Errorf("explore: unknown init mode %q (legit | cc | cc-full | random)", s)
}

// CCOptions parameterize the CC model construction.
type CCOptions struct {
	Init        InitMode
	RandomCount int   // initial configurations for InitRandom (default 256)
	Seed        int64 // randomness for InitRandom
	// Mutation, if non-empty, deliberately breaks a guard (see MutateCC)
	// so the checker's counterexample machinery can be demonstrated.
	Mutation string
}

// CC returns a Model factory for the given variant over h. Each call of
// the factory builds an independent Alg (guards use per-Alg scratch, so
// one instance per worker).
func CC(variant core.Variant, h *hypergraph.H, opts CCOptions) (func() *Model[core.State], error) {
	if h.N() > 250 || h.M() > 250 {
		return nil, fmt.Errorf("explore: topology too large for the state codec (n=%d, m=%d; max 250)", h.N(), h.M())
	}
	// Validate the mutation name once, eagerly.
	if opts.Mutation != "" {
		alg, prog := newCCProg(variant, h)
		if err := MutateCC(alg, prog, opts.Mutation); err != nil {
			return nil, err
		}
	}
	if opts.RandomCount <= 0 {
		opts.RandomCount = 256
	}
	name := fmt.Sprintf("%s/%s", variant, h)
	if opts.Mutation != "" {
		name = fmt.Sprintf("%s+mutate:%s", variant, opts.Mutation)
	}
	return func() *Model[core.State] {
		alg, prog := newCCProg(variant, h)
		if opts.Mutation != "" {
			if err := MutateCC(alg, prog, opts.Mutation); err != nil {
				panic(err) // validated above
			}
		}
		return &Model[core.State]{
			Name:    name,
			Prog:    prog,
			Probe:   alg.Probe(),
			Encode:  encodeCC,
			Decode:  func(key string) []core.State { return decodeCC(key, h.N()) },
			Inits:   ccInits(alg, opts),
			Correct: alg.Correct,
			Render:  func(cfg []core.State) string { return renderCC(alg, cfg) },
		}
	}, nil
}

// newCCProg builds an Alg with the frozen eager environment and
// deterministic choice resolution, plus its program.
func newCCProg(variant core.Variant, h *hypergraph.H) (*core.Alg, *sim.Program[core.State]) {
	env := core.NewScripted(h.N())
	for p := range env.In {
		env.In[p] = true
		env.Out[p] = true
	}
	alg := core.New(variant, h, env)
	alg.Choose = core.ChooseFirst
	return alg, alg.Program(false)
}

// --- Initial-configuration families ------------------------------------------

func ccInits(alg *core.Alg, opts CCOptions) func(yield func(cfg []core.State) bool) {
	h := alg.H
	n := h.N()
	switch opts.Init {
	case InitLegit:
		return func(yield func([]core.State) bool) {
			cfg := make([]core.State, n)
			for p := 0; p < n; p++ {
				cfg[p] = alg.LegitState(p)
			}
			yield(cfg)
		}
	case InitRandom:
		return func(yield func([]core.State) bool) {
			rng := rand.New(rand.NewSource(opts.Seed))
			cfg := make([]core.State, n)
			for i := 0; i < opts.RandomCount; i++ {
				for p := 0; p < n; p++ {
					cfg[p] = alg.RandomState(p, rng)
				}
				if !yield(cfg) {
					return
				}
			}
		}
	default: // InitCC, InitCCFull
		full := opts.Init == InitCCFull
		return func(yield func([]core.State) bool) {
			// Per-process domains over the stabilized token layer.
			domains := make([][]core.State, n)
			for p := 0; p < n; p++ {
				domains[p] = alg.EnumStates(p, full)
			}
			cfg := make([]core.State, n)
			idx := make([]int, n)
			for {
				for p := 0; p < n; p++ {
					cfg[p] = domains[p][idx[p]]
				}
				if !yield(cfg) {
					return
				}
				// Odometer.
				p := 0
				for ; p < n; p++ {
					idx[p]++
					if idx[p] < len(domains[p]) {
						break
					}
					idx[p] = 0
				}
				if p == n {
					return
				}
			}
		}
	}
}

// --- Canonical codec ----------------------------------------------------------

// appendI16 encodes a small signed int (≥ -1) as two bytes.
func appendI16(dst []byte, v int) []byte {
	u := v + 1
	if u < 0 || u > 0xFFFF {
		panic(fmt.Sprintf("explore: value %d out of codec range", v))
	}
	return append(dst, byte(u>>8), byte(u))
}

func getI16(key string, i int) int {
	return int(key[i])<<8 | int(key[i+1]) - 1
}

// encodeCC produces the canonical byte encoding of a CC ∘ TC
// configuration: per process, a status byte, a packed flag byte
// (T, L, A, H, C), and the seven small ints P, R, Lid, Dist, Parent,
// Vis, Des as offset int16s.
func encodeCC(dst []byte, cfg []core.State) []byte {
	for p := range cfg {
		s := &cfg[p]
		flags := byte(0)
		if s.T {
			flags |= 1
		}
		if s.L {
			flags |= 2
		}
		if s.TC.A {
			flags |= 4
		}
		if s.TC.H != 0 {
			flags |= 8
		}
		if s.TC.C != 0 {
			flags |= 16
		}
		dst = append(dst, byte(s.S), flags)
		dst = appendI16(dst, s.P)
		dst = appendI16(dst, s.R)
		dst = appendI16(dst, s.TC.Lid)
		dst = appendI16(dst, s.TC.Dist)
		dst = appendI16(dst, s.TC.Parent)
		dst = appendI16(dst, s.TC.Vis)
		dst = appendI16(dst, s.TC.Des)
	}
	return dst
}

func decodeCC(key string, n int) []core.State {
	const per = 2 + 7*2
	if len(key) != n*per {
		panic(fmt.Sprintf("explore: key length %d for %d processes", len(key), n))
	}
	cfg := make([]core.State, n)
	for p := 0; p < n; p++ {
		o := p * per
		s := &cfg[p]
		s.S = core.Status(key[o])
		flags := key[o+1]
		s.T = flags&1 != 0
		s.L = flags&2 != 0
		s.TC.A = flags&4 != 0
		if flags&8 != 0 {
			s.TC.H = 1
		}
		if flags&16 != 0 {
			s.TC.C = 1
		}
		s.P = getI16(key, o+2)
		s.R = getI16(key, o+4)
		s.TC.Lid = getI16(key, o+6)
		s.TC.Dist = getI16(key, o+8)
		s.TC.Parent = getI16(key, o+10)
		s.TC.Vis = getI16(key, o+12)
		s.TC.Des = getI16(key, o+14)
	}
	return cfg
}

// renderCC pretty-prints a configuration for counterexample traces.
func renderCC(alg *core.Alg, cfg []core.State) string {
	var b strings.Builder
	for p := range cfg {
		if p > 0 {
			b.WriteString("  ")
		}
		ptr := "⊥"
		if cfg[p].P != core.NoEdge {
			ptr = fmt.Sprint(cfg[p].P)
		}
		marks := ""
		if cfg[p].T {
			marks += "T"
		}
		if cfg[p].L {
			marks += "L"
		}
		if alg.Token(cfg, p) {
			marks += "*"
		}
		if marks != "" {
			marks = "[" + marks + "]"
		}
		fmt.Fprintf(&b, "p%d:%s→%s%s", p, shortStatus(cfg[p].S), ptr, marks)
	}
	if meets := alg.Meetings(cfg); len(meets) > 0 {
		fmt.Fprintf(&b, "  meets=%v", meets)
	}
	return b.String()
}

func shortStatus(s core.Status) string {
	switch s {
	case core.Idle:
		return "id"
	case core.Looking:
		return "lo"
	case core.Waiting:
		return "wa"
	case core.Done:
		return "do"
	}
	return "??"
}

// --- Seeded mutations ---------------------------------------------------------

// Mutations deliberately break one guard of the transcribed algorithm.
// They exist to demonstrate that the exhaustive checker detects real
// bugs with a counterexample trace — a checker that only ever says "ok"
// proves nothing about itself.
const (
	// MutationLeaveEarly weakens Step4's guard from LeaveMeeting(p) ∧
	// RequestOut(p) to S_p = done ∧ RequestOut(p): a professor leaves as
	// soon as its own essential discussion ends, violating Essential
	// Discussion (the meeting terminates while other members still wait).
	MutationLeaveEarly = "leave-early"
	// MutationSkipStab removes the stabilization actions (Stab / Stab1,
	// Stab2): from corrupted initial configurations incorrect processes
	// are never repaired, violating the convergence bound (and typically
	// deadlocking part of the system).
	MutationSkipStab = "skip-stab"
)

// Mutations lists the supported mutation names.
func Mutations() []string { return []string{MutationLeaveEarly, MutationSkipStab} }

// MutateCC applies the named mutation to prog in place.
func MutateCC(alg *core.Alg, prog *sim.Program[core.State], name string) error {
	switch name {
	case MutationLeaveEarly:
		for i := range prog.Actions {
			if prog.Actions[i].Name == "Step4" {
				prog.Actions[i].Guard = func(cfg []core.State, p int) bool {
					return cfg[p].S == core.Done && alg.Env.RequestOut(p)
				}
				return nil
			}
		}
		return fmt.Errorf("explore: mutation %q found no Step4 action", name)
	case MutationSkipStab:
		kept := prog.Actions[:0]
		removed := 0
		for _, a := range prog.Actions {
			if a.Name == "Stab" || a.Name == "Stab1" || a.Name == "Stab2" {
				removed++
				continue
			}
			kept = append(kept, a)
		}
		prog.Actions = kept
		if removed == 0 {
			return fmt.Errorf("explore: mutation %q found no stabilization actions", name)
		}
		return nil
	}
	return fmt.Errorf("explore: unknown mutation %q (supported: %s)", name, strings.Join(Mutations(), ", "))
}
