package explore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
)

// findSpillFile locates the single spill artifact matching pattern
// under dir (recursively — frontier segments live in a nested
// cc-frontier-* directory).
func findSpillFile(t *testing.T, dir, pattern string) string {
	t.Helper()
	var found string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if ok, _ := filepath.Match(pattern, d.Name()); ok {
			found = path
		}
		return nil
	})
	if found == "" {
		t.Fatalf("no spill file matching %q under %s", pattern, dir)
	}
	return found
}

// TestFrontierSegmentCorruption: a spilled segment is live,
// non-redundant queue data — damage at any structural boundary must
// surface as a classified *chaos.CorruptError with the file parked
// aside (*.quarantine), never as a silently truncated BFS layer.
func TestFrontierSegmentCorruption(t *testing.T) {
	corrupt := func(name string, mutate func([]byte) []byte) {
		dir := t.TempDir()
		f := NewFrontier(1<<12, dir, nil)
		defer f.Close()
		for i := int32(0); i < 20_000; i++ {
			if err := f.Push(i); err != nil {
				t.Fatal(err)
			}
		}
		if f.SpillSegments == 0 {
			t.Fatalf("%s: nothing spilled", name)
		}
		seg := findSpillFile(t, dir, "seg-00000000")
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, mutate(data), 0o600); err != nil {
			t.Fatal(err)
		}
		buf := make([]int32, 0, 4096)
		var derr error
		for f.Len() > 0 && derr == nil {
			_, derr = f.PopChunk(buf)
		}
		if derr == nil {
			t.Fatalf("%s: drain succeeded through a damaged segment", name)
		}
		var ce *chaos.CorruptError
		if !errors.As(derr, &ce) {
			t.Fatalf("%s: drain error %v is not a CorruptError", name, derr)
		}
		if _, err := os.Stat(seg + ".quarantine"); err != nil {
			t.Fatalf("%s: damaged segment not quarantined: %v", name, err)
		}
	}
	corrupt("bitflip-payload", func(b []byte) []byte {
		c := append([]byte(nil), b...)
		c[len(c)/2] ^= 0x01
		return c
	})
	corrupt("bitflip-header", func(b []byte) []byte {
		c := append([]byte(nil), b...)
		c[0] ^= 0x01
		return c
	})
	corrupt("truncate-half", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("truncate-empty", func(b []byte) []byte { return nil })
}

// TestFrontierSpillRetriesTransient: a one-shot ENOSPC mid-spill is
// retried away and the drain order stays exactly push order — faults
// that heal leave no trace in the exploration.
func TestFrontierSpillRetriesTransient(t *testing.T) {
	ffs := chaos.NewFaultFS(nil, chaos.Faults{FailWriteAt: 1})
	f := NewFrontier(1<<12, t.TempDir(), ffs)
	defer f.Close()
	const n = 20_000
	for i := int32(0); i < n; i++ {
		if err := f.Push(i); err != nil {
			t.Fatalf("push %d: spill did not retry a transient fault: %v", i, err)
		}
	}
	if ffs.Stats()["write"] == 0 {
		t.Fatal("fault was not injected — the test exercised nothing")
	}
	out := drainAll(t, f, 777)
	if len(out) != n {
		t.Fatalf("drained %d ids, want %d", len(out), n)
	}
	for i, id := range out {
		if id != int32(i) {
			t.Fatalf("out[%d] = %d, want %d", i, id, i)
		}
	}
}

// spillVisited builds a Visited with nstates promoted two-word keys
// and forces ids below hotFrom onto the arena spill file.
func spillVisited(t *testing.T, dir string, fsys chaos.FS, nstates int, hotFrom int32) *Visited {
	t.Helper()
	v := NewVisited(2)
	v.SetSerial(true)
	v.EnableArenaSpill(dir, 1024)
	if fsys != nil {
		v.SetFS(fsys)
	}
	for i := 0; i < nstates; i++ {
		key := []uint64{uint64(i), uint64(i) ^ 0xabc}
		v.Probe(key, hashWords(key), uint64(i), -1, nil)
	}
	for _, fr := range v.Drain() {
		v.Promote(fr)
	}
	v.Reset()
	if err := v.Housekeep(hotFrom); err != nil {
		t.Fatal(err)
	}
	if v.SpilledBytes() == 0 {
		t.Fatal("arena did not spill")
	}
	return v
}

// coldKey reads a spilled key, converting the internal ioPanic that
// carries classified read failures back into an error.
func coldKey(v *Visited, id int32) (key []uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			ip, ok := r.(ioPanic)
			if !ok {
				panic(r)
			}
			err = ip.err
		}
	}()
	return v.Key(id), nil
}

// TestArenaColdReadCorruption: a bit flip in a spilled arena record is
// caught by the per-record checksum and surfaces as a classified
// *chaos.CorruptError — never a wrong key, which would silently merge
// distinct states and corrupt the verdict.
func TestArenaColdReadCorruption(t *testing.T) {
	dir := t.TempDir()
	v := spillVisited(t, dir, nil, 1000, 900)
	// Undamaged cold reads round-trip exactly.
	got, err := coldKey(v, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 20 || got[1] != 20^0xabc {
		t.Fatalf("cold key 20 = %v", got)
	}
	// Flip one payload bit in record 10.
	spill := findSpillFile(t, dir, "cc-arena-*")
	fh, err := os.OpenFile(spill, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := v.recSize()
	buf := []byte{0}
	if _, err := fh.ReadAt(buf, 10*rec+3); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x10
	if _, err := fh.WriteAt(buf, 10*rec+3); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	if _, err := coldKey(v, 10); err == nil {
		t.Fatal("corrupted arena record read back as a valid key")
	} else {
		var ce *chaos.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("cold read error %v is not a CorruptError", err)
		}
	}
	// Neighbouring records are untouched: damage is contained to the
	// record whose checksum failed.
	if got, err := coldKey(v, 11); err != nil || got[0] != 11 {
		t.Fatalf("record 11 damaged by record 10's corruption: %v %v", got, err)
	}
}

// TestArenaColdReadRetriesTransient: a one-shot EIO on the spill-file
// read is retried in place; the key still comes back exact.
func TestArenaColdReadRetriesTransient(t *testing.T) {
	ffs := chaos.NewFaultFS(nil, chaos.Faults{})
	v := spillVisited(t, t.TempDir(), ffs, 1000, 900)
	ffs.SetFaults(chaos.Faults{FailReadAt: 1})
	got, err := coldKey(v, 42)
	if err != nil {
		t.Fatalf("cold read did not retry a transient fault: %v", err)
	}
	if got[0] != 42 || got[1] != 42^0xabc {
		t.Fatalf("cold key 42 = %v", got)
	}
	if ffs.Stats()["read"] == 0 {
		t.Fatal("fault was not injected — the test exercised nothing")
	}
}
