package explore

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
)

// Checkpointing makes a long exploration survivable: every
// Options.CheckpointEvery expanded states — and on context
// cancellation — the engine persists a complete snapshot of its
// deterministic state through the Checkpointer, and a later run with
// the same model and options resumes from it, producing a final Result
// byte-identical (StateBytes aside — a footprint measurement, not part
// of the verdict) to the uninterrupted run at any worker count.
//
// What a snapshot must capture falls out of the engine's two-phase
// design: checkpoints are taken only at chunk boundaries, where the
// workers are parked, so the whole state is (a) the promoted arena
// with its parent/selection trace arrays, (b) the pending entries of
// the layer in progress, (c) the not-yet-expanded remainder of the
// open queue, and (d) the serial counters (result-so-far plus the
// current layer's accumulated aggregate). Everything else — slot
// tables, spill segment files, worker scratch — is rebuilt.
//
// The snapshot format is versioned binary: a magic header, the
// SHA-256 of the (model, options) identity — a mismatched checkpoint
// is ignored, never misapplied — length-prefixed metadata sections,
// the raw arena stream last (so restore streams it straight into the
// visited set, spilling cold ids back to disk under a memory budget
// without ever materializing the full arena), and a trailing FNV-64a
// checksum that rejects torn or corrupted files as "no checkpoint".

// Checkpointer persists and recalls exploration snapshots. Save must
// be atomic (write-temp-then-rename or equivalent): a crash during
// Save must leave the previous checkpoint intact. Load returns
// (nil, nil) when no checkpoint exists.
type Checkpointer interface {
	Load() (io.ReadCloser, error)
	Save(write func(w io.Writer) error) error
}

// ErrInterrupted is returned (wrapped) by ExploreCtx when the context
// is cancelled mid-run; if a Checkpointer is configured, a checkpoint
// has been saved and a rerun resumes from it.
var ErrInterrupted = errors.New("interrupted")

// RunStats reports resume/out-of-core bookkeeping that is
// deliberately *not* part of Result: a resumed or spilled run must
// produce byte-identical verdict bytes, so anything that differs
// between such runs lives here.
type RunStats struct {
	// ResumedStates is the promoted-state count restored from a
	// checkpoint (0 = fresh run).
	ResumedStates int
	// CheckpointsWritten counts snapshots persisted this run.
	CheckpointsWritten int
	// FrontierSpillSegments / FrontierSpilledBytes: open-queue spill
	// traffic (cumulative writes, not high water).
	FrontierSpillSegments int
	FrontierSpilledBytes  int64
	// ArenaSpilledBytes is the visited-arena bytes resident on disk at
	// the end of the run.
	ArenaSpilledBytes int64
	// CheckpointErrors counts periodic snapshot saves that failed; the
	// run degraded to continuing uncheckpointed instead of aborting.
	CheckpointErrors int
}

const checkpointVersion = 1

var checkpointMagic = [8]byte{'C', 'C', 'K', 'P', 'T', '0' + checkpointVersion, '\r', '\n'}

// optionsHash identifies the (model, options) tuple a checkpoint is
// valid for. Result-irrelevant knobs (Workers, MemBudget, SpillDir,
// checkpoint cadence) are excluded: a run may resume under a different
// worker count or memory budget and still reproduce the same bytes.
func optionsHash(name string, words, nprocs int, o *Options) [32]byte {
	s := fmt.Sprintf("explore-ckpt-v%d|%s|w=%d|n=%d|mode=%d|ms=%d|md=%d|mb=%d|mv=%d|dl=%t|cl=%t|cv=%t|sym=%t",
		checkpointVersion, name, words, nprocs, o.Mode,
		o.MaxStates, o.MaxDepth, o.MaxBranch, o.MaxViolations,
		o.CheckDeadlock, o.CheckClosure, o.CheckConvergence, o.Symmetry)
	return sha256.Sum256([]byte(s))
}

// snapshot is the serial-phase state of a paused exploration (see the
// package comment above for the inventory).
type snapshot struct {
	hash    [32]byte
	words   int
	nstates int

	inits             int
	transitions       int64
	resDepth          int
	maxEnabled        int
	deadlocks         int
	maxIncorrectDepth int
	truncated         bool

	violations []Violation

	curDepth int
	itemBase int
	agg      layerAgg

	frontier []int32
	parentOf []int32
	selOf    []string
	pending  []PendSnap
}

// wireViol is the JSON shape of an in-progress layer violation
// (itemViol has no exported fields).
type wireViol struct {
	Item int      `json:"item"`
	ID   int32    `json:"id"`
	Kind string   `json:"kind"`
	Msg  string   `json:"msg"`
	Sel  []int    `json:"sel,omitempty"`
	Key  []uint64 `json:"key,omitempty"`
}

// --- encoding helpers ---------------------------------------------------------

type ckptWriter struct {
	w   *bufio.Writer
	sum hash.Hash64
	err error
}

func newCkptWriter(w io.Writer) *ckptWriter {
	return &ckptWriter{w: bufio.NewWriterSize(w, 1<<20), sum: fnv.New64a()}
}

func (c *ckptWriter) bytes(p []byte) {
	if c.err != nil {
		return
	}
	c.sum.Write(p)
	_, c.err = c.w.Write(p)
}

func (c *ckptWriter) u64(x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	c.bytes(b[:])
}

func (c *ckptWriter) i64(x int64) { c.u64(uint64(x)) }
func (c *ckptWriter) int(x int)   { c.i64(int64(x)) }
func (c *ckptWriter) i32(x int32) { c.i64(int64(x)) }
func (c *ckptWriter) bool(x bool) {
	b := byte(0)
	if x {
		b = 1
	}
	c.bytes([]byte{b})
}
func (c *ckptWriter) blob(p []byte) {
	c.int(len(p))
	c.bytes(p)
}
func (c *ckptWriter) str(s string) { c.blob([]byte(s)) }

type ckptReader struct {
	r   *bufio.Reader
	sum hash.Hash64
	err error
}

func newCkptReader(r io.Reader) *ckptReader {
	return &ckptReader{r: bufio.NewReaderSize(r, 1<<20), sum: fnv.New64a()}
}

func (c *ckptReader) bytes(p []byte) {
	if c.err != nil {
		return
	}
	if _, err := io.ReadFull(c.r, p); err != nil {
		c.err = err
		return
	}
	c.sum.Write(p)
}

func (c *ckptReader) u64() uint64 {
	var b [8]byte
	c.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (c *ckptReader) i64() int64 { return int64(c.u64()) }
func (c *ckptReader) int() int   { return int(c.i64()) }
func (c *ckptReader) i32() int32 { return int32(c.i64()) }
func (c *ckptReader) bool() bool {
	var b [1]byte
	c.bytes(b[:])
	return b[0] != 0
}
func (c *ckptReader) blob(limit int) []byte {
	n := c.int()
	if c.err != nil {
		return nil
	}
	if n < 0 || n > limit {
		c.err = fmt.Errorf("explore: checkpoint blob length %d out of range", n)
		return nil
	}
	// Grow with the bytes actually read, not the claimed length: a
	// corrupted header must not make a tiny torn file allocate
	// gigabytes before ReadFull notices the data is missing.
	p := make([]byte, 0, min(n, 1<<16))
	for len(p) < n {
		k := min(n-len(p), 1<<16)
		off := len(p)
		p = append(p, make([]byte, k)...)
		c.bytes(p[off:])
		if c.err != nil {
			return nil
		}
	}
	return p
}

// i32s reads a counted []int32 section, growing with the values
// actually decoded for the same torn-header reason as blob.
func (c *ckptReader) i32s(n int) []int32 {
	out := make([]int32, 0, min(n, 1<<14))
	for i := 0; i < n; i++ {
		v := c.i32()
		if c.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// snapLimit bounds variable-length checkpoint sections against
// corrupted headers allocating absurd buffers.
const snapLimit = 1 << 31

// writeSnapshot streams the snapshot (arena last) to w.
func writeSnapshot(w io.Writer, s *snapshot, vs *Visited) error {
	c := newCkptWriter(w)
	c.bytes(checkpointMagic[:])
	c.bytes(s.hash[:])
	c.int(s.words)
	c.int(s.nstates)
	c.int(s.inits)
	c.i64(s.transitions)
	c.int(s.resDepth)
	c.int(s.maxEnabled)
	c.int(s.deadlocks)
	c.int(s.maxIncorrectDepth)
	c.bool(s.truncated)

	viols, err := json.Marshal(s.violations)
	if err != nil {
		return fmt.Errorf("explore: checkpoint: %v", err)
	}
	c.blob(viols)

	c.int(s.curDepth)
	c.int(s.itemBase)
	c.int(s.agg.deadlocks)
	c.i64(s.agg.transitions)
	c.int(s.agg.maxEnabled)
	c.bool(s.agg.truncated)
	c.bool(s.agg.incorrect)
	wv := make([]wireViol, len(s.agg.viols))
	for i, iv := range s.agg.viols {
		wv[i] = wireViol{Item: iv.item, ID: iv.id, Kind: iv.wv.kind, Msg: iv.wv.msg, Sel: iv.wv.sel, Key: iv.wv.key}
	}
	aggViols, err := json.Marshal(wv)
	if err != nil {
		return fmt.Errorf("explore: checkpoint: %v", err)
	}
	c.blob(aggViols)

	c.int(len(s.frontier))
	for _, id := range s.frontier {
		c.i32(id)
	}
	c.int(len(s.parentOf))
	for _, p := range s.parentOf {
		c.i32(p)
	}
	for _, sel := range s.selOf {
		c.str(sel)
	}
	c.int(len(s.pending))
	for _, p := range s.pending {
		c.u64(p.Pos)
		c.i32(p.Parent)
		c.str(p.Sel)
		for _, w := range p.Key {
			c.u64(w)
		}
	}
	if c.err == nil {
		if c.err = vs.writeArenaHashed(c); c.err != nil {
			return c.err
		}
	}
	// Trailing checksum (not itself summed).
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], c.sum.Sum64())
	if c.err == nil {
		_, c.err = c.w.Write(b[:])
	}
	if c.err == nil {
		c.err = c.w.Flush()
	}
	return c.err
}

// writeArenaHashed streams the arena through the checkpoint writer so
// the checksum covers it.
func (v *Visited) writeArenaHashed(c *ckptWriter) error {
	var scratch [8]byte
	err := v.scanArena(func(id int32, key []uint64) {
		for _, word := range key {
			binary.LittleEndian.PutUint64(scratch[:], word)
			c.bytes(scratch[:])
		}
	})
	if err != nil {
		return err
	}
	return c.err
}

// readSnapshot decodes a snapshot from r into s and the fresh visited
// set vs (arena streamed straight into it, spilling under vs's budget).
// wantHash must match the stored options hash; any mismatch, format
// drift or corruption returns an error and the caller starts fresh.
func readSnapshot(r io.Reader, wantHash [32]byte, words int, vs *Visited) (*snapshot, error) {
	c := newCkptReader(r)
	var magic [8]byte
	c.bytes(magic[:])
	if c.err == nil && magic != checkpointMagic {
		return nil, fmt.Errorf("explore: not a checkpoint (or version drift)")
	}
	s := &snapshot{}
	c.bytes(s.hash[:])
	if c.err == nil && s.hash != wantHash {
		return nil, fmt.Errorf("explore: checkpoint is for a different (model, options) tuple")
	}
	s.words = c.int()
	if c.err == nil && s.words != words {
		return nil, fmt.Errorf("explore: checkpoint word width %d != codec %d", s.words, words)
	}
	s.nstates = c.int()
	if c.err == nil && (s.nstates < 0 || s.nstates > 1<<31-1) {
		// Ids are int32; anything past that is a corrupted header, and
		// it must fail here rather than size the visited set from it.
		return nil, fmt.Errorf("explore: checkpoint state count %d out of range", s.nstates)
	}
	s.inits = c.int()
	s.transitions = c.i64()
	s.resDepth = c.int()
	s.maxEnabled = c.int()
	s.deadlocks = c.int()
	s.maxIncorrectDepth = c.int()
	s.truncated = c.bool()

	if b := c.blob(snapLimit); c.err == nil {
		if err := json.Unmarshal(b, &s.violations); err != nil {
			return nil, fmt.Errorf("explore: checkpoint violations: %v", err)
		}
	}

	s.curDepth = c.int()
	s.itemBase = c.int()
	s.agg.deadlocks = c.int()
	s.agg.transitions = c.i64()
	s.agg.maxEnabled = c.int()
	s.agg.truncated = c.bool()
	s.agg.incorrect = c.bool()
	if b := c.blob(snapLimit); c.err == nil {
		var wv []wireViol
		if err := json.Unmarshal(b, &wv); err != nil {
			return nil, fmt.Errorf("explore: checkpoint layer violations: %v", err)
		}
		s.agg.viols = make([]itemViol, len(wv))
		for i, v := range wv {
			s.agg.viols[i] = itemViol{item: v.Item, id: v.ID, wv: workerViol{kind: v.Kind, msg: v.Msg, sel: v.Sel, key: v.Key}}
		}
	}

	nf := c.int()
	if c.err == nil && (nf < 0 || nf > s.nstates) {
		return nil, fmt.Errorf("explore: checkpoint frontier length %d out of range", nf)
	}
	if c.err == nil {
		s.frontier = c.i32s(nf)
	}
	np := c.int()
	if c.err == nil && np != s.nstates {
		return nil, fmt.Errorf("explore: checkpoint parent table length %d != %d states", np, s.nstates)
	}
	if c.err == nil {
		s.parentOf = c.i32s(np)
	}
	if c.err == nil {
		s.selOf = make([]string, 0, min(np, 1<<14))
		for i := 0; i < np; i++ {
			sel := string(c.blob(1 << 16))
			if c.err != nil {
				break
			}
			s.selOf = append(s.selOf, sel)
		}
	}
	npend := c.int()
	if c.err == nil && (npend < 0 || npend > snapLimit/64) {
		return nil, fmt.Errorf("explore: checkpoint pending count %d out of range", npend)
	}
	if c.err == nil {
		s.pending = make([]PendSnap, 0, min(npend, 1<<12))
		for i := 0; i < npend; i++ {
			var p PendSnap
			p.Pos = c.u64()
			p.Parent = c.i32()
			p.Sel = string(c.blob(1 << 16))
			if c.err != nil {
				break
			}
			key := make([]uint64, words)
			for j := range key {
				key[j] = c.u64()
			}
			p.Key = key
			s.pending = append(s.pending, p)
		}
	}
	if c.err != nil {
		return nil, fmt.Errorf("explore: checkpoint read: %v", c.err)
	}
	// Semantic bounds the resume path indexes by: a file that passes
	// the checksum but violates these would walk the engine out of its
	// own tables.
	if s.inits < 0 || s.inits > s.nstates {
		return nil, fmt.Errorf("explore: checkpoint init count %d out of range", s.inits)
	}
	for _, id := range s.frontier {
		if id < 0 || int(id) >= s.nstates {
			return nil, fmt.Errorf("explore: checkpoint frontier id %d out of range", id)
		}
	}
	for _, p := range s.parentOf {
		if p < -1 || int(p) >= s.nstates {
			return nil, fmt.Errorf("explore: checkpoint parent id %d out of range", p)
		}
	}
	for _, p := range s.pending {
		if p.Parent < -1 || int(p.Parent) >= s.nstates {
			return nil, fmt.Errorf("explore: checkpoint pending parent %d out of range", p.Parent)
		}
	}
	if s.curDepth < 0 || s.resDepth < 0 || s.transitions < 0 {
		return nil, fmt.Errorf("explore: checkpoint counters out of range (depth %d/%d, transitions %d)",
			s.curDepth, s.resDepth, s.transitions)
	}

	// Arena: stream straight into the visited set, keeping the ids the
	// resumed layer still expands hot.
	hotFrom := int32(s.nstates)
	if len(s.frontier) > 0 {
		hotFrom = s.frontier[0]
	}
	// LimitReader keeps RestoreArena's internal buffering from reading
	// past the arena section into the trailing checksum.
	arenaBytes := int64(s.nstates) * int64(words) * 8
	if err := vs.RestoreArena(io.LimitReader(hashedReader{c}, arenaBytes), s.nstates, hotFrom); err != nil {
		return nil, err
	}
	want := c.sum.Sum64()
	var b [8]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		return nil, fmt.Errorf("explore: checkpoint checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != want {
		return nil, fmt.Errorf("explore: checkpoint checksum mismatch (torn or corrupted file)")
	}
	return s, nil
}

// hashedReader exposes the checkpoint reader as an io.Reader that
// keeps the checksum running.
type hashedReader struct{ c *ckptReader }

func (h hashedReader) Read(p []byte) (int, error) {
	if h.c.err != nil {
		return 0, h.c.err
	}
	n, err := h.c.r.Read(p)
	h.c.sum.Write(p[:n])
	return n, err
}
