package explore

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/baseline"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// FuzzCheckpointDecode: readSnapshot over arbitrary bytes — seeded
// with a real engine-written snapshot plus truncations and bit flips —
// must either reject with an error or return a snapshot whose every
// invariant holds. Never a panic, and never a silent acceptance of an
// inconsistent resume state: a checkpoint that decodes wrong would
// make the engine resume into a different (possibly wrong) verdict,
// which is the one failure mode the whole durable-I/O layer promises
// away (corrupt artifacts classify as "no checkpoint", the run
// restarts fresh).
func FuzzCheckpointDecode(f *testing.F) {
	factory, err := Baseline(baseline.TokenRing, hypergraph.CommitteeRing(3), 1)
	if err != nil {
		f.Fatal(err)
	}
	// MaxBranch and MaxViolations are pinned to their defaulted values:
	// optionsHash sees post-default options, and this hash is computed
	// outside the engine. The state bound is kept small on purpose —
	// the fuzz engine mutates whole inputs, and a multi-KB seed blob is
	// the difference between thousands of execs per second and single
	// digits.
	opts := Options{
		Mode: sim.SelectCentral, MaxStates: 120, MaxBranch: 1 << 16,
		MaxViolations: 5, Workers: 1, CheckpointEvery: 25,
	}
	ck := &memCheckpointer{}
	opts.Checkpoint = ck
	if _, err := ExploreCtx(context.Background(), factory, opts); err != nil {
		f.Fatal(err)
	}
	blob := ck.data
	if len(blob) == 0 {
		f.Fatal("the exploration wrote no periodic checkpoint to seed from")
	}
	m0 := factory()
	words := m0.Codec.Words
	// The identity the engine would demand on resume: decode succeeds
	// only for blobs claiming this exact (model, options) tuple.
	wantHash := optionsHash(m0.Name, words, m0.Prog.NumProcs, &opts)

	f.Add(blob)
	for _, cut := range []int{0, 1, 7, 8, len(blob) / 2, len(blob) - 1} {
		f.Add(blob[:cut])
	}
	for _, at := range []int{8, 40, len(blob) / 3, len(blob) - 9} {
		mut := append([]byte(nil), blob...)
		mut[at] ^= 0x40
		f.Add(mut)
	}
	f.Add(append(append([]byte(nil), blob...), blob...)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		vs := NewVisited(words)
		defer vs.Close()
		snap, err := readSnapshot(bytes.NewReader(data), wantHash, words, vs)
		if err != nil {
			return // rejected = restart fresh: always a safe outcome
		}
		// Accepted: the snapshot must be a state the engine can resume
		// from without reading out of bounds or diverging.
		if snap.hash != wantHash {
			t.Fatal("accepted a snapshot for a different (model, options) identity")
		}
		if snap.words != words {
			t.Fatalf("accepted word width %d, want %d", snap.words, words)
		}
		if snap.nstates != vs.States() {
			t.Fatalf("snapshot claims %d states but restored %d into the visited set", snap.nstates, vs.States())
		}
		if len(snap.parentOf) != snap.nstates || len(snap.selOf) != snap.nstates {
			t.Fatalf("trace arrays (%d parents, %d selections) do not cover %d states",
				len(snap.parentOf), len(snap.selOf), snap.nstates)
		}
		for _, id := range snap.frontier {
			if id < 0 || int(id) >= snap.nstates {
				t.Fatalf("frontier id %d outside [0,%d)", id, snap.nstates)
			}
		}
		for i, p := range snap.parentOf {
			if p < -1 || int(p) >= snap.nstates {
				t.Fatalf("parentOf[%d] = %d outside [-1,%d)", i, p, snap.nstates)
			}
		}
		if snap.inits < 0 || snap.inits > snap.nstates {
			t.Fatalf("inits %d outside [0,%d]", snap.inits, snap.nstates)
		}
		if snap.curDepth < 0 || snap.resDepth < 0 || snap.transitions < 0 {
			t.Fatalf("negative counters: depth %d/%d transitions %d", snap.curDepth, snap.resDepth, snap.transitions)
		}
	})
}
