package explore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// memCheckpointer keeps snapshots in memory and can cancel a context
// after the n-th save — the deterministic stand-in for "kill -9 at a
// randomized point" (the engine only reaches quiescent points at chunk
// boundaries, and every chunk boundary is reachable by varying the
// cadence and the save count).
type memCheckpointer struct {
	data        []byte
	saves       int
	cancelAfter int
	cancel      context.CancelFunc
	history     [][]byte // every snapshot ever saved, when recording
	record      bool
}

func (m *memCheckpointer) Load() (io.ReadCloser, error) {
	if m.data == nil {
		return nil, nil
	}
	return io.NopCloser(bytes.NewReader(m.data)), nil
}

func (m *memCheckpointer) Save(write func(w io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	m.data = buf.Bytes()
	m.saves++
	if m.record {
		m.history = append(m.history, append([]byte(nil), m.data...))
	}
	if m.cancelAfter > 0 && m.saves >= m.cancelAfter && m.cancel != nil {
		m.cancel()
	}
	return nil
}

// normJSON marshals a result with the process-local footprint
// measurement zeroed (the documented exclusion from byte-identity).
func normJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	c := *res
	c.StateBytes = 0
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// resumeUntilDone drives a run through repeated interruptions: each
// attempt cancels after a random (seeded) number of checkpoint saves,
// then the next attempt resumes from the latest snapshot, until one
// attempt completes.
func resumeUntilDone[S sim.Cloneable[S]](t *testing.T, factory func() *Model[S], opts Options, ck *memCheckpointer, rng *rand.Rand) (*Result, int) {
	t.Helper()
	interruptions := 0
	for attempt := 0; attempt < 500; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		ck.saves = 0
		ck.cancelAfter = 1 + rng.Intn(3)
		ck.cancel = cancel
		opts.Checkpoint = ck
		res, err := ExploreCtx(ctx, factory, opts)
		cancel()
		if err == nil {
			return res, interruptions
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if ck.data == nil {
			t.Fatalf("attempt %d: interrupted without a snapshot", attempt)
		}
		interruptions++
	}
	t.Fatal("run never completed in 500 attempts")
	return nil, 0
}

// TestCheckpointTorture is the differential kill/resume battery: runs
// interrupted at randomized checkpoint boundaries — serial and -j 8,
// fully in-memory and under a spill-forcing budget — must finish with
// reports byte-identical to the uninterrupted run, counterexample
// traces, truncation flags and all.
func TestCheckpointTorture(t *testing.T) {
	ring3 := hypergraph.CommitteeRing(3)
	cases := []struct {
		name    string
		factory func(t *testing.T) func(opts Options, ck *memCheckpointer, rng *rand.Rand) (*Result, int)
		opts    Options
	}{
		{
			name: "cc2/ring:3/cc-full/central",
			factory: func(t *testing.T) func(Options, *memCheckpointer, *rand.Rand) (*Result, int) {
				f := mustCC(t, core.CC2, ring3, CCOptions{Init: InitCCFull})
				return func(opts Options, ck *memCheckpointer, rng *rand.Rand) (*Result, int) {
					if ck == nil {
						return Explore(f, opts), 0
					}
					return resumeUntilDone(t, f, opts, ck, rng)
				}
			},
			opts: Options{Mode: sim.SelectCentral, CheckDeadlock: true, CheckClosure: true, CheckpointEvery: 4096},
		},
		{
			name: "cc2/ring:3/legit/central/leave-early (violation traces)",
			factory: func(t *testing.T) func(Options, *memCheckpointer, *rand.Rand) (*Result, int) {
				f := mustCC(t, core.CC2, ring3, CCOptions{Init: InitLegit, Mutation: MutationLeaveEarly})
				return func(opts Options, ck *memCheckpointer, rng *rand.Rand) (*Result, int) {
					if ck == nil {
						return Explore(f, opts), 0
					}
					return resumeUntilDone(t, f, opts, ck, rng)
				}
			},
			opts: Options{Mode: sim.SelectCentral, CheckDeadlock: true, MaxViolations: 4, CheckpointEvery: 16},
		},
		{
			name: "token-ring/ring:5/central/truncated",
			factory: func(t *testing.T) func(Options, *memCheckpointer, *rand.Rand) (*Result, int) {
				f, err := Baseline(baseline.TokenRing, hypergraph.CommitteeRing(5), 1)
				if err != nil {
					t.Fatal(err)
				}
				return func(opts Options, ck *memCheckpointer, rng *rand.Rand) (*Result, int) {
					if ck == nil {
						return Explore(f, opts), 0
					}
					return resumeUntilDone(t, f, opts, ck, rng)
				}
			},
			opts: Options{Mode: sim.SelectCentral, CheckDeadlock: true, MaxStates: 20_000, CheckpointEvery: 977},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := tc.factory(t)
			base, _ := run(tc.opts, nil, nil)
			want := normJSON(t, base)
			rng := rand.New(rand.NewSource(7))
			for _, workers := range []int{1, 8} {
				for _, budget := range []int64{0, 1 << 14} {
					opts := tc.opts
					opts.Workers = workers
					opts.MemBudget = budget
					opts.SpillDir = t.TempDir()
					var stats RunStats
					opts.Stats = &stats
					ck := &memCheckpointer{}
					res, kills := run(opts, ck, rng)
					if got := normJSON(t, res); !bytes.Equal(got, want) {
						t.Fatalf("workers=%d budget=%d (%d interruptions): resumed report diverges:\n%s\nvs\n%s",
							workers, budget, kills, got, want)
					}
					if kills == 0 && tc.name == "cc2/ring:3/cc-full/central" {
						t.Fatalf("workers=%d budget=%d: torture run was never interrupted", workers, budget)
					}
				}
			}
		})
	}
}

// TestResumeFromEverySnapshot is the kill -9 model: a crash can land
// immediately after ANY persisted snapshot, with no graceful
// cancellation save to paper over it — so a cold resume from each
// periodic snapshot, exactly as written, must complete to the
// uninterrupted result. (This is the test that catches snapshots
// taken at inconsistent points, e.g. after a layer's last chunk with
// the next layer still un-promoted.)
func TestResumeFromEverySnapshot(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"cc2/cc-full/in-memory", Options{Mode: sim.SelectCentral, CheckDeadlock: true, CheckClosure: true, CheckpointEvery: 4096, Workers: 4}},
		{"token-ring/truncated/spill", Options{Mode: sim.SelectCentral, CheckDeadlock: true, MaxStates: 20_000, CheckpointEvery: 977, Workers: 2, MemBudget: 1 << 14}},
	}
	ring3 := hypergraph.CommitteeRing(3)
	ccFactory := mustCC(t, core.CC2, ring3, CCOptions{Init: InitCCFull})
	trFactory, err := Baseline(baseline.TokenRing, hypergraph.CommitteeRing(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(opts Options) *Result {
				if tc.name == "cc2/cc-full/in-memory" {
					r, err := ExploreCtx(context.Background(), ccFactory, opts)
					if err != nil {
						t.Fatal(err)
					}
					return r
				}
				r, err := ExploreCtx(context.Background(), trFactory, opts)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			opts := tc.opts
			opts.SpillDir = t.TempDir()
			want := normJSON(t, run(opts))

			// A full recorded run: every periodic snapshot it ever wrote.
			rec := &memCheckpointer{record: true}
			opts.Checkpoint = rec
			run(opts)
			if len(rec.history) < 3 {
				t.Fatalf("only %d snapshots recorded; cadence too coarse for this test", len(rec.history))
			}
			for i, snap := range rec.history {
				o := tc.opts
				o.SpillDir = t.TempDir()
				o.Checkpoint = &memCheckpointer{data: snap}
				var stats RunStats
				o.Stats = &stats
				res := run(o)
				if stats.ResumedStates == 0 {
					t.Fatalf("snapshot %d/%d did not resume", i+1, len(rec.history))
				}
				if got := normJSON(t, res); !bytes.Equal(got, want) {
					t.Fatalf("cold resume from snapshot %d/%d diverges:\n%s\nvs\n%s", i+1, len(rec.history), got, want)
				}
			}
		})
	}
}

// TestSpillMatchesInMemory: a memory budget small enough to force both
// the frontier and the arena out of core must not change a single
// byte of the report — and the spill paths must actually engage.
func TestSpillMatchesInMemory(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCCFull})
	opts := Options{Mode: sim.SelectCentral, CheckDeadlock: true, CheckClosure: true, Workers: 4}
	want := normJSON(t, Explore(factory, opts))

	var stats RunStats
	opts.MemBudget = 1 << 14
	opts.SpillDir = t.TempDir()
	opts.Stats = &stats
	got := normJSON(t, Explore(factory, opts))
	if !bytes.Equal(got, want) {
		t.Fatalf("out-of-core report diverges from in-memory:\n%s\nvs\n%s", got, want)
	}
	if stats.FrontierSpillSegments == 0 {
		t.Fatal("frontier never spilled under a 16 KiB budget")
	}
	if stats.ArenaSpilledBytes == 0 {
		t.Fatal("arena never spilled under a 16 KiB budget")
	}
}

// TestReshardDifferential: forcing the visited set through many
// shard-count doublings must not change the report.
func TestReshardDifferential(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCCFull})
	opts := Options{Mode: sim.SelectCentral, CheckDeadlock: true, Workers: 4}
	want := normJSON(t, Explore(factory, opts))

	old := reshardPerShard
	reshardPerShard = 64
	defer func() { reshardPerShard = old }()
	got := normJSON(t, Explore(factory, opts))
	if !bytes.Equal(got, want) {
		t.Fatalf("resharded report diverges:\n%s\nvs\n%s", got, want)
	}

	// And combined with an arena spill (re-sharding scans the spilled
	// arena sequentially).
	opts.MemBudget = 1 << 14
	opts.SpillDir = t.TempDir()
	got = normJSON(t, Explore(factory, opts))
	if !bytes.Equal(got, want) {
		t.Fatalf("resharded+spilled report diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestCheckpointOptionsMismatchIgnored: a snapshot taken under one
// options tuple must not be applied to a different one — the run
// starts fresh and still answers correctly.
func TestCheckpointOptionsMismatchIgnored(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCC})
	ck := &memCheckpointer{}

	// Capture a mid-run snapshot under MaxStates 2000.
	ctx, cancel := context.WithCancel(context.Background())
	ck.cancelAfter, ck.cancel = 1, cancel
	_, err := ExploreCtx(ctx, factory, Options{
		Mode: sim.SelectCentral, CheckDeadlock: true, MaxStates: 2000, Checkpoint: ck, CheckpointEvery: 256,
	})
	cancel()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want interruption, got %v", err)
	}
	snapshotted := ck.data

	// A different bound must ignore it.
	opts := Options{Mode: sim.SelectCentral, CheckDeadlock: true, MaxStates: 5000}
	want := normJSON(t, Explore(factory, opts))
	ck.cancelAfter, ck.cancel = 0, nil
	var stats RunStats
	opts.Checkpoint = ck
	opts.Stats = &stats
	res, err := ExploreCtx(context.Background(), factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumedStates != 0 {
		t.Fatalf("mismatched checkpoint was resumed (%d states)", stats.ResumedStates)
	}
	if got := normJSON(t, res); !bytes.Equal(got, want) {
		t.Fatalf("report after ignored checkpoint diverges:\n%s\nvs\n%s", got, want)
	}
	if len(snapshotted) == 0 {
		t.Fatal("no snapshot captured")
	}
}

// TestCheckpointCorruptionIgnored: truncated or bit-flipped snapshots
// (torn writes cannot happen through the atomic store, but belt and
// suspenders) read as "no checkpoint", never as wrong state.
func TestCheckpointCorruptionIgnored(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCC})
	opts := Options{Mode: sim.SelectCentral, CheckDeadlock: true, CheckpointEvery: 256}
	want := normJSON(t, Explore(factory, Options{Mode: sim.SelectCentral, CheckDeadlock: true}))

	ck := &memCheckpointer{}
	ctx, cancel := context.WithCancel(context.Background())
	ck.cancelAfter, ck.cancel = 1, cancel
	_, err := ExploreCtx(ctx, factory, withCheckpoint(opts, ck))
	cancel()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want interruption, got %v", err)
	}
	valid := append([]byte(nil), ck.data...)

	for name, mangle := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flipped": func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[len(b)/3] ^= 0x40
			return b
		},
		"empty": func([]byte) []byte { return []byte{} },
	} {
		t.Run(name, func(t *testing.T) {
			ck := &memCheckpointer{data: mangle(valid)}
			var stats RunStats
			o := withCheckpoint(opts, ck)
			o.Stats = &stats
			res, err := ExploreCtx(context.Background(), factory, o)
			if err != nil {
				t.Fatal(err)
			}
			if stats.ResumedStates != 0 {
				t.Fatalf("corrupted checkpoint resumed (%d states)", stats.ResumedStates)
			}
			if got := normJSON(t, res); !bytes.Equal(got, want) {
				t.Fatalf("report after corrupted checkpoint diverges:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

func withCheckpoint(opts Options, ck Checkpointer) Options {
	opts.Checkpoint = ck
	return opts
}
