package explore

import "fmt"

// Codec is a fixed-width binary state codec: Encode packs a
// configuration into exactly Words 64-bit words, Decode inverts it.
// Two configurations are identified iff their encodings are equal, so
// both directions must be exact over the model's full reachable space
// (per-field bit budgets come from the domain catalogues in
// core.Alg.Domains and the baseline topology; an out-of-domain value is
// a codec bug and panics). The explorer stores states only in this
// form — one append-only arena of Words-sized records — and decodes
// into reusable buffers; the PR 2 string codecs survive solely as the
// differential-test oracle (StringCodec) and for rendering traces.
type Codec[S any] struct {
	// Words is the fixed encoded size, in 64-bit words.
	Words int
	// Encode packs cfg into dst, which has length Words and is zeroed
	// by the caller contract (bitWriter overwrites every word).
	Encode func(dst []uint64, cfg []S)
	// Decode unpacks src (length Words) into cfg, reusing cfg's backing
	// storage where possible.
	Decode func(cfg []S, src []uint64)

	// Incremental encoding, available when every process's field block
	// fits in one 64-bit payload: ProcOff/ProcBits locate process p's
	// block and EncodeProc packs it. The explorer then encodes a
	// successor by patching only the selected processes' blocks into a
	// copy of the parent's encoding instead of re-encoding all n — the
	// codec-side twin of the incremental transition checks. nil
	// EncodeProc falls back to full Encode per successor.
	ProcOff    []int
	ProcBits   []int
	EncodeProc func(cfg []S, p int) uint64
}

// patchWords overwrites the width-bit field at bit offset off with
// payload (width in (0, 64]).
func patchWords(dst []uint64, off, width int, payload uint64) {
	mask := ^uint64(0)
	if width < 64 {
		mask = uint64(1)<<width - 1
	}
	word, sh := off>>6, off&63
	dst[word] = dst[word]&^(mask<<sh) | payload<<sh
	if sh+width > 64 {
		rem := 64 - sh
		dst[word+1] = dst[word+1]&^(mask>>rem) | payload>>rem
	}
}

// extractWords reads the width-bit field at bit offset off — the exact
// inverse of patchWords, used by the fuzz battery to cross-check
// EncodeProc payloads against full encodings.
func extractWords(src []uint64, off, width int) uint64 {
	word, sh := off>>6, off&63
	v := src[word] >> sh
	if sh+width > 64 {
		v |= src[word+1] << (64 - sh)
	}
	if width < 64 {
		v &= uint64(1)<<width - 1
	}
	return v
}

// StringCodec is the PR 2 byte-per-field state codec, kept as the
// differential oracle (Reference) and performance baseline; the binary
// Codec is the engine's.
type StringCodec[S any] struct {
	Encode func(dst []byte, cfg []S) []byte
	Decode func(key string) []S
}

// bitWriter packs little-endian bit fields into a fixed []uint64
// through a register accumulator: each output word is stored exactly
// once (encode is the hottest loop of the explorer — once per
// enumerated transition). Values must already be domain-validated
// (fieldVal and the index mappers guarantee they fit their width).
type bitWriter struct {
	dst  []uint64
	acc  uint64
	bits int // bits currently in acc
	word int
}

func newBitWriter(dst []uint64) bitWriter {
	return bitWriter{dst: dst}
}

// put appends the low `width` bits of v. width 0 stores nothing
// (singleton domains).
func (w *bitWriter) put(v uint64, width int) {
	w.acc |= v << w.bits
	if w.bits+width >= 64 {
		w.dst[w.word] = w.acc
		w.word++
		if shift := 64 - w.bits; shift < 64 {
			w.acc = v >> shift
		} else {
			w.acc = 0
		}
		w.bits += width - 64
	} else {
		w.bits += width
	}
}

// flush stores the final partial word.
func (w *bitWriter) flush() {
	if w.word < len(w.dst) {
		w.dst[w.word] = w.acc
	}
}

// bitReader is the matching reader.
type bitReader struct {
	src []uint64
	bit int
}

func (r *bitReader) get(width int) uint64 {
	if width == 0 {
		return 0
	}
	word, off := r.bit>>6, r.bit&63
	v := r.src[word] >> off
	if off+width > 64 {
		v |= r.src[word+1] << (64 - off)
	}
	r.bit += width
	if width < 64 {
		v &= (uint64(1) << width) - 1
	}
	return v
}

// fieldVal maps a domain value to its codec index, panicking (codec
// bug) when the value is outside the domain.
func fieldVal(v, lo, card int, what string, p int) uint64 {
	u := v - lo
	if u < 0 || u >= card {
		panic(fmt.Sprintf("explore: %s of process %d out of domain: %d not in [%d,%d)", what, p, v, lo, lo+card))
	}
	return uint64(u)
}

// localPos returns the position of v in the sorted list xs, or -1.
func localPos(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
