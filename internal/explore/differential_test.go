package explore

import (
	"encoding/json"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// The differential battery: the binary-codec sharded engine (Explore)
// must reproduce the preserved PR 2 string-codec serial engine
// (Reference) exactly — reachable-state counts, transition counts,
// depths, deadlock counts, verdicts, and counterexample traces — on
// every algorithm × topology × daemon-branching cell. This is the
// proof that the codec rewrite, the concurrent dedup and the
// incremental transition checks changed the performance of the checker
// and nothing else.
//
// CI runs the ring:3 shard of this battery under -race
// (TestDifferentialBattery/.*ring:3.* — see .github/workflows/ci.yml).

// assertSameResult compares everything the two engines must agree on.
// Trace keys are engine-internal (the oracle leaves them nil) and
// excluded; rendered configurations and selections are compared.
func assertSameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Inits != b.Inits || a.States != b.States || a.Transitions != b.Transitions ||
		a.Depth != b.Depth || a.MaxEnabled != b.MaxEnabled || a.Deadlocks != b.Deadlocks ||
		a.Truncated != b.Truncated || a.MaxIncorrectDepth != b.MaxIncorrectDepth {
		t.Fatalf("engines diverged:\n  new: %s (maxEnabled %d, incorrect %d)\n  old: %s (maxEnabled %d, incorrect %d)",
			a.Summary(), a.MaxEnabled, a.MaxIncorrectDepth, b.Summary(), b.MaxEnabled, b.MaxIncorrectDepth)
	}
	if a.Verdict() != b.Verdict() {
		t.Fatalf("verdicts diverged: %s vs %s", a.Verdict(), b.Verdict())
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("violation counts diverged: %d vs %d", len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		va, vb := a.Violations[i], b.Violations[i]
		if va.Kind != vb.Kind || va.Msg != vb.Msg || va.Depth != vb.Depth || len(va.Trace) != len(vb.Trace) {
			t.Fatalf("violation %d diverged:\n  new: %s (%d steps)\n  old: %s (%d steps)",
				i, va, len(va.Trace), vb, len(vb.Trace))
		}
		for j := range va.Trace {
			sa, sb := va.Trace[j], vb.Trace[j]
			if sa.Config != sb.Config || !sameSel(sa.Sel, sb.Sel) {
				t.Fatalf("violation %d trace step %d diverged:\n  new: %v %s\n  old: %v %s",
					i, j, sa.Sel, sa.Config, sb.Sel, sb.Config)
			}
		}
	}
}

func sameSel(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertThreeWay is the widened battery cell: the batch pipeline, the
// scalar engine (DisableBatch) and the frozen PR 2 oracle must agree.
// The oracle comparison is field-by-field (its trace keys are nil);
// batch vs scalar vs every worker count is full marshalled-report
// byte-equality — counterexample traces, truncation flags and all.
// Returns the batch result for cell-specific pinned assertions.
func assertThreeWay[S sim.Cloneable[S]](t *testing.T, factory func() *Model[S], opts Options) *Result {
	t.Helper()
	oracle := Reference(factory, opts)
	var batch *Result
	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		for _, scalar := range []bool{false, true} {
			o := opts
			o.Workers = workers
			o.DisableBatch = scalar
			res := Explore(factory, o)
			if workers == 1 && !scalar {
				batch = res
				assertSameResult(t, res, oracle)
			}
			data, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = data
			} else if string(data) != string(ref) {
				t.Fatalf("report (workers=%d scalar=%v) differs from batch workers=1:\n%s\nvs\n%s",
					workers, scalar, data, ref)
			}
		}
	}
	return batch
}

func TestDifferentialBattery(t *testing.T) {
	variants := map[string]core.Variant{"cc1": core.CC1, "cc2": core.CC2, "cc3": core.CC3}
	topos := map[string]func() *hypergraph.H{
		"ring:3":    func() *hypergraph.H { return hypergraph.CommitteeRing(3) },
		"star:4":    func() *hypergraph.H { return hypergraph.Star(4) },
		"triples:3": func() *hypergraph.H { return hypergraph.ChainOfTriples(3) },
	}
	modes := map[string]sim.SelectionMode{
		"central":     sim.SelectCentral,
		"synchronous": sim.SelectSynchronous,
		"all-subsets": sim.SelectAllSubsets,
	}

	// CC cells: every variant × topology × mode. ring:3 runs the full
	// cc-full fault family; the larger topologies use the cc family
	// (as PR 2's MC experiment does) and a state budget. triples:3 is
	// tractable in the synchronous mode only — the other modes are run
	// bounded, which is itself a differential test of the truncation
	// path.
	for algName, variant := range variants {
		for topoName, mkH := range topos {
			for modeName, mode := range modes {
				init := InitCCFull
				maxStates := 0
				heavy := false
				switch topoName {
				case "star:4":
					init = InitCC
				case "triples:3":
					init = InitCC
					heavy = true
					if modeName != "synchronous" {
						maxStates = 40_000 // bounded cells: differential truncation
						heavy = false
					}
				}
				if algName != "cc2" && (topoName != "ring:3" || modeName == "all-subsets") {
					// Keep the battery's runtime bounded: the companion
					// variants get the full cross on ring:3 (central,
					// synchronous) and bounded probes elsewhere.
					if topoName == "ring:3" {
						heavy = true
					} else {
						maxStates = 25_000
						heavy = false
					}
				}
				t.Run(algName+"/"+topoName+"/"+modeName, func(t *testing.T) {
					if heavy && testing.Short() {
						t.Skip("heavy cell: skipped in -short")
					}
					factory := mustCC(t, variant, mkH(), CCOptions{Init: init})
					opts := Options{
						Mode: mode, MaxStates: maxStates,
						CheckDeadlock: true, CheckClosure: true,
					}
					if mode == sim.SelectSynchronous {
						opts.CheckConvergence = true
					}
					assertThreeWay(t, factory, opts)
				})
			}
		}
	}

	// Baseline cells: legit init only. The dining reduction's pinned
	// central-schedule deadlock on ring:3 must be found by both engines
	// with the same trace.
	for _, kind := range []baseline.Kind{baseline.Dining, baseline.TokenRing} {
		for topoName, mkH := range topos {
			for modeName, mode := range modes {
				t.Run(kind.String()+"/"+topoName+"/"+modeName, func(t *testing.T) {
					if testing.Short() && (topoName == "triples:3" || modeName == "all-subsets") {
						t.Skip("heavy cell: skipped in -short")
					}
					factory, err := Baseline(kind, mkH(), 1)
					if err != nil {
						t.Fatal(err)
					}
					opts := Options{
						Mode: mode, MaxStates: 60_000, MaxViolations: 2, CheckDeadlock: true,
					}
					a := assertThreeWay(t, factory, opts)
					if kind == baseline.Dining && topoName == "ring:3" && modeName == "central" && a.Deadlocks == 0 {
						t.Fatal("pinned dining deadlock on ring:3 disappeared from both engines")
					}
				})
			}
		}
	}
}

// TestDifferentialMutations: seeded guard mutations must yield the
// same violations with the same counterexample traces from both
// engines (the counterexample machinery itself is differentially
// tested, not just the clean path).
func TestDifferentialMutations(t *testing.T) {
	for _, tc := range []struct {
		mutation string
		init     InitMode
		mode     sim.SelectionMode
		converge bool
	}{
		{MutationLeaveEarly, InitLegit, sim.SelectCentral, false},
		{MutationSkipStab, InitCCFull, sim.SelectSynchronous, true},
	} {
		factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: tc.init, Mutation: tc.mutation})
		opts := Options{
			Mode: tc.mode, CheckDeadlock: true, CheckConvergence: tc.converge, MaxViolations: 3,
		}
		assertThreeWay(t, factory, opts)
	}
}

// TestDifferentialTruncation: the MaxStates bound must cut both
// engines at the same states with the same reports.
func TestDifferentialTruncation(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCCFull})
	for _, maxStates := range []int{500, 46656, 50_000} {
		opts := Options{Mode: sim.SelectCentral, MaxStates: maxStates, CheckDeadlock: true}
		a := assertThreeWay(t, factory, opts)
		if a.States > maxStates {
			t.Fatalf("MaxStates=%d exceeded: %d states", maxStates, a.States)
		}
	}
}

// TestParallelReportsByteIdentical is the -j property: marshalled
// reports at one, two and eight workers are byte-identical — from both
// the batch pipeline and the scalar engine — including counterexample
// traces from a mutated run.
func TestParallelReportsByteIdentical(t *testing.T) {
	run := func(workers int, scalar bool, mutation string, init InitMode) []byte {
		factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: init, Mutation: mutation})
		res := Explore(factory, Options{
			Mode: sim.SelectAllSubsets, CheckDeadlock: true, CheckClosure: true,
			MaxViolations: 4, Workers: workers, DisableBatch: scalar,
		})
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for _, tc := range []struct {
		name     string
		mutation string
		init     InitMode
	}{
		{"clean", "", InitCC},
		{"mutated", MutationLeaveEarly, InitLegit},
	} {
		ref := run(1, false, tc.mutation, tc.init)
		for _, workers := range []int{1, 2, 8} {
			for _, scalar := range []bool{false, true} {
				if workers == 1 && !scalar {
					continue
				}
				if got := run(workers, scalar, tc.mutation, tc.init); string(got) != string(ref) {
					t.Fatalf("%s: report at -j %d scalar=%v differs from batch -j 1:\n%s\nvs\n%s",
						tc.name, workers, scalar, got, ref)
				}
			}
		}
	}
}
