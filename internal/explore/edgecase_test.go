package explore

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// Edge cases of the reporting contract: an empty frontier, bound hits,
// and the verdict wording. A truncated run must always say "bounded"
// and never "verified" — a state bound is evidence, not proof.

func TestVerdictTable(t *testing.T) {
	h := hypergraph.CommitteeRing(3)
	for _, tc := range []struct {
		name      string
		opts      Options
		ccOpts    CCOptions
		verdict   string
		truncated bool
	}{
		{
			name:    "clean full run is verified",
			opts:    Options{Mode: sim.SelectCentral, CheckDeadlock: true},
			ccOpts:  CCOptions{Init: InitCC},
			verdict: "verified",
		},
		{
			name:      "max-states hit is bounded",
			opts:      Options{Mode: sim.SelectCentral, MaxStates: 1000},
			ccOpts:    CCOptions{Init: InitCCFull},
			verdict:   "bounded",
			truncated: true,
		},
		{
			name:      "max-depth hit is bounded",
			opts:      Options{Mode: sim.SelectCentral, MaxDepth: 2},
			ccOpts:    CCOptions{Init: InitCC},
			verdict:   "bounded",
			truncated: true,
		},
		{
			name:      "max-branch hit is bounded",
			opts:      Options{Mode: sim.SelectAllSubsets, MaxBranch: 3},
			ccOpts:    CCOptions{Init: InitCC},
			verdict:   "bounded",
			truncated: true,
		},
		{
			name:      "violation cap is bounded and violated",
			opts:      Options{Mode: sim.SelectCentral, MaxViolations: 1, CheckDeadlock: true},
			ccOpts:    CCOptions{Init: InitLegit, Mutation: MutationLeaveEarly},
			verdict:   "violated",
			truncated: true,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			factory := mustCC(t, core.CC2, h, tc.ccOpts)
			res := Explore(factory, tc.opts)
			if res.Verdict() != tc.verdict {
				t.Fatalf("verdict %q, want %q: %s", res.Verdict(), tc.verdict, res.Summary())
			}
			if res.Truncated != tc.truncated {
				t.Fatalf("truncated %v, want %v: %s", res.Truncated, tc.truncated, res.Summary())
			}
			sum := res.Summary()
			if tc.truncated && strings.Contains(sum, "verified") {
				t.Fatalf("truncated run claims verification: %s", sum)
			}
			if !strings.Contains(sum, tc.verdict) {
				t.Fatalf("summary does not state the verdict: %s", sum)
			}
		})
	}
}

// TestEmptyFrontier: a model with no initial configurations must
// terminate immediately with zero states and a (vacuously) verified
// result, not panic or report bounds.
func TestEmptyFrontier(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitLegit})
	empty := func() *Model[core.State] {
		m := factory()
		m.Inits = func(yield func(cfg []core.State) bool) {}
		return m
	}
	res := Explore(empty, Options{Mode: sim.SelectCentral, CheckDeadlock: true})
	if res.Inits != 0 || res.States != 0 || res.Transitions != 0 || res.Depth != 0 {
		t.Fatalf("empty frontier explored something: %s", res.Summary())
	}
	if !res.Ok() || res.Truncated || res.Verdict() != "verified" {
		t.Fatalf("empty frontier verdict: %s", res.Summary())
	}
}

// TestDecodedStatesDriveSimAndDaemons: configurations decoded out of
// the arena must feed sim.EnabledOf, sim.Apply and every daemon's
// Select directly — no re-encoding, no engine state. This pins the
// contract that arena-decoded buffers are first-class configurations.
func TestDecodedStatesDriveSimAndDaemons(t *testing.T) {
	h := hypergraph.CommitteeRing(3)
	factory := mustCC(t, core.CC2, h, CCOptions{Init: InitCC})
	m := factory()

	// Build a small arena by hand from the init stream.
	vs := NewVisited(m.Codec.Words)
	enc := make([]uint64, m.Codec.Words)
	pos := uint64(0)
	m.Inits(func(cfg []core.State) bool {
		m.Codec.Encode(enc, cfg)
		vs.Probe(enc, hashWords(enc), pos, -1, nil)
		pos++
		return pos < 64
	})
	for _, f := range vs.Drain() {
		vs.Promote(f)
	}
	vs.Reset()

	daemons := []sim.Daemon{
		sim.Synchronous{}, &sim.Central{}, sim.CentralRandom{},
		sim.RandomSubset{P: 0.5}, &sim.WeaklyFair{MaxAge: 4},
	}
	rng := rand.New(rand.NewSource(9))
	cfg := make([]core.State, h.N())
	next := make([]core.State, h.N())
	selBuf := make([]int, 0, h.N())
	checked := 0
	for id := int32(0); id < int32(vs.States()); id++ {
		m.Codec.Decode(cfg, vs.Key(id))
		en := sim.EnabledOf(m.Prog, cfg, nil)
		if len(en) == 0 {
			continue
		}
		checked++
		for _, d := range daemons {
			sel := d.Select(selBuf[:0], en, 0, rng)
			if len(sel) == 0 {
				t.Fatalf("daemon %s selected nothing from %v", d.Name(), en)
			}
			sim.Apply(m.Prog, cfg, next, sel, rng)
			// The applied successor must be a valid, re-encodable state.
			m.Codec.Encode(enc, next)
		}
	}
	if checked == 0 {
		t.Fatal("no enabled configurations decoded")
	}
}
