// Package explore is a bounded exhaustive model checker for the
// guarded-action programs of this reproduction. Where internal/sim runs
// *one* computation (a single resolution of the daemon's choices) and
// internal/spec monitors it, explore enumerates the *entire* reachable
// configuration space from a set of initial configurations — branching
// over every daemon choice a selection mode allows — and checks the
// specification on every state and every transition:
//
//   - Exclusion (spec.ExclusionViolationsMeets) on every reachable
//     configuration, including the initial ones;
//   - Synchronization and Essential Discussion
//     (spec.EventViolationsMeets) on every transition;
//   - closure of the algorithm's Correct(p) predicate (paper Lemmas 3
//     and 8: once Correct(p) holds, it holds forever, under any daemon);
//   - convergence-step bounds (paper Corollaries 3 and 5: every process
//     is Correct within one round — one step under the synchronous
//     daemon);
//   - deadlock-freedom: no reachable configuration is terminal.
//
// A property verified here is a proof-by-enumeration over the bounded
// instance: every meeting convened anywhere in the reachable space
// satisfies the committee-coordination spec — the snap-stabilization
// contract of §2.5 — not merely every meeting observed on sampled
// schedules. Counterexamples come with a full trace from an initial
// configuration.
//
// The frontier expands breadth-first, fanning each depth layer across
// the internal/par worker pool; results are merged in deterministic
// layer order, so state counts and counterexamples are identical at any
// pool width.
package explore

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Additional violation kinds beyond the spec package's.
const (
	// KindDeadlock: a reachable configuration enables no process.
	KindDeadlock = "deadlock"
	// KindClosure: Correct(p) held in a configuration but not in a
	// successor (contradicting Lemmas 3/8).
	KindClosure = "correct-closure"
	// KindConvergence: a synchronous step led to a configuration that is
	// not AllCorrect (contradicting Corollaries 3/5: every process is
	// Correct within one round, and under the synchronous daemon one
	// step completes one round).
	KindConvergence = "convergence"
)

// Model is an algorithm instance prepared for exhaustive exploration.
// Guards, bodies and the predicates must be pure functions of the
// configuration: environment inputs must be frozen (the CC adapter uses
// an eager static environment), and nondeterministic bodies must be
// resolved deterministically (the CC adapter forces ChooseFirst), or the
// state-graph memoization is unsound.
type Model[S sim.Cloneable[S]] struct {
	Name string
	Prog *sim.Program[S]
	// Probe supplies the abstract spec predicates (same ones the runtime
	// monitors use).
	Probe spec.Probe[S]
	// Encode appends a canonical byte encoding of cfg to dst. Two
	// configurations are identified iff their encodings are equal.
	Encode func(dst []byte, cfg []S) []byte
	// Decode inverts Encode.
	Decode func(key string) []S
	// Inits streams the initial configurations; stop when yield returns
	// false.
	Inits func(yield func(cfg []S) bool)
	// Correct, if non-nil, is the algorithm's Correct(p) predicate,
	// enabling the closure and convergence checks.
	Correct func(cfg []S, p int) bool
	// Render pretty-prints a configuration for counterexample traces
	// (optional; a generic rendering is used when nil).
	Render func(cfg []S) string
}

// Options bound and parameterize an exploration.
type Options struct {
	// Mode selects the daemon-choice branching (sim.SelectCentral,
	// sim.SelectSynchronous, sim.SelectAllSubsets).
	Mode sim.SelectionMode
	// MaxStates caps the number of distinct configurations explored
	// (0 = unlimited). Hitting the cap sets Result.Truncated.
	MaxStates int
	// MaxDepth caps the BFS depth (0 = unlimited).
	MaxDepth int
	// MaxBranch caps the successors enumerated per configuration
	// (default 65536); relevant only for SelectAllSubsets.
	MaxBranch int
	// MaxViolations stops the exploration once this many violations are
	// collected (default 5).
	MaxViolations int
	// CheckDeadlock reports terminal configurations as violations.
	CheckDeadlock bool
	// CheckClosure verifies that Correct(p) is closed under every
	// transition (requires Model.Correct).
	CheckClosure bool
	// CheckConvergence verifies the one-round convergence bound
	// (Corollaries 3/5): every transition must lead to an AllCorrect
	// configuration (requires Model.Correct). This is checked per
	// transition — not per BFS depth, which would be unsound under
	// memoization when incorrect states are also seeded initial
	// configurations. Only meaningful with sim.SelectSynchronous, where
	// one step completes one round; unfair modes may defer corrections
	// arbitrarily long.
	CheckConvergence bool
	// Workers overrides the worker-pool width (0 = par.Workers).
	Workers int
}

// TraceStep is one configuration on a counterexample trace.
type TraceStep struct {
	// Sel is the daemon selection that produced this configuration
	// (nil for the initial one).
	Sel []int
	// Config is the rendered configuration.
	Config string
}

// Violation is one property violation, with a counterexample trace from
// an initial configuration.
type Violation struct {
	Kind  string
	Msg   string
	Depth int
	Trace []TraceStep
}

func (v Violation) String() string {
	return fmt.Sprintf("depth %d: %s: %s", v.Depth, v.Kind, v.Msg)
}

// Result is the outcome of one exploration.
type Result struct {
	Model string
	Mode  sim.SelectionMode

	Inits       int   // initial configurations seeded
	States      int   // distinct configurations reached
	Transitions int64 // transitions enumerated
	Depth       int   // deepest completed BFS layer
	MaxEnabled  int   // largest enabled set seen
	Truncated   bool  // a bound was hit (MaxStates/MaxDepth/MaxBranch, or MaxViolations stopped the run)

	Deadlocks int // terminal configurations (counted even when not checked)
	// MaxIncorrectDepth is the deepest configuration violating
	// AllCorrect (-1 if none, or Correct unavailable).
	MaxIncorrectDepth int

	Violations []Violation
}

// Ok reports whether the exploration found no violations.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// Summary renders a one-line result.
func (r *Result) Summary() string {
	trunc := ""
	if r.Truncated {
		trunc = " TRUNCATED"
	}
	return fmt.Sprintf("%s/%s: %d inits, %d states, %d transitions, depth %d, %d deadlocks, %d violations%s",
		r.Model, r.Mode, r.Inits, r.States, r.Transitions, r.Depth, r.Deadlocks, len(r.Violations), trunc)
}

// workerViol is a violation as detected inside a worker, before its
// trace is reconstructed.
type workerViol struct {
	kind, msg string
	sel       string // selection of the offending transition ("" = state property)
	nextKey   string // successor configuration ("" = state property)
}

// succ is one enumerated transition.
type succ struct {
	key string // encoded successor
	sel string // selection, one byte per process index
}

// expansion is the result of expanding one configuration.
type expansion struct {
	terminal  bool
	truncated bool
	incorrect bool
	enabled   int
	succs     []succ
	viols     []workerViol
}

// Explore runs the bounded exhaustive exploration. newModel must return
// a fresh Model per call: model instances hold algorithm scratch state
// and are confined to one worker each.
func Explore[S sim.Cloneable[S]](newModel func() *Model[S], opts Options) *Result {
	if opts.MaxBranch == 0 {
		opts.MaxBranch = 1 << 16
	}
	if opts.MaxViolations == 0 {
		opts.MaxViolations = 5
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = par.Workers
	}
	if workers < 1 {
		workers = 1
	}
	models := make([]*Model[S], workers)
	for i := range models {
		models[i] = newModel()
	}
	m0 := models[0]

	res := &Result{Model: m0.Name, Mode: opts.Mode, MaxIncorrectDepth: -1}

	visited := make(map[string]int32)
	var keys []string
	var parentOf []int32
	var selOf []string

	add := func(key string, parent int32, sel string) (int32, bool) {
		if id, ok := visited[key]; ok {
			return id, false
		}
		if opts.MaxStates > 0 && len(keys) >= opts.MaxStates {
			res.Truncated = true
			return -1, false
		}
		id := int32(len(keys))
		visited[key] = id
		keys = append(keys, key)
		parentOf = append(parentOf, parent)
		selOf = append(selOf, sel)
		return id, true
	}

	// Seed the initial layer.
	var layer []int32
	var encBuf []byte
	m0.Inits(func(cfg []S) bool {
		encBuf = m0.Encode(encBuf[:0], cfg)
		if id, fresh := add(string(encBuf), -1, ""); fresh {
			layer = append(layer, id)
			res.Inits++
		}
		return !res.Truncated
	})
	res.States = len(keys)

	// trace reconstructs the path from an initial configuration to state
	// id, then appends the offending transition if any.
	trace := func(id int32, v workerViol) []TraceStep {
		var path []int32
		for x := id; x >= 0; x = parentOf[x] {
			path = append(path, x)
		}
		out := make([]TraceStep, 0, len(path)+1)
		for i := len(path) - 1; i >= 0; i-- {
			out = append(out, TraceStep{Sel: decodeSel(selOf[path[i]]), Config: m0.render(m0.Decode(keys[path[i]]))})
		}
		if v.nextKey != "" {
			out = append(out, TraceStep{Sel: decodeSel(v.sel), Config: m0.render(m0.Decode(v.nextKey))})
		}
		return out
	}

	depth := 0
	for len(layer) > 0 && len(res.Violations) < opts.MaxViolations {
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			res.Truncated = true
			break
		}
		// Expand the layer: contiguous chunks, one worker (and one model
		// instance) per chunk; merge back in layer order for determinism.
		exps := make([]expansion, len(layer))
		par.Chunks(len(layer), workers, func(w, lo, hi int) {
			model := models[w]
			// One deterministic source per worker: bodies must not
			// actually depend on it (see Model doc).
			rng := rand.New(rand.NewSource(1))
			for i := lo; i < hi; i++ {
				exps[i] = expandOne(model, keys[layer[i]], depth, opts, rng)
			}
		})
		var next []int32
		for i, ex := range exps {
			prev := layer[i]
			if ex.terminal {
				res.Deadlocks++
			}
			if ex.truncated {
				res.Truncated = true
			}
			if ex.incorrect && depth > res.MaxIncorrectDepth {
				res.MaxIncorrectDepth = depth
			}
			if ex.enabled > res.MaxEnabled {
				res.MaxEnabled = ex.enabled
			}
			res.Transitions += int64(len(ex.succs))
			for _, s := range ex.succs {
				if id, fresh := add(s.key, prev, s.sel); fresh {
					next = append(next, id)
				}
			}
			for _, v := range ex.viols {
				if len(res.Violations) >= opts.MaxViolations {
					break
				}
				d := depth
				if v.nextKey != "" {
					d++
				}
				res.Violations = append(res.Violations, Violation{
					Kind: v.kind, Msg: v.msg, Depth: d, Trace: trace(prev, v),
				})
			}
		}
		res.States = len(keys)
		depth++
		res.Depth = depth
		layer = next
	}
	if len(res.Violations) >= opts.MaxViolations {
		res.Truncated = true
	}
	return res
}

// expandOne checks the state properties of one configuration and
// enumerates its successors with the transition properties.
func expandOne[S sim.Cloneable[S]](model *Model[S], key string, depth int, opts Options, rng *rand.Rand) expansion {
	cfg := model.Decode(key)
	var ex expansion

	// State properties: exclusion, deadlock, correctness depth. The
	// configuration's meets vector is computed once and shared with every
	// successor's event check.
	wasMeets := spec.MeetsVector(model.Probe, cfg, nil)
	for _, v := range spec.ExclusionViolationsMeets(model.Probe, wasMeets, depth, nil) {
		ex.viols = append(ex.viols, workerViol{kind: v.Kind, msg: v.Msg})
	}
	var correctPrev []bool
	if model.Correct != nil {
		correctPrev = make([]bool, model.Prog.NumProcs)
		allCorrect := true
		for p := range correctPrev {
			correctPrev[p] = model.Correct(cfg, p)
			allCorrect = allCorrect && correctPrev[p]
		}
		ex.incorrect = !allCorrect
	}

	var encBuf []byte
	var isMeets []bool
	enabled, branches := sim.Successors(model.Prog, cfg, opts.Mode, rng, opts.MaxBranch, func(sel []int, nxt []S) bool {
		encBuf = model.Encode(encBuf[:0], nxt)
		s := succ{key: string(encBuf), sel: encodeSel(sel)}
		ex.succs = append(ex.succs, s)
		isMeets = spec.MeetsVector(model.Probe, nxt, isMeets)
		for _, v := range spec.EventViolationsMeets(model.Probe, cfg, wasMeets, isMeets, depth+1, nil) {
			ex.viols = append(ex.viols, workerViol{kind: v.Kind, msg: v.Msg, sel: s.sel, nextKey: s.key})
		}
		if correctPrev != nil && (opts.CheckClosure || opts.CheckConvergence) {
			for p := range correctPrev {
				correctNow := model.Correct(nxt, p)
				if opts.CheckClosure && correctPrev[p] && !correctNow {
					ex.viols = append(ex.viols, workerViol{
						kind: KindClosure,
						msg:  fmt.Sprintf("process %d was Correct but is not after selection %v", p, sel),
						sel:  s.sel, nextKey: s.key,
					})
				}
				if opts.CheckConvergence && !correctNow {
					// One synchronous step = one completed round: the
					// stabilization actions have the highest priority, so
					// every process must be Correct in the successor.
					ex.viols = append(ex.viols, workerViol{
						kind: KindConvergence,
						msg:  fmt.Sprintf("process %d is still incorrect after a full round (selection %v)", p, sel),
						sel:  s.sel, nextKey: s.key,
					})
				}
			}
		}
		return true
	})
	ex.enabled = enabled
	ex.terminal = enabled == 0
	if ex.terminal && opts.CheckDeadlock {
		ex.viols = append(ex.viols, workerViol{kind: KindDeadlock, msg: "no process is enabled"})
	}
	if opts.Mode == sim.SelectAllSubsets && enabled > 0 {
		// 2^enabled−1 overflows past 62 enabled processes; any such state
		// is necessarily truncated under a finite branch cap.
		if enabled > 62 {
			ex.truncated = true
		} else if want := (int64(1) << enabled) - 1; int64(branches) < want {
			ex.truncated = true
		}
	}
	return ex
}

func (m *Model[S]) render(cfg []S) string {
	if m.Render != nil {
		return m.Render(cfg)
	}
	parts := make([]string, len(cfg))
	for p := range cfg {
		parts[p] = fmt.Sprintf("%v", cfg[p])
	}
	return strings.Join(parts, " | ")
}

// encodeSel packs a selection as one byte per process index.
func encodeSel(sel []int) string {
	b := make([]byte, len(sel))
	for i, p := range sel {
		if p > 255 {
			panic("explore: process index out of byte range")
		}
		b[i] = byte(p)
	}
	return string(b)
}

func decodeSel(s string) []int {
	if s == "" {
		return nil
	}
	out := make([]int, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = int(s[i])
	}
	return out
}

// RenderTrace pretty-prints a counterexample trace.
func RenderTrace(v Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", v.String())
	for i, st := range v.Trace {
		switch {
		case i == 0:
			fmt.Fprintf(&b, "  init:       %s\n", st.Config)
		default:
			fmt.Fprintf(&b, "  exec %-6v %s\n", st.Sel, st.Config)
		}
	}
	return b.String()
}
