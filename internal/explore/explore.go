// Package explore is a bounded exhaustive model checker for the
// guarded-action programs of this reproduction. Where internal/sim runs
// *one* computation (a single resolution of the daemon's choices) and
// internal/spec monitors it, explore enumerates the *entire* reachable
// configuration space from a set of initial configurations — branching
// over every daemon choice a selection mode allows — and checks the
// specification on every state and every transition:
//
//   - Exclusion (spec.ExclusionViolationsMeets) on every reachable
//     configuration, including the initial ones;
//   - Synchronization and Essential Discussion
//     (spec.EventViolationsMeets) on every transition;
//   - closure of the algorithm's Correct(p) predicate (paper Lemmas 3
//     and 8: once Correct(p) holds, it holds forever, under any daemon);
//   - convergence-step bounds (paper Corollaries 3 and 5: every process
//     is Correct within one round — one step under the synchronous
//     daemon);
//   - deadlock-freedom: no reachable configuration is terminal.
//
// A property verified here is a proof-by-enumeration over the bounded
// instance: every meeting convened anywhere in the reachable space
// satisfies the committee-coordination spec — the snap-stabilization
// contract of §2.5 — not merely every meeting observed on sampled
// schedules. Counterexamples come with a full trace from an initial
// configuration, and Replay re-executes every emitted trace through
// sim.Apply as a vacuity guard.
//
// The hot core is built for scale (SPIN-style explicit-state levers):
// states live as fixed-width bit-packed encodings (Codec) in one
// append-only arena; deduplication runs through a lock-striped sharded
// hash set (Visited) that workers probe concurrently while expanding a
// BFS layer — no serial dedup loop — and a deterministic min-merge on
// discovery positions keeps every count, id, and counterexample
// byte-identical at any worker count. Models whose dynamics are
// invariant under a declared automorphism group (Syms) can additionally
// be explored modulo symmetry (Options.Symmetry): every state is
// canonicalized to the lexicographically least encoding in its orbit,
// shrinking the space by up to the group order with the same verdict.
// The PR 2 string-codec serial engine survives as Reference, the
// differential-test oracle.
package explore

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"slices"
	"strings"
	"sync"

	"repro/internal/chaos"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Additional violation kinds beyond the spec package's.
const (
	// KindDeadlock: a reachable configuration enables no process.
	KindDeadlock = "deadlock"
	// KindClosure: Correct(p) held in a configuration but not in a
	// successor (contradicting Lemmas 3/8).
	KindClosure = "correct-closure"
	// KindConvergence: a synchronous step led to a configuration that is
	// not AllCorrect (contradicting Corollaries 3/5: every process is
	// Correct within one round, and under the synchronous daemon one
	// step completes one round).
	KindConvergence = "convergence"
)

// Model is an algorithm instance prepared for exhaustive exploration.
// Guards, bodies and the predicates must be pure functions of the
// configuration: environment inputs must be frozen (the CC adapter uses
// an eager static environment), and nondeterministic bodies must be
// resolved deterministically (the CC adapter forces ChooseFirst), or the
// state-graph memoization is unsound.
type Model[S sim.Cloneable[S]] struct {
	Name string
	Prog *sim.Program[S]
	// Probe supplies the abstract spec predicates (same ones the runtime
	// monitors use).
	Probe spec.Probe[S]
	// Codec is the binary state codec the engine stores and dedups
	// through. Two configurations are identified iff their encodings
	// are equal.
	Codec Codec[S]
	// Ref is the PR 2 string codec, used only by Reference (the
	// differential oracle) and the bench baseline.
	Ref StringCodec[S]
	// Inits streams the initial configurations; stop when yield returns
	// false.
	Inits func(yield func(cfg []S) bool)
	// Correct, if non-nil, is the algorithm's Correct(p) predicate,
	// enabling the closure and convergence checks.
	Correct func(cfg []S, p int) bool
	// Render pretty-prints a configuration for counterexample traces
	// (optional; a generic rendering is used when nil).
	Render func(cfg []S) string
	// Syms is the model's verified automorphism group, identity
	// excluded: each element writes the image of src under one
	// automorphism into dst (len NumProcs). Declared only when the
	// permutation provably commutes with the transition relation — see
	// symmetry.go for what qualifies and why the CC ∘ TC rings do not.
	Syms []func(dst, src []S)
	// Deps lists, for process p, the processes whose Correct value may
	// depend on p's state (the closed dependency neighborhood, p
	// included). With it, the engine recomputes Correct on a transition
	// only for processes a selected process can influence and reuses
	// the parent's values elsewhere — the same locality contract the
	// incremental step engine uses. nil falls back to recomputing all.
	Deps func(p int) []int
	// Kernel, if non-nil, returns a fresh sim.BatchKernel for the
	// model's program, switching expansion to the batch/SoA pipeline
	// (see batch.go). Called once per worker — a kernel is
	// single-goroutine scratch. The kernel must reproduce the scalar
	// guard semantics of Prog exactly (the differential battery checks
	// this); the pipeline additionally requires Codec.EncodeProc and at
	// most 64 processes, and is skipped under symmetry reduction, so a
	// declared Kernel is only an enablement, never an obligation.
	Kernel func() sim.BatchKernel[S]
}

// Options bound and parameterize an exploration.
type Options struct {
	// Mode selects the daemon-choice branching (sim.SelectCentral,
	// sim.SelectSynchronous, sim.SelectAllSubsets).
	Mode sim.SelectionMode
	// MaxStates caps the number of distinct configurations explored
	// (0 = unlimited). Hitting the cap sets Result.Truncated.
	MaxStates int
	// MaxDepth caps the BFS depth (0 = unlimited).
	MaxDepth int
	// MaxBranch caps the successors enumerated per configuration
	// (default 65536); relevant only for SelectAllSubsets.
	MaxBranch int
	// MaxViolations stops the exploration once this many violations are
	// collected (default 5).
	MaxViolations int
	// CheckDeadlock reports terminal configurations as violations.
	CheckDeadlock bool
	// CheckClosure verifies that Correct(p) is closed under every
	// transition (requires Model.Correct).
	CheckClosure bool
	// CheckConvergence verifies the one-round convergence bound
	// (Corollaries 3/5): every transition must lead to an AllCorrect
	// configuration (requires Model.Correct). This is checked per
	// transition — not per BFS depth, which would be unsound under
	// memoization when incorrect states are also seeded initial
	// configurations. Only meaningful with sim.SelectSynchronous, where
	// one step completes one round; unfair modes may defer corrections
	// arbitrarily long.
	CheckConvergence bool
	// Symmetry explores modulo the model's declared automorphism group:
	// states are canonicalized to the least encoding in their orbit.
	// Exact (same verdict) precisely because Syms holds only verified
	// automorphisms; no effect on models that declare none.
	Symmetry bool
	// Workers overrides the worker-pool width (0 = par.Workers).
	Workers int
	// DisableBatch forces the scalar expansion path even when the model
	// declares a batch kernel. Result-irrelevant — the batch pipeline is
	// byte-identical by contract — so, like MemBudget, it is not part of
	// a job's content key or checkpoint identity; the differential
	// battery uses it to pit the two paths against each other.
	DisableBatch bool

	// MemBudget bounds the in-memory footprint of the open queue and
	// the visited arena (bytes; 0 = fully in-memory). Past the budget
	// the frontier spills encoded chunks to temp segment files and the
	// visited set spills its cold arena tail — same verdict, same
	// bytes, flat memory. Result-irrelevant: not part of a job's
	// content key or checkpoint identity.
	MemBudget int64
	// SpillDir hosts the spill scratch files ("" = os.TempDir()).
	SpillDir string
	// FS routes the spill-file I/O (frontier segments, arena cold
	// tail) through a chaos.FS (nil = the host filesystem). The chaos
	// battery injects faults here; checksums on both spill formats turn
	// silent corruption into classified errors.
	FS chaos.FS
	// Checkpoint, if non-nil, persists a resumable snapshot every
	// CheckpointEvery expanded states and on context cancellation, and
	// is consulted at startup: a matching snapshot resumes the run
	// instead of restarting it.
	Checkpoint Checkpointer
	// CheckpointEvery is the expanded-state cadence between periodic
	// snapshots (0 = snapshot only on cancellation).
	CheckpointEvery int
	// Stats, if non-nil, receives resume/spill bookkeeping that is
	// deliberately excluded from Result (see RunStats).
	Stats *RunStats
	// Progress, if non-nil, receives a counter snapshot at every
	// expansion-chunk boundary (exploreChunk expanded states) and is the
	// feed behind live job watching. Purely observational and
	// result-irrelevant like Stats: it runs on the driver goroutine
	// between chunks, so it must return quickly — publish into a
	// non-blocking queue, never do I/O inline.
	Progress func(Progress)
}

// Progress is the observational snapshot handed to Options.Progress:
// where the exploration is right now, not what it concluded. All
// counts are promoted-state accurate as of the last completed chunk.
type Progress struct {
	States      int   // distinct configurations promoted so far
	Expanded    int   // configurations expanded in the current layer
	Frontier    int   // open-queue entries remaining in the current layer
	Depth       int   // BFS layer currently expanding
	Transitions int64 // transitions enumerated so far
}

// TraceStep is one configuration on a counterexample trace.
type TraceStep struct {
	// Sel is the daemon selection that produced this configuration
	// (nil for the initial one).
	Sel []int
	// Config is the rendered configuration.
	Config string
	// Key is the configuration's binary encoding (canonical orbit
	// representative under Options.Symmetry), enabling Replay.
	Key []uint64
}

// Violation is one property violation, with a counterexample trace from
// an initial configuration.
type Violation struct {
	Kind  string
	Msg   string
	Depth int
	Trace []TraceStep
}

func (v Violation) String() string {
	return fmt.Sprintf("depth %d: %s: %s", v.Depth, v.Kind, v.Msg)
}

// Result is the outcome of one exploration.
type Result struct {
	Model string
	Mode  sim.SelectionMode

	Inits       int   // initial configurations seeded
	States      int   // distinct configurations reached (orbits under Symmetry)
	Transitions int64 // transitions enumerated
	Depth       int   // deepest completed BFS layer
	MaxEnabled  int   // largest enabled set seen
	Truncated   bool  // a bound was hit (MaxStates/MaxDepth/MaxBranch, or MaxViolations stopped the run)
	Symmetry    bool  // explored modulo the model's automorphism group

	Deadlocks int // terminal configurations (counted even when not checked)
	// MaxIncorrectDepth is the deepest configuration violating
	// AllCorrect (-1 if none, or Correct unavailable).
	MaxIncorrectDepth int

	// StateBytes is the retained footprint of the dedup structures
	// (arena + hash set), for the bytes-per-state trajectory.
	StateBytes int64

	Violations []Violation
}

// Ok reports whether the exploration found no violations.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// Verdict classifies the run: "verified" is a completed enumeration
// with no violations, "bounded" means a bound was hit — the explored
// portion is clean but nothing beyond it is claimed — and "violated"
// means counterexamples were found. A truncated run is never reported
// as verified.
func (r *Result) Verdict() string {
	switch {
	case !r.Ok():
		return "violated"
	case r.Truncated:
		return "bounded"
	default:
		return "verified"
	}
}

// Summary renders a one-line result.
func (r *Result) Summary() string {
	sym := ""
	if r.Symmetry {
		sym = " (mod symmetry)"
	}
	return fmt.Sprintf("%s/%s: %d inits, %d states%s, %d transitions, depth %d, %d deadlocks, %d violations — verdict: %s",
		r.Model, r.Mode, r.Inits, r.States, sym, r.Transitions, r.Depth, r.Deadlocks, len(r.Violations), r.Verdict())
}

// workerViol is a violation as detected inside a worker, before its
// trace is reconstructed.
type workerViol struct {
	kind, msg string
	sel       []int    // selection of the offending transition (nil = state property)
	key       []uint64 // successor encoding (nil = state property)
}

// layerAgg accumulates one worker's expansion results for one layer.
// Everything in it is either order-insensitive (sums, maxima, flags —
// merged across workers after the layer barrier) or tagged with the
// item index (violations, sorted back into deterministic item order),
// so the merged outcome is identical at any worker count and nothing
// per-item is allocated on the hot path.
type layerAgg struct {
	deadlocks   int
	transitions int64
	maxEnabled  int
	truncated   bool
	incorrect   bool
	viols       []itemViol
}

type itemViol struct {
	item int
	id   int32 // the expanded state's id (trace reconstruction)
	wv   workerViol
}

func (a *layerAgg) reset() {
	a.deadlocks, a.transitions, a.maxEnabled = 0, 0, 0
	a.truncated, a.incorrect = false, false
	a.viols = a.viols[:0]
}

// workerState is the per-worker scratch: one model instance plus every
// buffer the expansion hot path needs, so expanding a configuration
// allocates nothing.
type workerState[S sim.Cloneable[S]] struct {
	model *Model[S]
	opts  *Options
	rng   *rand.Rand

	cfg     []S      // decode buffer for the expanded configuration
	enc     []uint64 // encode scratch (canonical key after canonKey)
	baseEnc []uint64 // encoding of the configuration being expanded
	symCfg  []S      // symmetry-image scratch
	symEnc  []uint64
	succ    sim.SuccScratch[S]
	was, is []bool // meets vectors
	correct []bool
	selBuf  []byte

	// Incremental-check scratch: per-successor epoch marks over edges
	// (meets recomputation) and processes (Correct recomputation).
	epoch    uint64
	edgeMark []uint64
	procMark []uint64

	// Per-expansion cache of applied per-process block payloads: with
	// deterministic bodies, process p's applied block is identical in
	// every selection containing p, so SelectAllSubsets encodes each
	// enabled process once instead of once per subset.
	stateEpoch uint64
	payEpoch   []uint64
	payload    []uint64

	// Batch pipeline state (nil bkern = scalar path): the worker's
	// kernel and the post-state buffer Apply fills per enabled process.
	bkern batchEval[S]
	post  []S
	// changed collects, per selection, the committees whose meets status
	// differs from the parent's — the only edges the event check must
	// judge. conflict[e] is the bitmask of committees conflicting with e
	// (nil when the edge count exceeds a word): a state needs the full
	// exclusion scan only if some meeting edge's conflict mask intersects
	// the meets mask.
	changed  []int
	conflict []uint64

	// Mask-form topology for the per-branch fast path (nil when the edge
	// count exceeds a word): edgeMaskOf[p] is the committees incident to
	// p, memberMask[e] the members of e, depMask[p] the closed Correct
	// dependency neighborhood of p (Model.Deps).
	edgeMaskOf []uint64
	memberMask []uint64
	depMask    []uint64
	depList    [][]int

	// Per-expansion memo tables for the merged-view spec reads. Meets
	// reads only an edge's members and Correct only a process's Deps
	// neighborhood (the same locality contracts the incremental checks
	// rely on), so each result is a pure function of the selection
	// restricted to that neighborhood — a handful of bits, memoized per
	// expanded state across its (up to 2^k) selections. -1 = unknown.
	// pmLo/pcLo mark neighborhoods that are contiguous bit ranges (the
	// common case for ring and chain topologies): the memo index is then
	// a single shift-and-mask instead of a gather loop. -1 = use the
	// general list extraction (or no memo slot at all).
	pmOff   []int32
	pmCache []int8
	pmLo    []int8
	pmW     []uint64
	pcOff   []int32
	pcCache []int8
	pcLo    []int8
	pcW     []uint64

	// Per-expansion context for the pre-bound batchSel callback. The
	// callback is bound once at construction: a closure created inside
	// expandBatch would escape into sim.MaskSuccessors and allocate on
	// every expansion, breaking the steady-state loop's zero-allocation
	// guarantee (pinned by TestBatchSteadyStateZeroAlloc).
	selCB          func(uint64) bool
	curVS          *Visited
	curAgg         *layerAgg
	curID          int32
	curItem        int
	curBranch      int
	curAtCap       bool
	curNeutral     uint64
	curCorrectPrev []bool

	// cl, when non-nil, diverts successor handling to a cluster peer:
	// the at-cap decision and the parent identity become layer-global
	// values owned by the coordinator, and the probe/membership calls
	// route by state-hash shard (possibly to a remote peer's outbox)
	// instead of into the single local visited set. nil on every
	// single-node path, so the hot loop pays one predictable branch.
	cl *peerHooks
}

// peerHooks is the cluster seam threaded through a worker's expansion:
// everything a successor probe needs to know that differs between a
// single-node run and a shard-partitioned peer.
type peerHooks struct {
	// atCap mirrors the single-node "States() >= MaxStates" layer
	// decision, computed over the *cluster-wide* promoted count by the
	// coordinator and broadcast per layer.
	atCap bool
	// parent is the global id (gid) of the item being expanded; probes
	// record it in place of the shard-local id.
	parent int32
	// sink replaces vs.Probe: route the successor to its owning shard
	// (a local probe or a remote-frontier outbox record).
	sink func(key []uint64, hash uint64, pos uint64, parent int32, sel []byte)
	// capMiss replaces the at-cap !vs.Contains check; a remote-owned
	// key is shipped as a membership query and the owner folds the
	// answer into its own layer report, so this returns false for it.
	capMiss func(key []uint64, hash uint64) bool
}

func newWorkerState[S sim.Cloneable[S]](m *Model[S], opts *Options) *workerState[S] {
	n := m.Prog.NumProcs
	ws := &workerState[S]{
		model:    m,
		opts:     opts,
		rng:      rand.New(rand.NewSource(1)),
		cfg:      make([]S, n),
		enc:      make([]uint64, m.Codec.Words),
		baseEnc:  make([]uint64, m.Codec.Words),
		symCfg:   make([]S, n),
		symEnc:   make([]uint64, m.Codec.Words),
		edgeMark: make([]uint64, m.Probe.H.M()),
		procMark: make([]uint64, n),
		payEpoch: make([]uint64, n),
		payload:  make([]uint64, n),
	}
	// Batch-pipeline eligibility: a declared kernel, incremental
	// encoding (successor keys are assembled by patching), an enabled
	// set that fits a word, and no symmetry canonicalization (which must
	// encode whole orbit images per successor).
	if m.Kernel != nil && m.Codec.EncodeProc != nil && n <= 64 &&
		!(opts.Symmetry && len(m.Syms) > 0) && !opts.DisableBatch {
		k := m.Kernel()
		if be, ok := k.(batchEval[S]); ok {
			ws.bkern = be
		} else {
			ws.bkern = newGenericChecker(k, m)
		}
		ws.selCB = ws.batchSel
		ws.post = make([]S, n)
		// expandBatch reslices these without growing; size them now so
		// the steady-state loop allocates nothing.
		mEdges := m.Probe.H.M()
		ws.was = make([]bool, mEdges)
		ws.is = make([]bool, mEdges)
		ws.correct = make([]bool, n)
		ws.changed = make([]int, 0, mEdges)
		if mEdges <= 64 {
			ws.conflict = make([]uint64, mEdges)
			for e := 0; e < mEdges; e++ {
				for f := 0; f < mEdges; f++ {
					if f != e && m.Probe.H.Edge(e).Conflicts(m.Probe.H.Edge(f)) {
						ws.conflict[e] |= 1 << uint(f)
					}
				}
			}
			ws.memberMask = make([]uint64, mEdges)
			ws.edgeMaskOf = make([]uint64, n)
			for e := 0; e < mEdges; e++ {
				for _, q := range m.Probe.H.Edge(e) {
					ws.memberMask[e] |= 1 << uint(q)
				}
			}
			// Processes beyond the professor range (the baselines'
			// committee agents) keep a zero mask: Probe.Meets reads
			// member states only, so their moves touch no committee —
			// the same skip the scalar path applies.
			for p := 0; p < n && p < m.Probe.H.N(); p++ {
				for _, e := range m.Probe.H.EdgesOf(p) {
					ws.edgeMaskOf[p] |= 1 << uint(e)
				}
			}
			ws.pmOff = make([]int32, mEdges)
			ws.pmLo = make([]int8, mEdges)
			ws.pmW = make([]uint64, mEdges)
			pmTotal := 0
			for e := 0; e < mEdges; e++ {
				ws.pmLo[e] = -1
				if sz := len(m.Probe.H.Edge(e)); sz <= 6 {
					ws.pmOff[e] = int32(pmTotal)
					pmTotal += 1 << uint(sz)
				} else {
					ws.pmOff[e] = -1
				}
			}
			if pmTotal > 0 {
				ws.pmCache = make([]int8, pmTotal)
				for e := 0; e < mEdges; e++ {
					if mask := ws.memberMask[e]; ws.pmOff[e] >= 0 && mask != 0 {
						lo := bits.TrailingZeros64(mask)
						if mask>>uint(lo) == 1<<uint(bits.OnesCount64(mask))-1 {
							ws.pmLo[e] = int8(lo)
							ws.pmW[e] = mask >> uint(lo)
						}
					}
				}
			} else {
				ws.pmOff = nil
			}
		}
		if m.Deps != nil && n == m.Probe.H.N() {
			ws.depMask = make([]uint64, n)
			ws.depList = make([][]int, n)
			ws.pcOff = make([]int32, n)
			ws.pcLo = make([]int8, n)
			ws.pcW = make([]uint64, n)
			pcTotal := 0
			for p := 0; p < n; p++ {
				ds := m.Deps(p)
				ws.depList[p] = ds
				ws.pcLo[p] = -1
				for _, q := range ds {
					ws.depMask[p] |= 1 << uint(q)
				}
				if len(ds) <= 8 && pcTotal <= 1<<13 {
					ws.pcOff[p] = int32(pcTotal)
					pcTotal += 1 << uint(len(ds))
				} else {
					ws.pcOff[p] = -1
				}
			}
			if pcTotal > 0 {
				ws.pcCache = make([]int8, pcTotal)
				for p := 0; p < n; p++ {
					if mask := ws.depMask[p]; ws.pcOff[p] >= 0 && mask != 0 {
						lo := bits.TrailingZeros64(mask)
						if mask>>uint(lo) == 1<<uint(bits.OnesCount64(mask))-1 {
							ws.pcLo[p] = int8(lo)
							ws.pcW[p] = mask >> uint(lo)
						}
					}
				}
			} else {
				ws.pcOff = nil
			}
		}
	}
	return ws
}

// canonKey encodes cfg, canonicalized to the least encoding in its
// automorphism orbit when symmetry reduction is active. The returned
// slice is worker scratch, valid until the next call.
func (ws *workerState[S]) canonKey(cfg []S) []uint64 {
	m := ws.model
	m.Codec.Encode(ws.enc, cfg)
	if !ws.opts.Symmetry {
		return ws.enc
	}
	for _, sym := range m.Syms {
		sym(ws.symCfg, cfg)
		m.Codec.Encode(ws.symEnc, ws.symCfg)
		if wordsLess(ws.symEnc, ws.enc) {
			ws.enc, ws.symEnc = ws.symEnc, ws.enc
		}
	}
	return ws.enc
}

func wordsLess(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func copyWords(w []uint64) []uint64 { return append([]uint64(nil), w...) }

// expand checks the state properties of configuration id, enumerates
// its successors under opts.Mode, probes each into vs (phase-A side of
// the deterministic merge) and records the transition properties into
// the worker's layer aggregate.
func (ws *workerState[S]) expand(vs *Visited, agg *layerAgg, id int32, item, depth int) {
	if ws.bkern != nil {
		ws.expandBatch(vs, agg, id, item, depth)
		return
	}
	m := ws.model
	opts := ws.opts
	m.Codec.Decode(ws.cfg, vs.Key(id))
	cfg := ws.cfg
	viol := func(wv workerViol) { agg.viols = append(agg.viols, itemViol{item: item, id: id, wv: wv}) }

	// State properties: exclusion, deadlock, correctness depth. The
	// configuration's meets vector is computed once and shared with every
	// successor's event check.
	ws.was = spec.MeetsVector(m.Probe, cfg, ws.was)
	for _, v := range spec.ExclusionViolationsMeets(m.Probe, ws.was, depth, nil) {
		viol(workerViol{kind: v.Kind, msg: v.Msg})
	}
	var correctPrev []bool
	if m.Correct != nil {
		if cap(ws.correct) < m.Prog.NumProcs {
			ws.correct = make([]bool, m.Prog.NumProcs)
		}
		correctPrev = ws.correct[:m.Prog.NumProcs]
		allCorrect := true
		for p := range correctPrev {
			correctPrev[p] = m.Correct(cfg, p)
			allCorrect = allCorrect && correctPrev[p]
		}
		if !allCorrect {
			agg.incorrect = true
		}
	}

	// Successor keys are built by patching only the selected processes'
	// blocks into the parent's encoding when the codec supports it (and
	// symmetry canonicalization, which must encode whole orbit images,
	// is off).
	patch := m.Codec.EncodeProc != nil && !(opts.Symmetry && len(m.Syms) > 0)
	if patch {
		copy(ws.baseEnc, vs.Key(id))
		ws.stateEpoch++
	}
	// Once the state bound is exhausted (stable across the whole layer:
	// promotion is serial, so every worker sees the same count), fresh
	// successors are doomed — a read-only membership check replaces the
	// insertion probe, so bounded runs stop allocating pending entries
	// per dropped state while the truncation flag still fires exactly
	// when the PR 2 engine's add() would have refused a fresh state.
	// Checking States() rather than the concurrently-moving pending
	// count keeps the decision, and hence the reports, deterministic.
	atCap := opts.MaxStates > 0 && vs.States() >= opts.MaxStates
	if ws.cl != nil {
		atCap = ws.cl.atCap
	}
	branch := 0
	enabled, branches := sim.SuccessorsBuf(m.Prog, cfg, opts.Mode, ws.rng, opts.MaxBranch, &ws.succ, func(sel []int, nxt []S) bool {
		var key []uint64
		if patch {
			key = ws.enc
			copy(key, ws.baseEnc)
			for _, p := range sel {
				if ws.payEpoch[p] != ws.stateEpoch {
					ws.payEpoch[p] = ws.stateEpoch
					ws.payload[p] = m.Codec.EncodeProc(nxt, p)
				}
				patchWords(key, m.Codec.ProcOff[p], m.Codec.ProcBits[p], ws.payload[p])
			}
		} else {
			key = ws.canonKey(nxt)
		}
		switch {
		case atCap && ws.cl != nil:
			if ws.cl.capMiss(key, hashWords(key)) {
				agg.truncated = true
			}
		case atCap:
			if !vs.Contains(key, hashWords(key)) {
				agg.truncated = true
			}
		case ws.cl != nil:
			pos := uint64(item)<<32 | uint64(branch)
			ws.selBuf = appendSel(ws.selBuf[:0], sel)
			ws.cl.sink(key, hashWords(key), pos, ws.cl.parent, ws.selBuf)
		default:
			pos := uint64(item)<<32 | uint64(branch)
			ws.selBuf = appendSel(ws.selBuf[:0], sel)
			vs.Probe(key, hashWords(key), pos, id, ws.selBuf)
		}
		branch++

		// Incremental transition checks: a successor differs from cfg
		// only at the selected processes, so only committees incident to
		// them can change their meets status (Probe.Meets reads member
		// states only, so processes beyond the professor range — the
		// baselines' committee agents — touch no committee), and only
		// processes in the closed dependency neighborhood can change
		// Correct.
		ws.epoch++
		h := m.Probe.H
		mEdges := h.M()
		if cap(ws.is) < mEdges {
			ws.is = make([]bool, mEdges)
		}
		ws.is = ws.is[:mEdges]
		copy(ws.is, ws.was)
		for _, p := range sel {
			if p >= h.N() {
				continue
			}
			for _, e := range h.EdgesOf(p) {
				if ws.edgeMark[e] != ws.epoch {
					ws.edgeMark[e] = ws.epoch
					ws.is[e] = m.Probe.Meets(nxt, e)
				}
			}
		}
		for _, v := range spec.EventViolationsMeets(m.Probe, cfg, ws.was, ws.is, depth+1, nil) {
			viol(workerViol{kind: v.Kind, msg: v.Msg, sel: copySel(sel), key: copyWords(key)})
		}
		if correctPrev != nil && (opts.CheckClosure || opts.CheckConvergence) {
			if m.Deps != nil {
				for _, p := range sel {
					for _, q := range m.Deps(p) {
						ws.procMark[q] = ws.epoch
					}
				}
			}
			for p := range correctPrev {
				correctNow := correctPrev[p]
				if m.Deps == nil || ws.procMark[p] == ws.epoch {
					correctNow = m.Correct(nxt, p)
				}
				if opts.CheckClosure && correctPrev[p] && !correctNow {
					viol(workerViol{
						kind: KindClosure,
						msg:  fmt.Sprintf("process %d was Correct but is not after selection %v", p, sel),
						sel:  copySel(sel), key: copyWords(key),
					})
				}
				if opts.CheckConvergence && !correctNow {
					// One synchronous step = one completed round: the
					// stabilization actions have the highest priority, so
					// every process must be Correct in the successor.
					viol(workerViol{
						kind: KindConvergence,
						msg:  fmt.Sprintf("process %d is still incorrect after a full round (selection %v)", p, sel),
						sel:  copySel(sel), key: copyWords(key),
					})
				}
			}
		}
		return true
	})
	agg.transitions += int64(branches)
	if enabled > agg.maxEnabled {
		agg.maxEnabled = enabled
	}
	if enabled == 0 {
		agg.deadlocks++
		if opts.CheckDeadlock {
			viol(workerViol{kind: KindDeadlock, msg: "no process is enabled"})
		}
	}
	if opts.Mode == sim.SelectAllSubsets && enabled > 0 {
		// 2^enabled−1 overflows past 62 enabled processes; any such state
		// is necessarily truncated under a finite branch cap.
		if enabled > 62 {
			agg.truncated = true
		} else if want := (int64(1) << enabled) - 1; int64(branches) < want {
			agg.truncated = true
		}
	}
}

// Explore runs the bounded exhaustive exploration. newModel must return
// a fresh Model per call: model instances hold algorithm scratch state
// and are confined to one worker each. It is ExploreCtx without
// cancellation; an I/O failure in the optional out-of-core machinery
// (spill or checkpoint) panics here — use ExploreCtx to handle it.
func Explore[S sim.Cloneable[S]](newModel func() *Model[S], opts Options) *Result {
	res, err := ExploreCtx(context.Background(), newModel, opts)
	if err != nil {
		panic(fmt.Sprintf("explore: %v", err))
	}
	return res
}

// exploreChunk is the expansion batch size: the open queue is drained
// and fanned across the workers this many states at a time. Chunk
// boundaries — workers parked, set quiescent — are where cancellation
// is honored and checkpoints are taken. The chunking itself is
// invisible in the result: successor discovery positions are layer
// positions, not chunk positions.
const exploreChunk = 4096

// ioPanic carries a classified I/O failure out of code that has no
// error return (hot-path arena reads) to ExploreCtx's recover sites;
// any other panic value passes through untouched.
type ioPanic struct{ err error }

// ExploreCtx is Explore with cancellation, an out-of-core memory
// budget and checkpoint/restore (Options.MemBudget, Options.Checkpoint).
// On cancellation it returns the partial result and an error wrapping
// ErrInterrupted — after saving a snapshot when a Checkpointer is
// configured, so an identical later call resumes the run and finishes
// with the exact bytes an uninterrupted run would have produced
// (StateBytes excepted: it measures this process's footprint).
//
// I/O failures in the out-of-core machinery surface as errors
// classifiable with chaos.Classify — never a panic, never a silently
// wrong result: transient errors were already retried at the file
// layer, corrupt spill data was detected by checksum, and the caller
// (campaign cell retry) decides whether a fresh attempt is worth it.
// Periodic checkpoint-save failures degrade gracefully: the run
// continues uncheckpointed and the failure is counted in
// RunStats.CheckpointErrors.
func ExploreCtx[S sim.Cloneable[S]](ctx context.Context, newModel func() *Model[S], opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			ip, ok := r.(ioPanic)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("explore: %w", ip.err)
		}
	}()
	if opts.MaxBranch == 0 {
		opts.MaxBranch = 1 << 16
	}
	if opts.MaxViolations == 0 {
		opts.MaxViolations = 5
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = par.Workers
	}
	if workers < 1 {
		workers = 1
	}
	wss := make([]*workerState[S], workers)
	for i := range wss {
		wss[i] = newWorkerState(newModel(), &opts)
	}
	m0 := wss[0].model

	res = &Result{
		Model: m0.Name, Mode: opts.Mode, MaxIncorrectDepth: -1,
		Symmetry: opts.Symmetry && len(m0.Syms) > 0,
	}

	// The memory budget splits between the visited arena (the bulk of
	// the footprint) and the open queue of promoted ids.
	var arenaBudget, frontBudget int64
	if opts.MemBudget > 0 {
		arenaBudget = opts.MemBudget / 2
		frontBudget = opts.MemBudget / 8
	}
	newVisited := func() *Visited {
		vs := NewVisited(m0.Codec.Words)
		vs.SetSerial(workers == 1)
		vs.SetFS(opts.FS)
		if arenaBudget > 0 {
			vs.EnableArenaSpill(opts.SpillDir, arenaBudget)
		}
		return vs
	}
	vs := newVisited()
	defer func() { vs.Close() }()
	front := NewFrontier(frontBudget, opts.SpillDir, opts.FS)
	defer front.Close()

	aggs := make([]layerAgg, workers)
	var parentOf []int32
	var selOf []string

	// In-progress layer bookkeeping: the aggregate accumulated across
	// the layer's expanded chunks, and the layer position of the next
	// item.
	var layerAccum layerAgg
	itemBase := 0
	depth := 0

	ohash := optionsHash(m0.Name, m0.Codec.Words, m0.Prog.NumProcs, &opts)
	restored := false
	if opts.Checkpoint != nil {
		if r, lerr := opts.Checkpoint.Load(); lerr == nil && r != nil {
			snap, rerr := readSnapshot(r, ohash, m0.Codec.Words, vs)
			r.Close()
			if rerr == nil {
				res.Inits = snap.inits
				res.Transitions = snap.transitions
				res.Depth = snap.resDepth
				res.MaxEnabled = snap.maxEnabled
				res.Deadlocks = snap.deadlocks
				res.MaxIncorrectDepth = snap.maxIncorrectDepth
				res.Truncated = snap.truncated
				res.Violations = snap.violations
				res.States = vs.States()
				layerAccum = snap.agg
				itemBase = snap.itemBase
				depth = snap.curDepth
				parentOf = snap.parentOf
				selOf = snap.selOf
				for _, id := range snap.frontier {
					if err := front.Push(id); err != nil {
						return res, err
					}
				}
				for _, p := range snap.pending {
					vs.Probe(p.Key, hashWords(p.Key), p.Pos, p.Parent, []byte(p.Sel))
				}
				restored = true
				if opts.Stats != nil {
					opts.Stats.ResumedStates = vs.States()
				}
			} else {
				// Unusable checkpoint (format drift, corruption, a
				// different options tuple): quarantine it if the source
				// supports that, then start fresh on a clean set — the
				// rerun converges to the same verdict from scratch.
				if q, ok := opts.Checkpoint.(interface{ Quarantine() error }); ok {
					q.Quarantine()
				}
				vs.Close()
				vs = newVisited()
			}
		} else if r != nil {
			r.Close()
		}
	}

	// promote drains the pending entries in deterministic discovery
	// order and assigns dense ids, enforcing the state bound; fresh ids
	// queue on the (possibly spilling) frontier.
	promote := func() (int, error) {
		fresh := vs.Drain()
		count := 0
		for _, f := range fresh {
			if opts.MaxStates > 0 && vs.States() >= opts.MaxStates {
				res.Truncated = true
				vs.Drop(f)
				continue
			}
			id := vs.Promote(f)
			parentOf = append(parentOf, f.Parent)
			selOf = append(selOf, f.Sel)
			if err := front.Push(id); err != nil {
				return 0, err
			}
			count++
		}
		vs.Reset()
		return count, nil
	}

	if !restored {
		// Seed the initial layer. The stream stops once more distinct
		// inits than the state bound have been seen — everything past
		// the bound would be dropped anyway.
		seq := uint64(0)
		m0.Inits(func(cfg []S) bool {
			key := wss[0].canonKey(cfg)
			vs.Probe(key, hashWords(key), seq, -1, nil)
			seq++
			return opts.MaxStates <= 0 || vs.Pending() <= opts.MaxStates
		})
		inits, err := promote()
		if err != nil {
			return res, err
		}
		res.Inits = inits
		res.States = vs.States()
	}

	fillStats := func() {
		if opts.Stats == nil {
			return
		}
		opts.Stats.FrontierSpillSegments = front.SpillSegments
		opts.Stats.FrontierSpilledBytes = front.SpilledBytes
		opts.Stats.ArenaSpilledBytes = vs.SpilledBytes()
	}
	save := func() error {
		if opts.Checkpoint == nil {
			return nil
		}
		remaining, err := front.AppendRemaining(nil)
		if err != nil {
			return err
		}
		snap := &snapshot{
			hash: ohash, words: m0.Codec.Words, nstates: vs.States(),
			inits: res.Inits, transitions: res.Transitions, resDepth: res.Depth,
			maxEnabled: res.MaxEnabled, deadlocks: res.Deadlocks,
			maxIncorrectDepth: res.MaxIncorrectDepth, truncated: res.Truncated,
			violations: res.Violations,
			curDepth:   depth, itemBase: itemBase, agg: layerAccum,
			frontier: remaining, parentOf: parentOf, selOf: selOf,
			pending: vs.SnapshotPending(),
		}
		if err := opts.Checkpoint.Save(func(w io.Writer) error { return writeSnapshot(w, snap, vs) }); err != nil {
			return err
		}
		if opts.Stats != nil {
			opts.Stats.CheckpointsWritten++
		}
		return nil
	}

	chunkBuf := make([]int32, 0, exploreChunk)
	expandedSince := 0
	for front.Len() > 0 && len(res.Violations) < opts.MaxViolations {
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			res.Truncated = true
			break
		}
		// The layer's ids are the dense range ending at the current
		// state count (itemBase of them already expanded before a
		// restore); its start becomes the hot watermark once the layer
		// completes.
		layerStart := int32(vs.States() - front.Len() - itemBase)
		// Phase A (concurrent, chunked): drain the open queue a chunk
		// at a time and fan it across the workers; workers hash and
		// probe successors into the sharded set as they go,
		// accumulating order-insensitive statistics per worker.
		for front.Len() > 0 {
			// Both snapshot triggers live here, BEFORE the chunk is
			// popped: with the frontier non-empty the snapshot is
			// self-contained (a snapshot taken after a layer's last
			// chunk would have an empty frontier with the next layer
			// still un-promoted in the pending set, and a kill right
			// after persisting it would resume to a prematurely
			// terminated exploration).
			if cerr := ctx.Err(); cerr != nil {
				fillStats()
				if serr := save(); serr != nil {
					// Still interrupted, but the snapshot did not land: the
					// rerun restarts from the previous checkpoint (or from
					// scratch) instead of resuming here.
					return res, fmt.Errorf("explore: %w at %d states (%v; checkpoint save failed: %v)", ErrInterrupted, vs.States(), cerr, serr)
				}
				return res, fmt.Errorf("explore: %w at %d states (%v)", ErrInterrupted, vs.States(), cerr)
			}
			if opts.CheckpointEvery > 0 && expandedSince >= opts.CheckpointEvery {
				if err := save(); err != nil {
					// A failed periodic snapshot costs resumability, not
					// correctness: degrade to an uncheckpointed run and
					// count the failure instead of aborting the job.
					if opts.Stats != nil {
						opts.Stats.CheckpointErrors++
					}
				}
				expandedSince = 0
			}
			chunk, err := front.PopChunk(chunkBuf)
			if err != nil {
				return res, err
			}
			for w := range aggs {
				aggs[w].reset()
			}
			base := itemBase
			// Workers run in their own goroutines (par.ForEachWorker), so
			// an ioPanic from a cold arena read must be caught per worker
			// — an uncaught panic there would crash the process, not
			// unwind to this function's recover.
			var expandMu sync.Mutex
			var expandErr error
			par.ForEachWorker(len(chunk), workers, func(w, i int) {
				defer func() {
					if r := recover(); r != nil {
						ip, ok := r.(ioPanic)
						if !ok {
							panic(r)
						}
						expandMu.Lock()
						if expandErr == nil {
							expandErr = ip.err
						}
						expandMu.Unlock()
					}
				}()
				wss[w].expand(vs, &aggs[w], chunk[i], base+i, depth)
			})
			if expandErr != nil {
				return res, fmt.Errorf("explore: %w", expandErr)
			}
			itemBase += len(chunk)
			expandedSince += len(chunk)
			// Merge the chunk's worker aggregates (sums and maxima
			// commute; violations stay item-tagged for the layer-end
			// sort, so the merge order cannot show in the result).
			for w := range aggs {
				a := &aggs[w]
				layerAccum.deadlocks += a.deadlocks
				layerAccum.transitions += a.transitions
				if a.truncated {
					layerAccum.truncated = true
				}
				if a.incorrect {
					layerAccum.incorrect = true
				}
				if a.maxEnabled > layerAccum.maxEnabled {
					layerAccum.maxEnabled = a.maxEnabled
				}
				layerAccum.viols = append(layerAccum.viols, a.viols...)
			}
			if opts.Progress != nil {
				// Between chunks the workers are quiesced (ForEachWorker is
				// a barrier), so the promoted count and frontier length are
				// stable to read here.
				opts.Progress(Progress{
					States:      vs.States(),
					Expanded:    itemBase,
					Frontier:    front.Len(),
					Depth:       depth,
					Transitions: res.Transitions + layerAccum.transitions,
				})
			}
		}
		// Phase B (serial): promote the fresh states in deterministic
		// discovery order, fold the layer aggregate into the result,
		// and run the scaling housekeeping (re-shard, cold-tail spill).
		if _, err := promote(); err != nil {
			return res, err
		}

		res.Deadlocks += layerAccum.deadlocks
		res.Transitions += layerAccum.transitions
		if layerAccum.truncated {
			res.Truncated = true
		}
		if layerAccum.incorrect && depth > res.MaxIncorrectDepth {
			res.MaxIncorrectDepth = depth
		}
		if layerAccum.maxEnabled > res.MaxEnabled {
			res.MaxEnabled = layerAccum.maxEnabled
		}
		if len(layerAccum.viols) > 0 {
			// Stable: one item is expanded by one worker, which appends
			// its violations in detection order.
			slices.SortStableFunc(layerAccum.viols, func(a, b itemViol) int { return cmp.Compare(a.item, b.item) })
			for _, iv := range layerAccum.viols {
				if len(res.Violations) >= opts.MaxViolations {
					break
				}
				d := depth
				if iv.wv.key != nil {
					d++
				}
				res.Violations = append(res.Violations, Violation{
					Kind: iv.wv.kind, Msg: iv.wv.msg, Depth: d,
					Trace: buildTrace(m0, vs, parentOf, selOf, iv.id, iv.wv),
				})
			}
		}
		res.States = vs.States()
		depth++
		res.Depth = depth
		layerAccum.reset()
		layerAccum.viols = nil
		itemBase = 0
		if err := vs.Housekeep(layerStart); err != nil {
			return res, err
		}
	}
	if len(res.Violations) >= opts.MaxViolations {
		res.Truncated = true
	}
	res.StateBytes = vs.Bytes()
	fillStats()
	return res, nil
}

// buildTrace reconstructs the path from an initial configuration to
// state id, then appends the offending transition if any.
func buildTrace[S sim.Cloneable[S]](m *Model[S], vs *Visited, parentOf []int32, selOf []string, id int32, wv workerViol) []TraceStep {
	var path []int32
	for x := id; x >= 0; x = parentOf[x] {
		path = append(path, x)
	}
	decode := func(key []uint64) []S {
		cfg := make([]S, m.Prog.NumProcs)
		m.Codec.Decode(cfg, key)
		return cfg
	}
	out := make([]TraceStep, 0, len(path)+1)
	for i := len(path) - 1; i >= 0; i-- {
		x := path[i]
		key := copyWords(vs.Key(x))
		out = append(out, TraceStep{Sel: decodeSel(selOf[x]), Config: m.render(decode(key)), Key: key})
	}
	if wv.key != nil {
		out = append(out, TraceStep{Sel: wv.sel, Config: m.render(decode(wv.key)), Key: wv.key})
	}
	return out
}

// Replay re-executes a counterexample trace step for step through
// sim.Apply and re-detects the reported violation at the end — the
// vacuity guard behind the mutation-catch tests: a trace that does not
// replay, or replays without reproducing its violation, is a checker
// bug. symmetry must echo Result.Symmetry: under symmetry reduction the
// trace holds orbit representatives, so each applied step is compared
// modulo the automorphism group (exact for verified automorphisms).
func Replay[S sim.Cloneable[S]](m *Model[S], v Violation, symmetry bool) error {
	n := m.Prog.NumProcs
	if len(v.Trace) == 0 {
		return errors.New("explore: empty trace")
	}
	if v.Trace[0].Sel != nil {
		return errors.New("explore: trace does not start at an initial configuration")
	}
	opts := Options{Symmetry: symmetry}
	ws := newWorkerState(m, &opts)
	cur := make([]S, n)
	nxt := make([]S, n)
	m.Codec.Decode(cur, v.Trace[0].Key)
	rng := rand.New(rand.NewSource(1))
	for i := 1; i < len(v.Trace); i++ {
		step := v.Trace[i]
		sim.Apply(m.Prog, cur, nxt, step.Sel, rng)
		got := ws.canonKey(nxt)
		for w := range got {
			if got[w] != step.Key[w] {
				return fmt.Errorf("explore: step %d of the trace does not replay: applying %v diverges from the recorded state", i, step.Sel)
			}
		}
		// Continue from the recorded representative (identical to nxt
		// without symmetry; its canonical image with).
		m.Codec.Decode(cur, step.Key)
	}
	return replayDetect(m, ws, cur, v)
}

// replayDetect re-runs the property checks at the end of a replayed
// trace and confirms a violation of v.Kind is (re)detected there.
func replayDetect[S sim.Cloneable[S]](m *Model[S], ws *workerState[S], last []S, v Violation) error {
	n := m.Prog.NumProcs
	kinds := map[string]bool{}
	if v.Kind == KindDeadlock {
		if en := sim.EnabledOf(m.Prog, last, nil); len(en) == 0 {
			kinds[KindDeadlock] = true
		}
	}
	was := spec.MeetsVector(m.Probe, last, nil)
	for _, sv := range spec.ExclusionViolationsMeets(m.Probe, was, v.Depth, nil) {
		kinds[sv.Kind] = true
	}
	if len(v.Trace) >= 2 {
		// Transition properties: re-check the final recorded transition
		// against the *applied* successor, exactly as the expansion did.
		// Under symmetry the recorded final state is the successor's
		// canonical image — a permutation of the applied one — and
		// pairing it with the un-permuted predecessor would misalign the
		// edge-wise event comparison, so the successor is re-derived.
		fin := v.Trace[len(v.Trace)-1]
		prev := make([]S, n)
		m.Codec.Decode(prev, v.Trace[len(v.Trace)-2].Key)
		cur := make([]S, n)
		sim.Apply(m.Prog, prev, cur, fin.Sel, rand.New(rand.NewSource(1)))
		pw := spec.MeetsVector(m.Probe, prev, nil)
		cw := spec.MeetsVector(m.Probe, cur, nil)
		for _, sv := range spec.EventViolationsMeets(m.Probe, prev, pw, cw, v.Depth, nil) {
			kinds[sv.Kind] = true
		}
		if m.Correct != nil {
			for p := 0; p < n; p++ {
				correctNow := m.Correct(cur, p)
				if m.Correct(prev, p) && !correctNow {
					kinds[KindClosure] = true
				}
				if !correctNow {
					kinds[KindConvergence] = true
				}
			}
		}
	}
	if !kinds[v.Kind] {
		return fmt.Errorf("explore: replayed trace does not reproduce a %s violation", v.Kind)
	}
	return nil
}

func (m *Model[S]) render(cfg []S) string {
	if m.Render != nil {
		return m.Render(cfg)
	}
	parts := make([]string, len(cfg))
	for p := range cfg {
		parts[p] = fmt.Sprintf("%v", cfg[p])
	}
	return strings.Join(parts, " | ")
}

// appendSel packs a selection as one byte per process index.
func appendSel(dst []byte, sel []int) []byte {
	for _, p := range sel {
		if p > 255 {
			panic("explore: process index out of byte range")
		}
		dst = append(dst, byte(p))
	}
	return dst
}

func copySel(sel []int) []int { return append([]int(nil), sel...) }

func decodeSel(s string) []int {
	if s == "" {
		return nil
	}
	out := make([]int, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = int(s[i])
	}
	return out
}

// RenderTrace pretty-prints a counterexample trace.
func RenderTrace(v Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", v.String())
	for i, st := range v.Trace {
		switch {
		case i == 0:
			fmt.Fprintf(&b, "  init:       %s\n", st.Config)
		default:
			fmt.Fprintf(&b, "  exec %-6v %s\n", st.Sel, st.Config)
		}
	}
	return b.String()
}
