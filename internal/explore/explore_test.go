package explore

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/spec"
)

// mustCC builds a CC model factory or fails the test.
func mustCC(t *testing.T, v core.Variant, h *hypergraph.H, opts CCOptions) func() *Model[core.State] {
	t.Helper()
	factory, err := CC(v, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	return factory
}

// TestExhaustiveCC2Ring3 is the acceptance check: CC2 on a 3-committee
// topology, every CC-layer initial configuration (S, P, T, L over the
// stabilized token layer), zero spec violations under all three daemon
// branching modes. SelectAllSubsets subsumes the choices of every
// concrete daemon (WeaklyFair included), so this is the paper's safety
// claim — every meeting convened from an arbitrary initial configuration
// satisfies the spec — verified by enumeration.
func TestExhaustiveCC2Ring3(t *testing.T) {
	h := hypergraph.CommitteeRing(3)
	for _, mode := range []sim.SelectionMode{sim.SelectCentral, sim.SelectSynchronous, sim.SelectAllSubsets} {
		factory := mustCC(t, core.CC2, h, CCOptions{Init: InitCCFull})
		opts := Options{Mode: mode, CheckDeadlock: true, CheckClosure: true}
		if mode == sim.SelectSynchronous {
			opts.CheckConvergence = true // Corollary 5: Correct within one round = one synchronous step
		}
		res := Explore(factory, opts)
		if res.Inits != 46656 { // (3 statuses × 3 pointers × 2 × 2)^3
			t.Fatalf("%s: expected 46656 initial configurations, got %d", mode, res.Inits)
		}
		if res.Truncated {
			t.Fatalf("%s: exploration truncated: %s", mode, res.Summary())
		}
		if !res.Ok() {
			t.Fatalf("%s: violations found:\n%s", mode, RenderTrace(res.Violations[0]))
		}
		if res.Deadlocks != 0 {
			t.Fatalf("%s: %d deadlocks", mode, res.Deadlocks)
		}
		if res.States < res.Inits {
			t.Fatalf("%s: reachable states %d < inits %d", mode, res.States, res.Inits)
		}
	}
}

// TestExhaustiveCC1AndCC3 runs the companion variants through the same
// full CC-layer fault space (central branching keeps it fast; the
// synchronous pass also checks the one-round convergence bound).
func TestExhaustiveCC1AndCC3(t *testing.T) {
	h := hypergraph.CommitteeRing(3)
	for _, variant := range []core.Variant{core.CC1, core.CC3} {
		for _, mode := range []sim.SelectionMode{sim.SelectCentral, sim.SelectSynchronous} {
			factory := mustCC(t, variant, h, CCOptions{Init: InitCCFull})
			opts := Options{Mode: mode, CheckDeadlock: true, CheckClosure: true}
			if mode == sim.SelectSynchronous {
				opts.CheckConvergence = true
			}
			res := Explore(factory, opts)
			if res.Truncated || !res.Ok() {
				t.Fatalf("%s/%s: %s", variant, mode, res.Summary())
			}
		}
	}
}

// TestExhaustiveStarTopology covers a second topology shape (all
// committees conflict through the hub) under full subset branching.
func TestExhaustiveStarTopology(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.Star(4), CCOptions{Init: InitCC})
	res := Explore(factory, Options{Mode: sim.SelectAllSubsets, CheckDeadlock: true, CheckClosure: true})
	if res.Truncated || !res.Ok() {
		t.Fatalf("star: %s", res.Summary())
	}
}

// TestExhaustiveRandomTCInit corrupts the token layer too (the full
// §2.5 adversary) and explores the bounded neighborhood of many random
// corruptions.
func TestExhaustiveRandomTCInit(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitRandom, RandomCount: 64, Seed: 7})
	res := Explore(factory, Options{
		Mode: sim.SelectCentral, CheckDeadlock: true, CheckClosure: true, MaxStates: 200_000,
	})
	if !res.Ok() {
		t.Fatalf("random TC corruption: violations:\n%s", RenderTrace(res.Violations[0]))
	}
	if res.Deadlocks != 0 {
		t.Fatalf("random TC corruption: %d deadlocks", res.Deadlocks)
	}
}

// TestMutationLeaveEarlyCaught: the deliberately broken Step4 guard
// (leave before the meeting's essential discussions finish) must be
// caught with an essential-discussion counterexample whose trace starts
// at an initial configuration.
func TestMutationLeaveEarlyCaught(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3),
		CCOptions{Init: InitLegit, Mutation: MutationLeaveEarly})
	res := Explore(factory, Options{Mode: sim.SelectCentral, CheckDeadlock: true, MaxViolations: 1})
	if res.Ok() {
		t.Fatal("mutated algorithm verified clean; the checker is vacuous")
	}
	v := res.Violations[0]
	if v.Kind != spec.KindEssential {
		t.Fatalf("expected an essential-discussion violation, got %s: %s", v.Kind, v.Msg)
	}
	if len(v.Trace) < 2 {
		t.Fatalf("counterexample trace too short: %d steps", len(v.Trace))
	}
	if v.Trace[0].Sel != nil {
		t.Fatal("trace must start at an initial configuration")
	}
	rendered := RenderTrace(v)
	if !strings.Contains(rendered, "init:") || !strings.Contains(rendered, "exec") {
		t.Fatalf("unexpected trace rendering:\n%s", rendered)
	}
}

// TestMutationSkipStabCaught: removing the stabilization actions must
// break recovery from corrupted initial configurations (deadlock or a
// blown convergence bound).
func TestMutationSkipStabCaught(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3),
		CCOptions{Init: InitCCFull, Mutation: MutationSkipStab})
	res := Explore(factory, Options{
		Mode: sim.SelectSynchronous, CheckDeadlock: true, CheckConvergence: true, MaxViolations: 1,
	})
	if res.Ok() {
		t.Fatal("skip-stab verified clean; the checker is vacuous")
	}
	if k := res.Violations[0].Kind; k != KindDeadlock && k != KindConvergence {
		t.Fatalf("expected deadlock or convergence violation, got %s", k)
	}
}

// TestUnknownMutationRejected ensures mutation names are validated
// eagerly at model construction.
func TestUnknownMutationRejected(t *testing.T) {
	if _, err := CC(core.CC2, hypergraph.CommitteeRing(3), CCOptions{Mutation: "no-such"}); err == nil {
		t.Fatal("expected an error for an unknown mutation")
	}
}

// TestBaselineTokenRingExhaustive: the token-ring baseline from its
// legitimate initial configuration is spec-clean and deadlock-free on
// the ring.
func TestBaselineTokenRingExhaustive(t *testing.T) {
	factory, err := Baseline(baseline.TokenRing, hypergraph.CommitteeRing(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	res := Explore(factory, Options{Mode: sim.SelectCentral, CheckDeadlock: true})
	if res.Truncated || !res.Ok() {
		t.Fatalf("token-ring: %s", res.Summary())
	}
}

// TestBaselineDiningDeadlockFound pins a genuine finding of the
// exhaustive checker: the Chandy–Misra dining reduction, started from
// its legitimate configuration on the 3-ring, has schedules that wedge
// (a terminal configuration with all three committee agents hungry).
// The snap-stabilizing CC algorithms verify deadlock-free on the same
// topology (TestExhaustiveCC2Ring3) — exactly the robustness contrast
// the paper draws against non-stabilizing related work. If a later PR
// repairs the baseline, update this test to assert Deadlocks == 0.
func TestBaselineDiningDeadlockFound(t *testing.T) {
	factory, err := Baseline(baseline.Dining, hypergraph.CommitteeRing(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	res := Explore(factory, Options{Mode: sim.SelectCentral, CheckDeadlock: true, MaxViolations: 1})
	if res.Deadlocks == 0 && res.Ok() {
		t.Fatal("dining explored clean; known wedge disappeared — update this pin and the README finding")
	}
}

// TestExhaustiveCC2Ring4 is the scale acceptance check this PR adds:
// the 4-committee ring's full CC-fault family verifies exhaustively
// under central branching (78k reachable configurations) — out of
// reach for the PR 2 engine's CI budget, routine for the binary-codec
// explorer. CI runs the same instance through the cccheck CLI.
func TestExhaustiveCC2Ring4(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(4), CCOptions{Init: InitCC})
	res := Explore(factory, Options{Mode: sim.SelectCentral, CheckDeadlock: true, CheckClosure: true})
	if res.Truncated || !res.Ok() || res.Deadlocks != 0 {
		t.Fatalf("ring:4: %s", res.Summary())
	}
	if res.Verdict() != "verified" {
		t.Fatalf("ring:4 verdict: %s", res.Verdict())
	}
	if res.Inits != 6561 { // (3 statuses x 3 pointers)^4
		t.Fatalf("ring:4: expected 6561 initial configurations, got %d", res.Inits)
	}
}

// TestTokenRingSimultaneousWedgeFound pins a finding the all-subsets
// branching surfaced: the token-ring baseline's two-step handover
// handshake has a terminal configuration on the 3-ring that only
// simultaneous activations reach — central schedules verify
// deadlock-free, the fully general distributed daemon does not. The
// counterexample replays through sim.Apply. (The snap-stabilizing CC
// algorithms verify deadlock-free under the same branching.)
func TestTokenRingSimultaneousWedgeFound(t *testing.T) {
	factory, err := Baseline(baseline.TokenRing, hypergraph.CommitteeRing(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	central := Explore(factory, Options{Mode: sim.SelectCentral, CheckDeadlock: true})
	if central.Deadlocks != 0 || !central.Ok() {
		t.Fatalf("central schedules unexpectedly wedge: %s", central.Summary())
	}
	all := Explore(factory, Options{Mode: sim.SelectAllSubsets, CheckDeadlock: true, MaxViolations: 1})
	if all.Deadlocks == 0 {
		t.Fatal("simultaneous-schedule wedge disappeared — update this pin and the README finding")
	}
	if len(all.Violations) == 0 {
		t.Fatal("wedge not reported as a deadlock violation")
	}
	if err := Replay(factory(), all.Violations[0], false); err != nil {
		t.Fatalf("wedge trace does not replay: %v", err)
	}
}

// TestCCCodecRoundTrip: Encode∘Decode is the identity on random
// composed states, so state-graph memoization identifies exactly the
// equal configurations.
func TestCCCodecRoundTrip(t *testing.T) {
	h := hypergraph.Figure1()
	alg := core.New(core.CC2, h, core.NewScripted(h.N()))
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		cfg := make([]core.State, h.N())
		for p := range cfg {
			cfg[p] = alg.RandomState(p, rng)
		}
		key := string(encodeCC(nil, cfg))
		back := decodeCC(key, h.N())
		for p := range cfg {
			if cfg[p] != back[p] {
				t.Fatalf("trial %d: process %d: %+v != %+v", trial, p, cfg[p], back[p])
			}
		}
		if key2 := string(encodeCC(nil, back)); key2 != key {
			t.Fatalf("trial %d: re-encoding differs", trial)
		}
	}
}

// TestBaselineCodecRoundTrip exercises the variable-length baseline
// encoding through a short engine run (covering fork vectors in many
// states).
func TestBaselineCodecRoundTrip(t *testing.T) {
	h := hypergraph.CommitteeRing(4)
	a := baseline.New(baseline.Dining, h, 1)
	eng := sim.NewEngine(a.Program(), &sim.WeaklyFair{MaxAge: 4}, 5)
	for i := 0; i < 200; i++ {
		cfg := eng.Config()
		key := string(encodeBase(nil, cfg))
		back := decodeBase(key, len(cfg))
		if key2 := string(encodeBase(nil, back)); key2 != key {
			t.Fatalf("step %d: re-encoding differs", i)
		}
		if eng.Step() == nil {
			break
		}
	}
}

// TestExploreDeterministicAcrossWorkers: the BFS merges worker chunks
// in layer order, so every statistic is identical at any pool width.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCC})
		return Explore(factory, Options{
			Mode: sim.SelectAllSubsets, CheckDeadlock: true, CheckClosure: true, Workers: workers,
		})
	}
	a, b := run(1), run(4)
	if a.States != b.States || a.Transitions != b.Transitions || a.Depth != b.Depth ||
		a.Inits != b.Inits || a.Deadlocks != b.Deadlocks || len(a.Violations) != len(b.Violations) {
		t.Fatalf("parallel exploration diverged:\n  w=1: %s\n  w=4: %s", a.Summary(), b.Summary())
	}
}

// TestMaxStatesTruncation: hitting the state bound is reported, not
// silently swallowed.
func TestMaxStatesTruncation(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: InitCCFull})
	res := Explore(factory, Options{Mode: sim.SelectCentral, MaxStates: 1000})
	if !res.Truncated {
		t.Fatal("expected truncation with MaxStates=1000")
	}
	if res.States > 1000 {
		t.Fatalf("state bound exceeded: %d", res.States)
	}
}

// TestInitModeParsing covers the flag-facing parser.
func TestInitModeParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want InitMode
	}{{"legit", InitLegit}, {"cc", InitCC}, {"cc-full", InitCCFull}, {"random", InitRandom}} {
		got, err := ParseInitMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseInitMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseInitMode("bogus"); err == nil {
		t.Fatal("expected error for unknown init mode")
	}
}
