package explore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Frontier is the explorer's open queue: a FIFO of promoted state ids
// (the current BFS layer) that spills to disk when it outgrows a byte
// budget. The BFS fills it once per layer (promotion is serial) and
// drains it in chunks during the next expansion phase, so the structure
// only needs strict FIFO order, not random access — which is what makes
// the out-of-core representation trivial and fast:
//
//   - ids are appended to an in-memory tail;
//   - when the in-memory footprint exceeds the budget, the whole tail
//     is written sequentially to a new temp segment file (FIFO order:
//     segments between the drain side and the tail);
//   - draining pops from the in-memory head; when the head runs dry the
//     oldest segment is read back sequentially — one read per segment —
//     and its file is deleted immediately;
//   - order is head → spilled segments (oldest first) → tail, i.e.
//     exactly push order, so spilling is invisible to the exploration:
//     the same states are expanded at the same (item, branch) layer
//     positions and every report stays byte-identical.
//
// Segment files are ephemeral scratch: a checkpoint persists the
// frontier's *contents* (AppendRemaining), never its segment files, so
// a crash mid-segment-write can only lose scratch that the next run
// rebuilds from the checkpoint.
//
// All methods are serial-phase only (the BFS driver owns the frontier;
// workers never touch it).
type Frontier struct {
	budget int64  // in-memory byte budget (0 = never spill)
	dir    string // parent for the segment dir ("" = os.TempDir())

	head    []int32 // drain side (a loaded segment or the swapped tail)
	headOff int     // next index to pop from head
	segs    []string
	tail    []int32 // append side

	segDir string // created lazily on first spill

	n int // ids currently queued

	// Spill statistics, surfaced through RunStats.
	SpillSegments int
	SpilledBytes  int64
}

// frontierMinSpill is the smallest tail (in ids) worth writing as a
// segment: spilling tiny tails would turn an over-budget frontier into
// one file per handful of ids.
const frontierMinSpill = 1024

// NewFrontier builds a frontier with the given in-memory byte budget
// (0 = fully in-memory) spilling under dir ("" = the system temp dir).
func NewFrontier(budget int64, dir string) *Frontier {
	return &Frontier{budget: budget, dir: dir}
}

// Len returns the number of queued ids.
func (f *Frontier) Len() int { return f.n }

// memBytes is the in-memory footprint charged against the budget.
func (f *Frontier) memBytes() int64 {
	return int64(len(f.head)-f.headOff+len(f.tail)) * 4
}

// Push appends id, spilling the tail to a segment file when the
// in-memory footprint exceeds the budget. Spill failures are returned
// (disk full): the caller aborts the exploration rather than silently
// dropping states.
func (f *Frontier) Push(id int32) error {
	f.tail = append(f.tail, id)
	f.n++
	if f.budget > 0 && f.memBytes() > f.budget && len(f.tail) >= frontierMinSpill {
		return f.spillTail()
	}
	return nil
}

func (f *Frontier) spillTail() error {
	if f.segDir == "" {
		d, err := os.MkdirTemp(f.dir, "cc-frontier-")
		if err != nil {
			return fmt.Errorf("explore: frontier spill: %v", err)
		}
		f.segDir = d
	}
	path := filepath.Join(f.segDir, fmt.Sprintf("seg-%08d", f.SpillSegments))
	buf := make([]byte, 4*len(f.tail))
	for i, id := range f.tail {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(id))
	}
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		return fmt.Errorf("explore: frontier spill: %v", err)
	}
	f.segs = append(f.segs, path)
	f.SpillSegments++
	f.SpilledBytes += int64(len(buf))
	f.tail = f.tail[:0]
	return nil
}

// loadSeg reads the oldest segment into the head and deletes its file.
func (f *Frontier) loadSeg() error {
	path := f.segs[0]
	f.segs = f.segs[1:]
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("explore: frontier segment: %v", err)
	}
	os.Remove(path)
	f.head = f.head[:0]
	for off := 0; off+4 <= len(data); off += 4 {
		f.head = append(f.head, int32(binary.LittleEndian.Uint32(data[off:])))
	}
	f.headOff = 0
	return nil
}

// PopChunk fills dst (up to cap(dst)) with the oldest queued ids, in
// push order, and returns the filled prefix. An empty result means the
// frontier is drained.
func (f *Frontier) PopChunk(dst []int32) ([]int32, error) {
	dst = dst[:0]
	for len(dst) < cap(dst) && f.n > 0 {
		if f.headOff >= len(f.head) {
			if len(f.segs) > 0 {
				if err := f.loadSeg(); err != nil {
					return nil, err
				}
			} else {
				// No spilled middle: the tail is the oldest remainder.
				f.head, f.tail = f.tail, f.head[:0]
				f.headOff = 0
			}
			continue
		}
		room := cap(dst) - len(dst)
		avail := len(f.head) - f.headOff
		take := min(room, avail)
		dst = append(dst, f.head[f.headOff:f.headOff+take]...)
		f.headOff += take
		f.n -= take
	}
	return dst, nil
}

// AppendRemaining appends every queued id in pop order without
// consuming the queue — the checkpoint snapshot of the pending
// frontier. Spilled segments are read (not deleted); the frontier
// keeps draining normally afterwards.
func (f *Frontier) AppendRemaining(dst []int32) ([]int32, error) {
	dst = append(dst, f.head[f.headOff:]...)
	for _, path := range f.segs {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("explore: frontier snapshot: %v", err)
		}
		for off := 0; off+4 <= len(data); off += 4 {
			dst = append(dst, int32(binary.LittleEndian.Uint32(data[off:])))
		}
	}
	return append(dst, f.tail...), nil
}

// Close deletes any remaining segment files. The frontier is unusable
// afterwards.
func (f *Frontier) Close() {
	if f.segDir != "" {
		os.RemoveAll(f.segDir)
		f.segDir = ""
	}
	f.head, f.tail, f.segs = nil, nil, nil
	f.headOff, f.n = 0, 0
}
