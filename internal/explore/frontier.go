package explore

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"path/filepath"

	"repro/internal/chaos"
)

// Frontier is the explorer's open queue: a FIFO of promoted state ids
// (the current BFS layer) that spills to disk when it outgrows a byte
// budget. The BFS fills it once per layer (promotion is serial) and
// drains it in chunks during the next expansion phase, so the structure
// only needs strict FIFO order, not random access — which is what makes
// the out-of-core representation trivial and fast:
//
//   - ids are appended to an in-memory tail;
//   - when the in-memory footprint exceeds the budget, the whole tail
//     is written sequentially to a new temp segment file (FIFO order:
//     segments between the drain side and the tail);
//   - draining pops from the in-memory head; when the head runs dry the
//     oldest segment is read back sequentially — one read per segment —
//     and its file is deleted immediately;
//   - order is head → spilled segments (oldest first) → tail, i.e.
//     exactly push order, so spilling is invisible to the exploration:
//     the same states are expanded at the same (item, branch) layer
//     positions and every report stays byte-identical.
//
// Segment files are ephemeral scratch: a checkpoint persists the
// frontier's *contents* (AppendRemaining), never its segment files, so
// a crash mid-segment-write can only lose scratch that the next run
// rebuilds from the checkpoint.
//
// Unlike verdict entries and checkpoints, a spilled segment is live,
// non-redundant data — there is no other copy of those queued ids in
// this process — so a segment that fails its checksum cannot be
// silently skipped. It is renamed aside (*.quarantine) and surfaced as
// a *chaos.CorruptError; the recovery unit is the whole job (a fresh
// attempt rebuilds the frontier), driven by the campaign cell retry.
// Transient write failures during spilling are retried in place.
//
// All methods are serial-phase only (the BFS driver owns the frontier;
// workers never touch it).
type Frontier struct {
	budget int64  // in-memory byte budget (0 = never spill)
	dir    string // parent for the segment dir ("" = os.TempDir())
	fs     chaos.FS

	head    []int32 // drain side (a loaded segment or the swapped tail)
	headOff int     // next index to pop from head
	segs    []string
	tail    []int32 // append side

	segDir string // created lazily on first spill

	n int // ids currently queued

	// Spill statistics, surfaced through RunStats.
	SpillSegments int
	SpilledBytes  int64
}

// frontierMinSpill is the smallest tail (in ids) worth writing as a
// segment: spilling tiny tails would turn an over-budget frontier into
// one file per handful of ids.
const frontierMinSpill = 1024

// Segment layout: segMagic, u32 id count, u64 FNV-64a over the
// payload, then count little-endian u32 ids. The checksum turns torn
// writes and bit flips into detected corruption instead of silently
// wrong BFS layers.
var segMagic = [8]byte{'C', 'C', 'S', 'E', 'G', '1', 0, '\n'}

const segHeaderLen = 8 + 4 + 8

// NewFrontier builds a frontier with the given in-memory byte budget
// (0 = fully in-memory) spilling under dir ("" = the system temp dir)
// through fsys (nil = the host filesystem).
func NewFrontier(budget int64, dir string, fsys chaos.FS) *Frontier {
	if fsys == nil {
		fsys = chaos.OS
	}
	return &Frontier{budget: budget, dir: dir, fs: fsys}
}

// Len returns the number of queued ids.
func (f *Frontier) Len() int { return f.n }

// memBytes is the in-memory footprint charged against the budget.
func (f *Frontier) memBytes() int64 {
	return int64(len(f.head)-f.headOff+len(f.tail)) * 4
}

// Push appends id, spilling the tail to a segment file when the
// in-memory footprint exceeds the budget. Spill failures — after the
// transient retry budget — are returned classified (disk full): the
// caller aborts the exploration rather than silently dropping states.
func (f *Frontier) Push(id int32) error {
	f.tail = append(f.tail, id)
	f.n++
	if f.budget > 0 && f.memBytes() > f.budget && len(f.tail) >= frontierMinSpill {
		return f.spillTail()
	}
	return nil
}

// encodeSeg serializes the tail as a checksummed segment.
func encodeSeg(ids []int32) []byte {
	buf := make([]byte, segHeaderLen+4*len(ids))
	copy(buf, segMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(ids)))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(buf[segHeaderLen+4*i:], uint32(id))
	}
	h := fnv.New64a()
	h.Write(buf[segHeaderLen:])
	binary.LittleEndian.PutUint64(buf[12:], h.Sum64())
	return buf
}

// decodeSeg validates a segment and appends its ids to dst.
func decodeSeg(path string, data []byte, dst []int32) ([]int32, error) {
	if len(data) < segHeaderLen || [8]byte(data[:8]) != segMagic {
		return nil, &chaos.CorruptError{Path: path, Detail: "frontier segment: bad header"}
	}
	count := int(binary.LittleEndian.Uint32(data[8:]))
	if len(data) != segHeaderLen+4*count {
		return nil, &chaos.CorruptError{Path: path, Detail: fmt.Sprintf("frontier segment: %d bytes, want %d for %d ids", len(data), segHeaderLen+4*count, count)}
	}
	h := fnv.New64a()
	h.Write(data[segHeaderLen:])
	if h.Sum64() != binary.LittleEndian.Uint64(data[12:]) {
		return nil, &chaos.CorruptError{Path: path, Detail: "frontier segment: checksum mismatch"}
	}
	for off := segHeaderLen; off+4 <= len(data); off += 4 {
		dst = append(dst, int32(binary.LittleEndian.Uint32(data[off:])))
	}
	return dst, nil
}

func (f *Frontier) spillTail() error {
	err := chaos.Retry(context.Background(), chaos.DefaultPolicy, func() error {
		if f.segDir == "" {
			d, err := f.fs.MkdirTemp(f.dir, "cc-frontier-")
			if err != nil {
				return err
			}
			f.segDir = d
		}
		path := filepath.Join(f.segDir, fmt.Sprintf("seg-%08d", f.SpillSegments))
		return f.fs.WriteFile(path, encodeSeg(f.tail), 0o600)
	})
	if err != nil {
		return fmt.Errorf("explore: frontier spill: %w", err)
	}
	path := filepath.Join(f.segDir, fmt.Sprintf("seg-%08d", f.SpillSegments))
	f.segs = append(f.segs, path)
	f.SpillSegments++
	f.SpilledBytes += int64(4 * len(f.tail))
	f.tail = f.tail[:0]
	return nil
}

// readSeg reads and validates one segment file; corruption renames the
// file aside (*.quarantine, best-effort) and returns a classified
// error — the queued ids in it have no other copy, so the job must
// fail loudly and be retried from scratch rather than continue with a
// hole in the BFS layer.
func (f *Frontier) readSeg(path string, dst []int32) ([]int32, error) {
	var data []byte
	err := chaos.Retry(context.Background(), chaos.DefaultPolicy, func() error {
		var rerr error
		data, rerr = f.fs.ReadFile(path)
		return rerr
	})
	if err != nil {
		return nil, fmt.Errorf("explore: frontier segment: %w", err)
	}
	out, err := decodeSeg(path, data, dst)
	if err != nil {
		f.fs.Rename(path, path+".quarantine")
		return nil, fmt.Errorf("explore: %w", err)
	}
	return out, nil
}

// loadSeg reads the oldest segment into the head and deletes its file.
func (f *Frontier) loadSeg() error {
	path := f.segs[0]
	f.segs = f.segs[1:]
	head, err := f.readSeg(path, f.head[:0])
	if err != nil {
		return err
	}
	f.fs.Remove(path)
	f.head = head
	f.headOff = 0
	return nil
}

// PopChunk fills dst (up to cap(dst)) with the oldest queued ids, in
// push order, and returns the filled prefix. An empty result means the
// frontier is drained.
func (f *Frontier) PopChunk(dst []int32) ([]int32, error) {
	dst = dst[:0]
	for len(dst) < cap(dst) && f.n > 0 {
		if f.headOff >= len(f.head) {
			if len(f.segs) > 0 {
				if err := f.loadSeg(); err != nil {
					return nil, err
				}
			} else {
				// No spilled middle: the tail is the oldest remainder.
				f.head, f.tail = f.tail, f.head[:0]
				f.headOff = 0
			}
			continue
		}
		room := cap(dst) - len(dst)
		avail := len(f.head) - f.headOff
		take := min(room, avail)
		dst = append(dst, f.head[f.headOff:f.headOff+take]...)
		f.headOff += take
		f.n -= take
	}
	return dst, nil
}

// AppendRemaining appends every queued id in pop order without
// consuming the queue — the checkpoint snapshot of the pending
// frontier. Spilled segments are read (not deleted); the frontier
// keeps draining normally afterwards.
func (f *Frontier) AppendRemaining(dst []int32) ([]int32, error) {
	dst = append(dst, f.head[f.headOff:]...)
	for _, path := range f.segs {
		var err error
		dst, err = f.readSeg(path, dst)
		if err != nil {
			return nil, err
		}
	}
	return append(dst, f.tail...), nil
}

// Close deletes any remaining segment files. The frontier is unusable
// afterwards.
func (f *Frontier) Close() {
	if f.segDir != "" {
		f.fs.RemoveAll(f.segDir)
		f.segDir = ""
	}
	f.head, f.tail, f.segs = nil, nil, nil
	f.headOff, f.n = 0, 0
}
