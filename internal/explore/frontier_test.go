package explore

import (
	"os"
	"path/filepath"
	"testing"
)

func drainAll(t *testing.T, f *Frontier, chunk int) []int32 {
	t.Helper()
	var out []int32
	buf := make([]int32, 0, chunk)
	for f.Len() > 0 {
		got, err := f.PopChunk(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("frontier claims length but pops nothing")
		}
		out = append(out, got...)
	}
	return out
}

// TestFrontierFIFO: with and without spilling, ids come back in exact
// push order — the property the whole out-of-core design rests on.
func TestFrontierFIFO(t *testing.T) {
	const n = 50_000
	for _, budget := range []int64{0, 1 << 12} {
		f := NewFrontier(budget, t.TempDir(), nil)
		for i := int32(0); i < n; i++ {
			if err := f.Push(i); err != nil {
				t.Fatal(err)
			}
		}
		if f.Len() != n {
			t.Fatalf("budget %d: Len = %d, want %d", budget, f.Len(), n)
		}
		if budget > 0 && f.SpillSegments == 0 {
			t.Fatalf("budget %d: nothing spilled for %d ids", budget, n)
		}
		if budget == 0 && f.SpillSegments != 0 {
			t.Fatal("unbudgeted frontier spilled")
		}
		out := drainAll(t, f, 777) // chunk size coprime to segment sizes
		for i, id := range out {
			if id != int32(i) {
				t.Fatalf("budget %d: out[%d] = %d, want %d", budget, i, id, i)
			}
		}
		f.Close()
	}
}

// TestFrontierInterleaved: pushes interleaved with pops (the seeding
// pattern plus hypothetical future uses) stay FIFO across spills.
func TestFrontierInterleaved(t *testing.T) {
	f := NewFrontier(1<<12, t.TempDir(), nil)
	defer f.Close()
	next := int32(0)
	want := int32(0)
	buf := make([]int32, 0, 100)
	for round := 0; round < 200; round++ {
		for i := 0; i < 300; i++ {
			if err := f.Push(next); err != nil {
				t.Fatal(err)
			}
			next++
		}
		got, err := f.PopChunk(buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range got {
			if id != want {
				t.Fatalf("round %d: popped %d, want %d", round, id, want)
			}
			want++
		}
	}
	for _, id := range drainAll(t, f, 100) {
		if id != want {
			t.Fatalf("drain: popped %d, want %d", id, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d ids, pushed %d", want, next)
	}
}

// TestFrontierSegmentsDeleted: spilled segment files are removed as
// they are drained, and Close removes the rest.
func TestFrontierSegmentsDeleted(t *testing.T) {
	dir := t.TempDir()
	f := NewFrontier(1<<12, dir, nil)
	for i := int32(0); i < 20_000; i++ {
		if err := f.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	if f.SpillSegments == 0 {
		t.Fatal("no segments spilled")
	}
	count := func() int {
		n := 0
		filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() {
				n++
			}
			return nil
		})
		return n
	}
	before := count()
	if before == 0 {
		t.Fatal("no segment files on disk")
	}
	drainAll(t, f, 4096)
	if got := count(); got != 0 {
		t.Fatalf("%d segment files survive a full drain", got)
	}

	// And Close cleans up a half-drained frontier.
	f2 := NewFrontier(1<<12, dir, nil)
	for i := int32(0); i < 20_000; i++ {
		if err := f2.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	if count() == 0 {
		t.Fatal("no segment files before Close")
	}
	f2.Close()
	if got := count(); got != 0 {
		t.Fatalf("%d segment files survive Close", got)
	}
}

// TestFrontierAppendRemaining: the checkpoint snapshot of a
// half-drained spilling frontier is exactly the undrained suffix, and
// taking it does not disturb the drain.
func TestFrontierAppendRemaining(t *testing.T) {
	const n = 30_000
	f := NewFrontier(1<<12, t.TempDir(), nil)
	defer f.Close()
	for i := int32(0); i < n; i++ {
		if err := f.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]int32, 0, 1000)
	popped := 0
	for popped < n/3 {
		got, err := f.PopChunk(buf)
		if err != nil {
			t.Fatal(err)
		}
		popped += len(got)
	}
	snap, err := f.AppendRemaining(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != n-popped {
		t.Fatalf("snapshot has %d ids, want %d", len(snap), n-popped)
	}
	for i, id := range snap {
		if id != int32(popped+i) {
			t.Fatalf("snap[%d] = %d, want %d", i, id, popped+i)
		}
	}
	rest := drainAll(t, f, 1000)
	if len(rest) != n-popped {
		t.Fatalf("drained %d ids after snapshot, want %d", len(rest), n-popped)
	}
	for i, id := range rest {
		if id != snap[i] {
			t.Fatalf("drain diverges from snapshot at %d: %d vs %d", i, id, snap[i])
		}
	}
}
