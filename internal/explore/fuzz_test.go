package explore

import (
	"math/bits"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// fuzzTopo derives a small fixed topology from a fuzz byte.
func fuzzTopo(b byte) *hypergraph.H {
	switch b % 5 {
	case 0:
		return hypergraph.CommitteeRing(3 + int(b/5)%3)
	case 1:
		return hypergraph.Star(3 + int(b/5)%3)
	case 2:
		return hypergraph.ChainOfTriples(2 + int(b/5)%2)
	case 3:
		return hypergraph.Figure1()
	default:
		return hypergraph.DisjointCommittees(2+int(b/5)%2, 2+int(b/5)%2)
	}
}

// FuzzCodecRoundTrip: the binary codecs must be exact inverses over
// random valid composed states — for the CC codec across all three
// variants (core.Alg.RandomState draws every field from its full
// domain, token layer included) and for the baseline codec across
// engine-reachable dining/token-ring states. State identity in the
// explorer is encoding equality, so any round-trip defect is a
// soundness bug, not a cosmetic one.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int64(1), byte(0), byte(1))
	f.Add(int64(42), byte(7), byte(2))
	f.Add(int64(-3), byte(11), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, topoByte, variantByte byte) {
		h := fuzzTopo(topoByte)
		rng := rand.New(rand.NewSource(seed))

		// CC codec over fully random states.
		variant := []core.Variant{core.CC1, core.CC2, core.CC3}[variantByte%3]
		alg := core.New(variant, h, core.NewScripted(h.N()))
		layout := newCCLayout(alg)
		cfg := make([]core.State, h.N())
		for p := range cfg {
			cfg[p] = alg.RandomState(p, rng)
		}
		enc := make([]uint64, layout.words)
		layout.encode(enc, cfg)
		back := make([]core.State, h.N())
		layout.decode(back, enc)
		for p := range cfg {
			if cfg[p] != back[p] {
				t.Fatalf("CC round trip: process %d: %+v != %+v", p, cfg[p], back[p])
			}
		}
		enc2 := make([]uint64, layout.words)
		layout.encode(enc2, back)
		if !wordsEqual(enc, enc2) {
			t.Fatal("CC re-encoding differs")
		}
		// Patch-encoding a process into its own slot is the identity.
		for p := range cfg {
			patchWords(enc2, layout.procOff[p], layout.procBits[p], layout.encodeProc(cfg, p))
		}
		if !wordsEqual(enc, enc2) {
			t.Fatal("CC patch encoding diverges from full encoding")
		}

		// Baseline codec over engine-reachable states (BState's
		// per-neighbor vectors have no uniform random generator; a short
		// run under a random daemon covers the fork machinery).
		kind := baseline.Dining
		if variantByte%2 == 1 {
			kind = baseline.TokenRing
		}
		a := baseline.New(kind, h, 1+int(variantByte%3))
		bl := newBaseLayout(h, a.Disc, kind == baseline.Dining)
		eng := sim.NewEngine(a.Program(), sim.RandomSubset{P: 0.5}, seed)
		bEnc := make([]uint64, bl.words)
		bEnc2 := make([]uint64, bl.words)
		bBack := make([]baseline.BState, a.NumProcs())
		for i := 0; i < 24; i++ {
			bcfg := eng.Config()
			bl.encode(bEnc, bcfg)
			bl.decode(bBack, bEnc)
			if !reflect.DeepEqual(normalizeB(bcfg), normalizeB(bBack)) {
				t.Fatalf("baseline round trip diverged at step %d", i)
			}
			bl.encode(bEnc2, bBack)
			if !wordsEqual(bEnc, bEnc2) {
				t.Fatalf("baseline re-encoding differs at step %d", i)
			}
			if bl.incr {
				for p := range bcfg {
					patchWords(bEnc2, bl.procOff[p], bl.procBits[p], bl.encodeProc(bcfg, p))
				}
				if !wordsEqual(bEnc, bEnc2) {
					t.Fatal("baseline patch encoding diverges from full encoding")
				}
			}
			if eng.Step() == nil {
				break
			}
		}
	})
}

// FuzzBatchGuards: the columnar kernel's word-parallel guard
// evaluation must agree bit-for-bit with the per-state scalar walk
// (sim.EnabledOf over the same program) — on fully random
// configurations (every field from its whole domain, token layer
// included) and along a short reachable walk driven by the kernel's
// own Apply. A single wrong bit silently reshapes the explored graph,
// so this is a soundness target, not a robustness one.
func FuzzBatchGuards(f *testing.F) {
	f.Add(int64(1), byte(0), byte(1))
	f.Add(int64(99), byte(8), byte(2))
	f.Add(int64(-7), byte(13), byte(0))
	f.Fuzz(func(t *testing.T, seed int64, topoByte, variantByte byte) {
		h := fuzzTopo(topoByte)
		if h.N() > 64 {
			t.Skip("batch path requires n <= 64")
		}
		variant := []core.Variant{core.CC1, core.CC2, core.CC3}[variantByte%3]
		alg, prog := newCCProg(variant, h)
		k := core.NewKernel(alg, prog)
		rng := rand.New(rand.NewSource(seed))

		cfg := make([]core.State, h.N())
		var enabled []int
		check := func(what string) uint64 {
			mask := k.Eval(cfg)
			enabled = sim.EnabledOf(prog, cfg, enabled[:0])
			var want uint64
			for _, p := range enabled {
				want |= 1 << uint(p)
			}
			if mask != want {
				t.Fatalf("%s: kernel mask %064b != scalar %064b (cfg %v)", what, mask, want, cfg)
			}
			return mask
		}

		for round := 0; round < 8; round++ {
			for p := range cfg {
				cfg[p] = alg.RandomState(p, rng)
			}
			mask := check("random")
			// Reachable walk: apply one enabled process at a time with the
			// kernel's own Apply, re-judging the full guard vector after
			// every step.
			for step := 0; step < 6 && mask != 0; step++ {
				// Pick the (step mod popcount)-th enabled process.
				idx := step % bits.OnesCount64(mask)
				m := mask
				for ; idx > 0; idx-- {
					m &= m - 1
				}
				p := bits.TrailingZeros64(m)
				next := cfg[p].Clone()
				k.Apply(cfg, p, &next)
				cfg[p] = next
				mask = check("walk")
			}
		}
	})
}

// FuzzBatchDecode: successor keys assembled the batch way — decode the
// parent key, apply each selected process once, patch its pre-encoded
// block payload into the parent words — must equal the scalar codec's
// full encoding of the merged successor configuration, and decode back
// to it, for every selection mask. Key equality IS state identity in
// the explorer, so a single divergent bit forks or merges states.
func FuzzBatchDecode(f *testing.F) {
	f.Add(int64(1), byte(0), byte(1))
	f.Add(int64(5), byte(6), byte(2))
	f.Add(int64(-11), byte(19), byte(0))
	f.Fuzz(func(t *testing.T, seed int64, topoByte, variantByte byte) {
		h := fuzzTopo(topoByte)
		if h.N() > 64 {
			t.Skip("batch path requires n <= 64")
		}
		variant := []core.Variant{core.CC1, core.CC2, core.CC3}[variantByte%3]
		alg, prog := newCCProg(variant, h)
		k := core.NewKernel(alg, prog)
		// Independent program instance for the scalar comparison: the
		// generic kernel applies guard/action closures one process at a
		// time, sharing nothing with the columnar kernel.
		_, prog2 := newCCProg(variant, h)
		gk := sim.NewProgramKernel(prog2)
		layout := newCCLayout(alg)
		rng := rand.New(rand.NewSource(seed))

		n := h.N()
		cfg := make([]core.State, n)
		cfg2 := make([]core.State, n)
		post := make([]core.State, n)
		merged := make([]core.State, n)
		parent := make([]uint64, layout.words)
		patched := make([]uint64, layout.words)
		full := make([]uint64, layout.words)
		payload := make([]uint64, n)
		back := make([]core.State, n)

		for round := 0; round < 8; round++ {
			for p := range cfg {
				cfg[p] = alg.RandomState(p, rng)
			}
			layout.encode(parent, cfg)
			layout.decode(cfg2, parent) // the batch path expands decoded keys

			enabledMask := k.Eval(cfg2)
			if gm := gk.Eval(cfg2); gm != enabledMask {
				t.Fatalf("kernel masks diverge: columnar %064b vs generic %064b", enabledMask, gm)
			}
			for rest := enabledMask; rest != 0; rest &= rest - 1 {
				p := bits.TrailingZeros64(rest)
				post[p] = cfg2[p].Clone()
				k.Apply(cfg2, p, &post[p])
				// The generic kernel must produce the identical post state.
				gp := cfg2[p].Clone()
				gk.Apply(cfg2, p, &gp)
				if post[p] != gp {
					t.Fatalf("Apply diverges at p=%d: columnar %+v vs generic %+v", p, post[p], gp)
				}
				payload[p] = layout.encodeProc(post, p)
			}

			// Every selection mask on small enabled sets, random masks on
			// large ones.
			en := bits.OnesCount64(enabledMask)
			masks := make([]uint64, 0, 16)
			if en <= 4 {
				// all subsets of the enabled mask
				sub := uint64(0)
				for {
					masks = append(masks, sub)
					sub = (sub - enabledMask) & enabledMask
					if sub == 0 {
						break
					}
				}
			} else {
				for i := 0; i < 12; i++ {
					masks = append(masks, rng.Uint64()&enabledMask)
				}
			}
			for _, selMask := range masks {
				copy(patched, parent)
				copy(merged, cfg2)
				for sm := selMask; sm != 0; sm &= sm - 1 {
					p := bits.TrailingZeros64(sm)
					patchWords(patched, layout.procOff[p], layout.procBits[p], payload[p])
					merged[p] = post[p]
				}
				layout.encode(full, merged)
				if !wordsEqual(patched, full) {
					t.Fatalf("sel %064b: patched key %x != full encoding %x", selMask, patched, full)
				}
				layout.decode(back, patched)
				for p := range merged {
					if back[p] != merged[p] {
						t.Fatalf("sel %064b: decode(patched) diverges at p=%d: %+v vs %+v",
							selMask, p, back[p], merged[p])
					}
				}
			}
		}
	})
}

// normalizeB maps empty fork vectors to nil so DeepEqual compares
// decoded states by value (the codec may materialize zero-length
// slices where the engine holds nil).
func normalizeB(cfg []baseline.BState) []baseline.BState {
	out := append([]baseline.BState(nil), cfg...)
	for i := range out {
		if len(out[i].Fork) == 0 {
			out[i].Fork, out[i].Dirty, out[i].Asked = nil, nil, nil
		}
	}
	return out
}

// FuzzVisitedSet: the concurrent sharded set must be linearizable
// against a mutex-map oracle under the explorer's phase discipline —
// concurrent probes, then a serial drain/promote. The oracle resolves
// duplicate proposals by minimum position, exactly the determinism
// contract the BFS relies on.
func FuzzVisitedSet(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(3))
	f.Add([]byte{0, 0, 0, 1, 1, 2, 255, 254, 3, 3, 3, 9}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, layersByte uint8) {
		const words = 2
		vs := NewVisited(words)
		type oracleEntry struct {
			pos    uint64
			parent int32
			sel    string
			id     int32 // -1 while pending
		}
		oracle := map[[words]uint64]*oracleEntry{}
		nextID := int32(0)

		layers := 1 + int(layersByte%4)
		chunk := len(data)/layers + 1
		for layer := 0; layer < layers; layer++ {
			lo := layer * chunk
			if lo >= len(data) {
				break
			}
			hi := min(lo+chunk, len(data))
			ops := data[lo:hi]

			// Oracle (serial, min-pos merge over this layer's proposals).
			for i, b := range ops {
				key := [words]uint64{uint64(b % 13), uint64(b / 13)}
				pos := uint64(layer)<<32 | uint64(i)
				parent := int32(int(b)%int(nextID+1)) - 1
				sel := []byte{b}
				if e, ok := oracle[key]; ok {
					if e.id < 0 && pos < e.pos {
						e.pos, e.parent, e.sel = pos, parent, string(sel)
					}
					continue
				}
				oracle[key] = &oracleEntry{pos: pos, parent: parent, sel: string(sel), id: -1}
			}

			// Concurrent probes, striped over 4 goroutines.
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < len(ops); i += 4 {
						b := ops[i]
						key := []uint64{uint64(b % 13), uint64(b / 13)}
						pos := uint64(layer)<<32 | uint64(i)
						parent := int32(int(b)%int(nextID+1)) - 1
						vs.Probe(key, hashWords(key), pos, parent, []byte{b})
					}
				}(g)
			}
			wg.Wait()

			// Serial drain: entries must match the oracle's fresh set,
			// sorted by position, and promote in that order.
			fresh := vs.Drain()
			var expect []*oracleEntry
			for _, e := range oracle {
				if e.id < 0 {
					expect = append(expect, e)
				}
			}
			if len(fresh) != len(expect) {
				t.Fatalf("layer %d: %d fresh vs %d expected", layer, len(fresh), len(expect))
			}
			for i, fr := range fresh {
				if i > 0 && fresh[i-1].Pos >= fr.Pos {
					t.Fatalf("layer %d: drain not strictly sorted", layer)
				}
				key := [words]uint64{fr.key[0], fr.key[1]}
				e := oracle[key]
				if e == nil || e.id >= 0 {
					t.Fatalf("layer %d: drained unknown or already-promoted key", layer)
				}
				if e.pos != fr.Pos || e.parent != fr.Parent || e.sel != fr.Sel {
					t.Fatalf("layer %d: entry mismatch: oracle (%d,%d,%q) vs (%d,%d,%q)",
						layer, e.pos, e.parent, e.sel, fr.Pos, fr.Parent, fr.Sel)
				}
				id := vs.Promote(fr)
				if id != nextID {
					t.Fatalf("layer %d: promoted id %d, want %d", layer, id, nextID)
				}
				e.id = id
				nextID++
			}
			vs.Reset()

			// Every promoted key must now answer with its id.
			for key, e := range oracle {
				k := []uint64{key[0], key[1]}
				if got := vs.Probe(k, hashWords(k), ^uint64(0), -1, nil); got != e.id {
					t.Fatalf("layer %d: lookup of promoted key returned %d, want %d", layer, got, e.id)
				}
			}
			vs.Reset()
		}
		if vs.States() != int(nextID) {
			t.Fatalf("state count %d, want %d", vs.States(), nextID)
		}
	})
}
