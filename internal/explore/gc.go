package explore

import (
	"os"
	"path/filepath"
	"strings"
)

// GCSpill removes orphaned spill scratch left in dir by a killed
// process — cc-frontier-* segment directories and cc-arena-* files —
// and returns the number of entries removed. A live run's scratch is
// only at risk if GCSpill races it in the same directory, so callers
// run it at startup only (ccserve, cccheck -cache entry). dir "" means
// the system temp dir, matching the spill default.
func GCSpill(dir string) int {
	if dir == "" {
		dir = os.TempDir()
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() && strings.HasPrefix(name, "cc-frontier-"):
			if os.RemoveAll(filepath.Join(dir, name)) == nil {
				removed++
			}
		case !e.IsDir() && strings.HasPrefix(name, "cc-arena-"):
			if os.Remove(filepath.Join(dir, name)) == nil {
				removed++
			}
		}
	}
	return removed
}
