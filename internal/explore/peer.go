package explore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/sim"
)

// This file is the peer half of the distributed checker: a PeerEngine
// hosts a subset of the hash-range shards of the global visited set and
// expands its slice of each BFS layer, shipping successors it does not
// own to the owning peer as binary frontier frames. The other half — the
// coordinator that drives the layer barriers, merges the per-shard
// pending metadata into the global promotion order and assigns dense
// global ids (gids) — lives in internal/cluster.
//
// Determinism carries over from the single-node engine unchanged,
// because nothing that decides the result moves:
//
//   - every successor still carries pos = item<<32|branch with item the
//     *global* layer index (gid − firstGid of the layer), so each pos
//     value is proposed for exactly one key by exactly one expansion and
//     the min-merge under the owning shard's lock is a strict total
//     order, independent of frame arrival order;
//   - promotion stays serial: the coordinator merges the per-shard
//     pos-sorted pending lists (each shard's kept subset is a prefix of
//     its own list, because the global kept set is a pos prefix) and the
//     peer promotes in exactly that order, so gids are assigned in the
//     single-node discovery order;
//   - the at-cap decision is layer-global (the coordinator broadcasts
//     "cluster-wide promoted count >= MaxStates"), matching the
//     single-node States() check which only moves between layers.
//
// A shard — not a peer — is the unit of recovery: SnapshotShard writes a
// checkpoint-format image of one shard at a layer barrier, and
// AdoptShard rebuilds it on any surviving peer, which is what lets the
// cluster tolerate node loss mid-layer (survivors roll their pending
// state back to the barrier; the arena only mutates at commit time, so
// no snapshot restore is needed for them).

// ShardOf maps a state hash to its owning shard: the high word of
// hash×n, which is monotone in hash — shard s owns the contiguous hash
// range [s·2⁶⁴/n, (s+1)·2⁶⁴/n). The shard count is fixed at cluster
// start (one per initial peer); node loss moves whole shards to
// adopters instead of re-hashing.
func ShardOf(hash uint64, n int) int {
	hi, _ := bits.Mul64(hash, uint64(n))
	return int(hi)
}

// Defaulted returns a copy of o with the zero-value knobs resolved the
// way ExploreCtx resolves them, so a cluster coordinator and its peer
// engines agree on MaxBranch/MaxViolations/Workers without each
// re-implementing the defaults.
func (o Options) Defaulted() Options {
	if o.MaxBranch == 0 {
		o.MaxBranch = 1 << 16
	}
	if o.MaxViolations == 0 {
		o.MaxViolations = 5
	}
	if o.Workers <= 0 {
		o.Workers = par.Workers
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// DecodeSel decodes a packed selection string (one byte per selected
// process) into the selection slice a TraceStep carries; "" decodes to
// nil, matching the initial-configuration step.
func DecodeSel(s string) []int { return decodeSel(s) }

// RenderKey decodes an encoded state and renders it the way trace steps
// are rendered — the cluster coordinator's analogue of the in-process
// trace builder, which holds the arena and calls render directly.
func (m *Model[S]) RenderKey(key []uint64) string {
	cfg := make([]S, m.Prog.NumProcs)
	m.Codec.Decode(cfg, key)
	return m.render(cfg)
}

// PendMeta is the promotion-relevant view of one pending entry: what
// the coordinator needs to merge shards into the global discovery order
// and extend its parent/selection trace arrays. Parent is a gid.
type PendMeta struct {
	Pos    uint64 `json:"pos"`
	Parent int32  `json:"parent"`
	Sel    []byte `json:"sel,omitempty"`
}

// LayerViol is one violation detected during a peer's slice of a layer
// expansion, tagged with the global layer item index so the coordinator
// can reproduce the single-node report order (a stable sort by Item;
// one item is expanded by exactly one worker on exactly one peer).
type LayerViol struct {
	Item int      `json:"item"`
	Kind string   `json:"kind"`
	Msg  string   `json:"msg"`
	Sel  []int    `json:"sel,omitempty"`
	Key  []uint64 `json:"key,omitempty"`
}

// LayerReport is a peer's order-insensitive aggregate for one layer —
// the cluster analogue of the per-worker layerAgg, folded across the
// peer's workers. Sums, maxima and ORs commute, so the coordinator's
// fold over peers cannot show in the result.
type LayerReport struct {
	Deadlocks    int         `json:"deadlocks"`
	Transitions  int64       `json:"transitions"`
	MaxEnabled   int         `json:"maxEnabled"`
	Truncated    bool        `json:"truncated"`
	Incorrect    bool        `json:"incorrect"`
	Viols        []LayerViol `json:"viols,omitempty"`
	SendFailures int         `json:"sendFailures,omitempty"`
}

// PeerEngine is the coordinator-facing surface of one cluster peer. All
// methods except Ingest are called from the coordinator's serial
// phases, one at a time; Ingest is called concurrently with Expand
// (frames arrive while workers expand) and is internally synchronized
// by the visited set's striped locks.
type PeerEngine interface {
	// Seed enumerates the model's full deterministic init stream and
	// probes the configurations owned by a hosted shard (pos = stream
	// position, parent −1), stopping early once the local pending count
	// exceeds MaxStates — provably past the global kept prefix.
	Seed() error
	// Expand expands this peer's slice of the current layer: every
	// state promoted into a hosted shard at the last commit. firstGid
	// anchors the global item numbering (item = gid − firstGid); atCap
	// is the coordinator's layer-global state-bound decision.
	Expand(depth int, firstGid int32, atCap bool) (*LayerReport, error)
	// FinishLayer returns (and clears) the truncation flag accumulated
	// from ingested at-cap membership queries. Separate from Expand's
	// report because frames for this peer may still arrive after its
	// own expansion slice is done; the coordinator calls it once every
	// peer's Expand has returned.
	FinishLayer() bool
	// PendMeta drains a hosted shard's pending entries in deterministic
	// pos order and returns their promotion metadata.
	PendMeta(shard int) ([]PendMeta, error)
	// Commit promotes the first keep drained entries of the shard (in
	// the PendMeta order) under the coordinator-assigned gids, drops
	// the rest, and runs the between-layer housekeeping.
	Commit(shard int, keep int, gids []int32, housekeep bool) error
	// Keys returns the encoded states of the given gids, which must
	// have been committed to the given hosted shard (trace rebuilding).
	Keys(shard int, gids []int32) ([][]uint64, error)
	// SnapshotShard streams a restorable image of one hosted shard.
	// Only legal at a layer barrier (no pending entries).
	SnapshotShard(shard int, w io.Writer) error
	// AdoptShard rebuilds a shard this peer does not host from a
	// SnapshotShard stream — the work-migration path after node loss.
	AdoptShard(shard int, r io.Reader) error
	// Rollback discards every hosted shard's pending entries and the
	// ingested at-cap flag, returning the peer to the last layer
	// barrier. The arena only mutates at commit, so this is all a
	// surviving peer needs before a layer is retried.
	Rollback() error
	// SetRoute replaces the shard→peer routing table (after adoption).
	SetRoute(route []int) error
	// SetSender installs the frame transport: send must deliver the
	// frame to peer dst's Ingest before returning, may be called
	// concurrently from multiple workers, and must not retain the
	// frame. A send error is absorbed into the layer report's
	// SendFailures (the coordinator rolls the layer back), never a
	// wrong result.
	SetSender(send func(dst int, frame []byte) error)
	// Ingest applies one frame from a remote peer: probe records enter
	// the owning shard's pending set (the pos min-merge makes arrival
	// order irrelevant), membership queries fold into the FinishLayer
	// flag.
	Ingest(frame []byte) error
	// Hosted returns the sorted shard ids this peer currently hosts.
	Hosted() []int
	// States returns the promoted-state count across hosted shards.
	States() int
	// Close releases the hosted shards' resources.
	Close()
}

// PeerConfig places one engine inside a cluster.
type PeerConfig struct {
	// NShards is the cluster-wide shard count (fixed at start).
	NShards int
	// Hosted lists the shards this peer owns initially.
	Hosted []int
	// Self is this peer's index (frames it emits carry it implicitly
	// via the sender; a peer never sends to itself).
	Self int
	// FlushRecords caps the records buffered per (worker, destination)
	// outbox before a frame is flushed mid-expansion (0 = 512). Tests
	// shrink it to force multi-frame traffic on small instances.
	FlushRecords int
}

// peerShard is one hosted slice of the global visited set.
type peerShard struct {
	vs *Visited
	// gidOf maps this shard's dense local ids to their global ids.
	// Strictly increasing: within a commit the kept entries arrive in
	// global promotion order, and across commits gids only grow.
	gidOf []int32
	// layerFrom is the first local id of the current frontier layer
	// (the states committed last barrier, expanded this layer).
	layerFrom int32
	// drained caches the Drain between PendMeta and Commit so both see
	// the same order without re-sorting.
	drained []Fresh
}

type peerEngine[S sim.Cloneable[S]] struct {
	opts     Options
	wss      []*workerState[S]
	nShards  int
	self     int
	flushAt  int
	words    int
	ohash    [32]byte
	shards   map[int]*peerShard
	hosted   []int // sorted
	route    []int // shard -> peer
	send     func(dst int, frame []byte) error
	outboxes []*peerOutbox

	capTrunc  atomic.Bool
	sendFails atomic.Int64
}

// NewPeer builds a shard-hosting engine for one cluster peer. newModel
// and opts must be identical on every peer (and on the coordinator);
// opts is normalized with Defaulted, and Workers sizes this peer's
// expansion pool.
func NewPeer[S sim.Cloneable[S]](newModel func() *Model[S], opts Options, cfg PeerConfig) (PeerEngine, error) {
	opts = opts.Defaulted()
	if cfg.NShards < 1 {
		return nil, fmt.Errorf("explore: cluster needs at least one shard")
	}
	if cfg.Self < 0 || cfg.Self >= cfg.NShards {
		return nil, fmt.Errorf("explore: peer index %d out of range [0,%d)", cfg.Self, cfg.NShards)
	}
	if cfg.FlushRecords <= 0 {
		cfg.FlushRecords = 512
	}
	e := &peerEngine[S]{
		opts:    opts,
		nShards: cfg.NShards,
		self:    cfg.Self,
		flushAt: cfg.FlushRecords,
		shards:  make(map[int]*peerShard),
		route:   make([]int, cfg.NShards),
	}
	for s := range e.route {
		e.route[s] = s // identity while peers == shards
	}
	e.wss = make([]*workerState[S], opts.Workers)
	for i := range e.wss {
		e.wss[i] = newWorkerState(newModel(), &e.opts)
	}
	m0 := e.wss[0].model
	e.words = m0.Codec.Words
	e.ohash = optionsHash(m0.Name, e.words, m0.Prog.NumProcs, &e.opts)
	for _, s := range cfg.Hosted {
		if s < 0 || s >= cfg.NShards {
			return nil, fmt.Errorf("explore: hosted shard %d out of range [0,%d)", s, cfg.NShards)
		}
		if _, dup := e.shards[s]; dup {
			return nil, fmt.Errorf("explore: shard %d hosted twice", s)
		}
		e.shards[s] = &peerShard{vs: e.newShardVisited()}
	}
	e.rebuildHosted()
	e.outboxes = make([]*peerOutbox, opts.Workers)
	for w := range e.outboxes {
		ob := &peerOutbox{e: e}
		ob.init()
		e.outboxes[w] = ob
		e.wss[w].cl = &peerHooks{sink: ob.sink, capMiss: ob.capMiss}
	}
	return e, nil
}

func (e *peerEngine[S]) newShardVisited() *Visited {
	vs := NewVisited(e.words)
	// Frames ingest concurrently with the local workers' probes, so the
	// serial fast path is never safe on a peer.
	vs.SetSerial(false)
	vs.SetFS(e.opts.FS)
	return vs
}

func (e *peerEngine[S]) rebuildHosted() {
	e.hosted = e.hosted[:0]
	for s := range e.shards {
		e.hosted = append(e.hosted, s)
	}
	slices.Sort(e.hosted)
}

func (e *peerEngine[S]) Hosted() []int { return slices.Clone(e.hosted) }

func (e *peerEngine[S]) States() int {
	n := 0
	for _, s := range e.hosted {
		n += e.shards[s].vs.States()
	}
	return n
}

func (e *peerEngine[S]) SetSender(send func(dst int, frame []byte) error) { e.send = send }

func (e *peerEngine[S]) SetRoute(route []int) error {
	if len(route) != e.nShards {
		return fmt.Errorf("explore: route length %d != %d shards", len(route), e.nShards)
	}
	e.route = slices.Clone(route)
	return nil
}

func (e *peerEngine[S]) Close() {
	for _, ps := range e.shards {
		ps.vs.Close()
	}
	e.shards = map[int]*peerShard{}
	e.hosted = nil
}

// catchIO converts the arena's ioPanic escape hatch into an error on
// the engine's serial entry points (Expand guards per worker itself).
func catchIO(err *error) {
	if r := recover(); r != nil {
		ip, ok := r.(ioPanic)
		if !ok {
			panic(r)
		}
		*err = fmt.Errorf("explore: %w", ip.err)
	}
}

func (e *peerEngine[S]) Seed() (err error) {
	defer catchIO(&err)
	ws0 := e.wss[0]
	seq := uint64(0)
	ws0.model.Inits(func(cfg []S) bool {
		key := ws0.canonKey(cfg)
		h := hashWords(key)
		if ps, ok := e.shards[ShardOf(h, e.nShards)]; ok {
			ps.vs.Probe(key, h, seq, -1, nil)
		}
		seq++
		if e.opts.MaxStates <= 0 {
			return true
		}
		// The single-node stream stops once *global* pending exceeds the
		// bound; a peer only sees its local count, which trails the
		// global one, so it stops no earlier — it can only see extra
		// keys whose stream positions are past the global kept prefix,
		// and the merge discards exactly those.
		pending := 0
		for _, s := range e.hosted {
			pending += e.shards[s].vs.Pending()
		}
		return pending <= e.opts.MaxStates
	})
	return nil
}

type layerItem struct {
	vs  *Visited
	lid int32
	gid int32
}

func (e *peerEngine[S]) Expand(depth int, firstGid int32, atCap bool) (rep *LayerReport, err error) {
	e.sendFails.Store(0)
	var items []layerItem
	for _, s := range e.hosted {
		ps := e.shards[s]
		for lid := ps.layerFrom; lid < int32(ps.vs.States()); lid++ {
			items = append(items, layerItem{vs: ps.vs, lid: lid, gid: ps.gidOf[lid]})
		}
	}
	workers := len(e.wss)
	aggs := make([]layerAgg, workers)
	var mu sync.Mutex
	var expandErr error
	par.ForEachWorker(len(items), workers, func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				ip, ok := r.(ioPanic)
				if !ok {
					panic(r)
				}
				mu.Lock()
				if expandErr == nil {
					expandErr = ip.err
				}
				mu.Unlock()
			}
		}()
		it := items[i]
		ws := e.wss[w]
		ws.cl.atCap = atCap
		ws.cl.parent = it.gid
		ws.expand(it.vs, &aggs[w], it.lid, int(it.gid-firstGid), depth)
	})
	for _, ob := range e.outboxes {
		ob.flushAll()
	}
	if expandErr != nil {
		return nil, fmt.Errorf("explore: %w", expandErr)
	}
	rep = &LayerReport{SendFailures: int(e.sendFails.Load())}
	for w := range aggs {
		a := &aggs[w]
		rep.Deadlocks += a.deadlocks
		rep.Transitions += a.transitions
		rep.Truncated = rep.Truncated || a.truncated
		rep.Incorrect = rep.Incorrect || a.incorrect
		if a.maxEnabled > rep.MaxEnabled {
			rep.MaxEnabled = a.maxEnabled
		}
		for _, iv := range a.viols {
			rep.Viols = append(rep.Viols, LayerViol{
				Item: iv.item, Kind: iv.wv.kind, Msg: iv.wv.msg, Sel: iv.wv.sel, Key: iv.wv.key,
			})
		}
	}
	return rep, nil
}

func (e *peerEngine[S]) FinishLayer() bool {
	return e.capTrunc.Swap(false)
}

func (e *peerEngine[S]) shard(s int) (*peerShard, error) {
	ps, ok := e.shards[s]
	if !ok {
		return nil, fmt.Errorf("explore: shard %d is not hosted by peer %d", s, e.self)
	}
	return ps, nil
}

func (e *peerEngine[S]) PendMeta(shard int) (meta []PendMeta, err error) {
	defer catchIO(&err)
	ps, err := e.shard(shard)
	if err != nil {
		return nil, err
	}
	ps.drained = ps.vs.Drain()
	meta = make([]PendMeta, len(ps.drained))
	for i, f := range ps.drained {
		meta[i] = PendMeta{Pos: f.Pos, Parent: f.Parent, Sel: []byte(f.Sel)}
	}
	return meta, nil
}

func (e *peerEngine[S]) Commit(shard int, keep int, gids []int32, housekeep bool) (err error) {
	defer catchIO(&err)
	ps, err := e.shard(shard)
	if err != nil {
		return err
	}
	if ps.drained == nil {
		ps.drained = ps.vs.Drain()
	}
	if keep != len(gids) || keep > len(ps.drained) {
		return fmt.Errorf("explore: commit of %d entries (%d gids) does not fit %d pending", keep, len(gids), len(ps.drained))
	}
	oldFrom := ps.layerFrom
	nBefore := int32(ps.vs.States())
	for i, f := range ps.drained {
		if i < keep {
			ps.vs.Promote(f)
			ps.gidOf = append(ps.gidOf, gids[i])
		} else {
			ps.vs.Drop(f)
		}
	}
	ps.drained = nil
	ps.vs.Reset()
	if housekeep {
		if err := ps.vs.Housekeep(oldFrom); err != nil {
			return err
		}
	}
	ps.layerFrom = nBefore
	return nil
}

func (e *peerEngine[S]) Keys(shard int, gids []int32) (keys [][]uint64, err error) {
	defer catchIO(&err)
	ps, err := e.shard(shard)
	if err != nil {
		return nil, err
	}
	keys = make([][]uint64, len(gids))
	for i, g := range gids {
		lid, ok := slices.BinarySearch(ps.gidOf, g)
		if !ok {
			return nil, fmt.Errorf("explore: gid %d is not committed to shard %d", g, shard)
		}
		keys[i] = copyWords(ps.vs.Key(int32(lid)))
	}
	return keys, nil
}

func (e *peerEngine[S]) Rollback() error {
	for _, s := range e.hosted {
		ps := e.shards[s]
		ps.drained = nil
		for _, f := range ps.vs.Drain() {
			ps.vs.Drop(f)
		}
		ps.vs.Reset()
	}
	e.capTrunc.Store(false)
	return nil
}

// --- shard snapshots (the unit of work migration) ------------------------------

var shardMagic = [8]byte{'C', 'C', 'S', 'H', 'D', '0' + checkpointVersion, '\r', '\n'}

func (e *peerEngine[S]) SnapshotShard(shard int, w io.Writer) (err error) {
	defer catchIO(&err)
	ps, err := e.shard(shard)
	if err != nil {
		return err
	}
	if ps.vs.Pending() != 0 {
		return fmt.Errorf("explore: shard %d snapshot requested mid-layer (%d pending)", shard, ps.vs.Pending())
	}
	c := newCkptWriter(w)
	c.bytes(shardMagic[:])
	c.bytes(e.ohash[:])
	c.int(e.nShards)
	c.int(shard)
	c.int(e.words)
	c.int(ps.vs.States())
	c.i32(ps.layerFrom)
	for _, g := range ps.gidOf {
		c.i32(g)
	}
	if c.err == nil {
		if c.err = ps.vs.writeArenaHashed(c); c.err != nil {
			return c.err
		}
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], c.sum.Sum64())
	if c.err == nil {
		_, c.err = c.w.Write(b[:])
	}
	if c.err == nil {
		c.err = c.w.Flush()
	}
	return c.err
}

func (e *peerEngine[S]) AdoptShard(shard int, r io.Reader) (err error) {
	defer catchIO(&err)
	if _, hosted := e.shards[shard]; hosted {
		return fmt.Errorf("explore: shard %d is already hosted by peer %d", shard, e.self)
	}
	if shard < 0 || shard >= e.nShards {
		return fmt.Errorf("explore: shard %d out of range [0,%d)", shard, e.nShards)
	}
	c := newCkptReader(r)
	var magic [8]byte
	c.bytes(magic[:])
	if c.err == nil && magic != shardMagic {
		return fmt.Errorf("explore: not a shard snapshot (or version drift)")
	}
	var ohash [32]byte
	c.bytes(ohash[:])
	if c.err == nil && ohash != e.ohash {
		return fmt.Errorf("explore: shard snapshot is for a different (model, options) tuple")
	}
	if n := c.int(); c.err == nil && n != e.nShards {
		return fmt.Errorf("explore: shard snapshot from a %d-shard cluster, want %d", n, e.nShards)
	}
	if s := c.int(); c.err == nil && s != shard {
		return fmt.Errorf("explore: snapshot holds shard %d, want %d", s, shard)
	}
	if w := c.int(); c.err == nil && w != e.words {
		return fmt.Errorf("explore: shard snapshot word width %d != codec %d", w, e.words)
	}
	nstates := c.int()
	layerFrom := c.i32()
	if c.err == nil && (nstates < 0 || nstates > snapLimit/8/e.words) {
		return fmt.Errorf("explore: shard snapshot state count %d out of range", nstates)
	}
	if c.err == nil && (layerFrom < 0 || int(layerFrom) > nstates) {
		return fmt.Errorf("explore: shard snapshot layer start %d out of range", layerFrom)
	}
	var gidOf []int32
	if c.err == nil {
		gidOf = make([]int32, nstates)
		prev := int32(-1)
		for i := range gidOf {
			gidOf[i] = c.i32()
			if c.err == nil && gidOf[i] <= prev {
				return fmt.Errorf("explore: shard snapshot gid table is not increasing")
			}
			prev = gidOf[i]
		}
	}
	if c.err != nil {
		return fmt.Errorf("explore: shard snapshot read: %v", c.err)
	}
	vs := e.newShardVisited()
	arenaBytes := int64(nstates) * int64(e.words) * 8
	if err := vs.RestoreArena(io.LimitReader(hashedReader{c}, arenaBytes), nstates, layerFrom); err != nil {
		vs.Close()
		return err
	}
	want := c.sum.Sum64()
	var b [8]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		vs.Close()
		return fmt.Errorf("explore: shard snapshot checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != want {
		vs.Close()
		return fmt.Errorf("explore: shard snapshot checksum mismatch (torn or corrupted file)")
	}
	e.shards[shard] = &peerShard{vs: vs, gidOf: gidOf, layerFrom: layerFrom}
	e.rebuildHosted()
	return nil
}

// --- frontier frames -----------------------------------------------------------

// Frame layout (little-endian), reusing the codec's raw word encoding
// for state keys:
//
//	header:  "CCFW" u8 version u8 0 u16 words u32 count
//	probe:   u8 1  u32 shard  u64 pos  u32 parent  u8 selLen  sel  key
//	capchk:  u8 2  u32 shard  key
const (
	frameVersion   = 1
	frameHeaderLen = 12
	recProbe       = 1
	recCapCheck    = 2
)

var frameMagic = [4]byte{'C', 'C', 'F', 'W'}

// peerOutbox buffers outgoing records for one worker, one frame buffer
// per destination peer, so expansion never takes a lock to emit a
// record; frames flush at the record threshold and at expansion end.
type peerOutbox struct {
	e interface {
		outCtx() (nShards int, flushAt int, words int)
		routeOf(shard int) int
		localShard(shard int) *peerShard
		deliver(dst int, frame []byte)
	}
	bufs   [][]byte
	counts []int
}

func (ob *peerOutbox) init() {
	nShards, _, words := ob.e.outCtx()
	ob.bufs = make([][]byte, nShards)
	ob.counts = make([]int, nShards)
	for d := range ob.bufs {
		buf := make([]byte, 0, 1<<12)
		buf = append(buf, frameMagic[:]...)
		buf = append(buf, frameVersion, 0)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(words))
		buf = binary.LittleEndian.AppendUint32(buf, 0)
		ob.bufs[d] = buf
	}
}

func (ob *peerOutbox) sink(key []uint64, hash uint64, pos uint64, parent int32, sel []byte) {
	shard := ShardOf(hash, len(ob.bufs))
	if ps := ob.e.localShard(shard); ps != nil {
		ps.vs.Probe(key, hash, pos, parent, sel)
		return
	}
	dst := ob.e.routeOf(shard)
	buf := ob.bufs[dst]
	buf = append(buf, recProbe)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shard))
	buf = binary.LittleEndian.AppendUint64(buf, pos)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(parent))
	buf = append(buf, byte(len(sel)))
	buf = append(buf, sel...)
	for _, w := range key {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	ob.bufs[dst] = buf
	ob.bump(dst)
}

func (ob *peerOutbox) capMiss(key []uint64, hash uint64) bool {
	shard := ShardOf(hash, len(ob.bufs))
	if ps := ob.e.localShard(shard); ps != nil {
		return !ps.vs.Contains(key, hash)
	}
	dst := ob.e.routeOf(shard)
	buf := ob.bufs[dst]
	buf = append(buf, recCapCheck)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shard))
	for _, w := range key {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	ob.bufs[dst] = buf
	ob.bump(dst)
	// The owner answers the membership question and folds a miss into
	// its own FinishLayer flag; truncation is a layer-global OR, so
	// where the bit lands cannot show in the result.
	return false
}

func (ob *peerOutbox) bump(dst int) {
	ob.counts[dst]++
	if _, flushAt, _ := ob.e.outCtx(); ob.counts[dst] >= flushAt {
		ob.flush(dst)
	}
}

func (ob *peerOutbox) flush(dst int) {
	if ob.counts[dst] == 0 {
		return
	}
	buf := ob.bufs[dst]
	binary.LittleEndian.PutUint32(buf[8:frameHeaderLen], uint32(ob.counts[dst]))
	ob.e.deliver(dst, buf)
	ob.bufs[dst] = buf[:frameHeaderLen]
	ob.counts[dst] = 0
}

func (ob *peerOutbox) flushAll() {
	for d := range ob.bufs {
		ob.flush(d)
	}
}

func (e *peerEngine[S]) outCtx() (int, int, int) { return e.nShards, e.flushAt, e.words }
func (e *peerEngine[S]) routeOf(shard int) int   { return e.route[shard] }
func (e *peerEngine[S]) localShard(shard int) *peerShard {
	return e.shards[shard]
}
func (e *peerEngine[S]) noteCapTrunc() { e.capTrunc.Store(true) }
func (e *peerEngine[S]) deliver(dst int, frame []byte) {
	if e.send == nil {
		e.sendFails.Add(1)
		return
	}
	if err := e.send(dst, frame); err != nil {
		e.sendFails.Add(1)
	}
}

func (e *peerEngine[S]) Ingest(frame []byte) error {
	if len(frame) < frameHeaderLen {
		return fmt.Errorf("explore: short frontier frame (%d bytes)", len(frame))
	}
	if [4]byte(frame[:4]) != frameMagic || frame[4] != frameVersion {
		return fmt.Errorf("explore: not a frontier frame (or version drift)")
	}
	if w := int(binary.LittleEndian.Uint16(frame[6:8])); w != e.words {
		return fmt.Errorf("explore: frame word width %d != codec %d", w, e.words)
	}
	count := int(binary.LittleEndian.Uint32(frame[8:frameHeaderLen]))
	p := frame[frameHeaderLen:]
	key := make([]uint64, e.words)
	keyBytes := 8 * e.words
	for rec := 0; rec < count; rec++ {
		if len(p) < 5 {
			return fmt.Errorf("explore: truncated frontier frame (record %d)", rec)
		}
		kind := p[0]
		shard := int(binary.LittleEndian.Uint32(p[1:5]))
		p = p[5:]
		ps, ok := e.shards[shard]
		if !ok {
			return fmt.Errorf("explore: frame for shard %d, which peer %d does not host (stale route?)", shard, e.self)
		}
		switch kind {
		case recProbe:
			if len(p) < 13 {
				return fmt.Errorf("explore: truncated frontier frame (record %d)", rec)
			}
			pos := binary.LittleEndian.Uint64(p[:8])
			parent := int32(binary.LittleEndian.Uint32(p[8:12]))
			selLen := int(p[12])
			p = p[13:]
			if len(p) < selLen+keyBytes {
				return fmt.Errorf("explore: truncated frontier frame (record %d)", rec)
			}
			sel := p[:selLen]
			p = p[selLen:]
			for i := range key {
				key[i] = binary.LittleEndian.Uint64(p[i*8:])
			}
			p = p[keyBytes:]
			ps.vs.Probe(key, hashWords(key), pos, parent, sel)
		case recCapCheck:
			if len(p) < keyBytes {
				return fmt.Errorf("explore: truncated frontier frame (record %d)", rec)
			}
			for i := range key {
				key[i] = binary.LittleEndian.Uint64(p[i*8:])
			}
			p = p[keyBytes:]
			if !ps.vs.Contains(key, hashWords(key)) {
				e.noteCapTrunc()
			}
		default:
			return fmt.Errorf("explore: unknown frontier record kind %d", kind)
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("explore: %d trailing bytes after frontier frame", len(p))
	}
	return nil
}
