package explore

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// The property-based harness: randomized scenarios feed both the
// runtime monitors (long runs on arbitrary topologies under real
// daemons) and the exhaustive checker (complete enumeration on small
// random topologies). Together they assert the snap-stabilization
// property "every meeting convened during the run satisfies the spec"
// over inputs no fixture anticipates.

// TestPropertyRandomScenarios runs every CC variant from random initial
// configurations on randomized topologies under a rotation of daemons,
// monitored by the runtime spec checker.
func TestPropertyRandomScenarios(t *testing.T) {
	const scenarios = 24
	for i := 0; i < scenarios; i++ {
		seed := int64(1000 + i)
		rng := rand.New(rand.NewSource(seed))
		h := hypergraph.RandomScenario(rng, 12)
		variant := []core.Variant{core.CC1, core.CC2, core.CC3}[i%3]
		var d sim.Daemon
		switch i % 4 {
		case 0:
			d = &sim.WeaklyFair{MaxAge: 6}
		case 1:
			d = &sim.Central{}
		case 2:
			d = sim.Synchronous{}
		default:
			d = sim.RandomSubset{P: 0.5}
		}
		alg := core.New(variant, h, nil)
		env := core.NewAlwaysClient(h.N(), 2)
		r := core.NewRunner(alg, d, env, seed, true)
		chk := r.Checker(0)
		r.Run(1500)
		if len(chk.Violations) > 0 {
			t.Fatalf("scenario %d (%s on %s under %s): %s", i, variant, h, d.Name(), chk.Violations[0])
		}
	}
}

// TestPropertyExhaustiveOnRandomTinyTopologies exhaustively checks CC2
// on small random topologies — committee structures drawn by the
// generator, not fixtures — from every (S, P) initial assignment.
func TestPropertyExhaustiveOnRandomTinyTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for checked < 4 {
		h := hypergraph.RandomScenario(rng, 8)
		if h.N() > 4 { // keep the CC-layer product space tractable
			continue
		}
		checked++
		factory := mustCC(t, core.CC2, h, CCOptions{Init: InitCC})
		res := Explore(factory, Options{
			Mode: sim.SelectCentral, CheckDeadlock: true, CheckClosure: true, MaxStates: 500_000,
		})
		if !res.Ok() {
			t.Fatalf("random topology %s: violation:\n%s", h, RenderTrace(res.Violations[0]))
		}
		if res.Truncated {
			t.Fatalf("random topology %s: truncated (%s)", h, res.Summary())
		}
	}
}

// TestEngineTransitionsAreEnumerated cross-validates the two execution
// paths: every transition an Engine takes under a concrete daemon must
// appear among the successors the explorer enumerates for the pre-step
// configuration under SelectAllSubsets.
func TestEngineTransitionsAreEnumerated(t *testing.T) {
	h := hypergraph.CommitteeRing(3)
	factory := mustCC(t, core.CC2, h, CCOptions{Init: InitLegit})
	model := factory()

	// An engine over the *same frozen environment* program.
	alg, prog := newCCProg(core.CC2, h)
	_ = alg
	eng := sim.NewEngine(prog, &sim.WeaklyFair{MaxAge: 4}, 11)

	enc := make([]uint64, model.Codec.Words)
	for step := 0; step < 120; step++ {
		prev := append([]core.State(nil), eng.Config()...)
		if eng.Step() == nil {
			break
		}
		model.Codec.Encode(enc, eng.Config())
		nextKey := wordsString(enc)
		found := false
		rng := rand.New(rand.NewSource(1))
		sim.Successors(model.Prog, prev, sim.SelectAllSubsets, rng, 0, func(_ []int, nxt []core.State) bool {
			model.Codec.Encode(enc, nxt)
			if wordsString(enc) == nextKey {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("step %d: engine transition missing from enumerated successors", step)
		}
	}
}
