package explore

import (
	"fmt"
	"math/rand"

	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Reference is the PR 2 exploration engine, preserved as the
// differential-test oracle and performance baseline for the binary
// engine: string-keyed canonical codecs (Model.Ref), one serial
// map[string]int32 dedup loop, layer-parallel expansion with
// merge-in-order. Explore must reproduce its states, transitions,
// depths, verdicts and traces exactly (modulo the trace Key field,
// which the oracle leaves nil); the differential battery asserts that
// over every algorithm × topology × daemon-mode cell. It knows nothing
// of symmetry reduction — compare against unreduced runs.
func Reference[S sim.Cloneable[S]](newModel func() *Model[S], opts Options) *Result {
	if opts.MaxBranch == 0 {
		opts.MaxBranch = 1 << 16
	}
	if opts.MaxViolations == 0 {
		opts.MaxViolations = 5
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = par.Workers
	}
	if workers < 1 {
		workers = 1
	}
	models := make([]*Model[S], workers)
	for i := range models {
		models[i] = newModel()
	}
	m0 := models[0]

	res := &Result{Model: m0.Name, Mode: opts.Mode, MaxIncorrectDepth: -1}

	visited := make(map[string]int32)
	var keys []string
	var parentOf []int32
	var selOf []string

	add := func(key string, parent int32, sel string) (int32, bool) {
		if id, ok := visited[key]; ok {
			return id, false
		}
		if opts.MaxStates > 0 && len(keys) >= opts.MaxStates {
			res.Truncated = true
			return -1, false
		}
		id := int32(len(keys))
		visited[key] = id
		keys = append(keys, key)
		parentOf = append(parentOf, parent)
		selOf = append(selOf, sel)
		return id, true
	}

	// Seed the initial layer.
	var layer []int32
	var encBuf []byte
	m0.Inits(func(cfg []S) bool {
		encBuf = m0.Ref.Encode(encBuf[:0], cfg)
		if id, fresh := add(string(encBuf), -1, ""); fresh {
			layer = append(layer, id)
			res.Inits++
		}
		return !res.Truncated
	})
	res.States = len(keys)

	// trace reconstructs the path from an initial configuration to state
	// id, then appends the offending transition if any.
	trace := func(id int32, v refViol) []TraceStep {
		var path []int32
		for x := id; x >= 0; x = parentOf[x] {
			path = append(path, x)
		}
		out := make([]TraceStep, 0, len(path)+1)
		for i := len(path) - 1; i >= 0; i-- {
			out = append(out, TraceStep{Sel: decodeSel(selOf[path[i]]), Config: m0.render(m0.Ref.Decode(keys[path[i]]))})
		}
		if v.nextKey != "" {
			out = append(out, TraceStep{Sel: decodeSel(v.sel), Config: m0.render(m0.Ref.Decode(v.nextKey))})
		}
		return out
	}

	depth := 0
	for len(layer) > 0 && len(res.Violations) < opts.MaxViolations {
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			res.Truncated = true
			break
		}
		// Expand the layer: contiguous chunks, one worker (and one model
		// instance) per chunk; merge back in layer order for determinism.
		exps := make([]refExpansion, len(layer))
		par.Chunks(len(layer), workers, func(w, lo, hi int) {
			model := models[w]
			rng := rand.New(rand.NewSource(1))
			for i := lo; i < hi; i++ {
				exps[i] = refExpandOne(model, keys[layer[i]], depth, opts, rng)
			}
		})
		var next []int32
		for i, ex := range exps {
			prev := layer[i]
			if ex.terminal {
				res.Deadlocks++
			}
			if ex.truncated {
				res.Truncated = true
			}
			if ex.incorrect && depth > res.MaxIncorrectDepth {
				res.MaxIncorrectDepth = depth
			}
			if ex.enabled > res.MaxEnabled {
				res.MaxEnabled = ex.enabled
			}
			res.Transitions += int64(len(ex.succs))
			for _, s := range ex.succs {
				if id, fresh := add(s.key, prev, s.sel); fresh {
					next = append(next, id)
				}
			}
			for _, v := range ex.viols {
				if len(res.Violations) >= opts.MaxViolations {
					break
				}
				d := depth
				if v.nextKey != "" {
					d++
				}
				res.Violations = append(res.Violations, Violation{
					Kind: v.kind, Msg: v.msg, Depth: d, Trace: trace(prev, v),
				})
			}
		}
		res.States = len(keys)
		depth++
		res.Depth = depth
		layer = next
	}
	if len(res.Violations) >= opts.MaxViolations {
		res.Truncated = true
	}
	for _, k := range keys {
		// String-codec footprint: key bytes + string header + map value.
		// (The map bucket overhead is real but unaccounted, so the
		// baseline is, if anything, understated.)
		res.StateBytes += int64(len(k)) + 16 + 4
	}
	return res
}

type refViol struct {
	kind, msg string
	sel       string
	nextKey   string
}

type refSucc struct {
	key string
	sel string
}

type refExpansion struct {
	terminal  bool
	truncated bool
	incorrect bool
	enabled   int
	succs     []refSucc
	viols     []refViol
}

func refExpandOne[S sim.Cloneable[S]](model *Model[S], key string, depth int, opts Options, rng *rand.Rand) refExpansion {
	cfg := model.Ref.Decode(key)
	var ex refExpansion

	wasMeets := spec.MeetsVector(model.Probe, cfg, nil)
	for _, v := range spec.ExclusionViolationsMeets(model.Probe, wasMeets, depth, nil) {
		ex.viols = append(ex.viols, refViol{kind: v.Kind, msg: v.Msg})
	}
	var correctPrev []bool
	if model.Correct != nil {
		correctPrev = make([]bool, model.Prog.NumProcs)
		allCorrect := true
		for p := range correctPrev {
			correctPrev[p] = model.Correct(cfg, p)
			allCorrect = allCorrect && correctPrev[p]
		}
		ex.incorrect = !allCorrect
	}

	var encBuf []byte
	var isMeets []bool
	enabled, branches := refSuccessors(model.Prog, cfg, opts.Mode, rng, opts.MaxBranch, func(sel []int, nxt []S) bool {
		encBuf = model.Ref.Encode(encBuf[:0], nxt)
		s := refSucc{key: string(encBuf), sel: string(appendSel(nil, sel))}
		ex.succs = append(ex.succs, s)
		isMeets = spec.MeetsVector(model.Probe, nxt, isMeets)
		for _, v := range spec.EventViolationsMeets(model.Probe, cfg, wasMeets, isMeets, depth+1, nil) {
			ex.viols = append(ex.viols, refViol{kind: v.Kind, msg: v.Msg, sel: s.sel, nextKey: s.key})
		}
		if correctPrev != nil && (opts.CheckClosure || opts.CheckConvergence) {
			for p := range correctPrev {
				correctNow := model.Correct(nxt, p)
				if opts.CheckClosure && correctPrev[p] && !correctNow {
					ex.viols = append(ex.viols, refViol{
						kind: KindClosure,
						msg:  fmt.Sprintf("process %d was Correct but is not after selection %v", p, sel),
						sel:  s.sel, nextKey: s.key,
					})
				}
				if opts.CheckConvergence && !correctNow {
					ex.viols = append(ex.viols, refViol{
						kind: KindConvergence,
						msg:  fmt.Sprintf("process %d is still incorrect after a full round (selection %v)", p, sel),
						sel:  s.sel, nextKey: s.key,
					})
				}
			}
		}
		return true
	})
	ex.enabled = enabled
	ex.terminal = enabled == 0
	if ex.terminal && opts.CheckDeadlock {
		ex.viols = append(ex.viols, refViol{kind: KindDeadlock, msg: "no process is enabled"})
	}
	if opts.Mode == sim.SelectAllSubsets && enabled > 0 {
		if enabled > 62 {
			ex.truncated = true
		} else if want := (int64(1) << enabled) - 1; int64(branches) < want {
			ex.truncated = true
		}
	}
	return ex
}

// refSuccessors is the PR 2 successor enumeration, frozen: per-branch
// allocation of the selection and next buffers through sim.Apply, which
// re-resolves each selected process's enabled action. The live
// sim.SuccessorsBuf caches those resolutions and reuses scratch; the
// oracle deliberately does not, so the bench baseline measures the
// engine it claims to.
func refSuccessors[S sim.Cloneable[S]](prog *sim.Program[S], cfg []S, mode sim.SelectionMode, rng *rand.Rand, maxBranches int, visit func(sel []int, next []S) bool) (enabled, branches int) {
	en := sim.EnabledOf(prog, cfg, make([]int, 0, prog.NumProcs))
	if len(en) == 0 {
		return 0, 0
	}
	next := make([]S, len(cfg))
	emit := func(sel []int) bool {
		if maxBranches > 0 && branches >= maxBranches {
			return false
		}
		sim.Apply(prog, cfg, next, sel, rng)
		branches++
		return visit(sel, next)
	}
	switch mode {
	case sim.SelectCentral:
		sel := make([]int, 1)
		for _, p := range en {
			sel[0] = p
			if !emit(sel) {
				return len(en), branches
			}
		}
	case sim.SelectSynchronous:
		emit(en)
	case sim.SelectAllSubsets:
		k := len(en)
		if maxBranches <= 0 && k > 30 {
			panic(fmt.Sprintf("sim: unbounded SelectAllSubsets over %d enabled processes", k))
		}
		last := ^uint64(0)
		if k < 64 {
			last = uint64(1)<<k - 1
		}
		sel := make([]int, 0, k)
		for mask := uint64(1); ; mask++ {
			sel = sel[:0]
			for i := 0; i < k && i < 64; i++ {
				if mask&(uint64(1)<<i) != 0 {
					sel = append(sel, en[i])
				}
			}
			if !emit(sel) {
				return len(en), branches
			}
			if mask == last {
				break
			}
		}
	default:
		panic(fmt.Sprintf("sim: unknown SelectionMode %d", int(mode)))
	}
	return len(en), branches
}
