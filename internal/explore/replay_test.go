package explore

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// The counterexample-replay battery: every trace the explorer emits
// must re-execute step for step through sim.Apply and reproduce the
// reported violation on its final transition (or final state, for
// state properties). This guards the mutation-catch tests against
// vacuity in both directions — a checker that fabricates traces and a
// Replay that rubber-stamps them would both fail here.

func replayAll[S sim.Cloneable[S]](t *testing.T, m *Model[S], res *Result) {
	t.Helper()
	if res.Ok() {
		t.Fatal("expected violations to replay")
	}
	for i, v := range res.Violations {
		if err := Replay(m, v, res.Symmetry); err != nil {
			t.Fatalf("violation %d (%s) does not replay: %v\n%s", i, v.Kind, err, RenderTrace(v))
		}
	}
}

func TestReplayMutationTraces(t *testing.T) {
	for _, tc := range []struct {
		mutation string
		init     InitMode
		mode     sim.SelectionMode
		converge bool
	}{
		{MutationLeaveEarly, InitLegit, sim.SelectCentral, false},
		{MutationLeaveEarly, InitLegit, sim.SelectAllSubsets, false},
		{MutationSkipStab, InitCCFull, sim.SelectSynchronous, true},
	} {
		factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3), CCOptions{Init: tc.init, Mutation: tc.mutation})
		res := Explore(factory, Options{
			Mode: tc.mode, CheckDeadlock: true, CheckConvergence: tc.converge, MaxViolations: 4,
		})
		replayAll(t, factory(), res)
	}
}

// TestReplaySymmetryReducedTraces: under symmetry reduction the trace
// holds orbit representatives; transition-property violations must
// still replay (the final event check re-derives the applied successor
// rather than pairing the predecessor with its permuted image).
func TestReplaySymmetryReducedTraces(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.DisjointCommittees(2, 2),
		CCOptions{Init: InitCC, Mutation: MutationLeaveEarly})
	res := Explore(factory, Options{
		Mode: sim.SelectSynchronous, CheckDeadlock: true, Symmetry: true, MaxViolations: 4,
	})
	if !res.Symmetry {
		t.Fatal("symmetry did not engage")
	}
	replayAll(t, factory(), res)
}

func TestReplayDiningDeadlockTrace(t *testing.T) {
	factory, err := Baseline(baseline.Dining, hypergraph.CommitteeRing(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	res := Explore(factory, Options{Mode: sim.SelectCentral, CheckDeadlock: true, MaxViolations: 2})
	replayAll(t, factory(), res)
}

// TestReplayRejectsTamperedTrace: Replay is only a guard if it can
// fail. Corrupting a recorded step or the violation kind must be
// detected.
func TestReplayRejectsTamperedTrace(t *testing.T) {
	factory := mustCC(t, core.CC2, hypergraph.CommitteeRing(3),
		CCOptions{Init: InitLegit, Mutation: MutationLeaveEarly})
	res := Explore(factory, Options{Mode: sim.SelectCentral, CheckDeadlock: true, MaxViolations: 1})
	if res.Ok() {
		t.Fatal("mutation not caught")
	}
	m := factory()
	v := res.Violations[0]

	// Corrupt an intermediate state: the replayed Apply no longer lands
	// on the recorded successor.
	tampered := v
	tampered.Trace = append([]TraceStep(nil), v.Trace...)
	mid := len(tampered.Trace) / 2
	key := append([]uint64(nil), tampered.Trace[mid].Key...)
	key[0] ^= 1
	tampered.Trace[mid].Key = key
	if err := Replay(m, tampered, false); err == nil {
		t.Fatal("tampered trace replayed cleanly")
	}

	// Mislabel the violation kind: the final transition no longer
	// exhibits it.
	wrongKind := v
	wrongKind.Kind = KindDeadlock
	if err := Replay(m, wrongKind, false); err == nil {
		t.Fatal("mislabeled violation replayed cleanly")
	}
}
