package explore

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
)

// The PR 2 string codecs: canonical byte-per-field encodings, now used
// only by the Reference oracle engine (differential battery, bench
// baseline). The live engine stores bit-packed binary encodings — see
// cccodec.go / basecodec.go.

// appendI16 encodes a small signed int (≥ -1) as two bytes.
func appendI16(dst []byte, v int) []byte {
	u := v + 1
	if u < 0 || u > 0xFFFF {
		panic(fmt.Sprintf("explore: value %d out of codec range", v))
	}
	return append(dst, byte(u>>8), byte(u))
}

func getI16(key string, i int) int {
	return int(key[i])<<8 | int(key[i+1]) - 1
}

// encodeCC produces the canonical byte encoding of a CC ∘ TC
// configuration: per process, a status byte, a packed flag byte
// (T, L, A, H, C), and the seven small ints P, R, Lid, Dist, Parent,
// Vis, Des as offset int16s.
func encodeCC(dst []byte, cfg []core.State) []byte {
	for p := range cfg {
		s := &cfg[p]
		flags := byte(0)
		if s.T {
			flags |= 1
		}
		if s.L {
			flags |= 2
		}
		if s.TC.A {
			flags |= 4
		}
		if s.TC.H != 0 {
			flags |= 8
		}
		if s.TC.C != 0 {
			flags |= 16
		}
		dst = append(dst, byte(s.S), flags)
		dst = appendI16(dst, s.P)
		dst = appendI16(dst, s.R)
		dst = appendI16(dst, s.TC.Lid)
		dst = appendI16(dst, s.TC.Dist)
		dst = appendI16(dst, s.TC.Parent)
		dst = appendI16(dst, s.TC.Vis)
		dst = appendI16(dst, s.TC.Des)
	}
	return dst
}

func decodeCC(key string, n int) []core.State {
	const per = 2 + 7*2
	if len(key) != n*per {
		panic(fmt.Sprintf("explore: key length %d for %d processes", len(key), n))
	}
	cfg := make([]core.State, n)
	for p := 0; p < n; p++ {
		o := p * per
		s := &cfg[p]
		s.S = core.Status(key[o])
		flags := key[o+1]
		s.T = flags&1 != 0
		s.L = flags&2 != 0
		s.TC.A = flags&4 != 0
		if flags&8 != 0 {
			s.TC.H = 1
		}
		if flags&16 != 0 {
			s.TC.C = 1
		}
		s.P = getI16(key, o+2)
		s.R = getI16(key, o+4)
		s.TC.Lid = getI16(key, o+6)
		s.TC.Dist = getI16(key, o+8)
		s.TC.Parent = getI16(key, o+10)
		s.TC.Vis = getI16(key, o+12)
		s.TC.Des = getI16(key, o+14)
	}
	return cfg
}

// encodeBase encodes a baseline configuration: per process a status
// byte, Club and Age as offset int16s, a phase byte, a flag byte
// (HasTok, Handing), a fork-vector length byte, then one byte per
// conflict neighbor packing (Fork, Dirty, Asked). The length prefix
// makes the encoding self-describing, so Decode needs no topology.
func encodeBase(dst []byte, cfg []baseline.BState) []byte {
	for p := range cfg {
		s := &cfg[p]
		flags := byte(0)
		if s.HasTok {
			flags |= 1
		}
		if s.Handing {
			flags |= 2
		}
		dst = append(dst, s.S)
		dst = appendI16(dst, s.Club)
		dst = appendI16(dst, s.Age)
		dst = append(dst, s.Phase, flags, byte(len(s.Fork)))
		for i := range s.Fork {
			b := byte(0)
			if s.Fork[i] {
				b |= 1
			}
			if s.Dirty[i] {
				b |= 2
			}
			if s.Asked[i] {
				b |= 4
			}
			dst = append(dst, b)
		}
	}
	return dst
}

func decodeBase(key string, n int) []baseline.BState {
	cfg := make([]baseline.BState, n)
	o := 0
	for p := 0; p < n; p++ {
		s := &cfg[p]
		s.S = key[o]
		s.Club = getI16(key, o+1)
		s.Age = getI16(key, o+3)
		s.Phase = key[o+5]
		flags := key[o+6]
		s.HasTok = flags&1 != 0
		s.Handing = flags&2 != 0
		k := int(key[o+7])
		o += 8
		if k > 0 {
			buf := make([]bool, 3*k)
			s.Fork = buf[0*k : 1*k : 1*k]
			s.Dirty = buf[1*k : 2*k : 2*k]
			s.Asked = buf[2*k : 3*k : 3*k]
			for i := 0; i < k; i++ {
				b := key[o+i]
				s.Fork[i] = b&1 != 0
				s.Dirty[i] = b&2 != 0
				s.Asked[i] = b&4 != 0
			}
			o += k
		}
	}
	if o != len(key) {
		panic(fmt.Sprintf("explore: baseline key length %d decoded as %d", len(key), o))
	}
	return cfg
}
