package explore

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// Symmetry reduction — which permutations qualify, and why.
//
// Exploring modulo a permutation π is exact (same verdict, states
// quotiented into orbits) iff π is an automorphism of the *full
// labeled* transition system: it must preserve the hyperedge structure
// AND commute with every guard and body. The committee-coordination
// programs are deliberately asymmetric in one place — the totally
// ordered identifiers. CC1/CC2/CC3 break ties by maximum identifier
// (core.Alg.maxByID, the CC2 free-node election), the token layer
// elects the minimum identifier, and the dining baseline orients its
// initial forks toward the lower committee index and breaks request
// ties the same way (baseline/dining.go). A nontrivial rotation of a
// ring relabels identifiers cyclically, which is never order-preserving
// on a finite total order, so for those models the rotation is NOT an
// automorphism — quotienting by it would merge states with genuinely
// different futures. TestCCRingRotationNotAnAutomorphism exhibits a
// concrete witness.
//
// What remains symmetric is everything whose dynamics never read the
// identifier order across the permutation:
//
//   - the token-ring baseline: all guards are structural (committee
//     ring order, membership, conflicts), so a hypergraph rotation that
//     also rotates the committee ring order is a full automorphism;
//   - the CC algorithms on topologies whose communication graph splits
//     into order-isomorphic single-committee components (disjoint:K,S):
//     identifiers are only ever compared within a component, and the
//     block permutation maps the k-th smallest identifier of one
//     component to the k-th smallest of another — order-preserving in
//     every comparison any guard performs. (Gated off for InitRandom,
//     which can corrupt a believed-leader id to a foreign component's,
//     reintroducing cross-component comparisons.)
//
// Every declared group is validated empirically by the equivariance
// tests (CheckEquivariance): succ(π(s)) must equal π(succ(s)) as sets.

// ringRotationPerms returns the vertex and edge permutations of the
// generator rotation v ↦ v+1 (mod n) if it is a hypergraph automorphism
// whose induced edge map is itself a cyclic shift of the committee
// indices; ok is false otherwise. CommitteeRing(n) satisfies this with
// eperm(e) = e+1 (mod n).
func ringRotationPerms(h *hypergraph.H) (vperm, eperm []int, ok bool) {
	n, m := h.N(), h.M()
	vperm = make([]int, n)
	for v := 0; v < n; v++ {
		vperm[v] = (v + 1) % n
	}
	eperm = make([]int, m)
	img := make([]int, 0, 8)
	for e := 0; e < m; e++ {
		img = img[:0]
		for _, v := range h.Edge(e) {
			img = append(img, vperm[v])
		}
		sort.Ints(img)
		to := -1
		for f := 0; f < m; f++ {
			if edgeEquals(h.Edge(f), img) {
				to = f
				break
			}
		}
		if to < 0 {
			return nil, nil, false
		}
		eperm[e] = to
	}
	for e := 0; e < m; e++ {
		if eperm[(e+1)%m] != (eperm[e]+1)%m {
			return nil, nil, false
		}
	}
	return vperm, eperm, true
}

func edgeEquals(e hypergraph.Edge, sorted []int) bool {
	if len(e) != len(sorted) {
		return false
	}
	for i, v := range e {
		if sorted[i] != v {
			return false
		}
	}
	return true
}

// composePerm returns a ∘ b (first b, then a).
func composePerm(a, b []int) []int {
	out := make([]int, len(a))
	for i := range out {
		out[i] = a[b[i]]
	}
	return out
}

func isIdentity(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// tokenRingSyms builds the rotation group of the token-ring baseline
// over h, or nil when h admits no ring rotation. Baseline processes are
// n professors followed by m committee agents; a rotation maps
// professor v to vperm[v] and agent n+e to n+eperm[e], relabeling Club
// pointers through eperm. The token-ring dynamics are identifier-free
// and structural, so each rotation is a full automorphism (validated by
// TestTokenRingRotationEquivariance).
func tokenRingSyms(h *hypergraph.H) []func(dst, src []baseline.BState) {
	gv, ge, ok := ringRotationPerms(h)
	if !ok {
		return nil
	}
	n := h.N()
	var syms []func(dst, src []baseline.BState)
	vp, ep := gv, ge
	for !isIdentity(vp) {
		vperm, eperm := vp, ep
		syms = append(syms, func(dst, src []baseline.BState) {
			for p := 0; p < n; p++ {
				s := src[p]
				if s.Club != -1 {
					s.Club = eperm[s.Club]
				}
				dst[vperm[p]] = s
			}
			for e := 0; e < len(eperm); e++ {
				dst[n+eperm[e]] = src[n+e]
			}
		})
		vp, ep = composePerm(gv, vp), composePerm(ge, ep)
	}
	return syms
}

// ccBlockSyms builds the block-permutation group of a CC model whose
// communication graph splits into order-isomorphic single-committee
// components (the disjoint:K,S family), or nil when the topology does
// not qualify. Identifier-valued state (TC.Lid) is relabeled through
// the permutation's induced identifier map, which is order-preserving
// within every component — the property that makes these (and only
// these) permutations automorphisms of the identifier-reading CC
// dynamics.
func ccBlockSyms(alg *core.Alg) []func(dst, src []core.State) {
	h := alg.H
	n, m := h.N(), h.M()
	comps := h.Components()
	if len(comps) < 2 || len(comps) > 6 { // k! canonicalization cost cap
		return nil
	}
	// Each component must be the member set of exactly one committee,
	// and all committees must have the same size.
	blockEdge := make([]int, len(comps))
	size := len(h.Edge(0))
	for e := 0; e < m; e++ {
		if len(h.Edge(e)) != size {
			return nil
		}
	}
	if m != len(comps) {
		return nil
	}
	byID := make([][]int, len(comps)) // component vertices sorted by identifier
	for b, comp := range comps {
		if len(comp) != size {
			return nil
		}
		vs := append([]int(nil), comp...)
		sort.Slice(vs, func(i, j int) bool { return h.ID(vs[i]) < h.ID(vs[j]) })
		byID[b] = vs
		e := h.EdgesOf(vs[0])
		if len(e) != 1 {
			return nil
		}
		blockEdge[b] = e[0]
	}

	var syms []func(dst, src []core.State)
	permuteBlocks(len(comps), func(bp []int) {
		if isIdentity(bp) {
			return
		}
		vperm := make([]int, n)
		eperm := make([]int, m)
		for b, to := range bp {
			for i, v := range byID[b] {
				vperm[v] = byID[to][i]
			}
			eperm[blockEdge[b]] = blockEdge[to]
		}
		syms = append(syms, ccPermSym(alg, vperm, eperm))
	})
	return syms
}

// ccPermSym builds the state map of one CC permutation: vertex fields
// through vperm, edge pointers through eperm, identifiers through the
// induced identifier relabeling, and the CC3 cursor through the local
// incidence orders.
func ccPermSym(alg *core.Alg, vperm, eperm []int) func(dst, src []core.State) {
	h := alg.H
	n := h.N()
	idmap := make(map[int]int, n) // identifier → permuted identifier
	for v := 0; v < n; v++ {
		idmap[h.ID(v)] = h.ID(vperm[v])
	}
	return func(dst, src []core.State) {
		for p := 0; p < n; p++ {
			s := src[p]
			q := vperm[p]
			if s.P != core.NoEdge {
				s.P = eperm[s.P]
			}
			// The cursor is a local index into E_p; transport it through
			// the edge permutation into E_q's order.
			if ep := h.EdgesOf(p); len(ep) > 1 {
				s.R = localPos(h.EdgesOf(q), eperm[ep[s.R%len(ep)]])
			}
			if to, ok := idmap[s.TC.Lid]; ok {
				s.TC.Lid = to
			}
			if s.TC.Parent != -1 {
				s.TC.Parent = vperm[s.TC.Parent]
			}
			if s.TC.Des != -1 {
				s.TC.Des = vperm[s.TC.Des]
			}
			dst[q] = s
		}
	}
}

// permuteBlocks invokes fn with every permutation of [0, k) (Heap's
// algorithm; fn must not retain the slice).
func permuteBlocks(k int, fn func(p []int)) {
	p := make([]int, k)
	for i := range p {
		p[i] = i
	}
	c := make([]int, k)
	fn(p)
	i := 0
	for i < k {
		if c[i] < i {
			if i%2 == 0 {
				p[0], p[i] = p[i], p[0]
			} else {
				p[c[i]], p[i] = p[i], p[c[i]]
			}
			fn(p)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// ccRingRotationSyms builds the (unsound!) rotation maps for a CC model
// on a committee ring. Never declared on a Model: it exists so the
// asymmetry-witness test can demonstrate that the rotation fails
// equivariance — i.e. that refusing -symmetry for CC rings is a
// theorem, not a limitation of the implementation.
func ccRingRotationSyms(alg *core.Alg) []func(dst, src []core.State) {
	gv, ge, ok := ringRotationPerms(alg.H)
	if !ok {
		return nil
	}
	var syms []func(dst, src []core.State)
	vp, ep := gv, ge
	for !isIdentity(vp) {
		syms = append(syms, ccPermSym(alg, vp, ep))
		vp, ep = composePerm(gv, vp), composePerm(ge, ep)
	}
	return syms
}

// CheckEquivariance verifies that every declared automorphism of the
// model commutes with the successor relation at cfg: the encoded
// successor set of π(cfg) must equal the π-image of the encoded
// successor set of cfg. Returns the first discrepancy. This is the
// empirical soundness check behind every Syms declaration (and the
// witness that CC rings cannot declare one).
func CheckEquivariance[S sim.Cloneable[S]](m *Model[S], cfg []S, mode sim.SelectionMode) error {
	n := m.Prog.NumProcs
	enc := make([]uint64, m.Codec.Words)
	img := make([]S, n)
	succSet := func(c []S) map[string]bool {
		set := make(map[string]bool)
		rng := rand.New(rand.NewSource(1))
		sim.Successors(m.Prog, c, mode, rng, 1<<16, func(_ []int, nxt []S) bool {
			m.Codec.Encode(enc, nxt)
			set[wordsString(enc)] = true
			return true
		})
		return set
	}
	base := succSet(cfg)
	for si, sym := range m.Syms {
		sym(img, cfg)
		// π-image of the base successor set.
		want := make(map[string]bool, len(base))
		tmp := make([]S, n)
		symSucc := make([]S, n)
		for k := range base {
			wordsFromString(k, enc)
			m.Codec.Decode(tmp, enc)
			sym(symSucc, tmp)
			m.Codec.Encode(enc, symSucc)
			want[wordsString(enc)] = true
		}
		got := succSet(img)
		if len(got) != len(want) {
			return fmt.Errorf("automorphism %d: %d successors of the image vs %d image successors", si, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				return fmt.Errorf("automorphism %d: an image successor is not a successor of the image", si)
			}
		}
	}
	return nil
}

func wordsString(w []uint64) string {
	b := make([]byte, 0, 8*len(w))
	for _, x := range w {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(x>>s))
		}
	}
	return string(b)
}

func wordsFromString(s string, dst []uint64) {
	for i := range dst {
		var x uint64
		for j := 7; j >= 0; j-- {
			x = x<<8 | uint64(s[i*8+j])
		}
		dst[i] = x
	}
}
