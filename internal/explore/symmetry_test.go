package explore

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// The symmetry battery. Declared automorphism groups are validated two
// ways: equivariance spot checks (succ(π(s)) == π(succ(s)) as sets)
// over engine-reachable states, and the differential property that a
// reduced run reports the same verdict with an orbit-count-consistent
// state total (reduced <= unreduced <= |G ∪ {id}| * reduced). The CC
// ring witness test proves the *absence* of a declaration is a
// theorem, not laziness: the paper's identifier-based tie-breaks make
// the rotation a non-automorphism, and the test exhibits a concrete
// state where the successor sets diverge.

func TestTokenRingDeclaresRotations(t *testing.T) {
	for n := 3; n <= 6; n++ {
		factory, err := Baseline(baseline.TokenRing, hypergraph.CommitteeRing(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(factory().Syms); got != n-1 {
			t.Fatalf("ring:%d: %d rotations declared, want %d", n, got, n-1)
		}
	}
	// Dining must not declare: its fork orientation and request
	// tie-break read the committee index order.
	dining, err := Baseline(baseline.Dining, hypergraph.CommitteeRing(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dining().Syms) != 0 {
		t.Fatal("dining declared rotations despite index-order tie-breaks")
	}
	// Star has no ring rotation.
	star, err := Baseline(baseline.TokenRing, hypergraph.Star(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(star().Syms) != 0 {
		t.Fatal("token-ring on a star declared rotations")
	}
}

// TestTokenRingRotationEquivariance: every declared rotation commutes
// with the successor relation on engine-reachable configurations, in
// every branching mode.
func TestTokenRingRotationEquivariance(t *testing.T) {
	factory, err := Baseline(baseline.TokenRing, hypergraph.CommitteeRing(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	m := factory()
	eng := sim.NewEngine(m.Prog, &sim.WeaklyFair{MaxAge: 4}, 17)
	for step := 0; step < 80; step++ {
		for _, mode := range []sim.SelectionMode{sim.SelectCentral, sim.SelectSynchronous, sim.SelectAllSubsets} {
			if err := CheckEquivariance(m, eng.Config(), mode); err != nil {
				t.Fatalf("step %d, %s: %v", step, mode, err)
			}
		}
		if eng.Step() == nil {
			break
		}
	}
}

// TestTokenRingSymmetryDifferential: the reduced exploration reports
// the same verdict and an orbit-count-consistent state total.
func TestTokenRingSymmetryDifferential(t *testing.T) {
	for _, tc := range []struct {
		n    int
		mode sim.SelectionMode
	}{
		{3, sim.SelectCentral},
		{3, sim.SelectAllSubsets}, // also re-finds the simultaneous-schedule wedge in both runs
		{4, sim.SelectCentral},
	} {
		factory, err := Baseline(baseline.TokenRing, hypergraph.CommitteeRing(tc.n), 1)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Mode: tc.mode, CheckDeadlock: true}
		full := Explore(factory, opts)
		opts.Symmetry = true
		red := Explore(factory, opts)
		if !red.Symmetry {
			t.Fatalf("ring:%d/%s: symmetry did not engage", tc.n, tc.mode)
		}
		if full.Truncated || red.Truncated {
			t.Fatalf("ring:%d/%s: unexpected truncation", tc.n, tc.mode)
		}
		if full.Verdict() != red.Verdict() || full.Ok() != red.Ok() ||
			(full.Deadlocks > 0) != (red.Deadlocks > 0) {
			t.Fatalf("ring:%d/%s: verdicts diverged:\n  full:    %s\n  reduced: %s",
				tc.n, tc.mode, full.Summary(), red.Summary())
		}
		if red.States > full.States || full.States > tc.n*red.States {
			t.Fatalf("ring:%d/%s: orbit-inconsistent state totals: reduced %d, full %d, group order %d",
				tc.n, tc.mode, red.States, full.States, tc.n)
		}
		if red.States == full.States {
			t.Fatalf("ring:%d/%s: symmetry reduced nothing (%d states)", tc.n, tc.mode, red.States)
		}
	}
}

// TestCCDisjointBlockSymmetry: the CC algorithms do admit exact
// symmetry on disjoint:K,S topologies (id comparisons never cross
// components), and the reduction is differential-tested the same way.
func TestCCDisjointBlockSymmetry(t *testing.T) {
	// Two components keep the product state space tractable (the
	// reachable space of disjoint:K,S is the per-component space to the
	// K-th power); the group-declaration shape is asserted for K=3 too.
	h := hypergraph.DisjointCommittees(2, 2)
	factory := mustCC(t, core.CC2, h, CCOptions{Init: InitCC})
	m := factory()
	if got := len(m.Syms); got != 1 { // 2! - 1
		t.Fatalf("disjoint:2,2: %d block permutations declared, want 1", got)
	}
	three := mustCC(t, core.CC2, hypergraph.DisjointCommittees(3, 2), CCOptions{Init: InitCC})
	if got := len(three().Syms); got != 5 { // 3! - 1
		t.Fatalf("disjoint:3,2: %d block permutations declared, want 5", got)
	}

	// Equivariance over engine-reachable states.
	eng := sim.NewEngine(m.Prog, &sim.WeaklyFair{MaxAge: 4}, 23)
	for step := 0; step < 60; step++ {
		if err := CheckEquivariance(m, eng.Config(), sim.SelectCentral); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if eng.Step() == nil {
			break
		}
	}

	// Differential: same verdict, orbit-consistent totals, group order 2.
	opts := Options{Mode: sim.SelectCentral, CheckDeadlock: true, CheckClosure: true}
	full := Explore(factory, opts)
	opts.Symmetry = true
	red := Explore(factory, opts)
	if full.Truncated || red.Truncated {
		t.Fatalf("unexpected truncation:\n  full:    %s\n  reduced: %s", full.Summary(), red.Summary())
	}
	if full.Verdict() != red.Verdict() || !full.Ok() || !red.Ok() {
		t.Fatalf("verdicts diverged:\n  full:    %s\n  reduced: %s", full.Summary(), red.Summary())
	}
	if red.States > full.States || full.States > 2*red.States || red.States == full.States {
		t.Fatalf("orbit-inconsistent totals: reduced %d, full %d", red.States, full.States)
	}
	// InitRandom must not declare symmetry: corrupted leader ids cross
	// components.
	random := mustCC(t, core.CC2, h, CCOptions{Init: InitRandom, RandomCount: 4})
	if len(random().Syms) != 0 {
		t.Fatal("InitRandom declared block symmetry despite foreign-id corruption")
	}
}

// TestCCRingRotationNotAnAutomorphism is the asymmetry witness: the
// rotation of a CC ring fails equivariance on a reachable state —
// which is exactly why the CC factory declares no rotation group and
// cccheck -symmetry refuses CC rings. If this test ever fails to find
// a witness, the refusal has become too conservative and should be
// revisited.
func TestCCRingRotationNotAnAutomorphism(t *testing.T) {
	h := hypergraph.CommitteeRing(3)
	factory := mustCC(t, core.CC2, h, CCOptions{Init: InitLegit})
	m := factory()
	if len(m.Syms) != 0 {
		t.Fatal("CC on a ring declared rotations; the id tie-breaks make that unsound")
	}
	alg, _ := newCCProg(core.CC2, h)
	m.Syms = ccRingRotationSyms(alg) // deliberately unsound, for the witness
	if len(m.Syms) == 0 {
		t.Fatal("no candidate rotations built")
	}
	eng := sim.NewEngine(m.Prog, &sim.WeaklyFair{MaxAge: 4}, 5)
	for step := 0; step < 200; step++ {
		if err := CheckEquivariance(m, eng.Config(), sim.SelectCentral); err != nil {
			t.Logf("witness found at step %d: %v", step, err)
			return
		}
		if eng.Step() == nil {
			break
		}
	}
	t.Fatal("no equivariance witness found: CC ring rotation looked like an automorphism; reconsider declaring it")
}
