package explore

import (
	"bufio"
	"cmp"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"sync"

	"repro/internal/chaos"
)

// Visited is the explorer's concurrent deduplication structure: a
// lock-striped, power-of-two-sharded open-addressing hash set over
// fixed-width binary state encodings, backed by one append-only state
// arena keyed by dense state index.
//
// The BFS uses it in a two-phase rhythm that keeps every report
// byte-identical at any worker count:
//
//  1. During a layer expansion (concurrent), workers Probe each
//     successor directly: known states answer immediately, unknown
//     states become *pending* entries. A pending entry remembers the
//     least (item, branch) layer position that proposed it — a min
//     merge under the shard lock, so the surviving parent/selection is
//     the one the PR 2 serial loop would have picked regardless of
//     which worker got there first.
//  2. Between layers (serial), Drain returns the pending entries
//     sorted by that position; the caller promotes them in order,
//     which appends their encodings to the arena and assigns dense
//     ids — exactly the PR 2 discovery order.
//
// Promoted encodings live only in the arena (slots store the id), so
// the steady-state cost per state is words*8 bytes of arena plus one
// 8-byte slot (amortized over the table's load factor).
//
// Two levers keep the structure scaling past its in-memory comfort
// zone, both exercised only from the serial phase (Housekeep):
//
//   - The stripe-sharded table is *growable*: when the promoted count
//     outgrows the shard count, the whole table re-hashes into twice as
//     many shards (rebuilt from a sequential arena scan, so even a
//     spilled arena is read once, in order). Probe chains and stripe
//     contention stay bounded at any state count instead of individual
//     shards ballooning.
//   - The *cold tail* of the arena can spill to a temp file under a
//     byte budget: ids below the hot watermark (states older than the
//     previous BFS layer — never the ones the current layer expands)
//     move to disk and are read back only when a probe's hash tag
//     matches a cold id, or when a counterexample trace is rebuilt.
type Visited struct {
	words      int
	shards     []vshard
	smask      uint64
	shardShift uint // log2(len(shards)): slot index = hash >> shardShift

	arena    []uint64 // in-memory promoted states: id n at [(n-baseID)*words, ...)
	nstates  int
	serial   bool    // single worker: skip the stripe locks
	drainBuf []Fresh // reused across Drain calls

	// Cold-tail spill (optional; see EnableArenaSpill). Ids < baseID
	// live in spillFile as fixed-width records at offset id*recSize(),
	// in id order. Each record is words*8 payload bytes plus an 8-byte
	// FNV-64a checksum, so a bit flip or torn write in the spill file is
	// detected on read-back (a classified corruption error) instead of
	// silently changing deduplication — which could change the verdict.
	spillDir    string
	arenaBudget int64
	fs          chaos.FS
	spillFile   chaos.File
	baseID      int32
	spilled     int64         // payload bytes written to spillFile
	restoreW    *bufio.Writer // in-flight restore spill writer (readCold flushes it)

	// order is the serial-mode insertion-order log: with one worker,
	// pending entries are inserted in exactly the (item, branch) layer
	// order Drain must return, so Drain walks this log instead of
	// sorting — unless a min-merge or a checkpoint re-probe perturbed
	// the order (Drain verifies monotonicity and falls back to the
	// sort). Parallel runs leave it empty.
	order []pendRef
}

// pendRef locates one pending entry: shard index plus the shard-local
// pending index (both stable until Reset — slot tables may grow, the
// pend buffers only append).
type pendRef struct {
	shard, pidx int32
}

const (
	slotEmpty int32 = -1 // never used
	slotTomb  int32 = -2 // dropped pending entry (capacity bound)
	slotPend  int32 = -3 // pending: pidx names the shard-local entry
)

// reshardPerShard is the promoted-state count per shard past which the
// table doubles its shard count (Housekeep). A variable so tests can
// force re-sharding on small instances.
var reshardPerShard = 1 << 15

// vslot is 8 bytes: the key itself lives in the arena (promoted) or
// the shard's pending buffer, and full hashes are recomputed on resize,
// so the steady-state table cost is 8 bytes per slot. pidx is the
// pending-entry index while pending; promotion repurposes it as a
// 32-bit hash tag, so probe chains reject mismatches without touching
// the arena (the random-access load that would otherwise dominate
// lookups in large spaces — and, with a spilled arena, a disk read).
type vslot struct {
	ref  int32 // state id when >= 0, else one of the sentinels above
	pidx int32 // pending index (ref == slotPend) or hash tag (ref >= 0)
}

type vshard struct {
	mu     sync.Mutex
	slots  []vslot
	filled int // non-empty slots, tombstones included (probe-chain load)
	pend   []pendEntry
	keys   []uint64 // backing storage for pending keys
	cold   []uint64 // scratch for comparing against spilled arena keys
	raw    []byte   // scratch for spilled-record reads (under the stripe lock)
}

// rawBuf returns the shard's spilled-record scratch, grown to n bytes.
func (sh *vshard) rawBuf(n int64) []byte {
	if int64(cap(sh.raw)) < n {
		sh.raw = make([]byte, n)
	}
	return sh.raw[:n]
}

type pendEntry struct {
	hash   uint64
	pos    uint64 // least (item, branch) proposing this state
	parent int32
	slot   int32 // current slot index in the shard's table (growLocked updates it)
	sel    string
	key    []uint64 // aliases vshard.keys
}

// Fresh is one drained pending entry, in deterministic discovery order.
type Fresh struct {
	Pos    uint64
	Parent int32
	Sel    string

	hash        uint64
	key         []uint64
	shard, pidx int32 // the pending entry, for O(1) promotion
}

// selString interns a selection byte string: the overwhelmingly common
// single-process selections (central branching) share one string per
// process index instead of allocating per fresh state.
func selString(sel []byte) string {
	switch len(sel) {
	case 0:
		return ""
	case 1:
		return singleSel[sel[0]]
	}
	return string(sel)
}

var singleSel = func() (t [256]string) {
	for i := range t {
		t[i] = string([]byte{byte(i)})
	}
	return
}()

// NewVisited builds a set for states of the given word width.
func NewVisited(words int) *Visited {
	const nshards = 64
	v := &Visited{words: words, fs: chaos.OS}
	v.setShards(make([]vshard, nshards))
	for i := range v.shards {
		v.shards[i].slots = make([]vslot, 64)
		for j := range v.shards[i].slots {
			v.shards[i].slots[j].ref = slotEmpty
		}
	}
	return v
}

func (v *Visited) setShards(shards []vshard) {
	v.shards = shards
	v.smask = uint64(len(shards) - 1)
	shift := uint(0)
	for 1<<shift < len(shards) {
		shift++
	}
	v.shardShift = shift
}

// EnableArenaSpill activates the cold-tail spill: once the in-memory
// arena exceeds budget bytes, Housekeep moves everything below its hot
// watermark to a temp file under dir ("" = the system temp dir).
// Serial phases only, before any promotion.
func (v *Visited) EnableArenaSpill(dir string, budget int64) {
	v.spillDir, v.arenaBudget = dir, budget
}

// SetFS routes the spill file I/O through fsys (nil = the host
// filesystem). Must be called before the first spill.
func (v *Visited) SetFS(fsys chaos.FS) {
	if fsys == nil {
		fsys = chaos.OS
	}
	v.fs = fsys
}

// recSize is the on-disk footprint of one spilled arena record:
// words*8 payload bytes plus the 8-byte FNV-64a checksum.
func (v *Visited) recSize() int64 { return int64(v.words)*8 + 8 }

// fnv64a is the record checksum (FNV-64a over the payload bytes),
// inlined — the hash/fnv interface allocates a hasher per call, and the
// spill read path runs under the probe stripe lock.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// SpilledBytes reports how many arena bytes live on disk.
func (v *Visited) SpilledBytes() int64 { return v.spilled }

// hashWords mixes a state encoding (splitmix64-style finalizer per
// word; fixed seed, so runs are reproducible).
func hashWords(key []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range key {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
	}
	h ^= h >> 31
	return h
}

// States returns the number of promoted states.
func (v *Visited) States() int { return v.nstates }

// Pending returns the number of pending entries (serial phases only —
// the init-stream bound check; workers never read it). Summed from the
// shard buffers, so the insertion hot path maintains no shared counter.
func (v *Visited) Pending() int {
	n := 0
	for i := range v.shards {
		n += len(v.shards[i].pend)
	}
	return n
}

// Key returns the encoding of promoted state id. For hot ids this is a
// read-only view into the arena (valid until the next promotion batch
// or Housekeep; decode before then or copy); for spilled ids it is a
// freshly allocated copy read back from the spill file (trace
// reconstruction — never the expansion hot path, which only sees ids
// at or above the hot watermark).
func (v *Visited) Key(id int32) []uint64 {
	if id >= v.baseID {
		off := int(id-v.baseID) * v.words
		return v.arena[off : off+v.words : off+v.words]
	}
	buf := make([]uint64, v.words)
	if err := v.readCold(id, buf, make([]byte, v.recSize())); err != nil {
		panic(ioPanic{err})
	}
	return buf
}

// readCold reads a spilled key into buf (len v.words) through the raw
// record scratch (len recSize), verifying the record checksum —
// corruption comes back as *chaos.CorruptError, not a wrong key. During
// a restore the spill file is mid-append: flush the writer first so
// every id below the watermark is readable (no-op once drained).
// Transient read faults are retried in place.
func (v *Visited) readCold(id int32, buf []uint64, raw []byte) error {
	if v.restoreW != nil {
		if err := v.restoreW.Flush(); err != nil {
			return err
		}
	}
	err := chaos.Retry(context.Background(), chaos.DefaultPolicy, func() error {
		_, rerr := v.spillFile.ReadAt(raw, int64(id)*v.recSize())
		return rerr
	})
	if err != nil {
		return err
	}
	payload := raw[:8*v.words]
	if fnv64a(payload) != binary.LittleEndian.Uint64(raw[8*v.words:]) {
		return &chaos.CorruptError{
			Path:   v.spillFile.Name(),
			Detail: fmt.Sprintf("arena record %d: checksum mismatch", id),
		}
	}
	for i := range buf {
		buf[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return nil
}

// Bytes reports the retained in-memory footprint of the dedup
// structures: arena plus slot tables plus pending buffers, entry
// structs included (the README/bench bytes-per-state accounting).
// Spilled arena bytes are excluded — they are the point of the spill —
// and reported separately via SpilledBytes.
func (v *Visited) Bytes() int64 {
	const pendEntrySize = 64 // hash+pos+parent+string header+slice header
	b := int64(cap(v.arena)) * 8
	for i := range v.shards {
		sh := &v.shards[i]
		b += int64(cap(sh.slots)) * 8
		b += int64(cap(sh.keys)) * 8
		b += int64(cap(sh.pend)) * pendEntrySize
	}
	b += int64(cap(v.drainBuf)) * 48
	// The serial insertion-order log is deliberately excluded: it exists
	// only at one worker, and StateBytes must be identical at any -j.
	return b
}

// Probe looks up key (with its precomputed hash) and, when absent,
// records it as pending with the proposing layer position, parent and
// selection. When the key is already pending, the least position wins.
// Returns the promoted id (>= 0) when the state is already part of the
// arena, or a negative value otherwise. sel is copied only when a
// pending entry is created or improved.
func (v *Visited) Probe(key []uint64, hash uint64, pos uint64, parent int32, sel []byte) int32 {
	shIdx := int32(hash & v.smask)
	sh := &v.shards[shIdx]
	if v.serial {
		return v.probeLocked(sh, shIdx, key, hash, pos, parent, sel)
	}
	sh.mu.Lock()
	id := v.probeLocked(sh, shIdx, key, hash, pos, parent, sel)
	sh.mu.Unlock()
	return id
}

// SetSerial marks the set as single-goroutine (one worker): Probe then
// skips the stripe locks. Purely an optimization; results are identical.
func (v *Visited) SetSerial(serial bool) { v.serial = serial }

// refEqual compares promoted state ref against key, reading through
// the shard's cold scratch when the id is spilled (only reached on a
// 32-bit hash-tag match, so cold reads happen essentially only on true
// duplicates of pre-watermark states).
func (v *Visited) refEqual(sh *vshard, ref int32, key []uint64) bool {
	if ref >= v.baseID {
		return wordsEqual(v.arenaKey(ref), key)
	}
	if cap(sh.cold) < v.words {
		sh.cold = make([]uint64, v.words)
	}
	cold := sh.cold[:v.words]
	if err := v.readCold(ref, cold, sh.rawBuf(v.recSize())); err != nil {
		panic(ioPanic{err})
	}
	return wordsEqual(cold, key)
}

func (v *Visited) probeLocked(sh *vshard, shIdx int32, key []uint64, hash uint64, pos uint64, parent int32, sel []byte) int32 {
	mask := uint64(len(sh.slots) - 1)
	idx := (hash >> v.shardShift) & mask
	tag := int32(hash)
	firstTomb := -1
	for {
		s := &sh.slots[idx]
		switch {
		case s.ref == slotEmpty:
			at := int(idx)
			if firstTomb >= 0 {
				at = firstTomb
			} else {
				sh.filled++
			}
			v.insertPending(sh, shIdx, at, key, hash, pos, parent, sel)
			if sh.filled*3 > len(sh.slots)*2 {
				v.growLocked(sh)
			}
			return slotPend
		case s.ref == slotTomb:
			if firstTomb < 0 {
				firstTomb = int(idx)
			}
		case s.ref >= 0:
			if s.pidx == tag && v.refEqual(sh, s.ref, key) {
				return s.ref
			}
		default: // pending
			e := &sh.pend[s.pidx]
			if e.hash == hash && wordsEqual(e.key, key) {
				if pos < e.pos {
					e.pos, e.parent, e.sel = pos, parent, selString(sel)
				}
				return slotPend
			}
		}
		idx = (idx + 1) & mask
	}
}

// Contains reports whether key is already known (promoted or pending)
// without inserting. The explorer calls it only in layers where the
// state bound is already exhausted — no worker inserts then, so the
// lock-free read is race-free. (Cold arena reads under it allocate a
// scratch buffer per call: the shard scratch is not safe to share
// without the stripe lock.)
func (v *Visited) Contains(key []uint64, hash uint64) bool {
	sh := &v.shards[hash&v.smask]
	mask := uint64(len(sh.slots) - 1)
	idx := (hash >> v.shardShift) & mask
	tag := int32(hash)
	var coldArr [4]uint64
	var rawArr [40]byte // recSize for up to 4 words
	for {
		s := &sh.slots[idx]
		switch {
		case s.ref == slotEmpty:
			return false
		case s.ref == slotTomb:
		case s.ref >= 0:
			if s.pidx == tag {
				if s.ref >= v.baseID {
					if wordsEqual(v.arenaKey(s.ref), key) {
						return true
					}
				} else {
					cold := coldArr[:]
					if v.words > len(coldArr) {
						cold = make([]uint64, v.words)
					} else {
						cold = cold[:v.words]
					}
					raw := rawArr[:]
					if rec := v.recSize(); rec > int64(len(rawArr)) {
						raw = make([]byte, rec)
					} else {
						raw = raw[:rec]
					}
					if err := v.readCold(s.ref, cold, raw); err != nil {
						panic(ioPanic{err})
					}
					if wordsEqual(cold, key) {
						return true
					}
				}
			}
		default:
			e := &sh.pend[s.pidx]
			if e.hash == hash && wordsEqual(e.key, key) {
				return true
			}
		}
		idx = (idx + 1) & mask
	}
}

// arenaKey returns the in-memory encoding of a hot promoted id.
func (v *Visited) arenaKey(id int32) []uint64 {
	off := int(id-v.baseID) * v.words
	return v.arena[off : off+v.words]
}

func wordsEqual(a, b []uint64) bool {
	for i, w := range b {
		if a[i] != w {
			return false
		}
	}
	return true
}

func (v *Visited) insertPending(sh *vshard, shIdx int32, at int, key []uint64, hash uint64, pos uint64, parent int32, sel []byte) {
	off := len(sh.keys)
	sh.keys = append(sh.keys, key...)
	sh.pend = append(sh.pend, pendEntry{
		hash: hash, pos: pos, parent: parent, slot: int32(at), sel: selString(sel),
		key: sh.keys[off : off+v.words : off+v.words],
	})
	pidx := int32(len(sh.pend) - 1)
	sh.slots[at] = vslot{ref: slotPend, pidx: pidx}
	if v.serial {
		v.order = append(v.order, pendRef{shard: shIdx, pidx: pidx})
	}
}

// growLocked doubles a shard's slot table, dropping tombstones.
func (v *Visited) growLocked(sh *vshard) {
	old := sh.slots
	sh.slots = make([]vslot, 2*len(old))
	for i := range sh.slots {
		sh.slots[i].ref = slotEmpty
	}
	sh.filled = 0
	mask := uint64(len(sh.slots) - 1)
	for _, s := range old {
		if s.ref == slotEmpty || s.ref == slotTomb {
			continue
		}
		idx := (v.slotHash(sh, &s) >> v.shardShift) & mask
		for sh.slots[idx].ref != slotEmpty {
			idx = (idx + 1) & mask
		}
		sh.slots[idx] = s
		if s.ref == slotPend {
			sh.pend[s.pidx].slot = int32(idx)
		}
		sh.filled++
	}
}

// slotHash recomputes the hash of an occupied slot's key.
func (v *Visited) slotHash(sh *vshard, s *vslot) uint64 {
	if s.ref >= 0 {
		if s.ref >= v.baseID {
			return hashWords(v.arenaKey(s.ref))
		}
		if cap(sh.cold) < v.words {
			sh.cold = make([]uint64, v.words)
		}
		cold := sh.cold[:v.words]
		if err := v.readCold(s.ref, cold, sh.rawBuf(v.recSize())); err != nil {
			panic(ioPanic{err})
		}
		return hashWords(cold)
	}
	return sh.pend[s.pidx].hash
}

// Drain collects the pending entries of all shards, sorted by layer
// position — the deterministic promotion order. Serial phases only;
// the returned slice is reused by the next Drain.
//
// With one worker the insertion-order log already is the position
// order (a serial expansion proposes states in ascending (item, branch)
// position), so Drain walks the log and only falls back to the sort
// when the order was perturbed — a checkpoint restore re-probes its
// pending snapshot in shard order, and its min-merges can lower the
// position of an already-logged entry.
func (v *Visited) Drain() []Fresh {
	out := v.drainBuf[:0]
	if v.serial && len(v.order) > 0 {
		mono := true
		last := uint64(0)
		for _, pr := range v.order {
			e := &v.shards[pr.shard].pend[pr.pidx]
			if e.pos < last {
				mono = false
				break
			}
			last = e.pos
			out = append(out, Fresh{
				Pos: e.pos, Parent: e.parent, Sel: e.sel,
				hash: e.hash, key: e.key, shard: pr.shard, pidx: pr.pidx,
			})
		}
		if mono {
			return v.keepDrainBuf(out)
		}
		out = out[:0]
	}
	for i := range v.shards {
		for j := range v.shards[i].pend {
			e := &v.shards[i].pend[j]
			out = append(out, Fresh{
				Pos: e.pos, Parent: e.parent, Sel: e.sel,
				hash: e.hash, key: e.key, shard: int32(i), pidx: int32(j),
			})
		}
	}
	slices.SortFunc(out, func(a, b Fresh) int { return cmp.Compare(a.Pos, b.Pos) })
	return v.keepDrainBuf(out)
}

// keepDrainBuf reuses the drain buffer while its capacity tracks the
// layer size, but releases the slack after a spike (a huge seed layer
// would otherwise stay resident for the whole run).
func (v *Visited) keepDrainBuf(out []Fresh) []Fresh {
	if cap(out) > 2*len(out)+4096 {
		v.drainBuf = nil
	} else {
		v.drainBuf = out
	}
	return out
}

// Promote assigns the next dense id to a drained entry, appending its
// encoding to the arena. Serial phases only; every drained entry must
// be either promoted or dropped before the next expansion phase.
func (v *Visited) Promote(f Fresh) int32 {
	id := int32(v.nstates)
	v.arena = append(v.arena, f.key...)
	v.nstates++
	v.setRef(f, id)
	return id
}

// Drop discards a drained entry (capacity bound hit): its slot becomes
// a tombstone, so the state may be proposed — and dropped — again, as
// under the PR 2 engine's bound.
func (v *Visited) Drop(f Fresh) { v.setRef(f, slotTomb) }

func (v *Visited) setRef(f Fresh, ref int32) {
	// O(1): the drained entry remembers its shard, pending index and
	// current slot (growLocked keeps the slot current), so promotion
	// does not re-walk the probe chain.
	sh := &v.shards[f.shard]
	e := &sh.pend[f.pidx]
	s := &sh.slots[e.slot]
	if s.ref != slotPend || s.pidx != f.pidx {
		panic("explore: drained entry does not own its recorded slot")
	}
	s.ref, s.pidx = ref, int32(f.hash)
}

// Reset clears the pending side after a promotion batch, reusing the
// buffers. Serial phases only.
func (v *Visited) Reset() {
	for i := range v.shards {
		sh := &v.shards[i]
		// Reuse pending buffers while their capacity tracks the layer
		// size; release the slack after a spike (a huge seed layer
		// would otherwise stay resident — and counted — for the run).
		if cap(sh.pend) > 2*len(sh.pend)+64 {
			sh.pend, sh.keys = nil, nil
		} else {
			sh.pend = sh.pend[:0]
			sh.keys = sh.keys[:0]
		}
	}
	if cap(v.order) > 2*len(v.order)+4096 {
		v.order = nil
	} else {
		v.order = v.order[:0]
	}
}

// Housekeep runs the serial-phase scaling maintenance after a
// promotion batch: re-sharding the table when the state count outgrew
// it, then spilling the cold arena tail (ids below hotFrom — states
// older than the previous BFS layer) once the in-memory arena exceeds
// its budget. Must only be called with no pending entries.
func (v *Visited) Housekeep(hotFrom int32) error {
	if v.Pending() != 0 {
		panic("explore: Housekeep with pending entries")
	}
	for v.nstates > len(v.shards)*reshardPerShard {
		if err := v.reshard(); err != nil {
			return err
		}
	}
	return v.maybeSpillArena(hotFrom)
}

// reshard doubles the shard count and rebuilds every slot table from a
// sequential arena scan (spilled prefix read once, in id order).
// Tombstones are dropped; pending entries must not exist.
func (v *Visited) reshard() error {
	shards := make([]vshard, 2*len(v.shards))
	// Presize each shard so the rebuild does not immediately re-grow:
	// expected states per shard, at most half-loaded, minimum 64 slots.
	per := 64
	for per < 2*v.nstates/len(shards) {
		per *= 2
	}
	for i := range shards {
		shards[i].slots = make([]vslot, per)
		for j := range shards[i].slots {
			shards[i].slots[j].ref = slotEmpty
		}
	}
	v.setShards(shards)
	return v.scanArena(func(id int32, key []uint64) {
		v.restoreSlot(id, key, hashWords(key))
	})
}

// restoreSlot inserts a promoted id into the (rebuilt) table.
func (v *Visited) restoreSlot(id int32, key []uint64, hash uint64) {
	sh := &v.shards[hash&v.smask]
	mask := uint64(len(sh.slots) - 1)
	idx := (hash >> v.shardShift) & mask
	for sh.slots[idx].ref != slotEmpty {
		idx = (idx + 1) & mask
	}
	sh.slots[idx] = vslot{ref: id, pidx: int32(hash)}
	sh.filled++
	if sh.filled*3 > len(sh.slots)*2 {
		v.growLocked(sh)
	}
}

// scanArena streams every promoted key in id order: the spilled prefix
// sequentially from disk, then the in-memory arena. The key slice
// passed to fn is scratch, valid for that call only.
func (v *Visited) scanArena(fn func(id int32, key []uint64)) error {
	if v.baseID > 0 {
		r := bufio.NewReaderSize(io.NewSectionReader(v.spillFile, 0, int64(v.baseID)*v.recSize()), 1<<20)
		raw := make([]byte, v.recSize())
		key := make([]uint64, v.words)
		for id := int32(0); id < v.baseID; id++ {
			if _, err := io.ReadFull(r, raw); err != nil {
				return fmt.Errorf("explore: arena scan: %w", err)
			}
			payload := raw[:8*v.words]
			if fnv64a(payload) != binary.LittleEndian.Uint64(raw[8*v.words:]) {
				return fmt.Errorf("explore: arena scan: %w", &chaos.CorruptError{
					Path:   v.spillFile.Name(),
					Detail: fmt.Sprintf("arena record %d: checksum mismatch", id),
				})
			}
			for i := range key {
				key[i] = binary.LittleEndian.Uint64(payload[8*i:])
			}
			fn(id, key)
		}
	}
	for id := v.baseID; int(id) < v.nstates; id++ {
		fn(id, v.arenaKey(id))
	}
	return nil
}

// maybeSpillArena moves ids in [baseID, hotFrom) to the spill file
// when the in-memory arena exceeds its budget. Sequential append; the
// remaining hot arena is compacted into a fresh allocation so the
// memory is actually released.
func (v *Visited) maybeSpillArena(hotFrom int32) error {
	if v.arenaBudget <= 0 || int64(len(v.arena))*8 <= v.arenaBudget || hotFrom <= v.baseID {
		return nil
	}
	if v.spillFile == nil {
		err := chaos.Retry(context.Background(), chaos.DefaultPolicy, func() error {
			f, cerr := v.fs.CreateTemp(v.spillDir, "cc-arena-")
			if cerr != nil {
				return cerr
			}
			v.spillFile = f
			return nil
		})
		if err != nil {
			return fmt.Errorf("explore: arena spill: %w", err)
		}
	}
	words := int(hotFrom-v.baseID) * v.words
	w := bufio.NewWriterSize(io.NewOffsetWriter(v.spillFile, int64(v.baseID)*v.recSize()), 1<<20)
	rec := make([]byte, v.recSize())
	for off := 0; off < words; off += v.words {
		for i, word := range v.arena[off : off+v.words] {
			binary.LittleEndian.PutUint64(rec[8*i:], word)
		}
		binary.LittleEndian.PutUint64(rec[8*v.words:], fnv64a(rec[:8*v.words]))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("explore: arena spill: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("explore: arena spill: %w", err)
	}
	v.spilled += int64(words) * 8
	rest := make([]uint64, len(v.arena)-words)
	copy(rest, v.arena[words:])
	v.arena = rest
	v.baseID = hotFrom
	return nil
}

// RestoreArena rebuilds the set from a checkpoint stream of nstates
// keys (id order). Ids below hotFrom go straight to the spill file
// when a budget is configured and the arena would exceed it — a
// restored out-of-core run never materializes the full arena in
// memory. The slot tables are pre-sized by the same growth rule a live
// run would have reached, then filled by insertion. Must be called on
// a fresh set (no promotions, no pending).
func (v *Visited) RestoreArena(r io.Reader, nstates int, hotFrom int32) error {
	if v.nstates != 0 || v.Pending() != 0 {
		panic("explore: RestoreArena on a non-empty set")
	}
	// Re-apply the shard-count growth rule a live run would have
	// reached, and presize the slot tables for the final load so the
	// rebuild rarely re-grows mid-insert.
	nshards := len(v.shards)
	for nstates > nshards*reshardPerShard {
		nshards *= 2
	}
	per := 64
	for per < 2*nstates/nshards {
		per *= 2
	}
	shards := make([]vshard, nshards)
	for i := range shards {
		shards[i].slots = make([]vslot, per)
		for j := range shards[i].slots {
			shards[i].slots[j].ref = slotEmpty
		}
	}
	v.setShards(shards)
	spillTo := int32(0)
	if v.arenaBudget > 0 && int64(nstates)*int64(v.words)*8 > v.arenaBudget {
		spillTo = hotFrom
	}
	var spillW *bufio.Writer
	if spillTo > 0 {
		err := chaos.Retry(context.Background(), chaos.DefaultPolicy, func() error {
			f, cerr := v.fs.CreateTemp(v.spillDir, "cc-arena-")
			if cerr != nil {
				return cerr
			}
			v.spillFile = f
			return nil
		})
		if err != nil {
			return fmt.Errorf("explore: arena restore: %w", err)
		}
		spillW = bufio.NewWriterSize(io.NewOffsetWriter(v.spillFile, 0), 1<<20)
		// Ids below the watermark are readable mid-restore (growLocked
		// may rehash them) via readCold's flush hook.
		v.baseID = spillTo
		v.restoreW = spillW
		defer func() { v.restoreW = nil }()
	}
	br := bufio.NewReaderSize(r, 1<<20)
	raw := make([]byte, 8*v.words)
	rec := make([]byte, v.recSize())
	key := make([]uint64, v.words)
	for id := int32(0); int(id) < nstates; id++ {
		if _, err := io.ReadFull(br, raw); err != nil {
			return fmt.Errorf("explore: arena restore: %v", err)
		}
		for i := range key {
			key[i] = binary.LittleEndian.Uint64(raw[8*i:])
		}
		if id < spillTo {
			// The checkpoint stream carries bare keys; spilled records
			// get their per-record checksum appended here.
			copy(rec, raw)
			binary.LittleEndian.PutUint64(rec[8*v.words:], fnv64a(raw))
			if _, err := spillW.Write(rec); err != nil {
				return fmt.Errorf("explore: arena restore: %w", err)
			}
			v.spilled += int64(len(raw))
		} else {
			v.arena = append(v.arena, key...)
		}
		v.restoreSlot(id, key, hashWords(key))
	}
	if spillW != nil {
		if err := spillW.Flush(); err != nil {
			return fmt.Errorf("explore: arena restore: %v", err)
		}
	}
	v.nstates = nstates
	return nil
}

// PendSnap is one pending entry as captured by SnapshotPending.
type PendSnap struct {
	Pos    uint64
	Parent int32
	Sel    string
	Key    []uint64
}

// SnapshotPending captures every pending entry (any shard order — the
// restore re-probes them, and the min-merge makes insertion order
// irrelevant for distinct keys). The Key slices alias shard storage:
// valid until the next Reset.
func (v *Visited) SnapshotPending() []PendSnap {
	var out []PendSnap
	for i := range v.shards {
		for _, e := range v.shards[i].pend {
			out = append(out, PendSnap{Pos: e.pos, Parent: e.parent, Sel: e.sel, Key: e.key})
		}
	}
	return out
}

// Close releases the spill file, if any.
func (v *Visited) Close() {
	if v.spillFile != nil {
		name := v.spillFile.Name()
		v.spillFile.Close()
		v.fs.Remove(name)
		v.spillFile = nil
	}
}
