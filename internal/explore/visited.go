package explore

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Visited is the explorer's concurrent deduplication structure: a
// lock-striped, power-of-two-sharded open-addressing hash set over
// fixed-width binary state encodings, backed by one append-only state
// arena keyed by dense state index.
//
// The BFS uses it in a two-phase rhythm that keeps every report
// byte-identical at any worker count:
//
//  1. During a layer expansion (concurrent), workers Probe each
//     successor directly: known states answer immediately, unknown
//     states become *pending* entries. A pending entry remembers the
//     least (item, branch) layer position that proposed it — a min
//     merge under the shard lock, so the surviving parent/selection is
//     the one the PR 2 serial loop would have picked regardless of
//     which worker got there first.
//  2. Between layers (serial), Drain returns the pending entries
//     sorted by that position; the caller promotes them in order,
//     which appends their encodings to the arena and assigns dense
//     ids — exactly the PR 2 discovery order.
//
// Promoted encodings live only in the arena (slots store the id), so
// the steady-state cost per state is words*8 bytes of arena plus one
// 8-byte slot (amortized over the table's load factor).
type Visited struct {
	words  int
	shards []vshard
	smask  uint64

	arena    []uint64 // promoted states: id n at [n*words, (n+1)*words)
	nstates  int
	serial   bool    // single worker: skip the stripe locks
	drainBuf []Fresh // reused across Drain calls

	pending atomic.Int64
}

const (
	slotEmpty int32 = -1 // never used
	slotTomb  int32 = -2 // dropped pending entry (capacity bound)
	slotPend  int32 = -3 // pending: pidx names the shard-local entry
)

// vslot is 8 bytes: the key itself lives in the arena (promoted) or
// the shard's pending buffer, and full hashes are recomputed on resize,
// so the steady-state table cost is 8 bytes per slot. pidx is the
// pending-entry index while pending; promotion repurposes it as a
// 32-bit hash tag, so probe chains reject mismatches without touching
// the arena (the random-access load that would otherwise dominate
// lookups in large spaces).
type vslot struct {
	ref  int32 // state id when >= 0, else one of the sentinels above
	pidx int32 // pending index (ref == slotPend) or hash tag (ref >= 0)
}

type vshard struct {
	mu     sync.Mutex
	slots  []vslot
	filled int // non-empty slots, tombstones included (probe-chain load)
	pend   []pendEntry
	keys   []uint64 // backing storage for pending keys
}

type pendEntry struct {
	hash   uint64
	pos    uint64 // least (item, branch) proposing this state
	parent int32
	sel    string
	key    []uint64 // aliases vshard.keys
}

// Fresh is one drained pending entry, in deterministic discovery order.
type Fresh struct {
	Pos    uint64
	Parent int32
	Sel    string

	hash uint64
	key  []uint64
}

// selString interns a selection byte string: the overwhelmingly common
// single-process selections (central branching) share one string per
// process index instead of allocating per fresh state.
func selString(sel []byte) string {
	switch len(sel) {
	case 0:
		return ""
	case 1:
		return singleSel[sel[0]]
	}
	return string(sel)
}

var singleSel = func() (t [256]string) {
	for i := range t {
		t[i] = string([]byte{byte(i)})
	}
	return
}()

// NewVisited builds a set for states of the given word width.
func NewVisited(words int) *Visited {
	const nshards = 64
	v := &Visited{words: words, smask: nshards - 1, shards: make([]vshard, nshards)}
	for i := range v.shards {
		v.shards[i].slots = make([]vslot, 64)
		for j := range v.shards[i].slots {
			v.shards[i].slots[j].ref = slotEmpty
		}
	}
	return v
}

// hashWords mixes a state encoding (splitmix64-style finalizer per
// word; fixed seed, so runs are reproducible).
func hashWords(key []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range key {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
	}
	h ^= h >> 31
	return h
}

// States returns the number of promoted states.
func (v *Visited) States() int { return v.nstates }

// Pending returns the number of pending entries (serial phases only —
// the init-stream bound check; workers never read it).
func (v *Visited) Pending() int { return int(v.pending.Load()) }

// Key returns the encoding of promoted state id (read-only view into
// the arena; valid until the next promotion batch reallocates it, so
// decode before the next Drain/promote cycle or copy).
func (v *Visited) Key(id int32) []uint64 {
	off := int(id) * v.words
	return v.arena[off : off+v.words : off+v.words]
}

// Bytes reports the retained footprint of the dedup structures: arena
// plus slot tables plus pending buffers, entry structs included (the
// README/bench bytes-per-state accounting).
func (v *Visited) Bytes() int64 {
	const pendEntrySize = 64 // hash+pos+parent+string header+slice header
	b := int64(cap(v.arena)) * 8
	for i := range v.shards {
		sh := &v.shards[i]
		b += int64(cap(sh.slots)) * 8
		b += int64(cap(sh.keys)) * 8
		b += int64(cap(sh.pend)) * pendEntrySize
	}
	b += int64(cap(v.drainBuf)) * 48
	return b
}

// Probe looks up key (with its precomputed hash) and, when absent,
// records it as pending with the proposing layer position, parent and
// selection. When the key is already pending, the least position wins.
// Returns the promoted id (>= 0) when the state is already part of the
// arena, or a negative value otherwise. sel is copied only when a
// pending entry is created or improved.
func (v *Visited) Probe(key []uint64, hash uint64, pos uint64, parent int32, sel []byte) int32 {
	sh := &v.shards[hash&v.smask]
	if v.serial {
		return v.probeLocked(sh, key, hash, pos, parent, sel)
	}
	sh.mu.Lock()
	id := v.probeLocked(sh, key, hash, pos, parent, sel)
	sh.mu.Unlock()
	return id
}

// SetSerial marks the set as single-goroutine (one worker): Probe then
// skips the stripe locks. Purely an optimization; results are identical.
func (v *Visited) SetSerial(serial bool) { v.serial = serial }

func (v *Visited) probeLocked(sh *vshard, key []uint64, hash uint64, pos uint64, parent int32, sel []byte) int32 {
	mask := uint64(len(sh.slots) - 1)
	idx := (hash >> 6) & mask
	tag := int32(hash)
	firstTomb := -1
	for {
		s := &sh.slots[idx]
		switch {
		case s.ref == slotEmpty:
			at := int(idx)
			if firstTomb >= 0 {
				at = firstTomb
			} else {
				sh.filled++
			}
			v.insertPending(sh, at, key, hash, pos, parent, sel)
			if sh.filled*3 > len(sh.slots)*2 {
				v.growLocked(sh)
			}
			return slotPend
		case s.ref == slotTomb:
			if firstTomb < 0 {
				firstTomb = int(idx)
			}
		case s.ref >= 0:
			if s.pidx == tag && wordsEqual(v.arenaKey(s.ref), key) {
				return s.ref
			}
		default: // pending
			e := &sh.pend[s.pidx]
			if e.hash == hash && wordsEqual(e.key, key) {
				if pos < e.pos {
					e.pos, e.parent, e.sel = pos, parent, selString(sel)
				}
				return slotPend
			}
		}
		idx = (idx + 1) & mask
	}
}

// Contains reports whether key is already known (promoted or pending)
// without inserting. The explorer calls it only in layers where the
// state bound is already exhausted — no worker inserts then, so the
// lock-free read is race-free.
func (v *Visited) Contains(key []uint64, hash uint64) bool {
	sh := &v.shards[hash&v.smask]
	mask := uint64(len(sh.slots) - 1)
	idx := (hash >> 6) & mask
	tag := int32(hash)
	for {
		s := &sh.slots[idx]
		switch {
		case s.ref == slotEmpty:
			return false
		case s.ref == slotTomb:
		case s.ref >= 0:
			if s.pidx == tag && wordsEqual(v.arenaKey(s.ref), key) {
				return true
			}
		default:
			e := &sh.pend[s.pidx]
			if e.hash == hash && wordsEqual(e.key, key) {
				return true
			}
		}
		idx = (idx + 1) & mask
	}
}

func (v *Visited) arenaKey(id int32) []uint64 {
	off := int(id) * v.words
	return v.arena[off : off+v.words]
}

func wordsEqual(a, b []uint64) bool {
	for i, w := range b {
		if a[i] != w {
			return false
		}
	}
	return true
}

func (v *Visited) insertPending(sh *vshard, at int, key []uint64, hash uint64, pos uint64, parent int32, sel []byte) {
	off := len(sh.keys)
	sh.keys = append(sh.keys, key...)
	sh.pend = append(sh.pend, pendEntry{
		hash: hash, pos: pos, parent: parent, sel: selString(sel),
		key: sh.keys[off : off+v.words : off+v.words],
	})
	sh.slots[at] = vslot{ref: slotPend, pidx: int32(len(sh.pend) - 1)}
	v.pending.Add(1)
}

// growLocked doubles a shard's slot table, dropping tombstones.
func (v *Visited) growLocked(sh *vshard) {
	old := sh.slots
	sh.slots = make([]vslot, 2*len(old))
	for i := range sh.slots {
		sh.slots[i].ref = slotEmpty
	}
	sh.filled = 0
	mask := uint64(len(sh.slots) - 1)
	for _, s := range old {
		if s.ref == slotEmpty || s.ref == slotTomb {
			continue
		}
		idx := (v.slotHash(sh, &s) >> 6) & mask
		for sh.slots[idx].ref != slotEmpty {
			idx = (idx + 1) & mask
		}
		sh.slots[idx] = s
		sh.filled++
	}
}

// slotHash recomputes the hash of an occupied slot's key.
func (v *Visited) slotHash(sh *vshard, s *vslot) uint64 {
	if s.ref >= 0 {
		off := int(s.ref) * v.words
		return hashWords(v.arena[off : off+v.words])
	}
	return sh.pend[s.pidx].hash
}

// Drain collects the pending entries of all shards, sorted by layer
// position — the deterministic promotion order. Serial phases only;
// the returned slice is reused by the next Drain.
func (v *Visited) Drain() []Fresh {
	out := v.drainBuf[:0]
	for i := range v.shards {
		for _, e := range v.shards[i].pend {
			out = append(out, Fresh{Pos: e.pos, Parent: e.parent, Sel: e.sel, hash: e.hash, key: e.key})
		}
	}
	slices.SortFunc(out, func(a, b Fresh) int { return cmp.Compare(a.Pos, b.Pos) })
	// Reuse the buffer while its capacity tracks the layer size, but
	// release the slack after a spike (a huge seed layer would otherwise
	// stay resident for the whole run).
	if cap(out) > 2*len(out)+4096 {
		v.drainBuf = nil
	} else {
		v.drainBuf = out
	}
	return out
}

// Promote assigns the next dense id to a drained entry, appending its
// encoding to the arena. Serial phases only; every drained entry must
// be either promoted or dropped before the next expansion phase.
func (v *Visited) Promote(f Fresh) int32 {
	id := int32(v.nstates)
	v.arena = append(v.arena, f.key...)
	v.nstates++
	v.setRef(f, id)
	return id
}

// Drop discards a drained entry (capacity bound hit): its slot becomes
// a tombstone, so the state may be proposed — and dropped — again, as
// under the PR 2 engine's bound.
func (v *Visited) Drop(f Fresh) { v.setRef(f, slotTomb) }

func (v *Visited) setRef(f Fresh, ref int32) {
	sh := &v.shards[f.hash&v.smask]
	mask := uint64(len(sh.slots) - 1)
	idx := (f.hash >> 6) & mask
	for {
		s := &sh.slots[idx]
		if s.ref == slotPend && sh.pend[s.pidx].hash == f.hash && wordsEqual(sh.pend[s.pidx].key, f.key) {
			s.ref, s.pidx = ref, int32(f.hash)
			return
		}
		if s.ref == slotEmpty {
			panic("explore: drained entry not found in its shard")
		}
		idx = (idx + 1) & mask
	}
}

// Reset clears the pending side after a promotion batch, reusing the
// buffers. Serial phases only.
func (v *Visited) Reset() {
	for i := range v.shards {
		sh := &v.shards[i]
		// Reuse pending buffers while their capacity tracks the layer
		// size; release the slack after a spike (a huge seed layer
		// would otherwise stay resident — and counted — for the run).
		if cap(sh.pend) > 2*len(sh.pend)+64 {
			sh.pend, sh.keys = nil, nil
		} else {
			sh.pend = sh.pend[:0]
			sh.keys = sh.keys[:0]
		}
	}
	v.pending.Store(0)
}

// check panics unless the set is in a consistent between-phase state
// (used by tests).
func (v *Visited) check() {
	if v.Pending() != 0 {
		panic(fmt.Sprintf("explore: %d pending entries across a phase boundary", v.Pending()))
	}
}
