// Package fault injects transient faults (paper §2.5) into a running
// CC ∘ TC system: arbitrary, domain-respecting corruption of any subset
// of process variables. Snap-stabilization demands that every meeting
// convened after the last injected fault satisfies the full
// specification, with no recovery delay — the EXP-SNAP experiment drives
// these injectors and checks exactly that.
package fault

import (
	"math/rand"

	"repro/internal/core"
)

// Injector corrupts process states of a core runner.
type Injector struct {
	Alg *core.Alg
	Rng *rand.Rand
}

// New builds an injector with its own randomness stream.
func New(alg *core.Alg, seed int64) *Injector {
	return &Injector{Alg: alg, Rng: rand.New(rand.NewSource(seed))}
}

// CorruptProcess replaces process p's entire state (CC and TC layers)
// with a fresh uniformly random one.
func (in *Injector) CorruptProcess(r *core.Runner, p int) {
	s := in.Alg.RandomState(p, in.Rng)
	r.Engine.MutateProc(p, func(dst *core.State) { *dst = s })
}

// CorruptRandom corrupts k distinct random processes.
func (in *Injector) CorruptRandom(r *core.Runner, k int) []int {
	n := in.Alg.H.N()
	if k > n {
		k = n
	}
	perm := in.Rng.Perm(n)[:k]
	for _, p := range perm {
		in.CorruptProcess(r, p)
	}
	return perm
}

// CorruptPointers scrambles only the edge pointers and statuses of k
// random processes, leaving the TC layer intact — the "inconsistent
// meeting state" fault class.
func (in *Injector) CorruptPointers(r *core.Runner, k int) []int {
	n := in.Alg.H.N()
	if k > n {
		k = n
	}
	perm := in.Rng.Perm(n)[:k]
	for _, p := range perm {
		p := p
		r.Engine.MutateProc(p, func(dst *core.State) {
			s := in.Alg.RandomState(p, in.Rng)
			dst.S, dst.P, dst.T, dst.L = s.S, s.P, s.T, s.L
		})
	}
	return perm
}

// CorruptTokens scrambles only the TC layer of k random processes — the
// "duplicated/lost token" fault class that distinguishes Property 1's
// autonomous stabilization.
func (in *Injector) CorruptTokens(r *core.Runner, k int) []int {
	n := in.Alg.H.N()
	if k > n {
		k = n
	}
	perm := in.Rng.Perm(n)[:k]
	for _, p := range perm {
		p := p
		r.Engine.MutateProc(p, func(dst *core.State) {
			dst.TC = in.Alg.TC.RandomState(p, in.Rng)
		})
	}
	return perm
}
