package fault_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hypergraph"
	"repro/internal/sim"
	"repro/internal/token"
)

func runner(v core.Variant, h *hypergraph.H, seed int64) *core.Runner {
	alg := core.New(v, h, nil)
	env := core.NewAlwaysClient(h.N(), 2)
	return core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed, false)
}

func TestSnapStabilizationAcrossMidRunFaults(t *testing.T) {
	// Run, corrupt mid-run, keep running: no safety violation may ever be
	// observed for meetings convened while running (§2.5: every meeting
	// convened after the faults satisfies the specification; the checker
	// is reset at the fault point because during-fault meetings carry no
	// guarantees).
	for _, variant := range []core.Variant{core.CC1, core.CC2, core.CC3} {
		h := hypergraph.Figure1()
		r := runner(variant, h, 11)
		inj := fault.New(r.Alg, 13)
		r.Run(500)
		for burst := 0; burst < 4; burst++ {
			inj.CorruptRandom(r, 3)
			chk := r.Checker(0) // post-fault monitor
			r.Run(800)
			if !chk.Ok() {
				t.Fatalf("%v burst %d: %v", variant, burst, chk.Violations[0])
			}
			if r.TotalConvenes() == 0 {
				t.Fatalf("%v burst %d: no meetings after faults", variant, burst)
			}
		}
	}
}

func TestTokenLayerFaultsRecover(t *testing.T) {
	h := hypergraph.Figure3()
	r := runner(core.CC2, h, 21)
	inj := fault.New(r.Alg, 23)
	r.Run(400)
	inj.CorruptTokens(r, h.N()) // scramble every TC state
	// The chain corrections must re-establish a single token and meetings
	// must keep convening.
	before := r.TotalConvenes()
	r.Run(6000)
	if r.TotalConvenes()-before < 5 {
		t.Fatalf("only %d meetings after total token corruption", r.TotalConvenes()-before)
	}
	holders := r.Alg.TC.Holders(tcStates(r))
	if len(holders) > 1 {
		t.Fatalf("multiple tokens persisted: %v", holders)
	}
}

func TestPointerFaultsRepairedByStab(t *testing.T) {
	h := hypergraph.CommitteeRing(6)
	r := runner(core.CC1, h, 31)
	inj := fault.New(r.Alg, 33)
	r.Run(300)
	inj.CorruptPointers(r, 4)
	// Corollary 3: Correct(p) for all p within one round.
	r.RunRounds(1, 100000)
	if !r.Alg.AllCorrect(r.Config()) {
		t.Fatal("Correct not restored within one round of the fault")
	}
}

func TestCorruptRandomBounds(t *testing.T) {
	h := hypergraph.CommitteePath(3)
	r := runner(core.CC1, h, 41)
	inj := fault.New(r.Alg, 43)
	hit := inj.CorruptRandom(r, 99) // clamped to n
	if len(hit) != h.N() {
		t.Fatalf("corrupted %d processes, want %d", len(hit), h.N())
	}
}

func tcStates(r *core.Runner) []token.State {
	cfg := r.Config()
	out := make([]token.State, len(cfg))
	for i := range cfg {
		out[i] = cfg[i].TC
	}
	return out
}
