// Package gossip propagates committed verdict keys between ccserve
// peers, bitswap-style, so a fleet behind a load balancer dedupes
// exploration globally instead of per node: a job completed on one
// peer becomes a content-addressed store hit on every peer.
//
// Each node keeps an in-order commit log of the store keys it holds
// (seeded from the store at start, appended on every local completion
// and every ingest) and, per neighbor, a bitswap-style ledger: a push
// cursor (how far into our log we have announced to them), a pull
// cursor (how far into their log we have consumed), and byte/entry
// accounting in both directions. Three wire calls, all on the
// /v1/gossip/* prefix the serving tier mounts:
//
//	POST /v1/gossip/announce     an SSE-framed announce event
//	                             {from, seq, keys}: newly committed
//	                             keys on the sender
//	GET  /v1/gossip/log?after=N  the sender's commit log past N —
//	                             pull-side anti-entropy, how a peer
//	                             that was down catches back up
//	GET  /v1/gossip/entry/{key}  the exact entry line the store
//	                             persists (version, canonical spec,
//	                             FNV-64a sum, result bytes)
//	GET  /v1/gossip/status       ledgers and counters, for operators
//
// Keys a node hears about but does not hold form its want-list; a
// single fetcher drains it, pulling each entry from the announcing
// neighbor. Ingest trusts nothing: the transfer must pass
// store.DecodeEntry — format version, checksum over spec+result, and
// the embedded spec hashing back to the claimed key — before it is
// re-encoded by the local store's own Put. A transfer that fails
// lands in the store's quarantine as a specimen (the PR 6 path) and
// is never served; a peer that is down simply stalls its cursors
// until the anti-entropy pull converges after it returns.
package gossip

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/pubsub"
	"repro/internal/store"
)

// Wire bounds: a hostile peer must not be able to balloon memory with
// a claimed (rather than shipped) size.
const (
	// maxAnnounceBytes bounds an announce body.
	maxAnnounceBytes = 1 << 20
	// maxBatchKeys bounds the keys in one announce or log page.
	maxBatchKeys = 512
	// maxEntryBytes bounds one fetched entry (a verdict with embedded
	// counterexample traces is large; past this is damage).
	maxEntryBytes = 64 << 20
	// wantQueueDepth bounds the pending fetch queue; overflow is
	// dropped and re-discovered by the anti-entropy pull.
	wantQueueDepth = 4096
)

// Config parameterizes a Node.
type Config struct {
	// Self is this node's advertised base URL (loop suppression: it is
	// the announce "from" neighbors fetch from).
	Self string
	// Neighbors are the peer base URLs to gossip with (Self excluded).
	Neighbors []string
	// Store is the local verdict store keys are committed to and
	// served from.
	Store store.Interface
	// Interval is the anti-entropy cadence: how often the node pulls
	// each neighbor's commit log and retries failed announces
	// (default 5s; negative disables the background loop — tests
	// drive Sync explicitly).
	Interval time.Duration
	// Client is the HTTP client for announces and fetches (nil = a
	// client with sane timeouts).
	Client *http.Client
	// OnIngest, if non-nil, is called after a gossiped verdict commits
	// locally (the serving tier counts these and publishes watch
	// events for jobs it has records for).
	OnIngest func(key string)
	// Log, if non-nil, receives one line per ingest, quarantine and
	// neighbor failure.
	Log func(format string, args ...any)
}

// ledger is the per-neighbor bitswap accounting.
type ledger struct {
	neighbor string

	announcedTo  atomic.Int64 // keys pushed to them
	receivedFrom atomic.Int64 // verdicts ingested from them
	servedTo     atomic.Int64 // entries they fetched from us
	bytesIn      atomic.Int64
	bytesOut     atomic.Int64
	corrupt      atomic.Int64 // their transfers we quarantined
	failures     atomic.Int64 // calls to them that failed

	mu         sync.Mutex
	pushCursor int    // our log position announced to them
	pullCursor uint64 // their log position we consumed
}

// LedgerView is the JSON shape of one neighbor's ledger in Status.
type LedgerView struct {
	Neighbor     string `json:"neighbor"`
	AnnouncedTo  int64  `json:"announced_to"`
	ReceivedFrom int64  `json:"received_from"`
	ServedTo     int64  `json:"served_to"`
	BytesIn      int64  `json:"bytes_in"`
	BytesOut     int64  `json:"bytes_out"`
	Corrupt      int64  `json:"corrupt"`
	Failures     int64  `json:"failures"`
	PushCursor   int    `json:"push_cursor"`
	PullCursor   uint64 `json:"pull_cursor"`
}

// Status is the /v1/gossip/status body.
type Status struct {
	Self      string       `json:"self"`
	Seq       uint64       `json:"seq"` // local commit-log length
	Ingested  int64        `json:"ingested"`
	Corrupt   int64        `json:"corrupt"`
	WantDepth int          `json:"want_depth"`
	Neighbors []LedgerView `json:"neighbors"`
}

// want is one pending fetch: a key and the neighbor that has it.
type want struct {
	from string
	key  string
}

// Node is one peer's gossip state. Create with New, wire its
// ServeHTTP under /v1/gossip/, call Committed on every local store
// write, and Close on shutdown.
type Node struct {
	cfg    Config
	client *http.Client

	mu   sync.Mutex
	log  []string            // commit order
	have map[string]struct{} // set of log

	ledMu   sync.Mutex
	ledgers map[string]*ledger

	// retries holds keys whose fetch failed (peer down, transfer
	// corrupt, local write refused), mapped to the neighbor that has
	// them; every anti-entropy round re-queues them. Bounded by the
	// fleet's verdict population — entries leave on successful ingest.
	retryMu sync.Mutex
	retries map[string]string

	wants chan want
	wake  chan struct{}
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	ingested atomic.Int64
	corrupt  atomic.Int64
	dropped  atomic.Int64 // want-queue overflow (recovered by pull)
}

// New builds and starts a Node: the commit log seeds from the store's
// current keys, then the fetcher and (unless disabled) the
// anti-entropy loop start.
func New(cfg Config) *Node {
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Second
	}
	cl := cfg.Client
	if cl == nil {
		cl = &http.Client{Timeout: 30 * time.Second}
	}
	n := &Node{
		cfg: cfg, client: cl,
		have:    map[string]struct{}{},
		ledgers: map[string]*ledger{},
		retries: map[string]string{},
		wants:   make(chan want, wantQueueDepth),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	// Seed: everything already in the store is announceable. Scan is
	// key-sorted — a deterministic (if historically inaccurate) commit
	// order is all the log needs.
	n.cfg.Store.Scan(func(key string, _ store.JobSpec, _ []byte) error {
		n.log = append(n.log, key)
		n.have[key] = struct{}{}
		return nil
	})
	for _, p := range cfg.Neighbors {
		n.ledgers[p] = &ledger{neighbor: p}
	}
	n.wg.Add(1)
	go n.fetcher()
	if cfg.Interval > 0 {
		n.wg.Add(1)
		go n.loop()
	}
	return n
}

// Close stops the background goroutines and waits for them.
func (n *Node) Close() {
	n.once.Do(func() { close(n.stop) })
	n.wg.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Log != nil {
		n.cfg.Log(format, args...)
	}
}

// Committed records a locally written store key and nudges the
// announcer. Idempotent per key; safe from any goroutine; never
// blocks.
func (n *Node) Committed(key string) {
	if !validKey(key) {
		return
	}
	n.mu.Lock()
	if _, dup := n.have[key]; dup {
		n.mu.Unlock()
		return
	}
	n.have[key] = struct{}{}
	n.log = append(n.log, key)
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// Seq returns the local commit-log length.
func (n *Node) Seq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return uint64(len(n.log))
}

// Ingested returns the gossiped verdicts committed locally (a
// /metrics counter).
func (n *Node) Ingested() int64 { return n.ingested.Load() }

// Corrupt returns the transfers quarantined at ingest (a /metrics
// counter).
func (n *Node) Corrupt() int64 { return n.corrupt.Load() }

func (n *Node) has(key string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.have[key]
	return ok
}

// logPage returns keys (after, after+maxBatchKeys] and the log length.
func (n *Node) logPage(after uint64) (seq uint64, keys []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	seq = uint64(len(n.log))
	if after >= seq {
		return seq, nil
	}
	end := min(after+maxBatchKeys, seq)
	return seq, append([]string(nil), n.log[after:end]...)
}

func (n *Node) ledger(neighbor string) *ledger {
	n.ledMu.Lock()
	defer n.ledMu.Unlock()
	l := n.ledgers[neighbor]
	if l == nil {
		l = &ledger{neighbor: neighbor}
		n.ledgers[neighbor] = l
	}
	return l
}

// enqueue adds keys we lack to the want-list. Overflow is dropped:
// the anti-entropy pull re-discovers anything lost.
func (n *Node) enqueue(from string, keys []string) (wanted int) {
	for _, k := range keys {
		if !validKey(k) || n.has(k) {
			continue
		}
		select {
		case n.wants <- want{from: from, key: k}:
			wanted++
		default:
			n.dropped.Add(1)
			return wanted
		}
	}
	return wanted
}

// loop is the anti-entropy heartbeat: push unannounced log suffixes,
// pull neighbors' logs past our cursor.
func (n *Node) loop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-n.wake:
		case <-tick.C:
			n.pullAll()
			n.requeueRetries()
		}
		n.pushAll()
	}
}

// Sync runs one full push+pull+retry round synchronously — the test
// hook (Interval < 0 disables the background loop) and the
// convergence primitive: after every peer's Sync has run without new
// commits or failures, fleets are key-identical.
func (n *Node) Sync() {
	n.pushAll()
	n.pullAll()
	n.requeueRetries()
}

// addRetry remembers a key whose transfer failed so the next
// anti-entropy round tries again — this is what makes a fleet
// converge after a peer returns from the dead.
func (n *Node) addRetry(w want) {
	n.retryMu.Lock()
	if _, dup := n.retries[w.key]; !dup {
		n.retries[w.key] = w.from
	}
	n.retryMu.Unlock()
}

// requeueRetries re-enqueues every failed key still missing.
func (n *Node) requeueRetries() {
	n.retryMu.Lock()
	pending := make([]want, 0, len(n.retries))
	for k, from := range n.retries {
		if n.has(k) {
			delete(n.retries, k)
			continue
		}
		pending = append(pending, want{from: from, key: k})
	}
	n.retryMu.Unlock()
	for _, w := range pending {
		n.enqueue(w.from, []string{w.key})
	}
}

// pushAll announces the unannounced log suffix to every neighbor.
func (n *Node) pushAll() {
	for _, peer := range n.cfg.Neighbors {
		l := n.ledger(peer)
		for {
			l.mu.Lock()
			cursor := l.pushCursor
			l.mu.Unlock()
			seq, keys := n.logPage(uint64(cursor))
			if len(keys) == 0 {
				break
			}
			if err := n.announce(peer, seq, keys); err != nil {
				l.failures.Add(1)
				n.logf("gossip: announce %d key(s) to %s failed: %v", len(keys), peer, err)
				break // retry from the same cursor next round
			}
			l.mu.Lock()
			l.pushCursor = cursor + len(keys)
			l.mu.Unlock()
			l.announcedTo.Add(int64(len(keys)))
		}
	}
}

// pullAll consumes every neighbor's commit log past our pull cursor.
func (n *Node) pullAll() {
	for _, peer := range n.cfg.Neighbors {
		l := n.ledger(peer)
		for {
			l.mu.Lock()
			cursor := l.pullCursor
			l.mu.Unlock()
			seq, keys, err := n.pullLog(peer, cursor)
			if err != nil {
				l.failures.Add(1)
				break
			}
			if len(keys) > 0 {
				n.enqueue(peer, keys)
			}
			next := min(cursor+uint64(len(keys)), seq)
			if len(keys) == 0 && next < seq {
				// Defensive: a peer claiming more log than it pages out
				// would otherwise spin this loop.
				next = seq
			}
			l.mu.Lock()
			l.pullCursor = next
			l.mu.Unlock()
			if next >= seq {
				break
			}
		}
	}
}

// announceMsg is the announce event's data payload.
type announceMsg struct {
	From string   `json:"from"`
	Seq  uint64   `json:"seq"`
	Keys []string `json:"keys"`
}

// announce POSTs one SSE-framed announce event to a neighbor.
func (n *Node) announce(peer string, seq uint64, keys []string) error {
	data, err := json.Marshal(announceMsg{From: n.cfg.Self, Seq: seq, Keys: keys})
	if err != nil {
		return err
	}
	frame := pubsub.AppendSSE(nil, pubsub.Event{Seq: seq, Type: pubsub.TypeAnnounce, Data: data})
	resp, err := n.client.Post(peer+"/v1/gossip/announce", "text/event-stream", strings.NewReader(string(frame)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gossip: %s answered %d to announce", peer, resp.StatusCode)
	}
	return nil
}

// pullLog GETs one page of a neighbor's commit log.
func (n *Node) pullLog(peer string, after uint64) (seq uint64, keys []string, err error) {
	resp, err := n.client.Get(fmt.Sprintf("%s/v1/gossip/log?after=%d", peer, after))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, nil, fmt.Errorf("gossip: %s answered %d to log pull", peer, resp.StatusCode)
	}
	ev, err := pubsub.NewDecoder(io.LimitReader(resp.Body, maxAnnounceBytes)).Next()
	if err != nil {
		return 0, nil, err
	}
	msg, err := decodeAnnounce(ev)
	if err != nil {
		return 0, nil, err
	}
	return msg.Seq, msg.Keys, nil
}

// decodeAnnounce validates an announce event's payload: bounded key
// count, every key well-formed. The SSE layer already bounded the
// bytes and validated the JSON.
func decodeAnnounce(ev pubsub.Event) (announceMsg, error) {
	if ev.Type != pubsub.TypeAnnounce {
		return announceMsg{}, fmt.Errorf("gossip: unexpected event type %q", ev.Type)
	}
	var msg announceMsg
	if err := json.Unmarshal(ev.Data, &msg); err != nil {
		return announceMsg{}, fmt.Errorf("gossip: bad announce payload: %v", err)
	}
	if len(msg.Keys) > maxBatchKeys {
		return announceMsg{}, fmt.Errorf("gossip: announce carries %d keys, cap is %d", len(msg.Keys), maxBatchKeys)
	}
	for _, k := range msg.Keys {
		if !validKey(k) {
			return announceMsg{}, fmt.Errorf("gossip: malformed key %q in announce", k)
		}
	}
	return msg, nil
}

// validKey: a content key is exactly 64 lower-case hex digits.
func validKey(k string) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// fetcher drains the want-list: one goroutine, so a slow neighbor
// throttles ingestion, never the serving tier.
func (n *Node) fetcher() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case w := <-n.wants:
			n.fetchOne(w)
		}
	}
}

// fetchOne pulls one wanted entry and ingests it through the full
// verification gauntlet.
func (n *Node) fetchOne(w want) {
	if n.has(w.key) {
		return // raced a local completion or another announce
	}
	l := n.ledger(w.from)
	u := fmt.Sprintf("%s/v1/gossip/entry/%s?from=%s", w.from, w.key, url.QueryEscape(n.cfg.Self))
	resp, err := n.client.Get(u)
	if err != nil {
		l.failures.Add(1)
		n.addRetry(w)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		l.failures.Add(1)
		n.addRetry(w)
		return
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil || len(data) > maxEntryBytes {
		l.failures.Add(1)
		n.addRetry(w)
		return
	}
	l.bytesIn.Add(int64(len(data)))

	spec, res, err := store.DecodeEntry(w.key, data)
	switch {
	case err == nil:
	case err == store.ErrEntryDrift:
		// A peer on another entry-format version: skip, no quarantine.
		return
	default:
		// Checksum/structure/key-match failure: the specimen goes to
		// quarantine and nothing of it touches the live store — an
		// unverified verdict is never served.
		n.cfg.Store.QuarantineBytes("gossip-"+w.key[:12]+".entry", data, chaos.Describe(err))
		l.corrupt.Add(1)
		n.corrupt.Add(1)
		n.addRetry(w) // a later transfer may be clean; the specimen is kept either way
		n.logf("gossip: quarantined transfer of %s from %s: %v", w.key[:12], w.from, err)
		return
	}
	// Local Put re-encodes from the decoded spec+result — byte-identical
	// to every other store holding this verdict, and re-checksummed by
	// the engine on the way down.
	if _, err := n.cfg.Store.Put(spec, res); err != nil {
		l.failures.Add(1)
		n.addRetry(w)
		n.logf("gossip: ingest Put of %s failed: %v", w.key[:12], err)
		return
	}
	n.retryMu.Lock()
	delete(n.retries, w.key)
	n.retryMu.Unlock()
	l.receivedFrom.Add(1)
	n.ingested.Add(1)
	n.logf("gossip: ingested %s from %s", w.key[:12], w.from)
	n.Committed(w.key) // extends the log and re-announces onward
	if n.cfg.OnIngest != nil {
		n.cfg.OnIngest(w.key)
	}
}

// ServeHTTP serves the /v1/gossip/* wire. The serving tier mounts it
// under that prefix (peer traffic is exempt from client load
// shedding, like the cluster tier).
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/gossip/announce" && r.Method == http.MethodPost:
		n.handleAnnounce(w, r)
	case r.URL.Path == "/v1/gossip/log" && r.Method == http.MethodGet:
		n.handleLog(w, r)
	case strings.HasPrefix(r.URL.Path, "/v1/gossip/entry/") && r.Method == http.MethodGet:
		n.handleEntry(w, r)
	case r.URL.Path == "/v1/gossip/status" && r.Method == http.MethodGet:
		n.handleStatus(w, r)
	default:
		code := http.StatusNotFound
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			code = http.StatusMethodNotAllowed
		}
		writeErr(w, code, "unknown gossip route %s %s", r.Method, r.URL.Path)
	}
}

// writeErr mirrors the serving tier's JSON error envelope so the
// gossip surface refuses in the same shape as every other endpoint.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	class := "bad_request"
	switch code {
	case http.StatusNotFound:
		class = "not_found"
	case http.StatusMethodNotAllowed:
		class = "method_not_allowed"
	}
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...), "class": class})
	w.Write(append(body, '\n'))
}

func (n *Node) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	ev, err := pubsub.NewDecoder(http.MaxBytesReader(w, r.Body, maxAnnounceBytes)).Next()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad announce frame: %v", err)
		return
	}
	msg, err := decodeAnnounce(ev)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if msg.From == "" {
		writeErr(w, http.StatusBadRequest, "announce without a from URL")
		return
	}
	wanted := n.enqueue(msg.From, msg.Keys)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"wanted\":%d}\n", wanted)
}

func (n *Node) handleLog(w http.ResponseWriter, r *http.Request) {
	after := uint64(0)
	if v := r.URL.Query().Get("after"); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad after cursor %q", v)
			return
		}
		after = parsed
	}
	seq, keys := n.logPage(after)
	data, err := json.Marshal(announceMsg{From: n.cfg.Self, Seq: seq, Keys: keys})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Write(pubsub.AppendSSE(nil, pubsub.Event{Seq: max(seq, 1), Type: pubsub.TypeAnnounce, Data: data}))
}

func (n *Node) handleEntry(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/gossip/entry/")
	if !validKey(key) {
		writeErr(w, http.StatusBadRequest, "malformed entry key %q", key)
		return
	}
	spec, res, _, ok := n.cfg.Store.GetByKey(key)
	if !ok {
		writeErr(w, http.StatusNotFound, "no entry for %s", key)
		return
	}
	line, err := store.EncodeEntry(spec, res)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if from := r.URL.Query().Get("from"); from != "" {
		l := n.ledger(from)
		l.servedTo.Add(1)
		l.bytesOut.Add(int64(len(line)))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(line)
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := n.StatusView()
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.MarshalIndent(st, "", "  ")
	w.Write(append(body, '\n'))
}

// StatusView snapshots the node for /v1/gossip/status and tests.
func (n *Node) StatusView() Status {
	st := Status{
		Self:      n.cfg.Self,
		Seq:       n.Seq(),
		Ingested:  n.ingested.Load(),
		Corrupt:   n.corrupt.Load(),
		WantDepth: len(n.wants),
	}
	n.ledMu.Lock()
	defer n.ledMu.Unlock()
	for _, peer := range n.cfg.Neighbors {
		l := n.ledgers[peer]
		l.mu.Lock()
		st.Neighbors = append(st.Neighbors, LedgerView{
			Neighbor:     l.neighbor,
			AnnouncedTo:  l.announcedTo.Load(),
			ReceivedFrom: l.receivedFrom.Load(),
			ServedTo:     l.servedTo.Load(),
			BytesIn:      l.bytesIn.Load(),
			BytesOut:     l.bytesOut.Load(),
			Corrupt:      l.corrupt.Load(),
			Failures:     l.failures.Load(),
			PushCursor:   l.pushCursor,
			PullCursor:   l.pullCursor,
		})
		l.mu.Unlock()
	}
	return st
}
