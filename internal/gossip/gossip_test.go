package gossip_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/explore"
	"repro/internal/gossip"
	"repro/internal/store"
)

// peer is one gossip node behind a real HTTP listener, with fault
// injection taps the chaos battery flips: down refuses every request
// (a dead process), frameBudget arms a chaos.PeerLoss-shaped death
// (serve N more requests, then go dark), corruptEntries flips a byte
// in every /entry transfer (a peer with a damaged disk or a hostile
// middlebox).
type peer struct {
	st   store.Interface
	node *gossip.Node
	srv  *httptest.Server
	url  string

	// wired publishes node to the server goroutines (the fleet is
	// built listeners-first, so the handler learns its node late).
	wired atomic.Pointer[gossip.Node]

	down           atomic.Bool
	armed          atomic.Bool
	frameBudget    atomic.Int64
	corruptEntries atomic.Bool
}

func (p *peer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	node := p.wired.Load()
	if node == nil {
		http.Error(w, "peer not wired yet", http.StatusServiceUnavailable)
		return
	}
	if p.down.Load() {
		http.Error(w, "peer dead", http.StatusServiceUnavailable)
		return
	}
	if p.armed.Load() {
		if p.frameBudget.Add(-1) < 0 {
			p.down.Store(true)
			http.Error(w, "peer dead", http.StatusServiceUnavailable)
			return
		}
	}
	if p.corruptEntries.Load() && strings.HasPrefix(r.URL.Path, "/v1/gossip/entry/") {
		rec := httptest.NewRecorder()
		node.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if rec.Code == http.StatusOK && len(body) > 16 {
			body[len(body)/2] ^= 0x41
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(body)
		return
	}
	node.ServeHTTP(w, r)
}

// kill arms a chaos.PeerLoss against the peer: FramesBeforeDeath more
// gossip requests are served, then every call fails until revive.
func (p *peer) kill(loss chaos.PeerLoss) {
	p.frameBudget.Store(int64(loss.FramesBeforeDeath))
	p.armed.Store(true)
}

func (p *peer) revive() {
	p.armed.Store(false)
	p.down.Store(false)
}

// newFleet wires n peers over real listeners. topo[i] lists i's
// neighbor indices; nil means full mesh.
func newFleet(t *testing.T, n int, topo [][]int) []*peer {
	t.Helper()
	peers := make([]*peer, n)
	for i := range peers {
		p := &peer{}
		p.srv = httptest.NewServer(p)
		p.url = p.srv.URL
		t.Cleanup(p.srv.Close)
		peers[i] = p
	}
	for i, p := range peers {
		var neighbors []string
		if topo == nil {
			for j, q := range peers {
				if j != i {
					neighbors = append(neighbors, q.url)
				}
			}
		} else {
			for _, j := range topo[i] {
				neighbors = append(neighbors, peers[j].url)
			}
		}
		st, err := store.OpenEngine(store.EngineDir, t.TempDir(), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		p.st = st
		p.node = gossip.New(gossip.Config{
			Self: p.url, Neighbors: neighbors, Store: st,
			Interval: -1, // tests drive Sync explicitly
			Log:      t.Logf,
		})
		p.wired.Store(p.node)
		t.Cleanup(p.node.Close)
	}
	return peers
}

// fakeResult fabricates a deterministic verdict (same shape the store
// battery uses) so gossip tests do not pay for explorations.
func fakeResult(states int) *explore.Result {
	return &explore.Result{
		Model: "fake", Inits: 1, States: states,
		Transitions: int64(states) * 3, Depth: 2, MaxIncorrectDepth: -1,
	}
}

func seedSpec(i int) store.JobSpec {
	return store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "random", RandomInits: 4, Seed: int64(i + 1)}
}

// commit writes a verdict into the peer's store and tells its node.
func commit(t *testing.T, p *peer, spec store.JobSpec) string {
	t.Helper()
	if _, err := p.st.Put(spec, fakeResult(10+int(spec.Seed))); err != nil {
		t.Fatal(err)
	}
	p.node.Committed(spec.Key())
	return spec.Key()
}

// converge drives Sync rounds on every peer until all stores hold
// wantLen entries (the fetch side is asynchronous, so this polls).
func converge(t *testing.T, peers []*peer, wantLen int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for _, p := range peers {
			p.node.Sync()
		}
		done := true
		for _, p := range peers {
			if p.st.Len() != wantLen {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, p := range peers {
		t.Logf("peer %d: len=%d status=%+v", i, p.st.Len(), p.node.StatusView())
	}
	t.Fatalf("fleet did not converge to %d entries", wantLen)
}

// identical asserts every peer serves byte-identical result bytes for
// the spec — the gossip-plane version of the store's byte-identity
// contract.
func identical(t *testing.T, peers []*peer, spec store.JobSpec) {
	t.Helper()
	var ref []byte
	for i, p := range peers {
		_, raw, ok := p.st.Get(spec)
		if !ok {
			t.Fatalf("peer %d misses %s", i, spec.Key()[:12])
		}
		if i == 0 {
			ref = raw
			continue
		}
		if !bytes.Equal(ref, raw) {
			t.Fatalf("peer %d serves different bytes for %s", i, spec.Key()[:12])
		}
	}
}

// TestGossipPropagates: a verdict committed on one peer becomes a
// byte-identical store hit on every peer of a full mesh, both for
// entries present before the node started (log seeding) and for live
// commits.
func TestGossipPropagates(t *testing.T) {
	peers := newFleet(t, 3, nil)
	// Live commits on peer 0.
	specs := []store.JobSpec{seedSpec(0), seedSpec(1), seedSpec(2)}
	for _, s := range specs {
		commit(t, peers[0], s)
	}
	// And one on peer 2, so propagation is not one-directional.
	specs = append(specs, seedSpec(3))
	commit(t, peers[2], specs[3])

	converge(t, peers, len(specs))
	for _, s := range specs {
		identical(t, peers, s)
	}
	if got := peers[1].node.Ingested(); got != int64(len(specs)) {
		t.Fatalf("peer 1 ingested %d, want %d", got, len(specs))
	}
	for _, p := range peers {
		if p.st.Quarantined() != 0 {
			t.Fatal("clean propagation quarantined something")
		}
	}
}

// TestGossipSeedsFromStore: a node started over a populated store
// has its existing entries in the commit log, announceable from the
// first round.
func TestGossipSeedsFromStore(t *testing.T) {
	st, err := store.OpenEngine(store.EngineDir, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 4; i++ {
		if _, err := st.Put(seedSpec(i), fakeResult(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	n := gossip.New(gossip.Config{Self: "http://seeded", Store: st, Interval: -1})
	defer n.Close()
	if n.Seq() != 4 {
		t.Fatalf("seeded node Seq %d, want 4", n.Seq())
	}
}

// TestGossipTransitive: on a line topology A—B—C, a verdict committed
// on A reaches C through B's re-announce.
func TestGossipTransitive(t *testing.T) {
	peers := newFleet(t, 3, [][]int{{1}, {0, 2}, {1}})
	spec := seedSpec(7)
	commit(t, peers[0], spec)
	converge(t, peers, 1)
	identical(t, peers, spec)
}

// TestGossipCorruptIngestQuarantines is the corrupt-transfer half of
// the chaos battery: every /entry byte-flip must be quarantined as a
// specimen and never committed — an unverified verdict is never
// served — and once the fault heals the fleet converges anyway.
func TestGossipCorruptIngestQuarantines(t *testing.T) {
	peers := newFleet(t, 2, nil)
	spec := seedSpec(9)
	key := commit(t, peers[0], spec)

	peers[0].corruptEntries.Store(true)
	// Drive rounds until the corrupt transfer has been seen and
	// quarantined at least once.
	deadline := time.Now().Add(10 * time.Second)
	for peers[1].node.Corrupt() == 0 && time.Now().Before(deadline) {
		peers[1].node.Sync()
		peers[0].node.Sync()
		time.Sleep(5 * time.Millisecond)
	}
	if peers[1].node.Corrupt() == 0 {
		t.Fatal("corrupt transfer never detected")
	}
	if peers[1].st.Quarantined() == 0 {
		t.Fatal("corrupt transfer not preserved in quarantine")
	}
	// The store never served the damaged verdict.
	if _, _, _, ok := peers[1].st.GetByKey(key); ok {
		t.Fatal("unverified verdict is being served")
	}
	if peers[1].st.Len() != 0 {
		t.Fatal("corrupt transfer reached the live store")
	}

	// Heal the wire: the retry path must converge to byte identity.
	peers[0].corruptEntries.Store(false)
	converge(t, peers, 1)
	identical(t, peers, spec)
	if peers[1].st.Quarantined() == 0 {
		t.Fatal("quarantined specimen vanished after convergence")
	}
}

// TestGossipPeerLossConverges is the peer-death half of the chaos
// battery, parameterized by chaos.PeerLoss: peer 1 dies after a
// bounded number of served gossip frames, the survivors keep
// exchanging verdicts, and once the peer returns the whole fleet
// converges byte-identically with nothing quarantined.
func TestGossipPeerLossConverges(t *testing.T) {
	losses, err := chaos.ParsePeerLoss("1@0+3")
	if err != nil {
		t.Fatal(err)
	}
	loss := losses[0]

	peers := newFleet(t, 3, nil)
	var specs []store.JobSpec
	for i := 0; i < 3; i++ {
		specs = append(specs, seedSpec(i))
		commit(t, peers[0], specs[i])
	}
	peers[loss.Peer].kill(loss)

	// The survivors converge with each other regardless of the death.
	survivors := []*peer{peers[0], peers[2]}
	converge(t, survivors, len(specs))

	// More verdicts land while the peer is dark.
	for i := 3; i < 6; i++ {
		specs = append(specs, seedSpec(i))
		commit(t, peers[2], specs[i])
	}
	converge(t, survivors, len(specs))
	if peers[loss.Peer].st.Len() == int(len(specs)) {
		t.Fatal("dead peer somehow fully converged")
	}
	// Its neighbors recorded the failures.
	var failures int64
	for _, p := range survivors {
		for _, lv := range p.node.StatusView().Neighbors {
			if lv.Neighbor == peers[loss.Peer].url {
				failures += lv.Failures
			}
		}
	}
	if failures == 0 {
		t.Fatal("no neighbor recorded a failure against the dead peer")
	}

	// Resurrection: the fleet converges, byte-identically, clean.
	peers[loss.Peer].revive()
	converge(t, peers, len(specs))
	for _, s := range specs {
		identical(t, peers, s)
	}
	for _, p := range peers {
		if p.st.Quarantined() != 0 {
			t.Fatal("peer loss caused a quarantine")
		}
	}
}

// TestGossipWireRejects: the HTTP surface refuses malformed input in
// the serving tier's envelope shape.
func TestGossipWireRejects(t *testing.T) {
	peers := newFleet(t, 1, [][]int{{}})
	p := peers[0]
	for name, tc := range map[string]struct {
		method, path, body string
		want               int
	}{
		"bad announce frame": {"POST", "/v1/gossip/announce", "not sse", http.StatusBadRequest},
		"announce bad key": {"POST", "/v1/gossip/announce",
			"id: 1\nevent: announce\ndata: {\"from\":\"http://x\",\"seq\":1,\"keys\":[\"zz\"]}\n\n", http.StatusBadRequest},
		"announce no from": {"POST", "/v1/gossip/announce",
			"id: 1\nevent: announce\ndata: {\"seq\":1,\"keys\":[]}\n\n", http.StatusBadRequest},
		"bad log cursor":   {"GET", "/v1/gossip/log?after=banana", "", http.StatusBadRequest},
		"malformed key":    {"GET", "/v1/gossip/entry/nope", "", http.StatusBadRequest},
		"missing entry":    {"GET", "/v1/gossip/entry/" + strings.Repeat("ab", 32), "", http.StatusNotFound},
		"unknown route":    {"GET", "/v1/gossip/wat", "", http.StatusNotFound},
		"announce via GET": {"GET", "/v1/gossip/announce", "", http.StatusNotFound},
	} {
		t.Run(name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, p.url+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("got %d, want %d", resp.StatusCode, tc.want)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error Content-Type %q, want application/json", ct)
			}
		})
	}
}

// TestGossipStatus: the status endpoint reports ledgers for every
// neighbor with sane accounting after a propagation.
func TestGossipStatus(t *testing.T) {
	peers := newFleet(t, 2, nil)
	spec := seedSpec(11)
	commit(t, peers[0], spec)
	converge(t, peers, 1)

	resp, err := http.Get(peers[0].url + "/v1/gossip/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status answered %d", resp.StatusCode)
	}
	st := peers[0].node.StatusView()
	if st.Seq != 1 || len(st.Neighbors) != 1 {
		t.Fatalf("status %+v", st)
	}
	lv := st.Neighbors[0]
	if lv.AnnouncedTo != 1 || lv.ServedTo != 1 || lv.BytesOut == 0 {
		t.Fatalf("ledger after propagation: %+v", lv)
	}
	recv := peers[1].node.StatusView().Neighbors
	var got gossip.LedgerView
	for _, l := range recv {
		if l.Neighbor == peers[0].url {
			got = l
		}
	}
	if got.ReceivedFrom != 1 || got.BytesIn == 0 {
		t.Fatalf("receiver ledger: %+v", got)
	}
}

// TestGossipDedup: re-announcing keys a peer already holds moves no
// bytes — the want-list filter is what keeps a fleet's repeat
// submissions cheap.
func TestGossipDedup(t *testing.T) {
	peers := newFleet(t, 2, nil)
	spec := seedSpec(13)
	key := commit(t, peers[0], spec)
	converge(t, peers, 1)

	before := peers[1].node.StatusView().Neighbors[0].BytesIn
	// A duplicate Committed is dropped locally; a re-announce of the
	// same key is filtered by the receiver's have-set.
	peers[0].node.Committed(key)
	if peers[0].node.Seq() != 1 {
		t.Fatal("duplicate commit extended the log")
	}
	for i := 0; i < 5; i++ {
		for _, p := range peers {
			p.node.Sync()
		}
	}
	time.Sleep(50 * time.Millisecond)
	if after := peers[1].node.StatusView().Neighbors[0].BytesIn; after != before {
		t.Fatalf("dedup failed: %d bytes moved for an already-held key", after-before)
	}
}

// TestGossipLogPaging: the pull path pages through a log larger than
// one batch.
func TestGossipLogPaging(t *testing.T) {
	if testing.Short() {
		t.Skip("seeds >512 store entries")
	}
	peers := newFleet(t, 2, [][]int{{}, {0}}) // only B pulls from A; A announces to nobody
	const n = 600                             // > maxBatchKeys
	for i := 0; i < n; i++ {
		commit(t, peers[0], seedSpec(i))
	}
	converge(t, peers, n)
	var lv gossip.LedgerView
	for _, l := range peers[1].node.StatusView().Neighbors {
		if l.Neighbor == peers[0].url {
			lv = l
		}
	}
	if lv.PullCursor != n {
		t.Fatalf("pull cursor %d, want %d", lv.PullCursor, n)
	}
}

func TestGossipValidKeyFormat(t *testing.T) {
	// Committed ignores garbage keys rather than polluting the log.
	peers := newFleet(t, 1, [][]int{{}})
	for _, k := range []string{"", "short", strings.Repeat("A", 64), strings.Repeat("g", 64), fmt.Sprintf("%063dx", 0)} {
		peers[0].node.Committed(k)
	}
	if peers[0].node.Seq() != 0 {
		t.Fatal("malformed key entered the commit log")
	}
}
