package hypergraph_test

import (
	"fmt"

	"repro/internal/hypergraph"
)

// The paper's running example: build Figure 1's hypergraph and inspect
// the quantities of the §5.3 analysis.
func Example() {
	h := hypergraph.Figure1()
	fmt.Println(h)
	minMM, witness := h.MinMaximalMatching()
	fmt.Println("minMM:", minMM, "witness:", witness)
	fmt.Println("MaxMin:", h.MaxMin(), "MaxHEdge:", h.MaxHEdge())
	fmt.Println("Theorem 5 bound:", h.Theorem5Bound())
	fmt.Println("Theorem 8 bound:", h.Theorem8Bound())
	exact, _ := h.MinAMM()
	fmt.Println("min over MM∪AMM:", exact)
	// Output:
	// H(n=6, m=5): {0,1} {0,1,2,3} {1,3,4} {2,5} {3,5}
	// minMM: 1 witness: [1]
	// MaxMin: 3 MaxHEdge: 4
	// Theorem 5 bound: 1
	// Theorem 8 bound: 1
	// min over MM∪AMM: 1
}

// Committees conflict exactly when they share a professor (§2.3).
func ExampleEdge_Conflicts() {
	a := hypergraph.Edge{0, 1, 2}
	b := hypergraph.Edge{2, 3}
	c := hypergraph.Edge{3, 4}
	fmt.Println(a.Conflicts(b), b.Conflicts(c), a.Conflicts(c))
	// Output: true true false
}
