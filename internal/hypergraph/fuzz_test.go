package hypergraph

import (
	"math/rand"
	"testing"
)

// FuzzRandomScenario drives the randomized topology generator with
// fuzzed seeds and size bounds and asserts the structural invariants
// every committee structure must satisfy: committees exist and have at
// least two distinct sorted members, vertex↔edge membership is
// symmetric, the committee conflict graph lists exactly the pairs
// sharing a member, and the G_H neighbor relation is symmetric
// (checkInvariants in scenarios_test.go). Seed corpus runs under plain
// `go test`; `go test -fuzz=FuzzRandomScenario ./internal/hypergraph`
// explores further.
func FuzzRandomScenario(f *testing.F) {
	f.Add(int64(1), 6)
	f.Add(int64(42), 12)
	f.Add(int64(-7), 0)      // maxN below the floor must clamp, not panic
	f.Add(int64(1<<62), 200) // large bound exercises the bigger families
	f.Fuzz(func(t *testing.T, seed int64, maxN int) {
		if maxN > 64 {
			maxN = 64 // keep individual fuzz executions fast
		}
		rng := rand.New(rand.NewSource(seed))
		// Several draws per seed: the generator's internal rng state
		// chains, so later draws hit parameter corners earlier ones set up.
		for i := 0; i < 4; i++ {
			h := RandomScenario(rng, maxN)
			checkInvariants(t, h)
			if h.N() < 3 || h.M() < 2 {
				t.Fatalf("degenerate scenario: %s", h)
			}
		}
	})
}

// FuzzRandomBipartite fuzzes the bipartite generator's parameter space
// directly (it has the trickiest connectivity/deduplication logic).
func FuzzRandomBipartite(f *testing.F) {
	f.Add(int64(1), 3, 4, 8, 3)
	f.Add(int64(9), 1, 1, 1, 2)
	f.Fuzz(func(t *testing.T, seed int64, a, b, m, kmax int) {
		// Clamp into the documented domain; out-of-domain panics are the
		// documented contract, not bugs.
		if a < 1 {
			a = 1
		}
		if b < 1 {
			b = 1
		}
		if a > 8 {
			a = 8
		}
		if b > 8 {
			b = 8
		}
		if kmax < 2 {
			kmax = 2
		}
		if kmax > a+b {
			kmax = a + b
		}
		if m < a+b-1 {
			m = a + b - 1
		}
		if m > 2*(a+b) {
			m = 2 * (a + b)
		}
		h := RandomBipartite(a, b, m, kmax, rand.New(rand.NewSource(seed)))
		checkInvariants(t, h)
		if !h.Connected() {
			t.Fatalf("disconnected bipartite a=%d b=%d m=%d kmax=%d: %s", a, b, m, kmax, h)
		}
	})
}
