package hypergraph

import (
	"fmt"
	"math/rand"
)

// Fixtures from the paper.

// Figure1 returns the example hypergraph of paper Figure 1(a):
// V = {1..6}, E = {{1,2},{1,2,3,4},{2,4,5},{3,6},{4,6}}.
// Vertices are 0-based internally; identifiers are set to 1..6 so that
// printed output matches the paper.
func Figure1() *H {
	h := MustNew(6, []Edge{
		{0, 1}, {0, 1, 2, 3}, {1, 3, 4}, {2, 5}, {3, 5},
	})
	h, _ = h.WithIDs([]int{1, 2, 3, 4, 5, 6})
	return h
}

// Figure2 returns the impossibility gadget of Theorem 1 (paper Figure 2):
// V = {1..5}, E = {{1,2},{1,3,5},{3,4}}. Professor 5 (vertex 4) is the one
// starved by any maximally-concurrent algorithm under the adversarial
// schedule.
func Figure2() *H {
	h := MustNew(5, []Edge{
		{0, 1}, {0, 2, 4}, {2, 3},
	})
	h, _ = h.WithIDs([]int{1, 2, 3, 4, 5})
	return h
}

// Figure3 returns the 10-professor topology of the paper's Figure 3
// example computation. The figure names committees {1,2,3}, {5,6}, {6,7},
// {6,9}, {7,8}, {8,9}, {9,10}; professor 4's committees are not spelled
// out in the text, so — as documented in DESIGN.md — we attach professor 4
// via committees {3,4} and {4,5}. This keeps the network connected (the
// token demonstrably travels 1→2→3→4→6 in the figure, so 3-4 and 4-5-6
// must be communication paths) while professor 4 stays disinterested
// ("idle") exactly as in the figure.
func Figure3() *H {
	h := MustNew(10, []Edge{
		{0, 1, 2}, // {1,2,3}
		{2, 3},    // {3,4}
		{3, 4},    // {4,5}
		{4, 5},    // {5,6}
		{5, 6},    // {6,7}
		{5, 8},    // {6,9}
		{6, 7},    // {7,8}
		{7, 8},    // {8,9}
		{8, 9},    // {9,10}
	})
	h, _ = h.WithIDs([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	return h
}

// Figure4 returns the lock-example topology of paper Figure 4:
// committees {1,2,5,8}, {3,4,5}, {6,7,9}, {8,9}.
func Figure4() *H {
	h := MustNew(9, []Edge{
		{0, 1, 4, 7}, // {1,2,5,8}
		{2, 3, 4},    // {3,4,5}
		{5, 6, 8},    // {6,7,9}
		{7, 8},       // {8,9}
	})
	h, _ = h.WithIDs([]int{1, 2, 3, 4, 5, 6, 7, 8, 9})
	return h
}

// Parameterized families used by the experiments.

// CommitteeRing returns n professors arranged in a cycle with binary
// committees {i, i+1 mod n}. Requires n >= 3.
func CommitteeRing(n int) *H {
	if n < 3 {
		panic(fmt.Sprintf("hypergraph: CommitteeRing needs n >= 3, got %d", n))
	}
	edges := make([]Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = Edge{i, (i + 1) % n}
	}
	return MustNew(n, edges)
}

// CommitteePath returns n professors on a path with binary committees
// {i, i+1}. Requires n >= 2.
func CommitteePath(n int) *H {
	if n < 2 {
		panic(fmt.Sprintf("hypergraph: CommitteePath needs n >= 2, got %d", n))
	}
	edges := make([]Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = Edge{i, i + 1}
	}
	return MustNew(n, edges)
}

// Star returns a star: professor 0 shares a binary committee with each of
// the other n-1 professors. All committees conflict, so at most one
// meeting can hold at a time (paper §3.2 remark).
func Star(n int) *H {
	if n < 2 {
		panic(fmt.Sprintf("hypergraph: Star needs n >= 2, got %d", n))
	}
	edges := make([]Edge, n-1)
	for i := 1; i < n; i++ {
		edges[i-1] = Edge{0, i}
	}
	return MustNew(n, edges)
}

// CompletePairs returns the complete binary hypergraph: one committee per
// pair of professors.
func CompletePairs(n int) *H {
	if n < 2 {
		panic(fmt.Sprintf("hypergraph: CompletePairs needs n >= 2, got %d", n))
	}
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j})
		}
	}
	return MustNew(n, edges)
}

// DisjointCommittees returns k committees of size s with no shared
// members (no conflicts): the fully concurrent case.
func DisjointCommittees(k, s int) *H {
	if k < 1 || s < 2 {
		panic("hypergraph: DisjointCommittees needs k >= 1, s >= 2")
	}
	edges := make([]Edge, k)
	for i := 0; i < k; i++ {
		e := make(Edge, s)
		for j := 0; j < s; j++ {
			e[j] = i*s + j
		}
		edges[i] = e
	}
	return MustNew(k*s, edges)
}

// ChainOfTriples returns overlapping 3-member committees
// {0,1,2},{2,3,4},{4,5,6},... sharing one professor between consecutive
// committees; k committees over 2k+1 professors.
func ChainOfTriples(k int) *H {
	if k < 1 {
		panic("hypergraph: ChainOfTriples needs k >= 1")
	}
	edges := make([]Edge, k)
	for i := 0; i < k; i++ {
		edges[i] = Edge{2 * i, 2*i + 1, 2*i + 2}
	}
	return MustNew(2*k+1, edges)
}

// RandomKUniform returns a connected random hypergraph with n professors
// and m distinct committees of exactly k members each, built from rng.
// To guarantee connectivity of G_H, the first committees form a covering
// chain; the rest are sampled uniformly. Panics if m is too small to
// cover all professors or the space of edges is exhausted.
func RandomKUniform(n, m, k int, rng *rand.Rand) *H {
	if k < 2 || k > n {
		panic(fmt.Sprintf("hypergraph: RandomKUniform needs 2 <= k <= n, got k=%d n=%d", k, n))
	}
	// Chain cover: committees of k consecutive professors with overlap 1.
	var edges []Edge
	seen := make(map[string]bool)
	add := func(e Edge) bool {
		c := e.clone()
		sortInts(c)
		key := c.String()
		if seen[key] {
			return false
		}
		seen[key] = true
		edges = append(edges, c)
		return true
	}
	for start := 0; start < n-1; start += k - 1 {
		if start+k > n {
			start = n - k // final window: last k vertices
		}
		e := make(Edge, k)
		for j := 0; j < k; j++ {
			e[j] = start + j
		}
		add(e)
		if start+k-1 >= n-1 {
			break
		}
	}
	if len(edges) > m {
		panic(fmt.Sprintf("hypergraph: RandomKUniform m=%d too small to cover n=%d with k=%d", m, n, k))
	}
	guard := 0
	for len(edges) < m {
		e := make(Edge, 0, k)
		perm := rng.Perm(n)
		for _, v := range perm[:k] {
			e = append(e, v)
		}
		if !add(e) {
			guard++
			if guard > 10000 {
				panic("hypergraph: RandomKUniform cannot find enough distinct committees")
			}
		}
	}
	return MustNew(n, edges)
}

// RandomMixed returns a connected random hypergraph with n professors and
// m committees of sizes drawn uniformly from [2, kmax]. Connectivity
// requires m >= n-1 (a spanning chain of binary committees is laid first).
func RandomMixed(n, m, kmax int, rng *rand.Rand) *H {
	if kmax < 2 || kmax > n {
		panic("hypergraph: RandomMixed needs 2 <= kmax <= n")
	}
	if m < n-1 {
		panic(fmt.Sprintf("hypergraph: RandomMixed needs m >= n-1 for connectivity (n=%d m=%d)", n, m))
	}
	var edges []Edge
	seen := make(map[string]bool)
	add := func(e Edge) bool {
		c := e.clone()
		sortInts(c)
		key := c.String()
		if seen[key] {
			return false
		}
		seen[key] = true
		edges = append(edges, c)
		return true
	}
	// Connect with a random spanning chain of binary committees.
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		add(Edge{perm[i], perm[i+1]})
		if len(edges) == m {
			break
		}
	}
	guard := 0
	for len(edges) < m {
		k := 2 + rng.Intn(kmax-1)
		p := rng.Perm(n)
		e := make(Edge, k)
		copy(e, p[:k])
		if !add(e) {
			guard++
			if guard > 10000 {
				panic("hypergraph: RandomMixed cannot find enough distinct committees")
			}
		}
	}
	return MustNew(n, edges)
}

// Grid returns professors on an r x c grid with binary committees between
// horizontal and vertical neighbors.
func Grid(r, c int) *H {
	if r < 1 || c < 1 || r*c < 2 {
		panic("hypergraph: Grid needs r*c >= 2")
	}
	var edges []Edge
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				edges = append(edges, Edge{at(i, j), at(i, j+1)})
			}
			if i+1 < r {
				edges = append(edges, Edge{at(i, j), at(i+1, j)})
			}
		}
	}
	return MustNew(r*c, edges)
}

func sortInts(e Edge) {
	for i := 1; i < len(e); i++ {
		for j := i; j > 0 && e[j] < e[j-1]; j-- {
			e[j], e[j-1] = e[j-1], e[j]
		}
	}
}

func appendUnique(e Edge, v int) Edge {
	for _, x := range e {
		if x == v {
			return e
		}
	}
	return append(e, v)
}
