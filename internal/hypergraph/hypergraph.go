// Package hypergraph implements the distributed-system model of
// "Snap-Stabilizing Committee Coordination" (Bonakdarpour, Devismes,
// Petit): a simple self-loopless hypergraph H = (V, E) whose vertices are
// processes (professors) and whose hyperedges are synchronization events
// (committees), together with the underlying communication network G_H
// and the matching-theoretic quantities used in the paper's Section 5.3
// complexity analysis (maximal matchings, minMM, MaxMin, MaxHEdge,
// Almost(ε, X), AMM and AMM').
//
// Vertices are indexed 0..N-1. Each vertex additionally carries a unique
// identifier from a totally ordered set (paper §2.1); identifiers default
// to the vertex index but may be permuted to study identifier-dependent
// behaviour (the algorithms break ties by maximum identifier).
package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a committee: a set of member vertices, stored sorted ascending.
type Edge []int

// Contains reports whether vertex v is incident to the edge.
func (e Edge) Contains(v int) bool {
	for _, x := range e {
		if x == v {
			return true
		}
	}
	return false
}

// Conflicts reports whether two committees share a member (paper §2.3:
// "two committees are conflicting iff their intersection is non-empty").
func (e Edge) Conflicts(f Edge) bool {
	i, j := 0, 0
	for i < len(e) && j < len(f) {
		switch {
		case e[i] == f[j]:
			return true
		case e[i] < f[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func (e Edge) clone() Edge {
	c := make(Edge, len(e))
	copy(c, e)
	return c
}

func (e Edge) String() string {
	parts := make([]string, len(e))
	for i, v := range e {
		parts[i] = fmt.Sprint(v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// H is a simple self-loopless hypergraph over vertices 0..N-1.
// It is immutable after construction by New.
type H struct {
	n     int
	edges []Edge
	ids   []int // ids[v] = identifier of vertex v; unique, totally ordered

	incident  [][]int // incident[v] = sorted edge indices containing v (E_v)
	neighbors [][]int // neighbors[v] = sorted vertex neighbors in G_H (N(v))
	minEdges  [][]int // minEdges[v] = minimum-length incident edges (MinEdges_p)
}

// New validates and builds a hypergraph. Every edge must have at least two
// distinct members (paper §2.1 footnote 1), all members in [0, n).
// Duplicate vertices inside an edge or duplicate edges are rejected.
func New(n int, edges []Edge) (*H, error) {
	if n < 1 {
		return nil, fmt.Errorf("hypergraph: n must be >= 1, got %d", n)
	}
	h := &H{
		n:         n,
		edges:     make([]Edge, len(edges)),
		ids:       make([]int, n),
		incident:  make([][]int, n),
		neighbors: make([][]int, n),
	}
	for v := 0; v < n; v++ {
		h.ids[v] = v
	}
	seen := make(map[string]int, len(edges))
	for i, e := range edges {
		c := e.clone()
		sort.Ints(c)
		if len(c) < 2 {
			return nil, fmt.Errorf("hypergraph: edge %d has %d members; committees need >= 2", i, len(c))
		}
		for j, v := range c {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("hypergraph: edge %d member %d out of range [0,%d)", i, v, n)
			}
			if j > 0 && c[j-1] == v {
				return nil, fmt.Errorf("hypergraph: edge %d has duplicate member %d", i, v)
			}
		}
		key := c.String()
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("hypergraph: edge %d duplicates edge %d (%s)", i, prev, key)
		}
		seen[key] = i
		h.edges[i] = c
	}
	// Incidence lists.
	for i, e := range h.edges {
		for _, v := range e {
			h.incident[v] = append(h.incident[v], i)
		}
	}
	// Underlying communication network G_H (paper §2.1): u,v neighbors iff
	// they are incident to a common hyperedge.
	nbr := make([]map[int]bool, n)
	for v := range nbr {
		nbr[v] = make(map[int]bool)
	}
	for _, e := range h.edges {
		for _, u := range e {
			for _, v := range e {
				if u != v {
					nbr[u][v] = true
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		for u := range nbr[v] {
			h.neighbors[v] = append(h.neighbors[v], u)
		}
		sort.Ints(h.neighbors[v])
	}
	// MinEdges_p is static; precompute so the Algorithm 2 guards reading
	// it stay allocation-free on the simulation hot path.
	h.minEdges = make([][]int, n)
	for v := 0; v < n; v++ {
		min := -1
		for _, ei := range h.incident[v] {
			if min == -1 || len(h.edges[ei]) < min {
				min = len(h.edges[ei])
			}
		}
		for _, ei := range h.incident[v] {
			if len(h.edges[ei]) == min {
				h.minEdges[v] = append(h.minEdges[v], ei)
			}
		}
	}
	return h, nil
}

// MustNew is New that panics on error; for tests and fixed fixtures.
func MustNew(n int, edges []Edge) *H {
	h, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return h
}

// WithIDs returns a copy of h whose vertex identifiers are ids (must be a
// permutation-free slice of n unique values). The algorithms compare
// processes by these identifiers.
func (h *H) WithIDs(ids []int) (*H, error) {
	if len(ids) != h.n {
		return nil, fmt.Errorf("hypergraph: got %d ids for %d vertices", len(ids), h.n)
	}
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("hypergraph: duplicate id %d", id)
		}
		seen[id] = true
	}
	c := *h
	c.ids = append([]int(nil), ids...)
	return &c, nil
}

// N returns the number of vertices (processes).
func (h *H) N() int { return h.n }

// M returns the number of hyperedges (committees).
func (h *H) M() int { return len(h.edges) }

// Edge returns the members of edge i (do not mutate).
func (h *H) Edge(i int) Edge { return h.edges[i] }

// Edges returns all edges (do not mutate).
func (h *H) Edges() []Edge { return h.edges }

// ID returns the identifier of vertex v.
func (h *H) ID(v int) int { return h.ids[v] }

// VertexByID returns the vertex whose identifier is id, or -1.
func (h *H) VertexByID(id int) int {
	for v, x := range h.ids {
		if x == id {
			return v
		}
	}
	return -1
}

// EdgesOf returns the sorted indices of edges incident to v (E_v).
func (h *H) EdgesOf(v int) []int { return h.incident[v] }

// Neighbors returns the sorted neighbors of v in the underlying
// communication network G_H (N(v)).
func (h *H) Neighbors(v int) []int { return h.neighbors[v] }

// Degree returns |N(v)| in G_H.
func (h *H) Degree(v int) int { return len(h.neighbors[v]) }

// MaxDegree returns the maximum degree in G_H.
func (h *H) MaxDegree() int {
	d := 0
	for v := 0; v < h.n; v++ {
		if len(h.neighbors[v]) > d {
			d = len(h.neighbors[v])
		}
	}
	return d
}

// UnderlyingEdges returns the edge set E_E of G_H as sorted pairs.
func (h *H) UnderlyingEdges() [][2]int {
	var out [][2]int
	for v := 0; v < h.n; v++ {
		for _, u := range h.neighbors[v] {
			if v < u {
				out = append(out, [2]int{v, u})
			}
		}
	}
	return out
}

// Connected reports whether G_H is connected (isolated vertices make the
// system disconnected; the algorithms run per connected component).
func (h *H) Connected() bool {
	if h.n == 0 {
		return true
	}
	return len(h.Component(0)) == h.n
}

// Component returns the sorted vertices of the connected component of v
// in G_H.
func (h *H) Component(v int) []int {
	seen := make([]bool, h.n)
	stack := []int{v}
	seen[v] = true
	var comp []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		comp = append(comp, x)
		for _, u := range h.neighbors[x] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	sort.Ints(comp)
	return comp
}

// Components returns all connected components of G_H.
func (h *H) Components() [][]int {
	seen := make([]bool, h.n)
	var out [][]int
	for v := 0; v < h.n; v++ {
		if !seen[v] {
			comp := h.Component(v)
			for _, u := range comp {
				seen[u] = true
			}
			out = append(out, comp)
		}
	}
	return out
}

// ConflictGraph returns, for each edge index, the sorted indices of
// conflicting edges (sharing a member). Used by the dining-philosophers
// baseline, where committees are the philosophers.
func (h *H) ConflictGraph() [][]int {
	m := len(h.edges)
	out := make([][]int, m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if h.edges[i].Conflicts(h.edges[j]) {
				out[i] = append(out[i], j)
				out[j] = append(out[j], i)
			}
		}
	}
	return out
}

// MinEdges returns the indices of minimum-length edges incident to v
// (MinEdges_p in Algorithm 2), sorted ascending, precomputed at
// construction (do not mutate). Empty if v is isolated.
func (h *H) MinEdges(v int) []int { return h.minEdges[v] }

// MaxMin returns max over vertices p of min over edges incident to p of
// the edge length (the MaxMin quantity of Theorem 5). Vertices incident
// to no edge are skipped. Returns 0 if there are no edges.
func (h *H) MaxMin() int {
	best := 0
	for v := 0; v < h.n; v++ {
		min := 0
		for _, ei := range h.incident[v] {
			if min == 0 || len(h.edges[ei]) < min {
				min = len(h.edges[ei])
			}
		}
		if min > best {
			best = min
		}
	}
	return best
}

// MaxHEdge returns the maximum hyperedge length (Theorem 8).
func (h *H) MaxHEdge() int {
	best := 0
	for _, e := range h.edges {
		if len(e) > best {
			best = len(e)
		}
	}
	return best
}

// String renders the hypergraph compactly.
func (h *H) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "H(n=%d, m=%d):", h.n, len(h.edges))
	for _, e := range h.edges {
		b.WriteString(" ")
		b.WriteString(e.String())
	}
	return b.String()
}

// DOT renders the underlying communication network in Graphviz format,
// with hyperedges listed in a comment. Useful for debugging topologies.
func (h *H) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s\n", h.String())
	fmt.Fprintf(&b, "graph %s {\n", name)
	for v := 0; v < h.n; v++ {
		fmt.Fprintf(&b, "  %d [label=\"%d\"];\n", v, h.ids[v])
	}
	for _, e := range h.UnderlyingEdges() {
		fmt.Fprintf(&b, "  %d -- %d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
