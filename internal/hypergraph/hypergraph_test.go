package hypergraph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
		ok    bool
	}{
		{"valid", 3, []Edge{{0, 1}, {1, 2}}, true},
		{"singleton edge", 3, []Edge{{0}}, false},
		{"empty edge", 3, []Edge{{}}, false},
		{"out of range", 3, []Edge{{0, 3}}, false},
		{"negative", 3, []Edge{{-1, 0}}, false},
		{"duplicate member", 3, []Edge{{1, 1}}, false},
		{"duplicate edge", 3, []Edge{{0, 1}, {1, 0}}, false},
		{"zero vertices", 0, nil, false},
		{"no edges ok", 2, nil, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.n, c.edges)
			if (err == nil) != c.ok {
				t.Fatalf("New(%d, %v): err=%v, want ok=%v", c.n, c.edges, err, c.ok)
			}
		})
	}
}

func TestEdgeSortedOnConstruction(t *testing.T) {
	h := MustNew(4, []Edge{{3, 1, 0}})
	got := h.Edge(0)
	want := Edge{0, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("edge not sorted: got %v want %v", got, want)
	}
}

func TestFigure1UnderlyingNetwork(t *testing.T) {
	// Paper Figure 1(b): with 1-based ids,
	// EE = {{1,2},{1,3},{1,4},{2,3},{2,4},{2,5},{3,4},{3,6},{4,5},{4,6}}.
	h := Figure1()
	want := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 5}, {3, 4}, {3, 5},
	}
	got := h.UnderlyingEdges()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Figure 1 underlying network mismatch:\n got %v\nwant %v", got, want)
	}
	if !h.Connected() {
		t.Fatal("Figure 1 should be connected")
	}
	if h.N() != 6 || h.M() != 5 {
		t.Fatalf("Figure 1 has n=%d m=%d, want 6/5", h.N(), h.M())
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	h := Figure1()
	for v := 0; v < h.N(); v++ {
		for _, u := range h.Neighbors(v) {
			found := false
			for _, w := range h.Neighbors(u) {
				if w == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation asymmetric: %d in N(%d) but not vice versa", u, v)
			}
		}
	}
}

func TestEdgesOfIncidence(t *testing.T) {
	h := Figure1()
	// Vertex 1 (id 2) belongs to {1,2},{1,2,3,4},{2,4,5} = edges 0,1,2.
	want := []int{0, 1, 2}
	if got := h.EdgesOf(1); !reflect.DeepEqual(got, want) {
		t.Fatalf("EdgesOf(1) = %v, want %v", got, want)
	}
	// Vertex 5 (id 6) belongs to edges 3 and 4.
	want = []int{3, 4}
	if got := h.EdgesOf(5); !reflect.DeepEqual(got, want) {
		t.Fatalf("EdgesOf(5) = %v, want %v", got, want)
	}
}

func TestConflicts(t *testing.T) {
	h := Figure1()
	if !h.Edge(0).Conflicts(h.Edge(1)) {
		t.Error("{1,2} and {1,2,3,4} should conflict")
	}
	if h.Edge(0).Conflicts(h.Edge(3)) {
		t.Error("{1,2} and {3,6} should not conflict (0-based {0,1} vs {2,5})")
	}
}

func TestConflictGraph(t *testing.T) {
	h := Figure2() // edges {0,1},{0,2,4},{2,3}
	cg := h.ConflictGraph()
	want := [][]int{{1}, {0, 2}, {1}}
	if !reflect.DeepEqual(cg, want) {
		t.Fatalf("conflict graph = %v, want %v", cg, want)
	}
}

func TestWithIDs(t *testing.T) {
	h := MustNew(3, []Edge{{0, 1}, {1, 2}})
	h2, err := h.WithIDs([]int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID(2) != 30 || h.ID(2) != 2 {
		t.Fatal("WithIDs should not mutate the receiver")
	}
	if h2.VertexByID(20) != 1 {
		t.Fatalf("VertexByID(20) = %d, want 1", h2.VertexByID(20))
	}
	if h2.VertexByID(99) != -1 {
		t.Fatal("VertexByID of unknown id should be -1")
	}
	if _, err := h.WithIDs([]int{1, 1, 2}); err == nil {
		t.Fatal("duplicate ids should be rejected")
	}
	if _, err := h.WithIDs([]int{1, 2}); err == nil {
		t.Fatal("wrong-length ids should be rejected")
	}
}

func TestComponents(t *testing.T) {
	h := MustNew(5, []Edge{{0, 1}, {2, 3}})
	if h.Connected() {
		t.Fatal("should be disconnected")
	}
	comps := h.Components()
	if len(comps) != 3 {
		t.Fatalf("want 3 components, got %v", comps)
	}
	want := [][]int{{0, 1}, {2, 3}, {4}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
}

func TestGenerators(t *testing.T) {
	t.Run("ring", func(t *testing.T) {
		h := CommitteeRing(6)
		if h.N() != 6 || h.M() != 6 || !h.Connected() {
			t.Fatalf("bad ring: %v", h)
		}
		for v := 0; v < 6; v++ {
			if d := h.Degree(v); d != 2 {
				t.Fatalf("ring degree(%d) = %d", v, d)
			}
		}
	})
	t.Run("path", func(t *testing.T) {
		h := CommitteePath(5)
		if h.N() != 5 || h.M() != 4 || !h.Connected() {
			t.Fatalf("bad path: %v", h)
		}
	})
	t.Run("star", func(t *testing.T) {
		h := Star(7)
		if h.M() != 6 || h.Degree(0) != 6 || !h.Connected() {
			t.Fatalf("bad star: %v", h)
		}
		// All committees pairwise conflict via the hub.
		for i := 0; i < h.M(); i++ {
			for j := i + 1; j < h.M(); j++ {
				if !h.Edge(i).Conflicts(h.Edge(j)) {
					t.Fatal("star committees must all conflict")
				}
			}
		}
	})
	t.Run("complete", func(t *testing.T) {
		h := CompletePairs(5)
		if h.M() != 10 {
			t.Fatalf("K5 has 10 edges, got %d", h.M())
		}
	})
	t.Run("disjoint", func(t *testing.T) {
		h := DisjointCommittees(4, 3)
		if h.N() != 12 || h.M() != 4 {
			t.Fatalf("bad disjoint: %v", h)
		}
		if h.Connected() {
			t.Fatal("disjoint committees must be disconnected")
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if h.Edge(i).Conflicts(h.Edge(j)) {
					t.Fatal("disjoint committees must not conflict")
				}
			}
		}
	})
	t.Run("chain of triples", func(t *testing.T) {
		h := ChainOfTriples(3)
		if h.N() != 7 || h.M() != 3 || !h.Connected() {
			t.Fatalf("bad chain: %v", h)
		}
	})
	t.Run("grid", func(t *testing.T) {
		h := Grid(3, 4)
		if h.N() != 12 || h.M() != 3*3+2*4 || !h.Connected() {
			t.Fatalf("bad grid: %v n=%d m=%d", h, h.N(), h.M())
		}
	})
	t.Run("random k-uniform", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		h := RandomKUniform(12, 10, 3, rng)
		if h.N() != 12 || h.M() != 10 {
			t.Fatalf("bad random: n=%d m=%d", h.N(), h.M())
		}
		if !h.Connected() {
			t.Fatal("RandomKUniform must be connected")
		}
		for _, e := range h.Edges() {
			if len(e) != 3 {
				t.Fatalf("edge %v not 3-uniform", e)
			}
		}
	})
	t.Run("random mixed", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		h := RandomMixed(10, 14, 4, rng)
		if h.N() != 10 || h.M() != 14 || !h.Connected() {
			t.Fatalf("bad mixed: n=%d m=%d", h.N(), h.M())
		}
		for _, e := range h.Edges() {
			if len(e) < 2 || len(e) > 4 {
				t.Fatalf("edge %v out of size range", e)
			}
		}
	})
}

func TestRandomGeneratorsConnectedProperty(t *testing.T) {
	// Property: for many seeds, generated hypergraphs are connected,
	// distinct-edged, and in range.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(12)
		k := 2 + rng.Intn(2)
		minEdges := (n-1)/(k-1) + 1
		m := minEdges + rng.Intn(6)
		h := RandomKUniform(n, m, k, rng)
		return h.Connected() && h.M() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperFixtures(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    *H
		n, m int
	}{
		{"figure1", Figure1(), 6, 5},
		{"figure2", Figure2(), 5, 3},
		{"figure3", Figure3(), 10, 9},
		{"figure4", Figure4(), 9, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.h.N() != tc.n || tc.h.M() != tc.m {
				t.Fatalf("%s: n=%d m=%d, want %d/%d", tc.name, tc.h.N(), tc.h.M(), tc.n, tc.m)
			}
			if !tc.h.Connected() {
				t.Fatalf("%s must be connected", tc.name)
			}
			// Identifiers are 1-based in the paper's figures.
			if tc.h.ID(0) != 1 {
				t.Fatalf("%s: id(0)=%d, want 1", tc.name, tc.h.ID(0))
			}
		})
	}
}

func TestDOTAndString(t *testing.T) {
	h := Figure2()
	s := h.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	dot := h.DOT("fig2")
	for _, want := range []string{"graph fig2", "0 -- 1", "label=\"5\""} {
		if !contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestMinEdges(t *testing.T) {
	h := Figure1()
	// Vertex 0 (id 1): edges {0,1} (len 2) and {0,1,2,3} (len 4) -> MinEdges = [0].
	if got := h.MinEdges(0); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("MinEdges(0) = %v", got)
	}
	// Vertex 3 (id 4): edges 1 (len 4), 2 (len 3), 4 (len 2) -> [4].
	if got := h.MinEdges(3); !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("MinEdges(3) = %v", got)
	}
	// Isolated vertex has no MinEdges.
	h2 := MustNew(3, []Edge{{0, 1}})
	if got := h2.MinEdges(2); got != nil {
		t.Fatalf("MinEdges(isolated) = %v, want nil", got)
	}
}

func TestMaxMinAndMaxHEdge(t *testing.T) {
	h := Figure1()
	// min edge length per vertex: v0:2 v1:2 v2:2 v3:2 v4:3 v5:2 -> MaxMin 3.
	if got := h.MaxMin(); got != 3 {
		t.Fatalf("MaxMin = %d, want 3", got)
	}
	if got := h.MaxHEdge(); got != 4 {
		t.Fatalf("MaxHEdge = %d, want 4", got)
	}
	empty := MustNew(2, nil)
	if empty.MaxMin() != 0 || empty.MaxHEdge() != 0 {
		t.Fatal("empty hypergraph should have MaxMin = MaxHEdge = 0")
	}
}

func TestDegreeHelpers(t *testing.T) {
	h := Star(5)
	if h.MaxDegree() != 4 {
		t.Fatalf("star max degree = %d", h.MaxDegree())
	}
	sort.Ints(h.Neighbors(0)) // must already be sorted; just exercise
	if h.Degree(1) != 1 {
		t.Fatalf("leaf degree = %d", h.Degree(1))
	}
}
