package hypergraph

import (
	"math"
	"sort"
)

// This file implements the matching-theoretic machinery of paper §5.3:
// matchings and maximal matchings of a hypergraph, the size of the
// smallest maximal matching (minMM), the induced subhypergraph H_Y, the
// sets Almost(ε, X), AMM (Theorem 4) and AMM' (Theorem 7), and the
// analytic lower bounds of Theorems 5 and 8. All enumerations are exact
// and exponential in the number of edges; they are intended for the small
// topologies on which the degree-of-fair-concurrency experiments compute
// ground truth.

// IsMatching reports whether the given edge indices are pairwise
// non-conflicting.
func (h *H) IsMatching(edgeIdx []int) bool {
	used := make([]bool, h.n)
	for _, ei := range edgeIdx {
		for _, v := range h.edges[ei] {
			if used[v] {
				return false
			}
			used[v] = true
		}
	}
	return true
}

// IsMaximalMatching reports whether edgeIdx is a matching such that no
// further edge of h can be added. The optional mask restricts the edge
// universe: if mask is non-nil, only edges ei with mask[ei] participate
// (both as members and as candidate extensions).
func (h *H) IsMaximalMatching(edgeIdx []int, mask []bool) bool {
	if !h.IsMatching(edgeIdx) {
		return false
	}
	used := make([]bool, h.n)
	in := make([]bool, len(h.edges))
	for _, ei := range edgeIdx {
		if mask != nil && !mask[ei] {
			return false
		}
		in[ei] = true
		for _, v := range h.edges[ei] {
			used[v] = true
		}
	}
	for ei, e := range h.edges {
		if in[ei] || (mask != nil && !mask[ei]) {
			continue
		}
		free := true
		for _, v := range e {
			if used[v] {
				free = false
				break
			}
		}
		if free {
			return false
		}
	}
	return true
}

// EnumerateMaximalMatchings calls fn with each maximal matching of h
// (restricted to edges allowed by mask, if non-nil), as a sorted slice of
// edge indices. The slice is reused; fn must copy it to retain it.
// Enumeration stops early if fn returns false.
func (h *H) EnumerateMaximalMatchings(mask []bool, fn func(m []int) bool) {
	m := len(h.edges)
	used := make([]bool, h.n)
	var chosen []int
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == m {
			// Maximality: every allowed edge either chosen or blocked.
			for ei, e := range h.edges {
				if mask != nil && !mask[ei] {
					continue
				}
				blocked := false
				for _, v := range e {
					if used[v] {
						blocked = true
						break
					}
				}
				if !blocked {
					return true // extensible => not maximal; continue search
				}
			}
			return fn(chosen)
		}
		// Branch 1: skip edge i.
		if !rec(i + 1) {
			return false
		}
		// Branch 2: take edge i if allowed and disjoint.
		if mask != nil && !mask[i] {
			return true
		}
		for _, v := range h.edges[i] {
			if used[v] {
				return true
			}
		}
		for _, v := range h.edges[i] {
			used[v] = true
		}
		chosen = append(chosen, i)
		ok := rec(i + 1)
		chosen = chosen[:len(chosen)-1]
		for _, v := range h.edges[i] {
			used[v] = false
		}
		return ok
	}
	rec(0)
}

// MaximalMatchings returns all maximal matchings (MM_H), each sorted.
func (h *H) MaximalMatchings() [][]int {
	var out [][]int
	h.EnumerateMaximalMatchings(nil, func(m []int) bool {
		c := append([]int(nil), m...)
		sort.Ints(c)
		out = append(out, c)
		return true
	})
	return out
}

// MinMaximalMatching returns the size of the smallest maximal matching
// (minMM) and one witness. If the hypergraph has no edges it returns
// (0, nil).
func (h *H) MinMaximalMatching() (int, []int) {
	best := math.MaxInt
	var witness []int
	h.EnumerateMaximalMatchings(nil, func(m []int) bool {
		if len(m) < best {
			best = len(m)
			witness = append(witness[:0], m...)
		}
		return true
	})
	if best == math.MaxInt {
		return 0, nil
	}
	sort.Ints(witness)
	return best, witness
}

// MaxMatching returns the size of a maximum matching and one witness.
// (The paper notes maximizing simultaneous meetings is NP-hard in
// general; this exact routine is for small ground-truth instances.)
func (h *H) MaxMatching() (int, []int) {
	best := -1
	var witness []int
	h.EnumerateMaximalMatchings(nil, func(m []int) bool {
		if len(m) > best {
			best = len(m)
			witness = append(witness[:0], m...)
		}
		return true
	})
	if best < 0 {
		return 0, nil
	}
	sort.Ints(witness)
	return best, witness
}

// inducedMask returns the edge mask of the subhypergraph H_Y induced by
// V \ Y: an edge survives iff none of its members is in Y.
func (h *H) inducedMask(y []int) []bool {
	drop := make([]bool, h.n)
	for _, v := range y {
		drop[v] = true
	}
	mask := make([]bool, len(h.edges))
	for ei, e := range h.edges {
		keep := true
		for _, v := range e {
			if drop[v] {
				keep = false
				break
			}
		}
		mask[ei] = keep
	}
	return mask
}

// AlmostMatchings enumerates Almost(ε, X) (paper §5.3): the maximal
// matchings m of H_X such that every q ∈ ε\X is incident to a hyperedge
// of m. eps is an edge index; x a vertex set. fn receives each matching
// (reused slice); return false to stop.
func (h *H) AlmostMatchings(eps int, x []int, fn func(m []int) bool) {
	mask := h.inducedMask(x)
	inX := make(map[int]bool, len(x))
	for _, v := range x {
		inX[v] = true
	}
	var need []int // members of eps outside X that must be covered
	for _, q := range h.edges[eps] {
		if !inX[q] {
			need = append(need, q)
		}
	}
	h.EnumerateMaximalMatchings(mask, func(m []int) bool {
		covered := make(map[int]bool)
		for _, ei := range m {
			for _, v := range h.edges[ei] {
				covered[v] = true
			}
		}
		for _, q := range need {
			if !covered[q] {
				return true // not in Almost; continue
			}
		}
		return fn(m)
	})
}

// subsetsContaining calls fn with every proper subset y of edge members
// that contains p (the set Y_{ε,p} of §5.3): p ∈ y and |y| < |ε|.
func (h *H) subsetsContaining(eps, p int, fn func(y []int) bool) {
	e := h.edges[eps]
	others := make([]int, 0, len(e)-1)
	for _, v := range e {
		if v != p {
			others = append(others, v)
		}
	}
	k := len(others)
	// Choose any subset of others, but not all of them (|y| < |ε|).
	for bits := 0; bits < (1 << k); bits++ {
		if bits == (1<<k)-1 {
			continue
		}
		y := []int{p}
		for i := 0; i < k; i++ {
			if bits&(1<<i) != 0 {
				y = append(y, others[i])
			}
		}
		sort.Ints(y)
		if !fn(y) {
			return
		}
	}
}

// MinAMM returns the size of the smallest matching in MM ∪ AMM
// (Theorem 4's bound target) where AMM uses minimum-length incident
// edges (E^min_p). It also returns whether AMM was non-empty.
func (h *H) MinAMM() (int, bool) {
	return h.minOverAMM(true)
}

// MinAMMPrime returns the size of the smallest matching in MM ∪ AMM'
// (Theorem 7's bound target), where AMM' ranges over all incident edges.
func (h *H) MinAMMPrime() (int, bool) {
	return h.minOverAMM(false)
}

func (h *H) minOverAMM(minEdgesOnly bool) (int, bool) {
	best, _ := h.MinMaximalMatching()
	if len(h.edges) == 0 {
		return 0, false
	}
	sawAMM := false
	for p := 0; p < h.n; p++ {
		var eset []int
		if minEdgesOnly {
			eset = h.MinEdges(p)
		} else {
			eset = h.EdgesOf(p)
		}
		for _, eps := range eset {
			h.subsetsContaining(eps, p, func(y []int) bool {
				h.AlmostMatchings(eps, y, func(m []int) bool {
					sawAMM = true
					if len(m) < best {
						best = len(m)
					}
					return true
				})
				return true
			})
		}
	}
	return best, sawAMM
}

// Theorem5Bound returns the analytic lower bound of Theorem 5 on the
// degree of fair concurrency of CC2∘TC: minMM − MaxMin + 1 (at least 1).
func (h *H) Theorem5Bound() int {
	minMM, _ := h.MinMaximalMatching()
	b := minMM - h.MaxMin() + 1
	if b < 1 {
		b = 1
	}
	return b
}

// Theorem8Bound returns the analytic lower bound of Theorem 8 on the
// degree of fair concurrency of CC3∘TC: minMM − MaxHEdge + 1 (at least 1).
func (h *H) Theorem8Bound() int {
	minMM, _ := h.MinMaximalMatching()
	b := minMM - h.MaxHEdge() + 1
	if b < 1 {
		b = 1
	}
	return b
}
