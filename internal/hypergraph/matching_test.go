package hypergraph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestIsMatching(t *testing.T) {
	h := Figure1()
	if !h.IsMatching([]int{0, 3}) { // {1,2} and {3,6} disjoint
		t.Error("{0,3} should be a matching")
	}
	if h.IsMatching([]int{0, 1}) { // share vertices 0,1
		t.Error("{0,1} should not be a matching")
	}
	if !h.IsMatching(nil) {
		t.Error("empty set is a matching")
	}
}

func TestMaximalMatchingsFigure2(t *testing.T) {
	h := Figure2() // edges e0={0,1}, e1={0,2,4}, e2={2,3}
	mms := h.MaximalMatchings()
	// Matchings: {e0,e2} maximal; {e1} maximal (blocks e0 via 0, e2 via 2);
	// {e0} not maximal (e2 addable); {e2} not maximal; {e1} maximal.
	want := [][]int{{0, 2}, {1}}
	sortMatchings(mms)
	sortMatchings(want)
	if !reflect.DeepEqual(mms, want) {
		t.Fatalf("MM(fig2) = %v, want %v", mms, want)
	}
	size, witness := h.MinMaximalMatching()
	if size != 1 || !reflect.DeepEqual(witness, []int{1}) {
		t.Fatalf("minMM = %d (%v), want 1 ({1})", size, witness)
	}
	maxSize, _ := h.MaxMatching()
	if maxSize != 2 {
		t.Fatalf("max matching = %d, want 2", maxSize)
	}
}

func TestMaximalMatchingsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(6)
		m := n - 1 + rng.Intn(4)
		h := RandomMixed(n, m, 3, rng)
		mms := h.MaximalMatchings()
		if len(mms) == 0 {
			t.Fatal("non-empty hypergraph must have at least one maximal matching")
		}
		for _, mm := range mms {
			if !h.IsMaximalMatching(mm, nil) {
				t.Fatalf("enumerated matching %v not maximal in %v", mm, h)
			}
		}
		// Distinctness.
		seen := map[string]bool{}
		for _, mm := range mms {
			k := Edge(mm).String()
			if seen[k] {
				t.Fatalf("duplicate maximal matching %v", mm)
			}
			seen[k] = true
		}
	}
}

func TestIsMaximalMatchingMask(t *testing.T) {
	h := Figure2()
	mask := []bool{true, false, true} // forbid e1
	// With e1 removed, {e0,e2} is the unique maximal matching.
	if !h.IsMaximalMatching([]int{0, 2}, mask) {
		t.Error("{0,2} should be maximal under mask")
	}
	if h.IsMaximalMatching([]int{0}, mask) {
		t.Error("{0} is extensible by e2 under mask")
	}
	if h.IsMaximalMatching([]int{1}, mask) {
		t.Error("matchings using masked-out edges are invalid")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	h := CompletePairs(6)
	count := 0
	h.EnumerateMaximalMatchings(nil, func(m []int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed: %d callbacks", count)
	}
}

func TestMinMaximalMatchingKnownValues(t *testing.T) {
	cases := []struct {
		name string
		h    *H
		want int
	}{
		// Path with 4 edges {01,12,23,34}: smallest maximal matching {12,34}? no:
		// {12} blocks 01,23 but 34 free -> {12,34} wait that's size2... try {12}: 34 addable.
		// Known: min maximal matching of P5 (5 vertices path) = 2.
		{"path5", CommitteePath(5), 2},
		// Ring of 6: min maximal matching of C6 = 2.
		{"ring6", CommitteeRing(6), 2},
		// Star: every maximal matching has exactly 1 edge.
		{"star6", Star(6), 1},
		// Disjoint: the unique maximal matching takes all k edges.
		{"disjoint4", DisjointCommittees(4, 2), 4},
		// Chain of triples {012},{234},{456}: {234} alone is maximal -> 1.
		{"triples3", ChainOfTriples(3), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, witness := c.h.MinMaximalMatching()
			if got != c.want {
				t.Fatalf("minMM = %d (%v), want %d", got, witness, c.want)
			}
			if !c.h.IsMaximalMatching(witness, nil) {
				t.Fatalf("witness %v not a maximal matching", witness)
			}
		})
	}
}

func TestMinMaximalNoEdges(t *testing.T) {
	h := MustNew(3, nil)
	size, w := h.MinMaximalMatching()
	if size != 0 || w != nil {
		t.Fatalf("edgeless: got %d %v", size, w)
	}
}

func TestAlmostMatchings(t *testing.T) {
	// Figure 2: e1 = {0,2,4} (paper's {1,3,5}). Take eps=e1, X={4} (prof 5).
	// H_X keeps e0={0,1}, e2={2,3} (both avoid vertex 4), drops e1.
	// MM of H_X = { {e0,e2} }. Almost requires members of e1 \ X = {0,2}
	// covered: e0 covers 0, e2 covers 2. So Almost(e1,{4}) = {{e0,e2}}.
	h := Figure2()
	var got [][]int
	h.AlmostMatchings(1, []int{4}, func(m []int) bool {
		c := append([]int(nil), m...)
		sort.Ints(c)
		got = append(got, c)
		return true
	})
	want := [][]int{{0, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Almost(e1,{4}) = %v, want %v", got, want)
	}
}

func TestAlmostMatchingsCoverageFilter(t *testing.T) {
	// Chain of triples {0,1,2},{2,3,4}: eps = e0, X = {0}.
	// H_X keeps only e1 (e0 contains 0). MM(H_X) = {{e1}}.
	// Need coverage of e0 \ X = {1,2}: e1 covers 2 but not 1 -> Almost empty.
	h := ChainOfTriples(2)
	count := 0
	h.AlmostMatchings(0, []int{0}, func(m []int) bool {
		count++
		return true
	})
	if count != 0 {
		t.Fatalf("Almost should be empty, got %d matchings", count)
	}
	// With X = {0,1}, need coverage of {2}: e1 covers 2 -> one matching.
	count = 0
	h.AlmostMatchings(0, []int{0, 1}, func(m []int) bool {
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("Almost({0,1}) should have 1 matching, got %d", count)
	}
}

func TestMinAMMAndBounds(t *testing.T) {
	for _, c := range []struct {
		name string
		h    *H
	}{
		{"fig1", Figure1()},
		{"fig2", Figure2()},
		{"fig4", Figure4()},
		{"ring8", CommitteeRing(8)},
		{"path6", CommitteePath(6)},
		{"triples4", ChainOfTriples(4)},
		{"star5", Star(5)},
	} {
		t.Run(c.name, func(t *testing.T) {
			minMM, _ := c.h.MinMaximalMatching()
			amm, _ := c.h.MinAMM()
			ammP, _ := c.h.MinAMMPrime()
			// Theorem 4 target is min over MM ∪ AMM <= minMM.
			if amm > minMM {
				t.Fatalf("min(MM∪AMM)=%d > minMM=%d", amm, minMM)
			}
			if ammP > minMM {
				t.Fatalf("min(MM∪AMM')=%d > minMM=%d", ammP, minMM)
			}
			// AMM' ⊇ AMM (ranges over more edges), so its min can only be <=.
			if ammP > amm {
				t.Fatalf("min over AMM'=%d > min over AMM=%d", ammP, amm)
			}
			// Theorem 5: min(MM∪AMM) >= minMM - MaxMin + 1.
			if b := c.h.Theorem5Bound(); amm < b {
				t.Fatalf("Theorem 5 violated: min(MM∪AMM)=%d < bound %d", amm, b)
			}
			// Theorem 8: min(MM∪AMM') >= minMM - MaxHEdge + 1.
			if b := c.h.Theorem8Bound(); ammP < b {
				t.Fatalf("Theorem 8 violated: min(MM∪AMM')=%d < bound %d", ammP, b)
			}
		})
	}
}

func TestTheoremBoundsFloorAtOne(t *testing.T) {
	// Star: minMM = 1, MaxMin = 2 -> raw bound 0, floored to 1.
	h := Star(6)
	if b := h.Theorem5Bound(); b != 1 {
		t.Fatalf("star Theorem5Bound = %d, want 1", b)
	}
	if b := h.Theorem8Bound(); b != 1 {
		t.Fatalf("star Theorem8Bound = %d, want 1", b)
	}
}

func TestTheoremBoundsProperty(t *testing.T) {
	// Property over random hypergraphs: Theorem 5 and 8 inequalities hold
	// for the exactly computed minima.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		m := n - 1 + rng.Intn(3)
		h := RandomMixed(n, m, 3, rng)
		amm, _ := h.MinAMM()
		ammP, _ := h.MinAMMPrime()
		return amm >= h.Theorem5Bound() && ammP >= h.Theorem8Bound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sortMatchings(ms [][]int) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
