package hypergraph

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Parse builds a hypergraph from a compact textual spec, used by the
// command-line tools:
//
//	fig1 | fig2 | fig3 | fig4      paper figures
//	ring:N                          N professors, committees {i, i+1 mod N}
//	path:N                          path of binary committees
//	star:N                          hub professor in every committee
//	complete:N                      one committee per professor pair
//	triples:K                       K overlapping 3-member committees
//	disjoint:K,S                    K disjoint committees of size S
//	grid:R,C                        R×C grid of binary committees
//	kuniform:N,M,K                  random connected K-uniform (M committees)
//	mixed:N,M,KMAX                  random connected, sizes 2..KMAX
//	bipartite:A,B,M,KMAX            random bipartite committees (both sides in every committee)
//	density:N,PCT,KMAX              random, committee count at PCT% of the density sweep
//	scenario:MAXN                   a random scenario family with <= MAXN professors
//	custom:{0,1};{1,2,3};...        explicit committee list (0-based)
//
// Random families draw from rng (required only for them).
//
// Out-of-range sizes (ring:0, disjoint:0,1, …) are reported as errors:
// the generators guard their preconditions with string panics, which
// Parse converts into usage errors so the CLIs exit 2 with a message
// instead of crashing. Only those deliberate panics are converted —
// runtime errors (a genuine generator bug) still crash loudly.
func Parse(spec string, rng *rand.Rand) (h *H, err error) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case string:
			err = fmt.Errorf("hypergraph: invalid topology %q: %s", spec, r)
		default:
			panic(r)
		}
	}()
	name, arg, _ := strings.Cut(spec, ":")
	ints := func(k int) ([]int, error) {
		parts := strings.Split(arg, ",")
		if len(parts) != k {
			return nil, fmt.Errorf("hypergraph: %s needs %d comma-separated ints, got %q", name, k, arg)
		}
		out := make([]int, k)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("hypergraph: bad int %q in %q", p, spec)
			}
			out[i] = v
		}
		return out, nil
	}
	switch name {
	case "fig1", "figure1":
		return Figure1(), nil
	case "fig2", "figure2":
		return Figure2(), nil
	case "fig3", "figure3":
		return Figure3(), nil
	case "fig4", "figure4":
		return Figure4(), nil
	case "ring":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		return CommitteeRing(v[0]), nil
	case "path":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		return CommitteePath(v[0]), nil
	case "star":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		return Star(v[0]), nil
	case "complete":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		return CompletePairs(v[0]), nil
	case "triples":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		return ChainOfTriples(v[0]), nil
	case "disjoint":
		v, err := ints(2)
		if err != nil {
			return nil, err
		}
		return DisjointCommittees(v[0], v[1]), nil
	case "grid":
		v, err := ints(2)
		if err != nil {
			return nil, err
		}
		return Grid(v[0], v[1]), nil
	case "kuniform":
		v, err := ints(3)
		if err != nil {
			return nil, err
		}
		if rng == nil {
			return nil, fmt.Errorf("hypergraph: %s needs a random source", name)
		}
		return RandomKUniform(v[0], v[1], v[2], rng), nil
	case "mixed":
		v, err := ints(3)
		if err != nil {
			return nil, err
		}
		if rng == nil {
			return nil, fmt.Errorf("hypergraph: %s needs a random source", name)
		}
		return RandomMixed(v[0], v[1], v[2], rng), nil
	case "bipartite":
		v, err := ints(4)
		if err != nil {
			return nil, err
		}
		if rng == nil {
			return nil, fmt.Errorf("hypergraph: %s needs a random source", name)
		}
		return RandomBipartite(v[0], v[1], v[2], v[3], rng), nil
	case "density":
		v, err := ints(3)
		if err != nil {
			return nil, err
		}
		if rng == nil {
			return nil, fmt.Errorf("hypergraph: %s needs a random source", name)
		}
		return RandomDensity(v[0], float64(v[1])/100, v[2], rng), nil
	case "scenario":
		v, err := ints(1)
		if err != nil {
			return nil, err
		}
		if rng == nil {
			return nil, fmt.Errorf("hypergraph: %s needs a random source", name)
		}
		return RandomScenario(rng, v[0]), nil
	case "custom":
		var edges []Edge
		max := -1
		for _, part := range strings.Split(arg, ";") {
			part = strings.Trim(strings.TrimSpace(part), "{}")
			if part == "" {
				continue
			}
			var e Edge
			for _, f := range strings.Split(part, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, fmt.Errorf("hypergraph: bad vertex %q in %q", f, spec)
				}
				e = append(e, v)
				if v > max {
					max = v
				}
			}
			edges = append(edges, e)
		}
		if len(edges) == 0 {
			return nil, fmt.Errorf("hypergraph: custom spec %q has no committees", spec)
		}
		return New(max+1, edges)
	}
	return nil, fmt.Errorf("hypergraph: unknown topology %q", spec)
}
