package hypergraph

import (
	"math/rand"
	"testing"
)

func TestParse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		spec string
		n, m int
	}{
		{"fig1", 6, 5},
		{"figure2", 5, 3},
		{"fig3", 10, 9},
		{"fig4", 9, 4},
		{"ring:7", 7, 7},
		{"path:5", 5, 4},
		{"star:6", 6, 5},
		{"complete:4", 4, 6},
		{"triples:3", 7, 3},
		{"disjoint:3,2", 6, 3},
		{"grid:2,3", 6, 7},
		{"kuniform:8,9,3", 8, 9},
		{"mixed:6,8,3", 6, 8},
		{"custom:{0,1};{1,2,3}", 4, 2},
	}
	for _, c := range cases {
		t.Run(c.spec, func(t *testing.T) {
			h, err := Parse(c.spec, rng)
			if err != nil {
				t.Fatal(err)
			}
			if h.N() != c.n || h.M() != c.m {
				t.Fatalf("%s: n=%d m=%d, want %d/%d", c.spec, h.N(), h.M(), c.n, c.m)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "nope", "ring:x", "ring:1,2", "grid:3",
		"custom:", "custom:{a,b}", "kuniform:8,9,3" /* no rng */, "mixed:6,8,3",
	} {
		var rng *rand.Rand // nil: random families must error
		if _, err := Parse(spec, rng); err == nil {
			t.Fatalf("Parse(%q) should fail", spec)
		}
	}
}
