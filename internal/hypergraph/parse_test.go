package hypergraph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		spec string
		n, m int
	}{
		{"fig1", 6, 5},
		{"figure2", 5, 3},
		{"fig3", 10, 9},
		{"fig4", 9, 4},
		{"ring:7", 7, 7},
		{"path:5", 5, 4},
		{"star:6", 6, 5},
		{"complete:4", 4, 6},
		{"triples:3", 7, 3},
		{"disjoint:3,2", 6, 3},
		{"grid:2,3", 6, 7},
		{"kuniform:8,9,3", 8, 9},
		{"mixed:6,8,3", 6, 8},
		{"custom:{0,1};{1,2,3}", 4, 2},
	}
	for _, c := range cases {
		t.Run(c.spec, func(t *testing.T) {
			h, err := Parse(c.spec, rng)
			if err != nil {
				t.Fatal(err)
			}
			if h.N() != c.n || h.M() != c.m {
				t.Fatalf("%s: n=%d m=%d, want %d/%d", c.spec, h.N(), h.M(), c.n, c.m)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "nope", "ring:x", "ring:1,2", "grid:3",
		"custom:", "custom:{a,b}", "kuniform:8,9,3" /* no rng */, "mixed:6,8,3",
	} {
		var rng *rand.Rand // nil: random families must error
		if _, err := Parse(spec, rng); err == nil {
			t.Fatalf("Parse(%q) should fail", spec)
		}
	}
}

// TestParseOutOfRangeSizes: generator precondition panics surface as
// errors, so CLI flag grammars reject ring:0 and friends with a usage
// message instead of a stack trace.
func TestParseOutOfRangeSizes(t *testing.T) {
	for _, spec := range []string{
		"ring:0", "ring:-4", "ring:2", "path:1", "star:1", "complete:0",
		"triples:0", "disjoint:0,2", "disjoint:2,1", "grid:0,0",
	} {
		h, err := Parse(spec, nil)
		if err == nil {
			t.Errorf("Parse(%q) accepted: %v", spec, h)
			continue
		}
		if !strings.Contains(err.Error(), "invalid topology") {
			t.Errorf("Parse(%q): error %q should name the invalid topology", spec, err)
		}
	}
}
