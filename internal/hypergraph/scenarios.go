package hypergraph

import (
	"fmt"
	"math/rand"
)

// Randomized scenario generation: the adversarial counterpart to the
// fixed paper fixtures. These families feed the exhaustive checker
// (internal/explore), the property-based test harness, the fuzz
// targets, cccheck's random mode, and the CLI topology specs
// `bipartite:A,B,M,KMAX`, `density:N,PCT,KMAX` and `scenario:MAXN`
// (see Parse) — committee structures the authors never drew: random
// conflict graphs at parameterized density, stars, cliques and
// bipartite committee structures.

// RandomBipartite returns a connected random hypergraph whose vertices
// split into a left part of size a and a right part of size b, and every
// committee has at least one member from each side (the classical
// "professors × departments" committee structure). m committees total,
// sizes 2..kmax. Requires a, b >= 1, kmax >= 2 and m large enough to
// connect both sides (m >= a+b-1).
func RandomBipartite(a, b, m, kmax int, rng *rand.Rand) *H {
	n := a + b
	if a < 1 || b < 1 {
		panic(fmt.Sprintf("hypergraph: RandomBipartite needs a, b >= 1, got a=%d b=%d", a, b))
	}
	if kmax < 2 || kmax > n {
		panic("hypergraph: RandomBipartite needs 2 <= kmax <= a+b")
	}
	if m < n-1 {
		panic(fmt.Sprintf("hypergraph: RandomBipartite needs m >= a+b-1 for connectivity (m=%d)", m))
	}
	left, right := rng.Perm(a), rng.Perm(b)
	for i := range right {
		right[i] += a
	}
	var edges []Edge
	seen := make(map[string]bool)
	add := func(e Edge) bool {
		c := e.clone()
		sortInts(c)
		key := c.String()
		if seen[key] {
			return false
		}
		seen[key] = true
		edges = append(edges, c)
		return true
	}
	// Spanning zigzag: consecutive left/right vertices share binary
	// committees, so G_H is connected and every committee is bipartite.
	long, short := left, right
	if len(right) > len(left) {
		long, short = right, left
	}
	for i, v := range long {
		add(Edge{v, short[i%len(short)]})
	}
	for i := 0; i+1 < len(short); i++ {
		add(Edge{long[0], short[i+1]})
	}
	// At most Σ_k [C(n,k) − C(a,k) − C(b,k)] distinct committees touch
	// both sides; clamp m so the rejection loop cannot exhaust the space.
	// When the total saturates, the space is far larger than any clamp
	// we'd apply (and the subtraction would be meaningless), so skip.
	if tot := maxCommittees(n, kmax); tot < 1<<20 {
		if c := tot - maxCommittees(a, kmax) - maxCommittees(b, kmax); m > c {
			m = c
		}
	}
	guard := 0
	for len(edges) < m {
		k := 2 + rng.Intn(kmax-1)
		e := Edge{left[rng.Intn(a)], right[rng.Intn(b)]}
		for len(e) < k {
			e = appendUnique(e, rng.Intn(n))
		}
		if !add(e) {
			guard++
			if guard > 10000 {
				panic("hypergraph: RandomBipartite cannot find enough distinct committees")
			}
		}
	}
	return MustNew(n, edges)
}

// maxCommittees returns the number of distinct committees of sizes
// 2..kmax over n professors, saturating at 1<<20 (callers only use it to
// clamp requested committee counts).
func maxCommittees(n, kmax int) int {
	const limit = 1 << 20
	total := 0
	for k := 2; k <= kmax && k <= n; k++ {
		c := 1
		for i := 0; i < k; i++ {
			c = c * (n - i) / (i + 1)
			if c >= limit {
				return limit
			}
		}
		total += c
		if total >= limit {
			return limit
		}
	}
	return total
}

// RandomDensity returns a connected random hypergraph over n professors
// whose committee count interpolates with density ∈ [0, 1]: density 0
// gives the sparsest connected structure (a spanning chain, n-1 binary
// committees), density 1 gives 3n committees of sizes 2..kmax. The
// committee conflict graph thickens accordingly, which is the knob the
// concurrency experiments and the randomized checker harness sweep.
func RandomDensity(n int, density float64, kmax int, rng *rand.Rand) *H {
	if n < 2 {
		panic(fmt.Sprintf("hypergraph: RandomDensity needs n >= 2, got %d", n))
	}
	if density < 0 {
		density = 0
	}
	if density > 1 {
		density = 1
	}
	if kmax > n {
		kmax = n
	}
	if kmax < 2 {
		kmax = 2
	}
	lo, hi := n-1, 3*n
	m := lo + int(density*float64(hi-lo)+0.5)
	if c := maxCommittees(n, kmax); m > c {
		m = c
	}
	return RandomMixed(n, m, kmax, rng)
}

// RandomScenario draws a random committee-coordination scenario: one of
// the parameterized families (ring, path, star, clique, chained triples,
// disjoint committees, k-uniform, mixed-size, bipartite, density-swept,
// grid) with random parameters bounded by maxN professors. It never
// returns fewer than 3 professors or fewer than 2 committees. This is
// the topology source for the property-based harness, the fuzz target
// and cccheck's random mode.
func RandomScenario(rng *rand.Rand, maxN int) *H {
	if maxN < 6 {
		maxN = 6
	}
	pick := func(lo, hi int) int { // inclusive, hi >= lo
		return lo + rng.Intn(hi-lo+1)
	}
	switch rng.Intn(10) {
	case 0:
		return CommitteeRing(pick(3, maxN))
	case 1:
		return CommitteePath(pick(3, maxN))
	case 2:
		return Star(pick(3, maxN))
	case 3:
		// Clique: every pair of professors shares a committee.
		return CompletePairs(pick(3, min(maxN, 7)))
	case 4:
		return ChainOfTriples(pick(2, (maxN-1)/2))
	case 5:
		s := pick(2, 3)
		return DisjointCommittees(pick(2, max(2, maxN/s)), s)
	case 6:
		n := pick(4, maxN)
		k := pick(2, min(4, n-1)) // k < n: with k = n only one committee exists
		m := n/(k-1) + 1 + rng.Intn(n)
		if c := maxCommittees(n, k) - maxCommittees(n, k-1); m > c {
			m = c // only C(n,k) distinct k-committees exist
		}
		return RandomKUniform(n, m, k, rng)
	case 7:
		n := pick(4, maxN)
		kmax := pick(2, min(5, n))
		m := n - 1 + rng.Intn(n+1)
		if c := maxCommittees(n, kmax); m > c {
			m = c
		}
		return RandomMixed(n, m, kmax, rng)
	case 8:
		a := pick(2, maxN/2)
		b := pick(2, maxN-a)
		return RandomBipartite(a, b, a+b-1+rng.Intn(a+b), pick(2, min(4, a+b)), rng)
	default:
		n := pick(4, maxN)
		return RandomDensity(n, rng.Float64(), pick(2, min(5, n)), rng)
	}
}
