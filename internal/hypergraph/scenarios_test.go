package hypergraph

import (
	"math/rand"
	"testing"
)

// checkInvariants asserts the structural invariants every generated
// hypergraph must satisfy; shared with the fuzz target.
func checkInvariants(t testing.TB, h *H) {
	t.Helper()
	if h.M() < 1 {
		t.Fatalf("%s: no committees", h)
	}
	// Every edge: >= 2 distinct members, sorted, in range.
	for i, e := range h.Edges() {
		if len(e) < 2 {
			t.Fatalf("%s: edge %d has %d members", h, i, len(e))
		}
		for j, v := range e {
			if v < 0 || v >= h.N() {
				t.Fatalf("%s: edge %d member %d out of range", h, i, v)
			}
			if j > 0 && e[j-1] >= v {
				t.Fatalf("%s: edge %d not sorted/distinct: %v", h, i, e)
			}
		}
	}
	// Membership symmetric: v ∈ Edge(e) ⇔ e ∈ EdgesOf(v).
	for v := 0; v < h.N(); v++ {
		for _, e := range h.EdgesOf(v) {
			if !h.Edge(e).Contains(v) {
				t.Fatalf("%s: EdgesOf(%d) lists %d but edge lacks the vertex", h, v, e)
			}
		}
	}
	for i, e := range h.Edges() {
		for _, v := range e {
			found := false
			for _, ei := range h.EdgesOf(v) {
				if ei == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: vertex %d in edge %d but EdgesOf misses it", h, v, i)
			}
		}
	}
	// Conflict graph consistent with shared members, and symmetric.
	cg := h.ConflictGraph()
	for i := 0; i < h.M(); i++ {
		for j := 0; j < h.M(); j++ {
			if i == j {
				continue
			}
			conflicts := h.Edge(i).Conflicts(h.Edge(j))
			listed := false
			for _, d := range cg[i] {
				if d == j {
					listed = true
					break
				}
			}
			share := false
			for _, v := range h.Edge(i) {
				if h.Edge(j).Contains(v) {
					share = true
					break
				}
			}
			if conflicts != share || listed != share {
				t.Fatalf("%s: conflict inconsistency between edges %d and %d (conflicts=%v listed=%v share=%v)",
					h, i, j, conflicts, listed, share)
			}
		}
	}
	// G_H neighbor symmetry.
	for v := 0; v < h.N(); v++ {
		for _, u := range h.Neighbors(v) {
			sym := false
			for _, w := range h.Neighbors(u) {
				if w == v {
					sym = true
					break
				}
			}
			if !sym {
				t.Fatalf("%s: neighbor relation asymmetric (%d, %d)", h, v, u)
			}
		}
	}
}

func TestRandomBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		a, b := 1+rng.Intn(5), 1+rng.Intn(5)
		kmax := 2 + rng.Intn(3)
		if kmax > a+b {
			kmax = a + b
		}
		m := a + b - 1 + rng.Intn(6)
		h := RandomBipartite(a, b, m, kmax, rng)
		checkInvariants(t, h)
		if !h.Connected() {
			t.Fatalf("bipartite a=%d b=%d m=%d: disconnected %s", a, b, m, h)
		}
		for i, e := range h.Edges() {
			hasL, hasR := false, false
			for _, v := range e {
				if v < a {
					hasL = true
				} else {
					hasR = true
				}
			}
			if !hasL || !hasR {
				t.Fatalf("bipartite edge %d single-sided: %v (a=%d)", i, e, a)
			}
		}
	}
}

func TestRandomDensitySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prev := 0
	for _, density := range []float64{0, 0.25, 0.5, 1} {
		h := RandomDensity(10, density, 3, rng)
		checkInvariants(t, h)
		if !h.Connected() {
			t.Fatalf("density %.2f: disconnected", density)
		}
		if h.M() < prev {
			t.Fatalf("density %.2f: committee count %d dropped below %d", density, h.M(), prev)
		}
		prev = h.M()
	}
	if sparse := RandomDensity(10, 0, 3, rng); sparse.M() != 9 {
		t.Fatalf("density 0 should give n-1 committees, got %d", sparse.M())
	}
	// Out-of-range densities clamp.
	checkInvariants(t, RandomDensity(6, -1, 2, rng))
	checkInvariants(t, RandomDensity(6, 7, 9, rng))
}

func TestRandomScenarioInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	families := map[string]bool{}
	for trial := 0; trial < 300; trial++ {
		h := RandomScenario(rng, 12)
		checkInvariants(t, h)
		if h.N() < 3 || h.M() < 2 {
			t.Fatalf("trial %d: degenerate scenario %s", trial, h)
		}
		families[shape(h)] = true
	}
	if len(families) < 4 {
		t.Fatalf("scenario generator lacks diversity: %v", families)
	}
}

// shape is a crude scenario classifier used only to assert diversity.
func shape(h *H) string {
	switch {
	case !h.Connected():
		return "disconnected"
	case h.MaxHEdge() == 2 && h.M() == h.N():
		return "ring-like"
	case h.MaxHEdge() == 2:
		return "binary"
	default:
		return "hyper"
	}
}

func TestMaxCommitteesSaturates(t *testing.T) {
	if got := maxCommittees(4, 2); got != 6 {
		t.Fatalf("C(4,2) = 6, got %d", got)
	}
	if got := maxCommittees(5, 3); got != 20 { // C(5,2)+C(5,3) = 10+10
		t.Fatalf("want 20, got %d", got)
	}
	if got := maxCommittees(100, 50); got != 1<<20 {
		t.Fatalf("expected saturation, got %d", got)
	}
}
