// Package loadgen drives mixed load — job submissions, SSE watches,
// status queries — against one or more ccserve base URLs and reports
// what the fleet actually delivered: throughput, a latency histogram,
// shed counts, and the invariant the push plane is sold on, terminal
// events delivered vs dropped.
//
// A watch "drop" is scored only after the full client contract fails:
// the stream ended without a terminal event AND reconnecting with the
// Last-Event-ID watermark (the documented resume path, bounded
// retries) still never produced one. Slow-consumer eviction alone is
// not a drop — eviction plus resume is how the broker sheds load
// without blocking publishers.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pubsub"
	"repro/internal/store"
)

// Config parameterizes one load run.
type Config struct {
	// Targets are the ccserve base URLs (required). Each operation
	// picks one uniformly, so a gossiping fleet is exercised cross-peer
	// by construction.
	Targets []string
	// Clients is the number of concurrent client goroutines
	// (default 64).
	Clients int
	// Duration is the wall-clock run length (default 10s). Clients
	// finish their in-flight operation after it elapses.
	Duration time.Duration
	// Specs is the submission mix (required non-empty). Repeats are
	// intentional: they exercise in-flight dedup and store hits.
	Specs []store.JobSpec
	// SubmitWeight, WatchWeight and QueryWeight set the operation mix
	// (defaults 1, 2, 1). A client's first operation is always a
	// submission, so watches and queries have ids to aim at.
	SubmitWeight, WatchWeight, QueryWeight int
	// Seed makes the operation schedule reproducible (client i derives
	// its RNG from Seed+i).
	Seed int64
	// Client overrides the HTTP client (nil = a pooled transport sized
	// for Clients concurrent connections).
	Client *http.Client
}

// Report is the aggregate outcome of a run; it marshals to the
// BENCH_serve.json schema.
type Report struct {
	Targets   int     `json:"targets"`
	Clients   int     `json:"clients"`
	Seconds   float64 `json:"seconds"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`

	Submits   int64 `json:"submits"`
	CacheHits int64 `json:"cache_hits"`
	Watches   int64 `json:"watches"`
	Queries   int64 `json:"queries"`

	// Shed counts 429 responses — backpressure working as designed,
	// scored separately from Errors (transport failures, 5xx, bad
	// bodies).
	Shed   int64 `json:"shed"`
	Errors int64 `json:"errors"`

	// Terminals counts watch streams that delivered a terminal event;
	// DroppedTerminals counts streams that never did, resume included.
	// The acceptance gate is DroppedTerminals == 0.
	Terminals        int64 `json:"terminals"`
	DroppedTerminals int64 `json:"dropped_terminals"`
	WatchReconnects  int64 `json:"watch_reconnects"`

	Latency LatencySummary `json:"latency"`

	// Fleet is each target's own /metrics view scraped after the run:
	// the server-side request histogram and push/gossip counters,
	// pinned next to the client-side numbers they must explain.
	Fleet []TargetMetrics `json:"fleet,omitempty"`
}

// TargetMetrics is the slice of one ccserve /metrics scrape the
// report cares about.
type TargetMetrics struct {
	Target            string           `json:"target"`
	HTTPRequestCount  int64            `json:"http_request_count"`
	HTTPRequestSumSec float64          `json:"http_request_sum_seconds"`
	HTTPBuckets       map[string]int64 `json:"http_request_buckets,omitempty"`
	EventsPublished   int64            `json:"events_published"`
	WatchEvictions    int64            `json:"watch_evictions"`
	GossipIngested    int64            `json:"gossip_ingested"`
	GossipLogSeq      int64            `json:"gossip_log_seq"`
}

// LatencySummary is the client-side per-operation latency histogram
// (watch latency = time to terminal event).
type LatencySummary struct {
	Count   int64            `json:"count"`
	P50ms   float64          `json:"p50_ms"`
	P90ms   float64          `json:"p90_ms"`
	P99ms   float64          `json:"p99_ms"`
	MaxMs   float64          `json:"max_ms"`
	Buckets map[string]int64 `json:"buckets"`
}

// latencyBuckets are the histogram upper bounds in seconds, matched
// to the server's ccserve_http_request_seconds buckets so the two
// sides of a run line up.
const latencyBucketCount = 13

var latencyBuckets = [latencyBucketCount]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type hist struct {
	counts [latencyBucketCount + 1]atomic.Int64
	count  atomic.Int64
	maxNs  atomic.Int64
}

func (h *hist) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		cur := h.maxNs.Load()
		if d.Nanoseconds() <= cur || h.maxNs.CompareAndSwap(cur, d.Nanoseconds()) {
			return
		}
	}
}

// quantile returns the upper bound of the bucket holding the q-th
// sample — a conservative (over-)estimate, the standard histogram
// quantile.
func (h *hist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			if i < len(latencyBuckets) {
				return latencyBuckets[i]
			}
			return float64(h.maxNs.Load()) / 1e9
		}
	}
	return float64(h.maxNs.Load()) / 1e9
}

func (h *hist) summary() LatencySummary {
	s := LatencySummary{
		Count:   h.count.Load(),
		P50ms:   h.quantile(0.50) * 1000,
		P90ms:   h.quantile(0.90) * 1000,
		P99ms:   h.quantile(0.99) * 1000,
		MaxMs:   float64(h.maxNs.Load()) / 1e6,
		Buckets: map[string]int64{},
	}
	for i, le := range latencyBuckets {
		s.Buckets[fmt.Sprintf("%g", le)] = h.counts[i].Load()
	}
	s.Buckets["+Inf"] = h.counts[len(latencyBuckets)].Load()
	return s
}

// watchRetries bounds resume attempts after a stream ends without a
// terminal (eviction, transient transport error) before scoring a
// dropped terminal.
const watchRetries = 5

type runner struct {
	cfg    Config
	client *http.Client
	hist   hist

	ops, submits, cacheHits, watches, queries int64
	shed, errors                              int64
	terminals, dropped, reconnects            int64

	mu  sync.Mutex
	ids []string // submitted job ids, the watch/query target pool
}

// Run executes the configured load against the targets and aggregates
// the report. It returns an error only for a bad Config — operation
// failures are counted, not fatal.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("loadgen: no specs")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 64
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.SubmitWeight <= 0 && cfg.WatchWeight <= 0 && cfg.QueryWeight <= 0 {
		cfg.SubmitWeight, cfg.WatchWeight, cfg.QueryWeight = 1, 2, 1
	}
	r := &runner{cfg: cfg, client: cfg.Client}
	if r.client == nil {
		r.client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Clients,
				MaxIdleConnsPerHost: cfg.Clients,
			},
		}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.clientLoop(ctx, rand.New(rand.NewSource(cfg.Seed+int64(i))))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := &Report{
		Targets: len(cfg.Targets), Clients: cfg.Clients, Seconds: elapsed,
		Ops: r.ops, Submits: r.submits, CacheHits: r.cacheHits,
		Watches: r.watches, Queries: r.queries,
		Shed: r.shed, Errors: r.errors,
		Terminals: r.terminals, DroppedTerminals: r.dropped,
		WatchReconnects: r.reconnects,
		Latency:         r.hist.summary(),
	}
	if elapsed > 0 {
		rep.OpsPerSec = float64(r.ops) / elapsed
	}
	for _, target := range cfg.Targets {
		if tm, err := scrapeMetrics(r.client, target); err == nil {
			rep.Fleet = append(rep.Fleet, tm)
		}
	}
	return rep, nil
}

// scrapeMetrics pulls one target's /metrics and extracts the
// server-side request histogram and push/gossip counters.
func scrapeMetrics(client *http.Client, target string) (TargetMetrics, error) {
	tm := TargetMetrics{Target: target}
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return tm, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return tm, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if le, found := strings.CutPrefix(name, `ccserve_http_request_seconds_bucket{le="`); found {
			le, _ = strings.CutSuffix(le, `"}`)
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				if tm.HTTPBuckets == nil {
					tm.HTTPBuckets = map[string]int64{}
				}
				tm.HTTPBuckets[le] = n
			}
			continue
		}
		f, ferr := strconv.ParseFloat(val, 64)
		if ferr != nil {
			continue
		}
		switch name {
		case "ccserve_http_request_seconds_count":
			tm.HTTPRequestCount = int64(f)
		case "ccserve_http_request_seconds_sum":
			tm.HTTPRequestSumSec = f
		case "ccserve_events_published_total":
			tm.EventsPublished = int64(f)
		case "ccserve_watch_evictions_total":
			tm.WatchEvictions = int64(f)
		case "ccserve_gossip_ingested_total":
			tm.GossipIngested = int64(f)
		case "ccserve_gossip_log_seq":
			tm.GossipLogSeq = int64(f)
		}
	}
	return tm, nil
}

func (r *runner) clientLoop(ctx context.Context, rng *rand.Rand) {
	total := r.cfg.SubmitWeight + r.cfg.WatchWeight + r.cfg.QueryWeight
	first := true
	for ctx.Err() == nil {
		target := r.cfg.Targets[rng.Intn(len(r.cfg.Targets))]
		op := rng.Intn(total)
		switch {
		case first || op < r.cfg.SubmitWeight:
			first = false
			r.submit(ctx, target, rng)
		case op < r.cfg.SubmitWeight+r.cfg.WatchWeight:
			r.watch(ctx, target, rng)
		default:
			r.query(ctx, target, rng)
		}
	}
}

func (r *runner) pickID(rng *rand.Rand) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ids) == 0 {
		return ""
	}
	return r.ids[rng.Intn(len(r.ids))]
}

func (r *runner) addID(id string) {
	r.mu.Lock()
	r.ids = append(r.ids, id)
	r.mu.Unlock()
}

// classify scores one finished HTTP operation.
func (r *runner) classify(resp *http.Response, err error, ctx context.Context) bool {
	atomic.AddInt64(&r.ops, 1)
	if err != nil {
		if ctx.Err() == nil {
			atomic.AddInt64(&r.errors, 1)
		}
		return false
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		atomic.AddInt64(&r.shed, 1)
		return false
	}
	if resp.StatusCode >= 500 {
		atomic.AddInt64(&r.errors, 1)
		return false
	}
	return true
}

func (r *runner) submit(ctx context.Context, target string, rng *rand.Rand) {
	spec := r.cfg.Specs[rng.Intn(len(r.cfg.Specs))]
	body, _ := json.Marshal(spec)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		atomic.AddInt64(&r.errors, 1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := r.client.Do(req)
	d := time.Since(start)
	if !r.classify(resp, err, ctx) {
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return
	}
	defer resp.Body.Close()
	r.hist.observe(d)
	atomic.AddInt64(&r.submits, 1)
	var v struct {
		ID     string `json:"id"`
		Cached bool   `json:"cached"`
	}
	if json.NewDecoder(resp.Body).Decode(&v) == nil && v.ID != "" {
		if v.Cached {
			atomic.AddInt64(&r.cacheHits, 1)
		}
		r.addID(v.ID)
	}
}

func (r *runner) query(ctx context.Context, target string, rng *rand.Rand) {
	id := r.pickID(rng)
	if id == "" {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/jobs/"+id, nil)
	if err != nil {
		atomic.AddInt64(&r.errors, 1)
		return
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	d := time.Since(start)
	ok := r.classify(resp, err, ctx)
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if ok {
		// 404 is a legal answer on a gossiping fleet: the id was
		// submitted to another peer and the verdict has not gossiped
		// over yet.
		r.hist.observe(d)
		atomic.AddInt64(&r.queries, 1)
	}
}

// watch runs one full watch contract against a job id: stream until a
// terminal event, resuming with the watermark after stream-ends, and
// score a terminal or — only once the retries are spent — a drop.
func (r *runner) watch(ctx context.Context, target string, rng *rand.Rand) {
	id := r.pickID(rng)
	if id == "" {
		return
	}
	atomic.AddInt64(&r.ops, 1)
	atomic.AddInt64(&r.watches, 1)
	start := time.Now()
	var after uint64
	known := true
	for attempt := 0; attempt <= watchRetries; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(&r.reconnects, 1)
		}
		term, seen, ok := r.watchOnce(ctx, target, id, &after)
		if term {
			r.hist.observe(time.Since(start))
			atomic.AddInt64(&r.terminals, 1)
			return
		}
		known = seen
		if !ok || ctx.Err() != nil {
			break
		}
	}
	if ctx.Err() != nil || !known {
		// The run ended mid-watch, or the peer never knew the id (it
		// was submitted elsewhere and has not gossiped over): not a
		// delivery failure of the push plane.
		return
	}
	atomic.AddInt64(&r.dropped, 1)
}

// watchOnce opens one SSE stream. It reports (terminal seen, id known
// to this peer, retry worthwhile) and advances the resume watermark.
func (r *runner) watchOnce(ctx context.Context, target, id string, after *uint64) (term, known, retry bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/jobs/"+id+"/watch", nil)
	if err != nil {
		atomic.AddInt64(&r.errors, 1)
		return false, true, false
	}
	if *after > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(*after))
	}
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			atomic.AddInt64(&r.errors, 1)
		}
		return false, true, true
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return false, false, false
	case resp.StatusCode == http.StatusTooManyRequests:
		atomic.AddInt64(&r.shed, 1)
		return false, true, true
	case resp.StatusCode != http.StatusOK:
		atomic.AddInt64(&r.errors, 1)
		return false, true, true
	}
	dec := pubsub.NewDecoder(resp.Body)
	for {
		ev, err := dec.Next()
		if err != nil {
			return false, true, true // stream ended (eviction or hangup): resume
		}
		if ev.Seq > *after {
			*after = ev.Seq
		}
		if pubsub.IsTerminal(ev.Type) {
			return true, true, false
		}
	}
}
