package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gossip"
	"repro/internal/serve"
	"repro/internal/store"
)

// newFleet builds n gossiping in-process ccserve peers (full mesh,
// background anti-entropy on a tight cadence) and returns their base
// URLs.
func newFleet(t *testing.T, n int) []string {
	t.Helper()
	type peer struct {
		sv atomic.Pointer[serve.Server]
	}
	urls := make([]string, n)
	peers := make([]*peer, n)
	stores := make([]store.Interface, n)
	for i := range urls {
		p := &peer{}
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sv := p.sv.Load()
			if sv == nil {
				http.Error(w, "starting", http.StatusServiceUnavailable)
				return
			}
			sv.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		urls[i], peers[i], stores[i] = ts.URL, p, st
	}
	for i := range urls {
		var neighbors []string
		for j, u := range urls {
			if j != i {
				neighbors = append(neighbors, u)
			}
		}
		p := peers[i]
		node := gossip.New(gossip.Config{
			Self: urls[i], Neighbors: neighbors, Store: stores[i],
			Interval: 100 * time.Millisecond,
			OnIngest: func(key string) {
				if sv := p.sv.Load(); sv != nil {
					sv.GossipIngested(key)
				}
			},
		})
		t.Cleanup(node.Close)
		sv, err := serve.New(serve.Config{
			Store: stores[i], Jobs: 2, JobWorkers: 1, Gossip: node,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.sv.Store(sv)
	}
	return urls
}

// TestLoadBattery is the in-process slice of the 10k acceptance run: a
// 3-peer gossiping fleet under about a thousand mixed clients, with
// the push plane's invariant enforced — every watch that reached a
// peer knowing the job received a terminal event; none were dropped.
func TestLoadBattery(t *testing.T) {
	clients := 1000
	dur := 4 * time.Second
	if testing.Short() {
		clients, dur = 128, 2*time.Second
	}
	urls := newFleet(t, 3)
	specs := make([]store.JobSpec, 6)
	for i := range specs {
		alg := "cc1"
		if i%2 == 1 {
			alg = "cc2"
		}
		specs[i] = store.JobSpec{
			Alg: alg, Topo: "ring:3", Daemon: "central", Init: "legit",
			MaxStates: 5_000 + i,
		}
	}

	rep, err := Run(context.Background(), Config{
		Targets: urls, Clients: clients, Duration: dur, Specs: specs, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("battery: %d ops (%.0f/s), %d submits (%d cached), %d watches, %d queries, %d shed, %d errors, %d terminals, %d reconnects",
		rep.Ops, rep.OpsPerSec, rep.Submits, rep.CacheHits, rep.Watches, rep.Queries,
		rep.Shed, rep.Errors, rep.Terminals, rep.WatchReconnects)

	if rep.DroppedTerminals != 0 {
		t.Fatalf("%d terminal events dropped", rep.DroppedTerminals)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d hard errors under load", rep.Errors)
	}
	if rep.Terminals == 0 {
		t.Fatal("no watch ever delivered a terminal event")
	}
	if rep.Submits == 0 || rep.CacheHits == 0 {
		t.Fatalf("mix did not exercise dedup: %d submits, %d cache hits", rep.Submits, rep.CacheHits)
	}
	if rep.Latency.Count == 0 || rep.Latency.MaxMs <= 0 {
		t.Fatalf("empty latency histogram: %+v", rep.Latency)
	}
	if len(rep.Fleet) != 3 {
		t.Fatalf("scraped %d fleet metric sets, want 3", len(rep.Fleet))
	}
	for _, tm := range rep.Fleet {
		if tm.HTTPRequestCount == 0 || len(tm.HTTPBuckets) == 0 {
			t.Fatalf("empty server-side histogram for %s: %+v", tm.Target, tm)
		}
	}
}

// TestRunRejectsBadConfig pins the usage errors.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{Specs: []store.JobSpec{{}}}); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := Run(context.Background(), Config{Targets: []string{"http://x"}}); err == nil {
		t.Fatal("no specs accepted")
	}
}

// TestHistQuantiles pins the histogram math the report is built on:
// bucketed counts, conservative quantiles, exact max.
func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := 0; i < 95; i++ {
		h.observe(2 * time.Millisecond) // le=0.0025 bucket
	}
	for i := 0; i < 5; i++ {
		h.observe(400 * time.Millisecond) // le=0.5 bucket
	}
	s := h.summary()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.P50ms != 2.5 || s.P90ms != 2.5 {
		t.Fatalf("p50 %g p90 %g, want 2.5 (bucket upper bound)", s.P50ms, s.P90ms)
	}
	if s.P99ms != 500 {
		t.Fatalf("p99 %g, want 500", s.P99ms)
	}
	if s.MaxMs != 400 {
		t.Fatalf("max %g, want 400", s.MaxMs)
	}
	if s.Buckets["0.0025"] != 95 || s.Buckets["0.5"] != 5 {
		t.Fatalf("buckets: %v", s.Buckets)
	}
}
