// Package metrics implements the measurement procedures behind the
// paper's complexity notions: the Degree of Fair Concurrency
// (Definition 5, Theorems 4/5/7/8), the Waiting Time in rounds
// (Definition 6, Theorem 6), throughput/concurrency profiles used by the
// algorithm comparison, and the token-circulation convergence time
// (Property 1). The experiment harness and the benchmark suite both
// build their tables from these procedures.
package metrics

import (
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/token"
)

// Concurrency is the result of a Degree-of-Fair-Concurrency experiment.
type Concurrency struct {
	Samples   int     // runs attempted
	Quiesced  int     // runs that reached a quiescent state
	Min       int     // minimum quiescent meeting count (the measured degree)
	Max       int     // maximum quiescent meeting count
	Mean      float64 // mean quiescent meeting count
	MinMM     int     // size of the smallest maximal matching
	Bound     int     // analytic lower bound (Theorem 5 for CC2, 8 for CC3)
	ExactMin  int     // exact min over MM∪AMM (CC2) or MM∪AMM' (CC3)
	HaveExact bool
}

// DegreeOfFairConcurrency measures Definition 5 empirically: run the
// fair algorithm with never-terminating meetings from `samples` random
// arbitrary configurations until quiescence, and record how many
// meetings hold in each quiescent state. exact additionally computes the
// theorem's exact combinatorial minimum (exponential; only for small
// topologies).
func DegreeOfFairConcurrency(variant core.Variant, h *hypergraph.H, samples, maxSteps int, seed int64, exact bool) Concurrency {
	return degreeOfFairConcurrency(variant, h, samples, maxSteps, seed, exact, false)
}

// DegreeOfFairConcurrencyNoMinSize is the §5.1 ablation of
// DegreeOfFairConcurrency: CC2 token holders pick among all incident
// committees instead of a smallest one (core.Alg.NoMinSize).
func DegreeOfFairConcurrencyNoMinSize(variant core.Variant, h *hypergraph.H, samples, maxSteps int, seed int64, exact bool) Concurrency {
	return degreeOfFairConcurrency(variant, h, samples, maxSteps, seed, exact, true)
}

func degreeOfFairConcurrency(variant core.Variant, h *hypergraph.H, samples, maxSteps int, seed int64, exact, noMinSize bool) Concurrency {
	res := Concurrency{Samples: samples, Min: -1}
	res.MinMM, _ = h.MinMaximalMatching()
	if variant == core.CC3 {
		res.Bound = h.Theorem8Bound()
	} else {
		res.Bound = h.Theorem5Bound()
	}
	if exact {
		if variant == core.CC3 {
			res.ExactMin, _ = h.MinAMMPrime()
		} else {
			res.ExactMin, _ = h.MinAMM()
		}
		res.HaveExact = true
	}
	type sample struct {
		quiesced bool
		k        int
	}
	outs := make([]sample, samples)
	par.ForEach(samples, func(i int) {
		alg := core.New(variant, h, nil)
		alg.NoMinSize = noMinSize
		env := core.NewInfiniteMeetings(alg, nil)
		r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed+int64(i), true)
		r.Run(maxSteps)
		if !r.Engine.Terminal() {
			return
		}
		outs[i] = sample{quiesced: true, k: len(alg.Meetings(r.Config()))}
	})
	sum := 0
	for _, o := range outs {
		if !o.quiesced {
			continue
		}
		res.Quiesced++
		sum += o.k
		if res.Min == -1 || o.k < res.Min {
			res.Min = o.k
		}
		if o.k > res.Max {
			res.Max = o.k
		}
	}
	if res.Quiesced > 0 {
		res.Mean = float64(sum) / float64(res.Quiesced)
	}
	if res.Min == -1 {
		res.Min = 0
	}
	return res
}

// Waiting is the result of a waiting-time experiment (Definition 6).
type Waiting struct {
	N           int
	MaxDisc     int // voluntary-discussion length in steps
	MaxRounds   int // max rounds any professor waited between meetings
	MeanRounds  float64
	Rounds      int // total rounds executed
	Convenes    int
	NormalizedN float64 // MaxRounds / (maxDisc * n): Theorem 6 predicts O(1)
}

// WaitingTime measures the maximum number of rounds a professor waits
// between successive meeting participations under the fair algorithm,
// from an arbitrary initial configuration (Theorem 6: O(maxDisc · n)).
func WaitingTime(variant core.Variant, h *hypergraph.H, maxDisc, steps int, seed int64) Waiting {
	alg := core.New(variant, h, nil)
	env := core.NewAlwaysClient(h.N(), maxDisc)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed, true)
	r.Run(steps)
	res := Waiting{N: h.N(), MaxDisc: maxDisc, Rounds: r.Engine.Rounds(), Convenes: r.TotalConvenes()}
	sum, cnt := 0, 0
	for p := 0; p < h.N(); p++ {
		if len(h.EdgesOf(p)) == 0 {
			continue
		}
		w := r.MaxWaitRounds[p]
		sum += w
		cnt++
		if w > res.MaxRounds {
			res.MaxRounds = w
		}
	}
	if cnt > 0 {
		res.MeanRounds = float64(sum) / float64(cnt)
	}
	if h.N() > 0 && maxDisc > 0 {
		res.NormalizedN = float64(res.MaxRounds) / float64(maxDisc*h.N())
	}
	return res
}

// Throughput is the comparison profile of one algorithm on one topology.
type Throughput struct {
	Steps            int
	Rounds           int
	Convenes         int
	ConvenesPer100R  float64
	MeanConcurrency  float64
	PeakConcurrency  int
	MinProfMeetings  int
	MinCommMeetings  int
	MaxMatchingScale float64 // mean concurrency / max matching size
}

// MeasureThroughput runs a CC variant for the given number of steps and
// collects the comparison profile.
func MeasureThroughput(variant core.Variant, h *hypergraph.H, disc, steps int, seed int64, randomInit bool) Throughput {
	alg := core.New(variant, h, nil)
	env := core.NewAlwaysClient(h.N(), disc)
	r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed, randomInit)
	r.Run(steps)
	return profileFromRunner(r, h)
}

func profileFromRunner(r *core.Runner, h *hypergraph.H) Throughput {
	res := Throughput{
		Steps:           r.Engine.Steps(),
		Rounds:          r.Engine.Rounds(),
		Convenes:        r.TotalConvenes(),
		MeanConcurrency: r.MeanConcurrency(),
		PeakConcurrency: r.PeakConcurrency,
		MinProfMeetings: r.MinProfMeetings(),
		MinCommMeetings: r.MinCommitteeConvenes(),
	}
	if res.Rounds > 0 {
		res.ConvenesPer100R = 100 * float64(res.Convenes) / float64(res.Rounds)
	}
	if mx, _ := h.MaxMatching(); mx > 0 {
		res.MaxMatchingScale = res.MeanConcurrency / float64(mx)
	}
	return res
}

// TokenConvergence is the TC stabilization profile.
type Token struct {
	N               int
	Samples         int
	Converged       int
	MaxSteps        int // worst-case steps to a single stabilized token
	MeanSteps       float64
	MaxHoldersStart int // spurious tokens in the initial configurations
}

// TokenConvergence measures, over random initial TC configurations with
// auto-releasing holders, how long the module takes to reach a single
// stabilized token (Property 1).
func TokenConvergence(h *hypergraph.H, samples, maxSteps int, seed int64) Token {
	adj := make([][]int, h.N())
	ids := make([]int, h.N())
	for v := 0; v < h.N(); v++ {
		adj[v] = h.Neighbors(v)
		ids[v] = h.ID(v)
	}
	res := Token{N: h.N(), Samples: samples}
	type sample struct {
		holdersStart int
		converged    bool
		steps        int
	}
	outs := make([]sample, samples)
	par.ForEach(samples, func(i int) {
		// Use CC1 as the release driver: its Token2/Step4 actions release
		// whenever the token is useless, which keeps the tour moving.
		// Each sample builds its own token.Module view: Module carries
		// per-call scratch and must not be shared across workers.
		m := token.New(adj, ids)
		alg := core.New(core.CC1, h, nil)
		env := core.NewAlwaysClient(h.N(), 1)
		r := core.NewRunner(alg, &sim.WeaklyFair{MaxAge: 6}, env, seed+int64(i), true)
		outs[i].holdersStart = len(m.Holders(tcLayer(r.Config())))
		converged := r.RunUntil(maxSteps, func(cfg []core.State) bool {
			tc := tcLayer(cfg)
			return m.Stabilized(tc) && len(m.Holders(tc)) <= 1
		})
		if converged {
			outs[i].converged = true
			outs[i].steps = r.Engine.Steps()
		}
	})
	sum := 0
	for _, o := range outs {
		if o.holdersStart > res.MaxHoldersStart {
			res.MaxHoldersStart = o.holdersStart
		}
		if o.converged {
			res.Converged++
			sum += o.steps
			if o.steps > res.MaxSteps {
				res.MaxSteps = o.steps
			}
		}
	}
	if res.Converged > 0 {
		res.MeanSteps = float64(sum) / float64(res.Converged)
	}
	return res
}

func tcLayer(cfg []core.State) []token.State {
	out := make([]token.State, len(cfg))
	for i := range cfg {
		out[i] = cfg[i].TC
	}
	return out
}
