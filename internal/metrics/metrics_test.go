package metrics

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
)

func TestDegreeOfFairConcurrencyRespectsBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    *hypergraph.H
		v    core.Variant
	}{
		{"ring8-cc2", hypergraph.CommitteeRing(8), core.CC2},
		{"path6-cc2", hypergraph.CommitteePath(6), core.CC2},
		{"fig1-cc2", hypergraph.Figure1(), core.CC2},
		{"ring6-cc3", hypergraph.CommitteeRing(6), core.CC3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := DegreeOfFairConcurrency(tc.v, tc.h, 6, 60000, 7, true)
			if res.Quiesced == 0 {
				t.Fatal("no run quiesced")
			}
			// Theorem 4/7: observed degree >= exact min over MM∪AMM(').
			if res.Min < res.ExactMin {
				t.Fatalf("observed min %d below exact theorem minimum %d", res.Min, res.ExactMin)
			}
			// Theorem 5/8: exact minimum >= analytic bound.
			if res.ExactMin < res.Bound {
				t.Fatalf("exact min %d below analytic bound %d", res.ExactMin, res.Bound)
			}
			if res.Max > res.MinMM && res.MinMM > 0 {
				// The quiescent meetings form a maximal-ish matching; more
				// than minMM is fine (up to max matching), sanity only:
				if mx, _ := tc.h.MaxMatching(); res.Max > mx {
					t.Fatalf("quiescent meetings %d exceed max matching %d", res.Max, mx)
				}
			}
		})
	}
}

func TestWaitingTimeBounded(t *testing.T) {
	// Theorem 6: waiting time O(maxDisc · n) rounds. The constant is
	// implementation-specific; assert the normalized ratio is modest and
	// that every professor actually met.
	h := hypergraph.CommitteeRing(6)
	res := WaitingTime(core.CC2, h, 2, 30000, 3)
	if res.Convenes < 10 {
		t.Fatalf("too few meetings to measure: %d", res.Convenes)
	}
	if res.MaxRounds <= 0 {
		t.Fatal("no waiting measured")
	}
	if res.NormalizedN > 25 {
		t.Fatalf("waiting time %d rounds not O(maxDisc*n)=%d within factor 25",
			res.MaxRounds, res.MaxDisc*res.N)
	}
}

func TestThroughputProfiles(t *testing.T) {
	h := hypergraph.CommitteeRing(8)
	p1 := MeasureThroughput(core.CC1, h, 1, 8000, 5, false)
	p2 := MeasureThroughput(core.CC2, h, 1, 8000, 5, false)
	if p1.Convenes == 0 || p2.Convenes == 0 {
		t.Fatalf("no meetings: cc1=%d cc2=%d", p1.Convenes, p2.Convenes)
	}
	if p1.MeanConcurrency <= 0 || p1.PeakConcurrency < 1 {
		t.Fatal("cc1 concurrency not measured")
	}
	// CC1 maximizes concurrency; on a ring it should not trail CC2 by
	// much — and typically leads. Soft check: within a factor.
	if p1.MeanConcurrency < 0.3*p2.MeanConcurrency {
		t.Fatalf("cc1 concurrency %f implausibly below cc2 %f", p1.MeanConcurrency, p2.MeanConcurrency)
	}
	if p2.MinProfMeetings == 0 {
		t.Fatal("cc2 must be fair over a long run")
	}
}

func TestTokenConvergenceProfile(t *testing.T) {
	res := TokenConvergence(hypergraph.Figure1(), 5, 20000, 11)
	if res.Converged != res.Samples {
		t.Fatalf("only %d/%d TC runs converged", res.Converged, res.Samples)
	}
	if res.MeanSteps <= 0 || res.MaxSteps < int(res.MeanSteps) {
		t.Fatalf("implausible steps: mean=%f max=%d", res.MeanSteps, res.MaxSteps)
	}
}
