// Package par is the process-wide worker pool used by the experiment
// harness, the metrics procedures and the CLIs: independent simulation
// cells (topology, daemon, seed) fan out across Workers goroutines and
// write only their own result slots, so aggregated output stays
// deterministic at any pool width.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the pool width. It defaults to GOMAXPROCS; set it to 1 to
// force fully serial execution everywhere (ccbench -parallel=false,
// ccsim/ccbench -j). Nested fan-outs may transiently exceed it in
// goroutine count; the Go scheduler still caps CPU parallelism at
// GOMAXPROCS.
var Workers = runtime.GOMAXPROCS(0)

// ForEach runs fn(i) for every i in [0, n) across the worker pool and
// returns when all calls completed. fn must not touch shared mutable
// state — each cell owns its inputs and writes only its own slot.
func ForEach(n int, fn func(i int)) {
	w := Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map evaluates fn over [0, n) in parallel and returns the results in
// index order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// ForEachWorker runs fn(w, i) for every i in [0, n) across at most
// `workers` goroutines (0 = the pool width), passing each invocation a
// stable worker index w in [0, workers). Scheduling is dynamic (an
// atomic cursor), so unlike Chunks the load balances even when item
// costs are skewed — the pattern the exhaustive explorer needs: workers
// own non-shareable scratch (one model instance each, selected by w)
// while any worker may pick up any item. fn must make its results
// deterministic in i alone (write only slot i, or merge through an
// order-insensitive structure); which worker runs which item is not.
func ForEachWorker(n, workers int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	w := workers
	if w <= 0 {
		w = Workers
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}

// Chunks splits [0, n) into at most `workers` contiguous chunks (0 =
// the pool width) and runs fn(w, lo, hi) for chunk w across the pool,
// returning the chunk count after all calls complete. Unlike ForEach,
// each invocation receives a stable worker index — the pattern needed
// when workers own non-shareable scratch (one model/engine instance per
// worker) and results must merge back in deterministic chunk order.
// Chunk w covers [lo, hi) with hi-lo within one of n/workers; fn is not
// called for empty chunks.
func Chunks(n, workers int, fn func(w, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	w := workers
	if w <= 0 {
		w = Workers
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	chunk := (n + w - 1) / w
	nchunks := (n + chunk - 1) / chunk // chunks actually invoked (≤ w)
	ForEach(nchunks, func(wi int) {
		lo, hi := wi*chunk, (wi+1)*chunk
		if hi > n {
			hi = n
		}
		fn(wi, lo, hi)
	})
	return nchunks
}
