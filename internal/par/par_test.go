package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the pool forced to the given width. The pool
// width is a process-global; tests using it must not run in parallel
// with each other.
func withWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	old := Workers
	Workers = w
	defer func() { Workers = old }()
	fn()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		withWorkers(t, w, func() {
			const n = 153
			var hits [n]atomic.Int32
			var calls atomic.Int32
			ForEach(n, func(i int) {
				hits[i].Add(1)
				calls.Add(1)
			})
			if got := int(calls.Load()); got != n {
				t.Fatalf("workers=%d: %d calls, want %d", w, got, n)
			}
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("workers=%d: index %d hit %d times", w, i, hits[i].Load())
				}
			}
		})
	}
	ForEach(0, func(int) { t.Fatal("ForEach(0) must not call fn") })
}

func TestMapOrdersResults(t *testing.T) {
	withWorkers(t, 8, func() {
		out := Map(100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
			}
		}
	})
}

func TestChunks(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {5, 4}, {8, 4}, {8, 1}, {3, 0}, {100, 7},
	} {
		covered := make([]int, tc.n)
		var mu sync.Mutex
		seen := map[int]bool{}
		got := Chunks(tc.n, tc.workers, func(w, lo, hi int) {
			if lo >= hi {
				t.Errorf("n=%d w=%d: empty chunk [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			mu.Lock()
			if seen[w] {
				t.Errorf("n=%d: worker index %d reused", tc.n, w)
			}
			seen[w] = true
			mu.Unlock()
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		if tc.n == 0 {
			if got != 0 {
				t.Fatalf("n=0: got %d chunks", got)
			}
			continue
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d covered %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}
