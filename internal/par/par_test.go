package par

import (
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the pool forced to the given width. The pool
// width is a process-global; tests using it must not run in parallel
// with each other.
func withWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	old := Workers
	Workers = w
	defer func() { Workers = old }()
	fn()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		withWorkers(t, w, func() {
			const n = 153
			var hits [n]atomic.Int32
			var calls atomic.Int32
			ForEach(n, func(i int) {
				hits[i].Add(1)
				calls.Add(1)
			})
			if got := int(calls.Load()); got != n {
				t.Fatalf("workers=%d: %d calls, want %d", w, got, n)
			}
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("workers=%d: index %d hit %d times", w, i, hits[i].Load())
				}
			}
		})
	}
	ForEach(0, func(int) { t.Fatal("ForEach(0) must not call fn") })
}

func TestMapOrdersResults(t *testing.T) {
	withWorkers(t, 8, func() {
		out := Map(100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
			}
		}
	})
}
