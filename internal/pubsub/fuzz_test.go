package pubsub_test

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/pubsub"
)

// FuzzEventDecode drives the SSE/gossip wire decoder with arbitrary
// bytes — seeded with real frames, truncations and near-miss mutations
// — and enforces the hardening contract the checkpoint-decoder fuzz
// target established for binary snapshots:
//
//   - no panic, no hang, no allocation proportional to a claimed
//     (rather than actually read) length;
//   - every accepted event satisfies the semantic ranges: a non-zero
//     decoded Seq only from an id: line, a type that passes the token
//     grammar, data that is valid JSON within MaxEventData;
//   - accepted events re-encode and re-decode to themselves (the codec
//     is a retraction: decode ∘ encode = id on its image).
func FuzzEventDecode(f *testing.F) {
	seed := func(ev pubsub.Event) { f.Add(pubsub.AppendSSE(nil, ev)) }
	seed(pubsub.Event{Seq: 1, Type: "progress", Data: json.RawMessage(`{"states":10,"frontier":3,"depth":2}`)})
	seed(pubsub.Event{Seq: 2, Type: "verdict", Data: json.RawMessage(`{"verdict":"verified","states":128}`)})
	seed(pubsub.Event{Seq: 0, Type: "cell", Data: json.RawMessage(`"synth"`)})
	seed(pubsub.Event{Seq: 7, Type: "announce", Data: json.RawMessage(`{"from":"http://a","seq":4,"keys":["ab","cd"]}`)})
	// Multi-frame stream.
	two := pubsub.AppendSSE(nil, pubsub.Event{Seq: 1, Type: "progress", Data: json.RawMessage(`1`)})
	f.Add(pubsub.AppendSSE(two, pubsub.Event{Seq: 2, Type: "done", Data: json.RawMessage(`2`)}))
	// Hostile shapes.
	f.Add([]byte("id: 1\nevent: x\ndata: {}"))                 // torn
	f.Add([]byte(": comment\nretry: 9\nid: 0\ndata: {}\n\n"))  // zero id
	f.Add([]byte("id: 18446744073709551616\nevent: x\n\n"))    // uint64 overflow
	f.Add([]byte("event: " + strings.Repeat("z", 100) + "\n")) // long type
	f.Add([]byte("data: \n\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("id: 3\r\nevent: ok\r\ndata: [1,2,\r\ndata: 3]\r\n\r\n"))

	f.Fuzz(func(t *testing.T, wire []byte) {
		d := pubsub.NewDecoder(bytes.NewReader(wire))
		for i := 0; i < 64; i++ { // bounded frames per input
			ev, err := d.Next()
			if err != nil {
				return // rejection is always an acceptable outcome
			}
			// Semantic ranges on every accepted event.
			if ev.Type == "" || len(ev.Type) > 64 {
				t.Fatalf("accepted event with bad type %q", ev.Type)
			}
			for j := 0; j < len(ev.Type); j++ {
				c := ev.Type[j]
				ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_'
				if !ok || (j == 0 && !(c >= 'a' && c <= 'z')) {
					t.Fatalf("accepted event type %q violates the token grammar", ev.Type)
				}
			}
			if len(ev.Data) > pubsub.MaxEventData {
				t.Fatalf("accepted %d-byte data past the bound", len(ev.Data))
			}
			if !json.Valid(ev.Data) {
				t.Fatalf("accepted non-JSON data %q", ev.Data)
			}
			// Round-trip: what we accepted must survive our own encoder.
			back, err := pubsub.NewDecoder(bytes.NewReader(pubsub.AppendSSE(nil, ev))).Next()
			if err != nil {
				t.Fatalf("re-decode of accepted event failed: %v", err)
			}
			// A multi-line data payload is rejoined with \n; everything
			// else must be byte-identical.
			if back.Seq != ev.Seq || back.Type != ev.Type || !bytes.Equal(back.Data, ev.Data) {
				t.Fatalf("round-trip drift: %+v vs %+v", back, ev)
			}
		}
		// Drain the rest so a pathological input cannot claim success by
		// parking frames; errors (including EOF) just end the stream.
		for {
			if _, err := d.Next(); err != nil {
				_ = err == io.EOF
				return
			}
		}
	})
}
