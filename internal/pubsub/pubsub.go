// Package pubsub is the push-based result plane's core: an in-process
// topic broker plus the wire codec its events travel over (Server-Sent
// Events framing, shared by the HTTP watch endpoints and the verdict
// gossip plane).
//
// The broker is built for one asymmetry: publishers are explorations
// and must never block, subscribers are network clients and may be
// arbitrarily slow. Every subscriber therefore owns a bounded queue;
// a publish that finds a queue full evicts that subscriber (closing
// its channel with an eviction mark) instead of waiting. Each topic
// keeps a bounded replay ring of its most recent events, so a client
// reconnecting with the SSE Last-Event-ID header resumes from where
// it dropped — or, past the ring, from the most recent events plus
// the terminal one, which is the part that must never be lost.
//
// Topics are cheap, created on first use, and retired once they are
// done (a terminal-typed event was published) and the last subscriber
// detaches; the serving layer synthesizes terminal events for
// watchers who arrive later than that from the job records and the
// verdict store, so retiring a ring never strands a client.
package pubsub

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical event types. The broker itself treats the type as opaque
// except for terminality; these are the vocabulary the serving tier
// publishes and the load harness understands.
const (
	// TypeProgress: a running exploration's counter snapshot
	// (states, frontier, depth, states/sec).
	TypeProgress = "progress"
	// TypeCell: one campaign cell reached a terminal state (per-cell
	// progress on a campaign topic).
	TypeCell = "cell"
	// TypeVerdict: a job completed with a verdict (terminal).
	TypeVerdict = "verdict"
	// TypeFailed: a job or campaign failed (terminal).
	TypeFailed = "failed"
	// TypeDone: a campaign completed all cells (terminal).
	TypeDone = "done"
	// TypeAnnounce: a gossip peer announcing newly committed store
	// keys (the gossip wire reuses the event codec; announcements are
	// not topic traffic and are never terminal).
	TypeAnnounce = "announce"
)

// IsTerminal reports whether an event of this type ends its topic:
// subscribers stop reading after one, and the broker retires the
// topic once its last subscriber detaches.
func IsTerminal(typ string) bool {
	return typ == TypeVerdict || typ == TypeFailed || typ == TypeDone
}

// Event is one message on a topic. Seq is 1-based and per-topic — it
// becomes the SSE id, so Last-Event-ID resume is a per-topic
// watermark. Events synthesized outside the broker (replays of
// already-terminal jobs) carry Seq 0 and are sent without an id line,
// which by the SSE contract leaves the client's Last-Event-ID
// untouched.
type Event struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Options parameterize a Broker. The defaults suit the serving tier:
// a ring deep enough to cover reconnect races, a queue deep enough to
// absorb scheduling jitter but shallow enough that a stuck client is
// evicted within one exploration chunk.
type Options struct {
	// RingSize is the per-topic replay buffer depth (default 128).
	RingSize int
	// QueueSize is the per-subscriber queue depth (default 256). Must
	// be at least RingSize so a Last-Event-ID replay always fits.
	QueueSize int
	// MaxTopics bounds the retained topic count (default 8192): past
	// it, creating a topic retires the oldest subscriber-less one.
	// Topics with live subscribers are never retired.
	MaxTopics int
}

// Broker is the topic fan-out. Safe for concurrent use.
type Broker struct {
	opts Options

	mu     sync.Mutex
	topics map[string]*topic

	published atomic.Int64
	evictions atomic.Int64
}

type topic struct {
	name string
	seq  uint64
	buf  []Event // replay ring, oldest first, len <= RingSize
	subs map[*Sub]struct{}
	done bool
	last time.Time // last publish or subscribe, for cap eviction
}

// Sub is one subscription. Read from Events() until it is closed;
// a closed channel means the topic ended (terminal event delivered),
// the subscription was evicted as a slow consumer (check Evicted), or
// Close was called.
type Sub struct {
	b     *Broker
	t     *topic
	ch    chan Event
	state atomic.Int32 // 0 live, 1 evicted, 2 closed
}

// New builds a Broker.
func New(opts Options) *Broker {
	if opts.RingSize <= 0 {
		opts.RingSize = 128
	}
	if opts.QueueSize < opts.RingSize {
		opts.QueueSize = max(opts.RingSize, 256)
	}
	if opts.MaxTopics <= 0 {
		opts.MaxTopics = 8192
	}
	return &Broker{opts: opts, topics: map[string]*topic{}}
}

// topicLocked returns (creating if needed) the named topic. Caller
// holds b.mu.
func (b *Broker) topicLocked(name string) *topic {
	t := b.topics[name]
	if t == nil {
		if len(b.topics) >= b.opts.MaxTopics {
			b.retireOneLocked()
		}
		t = &topic{name: name, subs: map[*Sub]struct{}{}}
		b.topics[name] = t
	}
	t.last = time.Now()
	return t
}

// retireOneLocked drops the stalest subscriber-less topic (preferring
// done ones) to make room under MaxTopics. If every topic has live
// subscribers the map grows past the cap — subscriber-held topics are
// bounded by the connection count, which the serving tier already
// caps.
func (b *Broker) retireOneLocked() {
	var victim *topic
	for _, t := range b.topics {
		if len(t.subs) > 0 {
			continue
		}
		if victim == nil ||
			(t.done && !victim.done) ||
			(t.done == victim.done && t.last.Before(victim.last)) {
			victim = t
		}
	}
	if victim != nil {
		delete(b.topics, victim.name)
	}
}

// Publish marshals data, assigns the topic's next sequence number and
// fans the event out. It never blocks: a subscriber whose queue is
// full is evicted (channel closed, Evicted() true) rather than
// waited for. A terminal-typed event marks the topic done; a later
// publish on the same topic reopens it (job records can be recreated
// after eviction, and their watchers should keep working).
func (b *Broker) Publish(name, typ string, data any) (Event, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return Event{}, fmt.Errorf("pubsub: marshal %s event: %v", typ, err)
	}
	b.mu.Lock()
	t := b.topicLocked(name)
	t.seq++
	ev := Event{Seq: t.seq, Type: typ, Data: raw}
	t.buf = append(t.buf, ev)
	if len(t.buf) > b.opts.RingSize {
		t.buf = t.buf[1:]
	}
	t.done = IsTerminal(typ)
	var evicted []*Sub
	for s := range t.subs {
		select {
		case s.ch <- ev:
		default:
			// Slow consumer: drop the subscription, never the publisher.
			delete(t.subs, s)
			evicted = append(evicted, s)
		}
	}
	b.mu.Unlock()
	for _, s := range evicted {
		if s.state.CompareAndSwap(0, 1) {
			close(s.ch)
			b.evictions.Add(1)
		}
	}
	b.published.Add(1)
	return ev, nil
}

// Subscribe attaches to a topic, replaying any buffered events with
// Seq > after into the subscription's queue first (after = 0 replays
// the whole ring; an after beyond the ring's oldest entry resumes
// from what the ring still holds — recent progress plus the terminal
// event, the part that matters).
func (b *Broker) Subscribe(name string, after uint64) *Sub {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topicLocked(name)
	s := &Sub{b: b, t: t, ch: make(chan Event, b.opts.QueueSize)}
	for _, ev := range t.buf {
		if ev.Seq > after {
			s.ch <- ev // fits: QueueSize >= RingSize
		}
	}
	t.subs[s] = struct{}{}
	return s
}

// Events is the subscription's receive channel. It is closed on
// terminal delivery only by the subscriber itself calling Close;
// readers should stop at the first IsTerminal event.
func (s *Sub) Events() <-chan Event { return s.ch }

// Evicted reports whether the broker dropped this subscription as a
// slow consumer (its channel is closed).
func (s *Sub) Evicted() bool { return s.state.Load() == 1 }

// Close detaches the subscription. Idempotent; retires the topic if
// it is done and this was the last subscriber.
func (s *Sub) Close() {
	s.b.mu.Lock()
	_, live := s.t.subs[s]
	delete(s.t.subs, s)
	if s.t.done && len(s.t.subs) == 0 {
		// The ring has served its purpose: terminal watchers from here
		// on are synthesized from the job record / verdict store.
		if cur := s.b.topics[s.t.name]; cur == s.t {
			delete(s.b.topics, s.t.name)
		}
	}
	s.b.mu.Unlock()
	if live && s.state.CompareAndSwap(0, 2) {
		close(s.ch)
	}
}

// Topics reports the retained topic count (a /metrics gauge).
func (b *Broker) Topics() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.topics)
}

// Published reports the total events published (a /metrics counter).
func (b *Broker) Published() int64 { return b.published.Load() }

// Evictions reports the slow-consumer subscriptions dropped (a
// /metrics counter).
func (b *Broker) Evictions() int64 { return b.evictions.Load() }
